// Example: chain-selective backpressure across shared NFs (Figs. 5 & 8).
//
// Two chains share their first and last NFs; one chain has a severe
// bottleneck in the middle. With NFVnice, the bottlenecked chain is shed
// at the system entry while the other chain keeps the shared NFs' full
// attention — no head-of-line blocking.
//
//   ./build/examples/multicore_chains

#include <cstdio>

#include "core/simulation.hpp"

namespace {

void run(bool nfvnice_on) {
  nfvnice::PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice_on);
  nfvnice::Simulation sim(cfg);

  const auto c0 = sim.add_core(nfvnice::SchedPolicy::kCfsNormal);
  const auto c1 = sim.add_core(nfvnice::SchedPolicy::kCfsNormal);
  const auto c2 = sim.add_core(nfvnice::SchedPolicy::kCfsNormal);
  const auto c3 = sim.add_core(nfvnice::SchedPolicy::kCfsNormal);

  const auto nf1 = sim.add_nf("NF1-shared", c0, nfv::nf::CostModel::fixed(270));
  const auto nf2 = sim.add_nf("NF2-fast", c1, nfv::nf::CostModel::fixed(120));
  const auto nf3 = sim.add_nf("NF3-slow", c2, nfv::nf::CostModel::fixed(4500));
  const auto nf4 = sim.add_nf("NF4-shared", c3, nfv::nf::CostModel::fixed(300));

  const auto fast_chain = sim.add_chain("fast", {nf1, nf2, nf4});
  const auto slow_chain = sim.add_chain("slow", {nf1, nf3, nf4});
  sim.add_udp_flow(fast_chain, 7.44e6);
  sim.add_udp_flow(slow_chain, 7.44e6);

  sim.run_for_seconds(0.3);

  std::printf("\n--- %s ---\n", nfvnice_on ? "NFVnice" : "Default");
  for (const auto chain : {fast_chain, slow_chain}) {
    const auto cm = sim.chain_metrics(chain);
    std::printf("chain '%s': %.2f Mpps egress, %llu entry drops\n",
                sim.chains().get(chain).name.c_str(),
                static_cast<double>(cm.egress_packets) / 0.3 / 1e6,
                static_cast<unsigned long long>(cm.entry_throttle_drops));
  }
  for (nfv::flow::NfId id = 0; id < sim.nf_count(); ++id) {
    std::printf("%-12s cpu %5.1f%%  processed %.2f Mpps\n",
                sim.nf(id).name().c_str(), sim.nf_cpu_share(id) * 100.0,
                static_cast<double>(sim.nf_metrics(id).processed) / 0.3 / 1e6);
  }
}

}  // namespace

int main() {
  run(false);
  run(true);
  return 0;
}
