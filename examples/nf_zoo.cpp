// Example: a realistic edge service chain built from the sample NFs.
//
//   firewall -> NAT -> DPI -> load balancer -> (monitor tap)
//
// Shows the nfs/ library (real packet-transforming NFs) riding on libnf
// and the NFVnice control plane. The firewall blocks one misbehaving
// subnet; DPI alerts on a planted signature; NAT and the load balancer
// rewrite headers; the monitor reports top talkers at the end.

#include <cstdio>
#include <iostream>

#include "core/simulation.hpp"
#include "nfs/dpi.hpp"
#include "nfs/firewall.hpp"
#include "nfs/load_balancer.hpp"
#include "nfs/monitor.hpp"
#include "nfs/nat.hpp"

int main() {
  nfvnice::Simulation sim;
  const auto core0 = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto core1 = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);

  const auto fw = sim.add_nf("firewall", core0, nfv::nf::CostModel::fixed(180));
  const auto nat = sim.add_nf("nat", core0, nfv::nf::CostModel::fixed(270));
  const auto dpi = sim.add_nf("dpi", core1, nfv::nf::CostModel::fixed(900));
  const auto lb = sim.add_nf("lb", core1, nfv::nf::CostModel::fixed(150));
  const auto mon = sim.add_nf("monitor", core1, nfv::nf::CostModel::fixed(80));

  const auto chain = sim.add_chain("edge", {fw, nat, dpi, lb, mon});

  nfv::nfs::Firewall firewall(nfv::nfs::Verdict::kAllow);
  nfv::nfs::FirewallRule block;
  block.name = "block-10.0.0.3";
  block.src_ip = 0x0a000003;
  block.src_mask = 0xffffffff;
  block.verdict = nfv::nfs::Verdict::kDeny;
  firewall.add_rule(block);
  firewall.install(sim.nf(fw));

  nfv::nfs::Nat napt;
  napt.install(sim.nf(nat));

  nfv::nfs::Dpi ids(nfv::nfs::Dpi::OnMatch::kAlertOnly);
  // After NAT, flows carry the public source; plant a signature on the
  // translated form of flow 1's repeating content pattern.
  nfv::pktio::Mbuf probe;
  probe.key = nfv::pktio::FlowKey{0xc0a80001, 0x0a800001, 20000, 80,
                                  nfv::pktio::kProtoUdp};
  probe.seq = 42;
  ids.add_signature("planted", nfv::nfs::Dpi::payload_digest(probe));
  ids.install(sim.nf(dpi));

  nfv::nfs::LoadBalancer balancer({0xc0000001, 0xc0000002, 0xc0000003});
  balancer.install(sim.nf(lb));

  nfv::nfs::FlowMonitor monitor;
  monitor.install(sim.nf(mon));

  for (double rate : {4e5, 8e5, 2e5}) {
    sim.add_udp_flow(chain, rate);  // 10.0.0.1, .2, .3 (.3 gets blocked)
  }
  sim.run_for_seconds(0.5);

  std::printf("firewall: %llu allowed, %llu denied (rule '%s' hits %llu)\n",
              (unsigned long long)firewall.allowed(),
              (unsigned long long)firewall.denied(), block.name.c_str(),
              (unsigned long long)firewall.rules()[0].hits);
  std::printf("nat:      %llu translated, %zu bindings\n",
              (unsigned long long)napt.translated(), napt.active_bindings());
  std::printf("dpi:      %llu scanned, %llu alerts\n",
              (unsigned long long)ids.scanned(),
              (unsigned long long)ids.alerts());
  std::printf("lb:       backends ");
  for (const auto& backend : balancer.backends()) {
    std::printf("%llu ", (unsigned long long)backend.packets);
  }
  std::printf("\nmonitor:  %zu flows; top talker bytes=%llu\n",
              monitor.flow_count(),
              (unsigned long long)(monitor.top_talkers(1).empty()
                                       ? 0
                                       : monitor.top_talkers(1)[0].second.bytes));
  sim.print_report(std::cout);
  return 0;
}
