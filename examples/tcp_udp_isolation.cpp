// Example: protecting responsive flows from unresponsive ones (Fig. 13).
//
// A TCP flow shares two NFs with ten UDP flows whose own bottleneck lies
// further down their chain. Watch the TCP goodput timeline as the UDP
// flood switches on and off, with NFVnice's per-chain backpressure and ECN
// keeping the TCP flow alive.
//
//   ./build/examples/tcp_udp_isolation [--stock]

#include <cstdio>
#include <cstring>

#include "core/simulation.hpp"

int main(int argc, char** argv) {
  const bool stock = argc > 1 && std::strcmp(argv[1], "--stock") == 0;

  nfvnice::PlatformConfig cfg;
  cfg.set_nfvnice(!stock);
  nfvnice::Simulation sim(cfg);

  const auto shared = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto extra = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("NF1-low", shared, nfv::nf::CostModel::fixed(250));
  const auto nf2 = sim.add_nf("NF2-med", shared, nfv::nf::CostModel::fixed(500));
  const auto nf3 = sim.add_nf("NF3-high", extra, nfv::nf::CostModel::fixed(30000));

  const auto tcp_chain = sim.add_chain("tcp-path", {nf1, nf2});
  const auto udp_chain = sim.add_chain("udp-path", {nf1, nf2, nf3});

  auto [tcp_flow, tcp_src] = sim.add_tcp_flow(tcp_chain);
  for (int i = 0; i < 10; ++i) {
    nfvnice::UdpOptions opts;
    opts.size_bytes = 512;
    opts.start_seconds = 0.5;  // UDP flood switches on here...
    opts.stop_seconds = 1.5;   // ...and off here.
    sim.add_udp_flow(udp_chain, 5e5, opts);
  }

  std::printf("mode: %s\n", stock ? "stock scheduler" : "NFVnice");
  std::printf("%6s %12s %10s\n", "t(s)", "TCP Mbps", "cwnd");
  std::uint64_t prev_bytes = 0;
  for (int i = 0; i < 20; ++i) {
    sim.run_for_seconds(0.1);
    const auto& fc = sim.manager().flow_counters(tcp_flow);
    const double mbps =
        static_cast<double>(fc.egress_bytes - prev_bytes) * 8 / 0.1 / 1e6;
    prev_bytes = fc.egress_bytes;
    std::printf("%6.1f %12.1f %10u\n", sim.now_seconds(), mbps,
                tcp_src->cwnd());
  }
  return 0;
}
