// Quickstart: the paper's headline scenario (§4.2.1).
//
// Three NFs with heterogeneous costs (Low 120 / Med 270 / High 550 cycles)
// chained on ONE shared core, overloaded with 64-byte packets. Run once
// with the stock scheduler ("Default") and once with NFVnice (cgroup-based
// rate-cost proportional shares + chain backpressure) and compare
// throughput and wasted work.
//
// Build & run:  ./build/examples/quickstart
//
// The NFVnice run also demonstrates the observability layer: it attaches a
// TraceRecorder before the run and writes trace.json (load it into
// chrome://tracing or https://ui.perfetto.dev) plus report.json (the
// machine-readable counterpart of the printed report).

#include <fstream>
#include <iostream>

#include "core/simulation.hpp"

namespace {

struct Result {
  double egress_mpps;
  std::uint64_t wasted_drops;
};

Result run(bool nfvnice_on, nfv::obs::TraceRecorder* trace) {
  nfvnice::PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice_on);

  nfvnice::Simulation sim(cfg);
  const auto core = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto low = sim.add_nf("NF1-low", core, nfv::nf::CostModel::fixed(120));
  const auto med = sim.add_nf("NF2-med", core, nfv::nf::CostModel::fixed(270));
  const auto high = sim.add_nf("NF3-high", core, nfv::nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("low-med-high", {low, med, high});

  sim.add_udp_flow(chain, /*rate_pps=*/6e6);
  if (trace != nullptr) sim.attach_trace(*trace);
  sim.run_for_seconds(0.5);

  sim.print_report(std::cout);

  if (trace != nullptr) {
    std::ofstream trace_out("trace.json");
    trace->write_chrome_json(trace_out);
    std::ofstream report_out("report.json");
    sim.report_json(report_out);
  }

  const auto cm = sim.chain_metrics(chain);
  std::uint64_t wasted = 0;
  for (nfv::flow::NfId id = 0; id < sim.nf_count(); ++id) {
    wasted += sim.nf_metrics(id).wasted_drops_here;
  }
  return {static_cast<double>(cm.egress_packets) / sim.now_seconds() / 1e6,
          wasted};
}

}  // namespace

int main() {
  std::cout << "--- Default (stock SCHED_BATCH, no NFVnice) ---\n";
  const Result base = run(false, nullptr);
  std::cout << "\n--- NFVnice (cgroups + backpressure + ECN) ---\n";
  nfv::obs::TraceRecorder trace;
  const Result nice = run(true, &trace);

  std::cout << "\nThroughput: default " << base.egress_mpps << " Mpps vs NFVnice "
            << nice.egress_mpps << " Mpps\n";
  std::cout << "Wasted-work drops: default " << base.wasted_drops
            << " vs NFVnice " << nice.wasted_drops << "\n";
  std::cout << "Wrote trace.json (" << trace.events().size()
            << " events; open in chrome://tracing) and report.json\n";
  return 0;
}
