// Example: an NF that logs packets to storage through libnf's async I/O.
//
// Demonstrates the Fig. 6 storage API surface: the NF's handler calls
// write() on its AsyncIoEngine for every packet of the monitored flow, and
// libnf's batched double buffering keeps the NF processing other traffic
// while flushes are in flight. Run with --sync to feel the baseline.
//
//   ./build/examples/io_logging_nf [--sync]

#include <cstdio>
#include <cstring>

#include "core/simulation.hpp"

int main(int argc, char** argv) {
  const bool sync_io = argc > 1 && std::strcmp(argv[1], "--sync") == 0;

  nfvnice::Simulation sim;
  const auto core = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto logger = sim.add_nf("pkt-logger", core,
                                 nfv::nf::CostModel::fixed(300));
  const auto fwd = sim.add_nf("forwarder", core, nfv::nf::CostModel::fixed(150));

  const auto logged = sim.add_chain("monitored", {logger, fwd});
  const auto plain = sim.add_chain("background", {logger, fwd});

  nfv::io::AsyncIoEngine::Config io_cfg;
  io_cfg.mode = sync_io ? nfv::io::AsyncIoEngine::Mode::kSynchronous
                        : nfv::io::AsyncIoEngine::Mode::kDoubleBuffered;
  io_cfg.buffer_bytes = 256 * 1024;
  auto& io = sim.attach_io(logger, io_cfg);

  sim.nf(logger).set_handler([&io, logged](nfv::pktio::Mbuf& pkt) {
    if (pkt.chain_id == logged) io.write(pkt.size_bytes);
    return nfv::nf::NfAction::kForward;
  });

  nfvnice::UdpOptions opts;
  opts.size_bytes = 256;
  sim.add_udp_flow(logged, 2e6, opts);
  sim.add_udp_flow(plain, 2e6, opts);
  sim.run_for_seconds(0.5);

  const auto lm = sim.chain_metrics(logged);
  const auto pm = sim.chain_metrics(plain);
  std::printf("io mode:            %s\n", sync_io ? "synchronous" : "async double-buffered");
  std::printf("monitored flow:     %.2f Mpps\n",
              static_cast<double>(lm.egress_packets) / 0.5 / 1e6);
  std::printf("background flow:    %.2f Mpps\n",
              static_cast<double>(pm.egress_packets) / 0.5 / 1e6);
  std::printf("bytes logged:       %.1f MB in %llu device requests\n",
              static_cast<double>(sim.disk().bytes_transferred()) / 1e6,
              static_cast<unsigned long long>(sim.disk().requests()));
  std::printf("NF blocked on I/O:  %llu times\n",
              static_cast<unsigned long long>(
                  sim.nf(logger).counters().io_blocks));
  return 0;
}
