// Fault injection quickstart (DESIGN.md §11).
//
// A three-NF chain on one shared core runs under NFVnice while a fault
// plan exercises all three fault kinds:
//
//   * NF2 crashes at t=0.20s and is restarted 20 ms after detection —
//     the watchdog notices within one period, releases its CPU shares,
//     pins the chain's backpressure state to Throttle (packets are shed
//     at the entry ring, not half-way through the chain), then reloads
//     cold state through the async-I/O path and warms the NF back up.
//   * NF1 is slowed 3x between t=0.40s and t=0.55s (service-time
//     degradation; the cost estimator re-learns and shares follow).
//   * NF3 stalls at t=0.70s without dying — the watchdog diagnoses the
//     straggler after `stuck_scans` silent scans and force-crashes it.
//
// The same plan in config-file form (see config::load):
//
//   fault crash NF2 at=0.2 restart_after=0.02
//   fault slow  NF1 at=0.4 factor=3 for=0.15
//   fault stall NF3 at=0.7
//   on_dead chain backpressure
//
// Build & run:  ./build/examples/faulty_chain

#include <iostream>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

int main() {
  nfvnice::PlatformConfig cfg;
  cfg.set_nfvnice(true);

  nfvnice::Simulation sim(cfg);
  const auto core = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("NF1", core, nfv::nf::CostModel::fixed(150));
  const auto nf2 = sim.add_nf("NF2", core, nfv::nf::CostModel::fixed(300));
  const auto nf3 = sim.add_nf("NF3", core, nfv::nf::CostModel::fixed(450));
  const auto chain = sim.add_chain("chain", {nf1, nf2, nf3});
  sim.add_udp_flow(chain, /*rate_pps=*/2e6);

  const auto& clk = sim.clock();
  nfv::fault::FaultPlan plan;
  plan.add_crash(nf2, clk.from_seconds(0.2), clk.from_seconds(0.02));
  plan.add_degrade(nf1, clk.from_seconds(0.4), 3.0, clk.from_seconds(0.15));
  plan.add_stall(nf3, clk.from_seconds(0.7));
  sim.set_fault_plan(std::move(plan));
  sim.set_dead_policy(chain, nfv::fault::DeadNfPolicy::kBackpressure);

  // Poll the lifecycle as the run advances; transitions also land on the
  // "lifecycle" trace lane and in report_json()'s per-NF lifecycle block.
  const nfv::flow::NfId nfs[] = {nf1, nf2, nf3};
  std::cout << "t(s)   NF1         NF2         NF3\n";
  for (int step = 0; step < 20; ++step) {
    sim.run_for_seconds(0.05);
    std::cout.setf(std::ios::fixed);
    std::cout.precision(2);
    std::cout << sim.now_seconds() << "   ";
    for (const auto id : nfs) {
      std::string cell = nfv::fault::to_string(sim.nf_lifecycle(id));
      cell.resize(12, ' ');
      std::cout << cell;
    }
    std::cout << "\n";
  }

  std::cout << "\nPer-NF lifecycle stats after 1 s:\n";
  for (const auto id : nfs) {
    const auto& ls = sim.nf_lifecycle_stats(id);
    const auto& m = sim.nf_metrics(id);
    std::cout << "  " << sim.nf(id).config().name
              << ": crashes=" << ls.crashes
              << " (forced=" << ls.forced_crashes << ")"
              << " restarts=" << ls.restarts
              << " recoveries=" << ls.recoveries
              << " downtime=" << clk.to_millis(ls.downtime_cycles) << "ms"
              << " detect=" << clk.to_micros(ls.last_detect_latency) << "us"
              << " crash_drops=" << m.crash_drops << "\n";
  }

  const auto cm = sim.chain_metrics(chain);
  std::cout << "\nChain: egress=" << cm.egress_packets
            << " entry_discards=" << cm.entry_throttle_drops << "\n";
  return 0;
}
