// Fault injection quickstart (DESIGN.md §11).
//
// A three-NF chain on one shared core runs under NFVnice while a fault
// plan exercises all three fault kinds:
//
//   * NF2 crashes at t=0.20s and is restarted 20 ms after detection —
//     the watchdog notices within one period, releases its CPU shares,
//     pins the chain's backpressure state to Throttle (packets are shed
//     at the entry ring, not half-way through the chain), then reloads
//     cold state through the async-I/O path and warms the NF back up.
//   * NF1 is slowed 3x between t=0.40s and t=0.55s (service-time
//     degradation; the cost estimator re-learns and shares follow).
//   * NF3 stalls at t=0.70s without dying — the watchdog diagnoses the
//     straggler after `stuck_scans` silent scans and force-crashes it.
//
// The same plan in config-file form (see config::load):
//
//   fault crash NF2 at=0.2 restart_after=0.02
//   fault slow  NF1 at=0.4 factor=3 for=0.15
//   fault stall NF3 at=0.7
//   on_dead chain backpressure
//
// A second run then exercises the storage fault domain (DESIGN.md §12):
// a logging NF writes every packet through libnf's async-I/O engine while
// the shared block device wedges outright for 100 ms. With completion
// deadlines, bounded retries and on_io_fail=shed, the engine detects the
// wedge within a few timeout periods, degrades to process-without-logging
// and re-attaches the device via recovery probes. In config-file form:
//
//   io         logger mode=async buffer=262144
//   io_timeout logger us=1000
//   io_retry   logger max=4 backoff_us=10 multiplier=2 jitter=0.1
//   on_io_fail logger shed
//   device_fault wedge at=0.2 for=0.1
//
// Build & run:  ./build/examples/faulty_chain

#include <iostream>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

int main() {
  nfvnice::PlatformConfig cfg;
  cfg.set_nfvnice(true);

  nfvnice::Simulation sim(cfg);
  const auto core = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("NF1", core, nfv::nf::CostModel::fixed(150));
  const auto nf2 = sim.add_nf("NF2", core, nfv::nf::CostModel::fixed(300));
  const auto nf3 = sim.add_nf("NF3", core, nfv::nf::CostModel::fixed(450));
  const auto chain = sim.add_chain("chain", {nf1, nf2, nf3});
  sim.add_udp_flow(chain, /*rate_pps=*/2e6);

  const auto& clk = sim.clock();
  nfv::fault::FaultPlan plan;
  plan.add_crash(nf2, clk.from_seconds(0.2), clk.from_seconds(0.02));
  plan.add_degrade(nf1, clk.from_seconds(0.4), 3.0, clk.from_seconds(0.15));
  plan.add_stall(nf3, clk.from_seconds(0.7));
  sim.set_fault_plan(std::move(plan));
  sim.set_dead_policy(chain, nfv::fault::DeadNfPolicy::kBackpressure);

  // Poll the lifecycle as the run advances; transitions also land on the
  // "lifecycle" trace lane and in report_json()'s per-NF lifecycle block.
  const nfv::flow::NfId nfs[] = {nf1, nf2, nf3};
  std::cout << "t(s)   NF1         NF2         NF3\n";
  for (int step = 0; step < 20; ++step) {
    sim.run_for_seconds(0.05);
    std::cout.setf(std::ios::fixed);
    std::cout.precision(2);
    std::cout << sim.now_seconds() << "   ";
    for (const auto id : nfs) {
      std::string cell = nfv::fault::to_string(sim.nf_lifecycle(id));
      cell.resize(12, ' ');
      std::cout << cell;
    }
    std::cout << "\n";
  }

  std::cout << "\nPer-NF lifecycle stats after 1 s:\n";
  for (const auto id : nfs) {
    const auto& ls = sim.nf_lifecycle_stats(id);
    const auto& m = sim.nf_metrics(id);
    std::cout << "  " << sim.nf(id).config().name
              << ": crashes=" << ls.crashes
              << " (forced=" << ls.forced_crashes << ")"
              << " restarts=" << ls.restarts
              << " recoveries=" << ls.recoveries
              << " downtime=" << clk.to_millis(ls.downtime_cycles) << "ms"
              << " detect=" << clk.to_micros(ls.last_detect_latency) << "us"
              << " crash_drops=" << m.crash_drops << "\n";
  }

  const auto cm = sim.chain_metrics(chain);
  std::cout << "\nChain: egress=" << cm.egress_packets
            << " entry_discards=" << cm.entry_throttle_drops << "\n";

  // -- storage fault domain variant (DESIGN.md §12) --------------------------
  // A logging NF keeps forwarding packets while the disk wedges for
  // 100 ms: deadlines catch the hung flush, retries exhaust, the engine
  // sheds logging, and a recovery probe re-attaches the healed device.
  nfvnice::Simulation sim2(cfg);
  const auto core2 = sim2.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto logger =
      sim2.add_nf("logger", core2, nfv::nf::CostModel::fixed(300));
  const auto lchain = sim2.add_chain("logged", {logger});
  sim2.add_udp_flow(lchain, 2e6);

  nfv::io::AsyncIoEngine::Config io_cfg;
  io_cfg.buffer_bytes = 256 * 1024;
  auto& io = sim2.attach_io(logger, io_cfg);
  io.set_timeout(sim2.clock().from_micros(1000));
  io.set_retry(4, sim2.clock().from_micros(10), 2.0, 0.1);
  io.set_on_fail(nfv::io::AsyncIoEngine::OnIoFail::kShed);
  sim2.nf(logger).set_handler([&io](nfv::pktio::Mbuf& pkt) {
    io.write(pkt.size_bytes);
    return nfv::nf::NfAction::kForward;
  });

  nfv::fault::FaultPlan storage_plan;
  storage_plan.add_device_wedge(sim2.clock().from_seconds(0.2),
                                sim2.clock().from_seconds(0.1));
  sim2.set_fault_plan(std::move(storage_plan));
  sim2.run_for_seconds(0.5);

  std::cout << "\nStorage fault domain (100 ms device wedge, "
            << "on_io_fail=shed):\n"
            << "  logger egress=" << sim2.chain_metrics(lchain).egress_packets
            << " timeouts=" << io.timeouts() << " retries=" << io.retries()
            << " dropped_writes=" << io.dropped_writes()
            << "\n  degraded_entries=" << io.degraded_entries()
            << " probes=" << io.probes() << " degraded_for="
            << clk.to_millis(io.time_in_degraded(sim2.engine().now()))
            << "ms now_degraded=" << (io.degraded() ? "yes" : "no") << "\n";
  return 0;
}
