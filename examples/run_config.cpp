// Example: drive a deployment from a configuration file (§3.1).
//
//   ./build/examples/run_config [path/to/topology.conf] [seconds]
//
// With no arguments, runs a built-in Fig. 7-style config.

#include <fstream>
#include <iostream>
#include <sstream>

#include "config/loader.hpp"
#include "core/simulation.hpp"

namespace {

constexpr const char* kDefaultConfig = R"(
# Fig. 7-style chain: three heterogeneous NFs on one shared core.
mode nfvnice
core batch
nf low  core=0 cost=120
nf med  core=0 cost=270
nf high core=0 cost=550
chain lmh low med high
udp lmh rate=6e6 size=64
)";

}  // namespace

int main(int argc, char** argv) {
  nfvnice::Simulation sim;
  const double secs = argc > 2 ? std::atof(argv[2]) : 0.5;

  try {
    nfv::config::Topology topo;
    if (argc > 1) {
      std::ifstream file(argv[1]);
      if (!file) {
        std::cerr << "cannot open " << argv[1] << "\n";
        return 1;
      }
      topo = nfv::config::load(file, sim);
    } else {
      std::cout << "using built-in config:\n" << kDefaultConfig << "\n";
      topo = nfv::config::load_string(kDefaultConfig, sim);
    }
    sim.run_for_seconds(secs);
    sim.print_report(std::cout);
  } catch (const nfv::config::ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
