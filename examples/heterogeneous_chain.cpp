// Example: heterogeneous service chains and scheduler choice.
//
// Builds the paper's Fig. 11 situation — a chain whose bottleneck position
// changes — and shows how to sweep schedulers and read per-NF metrics
// through the public API. Usage:
//
//   ./build/examples/heterogeneous_chain [order]
//
// where `order` is a permutation of the letters L, M, H (default "HML",
// the paper's hardest case for coarse-quantum schedulers).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/simulation.hpp"

namespace {

nfv::Cycles cost_for(char c) {
  switch (c) {
    case 'L':
      return 120;
    case 'M':
      return 270;
    default:
      return 550;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string order = argc > 1 ? argv[1] : "HML";
  if (order.size() != 3) {
    std::fprintf(stderr, "order must be 3 of {L,M,H}, e.g. LMH\n");
    return 1;
  }

  const nfvnice::SchedPolicy policies[] = {nfvnice::SchedPolicy::kCfsNormal,
                                           nfvnice::SchedPolicy::kCfsBatch,
                                           nfvnice::SchedPolicy::kRoundRobin};
  for (const auto policy : policies) {
    for (const bool nfvnice_on : {false, true}) {
      nfvnice::PlatformConfig cfg;
      cfg.set_nfvnice(nfvnice_on);
      nfvnice::Simulation sim(cfg);
      const auto core = sim.add_core(policy, 100.0);
      std::vector<nfv::flow::NfId> nfs;
      for (char c : order) {
        nfs.push_back(sim.add_nf(std::string(1, c), core,
                                 nfv::nf::CostModel::fixed(cost_for(c))));
      }
      const auto chain = sim.add_chain(order, nfs);
      sim.add_udp_flow(chain, 6e6);
      sim.run_for_seconds(0.25);

      const auto cm = sim.chain_metrics(chain);
      std::printf("%-8s %-8s: %.2f Mpps (entry drops %llu)\n",
                  nfvnice::to_string(policy), nfvnice_on ? "NFVnice" : "stock",
                  static_cast<double>(cm.egress_packets) / 0.25 / 1e6,
                  static_cast<unsigned long long>(cm.entry_throttle_drops));
    }
  }
  return 0;
}
