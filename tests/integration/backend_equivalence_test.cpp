// Ready-queue backend equivalence contract (DESIGN.md §15): for a fixed
// topology, report_json() and the Chrome trace are byte-identical whether
// the engine runs on the binary-heap or the hierarchical timer-wheel
// backend. Each test builds the same simulation under both backends (and,
// where marked, under sharding too) and compares the serialized artifacts
// byte-for-byte — the same strongest-form equivalence the shard determinism
// suite asserts, now across PlatformConfig::engine_backend.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace {

using nfv::core::PlatformConfig;
using nfv::core::SchedPolicy;
using nfv::core::Simulation;
using nfv::sim::EngineBackend;

struct RunArtifacts {
  std::string report;
  std::string trace;
};

/// Run `run_at` under each backend and require byte-identical artifacts.
/// Clears NFV_ENGINE_BACKEND first: the CI matrix exports it to steer the
/// *other* suites, but here each run pins its backend explicitly and an
/// inherited env override would collapse the comparison to wheel-vs-wheel.
void expect_identical(
    const std::function<RunArtifacts(EngineBackend)>& run_at) {
  ::unsetenv("NFV_ENGINE_BACKEND");
  const RunArtifacts heap = run_at(EngineBackend::kHeap);
  const RunArtifacts wheel = run_at(EngineBackend::kWheel);
  ASSERT_FALSE(heap.report.empty());
  const auto diverge = [](const std::string& a, const std::string& b) {
    std::size_t p = 0;
    while (p < a.size() && p < b.size() && a[p] == b[p]) ++p;
    return p;
  };
  const std::size_t rp = diverge(heap.report, wheel.report);
  ASSERT_EQ(heap.report == wheel.report, true)
      << "report diverges at byte " << rp << ": ..."
      << heap.report.substr(rp < 40 ? 0 : rp - 40, 80) << "... vs ..."
      << wheel.report.substr(rp < 40 ? 0 : rp - 40, 80);
  ASSERT_EQ(heap.trace == wheel.trace, true)
      << "trace diverges at byte " << diverge(heap.trace, wheel.trace);
}

RunArtifacts finish(Simulation& sim, nfv::obs::TraceRecorder& rec) {
  RunArtifacts out;
  out.report = sim.report_json();
  std::ostringstream tr;
  rec.write_chrome_json(tr);
  out.trace = tr.str();
  return out;
}

// Fig. 7 grid point: one core, the paper's 120/270/550 chain under overload.
TEST(BackendEquivalence, Fig07GridPoint) {
  expect_identical([](EngineBackend backend) {
    PlatformConfig cfg;
    cfg.engine_backend = backend;
    Simulation sim(cfg);
    const auto core = sim.add_core(SchedPolicy::kCfsBatch);
    const auto a = sim.add_nf("low", core, nfv::nf::CostModel::fixed(120));
    const auto b = sim.add_nf("med", core, nfv::nf::CostModel::fixed(270));
    const auto c = sim.add_nf("high", core, nfv::nf::CostModel::fixed(550));
    const auto chain = sim.add_chain("c", {a, b, c});
    sim.add_udp_flow(chain, 6e6);
    nfv::obs::TraceRecorder rec;
    sim.attach_trace(rec);
    sim.run_for_seconds(0.03);
    return finish(sim, rec);
  });
}

// Tab. 3 grid point: overloaded chain on the round-robin scheduler, where
// drop accounting (entry discards vs ring-full) must line up exactly.
TEST(BackendEquivalence, Tab03DropRatePoint) {
  expect_identical([](EngineBackend backend) {
    PlatformConfig cfg;
    cfg.engine_backend = backend;
    Simulation sim(cfg);
    const auto core = sim.add_core(SchedPolicy::kRoundRobin, 1.0);
    const auto a = sim.add_nf("a", core, nfv::nf::CostModel::fixed(550));
    const auto b = sim.add_nf("b", core, nfv::nf::CostModel::fixed(270));
    const auto chain = sim.add_chain("c", {a, b});
    sim.add_udp_flow(chain, 8e6);
    nfv::obs::TraceRecorder rec;
    sim.attach_trace(rec);
    sim.run_for_seconds(0.03);
    return finish(sim, rec);
  });
}

// Churn: flows install/retire continuously; the flow table's expiry sweep
// rides on cancellable timers — the wheel's eager unlink path under load.
TEST(BackendEquivalence, ChurnWorkload) {
  expect_identical([](EngineBackend backend) {
    PlatformConfig cfg;
    cfg.engine_backend = backend;
    cfg.flow_table.idle_timeout = 26'000'000;
    Simulation sim(cfg);
    const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto a = sim.add_nf("a", c0, nfv::nf::CostModel::fixed(200));
    const auto b = sim.add_nf("b", c1, nfv::nf::CostModel::fixed(400));
    const auto chain = sim.add_chain("churny", {a, b});
    sim.add_churn_workload(chain, 1.5e6);
    nfv::obs::TraceRecorder rec;
    sim.attach_trace(rec);
    sim.run_for_seconds(0.04);
    return finish(sim, rec);
  });
}

// Faulted run: crash + restart on one core, degrade window on another. The
// watchdog/restart timers land far from now — deep wheel levels that must
// cascade back down on exactly the heap's schedule.
TEST(BackendEquivalence, CrashAndDegradeFaultPlan) {
  expect_identical([](EngineBackend backend) {
    PlatformConfig cfg;
    cfg.engine_backend = backend;
    Simulation sim(cfg);
    const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c2 = sim.add_core(SchedPolicy::kRoundRobin, 1.0);
    const auto a = sim.add_nf("a", c0, nfv::nf::CostModel::fixed(200));
    const auto b = sim.add_nf("b", c1, nfv::nf::CostModel::fixed(400));
    const auto c = sim.add_nf("c", c2, nfv::nf::CostModel::fixed(300));
    const auto chain = sim.add_chain("long", {a, b, c});
    const auto tail = sim.add_chain("tail", {b, c});
    sim.add_udp_flow(chain, 1.5e6);
    sim.add_udp_flow(tail, 1e6);
    nfv::fault::FaultPlan plan;
    plan.add_crash(b, 26'000'000, sim.clock().from_seconds(0.005));
    plan.add_degrade(c, 52'000'000, 2.0, 26'000'000);
    sim.set_fault_plan(std::move(plan));
    nfv::obs::TraceRecorder rec;
    sim.attach_trace(rec);
    sim.run_for_seconds(0.04);
    return finish(sim, rec);
  });
}

// Async I/O plus a device fault: completion timers and the fault window
// interleave with the packet path.
TEST(BackendEquivalence, DeviceFaultWithAsyncIo) {
  expect_identical([](EngineBackend backend) {
    PlatformConfig cfg;
    cfg.engine_backend = backend;
    Simulation sim(cfg);
    const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto logger = sim.add_nf("logger", c0, nfv::nf::CostModel::fixed(300));
    const auto fwd = sim.add_nf("fwd", c1, nfv::nf::CostModel::fixed(150));
    const auto chain = sim.add_chain("logged", {logger, fwd});
    nfv::io::AsyncIoEngine::Config io_cfg;
    io_cfg.mode = nfv::io::AsyncIoEngine::Mode::kDoubleBuffered;
    io_cfg.buffer_bytes = 64 * 1024;
    auto& io_engine = sim.attach_io(logger, io_cfg);
    sim.nf(logger).set_handler([&io_engine](nfv::pktio::Mbuf& pkt) {
      io_engine.write(pkt.size_bytes);
      return nfv::nf::NfAction::kForward;
    });
    sim.add_udp_flow(chain, 2e6);
    nfv::fault::FaultPlan plan;
    plan.add_device_slow(sim.clock().from_seconds(0.01), 4.0,
                         sim.clock().from_seconds(0.005));
    sim.set_fault_plan(std::move(plan));
    nfv::obs::TraceRecorder rec;
    sim.attach_trace(rec);
    sim.run_for_seconds(0.03);
    return finish(sim, rec);
  });
}

// Sharded × backend: four cross-lane chains at sim_shards ∈ {1, 4}. All
// four (backend, shards) artifact sets must agree — the wheel rides inside
// every EventLane, so per-lane order must match the heap's exactly.
TEST(BackendEquivalence, ShardedCrossLaneChains) {
  ::unsetenv("NFV_ENGINE_BACKEND");
  const auto run_at = [](EngineBackend backend, std::uint32_t shards) {
    PlatformConfig cfg;
    cfg.engine_backend = backend;
    cfg.sim_shards = shards;
    Simulation sim(cfg);
    std::vector<std::size_t> cores;
    std::vector<nfv::flow::NfId> nfs;
    for (int i = 0; i < 4; ++i) {
      cores.push_back(sim.add_core(SchedPolicy::kCfsBatch));
      nfs.push_back(sim.add_nf("nf" + std::to_string(i), cores[i],
                               nfv::nf::CostModel::fixed(200 + 60 * i)));
    }
    const auto ring = sim.add_chain("ring", {nfs[0], nfs[1], nfs[2], nfs[3]});
    const auto pair = sim.add_chain("pair", {nfs[3], nfs[0]});
    sim.add_udp_flow(ring, 2.5e6);
    sim.add_udp_flow(pair, 2e6);
    sim.add_tcp_flow(ring);
    nfv::obs::TraceRecorder rec;
    sim.attach_trace(rec);
    sim.run_for_seconds(0.02);
    sim.run_for_seconds(0.01);  // multi-call: resume must not reset state
    return finish(sim, rec);
  };
  const RunArtifacts base = run_at(EngineBackend::kHeap, 1);
  ASSERT_FALSE(base.report.empty());
  for (const EngineBackend backend :
       {EngineBackend::kHeap, EngineBackend::kWheel}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      const RunArtifacts other = run_at(backend, shards);
      ASSERT_EQ(base.report == other.report, true)
          << "report diverges: backend=" << nfv::sim::to_string(backend)
          << " shards=" << shards;
      ASSERT_EQ(base.trace == other.trace, true)
          << "trace diverges: backend=" << nfv::sim::to_string(backend)
          << " shards=" << shards;
    }
  }
}

// The env knob opts a default-config Simulation into the wheel; an explicit
// PlatformConfig::engine_backend is never overridden by it.
TEST(BackendEquivalence, EnvVarSelectsBackend) {
  ::setenv("NFV_ENGINE_BACKEND", "wheel", 1);
  {
    Simulation sim;
    EXPECT_EQ(sim.engine_backend(), EngineBackend::kWheel);
  }
  ::unsetenv("NFV_ENGINE_BACKEND");
  {
    Simulation sim;
    EXPECT_EQ(sim.engine_backend(), EngineBackend::kHeap);
  }
  {
    PlatformConfig cfg;
    cfg.engine_backend = EngineBackend::kWheel;
    Simulation sim(cfg);
    EXPECT_EQ(sim.engine_backend(), EngineBackend::kWheel);
  }
}

}  // namespace
