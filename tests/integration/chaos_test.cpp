// Chaos smoke harness for the storage fault domain (DESIGN.md §12).
//
// A fixed-seed RNG generates randomized — but fully reproducible — device
// fault schedules (kind, instant, duration, degraded-mode policy) against
// the Fig. 14 logging scenario, and every schedule must uphold the
// domain's invariants:
//   * packet conservation: nothing lost, duplicated or leaked;
//   * drain-to-zero: once traffic stops and every fault window closes,
//     queues and the mbuf pool empty out;
//   * byte-determinism: the same schedule replays to an identical report;
//   * no watchdog misdiagnosis: only on_io_fail = stuck may force-kill.
// CI runs this binary standalone under AddressSanitizer, so leaks or
// lifetime bugs on the retry/cancel paths fail loudly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

namespace nfv::core {
namespace {

struct FaultWindow {
  fault::DeviceFaultKind kind = fault::DeviceFaultKind::kSlow;
  double at_s = 0.0;
  double for_s = 0.0;
  double factor = 1.0;  ///< slow: latency scale; torn: landed fraction.
};

struct ChaosSchedule {
  std::vector<FaultWindow> windows;
  io::AsyncIoEngine::OnIoFail policy = io::AsyncIoEngine::OnIoFail::kBlock;
};

/// Draw a schedule of 1-3 non-overlapping windows in [5 ms, 55 ms]. All
/// windows are bounded and end by 55 ms, so a 150 ms run always has room
/// to recover and drain. Slow factors stay below the point where a scaled
/// flush would exceed the 1 ms deadline (that regime is the wedge's job).
ChaosSchedule draw_schedule(nfv::Rng& rng) {
  ChaosSchedule s;
  const int policy = static_cast<int>(rng.next_below(3));
  s.policy = policy == 0   ? io::AsyncIoEngine::OnIoFail::kBlock
             : policy == 1 ? io::AsyncIoEngine::OnIoFail::kShed
                           : io::AsyncIoEngine::OnIoFail::kStuck;
  const int count = 1 + static_cast<int>(rng.next_below(3));
  double cursor = 0.005;
  for (int i = 0; i < count && cursor < 0.045; ++i) {
    FaultWindow w;
    w.at_s = cursor + rng.next_double() * 0.004;
    w.for_s = 0.001 + rng.next_double() * 0.009;
    if (w.at_s + w.for_s > 0.055) w.for_s = 0.055 - w.at_s;
    switch (rng.next_below(4)) {
      case 0:
        w.kind = fault::DeviceFaultKind::kSlow;
        w.factor = 1.5 + rng.next_double() * 5.0;
        break;
      case 1:
        w.kind = fault::DeviceFaultKind::kError;
        break;
      case 2:
        w.kind = fault::DeviceFaultKind::kTorn;
        w.factor = 0.1 + rng.next_double() * 0.8;
        break;
      default:
        w.kind = fault::DeviceFaultKind::kWedge;
        break;
    }
    s.windows.push_back(w);
    cursor = w.at_s + w.for_s + 0.002;  // >= 2 ms gap: never overlaps
  }
  return s;
}

struct ChaosRun {
  std::unique_ptr<Simulation> sim;
  flow::NfId logger = 0;
  flow::NfId fwd = 0;
  flow::ChainId chain1 = 0;
  flow::ChainId chain2 = 0;
  io::AsyncIoEngine* io = nullptr;
};

ChaosRun build(const ChaosSchedule& schedule) {
  ChaosRun r;
  r.sim = std::make_unique<Simulation>();
  const auto core_id = r.sim->add_core(SchedPolicy::kCfsBatch);
  r.logger = r.sim->add_nf("logger", core_id, nf::CostModel::fixed(300));
  r.fwd = r.sim->add_nf("fwd", core_id, nf::CostModel::fixed(150));
  r.chain1 = r.sim->add_chain("logged", {r.logger, r.fwd});
  r.chain2 = r.sim->add_chain("plain", {r.logger, r.fwd});

  io::AsyncIoEngine::Config io_cfg;
  io_cfg.buffer_bytes = 256 * 1024;
  r.io = &r.sim->attach_io(r.logger, io_cfg);
  r.io->set_timeout(2'600'000);  // 1 ms deadline
  r.io->set_retry(4, 26'000, 2.0, 0.1);
  r.io->set_on_fail(schedule.policy);

  auto* io_engine = r.io;
  const auto chain1 = r.chain1;
  r.sim->nf(r.logger).set_handler([io_engine, chain1](pktio::Mbuf& pkt) {
    if (pkt.chain_id == chain1) io_engine->write(pkt.size_bytes);
    return nf::NfAction::kForward;
  });

  UdpOptions opts;
  opts.stop_seconds = 0.07;
  r.sim->add_udp_flow(r.chain1, 2e6, opts);
  r.sim->add_udp_flow(r.chain2, 2e6, opts);

  fault::FaultPlan plan;
  for (const FaultWindow& w : schedule.windows) {
    const Cycles at = r.sim->clock().from_seconds(w.at_s);
    const Cycles dur = r.sim->clock().from_seconds(w.for_s);
    switch (w.kind) {
      case fault::DeviceFaultKind::kSlow:
        plan.add_device_slow(at, w.factor, dur);
        break;
      case fault::DeviceFaultKind::kError:
        plan.add_device_error(at, dur);
        break;
      case fault::DeviceFaultKind::kTorn:
        plan.add_device_torn(at, w.factor, dur);
        break;
      case fault::DeviceFaultKind::kWedge:
        plan.add_device_wedge(at, dur);
        break;
    }
  }
  r.sim->set_fault_plan(std::move(plan));
  return r;
}

void check_invariants(ChaosRun& r, io::AsyncIoEngine::OnIoFail policy,
                      const std::string& label) {
  SCOPED_TRACE(label);
  Simulation& sim = *r.sim;

  // Conservation: wire arrivals split exactly into admitted + entry drops;
  // admitted packets are egressed, dropped at a ring, lost to a (forced)
  // crash, or still in flight (±16 for per-NF in-flight bursts).
  const std::uint64_t wire = sim.manager().wire_ingress();
  std::uint64_t admitted = 0, entry_drops = 0, egress = 0;
  for (const auto chain : {r.chain1, r.chain2}) {
    const auto cm = sim.chain_metrics(chain);
    admitted += cm.entry_admitted;
    entry_drops += cm.entry_throttle_drops;
    egress += cm.egress_packets;
  }
  std::uint64_t ring_drops = 0, crash_drops = 0, in_queues = 0;
  for (const auto nf : {r.logger, r.fwd}) {
    const auto m = sim.nf_metrics(nf);
    ring_drops += m.rx_full_drops;
    crash_drops += m.crash_drops;
    in_queues += sim.nf(nf).rx_ring().size() + sim.nf(nf).tx_ring().size() +
                 sim.nf(nf).in_flight_packets();
  }
  EXPECT_EQ(wire, admitted + entry_drops);
  const std::uint64_t accounted = egress + ring_drops + crash_drops + in_queues;
  EXPECT_LE(admitted, accounted + 16);
  EXPECT_GE(admitted + 16, accounted);

  // Drain-to-zero: traffic stopped at 70 ms and every window closed by
  // 55 ms, so by 150 ms the pipeline must be empty and healthy.
  EXPECT_EQ(sim.nf_metrics(r.logger).rx_queue_len, 0u);
  EXPECT_EQ(sim.nf_metrics(r.fwd).rx_queue_len, 0u);
  EXPECT_EQ(sim.pool().in_use(), 0u);
  EXPECT_FALSE(r.io->would_block());
  EXPECT_FALSE(r.io->degraded());
  EXPECT_EQ(r.io->live_requests(), 0u);
  EXPECT_EQ(sim.disk().inflight_requests(), 0u);
  EXPECT_FALSE(sim.disk().wedged());

  // Watchdog honesty: only the stuck policy may escalate to a force-kill.
  const auto& ls = sim.nf_lifecycle_stats(r.logger);
  if (policy != io::AsyncIoEngine::OnIoFail::kStuck) {
    EXPECT_EQ(ls.forced_crashes, 0u);
    EXPECT_EQ(ls.crashes, 0u);
  }
  EXPECT_EQ(sim.nf_lifecycle_stats(r.fwd).forced_crashes, 0u);
}

// Overload + fault composition (DESIGN.md §17): the ingress admission
// gate is engaged — actively shedding the bulk class — when the shared
// classifier NF crashes and restarts. The shed must not corrupt the
// accounting through DEAD/RESTARTING (its discards are a distinct sink
// next to entry-throttle and crash drops), everything must drain to zero
// once traffic stops, and the watchdog must not misread the overload or
// the victim squeeze as a death (only the injected crash counts).
TEST(ChaosOverload, AdmissionEngagedThroughCrashAndRestart) {
  const auto once = [] {
    PlatformConfig cfg;
    cfg.set_nfvnice(true);
    cfg.manager.push_aside.enabled = true;
    auto sim = std::make_unique<Simulation>(cfg);
    const auto c0 = sim->add_core(SchedPolicy::kCfsBatch);
    const auto c1 = sim->add_core(SchedPolicy::kCfsBatch);
    const auto gate = sim->add_nf("gate", c0, nf::CostModel::fixed(600));
    const auto gold_nf = sim->add_nf("gold_nf", c1, nf::CostModel::fixed(150));
    const auto bulk_nf = sim->add_nf("bulk_nf", c1, nf::CostModel::fixed(50));
    const auto gold = sim->add_chain("gold", {gate, gold_nf});
    const auto bulk = sim->add_chain("bulk", {gate, bulk_nf});
    sim->set_chain_class(gold, /*priority=*/4.0, /*utility=*/10.0);
    sim->set_chain_class(bulk, /*priority=*/1.0, /*utility=*/2.0);
    sim->set_chain_slo(gold, 300.0);  // violation clock = engage trigger
    sim->add_udp_flow(gold, 0.5e6, {.stop_seconds = 0.25});
    sim->add_udp_flow(bulk, 8e6, {.stop_seconds = 0.25});
    fault::FaultPlan plan;
    plan.add_crash(gate, sim->clock().from_seconds(0.1),
                   sim->clock().from_seconds(0.02));
    sim->set_fault_plan(std::move(plan));
    sim->run_for_seconds(0.6);

    // Conservation across all three ingress sinks plus the crash loss.
    const std::uint64_t wire = sim->manager().wire_ingress();
    std::uint64_t admitted = 0, entry_drops = 0, adm_discards = 0, egress = 0;
    for (const auto chain : {gold, bulk}) {
      const auto cm = sim->chain_metrics(chain);
      admitted += cm.entry_admitted;
      entry_drops += cm.entry_throttle_drops;
      adm_discards += cm.admission_discards;
      egress += cm.egress_packets;
    }
    std::uint64_t ring_drops = 0, crash_drops = 0, in_queues = 0;
    for (const auto nf : {gate, gold_nf, bulk_nf}) {
      const auto m = sim->nf_metrics(nf);
      ring_drops += m.rx_full_drops;
      crash_drops += m.crash_drops;
      in_queues += sim->nf(nf).rx_ring().size() +
                   sim->nf(nf).tx_ring().size() +
                   sim->nf(nf).in_flight_packets();
    }
    EXPECT_GT(adm_discards, 0u) << "gate never engaged during the fault run";
    EXPECT_EQ(wire, admitted + entry_drops + adm_discards);
    EXPECT_EQ(admitted, egress + ring_drops + crash_drops);

    // Drain-to-zero: traffic stopped at 0.25 s, restart completed long
    // before 0.6 s.
    EXPECT_EQ(in_queues, 0u);
    EXPECT_EQ(sim->pool().in_use(), 0u);
    EXPECT_EQ(sim->nf_lifecycle(gate), fault::NfLifecycle::kRunning);

    // Watchdog honesty: exactly the injected crash, no force-kills — an
    // overloaded (or push-aside-squeezed) NF is slow, not dead.
    for (const auto nf : {gate, gold_nf, bulk_nf}) {
      EXPECT_EQ(sim->nf_lifecycle_stats(nf).forced_crashes, 0u);
    }
    EXPECT_EQ(sim->nf_lifecycle_stats(gate).crashes, 1u);
    EXPECT_EQ(sim->nf_lifecycle_stats(gold_nf).crashes, 0u);
    EXPECT_EQ(sim->nf_lifecycle_stats(bulk_nf).crashes, 0u);
    return sim->report_json();
  };
  // Byte-determinism: the same overload+fault schedule replays identically.
  EXPECT_EQ(once(), once());
}

TEST(ChaosSmoke, RandomizedDeviceFaultSchedules) {
  nfv::Rng rng(0xC4A05C4A05ULL);  // fixed seed: the suite is reproducible
  for (int round = 0; round < 4; ++round) {
    const ChaosSchedule schedule = draw_schedule(rng);
    std::string label = "round " + std::to_string(round) + " policy=" +
                        io::to_string(schedule.policy) + " windows=";
    for (const FaultWindow& w : schedule.windows) {
      label += std::string(fault::to_string(w.kind)) + "@" +
               std::to_string(w.at_s) + "+" + std::to_string(w.for_s) + " ";
    }

    ChaosRun r1 = build(schedule);
    r1.sim->run_for_seconds(0.15);
    check_invariants(r1, schedule.policy, label);

    // Byte-determinism: an identical rebuild replays identically.
    ChaosRun r2 = build(schedule);
    r2.sim->run_for_seconds(0.15);
    EXPECT_EQ(r1.sim->report_json(), r2.sim->report_json()) << label;
  }
}

}  // namespace
}  // namespace nfv::core
