// End-to-end behaviour of the Simulation facade.
#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nfv::core {
namespace {

TEST(Simulation, PolicyNames) {
  EXPECT_STREQ(to_string(SchedPolicy::kCfsNormal), "NORMAL");
  EXPECT_STREQ(to_string(SchedPolicy::kCfsBatch), "BATCH");
  EXPECT_STREQ(to_string(SchedPolicy::kRoundRobin), "RR");
}

TEST(Simulation, TimeAdvances) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  sim.add_chain("c", {nf});
  EXPECT_DOUBLE_EQ(sim.now_seconds(), 0.0);
  sim.run_for_seconds(0.25);
  EXPECT_NEAR(sim.now_seconds(), 0.25, 1e-9);
  sim.run_for_seconds(0.25);
  EXPECT_NEAR(sim.now_seconds(), 0.5, 1e-9);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    const auto core_id = sim.add_core(SchedPolicy::kCfsNormal);
    const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
    const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(550));
    const auto chain = sim.add_chain("ab", {a, b});
    sim.add_udp_flow(chain, 4e6);
    sim.run_for_seconds(0.05);
    return sim.chain_metrics(chain).egress_packets;
  };
  const auto first = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(run_once(), first);
  EXPECT_EQ(run_once(), first);
}

TEST(Simulation, MultiCorePlacement) {
  Simulation sim;
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", c0, nf::CostModel::fixed(500));
  const auto b = sim.add_nf("b", c1, nf::CostModel::fixed(500));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 3e6);
  sim.run_for_seconds(0.1);
  // Each NF has its own core: both can exceed 50% CPU simultaneously.
  EXPECT_GT(sim.nf_cpu_share(a), 0.5);
  EXPECT_GT(sim.nf_cpu_share(b), 0.5);
  EXPECT_EQ(sim.core_count(), 2u);
}

TEST(Simulation, ThroughputBoundedByBottleneck) {
  Simulation sim;
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
  // 4500-cycle NF on its own core: capacity = 2.6e9/4500 = 0.578 Mpps.
  const auto a = sim.add_nf("a", c0, nf::CostModel::fixed(550));
  const auto b = sim.add_nf("b", c1, nf::CostModel::fixed(4500));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 6e6);
  sim.run_for_seconds(0.2);
  const double mpps = static_cast<double>(
                          sim.chain_metrics(chain).egress_packets) /
                      sim.now_seconds() / 1e6;
  EXPECT_GT(mpps, 0.45);
  EXPECT_LT(mpps, 0.60);
}

TEST(Simulation, ReportPrintsAllNfsAndChains) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("alpha", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("mychain", {a});
  sim.add_udp_flow(chain, 1e5);
  sim.run_for_seconds(0.01);
  std::ostringstream oss;
  sim.print_report(oss);
  const std::string report = oss.str();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("mychain"), std::string::npos);
}

TEST(Simulation, MetricsSnapshotsSubtract) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 1e5);
  sim.run_for_seconds(0.05);
  const auto before = sim.nf_metrics(nf);
  sim.run_for_seconds(0.05);
  const auto after = sim.nf_metrics(nf);
  const auto delta = after - before;
  EXPECT_GT(delta.processed, 0u);
  EXPECT_LT(delta.processed, after.processed);
  EXPECT_NEAR(static_cast<double>(delta.processed), 5000.0, 200.0);
}

TEST(Simulation, AddFlowAfterStart) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  sim.run_for_seconds(0.01);
  const auto flow = sim.add_udp_flow(chain, 1e5);
  sim.run_for_seconds(0.05);
  EXPECT_GT(sim.manager().flow_counters(flow).egress_packets, 1000u);
}

TEST(Simulation, RrQuantumConfigurable) {
  Simulation sim;
  const auto fast_rr = sim.add_core(SchedPolicy::kRoundRobin, 1.0);
  const auto nf = sim.add_nf("nf", fast_rr, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 1e5);
  sim.run_for_seconds(0.02);
  EXPECT_GT(sim.chain_metrics(chain).egress_packets, 1000u);
}

}  // namespace
}  // namespace nfv::core
