// Cross-chain overload control end-to-end (DESIGN.md §17).
//
// The contract under test: the ingress admission gate sheds the
// lowest-utility class at a pressured shared first hop (and only that
// class — the priority chain rides through), releases when the pressure
// clears, and keeps a shed class alive through the trickle bucket; the
// PAM push-aside machine confiscates a bounded share slice from
// lower-priority core neighbors of a pressured high-priority NF and
// settles back to exactly 1.0 once the pressure ends; the two controllers
// compose with the SLO boost and the lifecycle watchdog without
// oscillation; reports are byte-identical across reruns and across
// sharded worker counts; and a run that registers no class and leaves
// push-aside off emits none of the new report blocks.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

namespace nfv::core {
namespace {

PlatformConfig nfvnice_config() {
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  return cfg;
}

/// The fig_overload rig, scaled down: core0 runs a shared classifier
/// `gate` heading a high-utility gold chain (tight SLO, short ring,
/// priority 2.0 downstream) and a low-utility bulk chain offered ~2x the
/// gate's capacity; core1 adds a saturating hog so the gold tail is
/// squeezed from below too.
struct OverloadRig {
  std::unique_ptr<Simulation> sim;
  flow::NfId gate = 0;
  flow::NfId gold_nf = 0;
  flow::NfId bulk_nf = 0;
  flow::NfId hog_nf = 0;
  flow::ChainId gold = 0;
  flow::ChainId bulk = 0;
  flow::ChainId hog = 0;

  /// `stop_seconds` stops the overloaders (bulk + hog) only; the gold
  /// flow keeps running so its tail telemetry gathers fresh recovery
  /// evidence — a chain with a stale over-target window conservatively
  /// holds its group's shed ladder.
  explicit OverloadRig(PlatformConfig cfg, bool classes,
                       double stop_seconds = -1.0) {
    sim = std::make_unique<Simulation>(cfg);
    const auto core0 = sim->add_core(SchedPolicy::kCfsNormal);
    const auto core1 = sim->add_core(SchedPolicy::kCfsNormal);
    NfOptions gold_opts;
    gold_opts.priority = 2.0;
    gold_opts.rx_capacity = 256;
    gate = sim->add_nf("gate", core0, nf::CostModel::fixed(600));
    gold_nf =
        sim->add_nf("gold_nf", core1, nf::CostModel::fixed(1200), gold_opts);
    bulk_nf = sim->add_nf("bulk_nf", core1, nf::CostModel::fixed(50));
    hog_nf = sim->add_nf("hog", core1, nf::CostModel::fixed(600));
    gold = sim->add_chain("gold", {gate, gold_nf});
    bulk = sim->add_chain("bulk", {gate, bulk_nf});
    hog = sim->add_chain("hog", {hog_nf});
    sim->set_chain_slo(gold, 300.0);
    if (classes) {
      sim->set_chain_class(gold, /*priority=*/4.0, /*utility=*/10.0);
      sim->set_chain_class(bulk, /*priority=*/1.0, /*utility=*/2.0);
    }
    UdpOptions opts;
    opts.stop_seconds = stop_seconds;
    sim->add_udp_flow(gold, 0.5e6);
    sim->add_udp_flow(bulk, 8e6, opts);
    sim->add_udp_flow(hog, 5e6, opts);
  }
};

TEST(OverloadAdmission, ShedsLowestUtilityClassOnly) {
  OverloadRig r(nfvnice_config(), /*classes=*/true);
  r.sim->run_for_seconds(0.3);

  const auto br = r.sim->chain_admission_report(r.bulk);
  const auto gr = r.sim->chain_admission_report(r.gold);
  ASSERT_TRUE(br.classed);
  ASSERT_TRUE(gr.classed);
  EXPECT_GT(br.engagements, 0u) << "bulk (utility 2) must be shed";
  EXPECT_GT(br.discards, 0u);
  // The gate is queue-pressured the whole run, yet the ladder never
  // reaches the high-utility class: shedding bulk relieves the queue
  // within one hold period.
  EXPECT_EQ(gr.discards, 0u) << "gold (utility 10) must ride through";

  // The report's counters and the chain metrics expose the same sink.
  EXPECT_EQ(r.sim->chain_metrics(r.bulk).admission_discards, br.discards);
  EXPECT_EQ(r.sim->chain_metrics(r.gold).admission_discards, 0u);

  // Trickle liveness: a shed class keeps a bounded trickle flowing (its
  // downstream cost estimate stays warm), it is not blackholed.
  EXPECT_GT(br.trickle_admits, 0u);
  EXPECT_GT(r.sim->chain_metrics(r.bulk).egress_packets, 0u);
}

TEST(OverloadAdmission, ReleasesWhenPressureClears) {
  // The overloaders stop at 0.2 s; gold keeps flowing, sails back under
  // its target, and by 0.7 s the gate ring has long drained below the
  // release watermark — the ladder must have fully de-escalated.
  OverloadRig r(nfvnice_config(), /*classes=*/true, /*stop_seconds=*/0.2);
  r.sim->run_for_seconds(0.7);
  const auto br = r.sim->chain_admission_report(r.bulk);
  EXPECT_GT(br.engagements, 0u);
  EXPECT_GE(br.releases, br.engagements) << "every shed must be lifted";
  EXPECT_FALSE(br.engaged);
  EXPECT_FALSE(r.sim->chain_admission_report(r.gold).engaged);
}

TEST(OverloadAdmission, ImprovesPriorityGoodputUnderOverload) {
  // The headline the bench pins, as a structural inequality: with classes
  // registered the gold chain retains at least as much goodput as under
  // plain backpressure, and the bulk shed shows up as admission discards.
  OverloadRig with(nfvnice_config(), /*classes=*/true);
  OverloadRig without(nfvnice_config(), /*classes=*/false);
  with.sim->run_for_seconds(0.3);
  without.sim->run_for_seconds(0.3);
  EXPECT_GE(with.sim->chain_metrics(with.gold).egress_packets,
            without.sim->chain_metrics(without.gold).egress_packets);
  EXPECT_EQ(without.sim->chain_metrics(without.bulk).admission_discards, 0u);
}

/// Single-core rig for the push-aside trajectory: everything on core0 so
/// the lane-0 Manager owns every NF at any shard setting (manager() is
/// the lane-0 replica when sharded). The high-priority NF demands more
/// than its rate-cost share (1.2 Mpps x 1200 cycles against the hog's
/// 3e9-cycle demand) and runs under BATCH — no wakeup preemption, so it
/// waits out the hog's timeslices and its short ring latches the high
/// watermark (the slo_test ContendedPair recipe); scaling the hog toward
/// the floor is what frees enough of the core to drain it.
struct PushRig {
  std::unique_ptr<Simulation> sim;
  flow::NfId gold_nf = 0;
  flow::NfId hog_nf = 0;

  explicit PushRig(double stop_seconds) {
    PlatformConfig cfg = nfvnice_config();
    cfg.manager.push_aside.enabled = true;
    sim = std::make_unique<Simulation>(cfg);
    const auto core0 = sim->add_core(SchedPolicy::kCfsBatch);
    NfOptions gold_opts;
    gold_opts.priority = 2.0;
    gold_opts.rx_capacity = 256;
    gold_nf =
        sim->add_nf("gold_nf", core0, nf::CostModel::fixed(1200), gold_opts);
    hog_nf = sim->add_nf("hog", core0, nf::CostModel::fixed(600));
    const auto gold = sim->add_chain("gold", {gold_nf});
    const auto hog = sim->add_chain("hog", {hog_nf});
    UdpOptions opts;
    opts.stop_seconds = stop_seconds;
    sim->add_udp_flow(gold, 1.2e6, opts);
    sim->add_udp_flow(hog, 5e6, opts);
  }
};

TEST(OverloadPushAside, GrabIsBoundedAndPrioritized) {
  PushRig r(/*stop_seconds=*/-1.0);
  r.sim->run_for_seconds(0.3);
  const auto& mgr = r.sim->manager();
  const double floor = mgr.config().push_aside.victim_floor;
  EXPECT_GT(mgr.push_grabs_of(r.hog_nf), 0u)
      << "pressured high-priority neighbor must confiscate a slice";
  EXPECT_GE(mgr.push_scale_of(r.hog_nf), floor) << "grab must respect floor";
  EXPECT_LT(mgr.push_scale_of(r.hog_nf), 1.0);
  // The aggressor is never scaled: no higher-priority neighbor exists.
  EXPECT_DOUBLE_EQ(mgr.push_scale_of(r.gold_nf), 1.0);
  EXPECT_EQ(mgr.push_grabs_of(r.gold_nf), 0u);
}

TEST(OverloadPushAside, GiveBackSettlesToExactlyOne) {
  // Traffic stops at 0.2 s; the additive give-back (+0.25 per update after
  // the hold) must walk the victim back to *exactly* 1.0 — the bit-exact
  // rate-cost allocation — well before 1.0 s.
  PushRig r(/*stop_seconds=*/0.2);
  r.sim->run_for_seconds(1.0);
  const auto& mgr = r.sim->manager();
  EXPECT_GT(mgr.push_grabs_of(r.hog_nf), 0u);
  EXPECT_GT(mgr.push_givebacks_of(r.hog_nf), 0u);
  EXPECT_DOUBLE_EQ(mgr.push_scale_of(r.hog_nf), 1.0);
}

TEST(OverloadCompose, BoostPushAsideAndCrashRecoveryOnOneCore) {
  // Satellite contract: all three controllers plus the lifecycle watchdog
  // compose on one core. The hog crashes mid-overload and restarts; the
  // run must stay bounded (no control oscillation), end healthy, and
  // replay byte-identically.
  const auto once = [](bool with_report) {
    PlatformConfig cfg;
    cfg.set_nfvnice(true);
    cfg.manager.slo.enabled = true;
    cfg.manager.push_aside.enabled = true;
    Simulation sim(cfg);
    const auto core0 = sim.add_core(SchedPolicy::kCfsNormal);
    NfOptions gold_opts;
    gold_opts.priority = 2.0;
    gold_opts.rx_capacity = 256;
    const auto gold_nf =
        sim.add_nf("gold_nf", core0, nf::CostModel::fixed(1200), gold_opts);
    const auto hog_nf = sim.add_nf("hog", core0, nf::CostModel::fixed(600));
    const auto gold = sim.add_chain("gold", {gold_nf});
    const auto hog = sim.add_chain("hog", {hog_nf});
    sim.set_chain_slo(gold, 300.0);
    sim.set_chain_class(gold, /*priority=*/4.0, /*utility=*/10.0);
    sim.set_chain_class(hog, /*priority=*/1.0, /*utility=*/2.0);
    sim.add_udp_flow(gold, 0.5e6);
    sim.add_udp_flow(hog, 5e6);
    fault::FaultPlan plan;
    plan.add_crash(hog_nf, sim.clock().from_seconds(0.15),
                   sim.clock().from_seconds(0.02));
    sim.set_fault_plan(std::move(plan));
    sim.run_for_seconds(0.4);

    // Bounded trajectories everywhere: boost within the controller's cap,
    // victim scale within [floor, 1], ladder actions rate-limited by the
    // hold (0.4 s at one action per hold period of 5 evals = at most ~80).
    EXPECT_GE(sim.chain_slo_report(gold).boost, 1.0);
    EXPECT_LE(sim.chain_slo_report(gold).boost, cfg.manager.slo.max_boost);
    const auto& mgr = sim.manager();
    EXPECT_GE(mgr.push_scale_of(hog_nf),
              cfg.manager.push_aside.victim_floor);
    EXPECT_LE(mgr.push_scale_of(hog_nf), 1.0);
    const auto gr = sim.chain_admission_report(gold);
    const auto hr = sim.chain_admission_report(hog);
    EXPECT_LT(gr.engagements + gr.releases + hr.engagements + hr.releases,
              100u)
        << "shed ladder is flapping";
    // The watchdog recovered the hog and never misdiagnosed the victim
    // squeeze as a death.
    EXPECT_EQ(sim.nf_lifecycle(hog_nf), fault::NfLifecycle::kRunning);
    EXPECT_EQ(sim.nf_lifecycle_stats(hog_nf).forced_crashes, 0u);
    EXPECT_EQ(sim.nf_lifecycle_stats(gold_nf).crashes, 0u);
    return with_report ? sim.report_json() : std::string();
  };
  EXPECT_EQ(once(true), once(true));
}

TEST(OverloadSharded, ReportByteIdenticalAtAnyWorkerCount) {
  // Everything armed at once; sim_shards=1 and 4 must serialize the exact
  // same bytes (DESIGN.md §14 contract extended to §17 — the admission
  // gate runs on the home lane, the violation flag arrives by mirror).
  const auto run = [](std::uint32_t shards) {
    PlatformConfig cfg = nfvnice_config();
    cfg.manager.push_aside.enabled = true;
    cfg.sim_shards = shards;
    OverloadRig r(cfg, /*classes=*/true);
    r.sim->run_for_seconds(0.3);
    return r.sim->report_json();
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(4));
  // The merged report carries the new blocks, not empty replicas.
  EXPECT_NE(one.find("\"admission\""), std::string::npos);
  EXPECT_NE(one.find("\"pam\""), std::string::npos);
}

TEST(OverloadOff, NoClassesNoPushMeansNoNewReportBlocks) {
  // Zero-cost-when-off: a run without classes and with push-aside left
  // disabled must not emit a single admission/pam report block (the same
  // bytes a build without §17 would have written), and must replay
  // byte-identically.
  const auto run = [] {
    OverloadRig r(nfvnice_config(), /*classes=*/false);
    r.sim->run_for_seconds(0.2);
    return r.sim->report_json();
  };
  const std::string report = run();
  EXPECT_EQ(report.find("\"admission\""), std::string::npos);
  EXPECT_EQ(report.find("\"pam\""), std::string::npos);
  EXPECT_EQ(report.find("\"adm."), std::string::npos);
  EXPECT_EQ(report, run());
}

}  // namespace
}  // namespace nfv::core
