// Rate-cost proportional fairness properties (§2.1, §3.2, Fig. 15).
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "core/simulation.hpp"

namespace nfv::core {
namespace {

/// Build N independent single-NF chains sharing one core, with the given
/// costs and per-flow rates; return per-flow egress throughput after `secs`.
struct FairnessRun {
  std::vector<double> throughput_pps;
  std::vector<double> cpu_share;
};

FairnessRun run_shared_core(bool nfvnice, const std::vector<Cycles>& costs,
                            const std::vector<double>& rates, double secs,
                            SchedPolicy policy = SchedPolicy::kCfsBatch) {
  PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(policy);
  std::vector<flow::NfId> nfs;
  std::vector<flow::ChainId> chains;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    nfs.push_back(sim.add_nf("nf" + std::to_string(i), core_id,
                             nf::CostModel::fixed(costs[i])));
    chains.push_back(sim.add_chain("c" + std::to_string(i), {nfs.back()}));
    sim.add_udp_flow(chains.back(), rates[i]);
  }
  // Skip the start-up transient (estimator warm-up + first share updates),
  // then measure steady state.
  const double warmup = 0.2;
  sim.run_for_seconds(warmup);
  std::vector<ChainMetrics> at_warmup;
  std::vector<Cycles> runtime_at_warmup;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    at_warmup.push_back(sim.chain_metrics(chains[i]));
    runtime_at_warmup.push_back(sim.nf_metrics(nfs[i]).runtime);
  }
  sim.run_for_seconds(secs);
  FairnessRun out;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const auto delta = sim.chain_metrics(chains[i]) - at_warmup[i];
    out.throughput_pps.push_back(static_cast<double>(delta.egress_packets) /
                                 secs);
    out.cpu_share.push_back(
        static_cast<double>(sim.nf_metrics(nfs[i]).runtime -
                            runtime_at_warmup[i]) /
        (secs * sim.clock().hz()));
  }
  return out;
}

TEST(Fairness, EqualCostEqualRateIsFairEverywhere) {
  const auto r = run_shared_core(true, {250, 250, 250}, {5e6, 5e6, 5e6}, 0.3);
  EXPECT_GT(jain_fairness_index(r.throughput_pps), 0.98);
}

TEST(Fairness, HeterogeneousCostsEqualRates_NfvniceEqualisesOutput) {
  // §2.1: "if the NFs have the same arrival rate, but one requires twice
  // the processing cost, then we expect the heavy NF to get about twice as
  // much CPU time, resulting in both NFs having the same output rate."
  const auto r = run_shared_core(true, {500, 250}, {6e6, 6e6}, 0.4);
  EXPECT_NEAR(r.throughput_pps[0] / r.throughput_pps[1], 1.0, 0.15);
  EXPECT_NEAR(r.cpu_share[0] / r.cpu_share[1], 2.0, 0.4);
}

TEST(Fairness, DefaultCfsDoesNotEqualiseOutput) {
  // Without NFVnice, CFS divides CPU equally, so the cheap NF pushes ~2x
  // the packets (Fig. 1b's NORMAL behaviour).
  const auto r =
      run_shared_core(false, {500, 250}, {6e6, 6e6}, 0.4, SchedPolicy::kCfsNormal);
  EXPECT_GT(r.throughput_pps[1] / r.throughput_pps[0], 1.5);
}

TEST(Fairness, EqualCostDoubleRateGetsDoubleOutput) {
  // §2.1: same cost, 2x arrival rate => 2x output (rate proportionality).
  // Total demand: (4e6+2e6)*250 = 1.5e9 < 2.6e9, so no overload; both
  // flows are served in full — proportionality is trivially met.
  const auto r = run_shared_core(true, {250, 250}, {4e6, 2e6}, 0.3);
  EXPECT_NEAR(r.throughput_pps[0] / r.throughput_pps[1], 2.0, 0.2);
}

TEST(Fairness, OverloadedEqualCostSplitsProportionallyToArrivals) {
  // Overload: demand 2x capacity with arrival ratio 2:1; rate-cost fair
  // shares keep the output ratio at ~2:1 rather than equalising.
  const auto r = run_shared_core(true, {550, 550}, {6e6, 3e6}, 0.4);
  EXPECT_NEAR(r.throughput_pps[0] / r.throughput_pps[1], 2.0, 0.4);
}

TEST(Fairness, SixWayDiversityJainIndex) {
  // Fig. 15b at diversity level 6: costs 1:2:5:20:40:60. NFVnice must keep
  // Jain's index near 1.0; default CFS must be dramatically unfair.
  // Low-weight NFs legitimately rotate at ~100 ms periods (a sub-1% CFS
  // share cannot run for less than one tick at a time), so fairness is a
  // steady-state, multi-second property — as in the paper's measurement.
  const std::vector<Cycles> costs = {100, 200, 500, 2000, 4000, 6000};
  const std::vector<double> rates(6, 2e6);
  const auto nice = run_shared_core(true, costs, rates, 2.0);
  const auto dflt =
      run_shared_core(false, costs, rates, 2.0, SchedPolicy::kCfsNormal);
  const double j_nice = jain_fairness_index(nice.throughput_pps);
  const double j_dflt = jain_fairness_index(dflt.throughput_pps);
  EXPECT_GT(j_nice, 0.85);
  EXPECT_LT(j_dflt, 0.70);
  EXPECT_GT(j_nice, j_dflt + 0.15);
}

TEST(Fairness, PriorityScalesAllocation) {
  // The Priority_i knob gives differentiated service (§3.2).
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  NfOptions high_prio;
  high_prio.priority = 4.0;
  const auto vip =
      sim.add_nf("vip", core_id, nf::CostModel::fixed(550), high_prio);
  const auto std_nf = sim.add_nf("std", core_id, nf::CostModel::fixed(550));
  const auto c1 = sim.add_chain("vip", {vip});
  const auto c2 = sim.add_chain("std", {std_nf});
  sim.add_udp_flow(c1, 6e6);
  sim.add_udp_flow(c2, 6e6);
  sim.run_for_seconds(0.4);
  const double ratio =
      static_cast<double>(sim.chain_metrics(c1).egress_packets) /
      static_cast<double>(sim.chain_metrics(c2).egress_packets);
  EXPECT_GT(ratio, 2.0);  // 4x priority buys a markedly larger share
}

TEST(Fairness, DynamicCostChangeRebalancesShares) {
  // Fig. 15a: two NFs with costs 1:3; when NF1's cost rises to match NF2,
  // the CPU split moves from (25%, 75%) toward (50%, 50%).
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("nf1", core_id, nf::CostModel::fixed(400));
  const auto nf2 = sim.add_nf("nf2", core_id, nf::CostModel::fixed(1200));
  const auto c1 = sim.add_chain("c1", {nf1});
  const auto c2 = sim.add_chain("c2", {nf2});
  sim.add_udp_flow(c1, 4e6);
  sim.add_udp_flow(c2, 4e6);

  sim.run_for_seconds(0.3);
  const auto before1 = sim.nf_metrics(nf1);
  const auto before2 = sim.nf_metrics(nf2);
  const double w_before = static_cast<double>(sim.nf(nf1).weight()) /
                          static_cast<double>(sim.nf(nf2).weight());

  sim.nf(nf1).cost_model().set_scale(3.0);  // step change at t=0.3s
  sim.run_for_seconds(0.3);
  const auto d1 = sim.nf_metrics(nf1) - before1;
  const auto d2 = sim.nf_metrics(nf2) - before2;
  const double w_after = static_cast<double>(sim.nf(nf1).weight()) /
                         static_cast<double>(sim.nf(nf2).weight());

  EXPECT_NEAR(w_before, 1.0 / 3.0, 0.15);
  EXPECT_NEAR(w_after, 1.0, 0.3);
  // CPU split in the second window is ~equal.
  EXPECT_NEAR(static_cast<double>(d1.runtime) / static_cast<double>(d2.runtime),
              1.0, 0.25);
}

}  // namespace
}  // namespace nfv::core
