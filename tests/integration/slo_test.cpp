// Latency-SLO controller end-to-end (DESIGN.md §16).
//
// The contract under test: per-chain tail telemetry counts every egress;
// the violation clock advances while the window p99 sits over the target;
// the share-boost controller ramps under contention and decays back to
// exactly 1.0 once the contention stops; reports are byte-identical across
// reruns and across sharded worker counts; and a simulation with no SLO
// targets produces byte-identical reports whether the controller is
// enabled or not (the zero-cost-when-off contract).

#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"

namespace {

using nfv::core::PlatformConfig;
using nfv::core::SchedPolicy;
using nfv::core::Simulation;
using nfv::core::UdpOptions;

PlatformConfig nfvnice_config(bool slo_enabled) {
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  cfg.manager.slo.enabled = slo_enabled;
  return cfg;
}

/// One core, a cheap latency chain plus an expensive hog whose flow stops
/// at `hog_stop` (negative = never). BATCH makes the contention bite
/// immediately: without wakeup preemption the latency chain waits out the
/// hog's whole timeslice every rotation.
struct ContendedPair {
  Simulation sim;
  nfv::flow::ChainId lat;
  nfv::flow::ChainId hog;

  explicit ContendedPair(const PlatformConfig& cfg, double target_us,
                         double hog_stop = -1.0)
      : sim(cfg) {
    const auto core = sim.add_core(SchedPolicy::kCfsBatch);
    const auto lat_nf =
        sim.add_nf("lat", core, nfv::nf::CostModel::fixed(150));
    const auto hog_nf =
        sim.add_nf("hog", core, nfv::nf::CostModel::fixed(600));
    lat = sim.add_chain("latency", {lat_nf});
    hog = sim.add_chain("hog", {hog_nf});
    if (target_us > 0.0) sim.set_chain_slo(lat, target_us);
    sim.add_udp_flow(lat, 0.5e6);
    UdpOptions hog_opts;
    hog_opts.stop_seconds = hog_stop;
    sim.add_udp_flow(hog, 5e6, hog_opts);
  }
};

TEST(SloTelemetry, EstimatorCountsEveryChainEgress) {
  ContendedPair t(nfvnice_config(false), /*target_us=*/200.0);
  t.sim.run_for_seconds(0.2);
  const auto report = t.sim.chain_slo_report(t.lat);
  const auto metrics = t.sim.chain_metrics(t.lat);
  EXPECT_GT(metrics.egress_packets, 0u);
  // Every egress lands one sample in the estimator — no sampling policy,
  // no drops (the window only bounds retention, not counting).
  EXPECT_EQ(report.tail.total_count, metrics.egress_packets);
  EXPECT_EQ(report.tail.samples,
            std::min<std::uint64_t>(metrics.egress_packets, 2048));
  EXPECT_GT(report.tail.p99, 0u);
  EXPECT_GE(report.tail.max, report.tail.p99);
  EXPECT_GE(report.tail.p99, report.tail.p95);
  EXPECT_GE(report.tail.p95, report.tail.p50);
}

TEST(SloTelemetry, ViolationClockAdvancesWhileOverTarget) {
  // Telemetry-only run (controller off): the starved chain's p99 exceeds
  // the 200 us target almost immediately under BATCH and never recovers,
  // so the violation clock tracks elapsed time closely.
  ContendedPair t(nfvnice_config(false), /*target_us=*/200.0);
  t.sim.run_for_seconds(0.3);
  const auto report = t.sim.chain_slo_report(t.lat);
  const double violation_s =
      t.sim.clock().to_seconds(report.violation_cycles);
  EXPECT_GT(violation_s, 0.2);
  EXPECT_LE(violation_s, 0.3);
  // Controller off: boost stays at the identity everywhere.
  EXPECT_DOUBLE_EQ(report.boost, 1.0);
  // The report surfaces the SLO block for targeted chains.
  EXPECT_NE(t.sim.report_json().find("\"slo\""), std::string::npos);
}

TEST(SloController, BoostsUnderContentionThenDecaysWhenItEnds) {
  // Hog traffic stops at t=0.3 s. While it runs the latency chain
  // violates persistently and the controller must ramp its boost; after
  // it stops the chain sails far under target, the clear streak builds,
  // and the boost must decay back to exactly 1.0 (not merely near it).
  ContendedPair t(nfvnice_config(true), /*target_us=*/200.0,
                  /*hog_stop=*/0.3);
  t.sim.run_for_seconds(0.25);
  const auto mid = t.sim.chain_slo_report(t.lat);
  EXPECT_GT(mid.boost, 1.0);
  EXPECT_GT(mid.violation_cycles, 0u);

  t.sim.run_for_seconds(0.55);  // t = 0.8 s, 0.5 s after the hog stopped
  const auto end = t.sim.chain_slo_report(t.lat);
  EXPECT_DOUBLE_EQ(end.boost, 1.0);
  // Recovered: the violation clock froze well before the end of the run.
  const double tail_violation_s =
      t.sim.clock().to_seconds(end.violation_cycles - mid.violation_cycles);
  EXPECT_LT(tail_violation_s, 0.2);
  // And the recent window is comfortably under target.
  EXPECT_LT(t.sim.clock().to_micros(
                static_cast<nfv::Cycles>(end.tail.p99)),
            200.0);
}

TEST(SloController, ReportByteIdenticalAcrossReruns) {
  const auto once = [] {
    ContendedPair t(nfvnice_config(true), /*target_us=*/200.0,
                    /*hog_stop=*/0.2);
    t.sim.run_for_seconds(0.4);
    return t.sim.report_json();
  };
  EXPECT_EQ(once(), once());
}

TEST(SloSharded, CrossLaneChainIsByteIdenticalAtAnyWorkerCount) {
  // A 2-hop chain across two cores: the estimator fills on the last
  // hop's lane, the first hop's lane runs on the mirrored p99. The lane
  // decomposition is fixed by the topology, so sim_shards=1 and 4 must
  // produce byte-identical reports (DESIGN.md §14 contract, extended to
  // the SLO subsystem).
  const auto run = [](std::uint32_t shards) {
    PlatformConfig cfg = nfvnice_config(true);
    cfg.sim_shards = shards;
    Simulation sim(cfg);
    const auto c0 = sim.add_core(SchedPolicy::kCfsNormal);
    const auto c1 = sim.add_core(SchedPolicy::kCfsNormal);
    const auto lat0 = sim.add_nf("lat0", c0, nfv::nf::CostModel::fixed(150));
    const auto lat1 = sim.add_nf("lat1", c1, nfv::nf::CostModel::fixed(150));
    const auto hog0 = sim.add_nf("hog0", c0, nfv::nf::CostModel::fixed(600));
    const auto hog1 = sim.add_nf("hog1", c1, nfv::nf::CostModel::fixed(600));
    const auto lat = sim.add_chain("latency", {lat0, lat1});
    const auto ha = sim.add_chain("hog0", {hog0});
    const auto hb = sim.add_chain("hog1", {hog1});
    sim.set_chain_slo(lat, 200.0);
    sim.add_udp_flow(lat, 0.5e6);
    sim.add_udp_flow(ha, 5e6);
    sim.add_udp_flow(hb, 5e6);
    sim.run_for_seconds(0.3);
    return sim.report_json();
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(4));
  // The merged report carries real telemetry, not empty replicas.
  EXPECT_NE(one.find("\"tail_latency_cycles\""), std::string::npos);
  EXPECT_NE(one.find("\"slo\""), std::string::npos);
}

TEST(SloSharded, MergedSnapshotEqualsOwnerLane) {
  // chain_slo_report folds per-lane state; with the window living on one
  // lane the fold must reproduce that lane's sample multiset exactly.
  PlatformConfig cfg = nfvnice_config(true);
  cfg.sim_shards = 2;
  Simulation sim(cfg);
  const auto c0 = sim.add_core(SchedPolicy::kCfsNormal);
  const auto c1 = sim.add_core(SchedPolicy::kCfsNormal);
  const auto a = sim.add_nf("a", c0, nfv::nf::CostModel::fixed(200));
  const auto b = sim.add_nf("b", c1, nfv::nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.set_chain_slo(chain, 500.0);
  sim.add_udp_flow(chain, 1e6);
  sim.run_for_seconds(0.1);
  const auto report = sim.chain_slo_report(chain);
  EXPECT_EQ(report.tail.total_count,
            sim.chain_metrics(chain).egress_packets);
  EXPECT_GT(report.tail.p99, 0u);
}

TEST(SloOff, NoTargetsMeansByteExactReportsEitherWay) {
  // With no chain targets the SLO paths must add zero work: enabling the
  // controller flag alone may not perturb a single event, share write or
  // report byte.
  const auto run = [](bool enabled) {
    ContendedPair t(nfvnice_config(enabled), /*target_us=*/0.0);
    t.sim.run_for_seconds(0.2);
    return t.sim.report_json();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
