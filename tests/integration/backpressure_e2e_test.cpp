// End-to-end backpressure behaviour (§3.3, §4.2).
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::core {
namespace {

struct ChainRun {
  double egress_mpps = 0.0;
  std::uint64_t wasted_drops = 0;
  std::uint64_t entry_drops = 0;
  std::vector<double> cpu_share;
};

ChainRun run_chain(bool nfvnice, const std::vector<Cycles>& costs,
                   double rate_pps, double secs, bool multicore = false,
                   SchedPolicy policy = SchedPolicy::kCfsBatch) {
  PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice);
  Simulation sim(cfg);
  std::vector<flow::NfId> nfs;
  std::size_t core_id = sim.add_core(policy);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (multicore && i > 0) core_id = sim.add_core(policy);
    nfs.push_back(sim.add_nf("nf" + std::to_string(i), core_id,
                             nf::CostModel::fixed(costs[i])));
  }
  const auto chain = sim.add_chain("chain", nfs);
  sim.add_udp_flow(chain, rate_pps);
  sim.run_for_seconds(secs);

  ChainRun out;
  const auto cm = sim.chain_metrics(chain);
  out.egress_mpps = static_cast<double>(cm.egress_packets) / secs / 1e6;
  out.entry_drops = cm.entry_throttle_drops;
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    out.wasted_drops += sim.nf_metrics(nfs[i]).wasted_drops_here;
    out.cpu_share.push_back(sim.nf_cpu_share(nfs[i]));
  }
  return out;
}

TEST(BackpressureE2E, SingleCoreChainThroughputImproves) {
  // §4.2.1 shape: Low-Med-High on one core; NFVnice beats Default.
  const std::vector<Cycles> costs = {120, 270, 550};
  const auto base = run_chain(false, costs, 6e6, 0.3);
  const auto nice = run_chain(true, costs, 6e6, 0.3);
  EXPECT_GT(nice.egress_mpps, base.egress_mpps * 1.2);
}

TEST(BackpressureE2E, WastedWorkCollapses) {
  // Table 3 shape: drops of already-processed packets fall by orders of
  // magnitude under NFVnice.
  const std::vector<Cycles> costs = {120, 270, 550};
  const auto base = run_chain(false, costs, 6e6, 0.3);
  const auto nice = run_chain(true, costs, 6e6, 0.3);
  ASSERT_GT(base.wasted_drops, 100'000u);
  EXPECT_LT(nice.wasted_drops, base.wasted_drops / 10);
}

TEST(BackpressureE2E, ExcessLoadShedAtEntry) {
  const auto nice = run_chain(true, {120, 270, 550}, 6e6, 0.2);
  EXPECT_GT(nice.entry_drops, 100'000u);  // selective early discard active
}

TEST(BackpressureE2E, MultiCoreUpstreamCpuFreed) {
  // Table 5 shape: NF1/NF2 on their own cores stop burning 100% CPU on
  // packets that die at NF3; NF3 (the bottleneck) stays saturated and the
  // aggregate throughput is unchanged.
  const std::vector<Cycles> costs = {550, 2200, 4500};
  const auto base = run_chain(false, costs, 6e6, 0.3, /*multicore=*/true);
  const auto nice = run_chain(true, costs, 6e6, 0.3, /*multicore=*/true);

  // Bottleneck rate = 2.6e9/4500 = 0.578 Mpps for both.
  EXPECT_NEAR(nice.egress_mpps, base.egress_mpps, 0.08);
  EXPECT_NEAR(nice.egress_mpps, 0.578, 0.08);

  // Default: upstream cores saturated. NFVnice: sharply lower.
  EXPECT_GT(base.cpu_share[0], 0.9);
  EXPECT_LT(nice.cpu_share[0], 0.45);
  EXPECT_LT(nice.cpu_share[1], base.cpu_share[1] * 0.9);
  // The bottleneck itself keeps its core busy.
  EXPECT_GT(nice.cpu_share[2], 0.9);
  // And wasted work disappears.
  EXPECT_GT(base.wasted_drops, 100'000u);
  EXPECT_LT(nice.wasted_drops, base.wasted_drops / 10);
}

TEST(BackpressureE2E, SharedNfServesUnthrottledChain) {
  // Fig. 8 / Table 6 shape: NF1 and NF4 shared by chain-1 (fast) and
  // chain-2 (bottlenecked by NF3). Backpressure on chain-2 must not
  // head-of-line block chain-1; with NFVnice chain-1's throughput roughly
  // doubles while chain-2 holds its bottleneck rate.
  auto run = [](bool nfvnice) {
    PlatformConfig cfg;
    cfg.set_nfvnice(nfvnice);
    Simulation sim(cfg);
    const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c2 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto c3 = sim.add_core(SchedPolicy::kCfsBatch);
    const auto nf1 = sim.add_nf("nf1", c0, nf::CostModel::fixed(270));
    const auto nf2 = sim.add_nf("nf2", c1, nf::CostModel::fixed(120));
    const auto nf3 = sim.add_nf("nf3", c2, nf::CostModel::fixed(4500));
    const auto nf4 = sim.add_nf("nf4", c3, nf::CostModel::fixed(300));
    const auto chain1 = sim.add_chain("chain1", {nf1, nf2, nf4});
    const auto chain2 = sim.add_chain("chain2", {nf1, nf3, nf4});
    sim.add_udp_flow(chain1, 7.44e6);
    sim.add_udp_flow(chain2, 7.44e6);
    sim.run_for_seconds(0.3);
    return std::pair{static_cast<double>(
                         sim.chain_metrics(chain1).egress_packets) /
                         0.3 / 1e6,
                     static_cast<double>(
                         sim.chain_metrics(chain2).egress_packets) /
                         0.3 / 1e6};
  };
  const auto [base1, base2] = run(false);
  const auto [nice1, nice2] = run(true);
  // Chain-2 pinned at its NF3 bottleneck (~0.578 Mpps) either way.
  EXPECT_NEAR(base2, 0.578, 0.08);
  EXPECT_NEAR(nice2, 0.578, 0.08);
  // Chain-1 improves substantially under NFVnice (paper: ~2x).
  EXPECT_GT(nice1, base1 * 1.5);
}

TEST(BackpressureE2E, HysteresisPreventsThrottleFlapping) {
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(100));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(2000));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 2e6);
  sim.run_for_seconds(0.5);
  const auto& stats = sim.manager().backpressure()->stats();
  ASSERT_GT(stats.throttle_entries, 0u);
  // Under sustained overload the hysteresis loop oscillates at the rate
  // set by the watermark margin (fill/drain ~200 packets per cycle): this
  // is load shaping, not thrash. What must hold: every throttle entry is
  // matched by at most one clear, and the cycle rate stays bounded by the
  // margin arithmetic (excess 0.7 Mpps / 205-packet margin ≈ 3.4 kHz).
  EXPECT_LE(stats.throttle_clears, stats.throttle_entries);
  EXPECT_GE(stats.throttle_clears + 1, stats.throttle_entries);
  EXPECT_LT(stats.throttle_entries, 2000u);
}

TEST(BackpressureE2E, TcpUdpIsolationShape) {
  // Fig. 13 core claim: per-flow (per-chain) backpressure protects a
  // responsive TCP flow from non-responsive UDP flows whose bottleneck is
  // elsewhere. Compare TCP goodput with NFVnice on vs off while 10 UDP
  // flows crater the shared NFs.
  auto run = [](bool nfvnice) {
    PlatformConfig cfg;
    cfg.set_nfvnice(nfvnice);
    Simulation sim(cfg);
    const auto shared = sim.add_core(SchedPolicy::kCfsBatch);
    const auto extra = sim.add_core(SchedPolicy::kCfsBatch);
    const auto nf1 = sim.add_nf("nf1", shared, nf::CostModel::fixed(250));
    const auto nf2 = sim.add_nf("nf2", shared, nf::CostModel::fixed(500));
    const auto nf3 = sim.add_nf("nf3", extra, nf::CostModel::fixed(30000));
    const auto tcp_chain = sim.add_chain("tcp", {nf1, nf2});
    const auto udp_chain = sim.add_chain("udp", {nf1, nf2, nf3});
    auto [flow_id, tcp] = sim.add_tcp_flow(tcp_chain);
    // 10 UDP flows at line-rate aggregate (14.88 Mpps of 64 B packets).
    for (int i = 0; i < 10; ++i) sim.add_udp_flow(udp_chain, 1.488e6);
    sim.run_for_seconds(0.5);
    const auto& fc = sim.manager().flow_counters(flow_id);
    return static_cast<double>(fc.egress_bytes) * 8.0 / 0.5;  // bps
  };
  const double base_bps = run(false);
  const double nice_bps = run(true);
  EXPECT_GT(nice_bps, base_bps * 3.0);
  EXPECT_GT(nice_bps, 1e9);  // TCP keeps multi-Gbps under NFVnice
}

}  // namespace
}  // namespace nfv::core
