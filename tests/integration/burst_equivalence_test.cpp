// Burst-window equivalence suite (DESIGN.md §9).
//
// The batched run-to-completion engine must be *gated by equivalence*: at
// burst window 1 every event the platform schedules is identical to the
// seed's one-event-per-packet schedule, so per-NF counters reproduce the
// seed byte-for-byte. The golden numbers below were captured from the
// pre-burst tree on the fig. 7 / table 3 scenario grid (three-NF chain at
// 6 Mpps overload, 20 simulated ms) and on the fig. 13-style TCP+UDP mix.
// Any drift here means the burst rewrite changed *behaviour*, not just the
// event count.
//
// The default-burst tests then pin down what the optimisation is allowed
// to change: event count and wall-clock, never conservation, determinism,
// or the paper-level conclusions (NFVnice beats Default at overload).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "core/simulation.hpp"

namespace nfv::core {
namespace {

struct NfGolden {
  std::uint64_t arrivals;
  std::uint64_t processed;
  std::uint64_t forwarded;
  std::uint64_t rx_full_drops;
  std::uint64_t involuntary_switches;
  Cycles runtime;
};

struct UdpGolden {
  const char* tag;
  SchedPolicy policy;
  double rr_quantum_ms;
  bool nfvnice;
  std::array<NfGolden, 3> nf;
  std::uint64_t egress;
  std::uint64_t entry_drops;
  std::uint64_t wire_ingress;
};

// Captured from the seed (one event per packet) — see file comment.
const UdpGolden kUdpGrid[] = {
    {"NORMAL/Default", SchedPolicy::kCfsNormal, 100.0, false,
     {{{120097u, 113290u, 113290u, 0u, 0u, 13594800},
       {59304u, 53821u, 53821u, 53986u, 356u, 14531690},
       {48100u, 31715u, 31715u, 5720u, 452u, 17443390}}},
     31715u, 0u, 120097u},
    {"NORMAL/NFVnice", SchedPolicy::kCfsNormal, 100.0, true,
     {{{68042u, 68008u, 68008u, 0u, 0u, 8160960},
       {68008u, 55843u, 55843u, 0u, 567u, 15077610},
       {55843u, 43431u, 43431u, 0u, 39u, 23887410}}},
     43431u, 52055u, 120097u},
    {"BATCH/Default", SchedPolicy::kCfsBatch, 100.0, false,
     {{{120097u, 117192u, 117192u, 0u, 0u, 14063040},
       {86500u, 71870u, 71870u, 30692u, 1u, 19405150},
       {47497u, 33391u, 33391u, 24373u, 2u, 18365090}}},
     33390u, 0u, 120097u},
    {"BATCH/NFVnice", SchedPolicy::kCfsBatch, 100.0, true,
     {{{73852u, 69218u, 69218u, 0u, 0u, 8306160},
       {69218u, 61251u, 61251u, 0u, 0u, 16537770},
       {61251u, 48972u, 48972u, 0u, 6u, 26934750}}},
     48971u, 46245u, 120097u},
    {"RR1/Default", SchedPolicy::kRoundRobin, 1.0, false,
     {{{112160u, 98654u, 98654u, 7937u, 0u, 11838480},
       {78138u, 71369u, 71369u, 20516u, 1u, 19269680},
       {54052u, 37667u, 37667u, 17316u, 3u, 20717320}}},
     37667u, 0u, 120097u},
    {"RR1/NFVnice", SchedPolicy::kRoundRobin, 1.0, true,
     {{{75009u, 67782u, 67782u, 0u, 0u, 8133840},
       {67782u, 60291u, 60291u, 0u, 1u, 16278620},
       {60290u, 49820u, 49820u, 0u, 4u, 27401320}}},
     49820u, 45088u, 120097u},
};

/// The fig. 7 / table 3 scenario: low/med/high-cost chain on one core,
/// 6 Mpps offered (overload — the chain needs ~940 cycles/packet).
std::unique_ptr<Simulation> make_grid_sim(const UdpGolden& g,
                                          std::uint32_t burst_window) {
  PlatformConfig cfg;
  cfg.set_nfvnice(g.nfvnice);
  cfg.set_burst_window(burst_window);
  auto sim = std::make_unique<Simulation>(cfg);
  const auto core_id = sim->add_core(g.policy, g.rr_quantum_ms);
  const auto a = sim->add_nf("low", core_id, nf::CostModel::fixed(120));
  const auto b = sim->add_nf("med", core_id, nf::CostModel::fixed(270));
  const auto c = sim->add_nf("high", core_id, nf::CostModel::fixed(550));
  sim->add_chain("lmh", {a, b, c});
  sim->add_udp_flow(0, 6e6);
  return sim;
}

class BurstWindowOneEquivalence
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstWindowOneEquivalence, ReproducesSeedCountersExactly) {
  const UdpGolden& g = kUdpGrid[GetParam()];
  SCOPED_TRACE(g.tag);
  auto sim = make_grid_sim(g, /*burst_window=*/1);
  sim->run_for_seconds(0.02);
  for (flow::NfId id = 0; id < 3; ++id) {
    SCOPED_TRACE("nf " + std::to_string(id));
    const auto m = sim->nf_metrics(id);
    EXPECT_EQ(m.arrivals, g.nf[id].arrivals);
    EXPECT_EQ(m.processed, g.nf[id].processed);
    EXPECT_EQ(m.forwarded, g.nf[id].forwarded);
    EXPECT_EQ(m.rx_full_drops, g.nf[id].rx_full_drops);
    EXPECT_EQ(m.involuntary_switches, g.nf[id].involuntary_switches);
    EXPECT_EQ(m.runtime, g.nf[id].runtime);
  }
  const auto cm = sim->chain_metrics(0);
  EXPECT_EQ(cm.egress_packets, g.egress);
  EXPECT_EQ(cm.entry_throttle_drops, g.entry_drops);
  EXPECT_EQ(sim->manager().wire_ingress(), g.wire_ingress);
}

INSTANTIATE_TEST_SUITE_P(Fig07Tab03Grid, BurstWindowOneEquivalence,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const auto& param_info) {
                           std::string name = kUdpGrid[param_info.param].tag;
                           for (char& ch : name) {
                             if (ch == '/') ch = '_';
                           }
                           return name;
                         });

TEST(BurstWindowOne, TcpClosedLoopReproducesSeed) {
  // Fig. 13-style mix: a responsive TCP flow sharing a chain with 4 Mpps of
  // UDP, NFVnice + ECN on. Closed-loop dynamics amplify any timing drift —
  // one displaced ECN mark would change the whole window trajectory.
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  cfg.set_burst_window(1);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("fw", core_id, nf::CostModel::fixed(300));
  const auto b = sim.add_nf("mon", core_id, nf::CostModel::fixed(450));
  const auto chain = sim.add_chain("c", {a, b});
  auto [flow, tcp] = sim.add_tcp_flow(chain);
  sim.add_udp_flow(chain, 4e6);
  sim.run_for_seconds(0.02);
  EXPECT_EQ(tcp->packets_sent(), 304u);
  EXPECT_EQ(tcp->packets_delivered(), 274u);
  EXPECT_EQ(tcp->cwnd(), 3u);
  EXPECT_EQ(tcp->congestion_events(), 37u);
  EXPECT_EQ(sim.manager().flow_counters(flow).ecn_marked, 16u);
  EXPECT_EQ(sim.nf_metrics(a).processed, 74535u);
}

// -- default burst: the optimisation must not move paper-level results ------

TEST(DefaultBurst, ConservationHoldsAtOverload) {
  auto sim = make_grid_sim(kUdpGrid[3], /*burst_window=*/32);
  sim->run_for_seconds(0.02);
  std::uint64_t in_queues = 0;
  std::uint64_t rx_full = 0;
  for (flow::NfId id = 0; id < 3; ++id) {
    in_queues += sim->nf(id).rx_ring().size() + sim->nf(id).tx_ring().size() +
                 sim->nf(id).in_flight_packets();
    rx_full += sim->nf_metrics(id).rx_full_drops;
  }
  const auto cm = sim->chain_metrics(0);
  EXPECT_EQ(sim->manager().wire_ingress(),
            cm.entry_admitted + cm.entry_throttle_drops);
  EXPECT_EQ(cm.entry_admitted, cm.egress_packets + rx_full + in_queues);
}

TEST(DefaultBurst, NfvniceStillBeatsDefaultAtOverload) {
  // The headline table 3 comparison must survive any burst setting: under
  // BATCH at overload, NFVnice's backpressure turns wasted upstream work
  // into chain throughput.
  auto nfvnice = make_grid_sim(kUdpGrid[3], 32);
  auto fifo_drop = make_grid_sim(kUdpGrid[2], 32);
  nfvnice->run_for_seconds(0.02);
  fifo_drop->run_for_seconds(0.02);
  const auto good = nfvnice->chain_metrics(0).egress_packets;
  const auto base = fifo_drop->chain_metrics(0).egress_packets;
  EXPECT_GT(good, base);
  // And it does so by not dropping inside the chain at all.
  for (flow::NfId id = 1; id < 3; ++id) {
    EXPECT_EQ(nfvnice->nf_metrics(id).rx_full_drops, 0u);
    EXPECT_GT(fifo_drop->nf_metrics(id).rx_full_drops, 0u);
  }
}

TEST(DefaultBurst, RunsAreDeterministic) {
  auto run_once = [] {
    auto sim = make_grid_sim(kUdpGrid[1], 32);
    sim->run_for_seconds(0.02);
    return sim->report_json();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DefaultBurst, WindowOnlyPerturbsAdmissionAtTheRunBoundary) {
  // Source bursting redistributes *events*, not arrivals: the wire sees the
  // same packet sequence at any window. The one edge is the end of the run
  // — a batch whose delivery event lands past the horizon never fires, so
  // up to window-1 tail arrivals can go missing relative to window 1.
  for (const std::uint32_t window : {1u, 4u, 32u}) {
    auto sim = make_grid_sim(kUdpGrid[0], window);
    sim->run_for_seconds(0.02);
    const std::uint64_t wire = sim->manager().wire_ingress();
    EXPECT_LE(wire, 120097u) << "window " << window;
    EXPECT_GE(wire + window, 120097u + 1) << "window " << window;
  }
}

}  // namespace
}  // namespace nfv::core
