// Storage fault domain, end to end (DESIGN.md §12): seed-equivalence
// goldens for the unfaulted async-I/O path, byte-determinism of faulted
// runs, and the degraded-mode contracts — bounded detection, entry
// backpressure, bounded staging, drain-to-zero, watchdog escalation and
// the restart-reload fallback on a dead device.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

namespace nfv::core {
namespace {

/// The Fig. 14 logging scenario the goldens pin: two chains share a
/// logger (writes chain-1 packets to disk) and a forwarder on one BATCH
/// core; 2+2 Mpps offered, optionally stopping so drain can be asserted.
struct LoggerSim {
  std::unique_ptr<Simulation> sim;
  flow::NfId logger = 0;
  flow::NfId fwd = 0;
  flow::ChainId chain1 = 0;
  flow::ChainId chain2 = 0;
  io::AsyncIoEngine* io = nullptr;
};

LoggerSim make_logger_sim(bool async_io, double stop_seconds = -1.0) {
  LoggerSim s;
  s.sim = std::make_unique<Simulation>();
  const auto core_id = s.sim->add_core(SchedPolicy::kCfsBatch);
  s.logger = s.sim->add_nf("logger", core_id, nf::CostModel::fixed(300));
  s.fwd = s.sim->add_nf("fwd", core_id, nf::CostModel::fixed(150));
  s.chain1 = s.sim->add_chain("logged", {s.logger, s.fwd});
  s.chain2 = s.sim->add_chain("plain", {s.logger, s.fwd});

  io::AsyncIoEngine::Config io_cfg;
  io_cfg.mode = async_io ? io::AsyncIoEngine::Mode::kDoubleBuffered
                         : io::AsyncIoEngine::Mode::kSynchronous;
  io_cfg.buffer_bytes = 256 * 1024;
  s.io = &s.sim->attach_io(s.logger, io_cfg);

  auto* io_engine = s.io;
  const auto chain1 = s.chain1;
  s.sim->nf(s.logger).set_handler([io_engine, chain1](pktio::Mbuf& pkt) {
    if (pkt.chain_id == chain1) io_engine->write(pkt.size_bytes);
    return nf::NfAction::kForward;
  });

  UdpOptions opts;
  opts.stop_seconds = stop_seconds;
  s.sim->add_udp_flow(s.chain1, 2e6, opts);
  s.sim->add_udp_flow(s.chain2, 2e6, opts);
  return s;
}

/// Fault-domain knobs used by every faulted scenario below: a 1 ms
/// completion deadline (a healthy 256 KiB flush takes ~0.55 ms, so only
/// genuinely hung requests time out), 4 attempts, 10 us base backoff.
void arm_fault_domain(io::AsyncIoEngine& io) {
  io.set_timeout(2'600'000);
  io.set_retry(4, 26'000, 2.0, 0.1);
}

/// The engine's effective recovery-probe period for the config above.
Cycles probe_period(const io::AsyncIoEngine& io) {
  return 4 * std::max(io.config().io_timeout, io.config().retry_backoff);
}

// ---------------------------------------------------------------------------
// Seed equivalence: the fault domain (state machine, deadline plumbing,
// status-bearing completions) must leave the unfaulted event schedule
// byte-identical. These counters were captured from the pre-fault-domain
// build of this exact scenario; dispatched_events pins the full schedule.

TEST(IoFault, GoldenCountersSyncUnchanged) {
  LoggerSim s = make_logger_sim(/*async_io=*/false);
  s.sim->run_for_seconds(0.1);
  EXPECT_EQ(s.sim->chain_metrics(s.chain1).egress_packets, 4'574u);
  EXPECT_EQ(s.sim->chain_metrics(s.chain2).egress_packets, 4'576u);
  EXPECT_EQ(s.io->writes(), 4'575u);
  EXPECT_EQ(s.io->flushes(), 0u);
  EXPECT_EQ(s.io->bytes_written(), 292'800u);
  EXPECT_EQ(s.io->block_transitions(), 4'575u);
  EXPECT_EQ(s.sim->disk().requests(), 4'575u);
  EXPECT_EQ(s.sim->disk().busy_cycles(), 239'437'200u);
  EXPECT_EQ(s.sim->nf_metrics(s.logger).processed, 9'151u);
  EXPECT_EQ(s.sim->engine().dispatched_events(), 101'374u);
  // The fault domain stayed dormant: no deadline/retry/probe events, no
  // fault counters moving, no fault metrics in the report.
  EXPECT_EQ(s.io->timeouts(), 0u);
  EXPECT_EQ(s.io->retries(), 0u);
  // Traffic is still flowing at the 0.1 s cutoff, so exactly the one
  // sync write being serviced at stop time is live.
  EXPECT_EQ(s.io->live_requests(), 1u);
  EXPECT_EQ(s.sim->report_json().find("io.retries"), std::string::npos);
}

TEST(IoFault, GoldenCountersAsyncUnchanged) {
  LoggerSim s = make_logger_sim(/*async_io=*/true);
  s.sim->run_for_seconds(0.1);
  EXPECT_EQ(s.sim->chain_metrics(s.chain1).egress_packets, 199'960u);
  EXPECT_EQ(s.sim->chain_metrics(s.chain2).egress_packets, 199'968u);
  EXPECT_EQ(s.io->writes(), 200'000u);
  EXPECT_EQ(s.io->flushes(), 48u);
  EXPECT_EQ(s.io->bytes_written(), 12'800'000u);
  EXPECT_EQ(s.io->block_transitions(), 0u);
  EXPECT_EQ(s.sim->disk().requests(), 48u);
  EXPECT_EQ(s.sim->disk().busy_cycles(), 68'721'840u);
  EXPECT_EQ(s.sim->nf_metrics(s.logger).processed, 400'001u);
  EXPECT_EQ(s.sim->engine().dispatched_events(), 900'688u);
  EXPECT_EQ(s.io->degraded_entries(), 0u);
  EXPECT_EQ(s.sim->report_json().find("disk.requests"), std::string::npos);
}

// A plan with NF faults but no device faults must not activate the
// storage fault domain's metrics or arm the device sink.
TEST(IoFault, NfOnlyPlanKeepsStorageDomainDormant) {
  LoggerSim s = make_logger_sim(/*async_io=*/true);
  fault::FaultPlan plan;
  plan.add_crash(s.fwd, s.sim->clock().from_seconds(0.05),
                 s.sim->clock().from_seconds(0.01));
  s.sim->set_fault_plan(std::move(plan));
  s.sim->run_for_seconds(0.1);
  const std::string report = s.sim->report_json();
  EXPECT_EQ(report.find("io.retries"), std::string::npos);
  EXPECT_EQ(report.find("disk.requests"), std::string::npos);
  EXPECT_EQ(s.io->timeouts(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: faulted runs are byte-identical across repeats. (The
// worker-count invariance of whole simulations is covered by the
// ParallelRunner determinism suite; device faults ride the same engine.)

TEST(IoFault, FaultedRunByteDeterministic) {
  auto build = [] {
    LoggerSim s = make_logger_sim(/*async_io=*/true);
    arm_fault_domain(*s.io);
    fault::FaultPlan plan;
    plan.add_device_slow(s.sim->clock().from_seconds(0.01), 6.0,
                         s.sim->clock().from_seconds(0.02));
    plan.add_device_wedge(s.sim->clock().from_seconds(0.04),
                          s.sim->clock().from_seconds(0.02));
    plan.add_device_error(s.sim->clock().from_seconds(0.07),
                          s.sim->clock().from_seconds(0.003));
    s.sim->set_fault_plan(std::move(plan));
    return s;
  };
  LoggerSim s1 = build();
  LoggerSim s2 = build();
  s1.sim->run_for_seconds(0.15);
  s2.sim->run_for_seconds(0.15);
  std::ostringstream r1, r2;
  s1.sim->report_json(r1);
  s2.sim->report_json(r2);
  EXPECT_EQ(r1.str(), r2.str());
  // The faults actually bit: the report carries the fault-domain metrics
  // and the wedge produced deadline expirations.
  EXPECT_NE(r1.str().find("io.retries"), std::string::npos);
  EXPECT_NE(r1.str().find("disk.requests"), std::string::npos);
  EXPECT_GT(s1.io->timeouts(), 0u);
}

// ---------------------------------------------------------------------------
// Degraded-mode contracts under a permanently wedged device.

// on_io_fail = shed: the NF reaches degraded mode within a bounded number
// of timeout periods, keeps processing without logging, staging stays
// bounded, and the simulation drains to zero after traffic stops.
TEST(IoFault, PermanentWedgeShedModeBoundedAndDrains) {
  LoggerSim s = make_logger_sim(/*async_io=*/true, /*stop_seconds=*/0.08);
  arm_fault_domain(*s.io);
  s.io->set_on_fail(io::AsyncIoEngine::OnIoFail::kShed);
  fault::FaultPlan plan;
  plan.add_device_wedge(s.sim->clock().from_seconds(0.02));  // permanent
  s.sim->set_fault_plan(std::move(plan));

  // Detection bound: the next buffer fill (~2.1 ms apart) hangs, then 4
  // attempts each expire a 1 ms deadline plus jittered 10/20/40 us
  // backoffs — degraded well before wedge + 10 ms.
  s.sim->run_for_seconds(0.03);
  EXPECT_TRUE(s.io->degraded());
  EXPECT_EQ(s.io->degraded_entries(), 1u);
  EXPECT_GE(s.io->timeouts(), 4u);
  EXPECT_EQ(s.io->failures(), 1u);

  s.sim->run_for_seconds(0.05);  // t = 80 ms, still wedged
  // Process-without-logging: the NF keeps forwarding both chains while
  // degraded; dropped writes account for every shed byte, and the staged
  // buffer was flushed out of existence rather than growing.
  EXPECT_TRUE(s.io->degraded());
  EXPECT_GT(s.io->dropped_writes(), 0u);
  EXPECT_GT(s.io->shed_bytes(), 0u);
  EXPECT_LE(s.io->staged_bytes(), 4 * s.io->config().buffer_bytes);
  EXPECT_GT(s.sim->chain_metrics(s.chain2).egress_packets, 100'000u);
  // Recovery probes keep testing the device (and keep failing).
  EXPECT_GT(s.io->probes(), 0u);
  EXPECT_EQ(s.io->failures(), 1u);  // probes are single-shot, not failures

  // Traffic stopped at 80 ms: everything in flight drains to zero.
  s.sim->run_for_seconds(0.04);
  EXPECT_EQ(s.sim->nf_metrics(s.logger).rx_queue_len, 0u);
  EXPECT_EQ(s.sim->nf_metrics(s.fwd).rx_queue_len, 0u);
  EXPECT_EQ(s.sim->pool().in_use(), 0u);
}

// on_io_fail = block with a bounded wedge window: the NF blocks, its RX
// queue grows until entry backpressure sheds at the chain entry (Fig. 4),
// and once the window ends a recovery probe re-delivers the parked flush,
// exits degraded mode and the backlog drains to zero. Nothing is dropped
// from the I/O path itself.
TEST(IoFault, BoundedWedgeBlockModeBackpressureAndRecovery) {
  LoggerSim s = make_logger_sim(/*async_io=*/true, /*stop_seconds=*/0.15);
  arm_fault_domain(*s.io);  // on_fail defaults to kBlock
  fault::FaultPlan plan;
  plan.add_device_wedge(s.sim->clock().from_seconds(0.02),
                        s.sim->clock().from_seconds(0.03));
  s.sim->set_fault_plan(std::move(plan));

  s.sim->run_for_seconds(0.04);  // mid-wedge
  EXPECT_TRUE(s.io->degraded());
  EXPECT_TRUE(s.io->would_block());
  // Entry backpressure engaged: the blocked logger's queue crossed the
  // high watermark and both chains shed at the wire, not mid-chain.
  EXPECT_GT(s.sim->chain_metrics(s.chain1).entry_throttle_drops, 0u);
  EXPECT_EQ(s.sim->nf_metrics(s.fwd).rx_full_drops, 0u);
  // Staging stays bounded even while parked.
  EXPECT_LE(s.io->staged_bytes(), 4 * s.io->config().buffer_bytes);

  s.sim->run_for_seconds(0.16);  // t = 200 ms: wedge over, traffic stopped
  EXPECT_FALSE(s.io->degraded());
  EXPECT_FALSE(s.io->would_block());
  EXPECT_GE(s.io->degraded_entries(), 1u);
  EXPECT_GE(s.io->probes(), 1u);
  // The parked flush was delivered, not dropped.
  EXPECT_EQ(s.io->dropped_writes(), 0u);
  EXPECT_EQ(s.io->live_requests(), 0u);
  // Degraded span ~= the wedge window plus detection and one recovery
  // round (re-issue of the parked flush by a probe).
  EXPECT_LE(s.io->time_in_degraded(s.sim->engine().now()),
            s.sim->clock().from_seconds(0.03) +
                8 * s.io->config().io_timeout + 4 * probe_period(*s.io));
  // Post-recovery the pipeline is healthy again and fully drained.
  EXPECT_EQ(s.sim->nf_metrics(s.logger).rx_queue_len, 0u);
  EXPECT_EQ(s.sim->pool().in_use(), 0u);
}

// on_io_fail = stuck: an unrecoverable I/O failure freezes the NF; the
// watchdog diagnoses the straggler, force-kills it, and the restart's
// cold-state reload falls back to the spawn latency because the device is
// still dead — the NF completes a full recovery instead of hanging in
// RESTARTING forever.
TEST(IoFault, StuckPolicyEscalatesToWatchdogAndRestartFallsBack) {
  LoggerSim s = make_logger_sim(/*async_io=*/true);
  arm_fault_domain(*s.io);
  s.io->set_on_fail(io::AsyncIoEngine::OnIoFail::kStuck);
  fault::FaultPlan plan;
  plan.add_device_wedge(s.sim->clock().from_seconds(0.02));  // permanent
  s.sim->set_fault_plan(std::move(plan));

  s.sim->run_for_seconds(0.2);
  const auto& ls = s.sim->nf_lifecycle_stats(s.logger);
  EXPECT_GE(ls.forced_crashes, 1u);
  EXPECT_GE(ls.restarts, 1u);
  EXPECT_GE(ls.recoveries, 1u);  // reload fell back despite the dead disk
  EXPECT_GT(s.io->failures(), 0u);
  // The engine stays degraded on the still-dead device; the revived NF
  // processes without logging from then on (no second freeze).
  EXPECT_TRUE(s.io->degraded());
}

// No watchdog misdiagnosis: a device outage with on_io_fail = block must
// look like a blocked NF (legitimately asleep), never like a straggler —
// the watchdog must not force-kill it.
TEST(IoFault, BlockedOnIoIsNotMisdiagnosedAsStuck) {
  LoggerSim s = make_logger_sim(/*async_io=*/true);
  arm_fault_domain(*s.io);
  fault::FaultPlan plan;
  plan.add_device_wedge(s.sim->clock().from_seconds(0.02),
                        s.sim->clock().from_seconds(0.05));
  s.sim->set_fault_plan(std::move(plan));
  s.sim->run_for_seconds(0.2);
  EXPECT_EQ(s.sim->nf_lifecycle_stats(s.logger).forced_crashes, 0u);
  EXPECT_EQ(s.sim->nf_lifecycle_stats(s.logger).crashes, 0u);
  EXPECT_EQ(s.sim->nf_lifecycle(s.logger), fault::NfLifecycle::kRunning);
}

// Error and torn windows (block mode): affected flushes are retried —
// possibly parked and probe-delivered — until they land in full once the
// window closes. Nothing is dropped from the I/O path.
TEST(IoFault, ErrorAndTornWindowsRetryToSuccess) {
  LoggerSim s = make_logger_sim(/*async_io=*/true);
  arm_fault_domain(*s.io);
  fault::FaultPlan plan;
  plan.add_device_error(s.sim->clock().from_seconds(0.02),
                        s.sim->clock().from_seconds(0.003));
  plan.add_device_torn(s.sim->clock().from_seconds(0.05), 0.5,
                       s.sim->clock().from_seconds(0.003));
  s.sim->set_fault_plan(std::move(plan));
  s.sim->run_for_seconds(0.1);
  // Both windows caught at least one flush (flushes are ~2.1 ms apart).
  EXPECT_GT(s.sim->disk().failed_requests(), 0u);
  EXPECT_GT(s.sim->disk().torn_requests(), 0u);
  EXPECT_GT(s.io->retries(), 0u);
  // ...and every one of them was eventually delivered in full.
  EXPECT_EQ(s.io->dropped_writes(), 0u);
  EXPECT_EQ(s.io->live_requests(), 0u);
  EXPECT_FALSE(s.io->degraded());
}

}  // namespace
}  // namespace nfv::core
