// End-to-end fault-injection behaviour (DESIGN.md §11): determinism,
// lifecycle transitions, watchdog bounds, dead-NF policies, and the
// availability property the fig_availability bench reports.
#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

namespace nfv::core {
namespace {

/// The canonical crash scenario used by the determinism and golden tests:
/// a two-NF chain on one BATCH core, overloaded, NF "b" crashing at 50 ms
/// and restarting 10 ms after detection.
std::unique_ptr<Simulation> make_crash_sim() {
  auto sim = std::make_unique<Simulation>();
  const auto core_id = sim->add_core(SchedPolicy::kCfsBatch);
  const auto a = sim->add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim->add_nf("b", core_id, nf::CostModel::fixed(270));
  const auto chain = sim->add_chain("ab", {a, b});
  sim->add_udp_flow(chain, 5e6);
  fault::FaultPlan plan;
  plan.add_crash(b, sim->clock().from_seconds(0.05),
                 sim->clock().from_seconds(0.01));
  sim->set_fault_plan(std::move(plan));
  return sim;
}

// Two identical faulted simulations must replay byte-for-byte: the crash,
// the watchdog scans, the restart and every downstream perturbation are
// ordinary engine events with deterministic ordering.
TEST(FaultInjection, ByteIdenticalReports) {
  auto sim1 = make_crash_sim();
  auto sim2 = make_crash_sim();
  sim1->run_for_seconds(0.2);
  sim2->run_for_seconds(0.2);
  std::ostringstream r1, r2;
  sim1->report_json(r1);
  sim2->report_json(r2);
  EXPECT_EQ(r1.str(), r2.str());
}

// Golden counters for the canonical crash scenario. These values pin the
// fault path end to end — injection instant, watchdog ordering, share
// release, restart and warm-up — and must only change with an intentional
// model change (regenerate by running the scenario and copying the new
// values).
TEST(FaultInjection, GoldenCounters) {
  auto sim = make_crash_sim();
  sim->run_for_seconds(0.2);
  const auto cm = sim->chain_metrics(0);
  const auto mb = sim->nf_metrics(1);
  const auto& ls = sim->nf_lifecycle_stats(1);
  EXPECT_EQ(cm.egress_packets, 947'520u);
  EXPECT_EQ(cm.entry_admitted, 947'616u);
  EXPECT_EQ(cm.entry_throttle_drops, 52'496u);
  EXPECT_EQ(mb.crash_drops, 0u);
  EXPECT_EQ(mb.rx_full_drops, 0u);
  EXPECT_EQ(ls.crashes, 1u);
  EXPECT_EQ(ls.restarts, 1u);
  EXPECT_EQ(ls.recoveries, 1u);
  EXPECT_EQ(ls.downtime_cycles, 29'900'000u);  // 11.5 ms
  // The 50 ms injection instant lands exactly on a watchdog tick, so
  // detection is same-cycle.
  EXPECT_EQ(ls.last_detect_latency, 0u);
}

TEST(FaultInjection, CrashLifecycleAndWatchdogBounds) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(270));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 2e6);
  // Off-tick injection instant: detection must still happen within one
  // watchdog period.
  const Cycles at = sim.clock().from_seconds(0.05) + 12'347;
  fault::FaultPlan plan;
  plan.add_crash(b, at, sim.clock().from_seconds(0.02));
  sim.set_fault_plan(std::move(plan));

  sim.run_for_seconds(0.04);
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kRunning);

  sim.run_for_seconds(0.02);  // t = 60 ms: mid-outage
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kDead);
  EXPECT_TRUE(sim.nf(b).dead());

  sim.run_for_seconds(0.14);  // restart + warm completed long ago
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kRunning);
  EXPECT_FALSE(sim.nf(b).dead());

  const auto& ls = sim.nf_lifecycle_stats(b);
  const auto& lc = sim.manager().config().lifecycle;
  EXPECT_EQ(ls.crashes, 1u);
  EXPECT_EQ(ls.forced_crashes, 0u);
  EXPECT_EQ(ls.restarts, 1u);
  EXPECT_EQ(ls.recoveries, 1u);
  EXPECT_GT(ls.last_detect_latency, 0u);
  EXPECT_LE(ls.last_detect_latency, lc.watchdog_period);
  // Downtime covers detection -> RUNNING: at least the restart delay, at
  // most that plus reload, warm-up and a few watchdog granules.
  EXPECT_GE(ls.downtime_cycles, sim.clock().from_seconds(0.02));
  EXPECT_LE(ls.downtime_cycles,
            sim.clock().from_seconds(0.02) + lc.reload_latency +
                lc.warm_duration + 4 * lc.watchdog_period);
  // The chain kept losing packets at the entry (backpressure pinned the
  // dead NF to Throttle), not half-way through.
  EXPECT_GT(sim.chain_metrics(chain).entry_throttle_drops, 0u);
}

TEST(FaultInjection, StallIsDiagnosedAndForceCrashed) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(270));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 2e6);
  fault::FaultPlan plan;
  plan.add_stall(b, sim.clock().from_seconds(0.05) + 5'000);
  sim.set_fault_plan(std::move(plan));
  sim.run_for_seconds(0.2);

  const auto& ls = sim.nf_lifecycle_stats(b);
  const auto& lc = sim.manager().config().lifecycle;
  EXPECT_EQ(ls.crashes, 1u);
  EXPECT_EQ(ls.forced_crashes, 1u);  // the watchdog killed it, not the fault
  EXPECT_EQ(ls.recoveries, 1u);
  // Straggler diagnosis needs stuck_scans consecutive silent scans.
  EXPECT_LE(ls.last_detect_latency, (lc.stuck_scans + 1) * lc.watchdog_period);
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kRunning);
}

TEST(FaultInjection, DegradeScalesServiceTimeAndRestores) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("a", {a});
  sim.add_udp_flow(chain, 20e6);  // saturate: throughput = service rate
  fault::FaultPlan plan;
  plan.add_degrade(a, sim.clock().from_seconds(0.1), /*factor=*/4.0,
                   sim.clock().from_seconds(0.1));
  sim.set_fault_plan(std::move(plan));

  sim.run_for_seconds(0.1);
  const auto before = sim.nf_metrics(a).processed;
  sim.run_for_seconds(0.1);
  const auto during = sim.nf_metrics(a).processed - before;
  sim.run_for_seconds(0.1);
  const auto after = sim.nf_metrics(a).processed - before - during;
  // 4x the service time => ~1/4 the saturated throughput, then back.
  EXPECT_LT(during, before / 3);
  EXPECT_GT(during, before / 6);
  EXPECT_GT(after, (before * 9) / 10);
}

TEST(FaultInjection, BypassPolicyRoutesAroundDeadHop) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(150));
  const auto c = sim.add_nf("c", core_id, nf::CostModel::fixed(120));
  const auto chain = sim.add_chain("abc", {a, b, c});
  sim.add_udp_flow(chain, 1e6);
  fault::FaultPlan plan;
  plan.add_crash(b, sim.clock().from_seconds(0.05),
                 sim.clock().from_seconds(0.05));
  sim.set_fault_plan(std::move(plan));
  sim.set_dead_policy(chain, fault::DeadNfPolicy::kBypass);

  sim.run_for_seconds(0.05);
  const auto egress_before = sim.chain_metrics(chain).egress_packets;
  sim.run_for_seconds(0.04);  // mid-outage
  const auto egress_during =
      sim.chain_metrics(chain).egress_packets - egress_before;
  // Service continued around the dead hop at roughly the offered rate.
  EXPECT_GT(egress_during, 30'000u);
  EXPECT_GT(sim.manager().chain_counters(chain).bypassed_hops, 30'000u);
  // b itself processed nothing while dead.
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kDead);
}

// The fig_availability property: with a saturating bystander chain on the
// same core, NFVnice (cgroups + backpressure) both retains strictly more
// goodput under an NF crash and returns to its pre-fault service level
// sooner than the Default stack (see bench/fig_availability.cpp).
TEST(FaultInjection, NfvniceRetainsMoreGoodputUnderFaults) {
  auto run = [](bool nfvnice) {
    PlatformConfig cfg;
    cfg.set_nfvnice(nfvnice);
    Simulation sim(cfg);
    const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
    const auto nf1 = sim.add_nf("NF1", core_id, nf::CostModel::fixed(600));
    const auto nf2 = sim.add_nf("NF2", core_id, nf::CostModel::fixed(300));
    const auto nf3 = sim.add_nf("NF3", core_id, nf::CostModel::fixed(600));
    const auto victim = sim.add_chain("victim", {nf1, nf2});
    const auto bystander = sim.add_chain("bystander", {nf3});
    sim.add_udp_flow(victim, 1.4e6);
    sim.add_udp_flow(bystander, 5e6);
    fault::FaultPlan plan;
    plan.add_crash(nf2, sim.clock().from_seconds(0.1) + 12'347,
                   sim.clock().from_seconds(0.05));
    sim.set_fault_plan(std::move(plan));
    sim.run_for_seconds(0.25);
    return sim.chain_metrics(victim).egress_packets +
           sim.chain_metrics(bystander).egress_packets;
  };
  const auto default_egress = run(false);
  const auto nfvnice_egress = run(true);
  EXPECT_GT(nfvnice_egress, default_egress);
}

}  // namespace
}  // namespace nfv::core
