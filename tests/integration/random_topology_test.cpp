// Randomized topology property tests.
//
// For any topology (random cores/policies/NF costs/chains/rates/seeds) the
// platform must uphold its invariants: packets are conserved, the mbuf
// pool never leaks, no NF runs beyond wall time, egress never exceeds the
// narrowest bottleneck, and the run is deterministic under its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/simulation.hpp"

namespace nfv::core {
namespace {

struct RandomTopology {
  PlatformConfig config;
  int cores = 1;
  std::vector<SchedPolicy> core_policy;
  std::vector<int> core_numa;
  struct NfSpec {
    int core;
    Cycles cost;
  };
  std::vector<NfSpec> nfs;
  std::vector<std::vector<flow::NfId>> chains;
  std::vector<std::pair<int, double>> flows;  // (chain, rate)
};

RandomTopology generate(std::uint64_t seed) {
  Rng rng(seed);
  RandomTopology topo;
  topo.config.set_nfvnice(rng.next_below(2) == 0);
  topo.cores = static_cast<int>(1 + rng.next_below(4));
  for (int i = 0; i < topo.cores; ++i) {
    const SchedPolicy policies[] = {SchedPolicy::kCfsNormal,
                                    SchedPolicy::kCfsBatch,
                                    SchedPolicy::kRoundRobin};
    topo.core_policy.push_back(policies[rng.next_below(3)]);
    topo.core_numa.push_back(static_cast<int>(rng.next_below(2)));
  }
  const int nf_count = static_cast<int>(1 + rng.next_below(6));
  for (int i = 0; i < nf_count; ++i) {
    topo.nfs.push_back({static_cast<int>(rng.next_below(topo.cores)),
                        static_cast<Cycles>(50 + rng.next_below(2000))});
  }
  const int chain_count = static_cast<int>(1 + rng.next_below(3));
  for (int c = 0; c < chain_count; ++c) {
    const int len = static_cast<int>(1 + rng.next_below(nf_count));
    std::vector<flow::NfId> hops;
    for (int h = 0; h < len; ++h) {
      const auto nf = static_cast<flow::NfId>(rng.next_below(nf_count));
      if (std::find(hops.begin(), hops.end(), nf) == hops.end()) {
        hops.push_back(nf);
      }
    }
    if (hops.empty()) hops.push_back(0);
    topo.chains.push_back(hops);
    topo.flows.emplace_back(c, 1e5 * static_cast<double>(1 + rng.next_below(40)));
  }
  return topo;
}

struct RunResult {
  std::uint64_t wire_ingress = 0;
  std::uint64_t egress = 0;
  std::uint64_t entry_admitted = 0;
  std::uint64_t entry_drops = 0;
  std::uint64_t rx_full_drops = 0;
  std::uint64_t in_queues = 0;
  std::uint64_t pool_in_use = 0;
  std::vector<Cycles> nf_runtime;
  Cycles elapsed = 0;
};

RunResult run(const RandomTopology& topo, double secs) {
  Simulation sim(topo.config);
  for (int i = 0; i < topo.cores; ++i) {
    sim.add_core(topo.core_policy[i], 1.0, topo.core_numa[i]);
  }
  for (std::size_t i = 0; i < topo.nfs.size(); ++i) {
    sim.add_nf("nf" + std::to_string(i),
               static_cast<std::size_t>(topo.nfs[i].core),
               nf::CostModel::fixed(topo.nfs[i].cost));
  }
  std::vector<flow::ChainId> chains;
  for (std::size_t c = 0; c < topo.chains.size(); ++c) {
    chains.push_back(sim.add_chain("c" + std::to_string(c), topo.chains[c]));
  }
  for (const auto& [chain, rate] : topo.flows) {
    sim.add_udp_flow(chains[chain], rate);
  }
  sim.run_for_seconds(secs);

  RunResult result;
  result.wire_ingress = sim.manager().wire_ingress();
  result.pool_in_use = sim.pool().in_use();
  result.elapsed = sim.engine().now();
  for (const auto chain : chains) {
    const auto cm = sim.chain_metrics(chain);
    result.egress += cm.egress_packets;
    result.entry_admitted += cm.entry_admitted;
    result.entry_drops += cm.entry_throttle_drops;
  }
  for (flow::NfId id = 0; id < sim.nf_count(); ++id) {
    result.rx_full_drops += sim.nf_metrics(id).rx_full_drops;
    result.in_queues += sim.nf(id).rx_ring().size() +
                        sim.nf(id).tx_ring().size() +
                        sim.nf(id).in_flight_packets();
    result.nf_runtime.push_back(sim.nf_metrics(id).runtime);
  }
  return result;
}

class RandomTopologyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyTest, InvariantsHold) {
  const auto topo = generate(GetParam());
  const auto r = run(topo, 0.08);

  // Admission accounting.
  EXPECT_EQ(r.wire_ingress, r.entry_admitted + r.entry_drops);
  // Conservation: admitted = egress + drops + still-queued + in-flight
  // (one in-flight packet per NF at most; handler drops are zero here).
  const std::uint64_t accounted = r.egress + r.rx_full_drops + r.in_queues;
  EXPECT_LE(r.entry_admitted, accounted + topo.nfs.size());
  EXPECT_GE(r.entry_admitted + topo.nfs.size(), accounted);
  // Pool: everything alive is in a queue or in flight.
  EXPECT_LE(r.pool_in_use, r.in_queues + topo.nfs.size());
  // No NF exceeds wall-clock CPU.
  for (const Cycles runtime : r.nf_runtime) {
    EXPECT_LE(runtime, r.elapsed);
  }
}

TEST_P(RandomTopologyTest, DeterministicUnderSeed) {
  const auto topo = generate(GetParam());
  const auto a = run(topo, 0.05);
  const auto b = run(topo, 0.05);
  EXPECT_EQ(a.egress, b.egress);
  EXPECT_EQ(a.entry_drops, b.entry_drops);
  EXPECT_EQ(a.rx_full_drops, b.rx_full_drops);
  EXPECT_EQ(a.nf_runtime, b.nf_runtime);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace nfv::core
