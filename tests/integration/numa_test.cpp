// NUMA placement effects on chain processing.
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::core {
namespace {

TEST(Numa, SameSocketPaysNoPenalty) {
  PlatformConfig cfg;
  cfg.numa_penalty = 500;
  Simulation sim(cfg);
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, /*numa=*/0);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, /*numa=*/0);
  const auto a = sim.add_nf("a", c0, nf::CostModel::fixed(200));
  const auto b = sim.add_nf("b", c1, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 100'000, {.stop_seconds = 0.05});
  sim.run_for_seconds(0.1);
  EXPECT_EQ(sim.nf(a).counters().numa_remote_packets, 0u);
  EXPECT_EQ(sim.nf(b).counters().numa_remote_packets, 0u);
  // Runtime is exactly packets * 200 cycles: no hidden penalty.
  const auto m = sim.nf_metrics(b);
  EXPECT_EQ(m.runtime, static_cast<Cycles>(m.processed) * 200);
}

TEST(Numa, CrossSocketHopPaysPerPacket) {
  PlatformConfig cfg;
  cfg.numa_penalty = 500;
  Simulation sim(cfg);
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, /*numa=*/0);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, /*numa=*/1);
  const auto a = sim.add_nf("a", c0, nf::CostModel::fixed(200));
  const auto b = sim.add_nf("b", c1, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 100'000, {.stop_seconds = 0.05});
  sim.run_for_seconds(0.1);
  // NF a is on the NIC's socket (node 0): local. NF b pays per packet.
  EXPECT_EQ(sim.nf(a).counters().numa_remote_packets, 0u);
  const auto m = sim.nf_metrics(b);
  EXPECT_EQ(sim.nf(b).counters().numa_remote_packets, m.processed);
  EXPECT_EQ(m.runtime, static_cast<Cycles>(m.processed) * (200 + 500));
}

TEST(Numa, NicSocketConfigurable) {
  PlatformConfig cfg;
  cfg.numa_penalty = 500;
  cfg.manager.nic_numa_node = 1;
  Simulation sim(cfg);
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, /*numa=*/0);
  const auto a = sim.add_nf("a", c0, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("a", {a});
  sim.add_udp_flow(chain, 100'000, {.stop_seconds = 0.05});
  sim.run_for_seconds(0.1);
  // NIC DMAs into node 1; the NF on node 0 pays for every packet.
  EXPECT_EQ(sim.nf(a).counters().numa_remote_packets,
            sim.nf(a).counters().processed);
}

TEST(Numa, PenaltyReducesBottleneckCapacity) {
  auto throughput = [](int node_b) {
    PlatformConfig cfg;
    cfg.numa_penalty = 400;
    Simulation sim(cfg);
    const auto c0 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, 0);
    const auto c1 = sim.add_core(SchedPolicy::kCfsBatch, 100.0, node_b);
    const auto a = sim.add_nf("a", c0, nf::CostModel::fixed(100));
    const auto b = sim.add_nf("b", c1, nf::CostModel::fixed(400));
    const auto chain = sim.add_chain("ab", {a, b});
    sim.add_udp_flow(chain, 10e6);
    sim.run_for_seconds(0.1);
    return static_cast<double>(sim.chain_metrics(chain).egress_packets) / 0.1;
  };
  const double local = throughput(0);   // b capacity 2.6e9/400 = 6.5M
  const double remote = throughput(1);  // b capacity 2.6e9/800 = 3.25M
  EXPECT_NEAR(local / remote, 2.0, 0.2);
}

}  // namespace
}  // namespace nfv::core
