// Packet-conservation invariants: nothing is lost, duplicated, or leaked.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"

namespace nfv::core {
namespace {

struct Accounting {
  std::uint64_t wire_ingress = 0;
  std::uint64_t entry_admitted = 0;
  std::uint64_t entry_drops = 0;
  /// Shed by the ingress admission gate (DESIGN.md §17) — a sink distinct
  /// from the backpressure entry drops; zero when no chain has a class.
  std::uint64_t admission_discards = 0;
  std::uint64_t egress = 0;
  std::uint64_t rx_full_drops = 0;
  std::uint64_t handler_drops = 0;
  std::uint64_t crash_drops = 0;
  std::uint64_t in_queues = 0;
  std::uint64_t pool_in_use = 0;
};

Accounting account(Simulation& sim, const std::vector<flow::NfId>& nfs,
                   const std::vector<flow::ChainId>& chains) {
  Accounting a;
  a.wire_ingress = sim.manager().wire_ingress();
  a.pool_in_use = sim.pool().in_use();
  for (const auto chain : chains) {
    const auto cm = sim.chain_metrics(chain);
    a.entry_admitted += cm.entry_admitted;
    a.entry_drops += cm.entry_throttle_drops;
    a.admission_discards += cm.admission_discards;
    a.egress += cm.egress_packets;
  }
  for (const auto nf : nfs) {
    const auto m = sim.nf_metrics(nf);
    a.rx_full_drops += m.rx_full_drops;
    a.in_queues += sim.nf(nf).rx_ring().size() + sim.nf(nf).tx_ring().size() +
                   sim.nf(nf).in_flight_packets();
    a.handler_drops += sim.nf(nf).counters().handler_drops;
    a.crash_drops += m.crash_drops;
  }
  return a;
}

// All admitted packets are either egressed, dropped at a ring, dropped by a
// handler, lost in-flight to an NF crash, or still sitting in a queue (or
// held in flight by an NF).
void expect_conservation(const Accounting& a) {
  EXPECT_EQ(a.wire_ingress,
            a.entry_admitted + a.entry_drops + a.admission_discards);
  const std::uint64_t accounted =
      a.egress + a.rx_full_drops + a.handler_drops + a.crash_drops + a.in_queues;
  // In-flight packets (one per NF at most) explain any small gap.
  EXPECT_LE(a.entry_admitted, accounted + 16);
  EXPECT_GE(a.entry_admitted + 16, accounted);
}

TEST(Conservation, Underload) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(100));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 1e6);
  sim.run_for_seconds(0.1);
  expect_conservation(account(sim, {a, b}, {chain}));
}

TEST(Conservation, OverloadWithNfvnice) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(270));
  const auto c = sim.add_nf("c", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("abc", {a, b, c});
  sim.add_udp_flow(chain, 10e6);
  sim.run_for_seconds(0.2);
  expect_conservation(account(sim, {a, b, c}, {chain}));
}

TEST(Conservation, OverloadWithoutNfvnice) {
  PlatformConfig cfg;
  cfg.set_nfvnice(false);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsNormal);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 10e6);
  sim.run_for_seconds(0.2);
  expect_conservation(account(sim, {a, b}, {chain}));
}

TEST(Conservation, MultiChainSharedNfs) {
  Simulation sim;
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("nf1", c0, nf::CostModel::fixed(270));
  const auto nf2 = sim.add_nf("nf2", c0, nf::CostModel::fixed(120));
  const auto nf3 = sim.add_nf("nf3", c1, nf::CostModel::fixed(4500));
  const auto chain1 = sim.add_chain("c1", {nf1, nf2});
  const auto chain2 = sim.add_chain("c2", {nf1, nf3});
  sim.add_udp_flow(chain1, 3e6);
  sim.add_udp_flow(chain2, 3e6);
  sim.run_for_seconds(0.2);
  expect_conservation(account(sim, {nf1, nf2, nf3}, {chain1, chain2}));
}

TEST(Conservation, DrainToZeroAfterTrafficStops) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 6e6, {.stop_seconds = 0.1});
  sim.run_for_seconds(0.3);
  const auto acc = account(sim, {a, b}, {chain});
  EXPECT_EQ(acc.in_queues, 0u);
  EXPECT_EQ(acc.pool_in_use, 0u);
  EXPECT_EQ(acc.entry_admitted,
            acc.egress + acc.rx_full_drops + acc.handler_drops);
}

TEST(Conservation, HandlerDropsAccounted) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto fw = sim.add_nf("firewall", core_id, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("fw", {fw});
  // Firewall drops every third packet.
  int count = 0;
  sim.nf(fw).set_handler([&count](pktio::Mbuf&) {
    return (++count % 3 == 0) ? nf::NfAction::kDrop : nf::NfAction::kForward;
  });
  sim.add_udp_flow(chain, 1e6, {.stop_seconds = 0.05});
  sim.run_for_seconds(0.2);
  const auto acc = account(sim, {fw}, {chain});
  EXPECT_GT(acc.handler_drops, 10'000u);
  EXPECT_EQ(acc.entry_admitted,
            acc.egress + acc.rx_full_drops + acc.handler_drops);
  EXPECT_EQ(acc.pool_in_use, 0u);
}

// The invariant must also hold through DEAD and RESTARTING states: packets
// lost in a crashed NF's burst are counted as crash_drops, and the dead
// NF's ring contents stay accounted (and leak-free) until the restart.
TEST(Conservation, ThroughCrashAndRestart) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(270));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 6e6);
  fault::FaultPlan plan;
  plan.add_crash(b, sim.clock().from_seconds(0.05),
                 sim.clock().from_seconds(0.02));
  sim.set_fault_plan(std::move(plan));

  // Mid-outage: b is DEAD with a frozen ring and crash-dropped burst.
  sim.run_for_seconds(0.06);
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kDead);
  expect_conservation(account(sim, {a, b}, {chain}));

  // After recovery: back to RUNNING, still conserving.
  sim.run_for_seconds(0.14);
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kRunning);
  expect_conservation(account(sim, {a, b}, {chain}));
}

// Once traffic stops after a crash/restart cycle, every mbuf must return
// to the pool — a dead NF's ring contents are not leaked.
TEST(Conservation, DrainToZeroAfterCrash) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 6e6, {.stop_seconds = 0.1});
  fault::FaultPlan plan;
  plan.add_crash(b, sim.clock().from_seconds(0.05),
                 sim.clock().from_seconds(0.01));
  sim.set_fault_plan(std::move(plan));
  sim.run_for_seconds(0.5);
  const auto acc = account(sim, {a, b}, {chain});
  EXPECT_EQ(sim.nf_lifecycle(b), fault::NfLifecycle::kRunning);
  EXPECT_GT(acc.crash_drops, 0u);
  EXPECT_EQ(acc.in_queues, 0u);
  EXPECT_EQ(acc.pool_in_use, 0u);
  EXPECT_EQ(acc.entry_admitted, acc.egress + acc.rx_full_drops +
                                    acc.handler_drops + acc.crash_drops);
}

// With flow classes registered the admission gate sheds low-utility
// ingress into its own sink (DESIGN.md §17): the wire split gains a third
// term, and once traffic stops everything still drains to zero — a shed
// packet is freed at the gate, never queued.
TEST(Conservation, UnderAdmissionShedding) {
  Simulation sim;
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto gate = sim.add_nf("gate", c0, nf::CostModel::fixed(600));
  const auto gold_nf = sim.add_nf("gold_nf", c1, nf::CostModel::fixed(150));
  const auto bulk_nf = sim.add_nf("bulk_nf", c1, nf::CostModel::fixed(50));
  const auto gold = sim.add_chain("gold", {gate, gold_nf});
  const auto bulk = sim.add_chain("bulk", {gate, bulk_nf});
  sim.set_chain_class(gold, /*priority=*/4.0, /*utility=*/10.0);
  sim.set_chain_class(bulk, /*priority=*/1.0, /*utility=*/2.0);
  // Engage trigger: entry throttling holds the gate ring in the
  // backpressure hysteresis band, mostly under the 0.80 engage watermark —
  // it is gold's running SLO-violation clock (multi-ms queueing at the
  // gate against a 300 us target) that starts the shed ladder, exactly the
  // fig_overload arrangement.
  sim.set_chain_slo(gold, 300.0);
  sim.add_udp_flow(gold, 0.5e6, {.stop_seconds = 0.15});
  // ~2x the gate's capacity: the shared first hop stays pressured and the
  // ladder sheds the bulk class.
  sim.add_udp_flow(bulk, 8e6, {.stop_seconds = 0.15});
  sim.run_for_seconds(0.4);

  const auto acc = account(sim, {gate, gold_nf, bulk_nf}, {gold, bulk});
  EXPECT_GT(acc.admission_discards, 0u) << "gate never engaged";
  EXPECT_EQ(sim.chain_metrics(gold).admission_discards, 0u)
      << "the high-utility class must not be shed";
  expect_conservation(acc);
  EXPECT_EQ(acc.in_queues, 0u);
  EXPECT_EQ(acc.pool_in_use, 0u);
  EXPECT_EQ(acc.entry_admitted,
            acc.egress + acc.rx_full_drops + acc.handler_drops);
}

// Sweep the invariant across schedulers and load levels.
class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<SchedPolicy, double, bool>> {};

TEST_P(ConservationSweep, Holds) {
  const auto [policy, rate, nfvnice] = GetParam();
  PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(policy, 1.0);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(270));
  const auto c = sim.add_nf("c", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("abc", {a, b, c});
  sim.add_udp_flow(chain, rate);
  sim.run_for_seconds(0.1);
  expect_conservation(account(sim, {a, b, c}, {chain}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationSweep,
    ::testing::Combine(::testing::Values(SchedPolicy::kCfsNormal,
                                         SchedPolicy::kCfsBatch,
                                         SchedPolicy::kRoundRobin),
                       ::testing::Values(1e6, 5e6, 14.88e6),
                       ::testing::Bool()));

}  // namespace
}  // namespace nfv::core
