// Sharded-engine determinism contract (DESIGN.md §14): for a fixed
// topology, report_json() and the Chrome trace are byte-identical at every
// worker count. Each test builds the same simulation at sim_shards = 1 and
// at higher counts and compares the serialized artifacts byte-for-byte —
// the strongest equivalence we can assert, and the one CI's TSan job runs
// to certify the barrier protocol.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"

namespace {

using nfv::core::PlatformConfig;
using nfv::core::SchedPolicy;
using nfv::core::Simulation;

struct RunArtifacts {
  std::string report;
  std::string trace;
};

/// Run `build` at each shard count and require byte-identical artifacts.
void expect_identical(
    const std::function<RunArtifacts(std::uint32_t)>& run_at,
    std::vector<std::uint32_t> shard_counts) {
  ASSERT_GE(shard_counts.size(), 2u);
  const RunArtifacts base = run_at(shard_counts.front());
  ASSERT_FALSE(base.report.empty());
  for (std::size_t i = 1; i < shard_counts.size(); ++i) {
    const RunArtifacts other = run_at(shard_counts[i]);
    const auto diverge = [](const std::string& a, const std::string& b) {
      std::size_t p = 0;
      while (p < a.size() && p < b.size() && a[p] == b[p]) ++p;
      return p;
    };
    ASSERT_EQ(base.report == other.report, true)
        << "report diverges at shards=" << shard_counts[i] << " byte "
        << diverge(base.report, other.report) << ": ..."
        << base.report.substr(
               diverge(base.report, other.report) < 40
                   ? 0
                   : diverge(base.report, other.report) - 40,
               80)
        << "... vs ..."
        << other.report.substr(
               diverge(base.report, other.report) < 40
                   ? 0
                   : diverge(base.report, other.report) - 40,
               80);
    ASSERT_EQ(base.trace == other.trace, true)
        << "trace diverges at shards=" << shard_counts[i] << " byte "
        << diverge(base.trace, other.trace);
  }
}

RunArtifacts finish(Simulation& sim, nfv::obs::TraceRecorder& rec) {
  RunArtifacts out;
  out.report = sim.report_json();
  std::ostringstream tr;
  rec.write_chrome_json(tr);
  out.trace = tr.str();
  return out;
}

// Fig. 7 grid point: one core, the paper's 120/270/550 chain under
// overload. A single lane, so every worker count degenerates to one worker
// — the contract still demands byte-identity.
TEST(ShardDeterminism, Fig07GridPoint) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        Simulation sim(cfg);
        const auto core = sim.add_core(SchedPolicy::kCfsBatch);
        const auto a = sim.add_nf("low", core, nfv::nf::CostModel::fixed(120));
        const auto b = sim.add_nf("med", core, nfv::nf::CostModel::fixed(270));
        const auto c = sim.add_nf("high", core, nfv::nf::CostModel::fixed(550));
        const auto chain = sim.add_chain("c", {a, b, c});
        sim.add_udp_flow(chain, 6e6);
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.03);
        return finish(sim, rec);
      },
      {1, 2, 4});
}

// Tab. 3 grid point: overloaded chain on the round-robin scheduler, where
// drop accounting (entry discards vs ring-full) must line up exactly.
TEST(ShardDeterminism, Tab03DropRatePoint) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        Simulation sim(cfg);
        const auto core = sim.add_core(SchedPolicy::kRoundRobin, 1.0);
        const auto a = sim.add_nf("a", core, nfv::nf::CostModel::fixed(550));
        const auto b = sim.add_nf("b", core, nfv::nf::CostModel::fixed(270));
        const auto chain = sim.add_chain("c", {a, b});
        sim.add_udp_flow(chain, 8e6);
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.03);
        return finish(sim, rec);
      },
      {1, 2});
}

// Four lanes with chains crossing every lane boundary plus TCP: the full
// mailbox path (packets, ECN marks, backpressure state, TCP acks) under
// every worker count the CI matrix runs.
TEST(ShardDeterminism, MultiCoreCrossLaneChains) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        Simulation sim(cfg);
        std::vector<std::size_t> cores;
        std::vector<nfv::flow::NfId> nfs;
        for (int i = 0; i < 4; ++i) {
          cores.push_back(sim.add_core(SchedPolicy::kCfsBatch));
          nfs.push_back(sim.add_nf("nf" + std::to_string(i), cores[i],
                                   nfv::nf::CostModel::fixed(200 + 60 * i)));
        }
        const auto ring =
            sim.add_chain("ring", {nfs[0], nfs[1], nfs[2], nfs[3]});
        const auto pair = sim.add_chain("pair", {nfs[3], nfs[0]});
        sim.add_udp_flow(ring, 2.5e6);
        sim.add_udp_flow(pair, 2e6);
        sim.add_tcp_flow(ring);
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.02);
        sim.run_for_seconds(0.01);  // multi-call: resume must not reset state
        return finish(sim, rec);
      },
      {1, 2, 4, 8});
}

// Churn: flows install/retire continuously, exercising the flow table and
// expiry sweeps that live on each chain's home lane.
TEST(ShardDeterminism, ChurnWorkload) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        cfg.flow_table.idle_timeout = 26'000'000;
        Simulation sim(cfg);
        const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto a = sim.add_nf("a", c0, nfv::nf::CostModel::fixed(200));
        const auto b = sim.add_nf("b", c1, nfv::nf::CostModel::fixed(400));
        const auto chain = sim.add_chain("churny", {a, b});
        sim.add_churn_workload(chain, 1.5e6);
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.04);
        return finish(sim, rec);
      },
      {1, 2, 4});
}

// Faulted run: a crash (with restart) on one lane and a degrade on another.
// NF death must propagate across lanes as messages without perturbing any
// lane-local ordering.
TEST(ShardDeterminism, CrashAndDegradeFaultPlan) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        Simulation sim(cfg);
        const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto c2 = sim.add_core(SchedPolicy::kRoundRobin, 1.0);
        const auto a = sim.add_nf("a", c0, nfv::nf::CostModel::fixed(200));
        const auto b = sim.add_nf("b", c1, nfv::nf::CostModel::fixed(400));
        const auto c = sim.add_nf("c", c2, nfv::nf::CostModel::fixed(300));
        const auto chain = sim.add_chain("long", {a, b, c});
        const auto tail = sim.add_chain("tail", {b, c});
        sim.add_udp_flow(chain, 1.5e6);
        sim.add_udp_flow(tail, 1e6);
        nfv::fault::FaultPlan plan;
        plan.add_crash(b, 26'000'000,
                       sim.clock().from_seconds(0.005));
        plan.add_degrade(c, 52'000'000, 2.0, 26'000'000);
        sim.set_fault_plan(std::move(plan));
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.04);
        return finish(sim, rec);
      },
      {1, 2, 4});
}

// Async I/O plus a device fault: the disk and its fault window live on the
// I/O NF's lane; lanes without I/O must not see device-fault events at all.
TEST(ShardDeterminism, DeviceFaultWithAsyncIo) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        Simulation sim(cfg);
        const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto logger =
            sim.add_nf("logger", c0, nfv::nf::CostModel::fixed(300));
        const auto fwd = sim.add_nf("fwd", c1, nfv::nf::CostModel::fixed(150));
        const auto chain = sim.add_chain("logged", {logger, fwd});
        nfv::io::AsyncIoEngine::Config io_cfg;
        io_cfg.mode = nfv::io::AsyncIoEngine::Mode::kDoubleBuffered;
        io_cfg.buffer_bytes = 64 * 1024;
        auto& io_engine = sim.attach_io(logger, io_cfg);
        sim.nf(logger).set_handler([&io_engine](nfv::pktio::Mbuf& pkt) {
          io_engine.write(pkt.size_bytes);
          return nfv::nf::NfAction::kForward;
        });
        sim.add_udp_flow(chain, 2e6);
        nfv::fault::FaultPlan plan;
        plan.add_device_slow(sim.clock().from_seconds(0.01), 4.0,
                             sim.clock().from_seconds(0.005));
        sim.set_fault_plan(std::move(plan));
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.03);
        return finish(sim, rec);
      },
      {1, 2});
}

// Requesting more workers than there are lanes clamps silently; the
// artifacts still match the one-worker run bit-for-bit.
TEST(ShardDeterminism, WorkerCountBeyondLanesIsClamped) {
  expect_identical(
      [](std::uint32_t shards) {
        PlatformConfig cfg;
        cfg.sim_shards = shards;
        Simulation sim(cfg);
        const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
        const auto a = sim.add_nf("a", c0, nfv::nf::CostModel::fixed(150));
        const auto b = sim.add_nf("b", c1, nfv::nf::CostModel::fixed(450));
        const auto chain = sim.add_chain("c", {a, b});
        sim.add_udp_flow(chain, 3e6);
        nfv::obs::TraceRecorder rec;
        sim.attach_trace(rec);
        sim.run_for_seconds(0.02);
        return finish(sim, rec);
      },
      {1, 16});  // 16 workers, 2 lanes: clamped to 2
}

}  // namespace
