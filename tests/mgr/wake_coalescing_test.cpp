// Wakeup coalescing policy (§3.2's pending-count criterion).
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::mgr {
namespace {

using core::PlatformConfig;
using core::SchedPolicy;
using core::Simulation;

PlatformConfig coalescing_config(std::uint32_t min_pending,
                                 double age_us = 1000.0) {
  PlatformConfig cfg;
  cfg.set_nfvnice(true);
  cfg.manager.wake_min_pending = min_pending;
  cfg.manager.wake_age_threshold =
      static_cast<Cycles>(age_us * 2600.0);  // us -> cycles at 2.6 GHz
  return cfg;
}

TEST(WakeCoalescing, ReducesWakeupsAtEqualThroughput) {
  auto run = [](std::uint32_t min_pending) {
    Simulation sim(coalescing_config(min_pending));
    const auto core_id = sim.add_core(SchedPolicy::kCfsNormal);
    const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(200));
    const auto chain = sim.add_chain("c", {nf});
    sim.add_udp_flow(chain, 500'000);
    sim.run_for_seconds(0.2);
    return std::pair{sim.chain_metrics(chain).egress_packets,
                     sim.nf_metrics(nf).voluntary_switches};
  };
  const auto [egress1, switches1] = run(1);
  const auto [egress64, switches64] = run(64);
  EXPECT_NEAR(static_cast<double>(egress64), static_cast<double>(egress1),
              static_cast<double>(egress1) * 0.02);
  EXPECT_LT(switches64, switches1 / 3);
}

TEST(WakeCoalescing, AgeThresholdBoundsLatency) {
  // A trickle flow never reaches min_pending; the age escape must still
  // deliver every packet within roughly the threshold.
  Simulation sim(coalescing_config(1000, /*age_us=*/200.0));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 10'000);  // 100 us apart: never 1000 pooled
  sim.run_for_seconds(0.2);
  const auto cm = sim.chain_metrics(chain);
  EXPECT_GT(cm.egress_packets, 1500u);
  const auto& lat = sim.manager().chain_latency(chain);
  EXPECT_LT(sim.clock().to_micros(static_cast<Cycles>(lat.median())), 500.0);
}

TEST(WakeCoalescing, WithoutAgeEscapeTrickleWaitsForPool) {
  // Documented sharp edge: min_pending without an age threshold can delay
  // slow flows until enough packets pool.
  PlatformConfig cfg = coalescing_config(32, 0.0);
  cfg.manager.wake_age_threshold = 0;
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 100'000);
  sim.run_for_seconds(0.1);
  // Deliveries happen in >=32-packet pools: the NF's voluntary switch
  // count is bounded by egress/32 (plus a couple of boundary blocks).
  const auto m = sim.nf_metrics(nf);
  EXPECT_LE(m.voluntary_switches, m.processed / 32 + 4);
  EXPECT_GT(m.processed, 8000u);
}

}  // namespace
}  // namespace nfv::mgr
