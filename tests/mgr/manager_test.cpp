#include "mgr/manager.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::mgr {
namespace {

using core::PlatformConfig;
using core::SchedPolicy;
using core::Simulation;

PlatformConfig default_config(bool nfvnice = true) {
  PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice);
  return cfg;
}

TEST(Manager, UnmatchedTrafficIsDroppedNotCrashed) {
  Simulation sim(default_config());
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  sim.add_chain("c", {nf});
  sim.run_for_seconds(0.001);  // start the manager

  pktio::Mbuf* pkt = sim.pool().alloc();
  ASSERT_NE(pkt, nullptr);
  pktio::FlowKey unknown{99, 99, 9, 9, 17};
  sim.manager().ingress(pkt, unknown);
  EXPECT_EQ(sim.pool().in_use(), 0u);  // freed on the miss path
  EXPECT_EQ(sim.manager().wire_ingress(), 1u);
}

TEST(Manager, PacketsFlowThroughChainToEgress) {
  Simulation sim(default_config());
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(100));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, /*rate_pps=*/100'000);  // far below capacity
  sim.run_for_seconds(0.05);

  const auto cm = sim.chain_metrics(chain);
  EXPECT_GT(cm.egress_packets, 4000u);
  EXPECT_EQ(cm.entry_throttle_drops, 0u);
  // Every admitted packet that exits was processed by both NFs.
  EXPECT_EQ(sim.nf_metrics(a).processed, sim.nf_metrics(a).forwarded);
  EXPECT_GE(sim.nf_metrics(b).processed, cm.egress_packets);
}

TEST(Manager, EgressCountsBytes) {
  Simulation sim(default_config());
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(50));
  const auto chain = sim.add_chain("c", {nf});
  core::UdpOptions opts;
  opts.size_bytes = 128;
  sim.add_udp_flow(chain, 10'000, opts);
  sim.run_for_seconds(0.02);
  const auto cm = sim.chain_metrics(chain);
  EXPECT_EQ(cm.egress_bytes, cm.egress_packets * 128);
}

TEST(Manager, RxFullDropsAttributedToUpstream) {
  // NF "slow" bottlenecks; packets NF "fast" processed die at slow's ring.
  PlatformConfig cfg = default_config(false);  // no backpressure: force drops
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto fast = sim.add_nf("fast", core_id, nf::CostModel::fixed(50));
  const auto slow = sim.add_nf("slow", core_id, nf::CostModel::fixed(5000));
  const auto chain = sim.add_chain("fs", {fast, slow});
  sim.add_udp_flow(chain, 2e6);
  sim.run_for_seconds(0.1);

  const auto fast_m = sim.nf_metrics(fast);
  const auto slow_m = sim.nf_metrics(slow);
  EXPECT_GT(slow_m.rx_full_drops, 0u);
  EXPECT_EQ(slow_m.rx_full_drops, slow_m.wasted_drops_here);
  EXPECT_EQ(fast_m.downstream_drops, slow_m.wasted_drops_here);
}

TEST(Manager, EntryDropsAreNotWastedWork) {
  Simulation sim(default_config(true));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto fast = sim.add_nf("fast", core_id, nf::CostModel::fixed(50));
  const auto slow = sim.add_nf("slow", core_id, nf::CostModel::fixed(5000));
  const auto chain = sim.add_chain("fs", {fast, slow});
  sim.add_udp_flow(chain, 2e6);
  sim.run_for_seconds(0.1);

  const auto cm = sim.chain_metrics(chain);
  EXPECT_GT(cm.entry_throttle_drops, 0u);  // backpressure shed at entry
  // First-hop full drops (chain_pos 0) must not count as wasted work.
  EXPECT_EQ(sim.nf_metrics(fast).wasted_drops_here, 0u);
}

TEST(Manager, BackpressureDisabledMeansNoEntryDrops) {
  Simulation sim(default_config(false));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto fast = sim.add_nf("fast", core_id, nf::CostModel::fixed(50));
  const auto slow = sim.add_nf("slow", core_id, nf::CostModel::fixed(5000));
  const auto chain = sim.add_chain("fs", {fast, slow});
  sim.add_udp_flow(chain, 2e6);
  sim.run_for_seconds(0.05);
  EXPECT_EQ(sim.chain_metrics(chain).entry_throttle_drops, 0u);
}

TEST(Manager, CgroupsUpdateSharesUnderLoad) {
  Simulation sim(default_config(true));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto cheap = sim.add_nf("cheap", core_id, nf::CostModel::fixed(100));
  const auto costly = sim.add_nf("costly", core_id, nf::CostModel::fixed(1000));
  const auto c1 = sim.add_chain("c1", {cheap});
  const auto c2 = sim.add_chain("c2", {costly});
  sim.add_udp_flow(c1, 1e6);
  sim.add_udp_flow(c2, 1e6);
  sim.run_for_seconds(0.2);

  EXPECT_GT(sim.manager().cgroups().writes(), 0u);
  // Equal arrival rates, 10x cost: the costly NF must carry ~10x weight.
  const double ratio = static_cast<double>(sim.nf(costly).weight()) /
                       static_cast<double>(sim.nf(cheap).weight());
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(Manager, CgroupsDisabledLeavesWeightsAlone) {
  Simulation sim(default_config(false));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto cheap = sim.add_nf("cheap", core_id, nf::CostModel::fixed(100));
  const auto costly = sim.add_nf("costly", core_id, nf::CostModel::fixed(1000));
  const auto c1 = sim.add_chain("c1", {cheap});
  const auto c2 = sim.add_chain("c2", {costly});
  sim.add_udp_flow(c1, 1e6);
  sim.add_udp_flow(c2, 1e6);
  sim.run_for_seconds(0.1);
  EXPECT_EQ(sim.manager().cgroups().writes(), 0u);
  EXPECT_EQ(sim.nf(cheap).weight(), sched::kDefaultWeight);
  EXPECT_EQ(sim.nf(costly).weight(), sched::kDefaultWeight);
}

TEST(Manager, LoadEstimateReflectsArrivalRateAndCost) {
  Simulation sim(default_config(true));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(260));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 1e6);  // 1 Mpps * 260 cycles = 10% of 2.6 GHz
  sim.run_for_seconds(0.3);
  EXPECT_NEAR(sim.manager().nf_load(nf), 0.10, 0.03);
}

TEST(Manager, EcnMarksTcpUnderCongestion) {
  Simulation sim(default_config(true));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(100));
  const auto slow = sim.add_nf("slow", core_id, nf::CostModel::fixed(3000));
  const auto chain = sim.add_chain("c", {a, slow});
  auto [flow_id, tcp] = sim.add_tcp_flow(chain);
  sim.add_udp_flow(chain, 1.5e6);  // congest the slow NF
  sim.run_for_seconds(0.3);
  EXPECT_GT(sim.manager().ecn()->marks(), 0u);
  EXPECT_GT(sim.manager().flow_counters(flow_id).ecn_marked, 0u);
  EXPECT_GT(tcp->ecn_backoffs() + tcp->congestion_events(), 0u);
}

TEST(Manager, WakeupThreadPausesUpstreamOfBottleneck) {
  Simulation sim(default_config(true));
  const auto c0 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto c1 = sim.add_core(SchedPolicy::kCfsBatch);
  const auto up = sim.add_nf("up", c0, nf::CostModel::fixed(100));
  const auto down = sim.add_nf("down", c1, nf::CostModel::fixed(8000));
  const auto chain = sim.add_chain("ud", {up, down});
  sim.add_udp_flow(chain, 3e6);
  sim.run_for_seconds(0.05);
  // The bottleneck NF must never carry the relinquish flag; with its own
  // dedicated core the upstream NF throttles via entry drops + flag.
  EXPECT_FALSE(sim.nf(down).yield_flag());
  EXPECT_GT(sim.chain_metrics(chain).entry_throttle_drops, 0u);
}

TEST(Manager, MbufPoolNeverLeaksAcrossHeavyOverload) {
  Simulation sim(default_config(true));
  const auto core_id = sim.add_core(SchedPolicy::kCfsNormal);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 8e6, {.stop_seconds = 0.05});
  sim.run_for_seconds(0.2);  // drain completely after sources stop
  EXPECT_EQ(sim.pool().in_use(), 0u);
}

}  // namespace
}  // namespace nfv::mgr
