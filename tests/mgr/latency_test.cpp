// Per-chain end-to-end latency accounting.
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::mgr {
namespace {

using core::SchedPolicy;
using core::Simulation;

TEST(ChainLatency, EmptyUntilFirstEgress) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  sim.run_for_seconds(0.001);
  EXPECT_EQ(sim.manager().chain_latency(chain).count(), 0u);
}

TEST(ChainLatency, CountsMatchEgress) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 100'000);
  sim.run_for_seconds(0.05);
  EXPECT_EQ(sim.manager().chain_latency(chain).count(),
            sim.chain_metrics(chain).egress_packets);
}

TEST(ChainLatency, UnderloadLatencyIsMicroseconds) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(100));
  const auto b = sim.add_nf("b", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("ab", {a, b});
  sim.add_udp_flow(chain, 50'000);  // far below capacity
  sim.run_for_seconds(0.1);
  const auto& hist = sim.manager().chain_latency(chain);
  ASSERT_GT(hist.count(), 0u);
  // Median under light load: work + wakeup-scan latency, well under 100 us.
  EXPECT_LT(sim.clock().to_micros(static_cast<Cycles>(hist.median())), 100.0);
}

TEST(ChainLatency, OverloadInflatesTailLatency) {
  auto median_latency = [](double rate) {
    Simulation sim;
    const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
    const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(500));
    const auto chain = sim.add_chain("c", {nf});
    sim.add_udp_flow(chain, rate);
    sim.run_for_seconds(0.2);
    return sim.clock().to_micros(
        static_cast<Cycles>(sim.manager().chain_latency(chain).median()));
  };
  const double light = median_latency(1e6);   // 20% load
  const double heavy = median_latency(10e6);  // 2x overload: queues fill
  EXPECT_GT(heavy, light * 10.0);
}

TEST(ChainLatency, QuantilesOrdered) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(300));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 5e6);
  sim.run_for_seconds(0.1);
  const auto& hist = sim.manager().chain_latency(chain);
  EXPECT_LE(hist.value_at_quantile(0.5), hist.value_at_quantile(0.99));
  EXPECT_LE(hist.value_at_quantile(0.99), hist.max());
}

}  // namespace
}  // namespace nfv::mgr
