#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nfv::sim {
namespace {

// Every behavioural contract below must hold for both ready-queue backends
// (DESIGN.md §15): the wheel is a performance substitute for the heap, not a
// semantic variant. The suite is instantiated once per backend.
class EngineBackendTest : public ::testing::TestWithParam<EngineBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineBackendTest,
    ::testing::Values(EngineBackend::kHeap, EngineBackend::kWheel),
    [](const ::testing::TestParamInfo<EngineBackend>& param) {
      return std::string(to_string(param.param));
    });

TEST_P(EngineBackendTest, StartsAtZero) {
  Engine e{GetParam()};
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
  EXPECT_EQ(e.backend(), GetParam());
}

TEST_P(EngineBackendTest, EventsFireInTimeOrder) {
  Engine e{GetParam()};
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST_P(EngineBackendTest, TiesBreakInSchedulingOrder) {
  Engine e{GetParam()};
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EngineBackendTest, ScheduleAfterIsRelative) {
  Engine e{GetParam()};
  Cycles fired_at = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 150);
}

TEST_P(EngineBackendTest, NegativeDelayClampsToNow) {
  Engine e{GetParam()};
  Cycles fired_at = -1;
  e.schedule_at(10, [&] {
    e.schedule_after(-5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 10);
}

TEST_P(EngineBackendTest, RunUntilStopsAtDeadline) {
  Engine e{GetParam()};
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(21, [&] { ++fired; });
  const auto n = e.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20);  // clock advances to the deadline
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST_P(EngineBackendTest, RunUntilAdvancesClockWhenIdle) {
  Engine e{GetParam()};
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000);
}

TEST_P(EngineBackendTest, CancelPreventsExecution) {
  Engine e{GetParam()};
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST_P(EngineBackendTest, CancelIsIdempotent) {
  Engine e{GetParam()};
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(kInvalidEventId));
  EXPECT_FALSE(e.cancel(999999));  // never issued
  e.run();
}

TEST_P(EngineBackendTest, CancelFromWithinEarlierEvent) {
  Engine e{GetParam()};
  bool fired = false;
  const EventId id = e.schedule_at(20, [&] { fired = true; });
  e.schedule_at(10, [&] { e.cancel(id); });
  e.run();
  EXPECT_FALSE(fired);
}

TEST_P(EngineBackendTest, PeriodicFiresRepeatedly) {
  Engine e{GetParam()};
  int count = 0;
  e.schedule_periodic(10, [&] { ++count; });
  e.run_until(100);
  EXPECT_EQ(count, 10);  // t=10,20,...,100
}

TEST_P(EngineBackendTest, PeriodicCancelStops) {
  Engine e{GetParam()};
  int count = 0;
  const EventId id = e.schedule_periodic(10, [&] { ++count; });
  e.schedule_at(35, [&] { e.cancel(id); });
  e.run_until(200);
  EXPECT_EQ(count, 3);  // t=10,20,30
}

TEST_P(EngineBackendTest, PeriodicCanCancelItself) {
  Engine e{GetParam()};
  int count = 0;
  EventId id = kInvalidEventId;
  id = e.schedule_periodic(10, [&] {
    if (++count == 5) e.cancel(id);
  });
  e.run_until(1000);
  EXPECT_EQ(count, 5);
}

TEST_P(EngineBackendTest, DispatchedEventsCounts) {
  Engine e{GetParam()};
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.dispatched_events(), 5u);
}

TEST_P(EngineBackendTest, EventsScheduledDuringRunAreExecuted) {
  Engine e{GetParam()};
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_after(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST_P(EngineBackendTest, SameCycleInsertionDuringDispatchFires) {
  // A callback scheduling at the *current* cycle must see the new event run
  // in the same batch (the wheel re-drains its level-0 cell for this).
  Engine e{GetParam()};
  std::vector<int> order;
  e.schedule_at(10, [&] {
    order.push_back(1);
    e.schedule_at(10, [&] { order.push_back(2); });
  });
  e.schedule_at(10, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));  // fresh seq sorts last
  EXPECT_EQ(e.now(), 10);
}

TEST_P(EngineBackendTest, CancelAfterFireIsNoOp) {
  // Regression: cancelling an already-fired one-shot used to decrement
  // pending_events (underflowing the gauge) and leak heap bookkeeping.
  Engine e{GetParam()};
  int fired = 0;
  const EventId id = e.schedule_at(10, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending_events(), 0u);
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.pending_events(), 0u);  // no underflow
  // The engine must still work normally afterwards.
  e.schedule_after(5, [&] { ++fired; });
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST_P(EngineBackendTest, StaleIdCannotCancelReusedSlot) {
  // After a one-shot fires, its slot is recycled for new events. A stale
  // EventId (same slot, older generation) must not cancel the new tenant.
  Engine e{GetParam()};
  bool second_fired = false;
  const EventId old_id = e.schedule_at(1, [] {});
  e.run();
  // The next schedule reuses the freed slot.
  const EventId new_id = e.schedule_at(10, [&] { second_fired = true; });
  EXPECT_FALSE(e.cancel(old_id));  // stale generation: refused
  e.run();
  EXPECT_TRUE(second_fired);
  EXPECT_NE(old_id, new_id);
}

TEST_P(EngineBackendTest, CancelledSlotIsRecycledSafely) {
  // Cancelling an armed event frees its slot immediately; a stale cancel of
  // the same id after the slot is re-armed must be refused.
  Engine e{GetParam()};
  const EventId a = e.schedule_at(50, [] { FAIL() << "cancelled event ran"; });
  EXPECT_TRUE(e.cancel(a));
  EXPECT_EQ(e.pending_events(), 0u);
  int fired = 0;
  e.schedule_at(60, [&] { ++fired; });  // reuses a's slot
  EXPECT_FALSE(e.cancel(a));
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(EngineBackendTest, OneShotSelfCancelDuringDispatchIsNoOp) {
  // A callback cancelling its own (already-firing) id must get `false` and
  // leave the engine consistent.
  Engine e{GetParam()};
  EventId id = kInvalidEventId;
  bool self_cancel_result = true;
  id = e.schedule_at(10, [&] { self_cancel_result = e.cancel(id); });
  e.run();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST_P(EngineBackendTest, ManyCancelledEventsDoNotAccumulateState) {
  // With O(1) cancellation the slot must be reusable at once: heavy
  // schedule/cancel churn keeps pending_events exact.
  Engine e{GetParam()};
  for (int round = 0; round < 1000; ++round) {
    const EventId id = e.schedule_after(100, [] {});
    EXPECT_TRUE(e.cancel(id));
  }
  EXPECT_EQ(e.pending_events(), 0u);
  int fired = 0;
  e.schedule_after(1, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.dispatched_events(), 1u);
}

TEST_P(EngineBackendTest, DeterministicUnderChurn) {
  // Two engines fed the identical schedule/cancel pattern must observe the
  // identical dispatch sequence — the determinism contract every simulation
  // above relies on.
  const auto run_once = [this] {
    Engine e{GetParam()};
    std::vector<Cycles> fire_times;
    std::vector<EventId> live;
    std::uint64_t seed = 99;
    for (int i = 0; i < 3000; ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const Cycles t = static_cast<Cycles>(seed % 5000);
      live.push_back(
          e.schedule_at(t, [&fire_times, &e] { fire_times.push_back(e.now()); }));
      if (seed % 3 == 0 && !live.empty()) {
        e.cancel(live[seed % live.size()]);
      }
    }
    e.run();
    return fire_times;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_P(EngineBackendTest, HeavyLoadOrderingProperty) {
  // Many events at random times must still execute in nondecreasing order.
  Engine e{GetParam()};
  std::vector<Cycles> times;
  std::uint64_t seed = 12345;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Cycles t = static_cast<Cycles>(seed % 100000);
    e.schedule_at(t, [&times, &e] { times.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(times.size(), 10000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LE(times[i - 1], times[i]);
  }
}

TEST_P(EngineBackendTest, FarFutureEventsFireInOrder) {
  // Deltas spanning every wheel level (up to 2^56 cycles) must cascade down
  // and fire in order; exercises multi-level rollover.
  Engine e{GetParam()};
  std::vector<Cycles> times;
  for (int i = 0; i < 57; ++i) {
    e.schedule_at(Cycles{1} << i, [&times, &e] { times.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(times.size(), 57u);
  for (int i = 0; i < 57; ++i) EXPECT_EQ(times[i], Cycles{1} << i);
}

TEST_P(EngineBackendTest, FarFutureCancelIsExact) {
  // Cancelling events parked on high wheel levels must be O(1)-eager:
  // pending_events drops immediately, and nothing fires later.
  Engine e{GetParam()};
  std::vector<EventId> ids;
  for (int i = 10; i < 50; ++i) {
    ids.push_back(e.schedule_at(Cycles{1} << i, [] { FAIL(); }));
  }
  EXPECT_EQ(e.pending_events(), ids.size());
  for (const EventId id : ids) EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending_events(), 0u);
  e.run();
  EXPECT_EQ(e.dispatched_events(), 0u);
}

TEST_P(EngineBackendTest, ReserveIsBehaviourNeutral) {
  Engine e{GetParam()};
  e.reserve(1 << 16);
  std::vector<int> order;
  e.schedule_at(2, [&] { order.push_back(2); });
  e.schedule_at(1, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EngineBackendTest, PeriodicWithLongPeriodCrossesLevels) {
  // Period > one level-0 revolution (256 cycles): each re-arm lands on a
  // higher level and must cascade back down exactly on time.
  Engine e{GetParam()};
  std::vector<Cycles> times;
  e.schedule_periodic(1000, [&] { times.push_back(e.now()); });
  e.run_until(10'000);
  ASSERT_EQ(times.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(times[i], Cycles{1000} * (i + 1));
}

TEST(EngineBackend, ParseAndName) {
  EngineBackend b = EngineBackend::kHeap;
  EXPECT_TRUE(parse_engine_backend("wheel", b));
  EXPECT_EQ(b, EngineBackend::kWheel);
  EXPECT_TRUE(parse_engine_backend("heap", b));
  EXPECT_EQ(b, EngineBackend::kHeap);
  EXPECT_FALSE(parse_engine_backend("bogus", b));
  EXPECT_FALSE(parse_engine_backend("", b));
  EXPECT_FALSE(parse_engine_backend(nullptr, b));
  EXPECT_STREQ(to_string(EngineBackend::kHeap), "heap");
  EXPECT_STREQ(to_string(EngineBackend::kWheel), "wheel");
}

// Differential contract: the two backends, fed an identical randomized
// schedule/cancel/periodic workload, must produce the *identical* dispatch
// log — same tags at the same times in the same order. This is the unit-level
// form of the byte-identical-reports guarantee DESIGN.md §15 claims.
TEST(EngineBackend, HeapWheelDifferentialChurn) {
  const auto run_ops = [](EngineBackend backend) {
    Engine e{backend};
    std::vector<std::pair<Cycles, int>> log;
    std::vector<EventId> live;
    std::uint64_t seed = 0xabcdef12345ULL;
    const auto next = [&seed] {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      return seed >> 16;
    };
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t r = next();
      switch (r % 5) {
        case 0:
        case 1: {  // one-shot at a near/far mix of horizons
          const Cycles t =
              e.now() + static_cast<Cycles>((r % 3 == 0)
                                                ? next() % (Cycles{1} << 34)
                                                : next() % 4096);
          const int tag = i;
          live.push_back(e.schedule_at(
              t, [&log, &e, tag] { log.emplace_back(e.now(), tag); }));
          break;
        }
        case 2: {  // periodic that cancels itself after a few firings
          const Cycles period = 1 + static_cast<Cycles>(next() % 700);
          const int tag = -i;
          struct Periodic {
            EventId id = kInvalidEventId;
            int count = 0;
          };
          auto st = std::make_shared<Periodic>();
          st->id = e.schedule_periodic(period, [&log, &e, tag, st] {
            log.emplace_back(e.now(), tag);
            if (++st->count == 4) e.cancel(st->id);
          });
          break;
        }
        case 3:  // cancel a random live event
          if (!live.empty()) e.cancel(live[next() % live.size()]);
          break;
        case 4:  // partial drain, then keep scheduling
          e.run_until(e.now() + static_cast<Cycles>(next() % 2000));
          break;
      }
    }
    e.run_until(Cycles{1} << 35);
    log.emplace_back(e.now(), static_cast<int>(e.dispatched_events()));
    return log;
  };
  const auto heap_log = run_ops(EngineBackend::kHeap);
  const auto wheel_log = run_ops(EngineBackend::kWheel);
  ASSERT_FALSE(heap_log.empty());
  EXPECT_EQ(heap_log, wheel_log);
}

}  // namespace
}  // namespace nfv::sim
