#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nfv::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  Cycles fired_at = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine e;
  Cycles fired_at = -1;
  e.schedule_at(10, [&] {
    e.schedule_after(-5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 10);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(21, [&] { ++fired; });
  const auto n = e.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20);  // clock advances to the deadline
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotent) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(kInvalidEventId));
  EXPECT_FALSE(e.cancel(999999));  // never issued
  e.run();
}

TEST(Engine, CancelFromWithinEarlierEvent) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(20, [&] { fired = true; });
  e.schedule_at(10, [&] { e.cancel(id); });
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine e;
  int count = 0;
  e.schedule_periodic(10, [&] { ++count; });
  e.run_until(100);
  EXPECT_EQ(count, 10);  // t=10,20,...,100
}

TEST(Engine, PeriodicCancelStops) {
  Engine e;
  int count = 0;
  const EventId id = e.schedule_periodic(10, [&] { ++count; });
  e.schedule_at(35, [&] { e.cancel(id); });
  e.run_until(200);
  EXPECT_EQ(count, 3);  // t=10,20,30
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine e;
  int count = 0;
  EventId id = kInvalidEventId;
  id = e.schedule_periodic(10, [&] {
    if (++count == 5) e.cancel(id);
  });
  e.run_until(1000);
  EXPECT_EQ(count, 5);
}

TEST(Engine, DispatchedEventsCounts) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.dispatched_events(), 5u);
}

TEST(Engine, EventsScheduledDuringRunAreExecuted) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_after(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST(Engine, HeavyLoadOrderingProperty) {
  // Many events at random times must still execute in nondecreasing order.
  Engine e;
  std::vector<Cycles> times;
  std::uint64_t seed = 12345;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Cycles t = static_cast<Cycles>(seed % 100000);
    e.schedule_at(t, [&times, &e] { times.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(times.size(), 10000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace nfv::sim
