#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nfv::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  Cycles fired_at = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine e;
  Cycles fired_at = -1;
  e.schedule_at(10, [&] {
    e.schedule_after(-5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 10);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(21, [&] { ++fired; });
  const auto n = e.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20);  // clock advances to the deadline
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotent) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(kInvalidEventId));
  EXPECT_FALSE(e.cancel(999999));  // never issued
  e.run();
}

TEST(Engine, CancelFromWithinEarlierEvent) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(20, [&] { fired = true; });
  e.schedule_at(10, [&] { e.cancel(id); });
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine e;
  int count = 0;
  e.schedule_periodic(10, [&] { ++count; });
  e.run_until(100);
  EXPECT_EQ(count, 10);  // t=10,20,...,100
}

TEST(Engine, PeriodicCancelStops) {
  Engine e;
  int count = 0;
  const EventId id = e.schedule_periodic(10, [&] { ++count; });
  e.schedule_at(35, [&] { e.cancel(id); });
  e.run_until(200);
  EXPECT_EQ(count, 3);  // t=10,20,30
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine e;
  int count = 0;
  EventId id = kInvalidEventId;
  id = e.schedule_periodic(10, [&] {
    if (++count == 5) e.cancel(id);
  });
  e.run_until(1000);
  EXPECT_EQ(count, 5);
}

TEST(Engine, DispatchedEventsCounts) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.dispatched_events(), 5u);
}

TEST(Engine, EventsScheduledDuringRunAreExecuted) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_after(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST(Engine, CancelAfterFireIsNoOp) {
  // Regression: cancelling an already-fired one-shot used to decrement
  // pending_events (underflowing the gauge) and leak heap bookkeeping.
  Engine e;
  int fired = 0;
  const EventId id = e.schedule_at(10, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending_events(), 0u);
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.pending_events(), 0u);  // no underflow
  // The engine must still work normally afterwards.
  e.schedule_after(5, [&] { ++fired; });
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, StaleIdCannotCancelReusedSlot) {
  // After a one-shot fires, its slot is recycled for new events. A stale
  // EventId (same slot, older generation) must not cancel the new tenant.
  Engine e;
  bool second_fired = false;
  const EventId old_id = e.schedule_at(1, [] {});
  e.run();
  // The next schedule reuses the freed slot.
  const EventId new_id = e.schedule_at(10, [&] { second_fired = true; });
  EXPECT_FALSE(e.cancel(old_id));  // stale generation: refused
  e.run();
  EXPECT_TRUE(second_fired);
  EXPECT_NE(old_id, new_id);
}

TEST(Engine, CancelledSlotIsRecycledSafely) {
  // Cancelling an armed event frees its slot immediately; a stale cancel of
  // the same id after the slot is re-armed must be refused.
  Engine e;
  const EventId a = e.schedule_at(50, [] { FAIL() << "cancelled event ran"; });
  EXPECT_TRUE(e.cancel(a));
  EXPECT_EQ(e.pending_events(), 0u);
  int fired = 0;
  e.schedule_at(60, [&] { ++fired; });  // reuses a's slot
  EXPECT_FALSE(e.cancel(a));
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, OneShotSelfCancelDuringDispatchIsNoOp) {
  // A callback cancelling its own (already-firing) id must get `false` and
  // leave the engine consistent.
  Engine e;
  EventId id = kInvalidEventId;
  bool self_cancel_result = true;
  id = e.schedule_at(10, [&] { self_cancel_result = e.cancel(id); });
  e.run();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, ManyCancelledEventsDoNotAccumulateState) {
  // With O(1) eager cancellation the heap entry is lazily skipped but the
  // slot must be reusable at once: heavy schedule/cancel churn keeps
  // pending_events exact.
  Engine e;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = e.schedule_after(100, [] {});
    EXPECT_TRUE(e.cancel(id));
  }
  EXPECT_EQ(e.pending_events(), 0u);
  int fired = 0;
  e.schedule_after(1, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.dispatched_events(), 1u);
}

TEST(Engine, DeterministicUnderChurn) {
  // Two engines fed the identical schedule/cancel pattern must observe the
  // identical dispatch sequence — the determinism contract every simulation
  // above relies on.
  const auto run_once = [] {
    Engine e;
    std::vector<Cycles> fire_times;
    std::vector<EventId> live;
    std::uint64_t seed = 99;
    for (int i = 0; i < 3000; ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const Cycles t = static_cast<Cycles>(seed % 5000);
      live.push_back(
          e.schedule_at(t, [&fire_times, &e] { fire_times.push_back(e.now()); }));
      if (seed % 3 == 0 && !live.empty()) {
        e.cancel(live[seed % live.size()]);
      }
    }
    e.run();
    return fire_times;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(Engine, HeavyLoadOrderingProperty) {
  // Many events at random times must still execute in nondecreasing order.
  Engine e;
  std::vector<Cycles> times;
  std::uint64_t seed = 12345;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Cycles t = static_cast<Cycles>(seed % 100000);
    e.schedule_at(t, [&times, &e] { times.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(times.size(), 10000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace nfv::sim
