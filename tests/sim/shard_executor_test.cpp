// ShardExecutor / EventLane: the phase barrier and epoch bookkeeping under
// the sharded simulation engine (DESIGN.md §14).

#include "sim/shard_barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/event_lane.hpp"

namespace nfv::sim {
namespace {

TEST(ShardExecutor, WorkerCountClampedToLanes) {
  ShardExecutor one(4, 0);
  EXPECT_EQ(one.worker_count(), 1u);
  ShardExecutor capped(2, 8);
  EXPECT_EQ(capped.worker_count(), 2u);
  EXPECT_EQ(capped.lane_count(), 2u);
  ShardExecutor exact(4, 3);
  EXPECT_EQ(exact.worker_count(), 3u);
  // All must run a phase cleanly.
  std::atomic<int> hits{0};
  one.run_phase([&](std::size_t) { hits.fetch_add(1); });
  capped.run_phase([&](std::size_t) { hits.fetch_add(1); });
  exact.run_phase([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4 + 2 + 4);
}

TEST(ShardExecutor, SingleWorkerRunsInlineOnCallerThread) {
  ShardExecutor exec(3, 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(3);
  exec.run_phase([&](std::size_t lane) { ran[lane] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ShardExecutor, EveryLaneRunsExactlyOncePerPhase) {
  constexpr std::size_t kLanes = 7;
  ShardExecutor exec(kLanes, 4);
  std::vector<std::atomic<int>> counts(kLanes);
  for (int phase = 0; phase < 50; ++phase) {
    exec.run_phase([&](std::size_t lane) { counts[lane].fetch_add(1); });
  }
  for (const auto& c : counts) EXPECT_EQ(c.load(), 50);
}

TEST(ShardExecutor, ReturnIsABarrier) {
  // When run_phase returns, every lane's side effects must be visible to the
  // caller — sum a plain (non-atomic) per-lane array across many phases.
  constexpr std::size_t kLanes = 8;
  ShardExecutor exec(kLanes, 4);
  std::vector<std::uint64_t> cells(kLanes, 0);
  std::uint64_t expected = 0;
  for (int phase = 0; phase < 200; ++phase) {
    exec.run_phase([&](std::size_t lane) { cells[lane] += lane + 1; });
    expected += kLanes * (kLanes + 1) / 2;
    std::uint64_t sum = 0;
    for (const auto v : cells) sum += v;
    ASSERT_EQ(sum, expected) << "phase " << phase;
  }
}

TEST(ShardExecutor, LaneToWorkerAssignmentIsStatic) {
  // Lane i always runs on worker i % workers — record the executing thread
  // per lane across phases and require it never to change. Static
  // assignment is what keeps any per-lane thread-local state coherent.
  constexpr std::size_t kLanes = 6;
  ShardExecutor exec(kLanes, 3);
  std::vector<std::thread::id> first(kLanes);
  exec.run_phase([&](std::size_t lane) { first[lane] = std::this_thread::get_id(); });
  for (int phase = 0; phase < 20; ++phase) {
    std::vector<std::thread::id> now(kLanes);
    exec.run_phase([&](std::size_t lane) { now[lane] = std::this_thread::get_id(); });
    EXPECT_EQ(now, first) << "phase " << phase;
  }
  // Lanes congruent mod workers share a thread; others do not.
  EXPECT_EQ(first[0], first[3]);
  EXPECT_EQ(first[1], first[4]);
  EXPECT_EQ(first[2], first[5]);
  EXPECT_NE(first[0], first[1]);
}

TEST(EventLane, RunEpochExcludesHorizon) {
  EventLane lane(0);
  std::vector<int> fired;
  lane.engine().schedule_at(99, [&] { fired.push_back(99); });
  lane.engine().schedule_at(100, [&] { fired.push_back(100); });
  lane.run_epoch(100);
  // Events stamped exactly at the horizon belong to the next epoch.
  EXPECT_EQ(fired, (std::vector<int>{99}));
  EXPECT_EQ(lane.engine().now(), 99);
  lane.run_epoch(200);
  EXPECT_EQ(fired, (std::vector<int>{99, 100}));
  EXPECT_EQ(lane.epochs(), 2u);
}

}  // namespace
}  // namespace nfv::sim
