// LatencyEstimator: the fixed-window tail-quantile estimator behind the
// per-chain SLO telemetry (DESIGN.md §16). The tests pin the nearest-rank
// rule exactly — index ceil(q*n)-1 over the sorted window — plus the
// ring-buffer wraparound order, snapshot non-destruction, and the
// shard-merge contract (quantiles over a concatenated sample multiset are
// order-independent, so merged == unsharded).

#include "obs/latency_estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace nfv::obs {
namespace {

TEST(LatencyEstimator, EmptyReportsZeros) {
  LatencyEstimator est;
  EXPECT_TRUE(est.empty());
  EXPECT_EQ(est.size(), 0u);
  EXPECT_EQ(est.total_count(), 0u);
  EXPECT_EQ(est.quantile(0.99), 0u);
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.p50, 0u);
  EXPECT_EQ(snap.p95, 0u);
  EXPECT_EQ(snap.p99, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.samples, 0u);
}

TEST(LatencyEstimator, NearestRankOnOneToHundred) {
  // 1..100: nearest-rank index ceil(q*100)-1 picks exactly the q*100-th
  // value — the textbook case every implementation should agree on.
  LatencyEstimator est(128);
  for (std::uint64_t v = 1; v <= 100; ++v) est.record(v);
  EXPECT_EQ(est.quantile(0.50), 50u);
  EXPECT_EQ(est.quantile(0.95), 95u);
  EXPECT_EQ(est.quantile(0.99), 99u);
  EXPECT_EQ(est.quantile(1.0), 100u);
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.p50, 50u);
  EXPECT_EQ(snap.p95, 95u);
  EXPECT_EQ(snap.p99, 99u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_EQ(snap.samples, 100u);
  EXPECT_EQ(snap.total_count, 100u);
}

TEST(LatencyEstimator, SingleSampleIsEveryQuantile) {
  LatencyEstimator est;
  est.record(42);
  EXPECT_EQ(est.quantile(0.01), 42u);
  EXPECT_EQ(est.quantile(0.5), 42u);
  EXPECT_EQ(est.quantile(0.99), 42u);
}

TEST(LatencyEstimator, WindowWraparoundKeepsNewestSamples) {
  // Window of 8 fed 1..100: only 93..100 remain. Nearest-rank over n=8:
  // p50 -> index ceil(0.5*8)-1 = 3 -> 96; p99 -> index 7 -> 100.
  LatencyEstimator est(8);
  for (std::uint64_t v = 1; v <= 100; ++v) est.record(v);
  EXPECT_EQ(est.size(), 8u);
  EXPECT_EQ(est.total_count(), 100u);
  EXPECT_EQ(est.quantile(0.50), 96u);
  EXPECT_EQ(est.quantile(0.99), 100u);
  std::vector<std::uint64_t> samples;
  est.append_samples(samples);
  const std::vector<std::uint64_t> expect{93, 94, 95, 96, 97, 98, 99, 100};
  EXPECT_EQ(samples, expect);  // oldest-first
}

TEST(LatencyEstimator, SnapshotDoesNotDisturbTheWindow) {
  LatencyEstimator est(16);
  for (std::uint64_t v = 1; v <= 10; ++v) est.record(v);
  const auto first = est.snapshot();
  // nth_element runs on a scratch copy: repeated snapshots and quantile
  // queries must agree and must not reorder the ring.
  for (int i = 0; i < 5; ++i) {
    const auto again = est.snapshot();
    EXPECT_EQ(again.p50, first.p50);
    EXPECT_EQ(again.p99, first.p99);
    EXPECT_EQ(again.max, first.max);
  }
  std::vector<std::uint64_t> samples;
  est.append_samples(samples);
  for (std::uint64_t v = 1; v <= 10; ++v) EXPECT_EQ(samples[v - 1], v);
}

TEST(LatencyEstimator, RecordAfterSnapshotContinuesTheRing) {
  LatencyEstimator est(4);
  est.record(10);
  est.record(20);
  (void)est.snapshot();
  est.record(30);
  est.record(40);
  est.record(50);  // evicts 10
  std::vector<std::uint64_t> samples;
  est.append_samples(samples);
  const std::vector<std::uint64_t> expect{20, 30, 40, 50};
  EXPECT_EQ(samples, expect);
  EXPECT_EQ(est.quantile(1.0), 50u);
}

TEST(LatencyEstimator, ClearResetsWindowAndTotals) {
  LatencyEstimator est(8);
  for (std::uint64_t v = 1; v <= 20; ++v) est.record(v);
  est.clear();
  EXPECT_TRUE(est.empty());
  EXPECT_EQ(est.total_count(), 0u);
  EXPECT_EQ(est.quantile(0.99), 0u);
  est.record(7);
  EXPECT_EQ(est.quantile(0.5), 7u);
}

TEST(LatencyEstimator, SnapshotOfMatchesSingleEstimator) {
  // The shard-merge contract: concatenating per-lane windows and ranking
  // with snapshot_of() must equal one estimator that saw every sample —
  // quantiles are functions of the sample multiset, not insertion order.
  std::mt19937_64 rng(0xfeedULL);
  std::vector<std::uint64_t> values(300);
  for (auto& v : values) v = rng() % 1'000'000;

  LatencyEstimator whole(512);
  LatencyEstimator lane_a(512);
  LatencyEstimator lane_b(512);
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.record(values[i]);
    (i % 2 == 0 ? lane_a : lane_b).record(values[i]);
  }
  std::vector<std::uint64_t> merged;
  lane_a.append_samples(merged);
  lane_b.append_samples(merged);
  const auto merged_snap = LatencyEstimator::snapshot_of(
      merged, lane_a.total_count() + lane_b.total_count());
  const auto whole_snap = whole.snapshot();
  EXPECT_EQ(merged_snap.p50, whole_snap.p50);
  EXPECT_EQ(merged_snap.p95, whole_snap.p95);
  EXPECT_EQ(merged_snap.p99, whole_snap.p99);
  EXPECT_EQ(merged_snap.max, whole_snap.max);
  EXPECT_EQ(merged_snap.samples, whole_snap.samples);
  EXPECT_EQ(merged_snap.total_count, whole_snap.total_count);
}

TEST(LatencyEstimator, QuantileAgreesWithSortReference) {
  // Property check: nearest-rank via nth_element == nearest-rank via a
  // full sort, across random windows and the quantiles the platform uses.
  std::mt19937_64 rng(0x5eedULL);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng() % 200;
    LatencyEstimator est(256);
    std::vector<std::uint64_t> ref;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = rng() % 10'000;
      est.record(v);
      ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (const double q : {0.5, 0.95, 0.99}) {
      const auto rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(n))); // 1-based nearest rank
      const std::size_t idx = std::min(rank == 0 ? 0 : rank - 1, n - 1);
      EXPECT_EQ(est.quantile(q), ref[idx]) << "n=" << n << " q=" << q;
    }
  }
}

TEST(LatencyEstimator, ZeroWindowIsClampedToOne) {
  LatencyEstimator est(0);
  EXPECT_EQ(est.window(), 1u);
  est.record(5);
  est.record(9);
  EXPECT_EQ(est.size(), 1u);
  EXPECT_EQ(est.quantile(0.5), 9u);  // only the newest survives
}

}  // namespace
}  // namespace nfv::obs
