// MetricsRegistry: instrument registration, label scoping, sampled probes,
// histogram percentiles, and the deterministic JSON export.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/observability.hpp"

namespace nfv::obs {
namespace {

TEST(MetricsRegistry, CounterGetOrCreateIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("mgr.drops", {{"nf", "NF1"}});
  Counter& b = reg.counter("mgr.drops", {{"nf", "NF1"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc();
  EXPECT_EQ(a.value(), 4u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, DifferentLabelsAreDifferentSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("nf.processed", {{"nf", "NF1"}});
  Counter& b = reg.counter("nf.processed", {{"nf", "NF2"}});
  Counter& c = reg.counter("nf.processed");
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, FindWithoutCreating) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  reg.counter("present", {{"nf", "NF1"}}).inc(7);
  EXPECT_EQ(reg.find_counter("present"), nullptr);  // unlabeled != labeled
  const Counter* c = reg.find_counter("present", {{"nf", "NF1"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 7u);
  EXPECT_EQ(reg.size(), 1u);  // find never creates
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("sched.runnable");
  g.set(4.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  const Gauge* found = reg.find_gauge("sched.runnable");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value(), 2.5);
}

TEST(MetricsRegistry, NullSafeHelpers) {
  // Components increment through these with no registry attached; must be
  // a no-op, not a crash.
  inc(nullptr);
  inc(nullptr, 10);
  set(nullptr, 3.0);
  Counter c;
  inc(&c, 2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(MetricsRegistry, SampledCounterFnEvaluatedAtExport) {
  MetricsRegistry reg;
  std::uint64_t source = 0;
  reg.counter_fn("live.value", {}, [&source] { return source; });
  source = 41;
  EXPECT_EQ(reg.sample_counter("live.value"), 41u);
  source = 42;
  EXPECT_EQ(reg.sample_counter("live.value"), 42u);
  EXPECT_EQ(reg.sample_counter("no.such.probe"), 0u);
}

TEST(MetricsRegistry, HistogramPercentiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {}, /*max_value=*/1 << 20,
                               /*buckets_per_octave=*/16);
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<std::uint64_t>(i));
  // Log-bucketed: quantiles land within one bucket (~4.4%) of the exact
  // rank statistic.
  EXPECT_NEAR(static_cast<double>(h.value_at_quantile(0.5)), 500.0, 25.0);
  EXPECT_NEAR(static_cast<double>(h.value_at_quantile(0.99)), 990.0, 50.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(MetricsRegistry, ScopeAppendsLabels) {
  MetricsRegistry reg;
  Scope scope(&reg, {{"nf", "NF2"}});
  ASSERT_TRUE(scope.attached());
  Counter* c = scope.counter("bp.throttles");
  ASSERT_NE(c, nullptr);
  c->inc(5);
  EXPECT_EQ(reg.find_counter("bp.throttles", {{"nf", "NF2"}}), c);
}

TEST(MetricsRegistry, DetachedScopeReturnsNull) {
  Scope scope;
  EXPECT_FALSE(scope.attached());
  EXPECT_EQ(scope.counter("x"), nullptr);
  EXPECT_EQ(scope.gauge("y"), nullptr);
  EXPECT_EQ(scope.histogram("z"), nullptr);
  scope.counter_fn("f", [] { return 0ull; });  // no-op, no crash
}

TEST(MetricsRegistry, ObservabilityScopeConventions) {
  Observability obs;
  obs.nf_scope("NF1").counter("a");
  obs.core_scope("core0").counter("a");
  obs.chain_scope("0").counter("a");
  obs.global_scope().counter("a");
  EXPECT_EQ(obs.metrics().size(), 4u);
  EXPECT_NE(obs.metrics().find_counter("a", {{"nf", "NF1"}}), nullptr);
  EXPECT_NE(obs.metrics().find_counter("a", {{"core", "core0"}}), nullptr);
  EXPECT_NE(obs.metrics().find_counter("a", {{"chain", "0"}}), nullptr);
  EXPECT_NE(obs.metrics().find_counter("a"), nullptr);
  EXPECT_EQ(trace_of(nullptr), nullptr);
  EXPECT_EQ(trace_of(&obs), nullptr);  // none attached yet
  TraceRecorder rec;
  obs.attach_trace(&rec);
  EXPECT_EQ(trace_of(&obs), &rec);
}

TEST(MetricsRegistry, WriteJsonIsSortedAndStable) {
  MetricsRegistry reg;
  // Register intentionally out of order.
  reg.counter("z.last").inc(1);
  reg.counter("a.first", {{"nf", "NF2"}}).inc(2);
  reg.counter("a.first", {{"nf", "NF1"}}).inc(3);
  reg.gauge("m.middle").set(1.5);

  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();

  // Sorted by (name, labels): a.first/NF1 < a.first/NF2 < m.middle < z.last.
  const auto p1 = json.find("NF1");
  const auto p2 = json.find("NF2");
  const auto p3 = json.find("m.middle");
  const auto p4 = json.find("z.last");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  ASSERT_NE(p4, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);

  // Byte-stable across exports.
  std::ostringstream again;
  reg.write_json(again);
  EXPECT_EQ(json, again.str());

  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
}

TEST(MetricsRegistry, HistogramJsonExportsQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("svc", {{"nf", "NF1"}});
  for (int i = 0; i < 100; ++i) h.record(250);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace nfv::obs
