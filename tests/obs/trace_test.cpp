// TraceRecorder: event recording, the max_events cap, and the Chrome
// trace_event JSON encoding.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nfv::obs {
namespace {

TEST(TraceRecorder, RecordsInstantAndCounterEvents) {
  TraceRecorder rec;
  rec.instant(100, 0, "sched", "wakeup", {{"task", "NF1"}});
  rec.counter(200, kManagerLane, "mgr", "cpu_shares", "NF1", 512);

  ASSERT_EQ(rec.events().size(), 2u);
  const TraceEvent& a = rec.events()[0];
  EXPECT_EQ(a.ts, 100);
  EXPECT_EQ(a.phase, 'i');
  EXPECT_EQ(a.lane, 0u);
  EXPECT_EQ(a.cat, "sched");
  EXPECT_EQ(a.name, "wakeup");
  ASSERT_EQ(a.args.size(), 1u);
  EXPECT_EQ(a.args[0].first, "task");
  EXPECT_EQ(a.args[0].second, "NF1");

  const TraceEvent& b = rec.events()[1];
  EXPECT_EQ(b.phase, 'C');
  EXPECT_EQ(b.lane, kManagerLane);
  ASSERT_EQ(b.num_args.size(), 1u);
  EXPECT_EQ(b.num_args[0].first, "NF1");
  EXPECT_EQ(b.num_args[0].second, 512);
}

TEST(TraceRecorder, CapCountsDroppedEvents) {
  TraceRecorder::Config cfg;
  cfg.max_events = 3;
  TraceRecorder rec(cfg);
  for (int i = 0; i < 10; ++i) rec.instant(i, 0, "c", "e");
  EXPECT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.dropped_events(), 7u);
  // What *is* stored is the deterministic prefix.
  EXPECT_EQ(rec.events()[2].ts, 2);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(TraceRecorder, ChromeJsonEncoding) {
  TraceRecorder::Config cfg;
  cfg.cpu_hz = 2.6e9;  // 2600 cycles per microsecond
  TraceRecorder rec(cfg);
  rec.set_lane_name(0, "core0");
  rec.set_lane_name(kBackpressureLane, "backpressure");
  rec.instant(2600, 0, "sched", "ctx_switch", {{"from", "NF1"}, {"to", "NF2"}},
              {{"cost_cycles", 3900}});
  rec.counter(5200, kBackpressureLane, "bp", "qlen", "NF1", 42);

  std::ostringstream out;
  rec.write_chrome_json(out);
  const std::string json = out.str();

  // Document shell.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);

  // Thread-name metadata precedes the first real event.
  const auto meta = json.find("thread_name");
  const auto first_event = json.find("ctx_switch");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(first_event, std::string::npos);
  EXPECT_LT(meta, first_event);
  EXPECT_NE(json.find("\"args\":{\"name\":\"core0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"backpressure\"}"),
            std::string::npos);

  // 2600 cycles at 2.6 GHz = 1 us.
  EXPECT_NE(json.find("\"ts\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(
      json.find("\"args\":{\"from\":\"NF1\",\"to\":\"NF2\",\"cost_cycles\":3900}"),
      std::string::npos);
  EXPECT_NE(json.find("\"tid\":901"), std::string::npos);

  // Byte-stable across exports.
  std::ostringstream again;
  rec.write_chrome_json(again);
  EXPECT_EQ(json, again.str());
}

TEST(TraceRecorder, JsonEscapesStrings) {
  TraceRecorder rec;
  rec.instant(0, 0, "cat", "quote\"back\\slash", {{"k", "line\nbreak"}});
  std::ostringstream out;
  rec.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

}  // namespace
}  // namespace nfv::obs
