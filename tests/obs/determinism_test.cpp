// Determinism regression suite.
//
// The whole platform is a deterministic discrete-event simulation: same
// topology + same seeds must reproduce the exact event sequence. These
// tests lock that down at the observability boundary — two same-seed runs
// must serialize byte-identical report_json() documents and byte-identical
// Chrome trace streams, and a different seed must diverge. Any
// nondeterminism smuggled into the engine, scheduler, manager, or the JSON
// serialization (hash ordering, locale formatting, uninitialized reads)
// breaks this suite.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/simulation.hpp"

namespace {

struct RunArtifacts {
  std::string report;
  std::string trace;
  std::uint64_t dispatched = 0;
};

RunArtifacts run_once(std::uint64_t seed, bool nfvnice_on = true,
                      double secs = 0.02) {
  nfvnice::PlatformConfig cfg;
  cfg.set_nfvnice(nfvnice_on);

  nfvnice::Simulation sim(cfg);
  const auto core = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("NF1", core, nfv::nf::CostModel::fixed(120));
  const auto nf2 = sim.add_nf("NF2", core, nfv::nf::CostModel::fixed(270));
  const auto nf3 = sim.add_nf("NF3", core, nfv::nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("c", {nf1, nf2, nf3});

  nfvnice::UdpOptions udp;
  udp.seed = seed;
  sim.add_udp_flow(chain, /*rate_pps=*/6e6, udp);

  nfv::obs::TraceRecorder trace;
  sim.attach_trace(trace);
  sim.run_for_seconds(secs);

  RunArtifacts out;
  out.report = sim.report_json();
  std::ostringstream trace_out;
  trace.write_chrome_json(trace_out);
  out.trace = trace_out.str();
  out.dispatched = sim.engine().dispatched_events();
  return out;
}

TEST(Determinism, SameSeedProducesByteIdenticalReportAndTrace) {
  const RunArtifacts a = run_once(/*seed=*/42);
  const RunArtifacts b = run_once(/*seed=*/42);
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.report, b.report);  // byte identity, not approximate equality
  EXPECT_EQ(a.trace, b.trace);
  // Sanity: the runs actually did something worth comparing.
  EXPECT_GT(a.dispatched, 1000u);
  EXPECT_NE(a.trace.find("ctx_switch"), std::string::npos);
  EXPECT_NE(a.report.find("\"nfs\""), std::string::npos);
}

TEST(Determinism, DifferentSeedDiverges) {
  const RunArtifacts a = run_once(/*seed=*/42);
  const RunArtifacts b = run_once(/*seed=*/43);
  // Different arrival jitter => different event interleavings => different
  // artifacts. (Equal counters could coincide; the full documents cannot.)
  EXPECT_NE(a.trace, b.trace);
  EXPECT_NE(a.report, b.report);
}

TEST(Determinism, DefaultModeIsAlsoDeterministic) {
  const RunArtifacts a = run_once(/*seed=*/7, /*nfvnice_on=*/false);
  const RunArtifacts b = run_once(/*seed=*/7, /*nfvnice_on=*/false);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(Determinism, ReportJsonIsStableAcrossRepeatedSerialization) {
  nfvnice::Simulation sim;
  const auto core = sim.add_core(nfvnice::SchedPolicy::kCfsBatch);
  const auto nf1 = sim.add_nf("NF1", core, nfv::nf::CostModel::fixed(200));
  const auto chain = sim.add_chain("c", {nf1});
  sim.add_udp_flow(chain, 1e6);
  sim.run_for_seconds(0.01);
  // Serializing twice without advancing time must be a pure function of
  // simulation state.
  EXPECT_EQ(sim.report_json(), sim.report_json());
}

}  // namespace
