#include "nf/nf_task.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/time.hpp"
#include "pktio/mempool.hpp"
#include "sched/cfs.hpp"
#include "sched/core.hpp"
#include "sched/rr.hpp"
#include "sim/engine.hpp"

namespace nfv::nf {
namespace {

// Harness wiring an NfTask to a core without the full NF Manager.
class NfTaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = sched::SchedParams::defaults(CpuClock{});
    sched::CoreConfig cfg;
    cfg.context_switch_cost = 0;
    core_ = std::make_unique<sched::Core>(
        engine_, std::make_unique<sched::CfsScheduler>(params, true), cfg,
        "test");
  }

  NfTask& make_nf(NfTask::Config config) {
    nfs_.push_back(std::make_unique<NfTask>(engine_, config));
    NfTask& nf = *nfs_.back();
    core_->add_task(&nf);
    nf.set_packet_release([this](pktio::Mbuf* m) { pool_.free(m); });
    return nf;
  }

  /// Fill `n` packets into the NF's RX ring.
  void feed(NfTask& nf, int n) {
    for (int i = 0; i < n; ++i) {
      pktio::Mbuf* m = pool_.alloc();
      ASSERT_NE(m, nullptr);
      m->enqueue_time = engine_.now();
      ASSERT_NE(nf.rx_ring().enqueue(m), pktio::EnqueueResult::kFull);
      nf.note_arrival();
    }
  }

  /// Drain and free everything in the NF's TX ring; returns count.
  std::size_t drain_tx(NfTask& nf) {
    std::size_t n = 0;
    while (pktio::Mbuf* m = nf.tx_ring().dequeue()) {
      pool_.free(m);
      ++n;
    }
    return n;
  }

  sim::Engine engine_;
  pktio::MbufPool pool_{4096};
  std::unique_ptr<sched::Core> core_;
  std::vector<std::unique_ptr<NfTask>> nfs_;
};

NfTask::Config basic_config(Cycles cost = 250) {
  NfTask::Config cfg;
  cfg.name = "nf";
  cfg.cost = CostModel::fixed(cost);
  return cfg;
}

TEST_F(NfTaskTest, ProcessesAllQueuedPacketsThenBlocks) {
  NfTask& nf = make_nf(basic_config(100));
  feed(nf, 10);
  core_->wake(&nf);
  engine_.run_until(100'000);
  EXPECT_EQ(nf.counters().processed, 10u);
  EXPECT_EQ(nf.counters().forwarded, 10u);
  EXPECT_EQ(nf.state(), sched::TaskState::kBlocked);
  EXPECT_EQ(nf.counters().empty_blocks, 1u);
  EXPECT_EQ(drain_tx(nf), 10u);
}

TEST_F(NfTaskTest, RuntimeEqualsPacketsTimesCost) {
  NfTask& nf = make_nf(basic_config(250));
  feed(nf, 20);
  core_->wake(&nf);
  engine_.run_until(1'000'000);
  EXPECT_EQ(nf.stats().runtime, 20 * 250);
}

TEST_F(NfTaskTest, HandlerDropDoesNotForward) {
  NfTask& nf = make_nf(basic_config(100));
  int seen = 0;
  nf.set_handler([&seen](pktio::Mbuf&) {
    ++seen;
    return seen % 2 == 0 ? NfAction::kForward : NfAction::kDrop;
  });
  feed(nf, 10);
  core_->wake(&nf);
  engine_.run_until(100'000);
  EXPECT_EQ(nf.counters().processed, 10u);
  EXPECT_EQ(nf.counters().handler_drops, 5u);
  EXPECT_EQ(nf.counters().forwarded, 5u);
  EXPECT_EQ(drain_tx(nf), 5u);
  EXPECT_EQ(pool_.in_use(), 0u);  // dropped packets returned to the pool
}

TEST_F(NfTaskTest, YieldFlagStopsAtBatchBoundary) {
  auto cfg = basic_config(100);
  cfg.batch_size = 32;
  NfTask& nf = make_nf(cfg);
  nf.set_yield_flag(true);
  feed(nf, 100);
  core_->wake(&nf);
  engine_.run_until(1'000'000);
  // The flag was set before dispatch: the NF must not process anything.
  EXPECT_EQ(nf.counters().processed, 0u);
  EXPECT_EQ(nf.state(), sched::TaskState::kBlocked);
  EXPECT_GE(nf.counters().batch_yields, 1u);
}

TEST_F(NfTaskTest, YieldFlagMidRunHonouredAtNextBatchBoundary) {
  auto cfg = basic_config(100);
  cfg.batch_size = 32;
  NfTask& nf = make_nf(cfg);
  feed(nf, 100);
  core_->wake(&nf);
  // Let exactly 10 packets finish (1000 cycles), then set the flag.
  engine_.run_until(1'050);
  nf.set_yield_flag(true);
  engine_.run_until(1'000'000);
  // Processing continues to the end of the 32-packet batch, then stops.
  EXPECT_EQ(nf.counters().processed, 32u);
  EXPECT_EQ(nf.state(), sched::TaskState::kBlocked);
}

TEST_F(NfTaskTest, ClearedFlagAllowsResumeOnWake) {
  auto cfg = basic_config(100);
  NfTask& nf = make_nf(cfg);
  nf.set_yield_flag(true);
  feed(nf, 8);
  core_->wake(&nf);
  engine_.run_until(10'000);
  EXPECT_EQ(nf.counters().processed, 0u);
  nf.set_yield_flag(false);
  core_->wake(&nf);
  engine_.run_until(100'000);
  EXPECT_EQ(nf.counters().processed, 8u);
}

TEST_F(NfTaskTest, HasRunnableWorkReflectsState) {
  NfTask& nf = make_nf(basic_config(100));
  EXPECT_FALSE(nf.has_runnable_work());
  feed(nf, 1);
  EXPECT_TRUE(nf.has_runnable_work());
  nf.set_yield_flag(true);
  EXPECT_FALSE(nf.has_runnable_work());
  nf.set_yield_flag(false);
  core_->wake(&nf);
  engine_.run_until(10'000);
  EXPECT_FALSE(nf.has_runnable_work());  // drained
}

TEST_F(NfTaskTest, LocalBackpressureOnTxFull) {
  auto cfg = basic_config(100);
  cfg.tx_capacity = 16;  // tiny TX ring, nobody draining it
  NfTask& nf = make_nf(cfg);
  feed(nf, 64);
  core_->wake(&nf);
  engine_.run_until(1'000'000);
  // Exactly 16 packets fit; the 17th blocks the NF (§4.1 local BP).
  EXPECT_EQ(nf.counters().processed, 16u);
  EXPECT_EQ(nf.counters().tx_full_blocks, 1u);
  EXPECT_EQ(nf.state(), sched::TaskState::kBlocked);
  // Draining TX and waking resumes processing.
  EXPECT_EQ(drain_tx(nf), 16u);
  core_->wake(&nf);
  engine_.run_until(2'000'000);
  EXPECT_EQ(nf.counters().processed, 32u);
}

TEST_F(NfTaskTest, TxNotifyFiresOnForward) {
  NfTask& nf = make_nf(basic_config(100));
  int notifications = 0;
  nf.set_tx_notify([&notifications](NfTask&) { ++notifications; });
  feed(nf, 5);
  core_->wake(&nf);
  engine_.run_until(10'000);
  EXPECT_EQ(notifications, 5);
}

TEST_F(NfTaskTest, PreemptionPreservesInFlightPacket) {
  // Run under RR with a quantum shorter than one packet: the packet must
  // complete across multiple dispatches with exact total runtime.
  auto params = sched::SchedParams::defaults(CpuClock{});
  params.rr_quantum = 1000;
  sched::CoreConfig ccfg;
  ccfg.context_switch_cost = 0;
  ccfg.tick_period = 1000;  // enforce the sub-millisecond quantum exactly
  sched::Core rr_core(engine_, std::make_unique<sched::RrScheduler>(params),
                      ccfg, "rr");
  auto cfg = basic_config(3500);  // 3.5 quanta per packet
  auto nf = std::make_unique<NfTask>(engine_, cfg);
  rr_core.add_task(nf.get());
  nf->set_packet_release([this](pktio::Mbuf* m) { pool_.free(m); });

  // A competing hog forces actual preemption at each quantum.
  class Hog : public sched::Task {
   public:
    Hog() : Task("hog") {}
    void on_dispatch(Cycles) override {}
    void on_preempt(Cycles) override {}
  } hog;
  rr_core.add_task(&hog);

  for (int i = 0; i < 2; ++i) {
    pktio::Mbuf* m = pool_.alloc();
    nf->rx_ring().enqueue(m);
    nf->note_arrival();
  }
  rr_core.wake(nf.get());
  rr_core.wake(&hog);
  engine_.run_until(CpuClock{}.from_millis(1));
  EXPECT_EQ(nf->counters().processed, 2u);
  EXPECT_EQ(nf->stats().runtime, 2 * 3500);
  EXPECT_GE(nf->stats().involuntary_switches, 4u);
  while (pktio::Mbuf* m = nf->tx_ring().dequeue()) pool_.free(m);
}

TEST_F(NfTaskTest, WakePreemptionSplitsBurstAndResumesExactly) {
  // A whole burst is scheduled as one completion event; a wakeup preemption
  // lands *inside* it (the horizon only covers tick-driven preemptions).
  // The split must finalize exactly the packets whose virtual completion
  // time has passed and carry the interrupted packet's residue forward.
  auto params = sched::SchedParams::defaults(CpuClock{});
  sched::CoreConfig ccfg;
  ccfg.context_switch_cost = 0;
  // CFS NORMAL: wakeup preemption enabled.
  sched::Core normal_core(
      engine_,
      std::make_unique<sched::CfsScheduler>(params, /*batch=*/false), ccfg,
      "normal");
  auto cfg = basic_config(200'000);
  cfg.burst_window = 4;
  auto nf = std::make_unique<NfTask>(engine_, cfg);
  normal_core.add_task(nf.get());
  nf->set_packet_release([this](pktio::Mbuf* m) { pool_.free(m); });
  for (int i = 0; i < 4; ++i) {
    pktio::Mbuf* m = pool_.alloc();
    m->enqueue_time = 0;
    nf->rx_ring().enqueue(m);
    nf->note_arrival();
  }

  // Sleeper with a large vruntime deficit wakes mid-burst: packets 1-2
  // (done at 200k, 400k) are complete, packet 3 (due 600k) is in flight.
  class Sleeper : public sched::Task {
   public:
    Sleeper(sim::Engine& engine) : Task("sleeper"), engine_(engine) {}
    void on_dispatch(Cycles) override {
      engine_.schedule_after(10'000, [this] {
        core()->yield_current(this, /*will_block=*/true);
      });
    }
    void on_preempt(Cycles) override {}

   private:
    sim::Engine& engine_;
  } sleeper(engine_);
  normal_core.add_task(&sleeper);

  normal_core.wake(nf.get());
  engine_.schedule_at(500'000, [&] { normal_core.wake(&sleeper); });
  engine_.run_until(450'000);
  // Mid-burst, pre-wake: the burst is one pending event, nothing finalized.
  EXPECT_EQ(nf->counters().processed, 0u);
  EXPECT_EQ(nf->in_flight_packets(), 4u);

  engine_.run_until(600'000);
  // The 500k wake preempted the burst: exactly the packets whose virtual
  // completion passed (200k, 400k) are finalized; 600k/800k are in flight.
  EXPECT_EQ(nf->counters().processed, 2u);
  EXPECT_EQ(nf->in_flight_packets(), 2u);

  engine_.run_until(CpuClock{}.from_millis(2));
  EXPECT_EQ(nf->counters().processed, 4u);
  EXPECT_EQ(nf->counters().forwarded, 4u);
  EXPECT_EQ(nf->in_flight_packets(), 0u);
  // Total runtime is exact despite the split: 4 x 200k, no double-charge
  // for the interrupted packet's already-burned 100k.
  EXPECT_EQ(nf->stats().runtime, 4 * 200'000);
  EXPECT_EQ(nf->stats().involuntary_switches, 1u);
  while (pktio::Mbuf* m = nf->tx_ring().dequeue()) pool_.free(m);
}

TEST_F(NfTaskTest, ServiceTimeEstimateTracksCost) {
  auto cfg = basic_config(550);
  cfg.sample_interval = 100;  // sample aggressively for the test
  cfg.warmup_samples = 2;
  NfTask& nf = make_nf(cfg);
  feed(nf, 200);
  core_->wake(&nf);
  engine_.run_until(1'000'000);
  EXPECT_EQ(nf.estimated_service_time(engine_.now()), 550);
  EXPECT_GT(nf.cost_histogram().count(), 0u);
}

TEST_F(NfTaskTest, WarmupSamplesDiscarded) {
  auto cfg = basic_config(100);
  cfg.sample_interval = 1;  // would sample every packet
  cfg.warmup_samples = 10;
  NfTask& nf = make_nf(cfg);
  feed(nf, 10);
  core_->wake(&nf);
  engine_.run_until(100'000);
  // All 10 samples were warm-up discards.
  EXPECT_EQ(nf.cost_histogram().count(), 0u);
  EXPECT_EQ(nf.estimated_service_time(engine_.now()), 0);
}

TEST_F(NfTaskTest, VariableCostEstimateUsesMedian) {
  auto cfg = basic_config();
  cfg.cost = CostModel::uniform_choice({120, 270, 550});
  cfg.sample_interval = 1;
  cfg.warmup_samples = 0;
  NfTask& nf = make_nf(cfg);
  feed(nf, 600);
  core_->wake(&nf);
  engine_.run_until(10'000'000);
  const Cycles est = nf.estimated_service_time(engine_.now());
  // Median of a balanced {120,270,550} mix is 270.
  EXPECT_EQ(est, 270);
}

TEST_F(NfTaskTest, ArrivalCounterTracksFeeds) {
  NfTask& nf = make_nf(basic_config());
  feed(nf, 7);
  EXPECT_EQ(nf.counters().arrivals, 7u);
}

TEST_F(NfTaskTest, OverloadFlagIsSticky) {
  NfTask& nf = make_nf(basic_config());
  EXPECT_FALSE(nf.overload_flag());
  nf.set_overload_flag(true);
  EXPECT_TRUE(nf.overload_flag());
  nf.set_overload_flag(false);
  EXPECT_FALSE(nf.overload_flag());
}

}  // namespace
}  // namespace nfv::nf
