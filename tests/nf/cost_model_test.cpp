#include "nf/cost_model.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nfv::nf {
namespace {

pktio::Mbuf mbuf_with_class(std::uint8_t cls) {
  pktio::Mbuf m;
  m.cost_class = cls;
  return m;
}

TEST(CostModel, FixedAlwaysSame) {
  CostModel model = CostModel::fixed(550);
  pktio::Mbuf m;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(m), 550);
  EXPECT_EQ(model.nominal(), 550);
}

TEST(CostModel, UniformChoiceCoversAllValues) {
  CostModel model = CostModel::uniform_choice({120, 270, 550});
  pktio::Mbuf m;
  std::set<Cycles> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(model.sample(m));
  EXPECT_EQ(seen, (std::set<Cycles>{120, 270, 550}));
}

TEST(CostModel, UniformChoiceRoughlyBalanced) {
  CostModel model = CostModel::uniform_choice({100, 200});
  pktio::Mbuf m;
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(m) == 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.03);
}

TEST(CostModel, UniformChoiceDeterministicUnderSeed) {
  CostModel a = CostModel::uniform_choice({1, 2, 3}, 99);
  CostModel b = CostModel::uniform_choice({1, 2, 3}, 99);
  pktio::Mbuf m;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.sample(m), b.sample(m));
}

TEST(CostModel, PerClassUsesPacketField) {
  CostModel model = CostModel::per_class({120, 270, 550});
  auto m0 = mbuf_with_class(0);
  auto m1 = mbuf_with_class(1);
  auto m2 = mbuf_with_class(2);
  EXPECT_EQ(model.sample(m0), 120);
  EXPECT_EQ(model.sample(m1), 270);
  EXPECT_EQ(model.sample(m2), 550);
}

TEST(CostModel, PerClassClampsOutOfRange) {
  CostModel model = CostModel::per_class({100, 200});
  auto m = mbuf_with_class(9);
  EXPECT_EQ(model.sample(m), 200);
}

TEST(CostModel, ScaleMultipliesCost) {
  // Fig. 15a: NF1's computation cost triples mid-experiment.
  CostModel model = CostModel::fixed(300);
  pktio::Mbuf m;
  model.set_scale(3.0);
  EXPECT_EQ(model.sample(m), 900);
  model.set_scale(1.0);
  EXPECT_EQ(model.sample(m), 300);
}

TEST(CostModel, ScaleNeverProducesZero) {
  CostModel model = CostModel::fixed(10);
  pktio::Mbuf m;
  model.set_scale(0.0);
  EXPECT_EQ(model.sample(m), 1);  // floor at one cycle
}

TEST(CostModel, NominalIsMeanOfChoices) {
  CostModel model = CostModel::uniform_choice({100, 200, 300});
  EXPECT_EQ(model.nominal(), 200);
}

}  // namespace
}  // namespace nfv::nf
