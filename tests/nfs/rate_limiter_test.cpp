#include "nfs/rate_limiter.hpp"

#include <gtest/gtest.h>

namespace nfv::nfs {
namespace {

TEST(RateLimiter, BurstAdmittedThenPoliced) {
  sim::Engine engine;
  RateLimiter::Config cfg;
  cfg.rate_pps = 1000.0;
  cfg.burst_packets = 10.0;
  RateLimiter limiter(engine, CpuClock{}, cfg);
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (limiter.admit()) ++admitted;  // all at t=0
  }
  EXPECT_EQ(admitted, 10);
  EXPECT_EQ(limiter.policed(), 10u);
}

TEST(RateLimiter, RefillsOverTime) {
  sim::Engine engine;
  RateLimiter::Config cfg;
  cfg.rate_pps = 1000.0;  // one token per ms
  cfg.burst_packets = 1.0;
  RateLimiter limiter(engine, CpuClock{}, cfg);
  EXPECT_TRUE(limiter.admit());
  EXPECT_FALSE(limiter.admit());
  engine.run_until(CpuClock{}.from_millis(1.1));
  EXPECT_TRUE(limiter.admit());
}

TEST(RateLimiter, BucketNeverExceedsBurst) {
  sim::Engine engine;
  RateLimiter::Config cfg;
  cfg.rate_pps = 1e6;
  cfg.burst_packets = 5.0;
  RateLimiter limiter(engine, CpuClock{}, cfg);
  engine.run_until(CpuClock{}.from_millis(100));  // long idle
  EXPECT_DOUBLE_EQ(limiter.tokens(), 5.0);
}

TEST(RateLimiter, SustainedRateConverges) {
  sim::Engine engine;
  RateLimiter::Config cfg;
  cfg.rate_pps = 1e5;
  cfg.burst_packets = 8.0;
  RateLimiter limiter(engine, CpuClock{}, cfg);
  // Offer 2x the rate for 100 ms: ~1e4 should conform.
  const Cycles step = CpuClock{}.from_seconds(1.0 / 2e5);
  for (int i = 0; i < 20000; ++i) {
    engine.run_until(engine.now() + step);
    limiter.admit();
  }
  EXPECT_NEAR(static_cast<double>(limiter.conformed()), 1e4, 200.0);
}

}  // namespace
}  // namespace nfv::nfs
