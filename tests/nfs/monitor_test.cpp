#include "nfs/monitor.hpp"

#include <gtest/gtest.h>

namespace nfv::nfs {
namespace {

pktio::Mbuf pkt(std::uint32_t src, std::uint16_t bytes) {
  pktio::Mbuf m;
  m.key = pktio::FlowKey{src, 2, 3, 4, pktio::kProtoUdp};
  m.size_bytes = bytes;
  return m;
}

TEST(FlowMonitor, CountsPerFlow) {
  FlowMonitor mon;
  for (int i = 0; i < 5; ++i) mon.observe(pkt(1, 100));
  for (int i = 0; i < 3; ++i) mon.observe(pkt(2, 200));
  EXPECT_EQ(mon.flow_count(), 2u);
  EXPECT_EQ(mon.total_packets(), 8u);
  EXPECT_EQ(mon.stats_for(pkt(1, 0).key).packets, 5u);
  EXPECT_EQ(mon.stats_for(pkt(1, 0).key).bytes, 500u);
  EXPECT_EQ(mon.stats_for(pkt(2, 0).key).bytes, 600u);
}

TEST(FlowMonitor, UnknownFlowIsZero) {
  FlowMonitor mon;
  EXPECT_EQ(mon.stats_for(pkt(9, 0).key).packets, 0u);
}

TEST(FlowMonitor, TopTalkersOrderedByBytes) {
  FlowMonitor mon;
  mon.observe(pkt(1, 100));
  for (int i = 0; i < 10; ++i) mon.observe(pkt(2, 1500));
  for (int i = 0; i < 5; ++i) mon.observe(pkt(3, 1500));
  const auto top = mon.top_talkers(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first.src_ip, 2u);
  EXPECT_EQ(top[1].first.src_ip, 3u);
}

TEST(FlowMonitor, TopTalkersClampedToFlowCount) {
  FlowMonitor mon;
  mon.observe(pkt(1, 100));
  EXPECT_EQ(mon.top_talkers(10).size(), 1u);
  EXPECT_TRUE(FlowMonitor().top_talkers(3).empty());
}

}  // namespace
}  // namespace nfv::nfs
