// End-to-end: a chain of *real* NF implementations on the platform.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "nfs/dpi.hpp"
#include "nfs/firewall.hpp"
#include "nfs/load_balancer.hpp"
#include "nfs/monitor.hpp"
#include "nfs/nat.hpp"
#include "nfs/rate_limiter.hpp"

namespace nfv::nfs {
namespace {

TEST(NfZoo, FirewallNatLbChainEndToEnd) {
  core::Simulation sim;
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto fw_nf = sim.add_nf("fw", core_id, nf::CostModel::fixed(200));
  const auto nat_nf = sim.add_nf("nat", core_id, nf::CostModel::fixed(270));
  const auto lb_nf = sim.add_nf("lb", core_id, nf::CostModel::fixed(150));
  const auto chain = sim.add_chain("edge", {fw_nf, nat_nf, lb_nf});

  Firewall firewall(Verdict::kAllow);
  FirewallRule block_udp;
  block_udp.proto = pktio::kProtoUdp;
  block_udp.src_port = 10000;  // the generator's fixed source port
  block_udp.verdict = Verdict::kDeny;
  // Block one specific source host only.
  block_udp.src_ip = 0x0a000001;
  block_udp.src_mask = 0xffffffff;
  firewall.add_rule(block_udp);
  firewall.install(sim.nf(fw_nf));

  Nat nat;
  nat.install(sim.nf(nat_nf));

  LoadBalancer lb({0xc0000001, 0xc0000002});
  lb.install(sim.nf(lb_nf));

  // Flow 1 (src 10.0.0.1, blocked) and flow 2 (src 10.0.0.2, allowed).
  const auto f1 = sim.add_udp_flow(chain, 200'000);
  const auto f2 = sim.add_udp_flow(chain, 200'000);
  sim.run_for_seconds(0.1);

  // Flow 1 died at the firewall; flow 2 made it through NAT + LB.
  EXPECT_EQ(sim.manager().flow_counters(f1).egress_packets, 0u);
  EXPECT_GT(sim.manager().flow_counters(f2).egress_packets, 15'000u);
  EXPECT_GT(firewall.denied(), 15'000u);
  EXPECT_GT(nat.translated(), 15'000u);
  EXPECT_EQ(nat.active_bindings(), 1u);  // one surviving connection
  // All surviving packets went to exactly one backend (flow-hash). Packets
  // NAT already translated but the LB has not yet run — in NAT's TX ring,
  // the LB's RX ring, or the LB's in-flight burst — close the books.
  const auto& backends = lb.backends();
  const std::uint64_t in_transit = sim.nf(nat_nf).tx_ring().size() +
                                   sim.nf(lb_nf).rx_ring().size() +
                                   sim.nf(lb_nf).in_flight_packets();
  EXPECT_EQ(backends[0].packets + backends[1].packets + in_transit,
            nat.translated());
  EXPECT_TRUE(backends[0].packets == 0 || backends[1].packets == 0);
}

TEST(NfZoo, MonitorSeesExactlyAdmittedTraffic) {
  core::Simulation sim;
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto mon_nf = sim.add_nf("mon", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("tap", {mon_nf});
  FlowMonitor monitor;
  monitor.install(sim.nf(mon_nf));
  sim.add_udp_flow(chain, 100'000, {.stop_seconds = 0.05});
  sim.add_udp_flow(chain, 100'000, {.stop_seconds = 0.05});
  sim.run_for_seconds(0.1);
  EXPECT_EQ(monitor.flow_count(), 2u);
  EXPECT_EQ(monitor.total_packets(), sim.nf_metrics(mon_nf).processed);
  const auto top = monitor.top_talkers(2);
  ASSERT_EQ(top.size(), 2u);
}

TEST(NfZoo, RateLimiterShapesChainThroughput) {
  core::Simulation sim;
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto rl_nf = sim.add_nf("police", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("policed", {rl_nf});
  RateLimiter::Config cfg;
  cfg.rate_pps = 250'000;
  RateLimiter limiter(sim.engine(), sim.clock(), cfg);
  limiter.install(sim.nf(rl_nf));
  sim.add_udp_flow(chain, 1'000'000);  // 4x over the policed rate
  sim.run_for_seconds(0.2);
  const double egress_pps =
      static_cast<double>(sim.chain_metrics(chain).egress_packets) / 0.2;
  EXPECT_NEAR(egress_pps, 250'000.0, 12'000.0);
  EXPECT_GT(limiter.policed(), 100'000u);
}

TEST(NfZoo, DpiDropsPlantedTraffic) {
  core::Simulation sim;
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto dpi_nf = sim.add_nf("ids", core_id, nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("inspected", {dpi_nf});
  const auto flow_id = sim.add_udp_flow(chain, 100'000);

  // Plant signatures for the flow's repeating content pattern: every
  // packet whose seq % 97 lands on a signature is dropped.
  Dpi dpi(Dpi::OnMatch::kDrop);
  (void)flow_id;
  // Reconstruct the generator's key: the first flow gets src_ip 10.0.0.1
  // (Simulation::next_flow_key allocates sequentially from 10.0.0.1).
  pktio::Mbuf probe;
  probe.key = pktio::FlowKey{0x0a000001, 0x0a800001, 10000, 80,
                             pktio::kProtoUdp};
  probe.seq = 10;
  dpi.add_signature("sig10", Dpi::payload_digest(probe));
  dpi.install(sim.nf(dpi_nf));

  sim.run_for_seconds(0.1);
  // 1 in 97 packets matches (the content pattern repeats), so drops are
  // ~1% of traffic.
  const auto& counters = sim.nf(dpi_nf).counters();
  EXPECT_GT(dpi.alerts(), 50u);
  EXPECT_EQ(counters.handler_drops, dpi.alerts());
  EXPECT_GT(counters.forwarded, counters.handler_drops * 50);
}

}  // namespace
}  // namespace nfv::nfs
