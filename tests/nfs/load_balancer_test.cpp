#include "nfs/load_balancer.hpp"

#include <gtest/gtest.h>

namespace nfv::nfs {
namespace {

pktio::Mbuf pkt(std::uint32_t src, std::uint16_t sport) {
  pktio::Mbuf m;
  m.key = pktio::FlowKey{src, 0x0affffff, sport, 443, pktio::kProtoTcp};
  return m;
}

TEST(LoadBalancer, FlowHashIsStablePerConnection) {
  LoadBalancer lb({1, 2, 3}, LoadBalancer::Policy::kFlowHash);
  auto first = pkt(7, 700);
  const std::uint32_t backend = lb.steer(first);
  for (int i = 0; i < 50; ++i) {
    auto again = pkt(7, 700);
    EXPECT_EQ(lb.steer(again), backend);
    EXPECT_EQ(again.key.dst_ip, backend);
  }
}

TEST(LoadBalancer, FlowHashSpreadsConnections) {
  LoadBalancer lb({10, 20, 30, 40}, LoadBalancer::Policy::kFlowHash);
  for (std::uint16_t p = 0; p < 4000; ++p) {
    auto m = pkt(p % 97, p);
    lb.steer(m);
  }
  for (const auto& backend : lb.backends()) {
    // Roughly uniform: each of 4 backends within [15%, 35%] of 4000.
    EXPECT_GT(backend.packets, 600u);
    EXPECT_LT(backend.packets, 1400u);
  }
}

TEST(LoadBalancer, RoundRobinAlternatesExactly) {
  LoadBalancer lb({1, 2}, LoadBalancer::Policy::kRoundRobin);
  auto a = pkt(1, 1), b = pkt(1, 1), c = pkt(1, 1);
  EXPECT_EQ(lb.steer(a), 1u);
  EXPECT_EQ(lb.steer(b), 2u);
  EXPECT_EQ(lb.steer(c), 1u);
}

TEST(LoadBalancer, SingleBackendGetsEverything) {
  LoadBalancer lb({42});
  for (int i = 0; i < 10; ++i) {
    auto m = pkt(i, i);
    EXPECT_EQ(lb.steer(m), 42u);
  }
  EXPECT_EQ(lb.backends()[0].packets, 10u);
}

}  // namespace
}  // namespace nfv::nfs
