#include "nfs/firewall.hpp"

#include <gtest/gtest.h>

namespace nfv::nfs {
namespace {

pktio::FlowKey key(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                   std::uint16_t dport, std::uint8_t proto = 17) {
  return pktio::FlowKey{src, dst, sport, dport, proto};
}

TEST(Firewall, DefaultPolicyApplies) {
  Firewall allow_all(Verdict::kAllow);
  EXPECT_EQ(allow_all.evaluate(key(1, 2, 3, 4)), Verdict::kAllow);
  Firewall deny_all(Verdict::kDeny);
  EXPECT_EQ(deny_all.evaluate(key(1, 2, 3, 4)), Verdict::kDeny);
  EXPECT_EQ(deny_all.default_hits(), 1u);
}

TEST(Firewall, ExactMatchRule) {
  Firewall fw(Verdict::kAllow);
  FirewallRule rule;
  rule.name = "block-host";
  rule.src_ip = 0x0a000001;
  rule.src_mask = 0xffffffff;
  rule.verdict = Verdict::kDeny;
  fw.add_rule(rule);
  EXPECT_EQ(fw.evaluate(key(0x0a000001, 9, 9, 9)), Verdict::kDeny);
  EXPECT_EQ(fw.evaluate(key(0x0a000002, 9, 9, 9)), Verdict::kAllow);
  EXPECT_EQ(fw.rules()[0].hits, 1u);
}

TEST(Firewall, SubnetMaskMatch) {
  Firewall fw(Verdict::kAllow);
  FirewallRule rule;
  rule.dst_ip = 0x0a640000;  // 10.100.0.0/16
  rule.dst_mask = 0xffff0000;
  rule.verdict = Verdict::kDeny;
  fw.add_rule(rule);
  EXPECT_EQ(fw.evaluate(key(1, 0x0a641234, 1, 1)), Verdict::kDeny);
  EXPECT_EQ(fw.evaluate(key(1, 0x0a651234, 1, 1)), Verdict::kAllow);
}

TEST(Firewall, PortAndProtoMatch) {
  Firewall fw(Verdict::kDeny);
  FirewallRule rule;
  rule.dst_port = 80;
  rule.proto = pktio::kProtoTcp;
  rule.verdict = Verdict::kAllow;
  fw.add_rule(rule);
  EXPECT_EQ(fw.evaluate(key(1, 2, 3, 80, pktio::kProtoTcp)), Verdict::kAllow);
  EXPECT_EQ(fw.evaluate(key(1, 2, 3, 80, pktio::kProtoUdp)), Verdict::kDeny);
  EXPECT_EQ(fw.evaluate(key(1, 2, 3, 81, pktio::kProtoTcp)), Verdict::kDeny);
}

TEST(Firewall, FirstMatchWins) {
  Firewall fw(Verdict::kDeny);
  FirewallRule allow;
  allow.src_port = 53;
  allow.verdict = Verdict::kAllow;
  fw.add_rule(allow);
  FirewallRule deny;
  deny.src_port = 53;
  deny.verdict = Verdict::kDeny;
  fw.add_rule(deny);
  EXPECT_EQ(fw.evaluate(key(1, 2, 53, 4)), Verdict::kAllow);
  EXPECT_EQ(fw.rules()[0].hits, 1u);
  EXPECT_EQ(fw.rules()[1].hits, 0u);
}

TEST(Firewall, CountsVerdictsWhenInstalled) {
  Firewall fw(Verdict::kAllow);
  FirewallRule rule;
  rule.proto = pktio::kProtoUdp;
  rule.verdict = Verdict::kDeny;
  fw.add_rule(rule);

  pktio::Mbuf udp_pkt;
  udp_pkt.key = key(1, 2, 3, 4, pktio::kProtoUdp);
  pktio::Mbuf tcp_pkt;
  tcp_pkt.key = key(1, 2, 3, 4, pktio::kProtoTcp);

  // Exercise the installed handler without a full platform.
  sim::Engine engine;
  nf::NfTask task(engine, nf::NfTask::Config{});
  fw.install(task);
  // The handler is private to the task; drive evaluate() equivalently.
  EXPECT_EQ(fw.evaluate(udp_pkt.key), Verdict::kDeny);
  EXPECT_EQ(fw.evaluate(tcp_pkt.key), Verdict::kAllow);
}

}  // namespace
}  // namespace nfv::nfs
