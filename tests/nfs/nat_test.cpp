#include "nfs/nat.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nfv::nfs {
namespace {

pktio::Mbuf pkt_from(std::uint32_t src_ip, std::uint16_t src_port) {
  pktio::Mbuf m;
  m.key = pktio::FlowKey{src_ip, 0x08080808, src_port, 80, pktio::kProtoTcp};
  return m;
}

TEST(Nat, RewritesSourceToPublicIp) {
  Nat nat;
  auto pkt = pkt_from(0x0a000001, 1234);
  nat.translate(pkt);
  EXPECT_EQ(pkt.key.src_ip, 0xc0a80001);
  EXPECT_GE(pkt.key.src_port, 20000);
  EXPECT_EQ(pkt.key.dst_ip, 0x08080808u);  // destination untouched
}

TEST(Nat, StableBindingPerConnection) {
  Nat nat;
  auto first = pkt_from(0x0a000001, 1234);
  nat.translate(first);
  const std::uint16_t port = first.key.src_port;
  for (int i = 0; i < 100; ++i) {
    auto pkt = pkt_from(0x0a000001, 1234);
    nat.translate(pkt);
    EXPECT_EQ(pkt.key.src_port, port);
  }
  EXPECT_EQ(nat.allocations(), 1u);
  EXPECT_EQ(nat.translated(), 101u);
}

TEST(Nat, DistinctConnectionsGetDistinctPorts) {
  Nat nat;
  std::set<std::uint16_t> ports;
  for (std::uint16_t p = 1; p <= 100; ++p) {
    auto pkt = pkt_from(0x0a000001, p);
    nat.translate(pkt);
    ports.insert(pkt.key.src_port);
  }
  EXPECT_EQ(ports.size(), 100u);
  EXPECT_EQ(nat.active_bindings(), 100u);
}

TEST(Nat, SameSourcePortDifferentHostsAreDistinct) {
  Nat nat;
  auto a = pkt_from(0x0a000001, 5555);
  auto b = pkt_from(0x0a000002, 5555);
  nat.translate(a);
  nat.translate(b);
  EXPECT_NE(a.key.src_port, b.key.src_port);
}

TEST(Nat, PortExhaustionEvictsOldest) {
  Nat::Config cfg;
  cfg.port_count = 4;
  Nat nat(cfg);
  for (std::uint16_t p = 1; p <= 4; ++p) {
    auto pkt = pkt_from(0x0a000001, p);
    nat.translate(pkt);
  }
  EXPECT_EQ(nat.binding(0x0a000001, 1, pktio::kProtoTcp), 20000);
  // Fifth connection evicts the first binding and reuses its port.
  auto fifth = pkt_from(0x0a000001, 5);
  nat.translate(fifth);
  EXPECT_EQ(fifth.key.src_port, 20000);
  EXPECT_EQ(nat.evictions(), 1u);
  EXPECT_EQ(nat.binding(0x0a000001, 1, pktio::kProtoTcp), 0);
  EXPECT_EQ(nat.active_bindings(), 4u);
}

TEST(Nat, LookupMissReturnsZero) {
  Nat nat;
  EXPECT_EQ(nat.binding(1, 2, 3), 0);
}

}  // namespace
}  // namespace nfv::nfs
