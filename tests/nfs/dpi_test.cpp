#include "nfs/dpi.hpp"

#include <gtest/gtest.h>

namespace nfv::nfs {
namespace {

pktio::Mbuf pkt(std::uint32_t src, std::uint64_t seq) {
  pktio::Mbuf m;
  m.key = pktio::FlowKey{src, 2, 3, 4, pktio::kProtoTcp};
  m.seq = seq;
  return m;
}

TEST(Dpi, NoSignaturesNeverAlerts) {
  Dpi dpi;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(dpi.scan(pkt(1, i)));
  }
  EXPECT_EQ(dpi.scanned(), 100u);
  EXPECT_EQ(dpi.alerts(), 0u);
}

TEST(Dpi, PlantedSignatureIsDetected) {
  Dpi dpi;
  const auto evil = pkt(666, 13);
  dpi.add_signature("evil", Dpi::payload_digest(evil));
  EXPECT_FALSE(dpi.scan(pkt(1, 13)));  // different flow, different digest
  EXPECT_TRUE(dpi.scan(evil));
  EXPECT_EQ(dpi.alerts(), 1u);
  EXPECT_EQ(dpi.signatures()[0].hits, 1u);
}

TEST(Dpi, DigestRepeatsWithContentPattern) {
  // The synthetic payload pattern repeats every 97 sequence numbers, so a
  // signature planted at seq=5 also fires at seq=102 of the same flow.
  Dpi dpi;
  dpi.add_signature("periodic", Dpi::payload_digest(pkt(7, 5)));
  EXPECT_TRUE(dpi.scan(pkt(7, 5)));
  EXPECT_TRUE(dpi.scan(pkt(7, 5 + 97)));
  EXPECT_FALSE(dpi.scan(pkt(7, 6)));
}

TEST(Dpi, MultipleSignatures) {
  Dpi dpi;
  dpi.add_signature("a", Dpi::payload_digest(pkt(1, 1)));
  dpi.add_signature("b", Dpi::payload_digest(pkt(2, 2)));
  EXPECT_TRUE(dpi.scan(pkt(1, 1)));
  EXPECT_TRUE(dpi.scan(pkt(2, 2)));
  EXPECT_EQ(dpi.alerts(), 2u);
}

}  // namespace
}  // namespace nfv::nfs
