#include "nfs/bridge.hpp"

#include <gtest/gtest.h>

namespace nfv::nfs {
namespace {

TEST(Bridge, UnknownDestinationFloods) {
  Bridge bridge;
  EXPECT_EQ(bridge.forward(/*src=*/1, /*dst=*/2, /*port=*/0), -1);
  EXPECT_EQ(bridge.floods(), 1u);
}

TEST(Bridge, LearnsSourcePort) {
  Bridge bridge;
  bridge.forward(1, 99, 3);          // learns 1 -> port 3
  EXPECT_EQ(bridge.forward(2, 1, 0), 3);
  EXPECT_EQ(bridge.forwards(), 1u);
  EXPECT_EQ(bridge.table_size(), 2u);  // learned both 1 and 2
}

TEST(Bridge, RelearnsWhenHostMoves) {
  Bridge bridge;
  bridge.forward(1, 99, 3);
  bridge.forward(1, 99, 7);  // host 1 moved to port 7
  EXPECT_EQ(bridge.forward(2, 1, 0), 7);
}

TEST(Bridge, BidirectionalConversation) {
  Bridge bridge;
  EXPECT_EQ(bridge.forward(1, 2, 0), -1);  // flood, learn 1@0
  EXPECT_EQ(bridge.forward(2, 1, 5), 0);   // reply: knows 1, learns 2@5
  EXPECT_EQ(bridge.forward(1, 2, 0), 5);   // now both known
}

}  // namespace
}  // namespace nfv::nfs
