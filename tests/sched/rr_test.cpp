#include "sched/rr.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"
#include "test_tasks.hpp"

namespace nfv::sched {
namespace {

using testing::InertTask;

SchedParams params_with_quantum(double ms) {
  auto p = SchedParams::defaults(CpuClock{});
  p.rr_quantum = CpuClock{}.from_millis(ms);
  return p;
}

TEST(Rr, FifoOrder) {
  RrScheduler rr(params_with_quantum(100));
  InertTask a("a"), b("b"), c("c");
  rr.enqueue(&a, false);
  rr.enqueue(&b, false);
  rr.enqueue(&c, false);
  EXPECT_EQ(rr.pick_next(), &a);
  EXPECT_EQ(rr.pick_next(), &b);
  EXPECT_EQ(rr.pick_next(), &c);
  EXPECT_EQ(rr.pick_next(), nullptr);
}

TEST(Rr, RequeueGoesToTail) {
  RrScheduler rr(params_with_quantum(100));
  InertTask a("a"), b("b");
  rr.enqueue(&a, false);
  rr.enqueue(&b, false);
  Task* first = rr.pick_next();
  rr.enqueue(first, false);  // quantum expired: back to the tail
  EXPECT_EQ(rr.pick_next(), &b);
  EXPECT_EQ(rr.pick_next(), &a);
}

TEST(Rr, QuantumIsFixedRegardlessOfContention) {
  const auto p = params_with_quantum(100);
  RrScheduler rr(p);
  InertTask a("a"), b("b", 99999);  // weight is ignored by RR
  rr.enqueue(&a, false);
  EXPECT_EQ(rr.timeslice(&a), p.rr_quantum);
  EXPECT_EQ(rr.timeslice(&b), p.rr_quantum);
}

TEST(Rr, OneMsAndHundredMsQuanta) {
  // The paper evaluates both RR(1ms) and RR(100ms).
  EXPECT_EQ(RrScheduler(params_with_quantum(1)).timeslice(nullptr),
            CpuClock{}.from_millis(1));
  EXPECT_EQ(RrScheduler(params_with_quantum(100)).timeslice(nullptr),
            CpuClock{}.from_millis(100));
}

TEST(Rr, NeverPreemptsOnWake) {
  RrScheduler rr(params_with_quantum(1));
  InertTask current("cur"), woken("wok");
  EXPECT_FALSE(rr.should_preempt_on_wake(&woken, &current, 0));
  EXPECT_FALSE(rr.should_preempt_on_wake(&woken, &current, 1'000'000'000));
}

TEST(Rr, RunEndDoesNotTouchVruntime) {
  RrScheduler rr(params_with_quantum(1));
  InertTask a("a");
  a.set_vruntime(7.0);
  rr.on_run_end(&a, 123456);
  EXPECT_DOUBLE_EQ(a.vruntime(), 7.0);
}

TEST(Rr, RemoveerasesAllOccurrences) {
  RrScheduler rr(params_with_quantum(1));
  InertTask a("a"), b("b");
  rr.enqueue(&a, false);
  rr.enqueue(&b, false);
  rr.remove(&a);
  EXPECT_EQ(rr.runnable_count(), 1u);
  EXPECT_EQ(rr.pick_next(), &b);
  EXPECT_EQ(rr.pick_next(), nullptr);
}

TEST(Rr, Name) {
  RrScheduler rr(params_with_quantum(1));
  EXPECT_STREQ(rr.name(), "SCHED_RR");
}

}  // namespace
}  // namespace nfv::sched
