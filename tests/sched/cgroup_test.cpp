#include "sched/cgroup.hpp"

#include <gtest/gtest.h>

#include "test_tasks.hpp"

namespace nfv::sched {
namespace {

using testing::InertTask;

TEST(CGroup, WriteSetsWeight) {
  CGroupController cg;
  InertTask t("t", 1024);
  const Cycles cost = cg.set_shares(t, 2048);
  EXPECT_EQ(t.weight(), 2048u);
  EXPECT_EQ(cost, 13000);
  EXPECT_EQ(cg.writes(), 1u);
}

TEST(CGroup, UnchangedValueSkipsSysfsWrite) {
  CGroupController cg;
  InertTask t("t", 1024);
  EXPECT_EQ(cg.set_shares(t, 1024), 0);
  EXPECT_EQ(cg.writes(), 0u);
  EXPECT_EQ(cg.skipped_writes(), 1u);
}

TEST(CGroup, ClampsToKernelBounds) {
  CGroupController cg;
  InertTask t("t");
  cg.set_shares(t, 0);
  EXPECT_EQ(t.weight(), CGroupController::kMinShares);
  cg.set_shares(t, 1u << 30);
  EXPECT_EQ(t.weight(), CGroupController::kMaxShares);
}

TEST(CGroup, CustomWriteCost) {
  CGroupController cg(999);
  InertTask t("t", 1);
  EXPECT_EQ(cg.set_shares(t, 100), 999);
  EXPECT_EQ(cg.total_write_cost(), 999);
}

TEST(CGroup, TotalWriteCostAccumulates) {
  CGroupController cg(10);
  InertTask t("t", 1);
  cg.set_shares(t, 100);
  cg.set_shares(t, 200);
  cg.set_shares(t, 200);  // skipped
  EXPECT_EQ(cg.total_write_cost(), 20);
  EXPECT_EQ(cg.writes(), 2u);
  EXPECT_EQ(cg.skipped_writes(), 1u);
}

}  // namespace
}  // namespace nfv::sched
