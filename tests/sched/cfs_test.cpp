#include "sched/cfs.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"
#include "test_tasks.hpp"

namespace nfv::sched {
namespace {

using testing::InertTask;

SchedParams params() { return SchedParams::defaults(CpuClock{}); }

TEST(Cfs, PicksLowestVruntimeFirst) {
  CfsScheduler cfs(params(), /*batch=*/false);
  InertTask a("a"), b("b"), c("c");
  a.set_vruntime(300.0);
  b.set_vruntime(100.0);
  c.set_vruntime(200.0);
  cfs.enqueue(&a, false);
  cfs.enqueue(&b, false);
  cfs.enqueue(&c, false);
  EXPECT_EQ(cfs.pick_next(), &b);
  EXPECT_EQ(cfs.pick_next(), &c);
  EXPECT_EQ(cfs.pick_next(), &a);
  EXPECT_EQ(cfs.pick_next(), nullptr);
}

TEST(Cfs, EqualVruntimeBreaksTiesById) {
  CfsScheduler cfs(params(), false);
  InertTask a("a"), b("b");
  // ids default to 0 until bound to a core; emulate via a Core-free path:
  // equal ids would violate the set invariant, so give distinct vruntimes
  // via insertion order and check stability through pick.
  a.set_vruntime(100.0);
  b.set_vruntime(100.0);
  cfs.enqueue(&a, false);
  // a and b have identical (vruntime, id=0); the set would collapse them,
  // so in the real system ids are unique. Here just verify no crash with a
  // single element and re-enqueue.
  EXPECT_EQ(cfs.pick_next(), &a);
  cfs.enqueue(&b, false);
  EXPECT_EQ(cfs.pick_next(), &b);
}

TEST(Cfs, RunEndAdvancesVruntimeInverselyToWeight) {
  CfsScheduler cfs(params(), false);
  InertTask normal("n", 1024), heavy("h", 2048);
  cfs.on_run_end(&normal, 1000);
  cfs.on_run_end(&heavy, 1000);
  EXPECT_DOUBLE_EQ(normal.vruntime(), 1000.0);
  EXPECT_DOUBLE_EQ(heavy.vruntime(), 500.0);  // double weight, half vtime
}

TEST(Cfs, TimesliceSplitsLatencyByWeight) {
  const auto p = params();
  CfsScheduler cfs(p, false);
  InertTask a("a", 1024), b("b", 1024), c("c", 2048);
  cfs.enqueue(&a, false);
  cfs.enqueue(&b, false);
  // c is "running" (not in the queue): slice = period * w_c / (w_a+w_b+w_c).
  const Cycles slice = cfs.timeslice(&c);
  const double expected =
      static_cast<double>(p.sched_latency) * 2048.0 / (1024.0 + 1024.0 + 2048.0);
  EXPECT_NEAR(static_cast<double>(slice), expected, 1.0);
}

TEST(Cfs, TimesliceNeverBelowMinGranularity) {
  const auto p = params();
  CfsScheduler cfs(p, false);
  InertTask light("l", 2);  // minimum cgroup shares
  std::vector<std::unique_ptr<InertTask>> heavies;
  for (int i = 0; i < 50; ++i) {
    heavies.push_back(std::make_unique<InertTask>("h", 10240));
    heavies.back()->set_vruntime(static_cast<double>(i + 1));
    cfs.enqueue(heavies.back().get(), false);
  }
  EXPECT_GE(cfs.timeslice(&light), p.min_granularity);
}

TEST(Cfs, PeriodStretchesWithManyTasks) {
  const auto p = params();
  CfsScheduler cfs(p, false);
  std::vector<std::unique_ptr<InertTask>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(std::make_unique<InertTask>("t", 1024));
    tasks.back()->set_vruntime(static_cast<double>(i + 1));
    cfs.enqueue(tasks.back().get(), false);
  }
  InertTask running("r", 1024);
  // 21 tasks at min_granularity each = period 21*0.75ms > latency 6ms;
  // equal weights => slice = period/21 = min_granularity.
  EXPECT_EQ(cfs.timeslice(&running), p.min_granularity);
}

TEST(Cfs, WakeupPlacementGrantsSleeperCredit) {
  CfsScheduler cfs(params(), false);
  InertTask runner("r");
  runner.set_vruntime(1e9);
  cfs.enqueue(&runner, false);
  EXPECT_EQ(cfs.pick_next(), &runner);

  InertTask sleeper("s");
  sleeper.set_vruntime(0.0);  // slept for ages
  cfs.enqueue(&sleeper, /*is_wakeup=*/true);
  // place_entity: vruntime is pulled up to min_vruntime - latency/2, so the
  // sleeper cannot monopolise the CPU.
  const double floor = 1e9 - static_cast<double>(params().sched_latency) / 2.0;
  EXPECT_GE(sleeper.vruntime(), floor - 1.0);
}

TEST(Cfs, WakeupPlacementNeverLowersVruntime) {
  CfsScheduler cfs(params(), false);
  InertTask ahead("a");
  ahead.set_vruntime(5e9);
  cfs.enqueue(&ahead, /*is_wakeup=*/true);
  EXPECT_DOUBLE_EQ(ahead.vruntime(), 5e9);  // max() keeps its own value
}

TEST(Cfs, NormalPreemptsOnWakeWhenDeficitLarge) {
  const auto p = params();
  CfsScheduler cfs(p, /*batch=*/false);
  InertTask current("cur"), woken("wok");
  current.set_vruntime(static_cast<double>(p.wakeup_granularity) * 3);
  woken.set_vruntime(0.0);
  EXPECT_TRUE(cfs.should_preempt_on_wake(&woken, &current, 0));
}

TEST(Cfs, NormalDoesNotPreemptWithinGranularity) {
  const auto p = params();
  CfsScheduler cfs(p, false);
  InertTask current("cur"), woken("wok");
  current.set_vruntime(static_cast<double>(p.wakeup_granularity) * 0.5);
  woken.set_vruntime(0.0);
  EXPECT_FALSE(cfs.should_preempt_on_wake(&woken, &current, 0));
}

TEST(Cfs, RanSoFarCountsTowardPreemptionCheck) {
  const auto p = params();
  CfsScheduler cfs(p, false);
  InertTask current("cur"), woken("wok");
  current.set_vruntime(0.0);
  woken.set_vruntime(0.0);
  EXPECT_FALSE(cfs.should_preempt_on_wake(&woken, &current, 0));
  // After the current task has run 2x the granularity, it can be preempted.
  EXPECT_TRUE(
      cfs.should_preempt_on_wake(&woken, &current, p.wakeup_granularity * 2));
}

TEST(Cfs, BatchNeverPreemptsOnWake) {
  const auto p = params();
  CfsScheduler batch(p, /*batch=*/true);
  InertTask current("cur"), woken("wok");
  current.set_vruntime(1e12);
  woken.set_vruntime(0.0);
  EXPECT_FALSE(batch.should_preempt_on_wake(&woken, &current, 1'000'000));
  EXPECT_STREQ(batch.name(), "SCHED_BATCH");
}

TEST(Cfs, NoCurrentMeansNoPreemption) {
  CfsScheduler cfs(params(), false);
  InertTask woken("wok");
  EXPECT_FALSE(cfs.should_preempt_on_wake(&woken, nullptr, 0));
}

TEST(Cfs, RemoveDropsTask) {
  CfsScheduler cfs(params(), false);
  InertTask a("a"), b("b");
  a.set_vruntime(1.0);
  b.set_vruntime(2.0);
  cfs.enqueue(&a, false);
  cfs.enqueue(&b, false);
  cfs.remove(&a);
  EXPECT_EQ(cfs.runnable_count(), 1u);
  EXPECT_EQ(cfs.pick_next(), &b);
}

TEST(Cfs, MinVruntimeIsMonotonic) {
  CfsScheduler cfs(params(), false);
  InertTask a("a");
  a.set_vruntime(100.0);
  cfs.enqueue(&a, false);
  const double v1 = cfs.min_vruntime();
  cfs.pick_next();
  a.set_vruntime(500.0);
  cfs.enqueue(&a, false);
  EXPECT_GE(cfs.min_vruntime(), v1);
}

TEST(Cfs, WeightChangeWhileQueuedKeepsSliceMathConsistent) {
  // Regression: NFVnice rewrites cgroup weights of tasks that are sitting
  // on the runqueue. A cached weight sum (enqueue at the old weight,
  // dequeue at the new) once underflowed and inflated a slice ~30x.
  const auto p = params();
  CfsScheduler cfs(p, false);
  InertTask queued("q", 1024), running("r", 1024);
  cfs.enqueue(&queued, false);
  queued.set_weight(7680);  // cgroup write while queued
  const Cycles slice = cfs.timeslice(&running);
  // total weight = 7680 + 1024; slice = 6ms * 1024/8704 (>= min_gran).
  const double expected = static_cast<double>(p.sched_latency) * 1024.0 /
                          (7680.0 + 1024.0);
  EXPECT_NEAR(static_cast<double>(slice),
              std::max(expected, static_cast<double>(p.min_granularity)),
              1.0);
  // And the running task's resched check must not see a wrapped total.
  cfs.on_run_end(&running, p.sched_latency);
  EXPECT_TRUE(cfs.should_resched_on_tick(&running, p.sched_latency));
}

// Weighted fairness property: over a long simulated run of repeated
// pick/run/requeue, CPU time divides in proportion to weights.
class CfsWeightFairness
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(CfsWeightFairness, RuntimeProportionalToWeight) {
  const auto [w1, w2] = GetParam();
  const auto p = params();
  CfsScheduler cfs(p, false);
  InertTask a("a", w1), b("b", w2);
  cfs.enqueue(&a, false);
  cfs.enqueue(&b, false);
  Cycles run_a = 0, run_b = 0;
  for (int i = 0; i < 20000; ++i) {
    Task* t = cfs.pick_next();
    ASSERT_NE(t, nullptr);
    const Cycles slice = cfs.timeslice(t);
    cfs.on_run_end(t, slice);
    (t == &a ? run_a : run_b) += slice;
    cfs.enqueue(t, false);
  }
  const double ratio = static_cast<double>(run_a) / static_cast<double>(run_b);
  const double expected = static_cast<double>(w1) / static_cast<double>(w2);
  EXPECT_NEAR(ratio / expected, 1.0, 0.05)
      << "w1=" << w1 << " w2=" << w2 << " ratio=" << ratio;
}

INSTANTIATE_TEST_SUITE_P(
    WeightPairs, CfsWeightFairness,
    ::testing::Values(std::pair{1024u, 1024u}, std::pair{2048u, 1024u},
                      std::pair{4096u, 1024u}, std::pair{512u, 2048u},
                      std::pair{102u, 4700u}));

}  // namespace
}  // namespace nfv::sched
