#include "sched/fifo.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"
#include "sched/core.hpp"
#include "sim/engine.hpp"
#include "test_tasks.hpp"

namespace nfv::sched {
namespace {

using testing::BurstTask;
using testing::HogTask;
using testing::InertTask;

TEST(Fifo, FifoOrderAndName) {
  FifoScheduler fifo;
  InertTask a("a"), b("b");
  fifo.enqueue(&a, false);
  fifo.enqueue(&b, false);
  EXPECT_EQ(fifo.pick_next(), &a);
  EXPECT_EQ(fifo.pick_next(), &b);
  EXPECT_EQ(fifo.pick_next(), nullptr);
  EXPECT_STREQ(fifo.name(), "SCHED_FIFO");
}

TEST(Fifo, NeverReschedulesOnTick) {
  FifoScheduler fifo;
  InertTask current("c"), waiting("w");
  fifo.enqueue(&waiting, false);
  EXPECT_FALSE(fifo.should_resched_on_tick(&current, 0));
  EXPECT_FALSE(
      fifo.should_resched_on_tick(&current, CpuClock{}.from_seconds(10)));
}

TEST(Fifo, NeverPreemptsOnWake) {
  FifoScheduler fifo;
  InertTask current("c"), woken("w");
  EXPECT_FALSE(fifo.should_preempt_on_wake(&woken, &current, 0));
}

TEST(Fifo, HogStarvesEveryoneOnCore) {
  // The pathology the paper's §2.1 worries about ("malicious NFs that fail
  // to yield"): under FIFO nothing ever takes the CPU back.
  sim::Engine engine;
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  Core core(engine, std::make_unique<FifoScheduler>(), cfg, "fifo");
  HogTask hog("hog");
  BurstTask worker(engine, "w", 1000);
  core.add_task(&hog);
  core.add_task(&worker);
  core.wake(&hog);
  core.wake(&worker);
  engine.run_until(CpuClock{}.from_millis(100));
  EXPECT_EQ(worker.completions(), 0);
  EXPECT_EQ(hog.stats().involuntary_switches, 0u);
}

TEST(Fifo, CooperativeTasksShareViaBlocking) {
  // Voluntary yielders interleave fine under FIFO — NFVnice's libnf makes
  // NFs exactly that cooperative.
  sim::Engine engine;
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  Core core(engine, std::make_unique<FifoScheduler>(), cfg, "fifo");
  BurstTask a(engine, "a", 1000), b(engine, "b", 1000);
  core.add_task(&a);
  core.add_task(&b);
  engine.schedule_periodic(100'000, [&] {
    core.wake(&a);
    core.wake(&b);
  });
  engine.run_until(CpuClock{}.from_millis(10));
  EXPECT_GT(a.completions(), 50);
  EXPECT_GT(b.completions(), 50);
}

}  // namespace
}  // namespace nfv::sched
