// Shared task doubles for scheduler tests.
#pragma once

#include "sched/core.hpp"
#include "sched/task.hpp"
#include "sim/engine.hpp"

namespace nfv::sched::testing {

/// A task that never actually runs work; for pure policy-level tests.
class InertTask : public Task {
 public:
  using Task::Task;
  void on_dispatch(Cycles) override {}
  void on_preempt(Cycles) override {}
};

/// A task that, each time it is woken, performs `work_per_wake` cycles of
/// CPU (surviving preemptions) and then blocks. Mimics an NF draining its
/// queue and sleeping.
class BurstTask : public Task {
 public:
  BurstTask(sim::Engine& engine, std::string name, Cycles work_per_wake,
            std::uint32_t weight = kDefaultWeight)
      : Task(std::move(name), weight),
        engine_(engine),
        work_per_wake_(work_per_wake) {}

  void on_dispatch(Cycles now) override {
    if (remaining_ == 0) remaining_ = work_per_wake_;
    arm(now);
  }

  void on_preempt(Cycles now) override {
    engine_.cancel(event_);
    event_ = sim::kInvalidEventId;
    remaining_ = done_at_ - now;
  }

  /// Total bursts completed.
  [[nodiscard]] int completions() const { return completions_; }

 private:
  void arm(Cycles now) {
    done_at_ = now + remaining_;
    event_ = engine_.schedule_after(remaining_, [this] {
      event_ = sim::kInvalidEventId;
      remaining_ = 0;
      ++completions_;
      core()->yield_current(this, /*will_block=*/true);
    });
  }

  sim::Engine& engine_;
  Cycles work_per_wake_;
  Cycles remaining_ = 0;
  Cycles done_at_ = 0;
  sim::EventId event_ = sim::kInvalidEventId;
  int completions_ = 0;
};

/// A task that never yields: models the paper's "malicious NFs (those that
/// fail to yield)". It only stops running when preempted.
class HogTask : public Task {
 public:
  HogTask(std::string name, std::uint32_t weight = kDefaultWeight)
      : Task(std::move(name), weight) {}
  void on_dispatch(Cycles) override {}
  void on_preempt(Cycles) override {}
};

}  // namespace nfv::sched::testing
