#include "sched/core.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/time.hpp"
#include "sched/cfs.hpp"
#include "sched/fifo.hpp"
#include "sched/rr.hpp"
#include "sim/engine.hpp"
#include "test_tasks.hpp"

namespace nfv::sched {
namespace {

using testing::BurstTask;
using testing::HogTask;

constexpr Cycles kSwitchCost = 3900;

std::unique_ptr<Core> make_core(sim::Engine& engine, bool batch = true,
                                Cycles switch_cost = kSwitchCost) {
  auto params = SchedParams::defaults(CpuClock{});
  CoreConfig cfg;
  cfg.context_switch_cost = switch_cost;
  return std::make_unique<Core>(
      engine, std::make_unique<CfsScheduler>(params, batch), cfg, "test");
}

TEST(Core, TasksStartBlocked) {
  sim::Engine engine;
  auto core = make_core(engine);
  BurstTask t(engine, "t", 1000);
  core->add_task(&t);
  EXPECT_EQ(t.state(), TaskState::kBlocked);
  engine.run_until(1'000'000);
  EXPECT_EQ(t.completions(), 0);  // never woken, never ran
}

TEST(Core, WakeRunsTaskToCompletion) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", 1000);
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(10'000);
  EXPECT_EQ(t.completions(), 1);
  EXPECT_EQ(t.state(), TaskState::kBlocked);
  EXPECT_EQ(t.stats().runtime, 1000);
  EXPECT_EQ(t.stats().voluntary_switches, 1u);
  EXPECT_EQ(t.stats().involuntary_switches, 0u);
}

TEST(Core, WakeOnRunningTaskIsNoOp) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", 100000);
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(10);  // task is now running
  EXPECT_EQ(t.state(), TaskState::kRunning);
  core->wake(&t);  // semaphore already up
  EXPECT_EQ(t.state(), TaskState::kRunning);
  engine.run_until(200'000);
  EXPECT_EQ(t.completions(), 1);
}

TEST(Core, RepeatedWakeCycles) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", 500);
  core->add_task(&t);
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(i * 10'000, [&] { core->wake(&t); });
  }
  engine.run_until(1'000'000);
  EXPECT_EQ(t.completions(), 10);
  EXPECT_EQ(t.stats().runtime, 5000);
  EXPECT_EQ(t.stats().wakeups, 10u);
}

TEST(Core, SwitchCostChargedBetweenDifferentTasks) {
  sim::Engine engine;
  auto core = make_core(engine, true, kSwitchCost);
  BurstTask a(engine, "a", 1000), b(engine, "b", 1000);
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(1'000'000);
  EXPECT_EQ(a.completions(), 1);
  EXPECT_EQ(b.completions(), 1);
  // a ran first (no prior task: no charge), then a->b switch cost.
  EXPECT_EQ(core->switch_overhead_cycles(), kSwitchCost);
}

TEST(Core, NoSwitchCostResumingSameTask) {
  sim::Engine engine;
  auto core = make_core(engine, true, kSwitchCost);
  BurstTask t(engine, "t", 1000);
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(100'000);
  engine.schedule_at(200'000, [&] { core->wake(&t); });
  engine.run_until(1'000'000);
  EXPECT_EQ(t.completions(), 2);
  EXPECT_EQ(core->switch_overhead_cycles(), 0);
}

TEST(Core, QuantumExpiryPreemptsHog) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask hog("hog");
  BurstTask worker(engine, "w", 1000);
  core->add_task(&hog);
  core->add_task(&worker);
  core->wake(&hog);
  core->wake(&worker);
  engine.run_until(CpuClock{}.from_millis(50));
  // The hog must have been preempted (involuntary) so the worker ran.
  EXPECT_GE(worker.completions(), 1);
  EXPECT_GE(hog.stats().involuntary_switches, 1u);
  EXPECT_EQ(hog.stats().voluntary_switches, 0u);
}

TEST(Core, HogAloneKeepsRunningWithoutSwitches) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask hog("hog");
  core->add_task(&hog);
  core->wake(&hog);
  engine.run_until(CpuClock{}.from_millis(100));
  // Nothing to switch to: quantum renewals must not count as preemptions.
  EXPECT_EQ(hog.stats().involuntary_switches, 0u);
  EXPECT_EQ(core->current(), &hog);
  EXPECT_NEAR(static_cast<double>(core->busy_cycles()),
              static_cast<double>(CpuClock{}.from_millis(100)),
              static_cast<double>(CpuClock{}.from_millis(1)));
}

TEST(Core, HogsShareCpuFairlyUnderCfs) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask a("a"), b("b");
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(CpuClock{}.from_millis(500));
  const auto ra = static_cast<double>(a.stats().runtime);
  const auto rb = static_cast<double>(b.stats().runtime);
  EXPECT_NEAR(ra / rb, 1.0, 0.05);
}

TEST(Core, WeightedHogsSplitCpuByWeight) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask a("a", 3072), b("b", 1024);  // 3:1 cgroup shares
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(CpuClock{}.from_millis(500));
  const auto ra = static_cast<double>(a.stats().runtime);
  const auto rb = static_cast<double>(b.stats().runtime);
  EXPECT_NEAR(ra / rb, 3.0, 0.25);
}

TEST(Core, SchedLatencyRecorded) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask hog("hog");
  BurstTask worker(engine, "w", 100);
  core->add_task(&hog);
  core->add_task(&worker);
  core->wake(&hog);
  engine.run_until(1000);
  core->wake(&worker);  // must wait for the hog's slice under BATCH
  engine.run_until(CpuClock{}.from_millis(50));
  ASSERT_GE(worker.stats().sched_latency_samples, 1u);
  EXPECT_GT(worker.stats().avg_sched_latency_cycles(), 0.0);
}

TEST(Core, UtilizationMatchesBusyFraction) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", CpuClock{}.from_millis(10));
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(CpuClock{}.from_millis(100));
  EXPECT_NEAR(core->utilization(0, 0), 0.10, 0.005);
}

TEST(Core, NormalWakeupPreemptionBeatsBatch) {
  // Under SCHED_NORMAL a waking task preempts a long-running hog quickly;
  // under SCHED_BATCH it waits for the hog's slice. Compare worker
  // completion times.
  auto run = [](bool batch) {
    sim::Engine engine;
    auto core = make_core(engine, batch, 0);
    HogTask hog("hog");
    BurstTask worker(engine, "w", 1000);
    core->add_task(&hog);
    core->add_task(&worker);
    core->wake(&hog);
    engine.run_until(CpuClock{}.from_millis(3));  // hog builds vruntime
    core->wake(&worker);
    Cycles done = -1;
    while (done < 0 && engine.now() < CpuClock{}.from_millis(100)) {
      engine.run_until(engine.now() + 1000);
      if (worker.completions() > 0) done = engine.now();
    }
    return done;
  };
  const Cycles normal_done = run(false);
  const Cycles batch_done = run(true);
  ASSERT_GT(normal_done, 0);
  ASSERT_GT(batch_done, 0);
  EXPECT_LT(normal_done, batch_done);
}

TEST(Core, RrQuantumGovernsRotation) {
  sim::Engine engine;
  auto params = SchedParams::defaults(CpuClock{});
  params.rr_quantum = CpuClock{}.from_millis(1);
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  Core core(engine, std::make_unique<RrScheduler>(params), cfg, "rr");
  HogTask a("a"), b("b");
  core.add_task(&a);
  core.add_task(&b);
  core.wake(&a);
  core.wake(&b);
  engine.run_until(CpuClock{}.from_millis(100));
  // ~100 quantum expiries split between the two tasks.
  const auto switches =
      a.stats().involuntary_switches + b.stats().involuntary_switches;
  EXPECT_NEAR(static_cast<double>(switches), 100.0, 5.0);
  EXPECT_NEAR(static_cast<double>(a.stats().runtime) /
                  static_cast<double>(b.stats().runtime),
              1.0, 0.05);
}

TEST(Core, PreemptionMidWorkResumesCorrectly) {
  sim::Engine engine;
  auto params = SchedParams::defaults(CpuClock{});
  params.rr_quantum = CpuClock{}.from_micros(100);
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  // Tick faster than the quantum so sub-millisecond slices are enforced.
  cfg.tick_period = CpuClock{}.from_micros(100);
  Core core(engine, std::make_unique<RrScheduler>(params), cfg, "rr");
  // Burst longer than the quantum: must survive several preemptions.
  BurstTask big(engine, "big", CpuClock{}.from_micros(450));
  HogTask hog("hog");
  core.add_task(&big);
  core.add_task(&hog);
  core.wake(&big);
  core.wake(&hog);
  engine.run_until(CpuClock{}.from_millis(10));
  EXPECT_EQ(big.completions(), 1);
  EXPECT_EQ(big.stats().runtime, CpuClock{}.from_micros(450));
  EXPECT_GE(big.stats().involuntary_switches, 4u);
}

// -- preemption_horizon -------------------------------------------------------
// The horizon tells a running task how far it can batch work without
// overshooting a tick-driven preemption (see DESIGN.md §9). It must be a
// tick-grid time and never earlier than the policy's guaranteed slack.

TEST(Core, HorizonUnboundedWhenIdle) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask t("t");
  core->add_task(&t);  // blocked, never dispatched
  EXPECT_EQ(core->preemption_horizon(), kUnboundedSlack);
}

TEST(Core, HorizonUnboundedWithoutCompetitors) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask t("t");
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(10);  // t running, queue empty
  EXPECT_EQ(core->preemption_horizon(), kUnboundedSlack);
}

TEST(Core, HorizonUnboundedUnderFifo) {
  sim::Engine engine;
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  Core core(engine, std::make_unique<FifoScheduler>(), cfg, "fifo");
  HogTask a("a");
  HogTask b("b");
  core.add_task(&a);
  core.add_task(&b);
  core.wake(&a);
  core.wake(&b);
  engine.run_until(10);  // a running, b queued: FIFO never tick-preempts
  EXPECT_EQ(core.preemption_horizon(), kUnboundedSlack);
}

TEST(Core, HorizonIsQuantumRoundedToTickUnderRr) {
  sim::Engine engine;
  auto params = SchedParams::defaults(CpuClock{});
  params.rr_quantum = 5'000'000;
  CoreConfig cfg;
  cfg.context_switch_cost = 0;  // tick_period stays at the default 2.6M
  Core core(engine, std::make_unique<RrScheduler>(params), cfg, "rr");
  HogTask a("a");
  HogTask b("b");
  core.add_task(&a);
  core.add_task(&b);
  core.wake(&a);
  core.wake(&b);
  engine.run_until(10);
  // Quantum expires at ~5.0M; the first tick at/after that is 2 * 2.6M.
  EXPECT_EQ(core.preemption_horizon(), 5'200'000);
}

TEST(Core, HorizonIsMinGranularityTickUnderCfs) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask a("a");
  HogTask b("b");
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(10);
  // min_granularity (1.95M) guards the slice; the tick after it is 2.6M.
  // Past min_granularity CFS claims no slack (the vruntime clause may fire
  // on any tick), so the horizon is exactly the first eligible tick.
  EXPECT_EQ(core->preemption_horizon(), 2'600'000);
}

TEST(Core, HorizonStableAcrossStint) {
  sim::Engine engine;
  auto params = SchedParams::defaults(CpuClock{});
  params.rr_quantum = 50'000'000;  // long quantum: several ticks pass first
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  Core core(engine, std::make_unique<RrScheduler>(params), cfg, "rr");
  HogTask a("a");
  HogTask b("b");
  core.add_task(&a);
  core.add_task(&b);
  core.wake(&a);
  core.wake(&b);
  engine.run_until(10);
  const Cycles early = core.preemption_horizon();
  engine.run_until(10'000'000);  // a few ticks later, quantum still running
  const Cycles later = core.preemption_horizon();
  // The RR target is stint_start + quantum, invariant as ticks pass: the
  // slack shrinks exactly as fast as `now` advances.
  EXPECT_EQ(later, early);
  EXPECT_EQ(later % 2'600'000, 0);  // on the tick grid
  EXPECT_GE(later, 50'000'000);     // never before the quantum expires
}

}  // namespace
}  // namespace nfv::sched
