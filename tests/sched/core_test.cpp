#include "sched/core.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/time.hpp"
#include "sched/cfs.hpp"
#include "sched/rr.hpp"
#include "sim/engine.hpp"
#include "test_tasks.hpp"

namespace nfv::sched {
namespace {

using testing::BurstTask;
using testing::HogTask;

constexpr Cycles kSwitchCost = 3900;

std::unique_ptr<Core> make_core(sim::Engine& engine, bool batch = true,
                                Cycles switch_cost = kSwitchCost) {
  auto params = SchedParams::defaults(CpuClock{});
  CoreConfig cfg;
  cfg.context_switch_cost = switch_cost;
  return std::make_unique<Core>(
      engine, std::make_unique<CfsScheduler>(params, batch), cfg, "test");
}

TEST(Core, TasksStartBlocked) {
  sim::Engine engine;
  auto core = make_core(engine);
  BurstTask t(engine, "t", 1000);
  core->add_task(&t);
  EXPECT_EQ(t.state(), TaskState::kBlocked);
  engine.run_until(1'000'000);
  EXPECT_EQ(t.completions(), 0);  // never woken, never ran
}

TEST(Core, WakeRunsTaskToCompletion) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", 1000);
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(10'000);
  EXPECT_EQ(t.completions(), 1);
  EXPECT_EQ(t.state(), TaskState::kBlocked);
  EXPECT_EQ(t.stats().runtime, 1000);
  EXPECT_EQ(t.stats().voluntary_switches, 1u);
  EXPECT_EQ(t.stats().involuntary_switches, 0u);
}

TEST(Core, WakeOnRunningTaskIsNoOp) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", 100000);
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(10);  // task is now running
  EXPECT_EQ(t.state(), TaskState::kRunning);
  core->wake(&t);  // semaphore already up
  EXPECT_EQ(t.state(), TaskState::kRunning);
  engine.run_until(200'000);
  EXPECT_EQ(t.completions(), 1);
}

TEST(Core, RepeatedWakeCycles) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", 500);
  core->add_task(&t);
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(i * 10'000, [&] { core->wake(&t); });
  }
  engine.run_until(1'000'000);
  EXPECT_EQ(t.completions(), 10);
  EXPECT_EQ(t.stats().runtime, 5000);
  EXPECT_EQ(t.stats().wakeups, 10u);
}

TEST(Core, SwitchCostChargedBetweenDifferentTasks) {
  sim::Engine engine;
  auto core = make_core(engine, true, kSwitchCost);
  BurstTask a(engine, "a", 1000), b(engine, "b", 1000);
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(1'000'000);
  EXPECT_EQ(a.completions(), 1);
  EXPECT_EQ(b.completions(), 1);
  // a ran first (no prior task: no charge), then a->b switch cost.
  EXPECT_EQ(core->switch_overhead_cycles(), kSwitchCost);
}

TEST(Core, NoSwitchCostResumingSameTask) {
  sim::Engine engine;
  auto core = make_core(engine, true, kSwitchCost);
  BurstTask t(engine, "t", 1000);
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(100'000);
  engine.schedule_at(200'000, [&] { core->wake(&t); });
  engine.run_until(1'000'000);
  EXPECT_EQ(t.completions(), 2);
  EXPECT_EQ(core->switch_overhead_cycles(), 0);
}

TEST(Core, QuantumExpiryPreemptsHog) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask hog("hog");
  BurstTask worker(engine, "w", 1000);
  core->add_task(&hog);
  core->add_task(&worker);
  core->wake(&hog);
  core->wake(&worker);
  engine.run_until(CpuClock{}.from_millis(50));
  // The hog must have been preempted (involuntary) so the worker ran.
  EXPECT_GE(worker.completions(), 1);
  EXPECT_GE(hog.stats().involuntary_switches, 1u);
  EXPECT_EQ(hog.stats().voluntary_switches, 0u);
}

TEST(Core, HogAloneKeepsRunningWithoutSwitches) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask hog("hog");
  core->add_task(&hog);
  core->wake(&hog);
  engine.run_until(CpuClock{}.from_millis(100));
  // Nothing to switch to: quantum renewals must not count as preemptions.
  EXPECT_EQ(hog.stats().involuntary_switches, 0u);
  EXPECT_EQ(core->current(), &hog);
  EXPECT_NEAR(static_cast<double>(core->busy_cycles()),
              static_cast<double>(CpuClock{}.from_millis(100)),
              static_cast<double>(CpuClock{}.from_millis(1)));
}

TEST(Core, HogsShareCpuFairlyUnderCfs) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask a("a"), b("b");
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(CpuClock{}.from_millis(500));
  const auto ra = static_cast<double>(a.stats().runtime);
  const auto rb = static_cast<double>(b.stats().runtime);
  EXPECT_NEAR(ra / rb, 1.0, 0.05);
}

TEST(Core, WeightedHogsSplitCpuByWeight) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask a("a", 3072), b("b", 1024);  // 3:1 cgroup shares
  core->add_task(&a);
  core->add_task(&b);
  core->wake(&a);
  core->wake(&b);
  engine.run_until(CpuClock{}.from_millis(500));
  const auto ra = static_cast<double>(a.stats().runtime);
  const auto rb = static_cast<double>(b.stats().runtime);
  EXPECT_NEAR(ra / rb, 3.0, 0.25);
}

TEST(Core, SchedLatencyRecorded) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  HogTask hog("hog");
  BurstTask worker(engine, "w", 100);
  core->add_task(&hog);
  core->add_task(&worker);
  core->wake(&hog);
  engine.run_until(1000);
  core->wake(&worker);  // must wait for the hog's slice under BATCH
  engine.run_until(CpuClock{}.from_millis(50));
  ASSERT_GE(worker.stats().sched_latency_samples, 1u);
  EXPECT_GT(worker.stats().avg_sched_latency_cycles(), 0.0);
}

TEST(Core, UtilizationMatchesBusyFraction) {
  sim::Engine engine;
  auto core = make_core(engine, true, 0);
  BurstTask t(engine, "t", CpuClock{}.from_millis(10));
  core->add_task(&t);
  core->wake(&t);
  engine.run_until(CpuClock{}.from_millis(100));
  EXPECT_NEAR(core->utilization(0, 0), 0.10, 0.005);
}

TEST(Core, NormalWakeupPreemptionBeatsBatch) {
  // Under SCHED_NORMAL a waking task preempts a long-running hog quickly;
  // under SCHED_BATCH it waits for the hog's slice. Compare worker
  // completion times.
  auto run = [](bool batch) {
    sim::Engine engine;
    auto core = make_core(engine, batch, 0);
    HogTask hog("hog");
    BurstTask worker(engine, "w", 1000);
    core->add_task(&hog);
    core->add_task(&worker);
    core->wake(&hog);
    engine.run_until(CpuClock{}.from_millis(3));  // hog builds vruntime
    core->wake(&worker);
    Cycles done = -1;
    while (done < 0 && engine.now() < CpuClock{}.from_millis(100)) {
      engine.run_until(engine.now() + 1000);
      if (worker.completions() > 0) done = engine.now();
    }
    return done;
  };
  const Cycles normal_done = run(false);
  const Cycles batch_done = run(true);
  ASSERT_GT(normal_done, 0);
  ASSERT_GT(batch_done, 0);
  EXPECT_LT(normal_done, batch_done);
}

TEST(Core, RrQuantumGovernsRotation) {
  sim::Engine engine;
  auto params = SchedParams::defaults(CpuClock{});
  params.rr_quantum = CpuClock{}.from_millis(1);
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  Core core(engine, std::make_unique<RrScheduler>(params), cfg, "rr");
  HogTask a("a"), b("b");
  core.add_task(&a);
  core.add_task(&b);
  core.wake(&a);
  core.wake(&b);
  engine.run_until(CpuClock{}.from_millis(100));
  // ~100 quantum expiries split between the two tasks.
  const auto switches =
      a.stats().involuntary_switches + b.stats().involuntary_switches;
  EXPECT_NEAR(static_cast<double>(switches), 100.0, 5.0);
  EXPECT_NEAR(static_cast<double>(a.stats().runtime) /
                  static_cast<double>(b.stats().runtime),
              1.0, 0.05);
}

TEST(Core, PreemptionMidWorkResumesCorrectly) {
  sim::Engine engine;
  auto params = SchedParams::defaults(CpuClock{});
  params.rr_quantum = CpuClock{}.from_micros(100);
  CoreConfig cfg;
  cfg.context_switch_cost = 0;
  // Tick faster than the quantum so sub-millisecond slices are enforced.
  cfg.tick_period = CpuClock{}.from_micros(100);
  Core core(engine, std::make_unique<RrScheduler>(params), cfg, "rr");
  // Burst longer than the quantum: must survive several preemptions.
  BurstTask big(engine, "big", CpuClock{}.from_micros(450));
  HogTask hog("hog");
  core.add_task(&big);
  core.add_task(&hog);
  core.wake(&big);
  core.wake(&hog);
  engine.run_until(CpuClock{}.from_millis(10));
  EXPECT_EQ(big.completions(), 1);
  EXPECT_EQ(big.stats().runtime, CpuClock{}.from_micros(450));
  EXPECT_GE(big.stats().involuntary_switches, 4u);
}

}  // namespace
}  // namespace nfv::sched
