#include "common/moving_window.hpp"

#include <gtest/gtest.h>

namespace nfv {
namespace {

TEST(MovingWindow, EmptyWindow) {
  MovingWindow w(1000);
  EXPECT_EQ(w.size(0), 0u);
  EXPECT_EQ(w.median(0), 0u);
  EXPECT_EQ(w.mean(0), 0.0);
}

TEST(MovingWindow, SingleSample) {
  MovingWindow w(1000);
  w.record(10, 270);
  EXPECT_EQ(w.size(10), 1u);
  EXPECT_EQ(w.median(10), 270u);
  EXPECT_DOUBLE_EQ(w.mean(10), 270.0);
}

TEST(MovingWindow, MedianOfOddCount) {
  MovingWindow w(1000);
  w.record(1, 100);
  w.record(2, 300);
  w.record(3, 200);
  EXPECT_EQ(w.median(3), 200u);
}

TEST(MovingWindow, OldSamplesExpire) {
  MovingWindow w(100);
  w.record(0, 1000);
  w.record(150, 50);
  // At t=150 the first sample (age 150 > window 100) is gone.
  EXPECT_EQ(w.size(150), 1u);
  EXPECT_EQ(w.median(150), 50u);
}

TEST(MovingWindow, ExpiryIsLazyButConsistent) {
  MovingWindow w(100);
  w.record(0, 1);
  w.record(50, 2);
  w.record(100, 3);
  EXPECT_EQ(w.size(100), 3u);  // sample at t=0 is exactly at the edge
  EXPECT_EQ(w.size(101), 2u);
  EXPECT_EQ(w.size(200), 1u);  // only the t=100 sample (age == window) left
  EXPECT_EQ(w.size(201), 0u);
}

TEST(MovingWindow, MedianRobustToOutliers) {
  MovingWindow w(10000);
  for (Cycles t = 0; t < 99; ++t) w.record(t, 250);
  w.record(99, 1000000);  // one I/O-inflated outlier (the §3.5 rationale)
  EXPECT_EQ(w.median(99), 250u);
}

TEST(MovingWindow, QuantileBounds) {
  MovingWindow w(10000);
  for (Cycles t = 0; t < 100; ++t) w.record(t, 100 + t);
  EXPECT_LE(w.quantile(100, 0.0), w.quantile(100, 0.5));
  EXPECT_LE(w.quantile(100, 0.5), w.quantile(100, 1.0));
  EXPECT_EQ(w.quantile(100, 1.0), 199u);
}

TEST(MovingWindow, MeanTracksWindow) {
  MovingWindow w(100);
  w.record(0, 100);
  w.record(10, 200);
  EXPECT_DOUBLE_EQ(w.mean(10), 150.0);
  EXPECT_DOUBLE_EQ(w.mean(110), 200.0);  // first sample expired
}

TEST(MovingWindow, ClearEmpties) {
  MovingWindow w(100);
  w.record(0, 5);
  w.clear();
  EXPECT_EQ(w.size(0), 0u);
}

}  // namespace
}  // namespace nfv
