#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nfv {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.median(), 0u);
}

TEST(Histogram, SingleValueReportsExactly) {
  Histogram h;
  h.record(550);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 550u);
  EXPECT_EQ(h.max(), 550u);
  EXPECT_EQ(h.median(), 550u);  // clamped to observed extrema
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
  EXPECT_EQ(h.sum(), 600u);
}

TEST(Histogram, MedianWithinBucketError) {
  Histogram h(1 << 20, 8);
  for (int i = 0; i < 1000; ++i) h.record(250);
  for (int i = 0; i < 10; ++i) h.record(5000);  // outliers
  // Median must stay robust against the outliers: within one bucket (~9%)
  // of 250.
  const auto median = h.median();
  EXPECT_GE(median, 220u);
  EXPECT_LE(median, 280u);
}

TEST(Histogram, QuantileOrdering) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_LE(h.value_at_quantile(0.1), h.value_at_quantile(0.5));
  EXPECT_LE(h.value_at_quantile(0.5), h.value_at_quantile(0.9));
  EXPECT_LE(h.value_at_quantile(0.9), h.value_at_quantile(1.0));
}

TEST(Histogram, ExtremeQuantilesClampToMinMax) {
  Histogram h;
  h.record(100);
  h.record(100000);
  EXPECT_EQ(h.value_at_quantile(0.0), 100u);
  EXPECT_EQ(h.value_at_quantile(1.0), 100000u);
}

TEST(Histogram, ValuesAboveMaxAreClamped) {
  Histogram h(1024, 4);
  h.record(1 << 30);  // way past max_value
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.median(), 1u << 30);  // clamped to observed max
}

TEST(Histogram, ZeroIsTreatedAsOne) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(7);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.median(), 0u);
  h.record(42);
  EXPECT_EQ(h.median(), 42u);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.record(100);
  b.record(1000);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 1000u);
  // Median of {100, 1000, 1000} ~ 1000 (within bucket error).
  EXPECT_GT(a.median(), 800u);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.record(33);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 33u);
  EXPECT_EQ(a.max(), 33u);
}

// Relative error property across magnitudes: the bucketed median of a
// point mass must be within the bucket resolution of the true value.
class HistogramResolution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramResolution, PointMassWithinRelativeError) {
  const std::uint64_t value = GetParam();
  Histogram h((1ULL << 40), 8);
  for (int i = 0; i < 100; ++i) h.record(value);
  const auto median = h.median();
  const double rel =
      std::abs(static_cast<double>(median) - static_cast<double>(value)) /
      static_cast<double>(value);
  EXPECT_LE(rel, 0.10) << "value=" << value << " median=" << median;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramResolution,
                         ::testing::Values(1, 7, 50, 120, 270, 550, 2200, 4500,
                                           100000, 12345678, (1ULL << 33)));

}  // namespace
}  // namespace nfv
