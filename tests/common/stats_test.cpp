#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace nfv {
namespace {

TEST(JainIndex, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.25, 0.25}), 1.0);
}

TEST(JainIndex, SingleValueIsFair) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5.0}), 1.0);
}

TEST(JainIndex, EmptyIsFairByConvention) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
}

TEST(JainIndex, AllZeroIsFairByConvention) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 1.0);
}

TEST(JainIndex, TotallyUnfairApproaches1OverN) {
  // One user hogs everything: J = 1/n.
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainIndex, PaperStyleUnfairness) {
  // Fig. 15b-style: CFS gives flow1 1.02 Mpps and flow6 0.07 Mpps etc.;
  // the index must land well below 1.
  const double j =
      jain_fairness_index({1.02, 0.51, 0.20, 0.05, 0.026, 0.017});
  EXPECT_LT(j, 0.65);
  EXPECT_GT(j, 0.1);
}

TEST(JainIndex, ScaleInvariant) {
  const double a = jain_fairness_index({1.0, 2.0, 3.0});
  const double b = jain_fairness_index({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(MinMeanMax, Empty) {
  MinMeanMax m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.min(), 0.0);
  EXPECT_EQ(m.max(), 0.0);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(MinMeanMax, TracksAll) {
  MinMeanMax m;
  m.add(3.0);
  m.add(1.0);
  m.add(2.0);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_EQ(m.count(), 3u);
}

TEST(MinMeanMax, NegativeValues) {
  MinMeanMax m;
  m.add(-5.0);
  m.add(5.0);
  EXPECT_DOUBLE_EQ(m.min(), -5.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(MinMeanMax, ResetClears) {
  MinMeanMax m;
  m.add(1.0);
  m.reset();
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace nfv
