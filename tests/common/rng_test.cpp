#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nfv {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.next_below(8)];
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ExponentialAlwaysNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.next_exponential(1.0), 0.0);
  }
}

TEST(Rng, WeightedPickFollowsWeights) {
  Rng rng(23);
  const double weights[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.next_weighted(weights, 2)];
  const double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(Rng, WeightedDegenerateWeights) {
  Rng rng(29);
  const double zeros[] = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.next_weighted(zeros, 3), 2u);
  EXPECT_EQ(rng.next_weighted(nullptr, 0), 0u);
}

TEST(Rng, WeightedSingleElement) {
  Rng rng(31);
  const double one[] = {5.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_weighted(one, 1), 0u);
}

}  // namespace
}  // namespace nfv
