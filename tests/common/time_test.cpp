#include "common/time.hpp"

#include <gtest/gtest.h>

namespace nfv {
namespace {

TEST(CpuClock, DefaultIs2Point6GHz) {
  CpuClock clock;
  EXPECT_DOUBLE_EQ(clock.hz(), 2.6e9);
}

TEST(CpuClock, SecondsRoundTrip) {
  CpuClock clock;
  EXPECT_EQ(clock.from_seconds(1.0), 2'600'000'000);
  EXPECT_DOUBLE_EQ(clock.to_seconds(2'600'000'000), 1.0);
}

TEST(CpuClock, MillisMicrosNanos) {
  CpuClock clock;
  EXPECT_EQ(clock.from_millis(1.0), 2'600'000);
  EXPECT_EQ(clock.from_micros(1.0), 2'600);
  EXPECT_EQ(clock.from_nanos(1000.0), 2'600);
  EXPECT_DOUBLE_EQ(clock.to_millis(2'600'000), 1.0);
  EXPECT_DOUBLE_EQ(clock.to_micros(2'600), 1.0);
}

TEST(CpuClock, CustomFrequency) {
  CpuClock clock(1e9);
  EXPECT_EQ(clock.from_micros(5.0), 5000);
  EXPECT_DOUBLE_EQ(clock.to_nanos(1), 1.0);
}

TEST(CpuClock, PaperCostsConvertSanely) {
  // The paper's 250-cycle NF at 2.6 GHz is ~96 ns per packet, i.e. a
  // single core caps out around 10.4 Mpps for that NF.
  CpuClock clock;
  const double ns = clock.to_nanos(250);
  EXPECT_NEAR(ns, 96.2, 0.5);
  EXPECT_NEAR(clock.hz() / 250.0, 10.4e6, 0.1e6);
}

}  // namespace
}  // namespace nfv
