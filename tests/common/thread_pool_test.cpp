#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace nfv::common {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WorkerCountIsHonoured) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, WaitIdleWaitsForRunningJobs) {
  // wait_idle must cover jobs that have been popped off the queue but are
  // still executing, not just an empty queue.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 16; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 16);
  }
}

TEST(ThreadPool, JobsMaySubmitMoreJobs) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    count.fetch_add(1, std::memory_order_relaxed);
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelJobsActuallyOverlap) {
  // With 2 workers, two blocking jobs must be in flight at once.
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&in_flight, &peak] {
      const int now = in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
      int prev = peak.load(std::memory_order_relaxed);
      while (prev < now &&
             !peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      in_flight.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(peak.load(), 2);
}

}  // namespace
}  // namespace nfv::common
