#include "common/ewma.hpp"

#include <gtest/gtest.h>

namespace nfv {
namespace {

TEST(Ewma, UninitialisedIsZero) {
  Ewma e;
  EXPECT_FALSE(e.initialised());
  EXPECT_EQ(e.value(), 0.0);
}

TEST(Ewma, FirstObservationSetsValue) {
  Ewma e(0.1);
  e.observe(42.0);
  EXPECT_TRUE(e.initialised());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, MovesTowardNewSamples) {
  Ewma e(0.5);
  e.observe(0.0);
  e.observe(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
  e.observe(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 75.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.125);
  e.observe(0.0);
  for (int i = 0; i < 200; ++i) e.observe(80.0);
  EXPECT_NEAR(e.value(), 80.0, 0.01);
}

TEST(Ewma, SmallAlphaSmoothsBursts) {
  Ewma slow(0.01), fast(0.9);
  slow.observe(0.0);
  fast.observe(0.0);
  slow.observe(1000.0);
  fast.observe(1000.0);
  EXPECT_LT(slow.value(), fast.value());
  EXPECT_NEAR(slow.value(), 10.0, 1e-9);
}

TEST(Ewma, ResetForgetsHistory) {
  Ewma e(0.5);
  e.observe(10.0);
  e.reset();
  EXPECT_FALSE(e.initialised());
  e.observe(3.0);
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
}

}  // namespace
}  // namespace nfv
