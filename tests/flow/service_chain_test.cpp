#include "flow/service_chain.hpp"

#include <gtest/gtest.h>

namespace nfv::flow {
namespace {

TEST(ChainRegistry, AddAssignsSequentialIds) {
  ChainRegistry reg;
  EXPECT_EQ(reg.add("a", {0}), 0u);
  EXPECT_EQ(reg.add("b", {1, 2}), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ChainRegistry, GetReturnsDefinition) {
  ChainRegistry reg;
  const ChainId id = reg.add("fw-nat-ids", {3, 1, 4});
  const ServiceChain& chain = reg.get(id);
  EXPECT_EQ(chain.name, "fw-nat-ids");
  EXPECT_EQ(chain.hops, (std::vector<NfId>{3, 1, 4}));
  EXPECT_EQ(chain.length(), 3u);
}

TEST(ChainRegistry, ChainsThroughIndexesMembership) {
  ChainRegistry reg;
  // Fig. 8 topology: chain1 = NF1,NF2,NF4; chain2 = NF1,NF3,NF4.
  const ChainId c1 = reg.add("chain1", {1, 2, 4});
  const ChainId c2 = reg.add("chain2", {1, 3, 4});
  EXPECT_EQ(reg.chains_through(1), (std::vector<ChainId>{c1, c2}));
  EXPECT_EQ(reg.chains_through(2), (std::vector<ChainId>{c1}));
  EXPECT_EQ(reg.chains_through(3), (std::vector<ChainId>{c2}));
  EXPECT_EQ(reg.chains_through(4), (std::vector<ChainId>{c1, c2}));
  EXPECT_TRUE(reg.chains_through(99).empty());
}

TEST(ChainRegistry, PositionOf) {
  ChainRegistry reg;
  const ChainId c = reg.add("c", {7, 8, 9});
  EXPECT_EQ(reg.position_of(c, 7), 0);
  EXPECT_EQ(reg.position_of(c, 8), 1);
  EXPECT_EQ(reg.position_of(c, 9), 2);
  EXPECT_EQ(reg.position_of(c, 10), -1);
}

TEST(ChainRegistry, UpstreamOf) {
  ChainRegistry reg;
  const ChainId c = reg.add("c", {5, 6, 7, 8});
  EXPECT_TRUE(reg.upstream_of(c, 5).empty());
  EXPECT_EQ(reg.upstream_of(c, 7), (std::vector<NfId>{5, 6}));
  EXPECT_EQ(reg.upstream_of(c, 8), (std::vector<NfId>{5, 6, 7}));
}

TEST(ChainRegistry, RepeatedNfInChainIndexedOnce) {
  ChainRegistry reg;
  const ChainId c = reg.add("loop", {1, 2, 1});
  EXPECT_EQ(reg.chains_through(1), (std::vector<ChainId>{c}));
  EXPECT_EQ(reg.position_of(c, 1), 0);  // first occurrence
}

TEST(ChainRegistry, SingleNfChain) {
  ChainRegistry reg;
  const ChainId c = reg.add("solo", {0});
  EXPECT_EQ(reg.get(c).length(), 1u);
  EXPECT_TRUE(reg.upstream_of(c, 0).empty());
}

TEST(ChainRegistry, LongChain) {
  // Fig. 16 uses chains up to length 10.
  ChainRegistry reg;
  std::vector<NfId> hops;
  for (NfId i = 0; i < 10; ++i) hops.push_back(i);
  const ChainId c = reg.add("len10", hops);
  EXPECT_EQ(reg.get(c).length(), 10u);
  EXPECT_EQ(reg.upstream_of(c, 9).size(), 9u);
}

}  // namespace
}  // namespace nfv::flow
