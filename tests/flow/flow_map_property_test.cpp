// Differential / property harness for the flow-state library.
//
// The library replaces std::unordered_map under every per-flow code path
// (flow table, NAT, LB, firewall, monitor), so correctness is proven by
// lockstep execution against reference models:
//
//  * FlowMap vs std::unordered_map — fixed-seed randomized op sequences
//    (insert / erase / lookup) held at target load factors {0.25, 0.5,
//    0.85}, 10 seeds x 100k ops each, agreement asserted per op and full
//    observable state compared periodically. A colliding-hash variant
//    forces long probe chains so backward-shift deletion is exercised hard.
//  * FlowStore vs an unordered_map + intrusive-LRU-list reference — the
//    full stateful-NF op mix (install / lookup-touch / erase / expire /
//    LRU-evict), with the whole chain order compared against the reference
//    list after every batch.
//
// Plus the library's safety invariants, checked directly:
//  * the index pool never double-hands an id (alloc'd ids are tracked in a
//    shadow set; a second hand-out of a live id fails the test),
//  * the expirator never frees a live index (the expire callback observes
//    the id still allocated, already unlinked; afterwards it is free),
//  * sweep order matches last-touch order (expired keys come back exactly
//    in the reference LRU order).
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "flow/expirator.hpp"
#include "flow/flow_map.hpp"
#include "flow/flow_store.hpp"
#include "flow/index_pool.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::flow {
namespace {

using pktio::FlowKey;
using pktio::FlowKeyHash;

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};
constexpr std::size_t kOpsPerSeed = 100'000;

/// Expand a dense id into a unique 5-tuple (distinct (src_ip, dst_ip)
/// pair per id for any id < 65521 * 251).
FlowKey key_of_id(std::uint64_t id) {
  FlowKey k;
  k.src_ip = 0x0a000000u + static_cast<std::uint32_t>(id % 65521);
  k.dst_ip = 0x0a800001u + static_cast<std::uint32_t>((id / 65521) % 251);
  k.src_port = static_cast<std::uint16_t>(1024 + id % 50000);
  k.dst_port = 80;
  k.proto = (id & 1) != 0 ? pktio::kProtoTcp : pktio::kProtoUdp;
  return k;
}

// ---------------------------------------------------------------------------
// FlowMap vs std::unordered_map
// ---------------------------------------------------------------------------

template <typename Map, typename Ref>
void compare_full_state(const Map& map, const Ref& ref) {
  ASSERT_EQ(map.size(), ref.size());
  std::size_t walked = 0;
  map.for_each([&](const FlowKey& key, std::uint32_t value) {
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "map holds a key the reference lacks";
    ASSERT_EQ(it->second, value);
    ++walked;
  });
  ASSERT_EQ(walked, ref.size());
  for (const auto& [key, value] : ref) {
    const std::uint32_t* found = map.find(key);
    ASSERT_NE(found, nullptr) << "reference holds a key the map lacks";
    ASSERT_EQ(*found, value);
  }
}

/// One fixed-seed differential run held at `load_factor` occupancy.
template <typename Hash>
void run_map_differential(std::uint64_t seed, double load_factor,
                          std::size_t ops) {
  constexpr std::size_t kCapacity = 1 << 16;
  const auto target = static_cast<std::size_t>(load_factor * kCapacity);
  ASSERT_LT(target, kCapacity - 1);

  FlowMap<FlowKey, std::uint32_t, Hash> map(kCapacity);
  std::unordered_map<FlowKey, std::uint32_t, FlowKeyHash> ref;
  std::vector<FlowKey> live;  // random-victim erase in O(1)
  Rng rng(seed);
  const std::uint64_t key_space = target * 2 + 16;

  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t r = rng.next_below(100);
    if (ref.size() < target && r < 60) {
      // Fill toward the target load factor.
      const FlowKey key = key_of_id(rng.next_below(key_space));
      const bool in_ref = ref.find(key) != ref.end();
      std::uint32_t* found = map.find(key);
      ASSERT_EQ(in_ref, found != nullptr);
      if (!in_ref) {
        const auto value = static_cast<std::uint32_t>(rng.next_u64());
        ASSERT_TRUE(map.insert(key, value));
        ref.emplace(key, value);
        live.push_back(key);
      }
    } else if (!live.empty() && r < 80) {
      // Erase a uniformly random live key (exercises backward shift).
      const std::size_t j = rng.next_below(live.size());
      const FlowKey key = live[j];
      live[j] = live.back();
      live.pop_back();
      ASSERT_TRUE(map.erase(key));
      ASSERT_EQ(ref.erase(key), 1u);
      ASSERT_EQ(map.find(key), nullptr);
      ASSERT_FALSE(map.erase(key)) << "double erase reported success";
    } else {
      // Lookup (roughly 50% hit rate over the key space).
      const FlowKey key = key_of_id(rng.next_below(key_space));
      const auto it = ref.find(key);
      const std::uint32_t* found = map.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(*found, it->second);
      }
    }
    if ((i & 0x3fff) == 0x3fff) {
      compare_full_state(map, ref);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
  compare_full_state(map, ref);
}

class FlowMapDifferential : public testing::TestWithParam<double> {};

TEST_P(FlowMapDifferential, LockstepWithUnorderedMap) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_map_differential<FlowKeyFastHash>(seed, GetParam(), kOpsPerSeed);
    if (testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(LoadFactors, FlowMapDifferential,
                         testing::Values(0.25, 0.5, 0.85),
                         [](const auto& info) {
                           return "lf" + std::to_string(static_cast<int>(
                                             info.param * 100));
                         });

/// Pathological hash: 16 distinct values, so every op lands in a handful of
/// giant probe clusters and erase must repeatedly backward-shift long runs.
struct CollidingHash {
  std::uint64_t operator()(const FlowKey& key) const {
    return FlowKeyFastHash{}(key) & 0xf;
  }
};

TEST(FlowMapDifferential, SurvivesPathologicalCollisions) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    // Low occupancy numbers but enormous clusters relative to capacity.
    run_map_differential<CollidingHash>(seed, 0.25, 20'000);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(FlowMap, BatchedLookupMatchesScalar) {
  constexpr std::size_t kN = 4096;
  FlowMap<> map(1 << 13);
  Rng rng(0xba7c4);
  for (std::size_t i = 0; i < kN / 2; ++i) {
    map.insert(key_of_id(i * 2), static_cast<std::uint32_t>(i));
  }
  std::vector<FlowKey> keys;
  keys.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    keys.push_back(key_of_id(rng.next_below(kN)));  // ~50% hits
  }
  std::vector<std::uint32_t*> batched(kN);
  map.find_batch(keys.data(), kN, batched.data());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(batched[i], map.find(keys[i])) << "index " << i;
  }
}

TEST(FlowMap, RefusesInsertAtOccupancyLimit) {
  FlowMap<> map(8);
  for (std::size_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(map.insert(key_of_id(i), static_cast<std::uint32_t>(i)));
  }
  // One empty slot must always remain so unsuccessful probes terminate.
  EXPECT_FALSE(map.insert(key_of_id(7), 7));
  EXPECT_EQ(map.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NE(map.find(key_of_id(i)), nullptr);
  }
  EXPECT_EQ(map.find(key_of_id(7)), nullptr);
}

// ---------------------------------------------------------------------------
// IndexPool: never double-hands an id
// ---------------------------------------------------------------------------

TEST(IndexPool, NeverHandsOutALiveIndex) {
  constexpr std::uint32_t kCapacity = 512;
  IndexPool pool(kCapacity);
  std::unordered_set<std::uint32_t> shadow;  // ids we believe are live
  std::vector<std::uint32_t> live;
  Rng rng(0x1dc001);

  for (std::size_t op = 0; op < 50'000; ++op) {
    if (live.empty() || (pool.available() > 0 && rng.next_below(2) == 0)) {
      const std::uint32_t idx = pool.alloc();
      ASSERT_NE(idx, IndexPool::kNoIndex);
      ASSERT_LT(idx, kCapacity);
      ASSERT_TRUE(shadow.insert(idx).second)
          << "pool double-handed id " << idx;
      ASSERT_TRUE(pool.is_allocated(idx));
      live.push_back(idx);
    } else {
      const std::size_t j = rng.next_below(live.size());
      const std::uint32_t idx = live[j];
      live[j] = live.back();
      live.pop_back();
      pool.free(idx);
      ASSERT_EQ(shadow.erase(idx), 1u);
      ASSERT_FALSE(pool.is_allocated(idx));
    }
    ASSERT_EQ(pool.allocated(), shadow.size());
  }
}

TEST(IndexPool, FreshIndicesAscendAndExhaustionReturnsNoIndex) {
  IndexPool pool(4);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(pool.alloc(), i);
  EXPECT_EQ(pool.alloc(), IndexPool::kNoIndex);
  pool.free(2);
  EXPECT_EQ(pool.alloc(), 2u);  // most-recently-freed first
  EXPECT_EQ(pool.alloc(), IndexPool::kNoIndex);
}

TEST(IndexPool, GrowAppendsFreshIndicesInOrder) {
  IndexPool pool(2);
  EXPECT_EQ(pool.alloc(), 0u);
  EXPECT_EQ(pool.alloc(), 1u);
  pool.grow(5);
  EXPECT_EQ(pool.capacity(), 5u);
  EXPECT_EQ(pool.alloc(), 2u);
  EXPECT_EQ(pool.alloc(), 3u);
  EXPECT_EQ(pool.alloc(), 4u);
  EXPECT_TRUE(pool.is_allocated(1));
}

// ---------------------------------------------------------------------------
// FlowStore vs unordered_map + LRU-list reference
// ---------------------------------------------------------------------------

struct RefLru {
  struct Node {
    FlowKey key;
    Cycles last_touch;
  };
  std::list<Node> order;  // front = oldest touch, back = newest
  std::unordered_map<FlowKey, std::list<Node>::iterator, FlowKeyHash> index;

  bool contains(const FlowKey& key) const {
    return index.find(key) != index.end();
  }
  void touch(const FlowKey& key, Cycles now) {
    auto it = index.at(key);
    it->last_touch = now;
    order.splice(order.end(), order, it);
  }
  void insert(const FlowKey& key, Cycles now) {
    order.push_back({key, now});
    index.emplace(key, std::prev(order.end()));
  }
  void erase(const FlowKey& key) {
    // `key` may alias the node being freed (expire_before passes a
    // reference into order.front()), so resolve the index entry first and
    // erase it by iterator — never hash the key after the node is gone.
    auto it = index.find(key);
    order.erase(it->second);
    index.erase(it);
  }
  FlowKey evict_oldest() {
    const FlowKey victim = order.front().key;
    erase(victim);
    return victim;
  }
  std::vector<FlowKey> expire_before(Cycles deadline) {
    std::vector<FlowKey> out;
    while (!order.empty() && order.front().last_touch < deadline) {
      out.push_back(order.front().key);
      erase(order.front().key);
    }
    return out;
  }
};

using Store = FlowStore<FlowKey, std::uint32_t>;

/// Chain order, pool bookkeeping, and sizes must agree with the reference
/// after any op sequence.
void compare_store_state(const Store& store, const RefLru& ref) {
  ASSERT_EQ(store.size(), ref.index.size());
  ASSERT_EQ(store.pool().allocated(), ref.index.size());
  ASSERT_EQ(store.expirator().size(), ref.index.size());
  ASSERT_EQ(store.map().size(), ref.index.size());
  auto it = ref.order.begin();
  std::size_t walked = 0;
  bool order_ok = true;
  store.for_each([&](std::uint32_t idx, const FlowKey& key,
                     const std::uint32_t&) {
    if (it == ref.order.end() || !(it->key == key) ||
        store.expirator().last_touch(idx) != it->last_touch) {
      order_ok = false;
    } else {
      ++it;
    }
    ++walked;
  });
  ASSERT_TRUE(order_ok) << "chain order diverged from reference LRU order";
  ASSERT_EQ(walked, ref.index.size());
}

TEST(FlowStoreDifferential, FullOpMixLockstepWithLruReference) {
  constexpr std::uint32_t kMaxFlows = 4096;
  constexpr Cycles kTimeout = 5'000;
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Store store(Store::Config{.max_flows = kMaxFlows,
                              .idle_timeout = kTimeout,
                              .evict_lru_when_full = true,
                              .auto_grow = false});
    RefLru ref;
    std::vector<FlowKey> evicted;
    store.set_evict_listener(
        [&](std::uint32_t, const FlowKey& key, std::uint32_t&) {
          evicted.push_back(key);
        });
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    Cycles now = 0;
    const std::uint64_t key_space = kMaxFlows * 3;

    for (std::size_t op = 0; op < kOpsPerSeed; ++op) {
      now += 1 + static_cast<Cycles>(rng.next_below(7));
      const std::uint64_t r = rng.next_below(100);
      const FlowKey key = key_of_id(rng.next_below(key_space));
      if (r < 55) {
        // install: get-or-create, touching; may LRU-evict at capacity.
        const bool was_hit = ref.contains(key);
        const bool was_full = ref.index.size() == kMaxFlows;
        evicted.clear();
        const auto result = store.install(key, now);
        ASSERT_TRUE(store.pool().is_allocated(result.index));
        ASSERT_EQ(store.key_of(result.index), key);
        if (was_hit) {
          ASSERT_EQ(result.path, StorePath::kHit);
          ASSERT_TRUE(evicted.empty());
          ref.touch(key, now);
        } else if (was_full) {
          ASSERT_EQ(result.path, StorePath::kEvicted);
          const FlowKey victim = ref.evict_oldest();
          ASSERT_EQ(evicted.size(), 1u);
          ASSERT_EQ(evicted.front(), victim);
          ref.insert(key, now);
        } else {
          ASSERT_EQ(result.path, StorePath::kNew);
          ASSERT_TRUE(evicted.empty());
          ref.insert(key, now);
        }
      } else if (r < 75) {
        // lookup: touching on hit, kNoIndex on miss.
        const std::uint32_t idx = store.lookup(key, now);
        if (ref.contains(key)) {
          ASSERT_NE(idx, Store::kNoIndex);
          ASSERT_EQ(store.key_of(idx), key);
          ref.touch(key, now);
        } else {
          ASSERT_EQ(idx, Store::kNoIndex);
        }
      } else if (r < 85) {
        // erase by key.
        ASSERT_EQ(store.erase(key), ref.contains(key));
        if (ref.contains(key)) ref.erase(key);
      } else if (r < 97) {
        // peek: side-effect free.
        ASSERT_EQ(store.peek(key) != Store::kNoIndex, ref.contains(key));
      } else {
        // expire: sweep order must match reference last-touch order, the
        // callback must observe the id still allocated but already
        // unlinked, and afterwards every swept id must be free.
        std::vector<FlowKey> swept;
        std::vector<std::uint32_t> swept_ids;
        const std::size_t n =
            store.expire(now, [&](std::uint32_t idx, const FlowKey& k,
                                  std::uint32_t&) {
              EXPECT_TRUE(store.pool().is_allocated(idx))
                  << "expirator freed a live index before the callback";
              EXPECT_FALSE(store.expirator().linked(idx));
              swept.push_back(k);
              swept_ids.push_back(idx);
            });
        const std::vector<FlowKey> expected =
            ref.expire_before(now - kTimeout);
        ASSERT_EQ(n, expected.size());
        ASSERT_EQ(swept, expected)
            << "sweep order diverged from last-touch order";
        for (const std::uint32_t idx : swept_ids) {
          ASSERT_FALSE(store.pool().is_allocated(idx));
        }
      }
      if ((op & 0xfff) == 0xfff) {
        compare_store_state(store, ref);
        if (testing::Test::HasFatalFailure()) return;
      }
    }
    compare_store_state(store, ref);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(FlowStoreDifferential, AutoGrowPreservesEveryLiveFlow) {
  Store store(Store::Config{.max_flows = 64,
                            .idle_timeout = 0,
                            .evict_lru_when_full = false,
                            .auto_grow = true});
  std::unordered_map<FlowKey, std::uint32_t, FlowKeyHash> ref;
  Rng rng(0xa110c);
  Cycles now = 0;
  for (std::size_t op = 0; op < 20'000; ++op) {
    ++now;
    const FlowKey key = key_of_id(rng.next_below(8192));
    const std::uint64_t r = rng.next_below(10);
    if (r < 7) {
      const auto result = store.install(key, now);
      store.state(result.index) = static_cast<std::uint32_t>(now);
      ref[key] = static_cast<std::uint32_t>(now);
    } else if (r < 8) {
      const bool present = ref.find(key) != ref.end();
      ASSERT_EQ(store.erase(key), present);
      ref.erase(key);
    } else {
      const std::uint32_t idx = store.peek(key);
      const auto it = ref.find(key);
      ASSERT_EQ(idx != Store::kNoIndex, it != ref.end());
      if (it != ref.end()) ASSERT_EQ(store.state(idx), it->second);
    }
  }
  ASSERT_EQ(store.size(), ref.size());
  ASSERT_GT(store.max_flows(), 64u) << "growth never triggered";
  for (const auto& [key, value] : ref) {
    const std::uint32_t idx = store.peek(key);
    ASSERT_NE(idx, Store::kNoIndex);
    ASSERT_EQ(store.state(idx), value);
  }
}

TEST(Expirator, TouchMovesToTailAndSweepPopsOldestFirst) {
  Expirator chain(8);
  chain.push_back(0, 10);
  chain.push_back(1, 20);
  chain.push_back(2, 30);
  chain.touch(0, 40);  // order now 1, 2, 0
  EXPECT_EQ(chain.oldest(), 1u);
  EXPECT_EQ(chain.newest(), 0u);
  std::vector<std::uint32_t> popped;
  EXPECT_EQ(chain.expire_before(35, [&](std::uint32_t i) {
    popped.push_back(i);
  }), 2u);
  EXPECT_EQ(popped, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_TRUE(chain.linked(0));
}

TEST(FlowStoreDifferential, SameSeedReproducesIdenticalFinalState) {
  auto fingerprint = [](std::uint64_t seed) {
    Store store(Store::Config{.max_flows = 512,
                              .idle_timeout = 1000,
                              .evict_lru_when_full = true,
                              .auto_grow = false});
    Rng rng(seed);
    Cycles now = 0;
    for (std::size_t op = 0; op < 30'000; ++op) {
      now += 1 + static_cast<Cycles>(rng.next_below(5));
      const FlowKey key = key_of_id(rng.next_below(2048));
      const std::uint64_t r = rng.next_below(10);
      if (r < 6) {
        store.install(key, now);
      } else if (r < 8) {
        (void)store.lookup(key, now);
      } else if (r < 9) {
        store.erase(key);
      } else {
        store.expire(now);
      }
    }
    std::uint64_t h = 0xcbf29ce484222325ULL;
    store.for_each([&](std::uint32_t idx, const FlowKey& key,
                       const std::uint32_t&) {
      h = (h ^ key.src_ip) * 0x100000001b3ULL;
      h = (h ^ key.src_port) * 0x100000001b3ULL;
      h = (h ^ idx) * 0x100000001b3ULL;
    });
    h ^= store.hits() + store.misses() * 31 + store.lru_evictions() * 131 +
         store.expirations() * 1031;
    return h;
  };
  for (const std::uint64_t seed : kSeeds) {
    EXPECT_EQ(fingerprint(seed), fingerprint(seed)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace nfv::flow
