#include "flow/flow_table.hpp"

#include <gtest/gtest.h>

namespace nfv::flow {
namespace {

pktio::FlowKey key(std::uint32_t src_ip, std::uint8_t proto = pktio::kProtoUdp) {
  return pktio::FlowKey{src_ip, 0x0a800001, 10000, 80, proto};
}

TEST(FlowTable, InstallAssignsDenseIds) {
  FlowTable table;
  EXPECT_EQ(table.install(key(1), 0), 0u);
  EXPECT_EQ(table.install(key(2), 0), 1u);
  EXPECT_EQ(table.install(key(3), 1), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(FlowTable, LookupHit) {
  FlowTable table;
  const FlowId id = table.install(key(7), 4);
  const FlowEntry* entry = table.lookup(key(7));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->flow_id, id);
  EXPECT_EQ(entry->chain, 4u);
  EXPECT_EQ(table.hits(), 1u);
}

TEST(FlowTable, LookupMiss) {
  FlowTable table;
  table.install(key(1), 0);
  EXPECT_EQ(table.lookup(key(2)), nullptr);
  EXPECT_EQ(table.misses(), 1u);
}

TEST(FlowTable, ReinstallKeepsIdUpdatesChain) {
  FlowTable table;
  const FlowId id = table.install(key(5), 1);
  EXPECT_EQ(table.install(key(5), 2), id);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(key(5))->chain, 2u);
}

TEST(FlowTable, ProtocolDistinguishesFlows) {
  FlowTable table;
  const FlowId udp = table.install(key(9, pktio::kProtoUdp), 0);
  const FlowId tcp = table.install(key(9, pktio::kProtoTcp), 1);
  EXPECT_NE(udp, tcp);
  EXPECT_EQ(table.lookup(key(9, pktio::kProtoTcp))->chain, 1u);
}

TEST(FlowTable, EntryByIdRoundTrip) {
  FlowTable table;
  const FlowId id = table.install(key(11), 3);
  const FlowEntry& entry = table.entry(id);
  EXPECT_EQ(entry.key, key(11));
  EXPECT_EQ(entry.chain, 3u);
}

TEST(FlowTable, ManyFlows) {
  FlowTable table;
  for (std::uint32_t i = 0; i < 10000; ++i) table.install(key(i), i % 7);
  EXPECT_EQ(table.size(), 10000u);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    const FlowEntry* entry = table.lookup(key(i));
    ASSERT_NE(entry, nullptr);
    ASSERT_EQ(entry->chain, i % 7);
  }
}

}  // namespace
}  // namespace nfv::flow
