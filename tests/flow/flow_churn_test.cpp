// Churn workloads over the flow-state library: million-flow scale, expiry
// driven drain, packet conservation, and bitwise determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_set>

#include "core/simulation.hpp"
#include "nfs/monitor.hpp"

namespace nfv::flow {
namespace {

pktio::FlowKey churn_key(std::uint64_t n) {
  pktio::FlowKey k;
  k.src_ip = 0x14000000u + static_cast<std::uint32_t>(n / 60000);
  k.dst_ip = 0x0a800001;
  k.src_port = static_cast<std::uint16_t>(1 + n % 60000);
  k.dst_port = 80;
  k.proto = pktio::kProtoUdp;
  return k;
}

// A million concurrent flows install, grow the arena, survive while
// touched, and drain back to zero through the expiry sweep — with every
// dense id conserved (no leak, no double-hand) across the whole cycle.
TEST(FlowChurnScale, MillionFlowsInstallTouchExpireDrain) {
  FlowTable table(FlowTable::Config{.initial_capacity = 1024,
                                    .idle_timeout = 1'000,
                                    .scan_period = 1'000});
  constexpr std::uint64_t kFlows = 1'000'000;
  for (std::uint64_t n = 0; n < kFlows; ++n) {
    table.install(churn_key(n), static_cast<ChainId>(n % 4), /*now=*/0);
  }
  ASSERT_EQ(table.size(), kFlows);
  ASSERT_EQ(table.installs(), kFlows);
  // The map never exceeds its occupancy bound even right after growth.
  EXPECT_LE(table.load_factor(), 0.86);

  // Touch the even half at t=500; the sweep at deadline t=400 must reclaim
  // exactly the idle (odd) half, in O(expired) without visiting survivors.
  for (std::uint64_t n = 0; n < kFlows; n += 2) {
    ASSERT_NE(table.lookup(churn_key(n), /*now=*/500), nullptr);
  }
  std::uint64_t expired_listener_count = 0;
  table.set_expiry_listener(
      [&](const FlowEntry& entry) { ++expired_listener_count; (void)entry; });
  EXPECT_EQ(table.expire(/*now=*/1'400), kFlows / 2);
  EXPECT_EQ(expired_listener_count, kFlows / 2);
  EXPECT_EQ(table.size(), kFlows / 2);
  for (std::uint64_t n = 0; n < 1'000; ++n) {
    EXPECT_EQ(table.lookup(churn_key(2 * n + 1)) != nullptr, false);
  }

  // Advance past the survivors' touch too: the table drains to zero and
  // the pool hands every id back.
  EXPECT_EQ(table.expire(/*now=*/2'000), kFlows / 2);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.store().pool().allocated(), 0u);
  EXPECT_EQ(table.expirations(), kFlows);

  // Reinstalled flows reuse reclaimed ids instead of growing the arena.
  const FlowId reused = table.install(churn_key(0), 0, /*now=*/2'100);
  EXPECT_LT(reused, kFlows);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableExpiry, TouchingLookupKeepsFlowAliveAcrossSweeps) {
  FlowTable table(FlowTable::Config{.initial_capacity = 8,
                                    .idle_timeout = 100,
                                    .scan_period = 50});
  table.install(churn_key(1), 0, /*now=*/0);
  table.install(churn_key(2), 0, /*now=*/0);
  ASSERT_NE(table.lookup(churn_key(1), /*now=*/90), nullptr);  // refresh
  EXPECT_EQ(table.expire(/*now=*/150), 1u);  // only flow 2 was idle
  EXPECT_NE(table.lookup(churn_key(1)), nullptr);
  EXPECT_EQ(table.lookup(churn_key(2)), nullptr);
  EXPECT_EQ(table.expire(/*now=*/300), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableExpiry, ExpiredIdIsReusedAndOldEntryUnreachable) {
  FlowTable table(FlowTable::Config{.initial_capacity = 8,
                                    .idle_timeout = 10,
                                    .scan_period = 10});
  const FlowId a = table.install(churn_key(10), 3, /*now=*/0);
  EXPECT_EQ(table.expire(/*now=*/100), 1u);
  const FlowId b = table.install(churn_key(11), 5, /*now=*/100);
  EXPECT_EQ(b, a);  // LIFO free list hands the reclaimed id straight back
  EXPECT_EQ(table.lookup(churn_key(10)), nullptr);
  ASSERT_NE(table.lookup(churn_key(11)), nullptr);
  EXPECT_EQ(table.entry(b).chain, 5u);
}

// ---------------------------------------------------------------------------
// Engine-level churn: determinism, conservation, drain.
// ---------------------------------------------------------------------------

struct ChurnRun {
  std::string report;
  std::uint64_t wire_ingress = 0;
  std::uint64_t admitted = 0;
  std::uint64_t entry_drops = 0;
  std::uint64_t egress = 0;
  std::uint64_t rx_full_drops = 0;
  std::uint64_t unmatched_drops = 0;
  std::uint64_t sent = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t table_size = 0;
  std::uint64_t expirations = 0;
  std::uint64_t pool_in_use = 0;
};

ChurnRun run_churn(std::uint64_t seed, std::uint32_t burst,
                   double run_seconds = 0.3, double stop_seconds = 0.1) {
  core::PlatformConfig cfg;
  cfg.flow_table.idle_timeout =
      static_cast<Cycles>(0.02 * cfg.cpu_hz);  // 20 ms idle -> expire
  core::Simulation sim(cfg);
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto mon_nf = sim.add_nf("mon", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("churn", {mon_nf});
  // Stateful NF: per-packet cost follows the flow-cache path (hit/miss/
  // evict), so churn directly shapes the cost stream the scheduler sees.
  nfs::FlowMonitor monitor(1 << 12);
  monitor.install(sim.nf(mon_nf), nfs::FlowMonitor::PathCosts{});
  const auto& src =
      sim.add_churn_workload(chain, 500'000,
                             {.concurrent_flows = 2'000,
                              .stop_seconds = stop_seconds,
                              .pareto_alpha = 1.5,
                              .pareto_min_packets = 4.0,
                              .seed = seed,
                              .burst = burst});
  sim.run_for_seconds(run_seconds);

  ChurnRun out;
  out.report = sim.report_json();
  out.wire_ingress = sim.manager().wire_ingress();
  const auto cm = sim.chain_metrics(chain);
  out.admitted = cm.entry_admitted;
  out.entry_drops = cm.entry_throttle_drops;
  out.egress = cm.egress_packets;
  out.rx_full_drops = sim.nf_metrics(mon_nf).rx_full_drops;
  // A flow idle past the timeout is swept from the table even though the
  // source may still emit for it; those packets miss the lookup and are
  // dropped unmatched (the rule would need reinstalling) — they must be
  // accounted, not lost.
  if (const auto* ctr = sim.observability().metrics().find_counter(
          "mgr.unmatched_drops")) {
    out.unmatched_drops = ctr->value();
  }
  out.sent = src.packets_sent();
  out.flows_created = src.flows_created();
  out.table_size = sim.flow_table().size();
  out.expirations = sim.flow_table().expirations();
  out.pool_in_use = sim.pool().in_use();
  return out;
}

// Same seed, same burst window: the entire metrics report is byte-identical
// across two fresh processes' worth of state.
TEST(FlowChurnDeterminism, SameSeedSameReportByteForByte) {
  const ChurnRun r1 = run_churn(0xfeed, 4);
  const ChurnRun r2 = run_churn(0xfeed, 4);
  EXPECT_EQ(r1.report, r2.report);
  EXPECT_EQ(r1.sent, r2.sent);
  EXPECT_EQ(r1.flows_created, r2.flows_created);
  const ChurnRun other = run_churn(0xbeef, 4);
  EXPECT_NE(r1.report, other.report);
}

// The source's arrival process is burst-window invariant (gap draws are
// consumed at arm time, flow draws at emit time), so emission-side counts
// match across burst windows and each window conserves packets.
TEST(FlowChurnDeterminism, EmissionInvariantAcrossBurstWindows) {
  const ChurnRun b1 = run_churn(0x5eed, 1);
  const ChurnRun b8 = run_churn(0x5eed, 8);
  EXPECT_EQ(b1.sent, b8.sent);
  EXPECT_EQ(b1.flows_created, b8.flows_created);
  EXPECT_EQ(b1.wire_ingress, b8.wire_ingress);
  for (const ChurnRun* r : {&b1, &b8}) {
    EXPECT_EQ(r->wire_ingress,
              r->admitted + r->entry_drops + r->unmatched_drops);
  }
}

// After traffic stops: every mbuf returns to the pool, the queues are
// empty, and the expiry sweep drains the churned flow population back out
// of the table — dense ids fully reclaimed.
TEST(FlowChurnDeterminism, DrainsToZeroThroughExpiry) {
  const ChurnRun r = run_churn(0xd1a1, 4, /*run_seconds=*/0.4);
  EXPECT_EQ(r.wire_ingress, r.admitted + r.entry_drops + r.unmatched_drops);
  EXPECT_GT(r.unmatched_drops, 0u)
      << "no flow ever outlived its table entry — churn too tame";
  EXPECT_EQ(r.admitted, r.egress + r.rx_full_drops);
  EXPECT_EQ(r.pool_in_use, 0u);
  EXPECT_GT(r.flows_created, 2'000u) << "population never churned";
  EXPECT_GT(r.expirations, 0u);
  EXPECT_EQ(r.table_size, 0u) << "expiry sweep left flows behind";
}

// flow.* metrics from the table surface in the report for dashboards.
TEST(FlowChurnDeterminism, FlowTableMetricsExported) {
  const ChurnRun r = run_churn(0xfaceb00c, 4, /*run_seconds=*/0.05,
                               /*stop_seconds=*/-1.0);
  for (const char* key :
       {"flow.hits", "flow.misses", "flow.installs", "flow.expirations",
        "flow.table_size", "flow.load_factor"}) {
    EXPECT_NE(r.report.find(key), std::string::npos) << key;
  }
}

// Retired 5-tuples are never reused by the source: every created flow is a
// fresh key, which is what actually stresses install/expire churn.
TEST(FlowChurnDeterminism, SourceInstallsFreshTuples) {
  core::PlatformConfig cfg;
  cfg.flow_table.idle_timeout = static_cast<Cycles>(0.01 * cfg.cpu_hz);
  core::Simulation sim(cfg);
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto nf_id = sim.add_nf("sink", core_id, nf::CostModel::fixed(80));
  const auto chain = sim.add_chain("c", {nf_id});
  auto& src = sim.add_churn_workload(chain, 200'000,
                                     {.concurrent_flows = 64,
                                      .pareto_min_packets = 2.0,
                                      .seed = 42,
                                      .burst = 4});
  sim.run_for_seconds(0.1);
  EXPECT_GT(src.flows_retired(), 100u);
  EXPECT_EQ(src.flows_created(), 64u + src.flows_retired());
  // Table holds at most the live population plus not-yet-expired retirees.
  EXPECT_LE(sim.flow_table().size(), src.flows_created());
  EXPECT_GT(sim.flow_table().expirations(), 0u);
}

}  // namespace
}  // namespace nfv::flow
