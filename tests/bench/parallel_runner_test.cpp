// ParallelRunner determinism contract: results come back in submission
// order regardless of worker count, so a bench's printed output is
// byte-identical whether it ran serially or across a pool.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"

namespace {

// Declared first on purpose: bench_workers() caches its answer, so the env
// override must be asserted before anything else in this binary touches it.
TEST(ParallelRunner, BenchWorkersHonoursEnvOverride) {
  ::setenv("NFV_BENCH_WORKERS", "3", 1);
  EXPECT_EQ(bench::bench_workers(), 3u);
}

TEST(ParallelRunner, ResultsComeBackInSubmissionOrder) {
  // Later jobs finish first (decreasing sleep), yet the result vector must
  // follow submission order.
  bench::ParallelRunner<int> runner(4);
  for (int i = 0; i < 8; ++i) {
    runner.submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
      return i * 10;
    });
  }
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i], i * 10);
}

TEST(ParallelRunner, SubmitReturnsIndex) {
  bench::ParallelRunner<int> runner(2);
  EXPECT_EQ(runner.submit([] { return 0; }), 0u);
  EXPECT_EQ(runner.submit([] { return 0; }), 1u);
  (void)runner.run();
}

TEST(ParallelRunner, DefaultRunnersShareOneProcessWidePool) {
  // The fix for pool churn: every default-constructed runner drains through
  // the same shared_pool(), so scenario groups reuse threads instead of
  // spawning workers per group. Worker thread ids observed by two separate
  // runners must come from the same (stable) set.
  const auto collect_ids = [] {
    bench::ParallelRunner<std::thread::id> runner;
    for (std::size_t i = 0; i < 4 * bench::bench_workers(); ++i) {
      runner.submit([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::this_thread::get_id();
      });
    }
    std::set<std::thread::id> ids;
    for (const auto& id : runner.run()) ids.insert(id);
    return ids;
  };
  const auto first = collect_ids();
  const auto second = collect_ids();
  EXPECT_EQ(first, second);
  EXPECT_LE(first.size(), bench::bench_workers());
  EXPECT_EQ(bench::shared_pool().worker_count(), bench::bench_workers());
}

TEST(ParallelRunner, ExplicitWorkerCountUsesDedicatedPool) {
  // An explicit non-default worker count must not resize or replace the
  // shared pool — it gets a throwaway dedicated pool for that run only.
  const std::size_t odd = bench::bench_workers() + 1;
  bench::ParallelRunner<int> runner(odd);
  for (int i = 0; i < 6; ++i) runner.submit([i] { return i; });
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(results[i], i);
  EXPECT_EQ(bench::shared_pool().worker_count(), bench::bench_workers());
}

TEST(ParallelRunner, ReusableAfterRun) {
  bench::ParallelRunner<int> runner(2);
  runner.submit([] { return 1; });
  EXPECT_EQ(runner.run(), (std::vector<int>{1}));
  runner.submit([] { return 2; });
  runner.submit([] { return 3; });
  EXPECT_EQ(runner.run(), (std::vector<int>{2, 3}));
}

TEST(ParallelRunner, SimulationResultsIdenticalAcrossWorkerCounts) {
  // The load-bearing property: a grid of real (tiny) simulations yields
  // bit-identical results at workers=1 and workers=4.
  bench::ChainSpec spec;
  spec.costs = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = 0.01;

  const auto run_with = [&spec](std::size_t workers) {
    bench::ParallelRunner<bench::ChainResult> runner(workers);
    for (const bench::Mode& mode : bench::kDefaultVsNfvnice) {
      for (const bench::Sched& sched : bench::kAllScheds) {
        runner.submit([&mode, &sched, &spec] {
          return bench::run_chain(mode, sched, spec);
        });
      }
    }
    return runner.run();
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].egress_mpps, parallel[i].egress_mpps) << i;
    EXPECT_EQ(serial[i].entry_drops, parallel[i].entry_drops) << i;
    EXPECT_EQ(serial[i].wasted_by_pps, parallel[i].wasted_by_pps) << i;
  }
}

TEST(ParallelRunner, RunGridIsSchedulerMajor) {
  // run_grid must enumerate (sched outer, mode inner) to match the print
  // order of the table benches that consume it.
  bench::ChainSpec spec;
  spec.costs = {120};
  spec.rate_pps = 1e6;
  spec.secs = 0.005;
  const auto rows =
      bench::run_grid(bench::kAllScheds, bench::kDefaultVsNfvnice, spec);
  ASSERT_EQ(rows.size(),
            std::size(bench::kAllScheds) * std::size(bench::kDefaultVsNfvnice));
  std::size_t idx = 0;
  for (const bench::Sched& sched : bench::kAllScheds) {
    for (const bench::Mode& mode : bench::kDefaultVsNfvnice) {
      EXPECT_EQ(rows[idx].sched, &sched) << idx;
      EXPECT_EQ(rows[idx].mode, &mode) << idx;
      ++idx;
    }
  }
}

TEST(ParallelRunner, RunGridWithReportCarriesJson) {
  bench::ChainSpec spec;
  spec.costs = {120};
  spec.rate_pps = 1e6;
  spec.secs = 0.005;
  const auto rows = bench::run_grid(bench::kAllScheds,
                                    bench::kDefaultVsNfvnice, spec,
                                    /*with_report=*/true);
  for (const auto& row : rows) {
    EXPECT_FALSE(row.report.empty());
    EXPECT_EQ(row.report.front(), '{');
  }
}

}  // namespace
