// Golden-figure smoke test: tiny-scale versions of the fig07 / tab03
// experiments, asserting the paper's headline orderings hold and that the
// benches' machine-readable (--json / report_json) output carries the same
// numbers. Scaled down (~20 ms simulated) so it runs inside ctest; the
// full-size figures live in bench/.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness.hpp"

namespace {

// Tiny fig07/tab03 chain: 3 NFs (120/270/550 cycles) on one core, 6 Mpps.
bench::ChainSpec tiny_spec() {
  bench::ChainSpec spec;
  spec.costs = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = 0.02;
  return spec;
}

// Minimal extraction of `"key":<number>` from a JSON document (first
// occurrence). Good enough for asserting on our own deterministic output.
double json_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return -1.0;
  return std::stod(json.substr(pos + needle.size()));
}

std::uint64_t total_wasted(const bench::ChainResult& r) {
  double total = 0;
  for (const double v : r.wasted_by_pps) total += v;
  return static_cast<std::uint64_t>(total);
}

TEST(BenchSmoke, Fig07NfvniceBeatsDefaultThroughput) {
  const auto spec = tiny_spec();
  const auto dflt = bench::run_chain(bench::kModeDefault, bench::kBatch, spec);
  const auto nice = bench::run_chain(bench::kModeNfvnice, bench::kBatch, spec);
  // The paper's headline (Fig. 7): NFVnice >= Default under every
  // scheduler. At this scale the gap is well over the run-to-run noise.
  EXPECT_GE(nice.egress_mpps, dflt.egress_mpps);
  EXPECT_GT(nice.egress_mpps, 0.5);  // the chain actually carried traffic
  // Overload is shed at the entry under NFVnice, not after processing.
  EXPECT_GT(nice.entry_drops, 0u);
  EXPECT_EQ(dflt.entry_drops, 0u);
}

TEST(BenchSmoke, Tab03BackpressureCollapsesWastedWork) {
  const auto spec = tiny_spec();
  const auto dflt = bench::run_chain(bench::kModeDefault, bench::kBatch, spec);
  const auto bkpr = bench::run_chain(bench::kModeBkpr, bench::kBatch, spec);
  // Table 3's point: Default wastes work (packets processed by NF1/NF2 die
  // at the next queue); backpressure alone collapses that drop rate.
  EXPECT_GT(total_wasted(dflt), 0u);
  EXPECT_LT(total_wasted(bkpr), total_wasted(dflt));
}

TEST(BenchSmoke, ReportJsonMatchesChainResult) {
  const auto spec = tiny_spec();
  std::string report;
  const auto nice =
      bench::run_chain(bench::kModeNfvnice, bench::kBatch, spec, &report);

  // Structurally a single JSON object...
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.front(), '{');
  int depth = 0;
  for (const char c : report) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0) << "unbalanced braces in report_json";

  // ...whose chain section carries the same numbers the harness computed.
  const double egress_packets = json_number(report, "egress_packets");
  EXPECT_NEAR(egress_packets / spec.secs / 1e6, nice.egress_mpps, 1e-9);
  const double entry_drops = json_number(report, "entry_throttle_drops");
  EXPECT_EQ(static_cast<std::uint64_t>(entry_drops), nice.entry_drops);
  EXPECT_GT(json_number(report, "elapsed_seconds"), 0.0);
  EXPECT_GT(json_number(report, "dispatched_events"), 0.0);
  // The registry dump rode along.
  EXPECT_NE(report.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(report.find("sched.context_switches"), std::string::npos);
  EXPECT_NE(report.find("bp.throttle_entries"), std::string::npos);
}

TEST(BenchSmoke, JsonReportDocumentShape) {
  // The --json path benches use: one document, rows per configuration.
  const auto spec = tiny_spec();
  std::string report;
  const auto result =
      bench::run_chain(bench::kModeDefault, bench::kBatch, spec, &report);

  testing::internal::CaptureStdout();
  bench::JsonReport doc("smoke");
  doc.add_row(bench::kModeDefault, bench::kBatch, result, report);
  doc.finish();
  const std::string out = testing::internal::GetCapturedStdout();

  EXPECT_EQ(out.rfind("{\"bench\":\"smoke\",\"rows\":[", 0), 0u);
  EXPECT_NE(out.find("\"mode\":\"Default\""), std::string::npos);
  EXPECT_NE(out.find("\"scheduler\":\"BATCH\""), std::string::npos);
  EXPECT_NE(out.find("\"egress_mpps\":"), std::string::npos);
  EXPECT_NE(out.find("\"report\":{"), std::string::npos);
}

}  // namespace
