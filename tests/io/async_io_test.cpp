#include "io/async_io.hpp"

#include <gtest/gtest.h>

namespace nfv::io {
namespace {

BlockDevice::Config slow_disk() {
  BlockDevice::Config cfg;
  cfg.base_latency = 1000;
  cfg.bytes_per_cycle = 1.0;
  return cfg;
}

AsyncIoEngine::Config double_buffered(std::uint64_t buffer_bytes = 1024) {
  AsyncIoEngine::Config cfg;
  cfg.mode = AsyncIoEngine::Mode::kDoubleBuffered;
  cfg.buffer_bytes = buffer_bytes;
  return cfg;
}

TEST(AsyncIo, SmallWritesDoNotBlock) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.write(100);
  io.write(100);
  EXPECT_FALSE(io.would_block());
  engine.run();
  EXPECT_EQ(io.bytes_written(), 200u);
}

TEST(AsyncIo, BufferFullTriggersFlush) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.write(1024);  // fills the active buffer exactly
  EXPECT_FALSE(io.would_block());  // swapped to the second buffer
  EXPECT_EQ(io.flushes(), 1u);
  engine.run();
  EXPECT_EQ(dev.requests(), 1u);
  EXPECT_EQ(dev.bytes_transferred(), 1024u);
}

TEST(AsyncIo, BothBuffersFullBlocks) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.write(1024);  // flush 1 in flight
  io.write(1024);  // second buffer now full too
  EXPECT_TRUE(io.would_block());
  EXPECT_EQ(io.block_transitions(), 1u);
}

TEST(AsyncIo, UnblockCallbackFiresWhenFlushCompletes) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  int unblocks = 0;
  io.set_unblock_callback([&] { ++unblocks; });
  io.write(1024);
  io.write(1024);
  ASSERT_TRUE(io.would_block());
  engine.run();
  EXPECT_FALSE(io.would_block());
  EXPECT_EQ(unblocks, 1);
  EXPECT_EQ(dev.requests(), 2u);  // the second buffer flushed back-to-back
}

TEST(AsyncIo, WriteCallbackFiresOnDeviceCompletion) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(100));
  Cycles done_at = -1;
  io.write(100, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_EQ(done_at, 1000 + 100);
}

TEST(AsyncIo, OverlapKeepsComputeRunning) {
  // The double buffer's whole point: with writes below 2x buffer, the
  // caller never observes would_block even while the disk is busy.
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1000));
  bool ever_blocked = false;
  for (int round = 0; round < 50; ++round) {
    engine.schedule_at(round * 10000, [&] {
      io.write(500);
      ever_blocked |= io.would_block();
    });
  }
  engine.run();
  EXPECT_FALSE(ever_blocked);
  EXPECT_EQ(io.bytes_written(), 25000u);
}

TEST(AsyncIo, SynchronousModeBlocksPerWrite) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine::Config cfg;
  cfg.mode = AsyncIoEngine::Mode::kSynchronous;
  AsyncIoEngine io(engine, dev, cfg);
  int unblocks = 0;
  io.set_unblock_callback([&] { ++unblocks; });
  io.write(10);
  EXPECT_TRUE(io.would_block());
  engine.run();
  EXPECT_FALSE(io.would_block());
  EXPECT_EQ(unblocks, 1);
  io.write(10);
  EXPECT_TRUE(io.would_block());
  engine.run();
  EXPECT_EQ(unblocks, 2);
}

TEST(AsyncIo, ReadsNeverBlock) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(64));
  Cycles read_done = -1;
  io.read(512, [&] { read_done = engine.now(); });
  EXPECT_FALSE(io.would_block());
  engine.run();
  EXPECT_EQ(read_done, 1000 + 512);
  EXPECT_EQ(io.reads(), 1u);
}

TEST(AsyncIo, PeriodicFlushBoundsLatency) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  auto cfg = double_buffered(1 << 20);  // never fills
  cfg.flush_interval = 5000;
  AsyncIoEngine io(engine, dev, cfg);
  Cycles done_at = -1;
  io.write(10, [&] { done_at = engine.now(); });
  engine.run_until(100'000);
  // Flushed by the timer at t=5000, completes 1010 cycles later.
  EXPECT_EQ(done_at, 5000 + 1000 + 10);
}

TEST(AsyncIo, AccumulatedBytesFlushAsOneBatch) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1000));
  for (int i = 0; i < 10; ++i) io.write(100);  // exactly one buffer
  engine.run();
  EXPECT_EQ(dev.requests(), 1u);  // batched, not 10 requests
  EXPECT_EQ(dev.bytes_transferred(), 1000u);
  EXPECT_EQ(io.writes(), 10u);
}

// -- storage fault domain (DESIGN.md §12) ------------------------------------

TEST(AsyncIoFault, DeviceErrorRetriesWithBackoffThenSucceeds) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.set_retry(/*max_attempts=*/2, /*backoff=*/1000, /*multiplier=*/2.0,
               /*jitter=*/0.0);
  dev.inject_device_fault(fault::DeviceFaultKind::kError, 0.0);
  engine.schedule_at(2500, [&] {
    dev.restore_device_fault(fault::DeviceFaultKind::kError);
  });
  Cycles done_at = -1;
  io.write(1024, [&] { done_at = engine.now(); });
  engine.run();
  // Attempt 1 errors at 1000+1024 = 2024; with zero jitter the retry is
  // re-issued at 3024 and completes healthy 2024 cycles later.
  EXPECT_EQ(done_at, 5048);
  EXPECT_EQ(io.retries(), 1u);
  EXPECT_EQ(io.failures(), 0u);
  EXPECT_EQ(io.dropped_writes(), 0u);
  EXPECT_FALSE(io.degraded());
  EXPECT_EQ(io.live_requests(), 0u);
}

TEST(AsyncIoFault, WedgeTimesOutExhaustsBudgetAndShedsDegraded) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.set_timeout(5000);
  io.set_retry(2, 1000, 2.0, 0.0);
  io.set_on_fail(AsyncIoEngine::OnIoFail::kShed);
  int degrade_entries = 0;
  io.set_degrade_callback([&](bool entered) { degrade_entries += entered; });
  dev.inject_device_fault(fault::DeviceFaultKind::kWedge, 0.0);
  bool write_done = false;
  io.write(1024, [&] { write_done = true; });
  EXPECT_EQ(io.live_requests(), 1u);
  engine.run_until(12'000);
  // Deadline at 5000, retry at 6000, deadline again at 11000: budget gone.
  EXPECT_EQ(io.timeouts(), 2u);
  EXPECT_EQ(io.retries(), 1u);
  EXPECT_EQ(io.failures(), 1u);
  EXPECT_TRUE(io.degraded());
  EXPECT_EQ(degrade_entries, 1);
  EXPECT_EQ(io.dropped_writes(), 1u);
  EXPECT_EQ(io.shed_bytes(), 1024u);
  EXPECT_FALSE(io.would_block());  // shed mode never blocks the NF
  EXPECT_FALSE(write_done);        // the data was lost, not delivered
  // The timed-out attempts were withdrawn from the device too.
  EXPECT_EQ(dev.cancelled_requests(), 2u);
}

TEST(AsyncIoFault, BlockedNfResumesExactlyOnceAfterWedgeClears) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.set_timeout(5000);
  io.set_retry(2, 1000, 2.0, 0.0);
  io.set_on_fail(AsyncIoEngine::OnIoFail::kBlock);
  int unblocks = 0;
  io.set_unblock_callback([&] { ++unblocks; });
  dev.inject_device_fault(fault::DeviceFaultKind::kWedge, 0.0);
  io.write(1024);  // flush 1, held by the wedge
  io.write(1024);  // second buffer full: the NF must yield
  ASSERT_TRUE(io.would_block());
  // Budget exhausts at 11000 (parked, degraded); the device recovers at
  // 12000 and the next recovery probe re-issues the parked flush.
  engine.schedule_at(12'000, [&] {
    dev.restore_device_fault(fault::DeviceFaultKind::kWedge);
  });
  engine.run();
  EXPECT_FALSE(io.would_block());
  EXPECT_EQ(unblocks, 1);  // resumed exactly once
  EXPECT_FALSE(io.degraded());
  EXPECT_EQ(io.dropped_writes(), 0u);  // parked data was delivered, not lost
  EXPECT_EQ(io.bytes_written(), 2048u);
  EXPECT_EQ(io.live_requests(), 0u);
  EXPECT_GE(io.probes(), 1u);
}

TEST(AsyncIoFault, ReadFailureCallbackFiresAfterRetryBudget) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.set_retry(2, 1000, 2.0, 0.0);
  dev.inject_device_fault(fault::DeviceFaultKind::kError, 0.0);
  bool done = false, failed = false;
  io.read(100, [&] { done = true; }, [&] { failed = true; });
  engine.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(failed);  // the caller observes the error instead of hanging
  EXPECT_EQ(io.failures(), 1u);
  EXPECT_EQ(io.retries(), 1u);
  EXPECT_FALSE(io.degraded());  // reads don't degrade the write path
}

TEST(AsyncIoFault, DestructorCancelsInFlightRequestsAndDeadlines) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  {
    auto cfg = double_buffered(1024);
    cfg.flush_interval = 5000;
    AsyncIoEngine io(engine, dev, cfg);
    io.set_timeout(5000);
    io.write(1024);  // flush in flight with an armed deadline
    EXPECT_EQ(dev.inflight_requests(), 1u);
  }
  // The engine is gone: its device request was withdrawn and no deadline,
  // retry, flush-timer or probe event may fire into freed memory.
  EXPECT_EQ(dev.cancelled_requests(), 1u);
  engine.run();  // must terminate without touching the dead engine
  EXPECT_EQ(dev.inflight_requests(), 0u);
}

}  // namespace
}  // namespace nfv::io
