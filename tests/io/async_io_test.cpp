#include "io/async_io.hpp"

#include <gtest/gtest.h>

namespace nfv::io {
namespace {

BlockDevice::Config slow_disk() {
  BlockDevice::Config cfg;
  cfg.base_latency = 1000;
  cfg.bytes_per_cycle = 1.0;
  return cfg;
}

AsyncIoEngine::Config double_buffered(std::uint64_t buffer_bytes = 1024) {
  AsyncIoEngine::Config cfg;
  cfg.mode = AsyncIoEngine::Mode::kDoubleBuffered;
  cfg.buffer_bytes = buffer_bytes;
  return cfg;
}

TEST(AsyncIo, SmallWritesDoNotBlock) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.write(100);
  io.write(100);
  EXPECT_FALSE(io.would_block());
  engine.run();
  EXPECT_EQ(io.bytes_written(), 200u);
}

TEST(AsyncIo, BufferFullTriggersFlush) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.write(1024);  // fills the active buffer exactly
  EXPECT_FALSE(io.would_block());  // swapped to the second buffer
  EXPECT_EQ(io.flushes(), 1u);
  engine.run();
  EXPECT_EQ(dev.requests(), 1u);
  EXPECT_EQ(dev.bytes_transferred(), 1024u);
}

TEST(AsyncIo, BothBuffersFullBlocks) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  io.write(1024);  // flush 1 in flight
  io.write(1024);  // second buffer now full too
  EXPECT_TRUE(io.would_block());
  EXPECT_EQ(io.block_transitions(), 1u);
}

TEST(AsyncIo, UnblockCallbackFiresWhenFlushCompletes) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1024));
  int unblocks = 0;
  io.set_unblock_callback([&] { ++unblocks; });
  io.write(1024);
  io.write(1024);
  ASSERT_TRUE(io.would_block());
  engine.run();
  EXPECT_FALSE(io.would_block());
  EXPECT_EQ(unblocks, 1);
  EXPECT_EQ(dev.requests(), 2u);  // the second buffer flushed back-to-back
}

TEST(AsyncIo, WriteCallbackFiresOnDeviceCompletion) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(100));
  Cycles done_at = -1;
  io.write(100, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_EQ(done_at, 1000 + 100);
}

TEST(AsyncIo, OverlapKeepsComputeRunning) {
  // The double buffer's whole point: with writes below 2x buffer, the
  // caller never observes would_block even while the disk is busy.
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1000));
  bool ever_blocked = false;
  for (int round = 0; round < 50; ++round) {
    engine.schedule_at(round * 10000, [&] {
      io.write(500);
      ever_blocked |= io.would_block();
    });
  }
  engine.run();
  EXPECT_FALSE(ever_blocked);
  EXPECT_EQ(io.bytes_written(), 25000u);
}

TEST(AsyncIo, SynchronousModeBlocksPerWrite) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine::Config cfg;
  cfg.mode = AsyncIoEngine::Mode::kSynchronous;
  AsyncIoEngine io(engine, dev, cfg);
  int unblocks = 0;
  io.set_unblock_callback([&] { ++unblocks; });
  io.write(10);
  EXPECT_TRUE(io.would_block());
  engine.run();
  EXPECT_FALSE(io.would_block());
  EXPECT_EQ(unblocks, 1);
  io.write(10);
  EXPECT_TRUE(io.would_block());
  engine.run();
  EXPECT_EQ(unblocks, 2);
}

TEST(AsyncIo, ReadsNeverBlock) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(64));
  Cycles read_done = -1;
  io.read(512, [&] { read_done = engine.now(); });
  EXPECT_FALSE(io.would_block());
  engine.run();
  EXPECT_EQ(read_done, 1000 + 512);
  EXPECT_EQ(io.reads(), 1u);
}

TEST(AsyncIo, PeriodicFlushBoundsLatency) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  auto cfg = double_buffered(1 << 20);  // never fills
  cfg.flush_interval = 5000;
  AsyncIoEngine io(engine, dev, cfg);
  Cycles done_at = -1;
  io.write(10, [&] { done_at = engine.now(); });
  engine.run_until(100'000);
  // Flushed by the timer at t=5000, completes 1010 cycles later.
  EXPECT_EQ(done_at, 5000 + 1000 + 10);
}

TEST(AsyncIo, AccumulatedBytesFlushAsOneBatch) {
  sim::Engine engine;
  BlockDevice dev(engine, slow_disk());
  AsyncIoEngine io(engine, dev, double_buffered(1000));
  for (int i = 0; i < 10; ++i) io.write(100);  // exactly one buffer
  engine.run();
  EXPECT_EQ(dev.requests(), 1u);  // batched, not 10 requests
  EXPECT_EQ(dev.bytes_transferred(), 1000u);
  EXPECT_EQ(io.writes(), 10u);
}

}  // namespace
}  // namespace nfv::io
