#include "io/block_device.hpp"

#include <gtest/gtest.h>

namespace nfv::io {
namespace {

BlockDevice::Config fast_config() {
  BlockDevice::Config cfg;
  cfg.base_latency = 100;
  cfg.bytes_per_cycle = 1.0;
  return cfg;
}

TEST(BlockDevice, CompletionAfterLatencyPlusTransfer) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  Cycles done_at = -1;
  dev.submit(50, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_EQ(done_at, 150);  // 100 latency + 50 bytes at 1 B/cycle
}

TEST(BlockDevice, RequestsServicedSerially) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  Cycles first = -1, second = -1;
  dev.submit(100, [&] { first = engine.now(); });
  dev.submit(100, [&] { second = engine.now(); });
  engine.run();
  EXPECT_EQ(first, 200);
  EXPECT_EQ(second, 400);  // queued behind the first
}

TEST(BlockDevice, CompletionOrderIsFifo) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  std::vector<int> order;
  dev.submit(1000, [&] { order.push_back(1); });
  dev.submit(1, [&] { order.push_back(2); });  // small but behind
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(BlockDevice, IdleGapResetsQueue) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  Cycles done = -1;
  dev.submit(100, [&] {});
  engine.run();
  // Device idle since t=200; a request at t=1000 starts immediately.
  engine.schedule_at(1000, [&] { dev.submit(10, [&] { done = engine.now(); }); });
  engine.run();
  EXPECT_EQ(done, 1110);
}

TEST(BlockDevice, StatsAccumulate) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  dev.submit(10, [] {});
  dev.submit(20, [] {});
  engine.run();
  EXPECT_EQ(dev.requests(), 2u);
  EXPECT_EQ(dev.bytes_transferred(), 30u);
  EXPECT_EQ(dev.busy_cycles(), 100 + 10 + 100 + 20);
}

TEST(BlockDevice, BandwidthTermScales) {
  sim::Engine engine;
  BlockDevice::Config cfg;
  cfg.base_latency = 0;
  cfg.bytes_per_cycle = 0.5;
  BlockDevice dev(engine, cfg);
  Cycles done = -1;
  dev.submit(100, [&] { done = engine.now(); });
  engine.run();
  EXPECT_EQ(done, 200);  // 100 B at 0.5 B/cycle
}

}  // namespace
}  // namespace nfv::io
