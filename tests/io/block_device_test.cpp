#include "io/block_device.hpp"

#include <gtest/gtest.h>

namespace nfv::io {
namespace {

BlockDevice::Config fast_config() {
  BlockDevice::Config cfg;
  cfg.base_latency = 100;
  cfg.bytes_per_cycle = 1.0;
  return cfg;
}

TEST(BlockDevice, CompletionAfterLatencyPlusTransfer) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  Cycles done_at = -1;
  dev.submit(50, [&](const IoResult&) { done_at = engine.now(); });
  engine.run();
  EXPECT_EQ(done_at, 150);  // 100 latency + 50 bytes at 1 B/cycle
}

TEST(BlockDevice, RequestsServicedSerially) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  Cycles first = -1, second = -1;
  dev.submit(100, [&](const IoResult&) { first = engine.now(); });
  dev.submit(100, [&](const IoResult&) { second = engine.now(); });
  engine.run();
  EXPECT_EQ(first, 200);
  EXPECT_EQ(second, 400);  // queued behind the first
}

TEST(BlockDevice, CompletionOrderIsFifo) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  std::vector<int> order;
  dev.submit(1000, [&](const IoResult&) { order.push_back(1); });
  dev.submit(1, [&](const IoResult&) { order.push_back(2); });  // small but behind
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(BlockDevice, IdleGapResetsQueue) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  Cycles done = -1;
  dev.submit(100, [](const IoResult&) {});
  engine.run();
  // Device idle since t=200; a request at t=1000 starts immediately.
  engine.schedule_at(1000, [&] { dev.submit(10, [&](const IoResult&) { done = engine.now(); }); });
  engine.run();
  EXPECT_EQ(done, 1110);
}

TEST(BlockDevice, StatsAccumulate) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  dev.submit(10, [](const IoResult&) {});
  dev.submit(20, [](const IoResult&) {});
  engine.run();
  EXPECT_EQ(dev.requests(), 2u);
  EXPECT_EQ(dev.bytes_transferred(), 30u);
  EXPECT_EQ(dev.busy_cycles(), 100 + 10 + 100 + 20);
}

TEST(BlockDevice, BandwidthTermScales) {
  sim::Engine engine;
  BlockDevice::Config cfg;
  cfg.base_latency = 0;
  cfg.bytes_per_cycle = 0.5;
  BlockDevice dev(engine, cfg);
  Cycles done = -1;
  dev.submit(100, [&](const IoResult&) { done = engine.now(); });
  engine.run();
  EXPECT_EQ(done, 200);  // 100 B at 0.5 B/cycle
}

// -- storage fault domain (DESIGN.md §12) ------------------------------------

TEST(BlockDeviceFault, SlowWindowScalesSetupLatency) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  dev.inject_device_fault(fault::DeviceFaultKind::kSlow, 3.0);
  Cycles slow = -1, healthy = -1;
  IoResult last;
  dev.submit(50, [&](const IoResult& r) { slow = engine.now(); last = r; });
  engine.run();
  EXPECT_EQ(slow, 350);  // 3 * 100 setup + 50 transfer
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(last.bytes_done, 50u);

  dev.restore_device_fault(fault::DeviceFaultKind::kSlow);
  dev.submit(50, [&](const IoResult&) { healthy = engine.now(); });
  engine.run();
  EXPECT_EQ(healthy, 350 + 150);  // back to the exact integer path
}

TEST(BlockDeviceFault, ErrorWindowFailsWithFullServiceTime) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  dev.inject_device_fault(fault::DeviceFaultKind::kError, 0.0);
  Cycles done = -1;
  IoResult last;
  dev.submit(50, [&](const IoResult& r) { done = engine.now(); last = r; });
  engine.run();
  // The device spins the full service time before reporting the error.
  EXPECT_EQ(done, 150);
  EXPECT_EQ(last.status, IoStatus::kError);
  EXPECT_EQ(last.bytes_done, 0u);
  EXPECT_EQ(dev.failed_requests(), 1u);
}

TEST(BlockDeviceFault, TornWindowReportsPartialBytes) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  dev.inject_device_fault(fault::DeviceFaultKind::kTorn, 0.25);
  IoResult last;
  dev.submit(100, [&](const IoResult& r) { last = r; });
  engine.run();
  EXPECT_EQ(last.status, IoStatus::kTorn);
  EXPECT_EQ(last.bytes_done, 25u);
  EXPECT_EQ(dev.torn_requests(), 1u);
}

TEST(BlockDeviceFault, OutcomeSampledAtServiceStartNotCompletion) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  IoResult last;
  dev.submit(50, [&](const IoResult& r) { last = r; });
  // The window opens while the request is already being serviced: the
  // outcome it observed at service start (healthy) stands.
  engine.schedule_at(
      10, [&] { dev.inject_device_fault(fault::DeviceFaultKind::kError, 0.0); });
  engine.run();
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(dev.failed_requests(), 0u);
}

TEST(BlockDeviceFault, WedgeHoldsInFlightAndRestoreReplaysFifo) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  std::vector<Cycles> done;
  dev.submit(100, [&](const IoResult&) { done.push_back(engine.now()); });
  engine.schedule_at(50, [&] {
    dev.inject_device_fault(fault::DeviceFaultKind::kWedge, 0.0);
    // A wedged device still accepts submissions; they just wait.
    dev.submit(10, [&](const IoResult&) { done.push_back(engine.now()); });
  });
  engine.run();
  EXPECT_TRUE(done.empty());  // nothing completes during the window
  EXPECT_EQ(dev.inflight_requests(), 2u);
  EXPECT_TRUE(dev.wedged());

  engine.schedule_at(
      500, [&] { dev.restore_device_fault(fault::DeviceFaultKind::kWedge); });
  engine.run();
  // Held requests restart from scratch at restore, in submission order.
  EXPECT_EQ(done, (std::vector<Cycles>{700, 810}));
  // The abandoned first attempt still counted as device-busy time.
  EXPECT_EQ(dev.busy_cycles(), 200 + 200 + 110);
  EXPECT_FALSE(dev.wedged());
}

TEST(BlockDeviceFault, CancelSuppressesCallback) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  bool fired = false;
  const auto id = dev.submit(50, [&](const IoResult&) { fired = true; });
  EXPECT_TRUE(dev.cancel(id));
  EXPECT_FALSE(dev.cancel(id));  // already gone
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(dev.cancelled_requests(), 1u);
  EXPECT_EQ(dev.inflight_requests(), 0u);
}

TEST(BlockDeviceFault, CancelWorksOnWedgeHeldRequest) {
  sim::Engine engine;
  BlockDevice dev(engine, fast_config());
  dev.inject_device_fault(fault::DeviceFaultKind::kWedge, 0.0);
  bool fired = false;
  const auto id = dev.submit(50, [&](const IoResult&) { fired = true; });
  EXPECT_TRUE(dev.cancel(id));
  dev.restore_device_fault(fault::DeviceFaultKind::kWedge);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(dev.inflight_requests(), 0u);
}

}  // namespace
}  // namespace nfv::io
