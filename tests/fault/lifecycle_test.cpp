#include "fault/lifecycle.hpp"

#include <gtest/gtest.h>

namespace nfv::fault {
namespace {

TEST(Lifecycle, StateNames) {
  EXPECT_STREQ(to_string(NfLifecycle::kRunning), "RUNNING");
  EXPECT_STREQ(to_string(NfLifecycle::kDead), "DEAD");
  EXPECT_STREQ(to_string(NfLifecycle::kRestarting), "RESTARTING");
  EXPECT_STREQ(to_string(NfLifecycle::kWarming), "WARMING");
}

TEST(Lifecycle, PolicyNames) {
  EXPECT_STREQ(to_string(DeadNfPolicy::kBackpressure), "backpressure");
  EXPECT_STREQ(to_string(DeadNfPolicy::kBypass), "bypass");
  EXPECT_STREQ(to_string(DeadNfPolicy::kBuffer), "buffer");
}

// The documented watchdog timing bounds (DESIGN.md §11) rest on these
// defaults; changing them invalidates the detection-latency guarantees
// stated there, so pin them.
TEST(Lifecycle, ConfigDefaults) {
  LifecycleConfig cfg;
  EXPECT_FALSE(cfg.enabled);
  EXPECT_EQ(cfg.watchdog_period, 260'000);        // 100 us at 2.6 GHz
  EXPECT_EQ(cfg.stuck_scans, 3u);
  EXPECT_EQ(cfg.default_restart_delay, 2'600'000);  // 1 ms
  EXPECT_EQ(cfg.warm_duration, 2'600'000);          // 1 ms
  EXPECT_EQ(cfg.default_dead_policy, DeadNfPolicy::kBackpressure);
}

}  // namespace
}  // namespace nfv::fault
