#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace nfv::fault {
namespace {

TEST(FaultPlan, EmptyByDefault) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.specs().size(), 0u);
}

TEST(FaultPlan, AddAllKinds) {
  FaultPlan plan;
  plan.add_crash(/*nf=*/0, /*at=*/1000, /*restart_after=*/500);
  plan.add_stall(/*nf=*/1, /*at=*/2000);
  plan.add_degrade(/*nf=*/2, /*at=*/3000, /*factor=*/2.5, /*duration=*/400);
  ASSERT_EQ(plan.specs().size(), 3u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kStall);
  EXPECT_EQ(plan.specs()[1].restart_after, kDefaultRestart);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(plan.specs()[2].factor, 2.5);
}

TEST(FaultPlan, RejectsNonPositiveRestart) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_crash(0, 1000, 0), FaultError);
  // The sentinel (use the manager's default delay) is accepted.
  plan.add_crash(0, 1000, kDefaultRestart);
  EXPECT_EQ(plan.specs().size(), 1u);
}

TEST(FaultPlan, RejectsBadDegradeParameters) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_degrade(0, 1000, /*factor=*/0.0, 100), FaultError);
  EXPECT_THROW(plan.add_degrade(0, 1000, /*factor=*/-2.0, 100), FaultError);
  // Zero duration means "until the end of the run" and is fine.
  plan.add_degrade(0, 1000, 2.0, 0);
  EXPECT_EQ(plan.specs().size(), 1u);
}

TEST(FaultPlan, RejectsOverlappingWindowsOnOneNf) {
  FaultPlan plan;
  plan.add_degrade(/*nf=*/0, /*at=*/1000, 2.0, /*duration=*/500);
  // [1200, ...) starts inside [1000, 1500).
  EXPECT_THROW(plan.add_crash(0, 1200, 100), FaultError);
  // Same instant on the same NF also overlaps.
  EXPECT_THROW(plan.add_stall(0, 1000), FaultError);
  // A different NF at the same time is fine, as is the same NF after the
  // window closes.
  plan.add_crash(/*nf=*/1, 1200, 100);
  plan.add_stall(/*nf=*/0, /*at=*/1500);
  EXPECT_EQ(plan.specs().size(), 3u);
}

TEST(FaultPlan, CrashWindowsRunUntilTheRestart) {
  FaultPlan plan;
  plan.add_crash(0, 1000, 100);  // nominal outage [1000, 1100)
  EXPECT_THROW(plan.add_crash(0, 1050, 100), FaultError);
  plan.add_crash(0, 1100, 100);  // back-to-back is fine (half-open windows)
  EXPECT_EQ(plan.specs().size(), 2u);
}

TEST(FaultPlan, DefaultRestartIsOpenEnded) {
  FaultPlan plan;
  plan.add_stall(0, 1000);  // restart delay unknown here: window [1000, inf)
  EXPECT_THROW(plan.add_crash(0, 1'000'000'000, 100), FaultError);
  EXPECT_EQ(plan.specs().size(), 1u);
}

// -- storage fault domain (DESIGN.md §12) ------------------------------------

TEST(FaultPlanDevice, AddAllDeviceKinds) {
  FaultPlan plan;
  plan.add_device_slow(1000, 8.0, 500);
  plan.add_device_error(2000, 500);
  plan.add_device_torn(3000, 0.5, 500);
  plan.add_device_wedge(4000, 500);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_TRUE(plan.has_device_faults());
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_EQ(spec.kind, FaultKind::kDevice);
  }
  EXPECT_EQ(plan.specs()[0].device, DeviceFaultKind::kSlow);
  EXPECT_DOUBLE_EQ(plan.specs()[0].factor, 8.0);
  EXPECT_EQ(plan.specs()[3].device, DeviceFaultKind::kWedge);
}

TEST(FaultPlanDevice, NfOnlyPlanHasNoDeviceFaults) {
  FaultPlan plan;
  plan.add_crash(0, 1000, 100);
  EXPECT_FALSE(plan.has_device_faults());
}

TEST(FaultPlanDevice, RejectsBadParameters) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_device_slow(1000, /*factor=*/0.0, 100), FaultError);
  EXPECT_THROW(plan.add_device_slow(1000, /*factor=*/-3.0, 100), FaultError);
  EXPECT_THROW(plan.add_device_torn(1000, /*fraction=*/-0.1, 100), FaultError);
  // A torn window landing all the bytes is not torn; the fraction must be
  // strictly below 1.
  EXPECT_THROW(plan.add_device_torn(1000, /*fraction=*/1.0, 100), FaultError);
  EXPECT_THROW(plan.add_device_wedge(-5, 100), FaultError);
  EXPECT_TRUE(plan.empty());
  plan.add_device_torn(1000, /*fraction=*/0.0, 100);  // nothing lands: valid
  EXPECT_EQ(plan.size(), 1u);
}

TEST(FaultPlanDevice, RejectsOverlappingDeviceWindows) {
  FaultPlan plan;
  plan.add_device_wedge(1000, 500);  // [1000, 1500)
  EXPECT_THROW(plan.add_device_error(1200, 100), FaultError);
  EXPECT_THROW(plan.add_device_slow(1000, 2.0, 100), FaultError);
  // Half-open windows: back-to-back is fine.
  plan.add_device_error(1500, 100);
  EXPECT_EQ(plan.size(), 2u);
}

TEST(FaultPlanDevice, PermanentWindowBlocksEverythingAfter) {
  FaultPlan plan;
  plan.add_device_wedge(1000);  // duration 0: wedged until the end
  EXPECT_THROW(plan.add_device_error(1'000'000'000, 100), FaultError);
  EXPECT_EQ(plan.size(), 1u);
}

TEST(FaultPlanDevice, DeviceWindowsAreSeparateFromNfWindows) {
  FaultPlan plan;
  plan.add_degrade(/*nf=*/0, 1000, 2.0, 500);
  // The device is its own overlap domain: a device window under an NF
  // window is fine (and vice versa).
  plan.add_device_wedge(1000, 500);
  plan.add_crash(/*nf=*/1, 1200, 100);
  EXPECT_EQ(plan.size(), 3u);
}

TEST(FaultSpec, WindowEnd) {
  FaultSpec crash{FaultKind::kCrash, 0, 1000, 500, 1.0, 0};
  EXPECT_EQ(crash.window_end(), 1500);
  FaultSpec degrade{FaultKind::kDegrade, 0, 1000, kDefaultRestart, 2.0, 300};
  EXPECT_EQ(degrade.window_end(), 1300);
}

}  // namespace
}  // namespace nfv::fault
