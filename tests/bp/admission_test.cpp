// AdmissionController unit tests (DESIGN.md §17): shed-ladder ordering by
// utility, engage/release hysteresis with minimum hold, and the trickle
// token bucket's math.
#include "bp/admission.hpp"

#include <gtest/gtest.h>

namespace nfv::bp {
namespace {

AdmissionConfig tight_config() {
  AdmissionConfig cfg;
  cfg.engage_watermark = 0.80;
  cfg.release_watermark = 0.50;
  cfg.min_hold_evals = 2;
  cfg.shed_admit_pps = 1000.0;
  cfg.shed_burst = 4.0;
  cfg.cpu_hz = 1e6;  // 1000 cycles per token at 1000 pps.
  return cfg;
}

std::vector<AdmissionInput> one_group(double occupancy, bool violating,
                                      std::size_t chains) {
  std::vector<AdmissionInput> in;
  for (std::size_t c = 0; c < chains; ++c) {
    in.push_back({static_cast<flow::ChainId>(c), /*group=*/7, occupancy,
                  violating});
  }
  return in;
}

TEST(Admission, UnclassedChainsAlwaysAdmit) {
  AdmissionController adm(tight_config());
  EXPECT_FALSE(adm.has_class(0));
  EXPECT_TRUE(adm.admit(0, 0));
  EXPECT_TRUE(adm.admit(42, 100));
  EXPECT_EQ(adm.total_discards(), 0u);
}

TEST(Admission, ClassRegistrationIsIdempotentPerChain) {
  AdmissionController adm(tight_config());
  adm.set_class(3, {2.0, 5.0});
  adm.set_class(3, {1.0, 9.0});
  EXPECT_EQ(adm.class_count(), 1u);
  ASSERT_NE(adm.class_of(3), nullptr);
  EXPECT_DOUBLE_EQ(adm.class_of(3)->utility, 9.0);
}

TEST(Admission, ShedsLowestUtilityFirstOneRungPerHold) {
  AdmissionController adm(tight_config());
  adm.set_class(0, {1.0, 10.0});  // gold
  adm.set_class(1, {1.0, 2.0});   // bulk
  adm.set_class(2, {1.0, 5.0});   // mid

  adm.evaluate(0, one_group(0.9, false, 3));
  EXPECT_FALSE(adm.engaged(0));
  EXPECT_FALSE(adm.engaged(2));
  EXPECT_TRUE(adm.engaged(1)) << "lowest utility sheds first";

  // The hold countdown (2 evals) blocks the next rung.
  adm.evaluate(1, one_group(0.9, false, 3));
  adm.evaluate(2, one_group(0.9, false, 3));
  EXPECT_FALSE(adm.engaged(2));

  adm.evaluate(3, one_group(0.9, false, 3));
  EXPECT_TRUE(adm.engaged(2)) << "next-lowest utility sheds next";
  EXPECT_FALSE(adm.engaged(0));
}

TEST(Admission, ReleasesHighestUtilityFirst) {
  AdmissionConfig cfg = tight_config();
  cfg.min_hold_evals = 0;
  AdmissionController adm(cfg);
  adm.set_class(0, {1.0, 10.0});
  adm.set_class(1, {1.0, 2.0});
  adm.evaluate(0, one_group(0.9, false, 2));
  adm.evaluate(1, one_group(0.9, false, 2));
  ASSERT_TRUE(adm.engaged(0));
  ASSERT_TRUE(adm.engaged(1));

  adm.evaluate(2, one_group(0.1, false, 2));
  EXPECT_FALSE(adm.engaged(0)) << "highest utility restored first";
  EXPECT_TRUE(adm.engaged(1));
  adm.evaluate(3, one_group(0.1, false, 2));
  EXPECT_FALSE(adm.engaged(1));
  EXPECT_EQ(adm.stats(0).engagements, 1u);
  EXPECT_EQ(adm.stats(0).releases, 1u);
}

TEST(Admission, HysteresisBandHoldsBetweenWatermarks) {
  AdmissionConfig cfg = tight_config();
  cfg.min_hold_evals = 0;
  AdmissionController adm(cfg);
  adm.set_class(0, {1.0, 1.0});
  adm.evaluate(0, one_group(0.85, false, 1));
  ASSERT_TRUE(adm.engaged(0));
  // Occupancy in (release, engage): neither escalate nor release.
  for (int i = 1; i <= 5; ++i) adm.evaluate(i, one_group(0.65, false, 1));
  EXPECT_TRUE(adm.engaged(0));
  adm.evaluate(6, one_group(0.4, false, 1));
  EXPECT_FALSE(adm.engaged(0));
}

TEST(Admission, SloOnlyPressureNeverShedsTheViolatingChain) {
  AdmissionConfig cfg = tight_config();
  cfg.min_hold_evals = 0;
  AdmissionController adm(cfg);
  adm.set_class(0, {1.0, 10.0});
  adm.set_class(1, {1.0, 2.0});
  // Only the gold chain violates; the queue itself is fine. The ladder
  // must shed bulk and then stall — shedding the chain being rescued
  // would just burn its goodput.
  std::vector<AdmissionInput> in = {{0, 7, 0.2, true}, {1, 7, 0.2, false}};
  for (int i = 0; i < 6; ++i) adm.evaluate(i, in);
  EXPECT_TRUE(adm.engaged(1));
  EXPECT_FALSE(adm.engaged(0));
  // Genuine queue overload may shed anything, violating or not.
  std::vector<AdmissionInput> flooded = {{0, 7, 0.95, true},
                                         {1, 7, 0.95, false}};
  for (int i = 6; i < 12; ++i) adm.evaluate(i, flooded);
  EXPECT_TRUE(adm.engaged(0));
}

TEST(Admission, TrickleBucketRefillsAtConfiguredRate) {
  AdmissionController adm(tight_config());
  adm.set_class(0, {1.0, 1.0});
  adm.evaluate(0, one_group(0.9, false, 1));
  ASSERT_TRUE(adm.engaged(0));

  // Engage fills the bucket (burst 4): four admits, then discards.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(adm.admit(0, 0));
  EXPECT_FALSE(adm.admit(0, 0));
  EXPECT_EQ(adm.stats(0).trickle_admits, 4u);
  EXPECT_EQ(adm.stats(0).discards, 1u);

  // 1000 cycles = exactly one token at 1000 pps on the 1 MHz clock.
  EXPECT_TRUE(adm.admit(0, 1000));
  EXPECT_FALSE(adm.admit(0, 1000));

  // Refill is capped at the burst depth.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(adm.admit(0, 1'000'000));
  EXPECT_FALSE(adm.admit(0, 1'000'000));
  EXPECT_EQ(adm.total_discards(), 3u);
}

TEST(Admission, SeparateGroupsRunIndependentLadders) {
  AdmissionConfig cfg = tight_config();
  cfg.min_hold_evals = 0;
  AdmissionController adm(cfg);
  adm.set_class(0, {1.0, 1.0});
  adm.set_class(1, {1.0, 1.0});
  std::vector<AdmissionInput> in = {{0, 7, 0.9, false}, {1, 9, 0.1, false}};
  adm.evaluate(0, in);
  EXPECT_TRUE(adm.engaged(0));
  EXPECT_FALSE(adm.engaged(1)) << "group 9 is unpressured";
}

}  // namespace
}  // namespace nfv::bp
