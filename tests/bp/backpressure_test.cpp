#include "bp/backpressure.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pktio/mempool.hpp"

namespace nfv::bp {
namespace {

// Builds the Fig. 8 topology: chain1 = NF0->NF1->NF3, chain2 = NF0->NF2->NF3.
class BackpressureTest : public ::testing::Test {
 protected:
  BackpressureTest() {
    chain1_ = chains_.add("chain1", {0, 1, 3});
    chain2_ = chains_.add("chain2", {0, 2, 3});
    bp_ = std::make_unique<BackpressureManager>(chains_, 4, config_);
  }

  /// Push the ring to `n` entries with the given head enqueue time.
  void fill(pktio::Ring& ring, std::size_t n, Cycles when) {
    while (ring.size() < n) {
      pktio::Mbuf* m = pool_.alloc();
      m->enqueue_time = when;
      ring.enqueue(m);
    }
  }
  void drain(pktio::Ring& ring, std::size_t down_to) {
    while (ring.size() > down_to) pool_.free(ring.dequeue());
  }

  flow::ChainRegistry chains_;
  flow::ChainId chain1_ = 0, chain2_ = 0;
  BpConfig config_{.queuing_time_threshold = 1000};
  std::unique_ptr<BackpressureManager> bp_;
  pktio::MbufPool pool_{4096};
};

TEST_F(BackpressureTest, StartsClear) {
  for (flow::NfId nf = 0; nf < 4; ++nf) {
    EXPECT_EQ(bp_->state(nf), ThrottleState::kClear);
  }
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->chain_throttled(chain2_));
}

TEST_F(BackpressureTest, EnqueueFeedbackMovesToWatch) {
  bp_->on_enqueue_feedback(1, pktio::EnqueueResult::kOkOverloaded);
  EXPECT_EQ(bp_->state(1), ThrottleState::kWatch);
  EXPECT_EQ(bp_->stats().watch_entries, 1u);
}

TEST_F(BackpressureTest, OkFeedbackStaysClear) {
  bp_->on_enqueue_feedback(1, pktio::EnqueueResult::kOk);
  EXPECT_EQ(bp_->state(1), ThrottleState::kClear);
}

TEST_F(BackpressureTest, EvaluateEscalatesWatchToThrottleAfterThreshold) {
  pktio::Ring ring(64, 0.8, 0.6);  // high at 51
  fill(ring, 52, /*when=*/0);
  EXPECT_EQ(bp_->evaluate(1, ring, 10), ThrottleState::kWatch);
  // Head queued only 10 cycles: below the 1000-cycle threshold.
  EXPECT_EQ(bp_->evaluate(1, ring, 500), ThrottleState::kWatch);
  // Past the threshold: throttle.
  EXPECT_EQ(bp_->evaluate(1, ring, 2000), ThrottleState::kThrottle);
  EXPECT_EQ(bp_->stats().throttle_entries, 1u);
  drain(ring, 0);
}

TEST_F(BackpressureTest, ThrottleMarksExactlyChainsThroughNf) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_EQ(bp_->state(1), ThrottleState::kThrottle);
  // NF1 only carries chain1; chain2 (through NF2) must be untouched.
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->chain_throttled(chain2_));
  drain(ring, 0);
}

TEST_F(BackpressureTest, SharedNfThrottlesBothChains) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(3, ring, 10);
  bp_->evaluate(3, ring, 5000);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_TRUE(bp_->chain_throttled(chain2_));
  drain(ring, 0);
}

TEST_F(BackpressureTest, HysteresisClearsOnlyBelowLowWatermark) {
  pktio::Ring ring(64, 0.8, 0.6);  // high 51, low 38
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_EQ(bp_->state(1), ThrottleState::kThrottle);
  // Drain to between the marks: still throttled (hysteresis).
  drain(ring, 45);
  EXPECT_EQ(bp_->evaluate(1, ring, 6000), ThrottleState::kThrottle);
  // Below the low mark: cleared.
  drain(ring, 30);
  EXPECT_EQ(bp_->evaluate(1, ring, 7000), ThrottleState::kClear);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  EXPECT_EQ(bp_->stats().throttle_clears, 1u);
  drain(ring, 0);
}

TEST_F(BackpressureTest, WatchFallsBackToClear) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  ASSERT_EQ(bp_->state(1), ThrottleState::kWatch);
  drain(ring, 10);
  EXPECT_EQ(bp_->evaluate(1, ring, 20), ThrottleState::kClear);
  drain(ring, 0);
}

TEST_F(BackpressureTest, ShortBurstNeverThrottles) {
  // §3.5: "a short burst of packets causing an NF to exceed its threshold
  // may have already been processed by the time the Wakeup thread
  // considers it" — the queuing-time condition absorbs bursts.
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, /*when=*/0);
  bp_->evaluate(1, ring, 100);  // watch
  drain(ring, 0);               // burst absorbed before the next scan
  EXPECT_EQ(bp_->evaluate(1, ring, 200), ThrottleState::kClear);
  EXPECT_EQ(bp_->stats().throttle_entries, 0u);
}

TEST_F(BackpressureTest, UpstreamPauseOnlyWhenAllChainsThrottled) {
  // Throttle NF1 (chain1's middle hop): NF0 also serves chain2, so NF0
  // must NOT be paused (that would head-of-line block chain2).
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->should_pause_upstream(0));
  drain(ring, 0);
}

TEST_F(BackpressureTest, UpstreamPauseWhenEveryChainThrottledDownstream) {
  // Throttle NF3 (tail shared by both chains): NF0, NF1 and NF2 are all
  // strictly upstream of a throttling NF in every chain they serve.
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(3, ring, 10);
  bp_->evaluate(3, ring, 5000);
  EXPECT_TRUE(bp_->should_pause_upstream(0));
  EXPECT_TRUE(bp_->should_pause_upstream(1));
  EXPECT_TRUE(bp_->should_pause_upstream(2));
  // The bottleneck itself must keep running to drain.
  EXPECT_FALSE(bp_->should_pause_upstream(3));
  drain(ring, 0);
}

TEST_F(BackpressureTest, NfOutsideAnyChainNeverPaused) {
  EXPECT_FALSE(bp_->should_pause_upstream(3));
  flow::ChainRegistry empty_chains;
  BackpressureManager bp(empty_chains, 2, config_);
  EXPECT_FALSE(bp.should_pause_upstream(0));
}

TEST_F(BackpressureTest, MultipleThrottlersRequireAllToClear) {
  pktio::Ring ring1(64, 0.8, 0.6), ring3(64, 0.8, 0.6);
  fill(ring1, 52, 0);
  fill(ring3, 52, 0);
  bp_->evaluate(1, ring1, 10);
  bp_->evaluate(3, ring3, 10);
  bp_->evaluate(1, ring1, 5000);
  bp_->evaluate(3, ring3, 5000);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));  // throttled by NF1 AND NF3
  drain(ring1, 0);
  bp_->evaluate(1, ring1, 6000);  // NF1 clears
  EXPECT_TRUE(bp_->chain_throttled(chain1_));  // NF3 still throttles it
  drain(ring3, 0);
  bp_->evaluate(3, ring3, 7000);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
}

}  // namespace
}  // namespace nfv::bp
