#include "bp/backpressure.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pktio/mempool.hpp"

namespace nfv::bp {
namespace {

// Builds the Fig. 8 topology: chain1 = NF0->NF1->NF3, chain2 = NF0->NF2->NF3.
class BackpressureTest : public ::testing::Test {
 protected:
  BackpressureTest() {
    chain1_ = chains_.add("chain1", {0, 1, 3});
    chain2_ = chains_.add("chain2", {0, 2, 3});
    bp_ = std::make_unique<BackpressureManager>(chains_, 4, config_);
  }

  /// Push the ring to `n` entries with the given head enqueue time.
  void fill(pktio::Ring& ring, std::size_t n, Cycles when) {
    while (ring.size() < n) {
      pktio::Mbuf* m = pool_.alloc();
      m->enqueue_time = when;
      ring.enqueue(m);
    }
  }
  void drain(pktio::Ring& ring, std::size_t down_to) {
    while (ring.size() > down_to) pool_.free(ring.dequeue());
  }

  flow::ChainRegistry chains_;
  flow::ChainId chain1_ = 0, chain2_ = 0;
  BpConfig config_{.queuing_time_threshold = 1000};
  std::unique_ptr<BackpressureManager> bp_;
  pktio::MbufPool pool_{4096};
};

TEST_F(BackpressureTest, StartsClear) {
  for (flow::NfId nf = 0; nf < 4; ++nf) {
    EXPECT_EQ(bp_->state(nf), ThrottleState::kClear);
  }
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->chain_throttled(chain2_));
}

TEST_F(BackpressureTest, EnqueueFeedbackMovesToWatch) {
  bp_->on_enqueue_feedback(1, pktio::EnqueueResult::kOkOverloaded);
  EXPECT_EQ(bp_->state(1), ThrottleState::kWatch);
  EXPECT_EQ(bp_->stats().watch_entries, 1u);
}

TEST_F(BackpressureTest, OkFeedbackStaysClear) {
  bp_->on_enqueue_feedback(1, pktio::EnqueueResult::kOk);
  EXPECT_EQ(bp_->state(1), ThrottleState::kClear);
}

TEST_F(BackpressureTest, EvaluateEscalatesWatchToThrottleAfterThreshold) {
  pktio::Ring ring(64, 0.8, 0.6);  // high at 51
  fill(ring, 52, /*when=*/0);
  EXPECT_EQ(bp_->evaluate(1, ring, 10), ThrottleState::kWatch);
  // Head queued only 10 cycles: below the 1000-cycle threshold.
  EXPECT_EQ(bp_->evaluate(1, ring, 500), ThrottleState::kWatch);
  // Past the threshold: throttle.
  EXPECT_EQ(bp_->evaluate(1, ring, 2000), ThrottleState::kThrottle);
  EXPECT_EQ(bp_->stats().throttle_entries, 1u);
  drain(ring, 0);
}

TEST_F(BackpressureTest, ThrottleMarksExactlyChainsThroughNf) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_EQ(bp_->state(1), ThrottleState::kThrottle);
  // NF1 only carries chain1; chain2 (through NF2) must be untouched.
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->chain_throttled(chain2_));
  drain(ring, 0);
}

TEST_F(BackpressureTest, SharedNfThrottlesBothChains) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(3, ring, 10);
  bp_->evaluate(3, ring, 5000);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_TRUE(bp_->chain_throttled(chain2_));
  drain(ring, 0);
}

TEST_F(BackpressureTest, HysteresisClearsOnlyBelowLowWatermark) {
  pktio::Ring ring(64, 0.8, 0.6);  // high 51, low 38
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_EQ(bp_->state(1), ThrottleState::kThrottle);
  // Drain to between the marks: still throttled (hysteresis).
  drain(ring, 45);
  EXPECT_EQ(bp_->evaluate(1, ring, 6000), ThrottleState::kThrottle);
  // Below the low mark: cleared.
  drain(ring, 30);
  EXPECT_EQ(bp_->evaluate(1, ring, 7000), ThrottleState::kClear);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  EXPECT_EQ(bp_->stats().throttle_clears, 1u);
  drain(ring, 0);
}

TEST_F(BackpressureTest, WatchFallsBackToClear) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  ASSERT_EQ(bp_->state(1), ThrottleState::kWatch);
  drain(ring, 10);
  EXPECT_EQ(bp_->evaluate(1, ring, 20), ThrottleState::kClear);
  drain(ring, 0);
}

TEST_F(BackpressureTest, ShortBurstNeverThrottles) {
  // §3.5: "a short burst of packets causing an NF to exceed its threshold
  // may have already been processed by the time the Wakeup thread
  // considers it" — the queuing-time condition absorbs bursts.
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, /*when=*/0);
  bp_->evaluate(1, ring, 100);  // watch
  drain(ring, 0);               // burst absorbed before the next scan
  EXPECT_EQ(bp_->evaluate(1, ring, 200), ThrottleState::kClear);
  EXPECT_EQ(bp_->stats().throttle_entries, 0u);
}

TEST_F(BackpressureTest, UpstreamPauseOnlyWhenAllChainsThrottled) {
  // Throttle NF1 (chain1's middle hop): NF0 also serves chain2, so NF0
  // must NOT be paused (that would head-of-line block chain2).
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->should_pause_upstream(0));
  drain(ring, 0);
}

TEST_F(BackpressureTest, UpstreamPauseWhenEveryChainThrottledDownstream) {
  // Throttle NF3 (tail shared by both chains): NF0, NF1 and NF2 are all
  // strictly upstream of a throttling NF in every chain they serve.
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(3, ring, 10);
  bp_->evaluate(3, ring, 5000);
  EXPECT_TRUE(bp_->should_pause_upstream(0));
  EXPECT_TRUE(bp_->should_pause_upstream(1));
  EXPECT_TRUE(bp_->should_pause_upstream(2));
  // The bottleneck itself must keep running to drain.
  EXPECT_FALSE(bp_->should_pause_upstream(3));
  drain(ring, 0);
}

TEST_F(BackpressureTest, NfOutsideAnyChainNeverPaused) {
  EXPECT_FALSE(bp_->should_pause_upstream(3));
  flow::ChainRegistry empty_chains;
  BackpressureManager bp(empty_chains, 2, config_);
  EXPECT_FALSE(bp.should_pause_upstream(0));
}

TEST_F(BackpressureTest, MultipleThrottlersRequireAllToClear) {
  pktio::Ring ring1(64, 0.8, 0.6), ring3(64, 0.8, 0.6);
  fill(ring1, 52, 0);
  fill(ring3, 52, 0);
  bp_->evaluate(1, ring1, 10);
  bp_->evaluate(3, ring3, 10);
  bp_->evaluate(1, ring1, 5000);
  bp_->evaluate(3, ring3, 5000);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));  // throttled by NF1 AND NF3
  drain(ring1, 0);
  bp_->evaluate(1, ring1, 6000);  // NF1 clears
  EXPECT_TRUE(bp_->chain_throttled(chain1_));  // NF3 still throttles it
  drain(ring3, 0);
  bp_->evaluate(3, ring3, 7000);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
}

TEST_F(BackpressureTest, ExactlyAtHighWatermarkCountsAsAbove) {
  // Boundary semantics: enqueue feedback and evaluate() both treat
  // "qlen == HIGH_WATER_MARK" as overloaded (count >= mark, §3.5's
  // "below the high watermark" admission test is strict).
  pktio::Ring ring(64, 0.8, 0.6);
  ASSERT_EQ(ring.high_watermark(), 51u);
  fill(ring, 50, /*when=*/0);  // one below the mark
  EXPECT_FALSE(ring.above_high_watermark());
  EXPECT_EQ(bp_->evaluate(1, ring, 10), ThrottleState::kClear);

  fill(ring, 51, /*when=*/0);  // exactly at the mark
  EXPECT_TRUE(ring.above_high_watermark());
  EXPECT_EQ(bp_->evaluate(1, ring, 20), ThrottleState::kWatch);
  // And the aged head escalates from exactly-at-the-mark too.
  EXPECT_EQ(bp_->evaluate(1, ring, 5000), ThrottleState::kThrottle);
  drain(ring, 0);
}

TEST_F(BackpressureTest, DegenerateHysteresisLowEqualsHigh) {
  // LOW == HIGH removes the hysteresis band entirely: one packet under the
  // mark must clear a throttle, and re-crossing re-enters Watch (the
  // flappy behaviour the 20-point margin of §4.3.8 exists to avoid — but
  // the state machine must stay consistent, never stuck or double-counted).
  pktio::Ring ring(64, 0.8, 0.8);
  ASSERT_EQ(ring.high_watermark(), ring.low_watermark());
  const std::size_t mark = ring.high_watermark();

  fill(ring, mark, 0);
  EXPECT_EQ(bp_->evaluate(1, ring, 10), ThrottleState::kWatch);
  EXPECT_EQ(bp_->evaluate(1, ring, 5000), ThrottleState::kThrottle);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));

  drain(ring, mark - 1);  // one under the shared mark
  EXPECT_EQ(bp_->evaluate(1, ring, 6000), ThrottleState::kClear);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));

  // Flap back up: a fresh Watch -> Throttle cycle, counted exactly once
  // more, and the chain throttle refcount returns to 1, not 2.
  fill(ring, mark, /*when=*/6000);
  EXPECT_EQ(bp_->evaluate(1, ring, 6010), ThrottleState::kWatch);
  EXPECT_EQ(bp_->evaluate(1, ring, 20000), ThrottleState::kThrottle);
  EXPECT_EQ(bp_->stats().throttle_entries, 2u);
  EXPECT_EQ(bp_->stats().throttle_clears, 1u);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  drain(ring, mark - 1);
  bp_->evaluate(1, ring, 21000);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  drain(ring, 0);
}

TEST_F(BackpressureTest, LowAboveHighIsClampedNotInverted) {
  // A misconfigured LOW > HIGH must not create a band where a queue is
  // simultaneously "above high" and "below low" (Watch would oscillate per
  // scan). The ring clamps LOW down to HIGH.
  pktio::Ring ring(64, 0.5, 0.9);
  EXPECT_LE(ring.low_watermark(), ring.high_watermark());
  fill(ring, ring.high_watermark(), 0);
  EXPECT_FALSE(ring.below_low_watermark());
  EXPECT_EQ(bp_->evaluate(1, ring, 10), ThrottleState::kWatch);
  EXPECT_EQ(bp_->evaluate(1, ring, 5000), ThrottleState::kThrottle);
  drain(ring, 0);
  EXPECT_EQ(bp_->evaluate(1, ring, 6000), ThrottleState::kClear);
}

TEST_F(BackpressureTest, ChainHeadThrottleShedsAtEntryNotUpstream) {
  // NF0 is the FIRST hop of both chains: when it throttles there is no
  // upstream NF to pause — relief comes purely from selective early
  // discard at the entry point. The throttler itself must keep running to
  // drain, and its *downstream* NFs must not be paused either.
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(0, ring, 10);
  bp_->evaluate(0, ring, 5000);
  ASSERT_EQ(bp_->state(0), ThrottleState::kThrottle);

  // Both chains enter through NF0: both get shed at the wire.
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_TRUE(bp_->chain_throttled(chain2_));

  // Nobody is upstream of the head; nobody downstream is paused.
  EXPECT_FALSE(bp_->should_pause_upstream(0));
  EXPECT_FALSE(bp_->should_pause_upstream(1));
  EXPECT_FALSE(bp_->should_pause_upstream(2));
  EXPECT_FALSE(bp_->should_pause_upstream(3));
  drain(ring, 0);
}

TEST_F(BackpressureTest, EnqueueFeedbackIgnoresUnknownNf) {
  // The manager guards, but the API must also be safe standalone.
  bp_->on_enqueue_feedback(99, pktio::EnqueueResult::kOkOverloaded);
  for (flow::NfId nf = 0; nf < 4; ++nf) {
    EXPECT_EQ(bp_->state(nf), ThrottleState::kClear);
  }
}

TEST_F(BackpressureTest, FeedbackDoesNotDemoteWatchOrThrottle) {
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  ASSERT_EQ(bp_->state(1), ThrottleState::kThrottle);
  // A later kOk enqueue (queue drained below HIGH between scans) must not
  // short-circuit the hysteresis — only evaluate() clears.
  bp_->on_enqueue_feedback(1, pktio::EnqueueResult::kOk);
  EXPECT_EQ(bp_->state(1), ThrottleState::kThrottle);
  drain(ring, 0);
}

TEST_F(BackpressureTest, ObservabilityCountsTransitionsPerNf) {
  obs::Observability obs;
  obs::TraceRecorder trace;
  obs.attach_trace(&trace);
  bp_->set_observability(&obs, {"NF0", "NF1", "NF2", "NF3"});

  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);     // Clear -> Watch
  bp_->evaluate(1, ring, 5000);   // Watch -> Throttle
  drain(ring, 0);
  bp_->evaluate(1, ring, 6000);   // Throttle -> Clear

  const auto* watches =
      obs.metrics().find_counter("bp.watch_entries", {{"nf", "NF1"}});
  const auto* throttles =
      obs.metrics().find_counter("bp.throttle_entries", {{"nf", "NF1"}});
  const auto* clears =
      obs.metrics().find_counter("bp.throttle_clears", {{"nf", "NF1"}});
  ASSERT_NE(watches, nullptr);
  ASSERT_NE(throttles, nullptr);
  ASSERT_NE(clears, nullptr);
  EXPECT_EQ(watches->value(), 1u);
  EXPECT_EQ(throttles->value(), 1u);
  EXPECT_EQ(clears->value(), 1u);
  // NF2 never transitioned.
  EXPECT_EQ(
      obs.metrics().find_counter("bp.watch_entries", {{"nf", "NF2"}})->value(),
      0u);

  // The full CLEAR -> WATCH -> THROTTLE -> CLEAR arc landed in the trace,
  // on the backpressure lane, in order.
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].lane, obs::kBackpressureLane);
  EXPECT_EQ(trace.events()[0].args[1].second, "CLEAR");
  EXPECT_EQ(trace.events()[0].args[2].second, "WATCH");
  EXPECT_EQ(trace.events()[1].args[2].second, "THROTTLE");
  EXPECT_EQ(trace.events()[2].args[2].second, "CLEAR");
}

// --- sharded-simulation mirror hooks (DESIGN.md §14) ---

TEST_F(BackpressureTest, RemoteThrottleMarksChainsWithoutStats) {
  // NF1 throttles on some other lane; this lane's mirror must shed chain1
  // at the entry but record nothing in its own stats (those belong to the
  // owning lane, which already counted the transition).
  bp_->apply_remote_state(1, ThrottleState::kThrottle);
  EXPECT_EQ(bp_->state(1), ThrottleState::kThrottle);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->chain_throttled(chain2_));
  EXPECT_EQ(bp_->stats().throttle_entries, 0u);

  bp_->apply_remote_state(1, ThrottleState::kClear);
  EXPECT_EQ(bp_->state(1), ThrottleState::kClear);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  EXPECT_EQ(bp_->stats().throttle_clears, 0u);
}

TEST_F(BackpressureTest, RemoteStateIsIdempotentOnRefcounts) {
  // A repeated remote THROTTLE must not double-count the shared-NF chain
  // refcounts — one CLEAR must fully release both chains.
  bp_->apply_remote_state(3, ThrottleState::kThrottle);
  bp_->apply_remote_state(3, ThrottleState::kThrottle);
  EXPECT_TRUE(bp_->chain_throttled(chain1_));
  EXPECT_TRUE(bp_->chain_throttled(chain2_));
  bp_->apply_remote_state(3, ThrottleState::kClear);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  EXPECT_FALSE(bp_->chain_throttled(chain2_));
}

TEST_F(BackpressureTest, RemoteWatchTouchesNoChainState) {
  bp_->apply_remote_state(1, ThrottleState::kWatch);
  EXPECT_EQ(bp_->state(1), ThrottleState::kWatch);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
  // Watch -> Clear remotely: still no refcount underflow.
  bp_->apply_remote_state(1, ThrottleState::kClear);
  EXPECT_FALSE(bp_->chain_throttled(chain1_));
}

TEST_F(BackpressureTest, ListenerFiresOnLocalTransitionsOnly) {
  struct Seen {
    flow::NfId nf;
    ThrottleState to;
    Cycles now;
  };
  std::vector<Seen> seen;
  bp_->set_state_listener([&seen](flow::NfId nf, ThrottleState to, Cycles now) {
    seen.push_back({nf, to, now});
  });

  // A mirrored remote transition must NOT re-fire the listener (it would
  // echo forever between lanes).
  bp_->apply_remote_state(2, ThrottleState::kThrottle);
  EXPECT_TRUE(seen.empty());

  // A real local arc fires it once per transition, in order.
  pktio::Ring ring(64, 0.8, 0.6);
  fill(ring, 52, 0);
  bp_->evaluate(1, ring, 10);
  bp_->evaluate(1, ring, 5000);
  drain(ring, 0);
  bp_->evaluate(1, ring, 6000);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].nf, 1u);
  EXPECT_EQ(seen[0].to, ThrottleState::kWatch);
  EXPECT_EQ(seen[1].to, ThrottleState::kThrottle);
  EXPECT_EQ(seen[1].now, 5000);
  EXPECT_EQ(seen[2].to, ThrottleState::kClear);
}

}  // namespace
}  // namespace nfv::bp
