#include "bp/ecn.hpp"

#include <gtest/gtest.h>

#include "pktio/mempool.hpp"

namespace nfv::bp {
namespace {

pktio::Mbuf tcp_pkt() {
  pktio::Mbuf m;
  m.is_tcp = true;
  m.ecn_capable = true;
  return m;
}

TEST(Ecn, NeverMarksBelowMinThreshold) {
  EcnMarker marker(1);
  pktio::Ring ring(128);  // min threshold at 20% => ~25 entries
  auto pkt = tcp_pkt();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(marker.on_enqueue(0, ring, pkt));  // ring is empty
  }
  EXPECT_EQ(marker.marks(), 0u);
}

TEST(Ecn, AlwaysMarksAboveMaxThreshold) {
  EcnMarker marker(1);
  pktio::MbufPool pool(256);
  pktio::Ring ring(128);
  while (ring.size() < 120) ring.enqueue(pool.alloc());  // ~94% full
  // Let the EWMA converge to the full queue.
  auto pkt = tcp_pkt();
  for (int i = 0; i < 500; ++i) marker.on_enqueue(0, ring, pkt);
  pkt.ecn_marked = false;
  EXPECT_TRUE(marker.on_enqueue(0, ring, pkt));
  EXPECT_TRUE(pkt.ecn_marked);
}

TEST(Ecn, MarksProbabilisticallyBetweenThresholds) {
  EcnMarker::Config cfg;
  cfg.ewma_weight = 1.0;  // follow the instantaneous queue
  EcnMarker marker(1, cfg);
  pktio::MbufPool pool(256);
  pktio::Ring ring(128);
  while (ring.size() < 51) ring.enqueue(pool.alloc());  // 40%: mid-ramp
  int marks = 0;
  for (int i = 0; i < 10000; ++i) {
    auto pkt = tcp_pkt();
    if (marker.on_enqueue(0, ring, pkt)) ++marks;
  }
  // Ramp midpoint: ~ max_mark_prob / 2 = 5%.
  EXPECT_GT(marks, 200);
  EXPECT_LT(marks, 1000);
}

TEST(Ecn, NeverMarksUdp) {
  EcnMarker::Config cfg;
  cfg.ewma_weight = 1.0;
  EcnMarker marker(1, cfg);
  pktio::MbufPool pool(256);
  pktio::Ring ring(128);
  while (ring.size() < 127) ring.enqueue(pool.alloc());
  pktio::Mbuf udp;  // is_tcp = false
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(marker.on_enqueue(0, ring, udp));
  }
}

TEST(Ecn, NeverMarksNonEcnCapableTcp) {
  EcnMarker::Config cfg;
  cfg.ewma_weight = 1.0;
  EcnMarker marker(1, cfg);
  pktio::MbufPool pool(256);
  pktio::Ring ring(128);
  while (ring.size() < 127) ring.enqueue(pool.alloc());
  pktio::Mbuf pkt;
  pkt.is_tcp = true;
  pkt.ecn_capable = false;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(marker.on_enqueue(0, ring, pkt));
  }
}

TEST(Ecn, AlreadyMarkedPacketNotRemarked) {
  EcnMarker::Config cfg;
  cfg.ewma_weight = 1.0;
  EcnMarker marker(1, cfg);
  pktio::MbufPool pool(256);
  pktio::Ring ring(128);
  while (ring.size() < 127) ring.enqueue(pool.alloc());
  auto pkt = tcp_pkt();
  pkt.ecn_marked = true;
  EXPECT_FALSE(marker.on_enqueue(0, ring, pkt));
  EXPECT_EQ(marker.marks(), 0u);
}

TEST(Ecn, EwmaSmoothsBursts) {
  // A transient full queue must not immediately push the average over the
  // marking threshold when the weight is small (§3.3: "ECN works at longer
  // timescales").
  EcnMarker::Config cfg;
  cfg.ewma_weight = 0.01;
  EcnMarker marker(1, cfg);
  pktio::MbufPool pool(256);
  pktio::Ring empty_ring(128);
  auto pkt = tcp_pkt();
  for (int i = 0; i < 200; ++i) marker.on_enqueue(0, empty_ring, pkt);
  pktio::Ring full_ring(128);
  while (!full_ring.full()) full_ring.enqueue(pool.alloc());
  EXPECT_FALSE(marker.on_enqueue(0, full_ring, pkt));  // avg still ~0
  EXPECT_LT(marker.average_queue(0), 5.0);
}

TEST(Ecn, PerNfAveragesAreIndependent) {
  EcnMarker::Config cfg;
  cfg.ewma_weight = 1.0;
  EcnMarker marker(2, cfg);
  pktio::MbufPool pool(256);
  pktio::Ring full(128), empty(128);
  while (full.size() < 127) full.enqueue(pool.alloc());
  auto pkt = tcp_pkt();
  marker.on_enqueue(0, full, pkt);
  marker.on_enqueue(1, empty, pkt);
  EXPECT_GT(marker.average_queue(0), 100.0);
  EXPECT_LT(marker.average_queue(1), 1.0);
}

}  // namespace
}  // namespace nfv::bp
