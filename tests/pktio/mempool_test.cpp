#include "pktio/mempool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nfv::pktio {
namespace {

TEST(MbufPool, AllocUntilExhausted) {
  MbufPool pool(4);
  std::vector<Mbuf*> bufs;
  for (int i = 0; i < 4; ++i) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    bufs.push_back(m);
  }
  EXPECT_EQ(pool.in_use(), 4u);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  for (Mbuf* m : bufs) pool.free(m);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(MbufPool, FreedBuffersAreReusable) {
  MbufPool pool(1);
  Mbuf* a = pool.alloc();
  ASSERT_NE(a, nullptr);
  pool.free(a);
  Mbuf* b = pool.alloc();
  EXPECT_EQ(a, b);
}

TEST(MbufPool, AllocResetsMetadata) {
  MbufPool pool(2);
  Mbuf* a = pool.alloc();
  a->flow_id = 7;
  a->chain_pos = 3;
  a->ecn_marked = true;
  const auto index = a->pool_index;
  pool.free(a);
  Mbuf* b = pool.alloc();
  while (b->pool_index != index) {  // find the same slot again
    b = pool.alloc();
    ASSERT_NE(b, nullptr);
  }
  EXPECT_EQ(b->flow_id, 0u);
  EXPECT_EQ(b->chain_pos, 0u);
  EXPECT_FALSE(b->ecn_marked);
  EXPECT_EQ(b->pool_index, index);
}

TEST(MbufPool, DistinctBuffers) {
  MbufPool pool(64);
  std::set<Mbuf*> seen;
  for (int i = 0; i < 64; ++i) seen.insert(pool.alloc());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(seen.count(nullptr), 0u);
}

TEST(MbufPool, CapacityReported) {
  MbufPool pool(128);
  EXPECT_EQ(pool.capacity(), 128u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(MbufPool, ChurnDoesNotLeak) {
  MbufPool pool(8);
  for (int round = 0; round < 1000; ++round) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    pool.free(m);
  }
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.alloc_failures(), 0u);
}

}  // namespace
}  // namespace nfv::pktio
