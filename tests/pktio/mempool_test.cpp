#include "pktio/mempool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nfv::pktio {
namespace {

TEST(MbufPool, AllocUntilExhausted) {
  MbufPool pool(4);
  std::vector<Mbuf*> bufs;
  for (int i = 0; i < 4; ++i) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    bufs.push_back(m);
  }
  EXPECT_EQ(pool.in_use(), 4u);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  for (Mbuf* m : bufs) pool.free(m);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(MbufPool, FreedBuffersAreReusable) {
  MbufPool pool(1);
  Mbuf* a = pool.alloc();
  ASSERT_NE(a, nullptr);
  pool.free(a);
  Mbuf* b = pool.alloc();
  EXPECT_EQ(a, b);
}

TEST(MbufPool, AllocResetsMetadata) {
  MbufPool pool(2);
  Mbuf* a = pool.alloc();
  a->flow_id = 7;
  a->chain_pos = 3;
  a->ecn_marked = true;
  const auto index = a->pool_index;
  pool.free(a);
  Mbuf* b = pool.alloc();
  while (b->pool_index != index) {  // find the same slot again
    b = pool.alloc();
    ASSERT_NE(b, nullptr);
  }
  EXPECT_EQ(b->flow_id, 0u);
  EXPECT_EQ(b->chain_pos, 0u);
  EXPECT_FALSE(b->ecn_marked);
  EXPECT_EQ(b->pool_index, index);
}

TEST(MbufPool, DistinctBuffers) {
  MbufPool pool(64);
  std::set<Mbuf*> seen;
  for (int i = 0; i < 64; ++i) seen.insert(pool.alloc());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(seen.count(nullptr), 0u);
}

TEST(MbufPool, CapacityReported) {
  MbufPool pool(128);
  EXPECT_EQ(pool.capacity(), 128u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(MbufPool, AllocBurstAllOrNothing) {
  MbufPool pool(8);
  Mbuf* bufs[8] = {};
  EXPECT_EQ(pool.alloc_burst(bufs, 8), 8u);
  EXPECT_EQ(pool.in_use(), 8u);
  std::set<Mbuf*> seen(bufs, bufs + 8);
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen.count(nullptr), 0u);
  // Pool exhausted: a burst of any size fails whole, counting one failure.
  Mbuf* more[2] = {};
  EXPECT_EQ(pool.alloc_burst(more, 2), 0u);
  EXPECT_EQ(more[0], nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  pool.free_burst(bufs, 8);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(MbufPool, AllocBurstPartialPoolRefusesOversizedBurst) {
  MbufPool pool(4);
  Mbuf* a = pool.alloc();
  ASSERT_NE(a, nullptr);
  Mbuf* bufs[4] = {};
  // 3 free < 4 requested: all-or-nothing means nothing.
  EXPECT_EQ(pool.alloc_burst(bufs, 4), 0u);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.alloc_burst(bufs, 3), 3u);
  EXPECT_EQ(pool.in_use(), 4u);
  pool.free(a);
  pool.free_burst(bufs, 3);
}

TEST(MbufPool, BurstAndSingleAllocInterleave) {
  MbufPool pool(16);
  Mbuf* burst[4] = {};
  ASSERT_EQ(pool.alloc_burst(burst, 4), 4u);
  Mbuf* single = pool.alloc();
  ASSERT_NE(single, nullptr);
  pool.free_burst(burst, 4);
  EXPECT_EQ(pool.in_use(), 1u);
  Mbuf* again[5] = {};
  EXPECT_EQ(pool.alloc_burst(again, 5), 5u);
  pool.free(single);
  pool.free_burst(again, 5);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(MbufPool, AllocBurstResetsMetadata) {
  MbufPool pool(2);
  Mbuf* m = pool.alloc();
  m->flow_id = 9;
  m->ecn_marked = true;
  pool.free(m);
  Mbuf* bufs[2] = {};
  ASSERT_EQ(pool.alloc_burst(bufs, 2), 2u);
  for (Mbuf* b : bufs) {
    EXPECT_EQ(b->flow_id, 0u);
    EXPECT_FALSE(b->ecn_marked);
  }
  pool.free_burst(bufs, 2);
}

#ifndef NDEBUG
using MbufPoolDeathTest = ::testing::Test;

TEST(MbufPoolDeathTest, DoubleFreeAssertsInDebugBuilds) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  MbufPool pool(2);
  Mbuf* m = pool.alloc();
  pool.free(m);
  EXPECT_DEATH(pool.free(m), "double free");
}

TEST(MbufPoolDeathTest, BurstDoubleFreeAssertsInDebugBuilds) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  MbufPool pool(4);
  Mbuf* bufs[2] = {};
  ASSERT_EQ(pool.alloc_burst(bufs, 2), 2u);
  Mbuf* dup[2] = {bufs[0], bufs[0]};  // same mbuf twice in one burst
  EXPECT_DEATH(pool.free_burst(dup, 2), "double free");
}
#endif

TEST(MbufPool, ChurnDoesNotLeak) {
  MbufPool pool(8);
  for (int round = 0; round < 1000; ++round) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    pool.free(m);
  }
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.alloc_failures(), 0u);
}

}  // namespace
}  // namespace nfv::pktio
