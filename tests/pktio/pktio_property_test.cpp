// Model-based property/stress tests for pktio::Ring and pktio::MbufPool.
//
// A seeded nfv::Rng drives long random operation sequences against each
// structure while a trivially-correct reference model (std::deque / a
// borrowed-pointer set) runs alongside; every step cross-checks the
// invariants the rest of the platform leans on — FIFO order, size/capacity
// accounting, watermark tri-state feedback, conservation of descriptors,
// and no double-free / no foreign-pointer leaks out of the pool.

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "pktio/mempool.hpp"
#include "pktio/ring.hpp"

namespace nfv::pktio {
namespace {

TEST(RingProperty, RandomOpsMatchDequeModel) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 0xdeadbeefULL}) {
    Rng rng(seed);
    // Random small capacity exercises the power-of-two rounding too.
    const auto requested = static_cast<std::uint32_t>(rng.next_in(1, 200));
    Ring ring(requested, /*high_watermark=*/0.80, /*low_watermark=*/0.60);
    ASSERT_GE(ring.capacity(), requested);
    ASSERT_EQ(ring.capacity() & (ring.capacity() - 1), 0u)
        << "capacity must round to a power of two";

    std::vector<Mbuf> storage(ring.capacity() + 8);
    std::size_t next_mbuf = 0;
    std::deque<Mbuf*> model;

    for (int step = 0; step < 20'000; ++step) {
      const std::uint64_t op = rng.next_below(3);
      if (op == 0) {  // enqueue
        Mbuf* m = &storage[next_mbuf % storage.size()];
        const EnqueueResult result = ring.enqueue(m);
        if (model.size() == ring.capacity()) {
          EXPECT_EQ(result, EnqueueResult::kFull);
        } else {
          // Tri-state feedback: the return value must reflect the
          // post-enqueue length against the high watermark (§3.5).
          model.push_back(m);
          ++next_mbuf;
          if (model.size() >= ring.high_watermark()) {
            EXPECT_EQ(result, EnqueueResult::kOkOverloaded);
          } else {
            EXPECT_EQ(result, EnqueueResult::kOk);
          }
        }
      } else if (op == 1) {  // dequeue one
        Mbuf* got = ring.dequeue();
        if (model.empty()) {
          EXPECT_EQ(got, nullptr);
        } else {
          EXPECT_EQ(got, model.front()) << "FIFO order violated";
          model.pop_front();
        }
      } else {  // dequeue a burst
        Mbuf* burst[16];
        const auto want = static_cast<std::size_t>(rng.next_in(1, 16));
        const std::size_t n = ring.dequeue_burst(burst, want);
        EXPECT_EQ(n, std::min(want, model.size()));
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(burst[i], model.front());
          model.pop_front();
        }
      }

      ASSERT_EQ(ring.size(), model.size());
      ASSERT_EQ(ring.empty(), model.empty());
      ASSERT_EQ(ring.full(), model.size() == ring.capacity());
      ASSERT_EQ(ring.above_high_watermark(),
                model.size() >= ring.high_watermark());
      ASSERT_EQ(ring.below_low_watermark(),
                model.size() < ring.low_watermark());
      ASSERT_EQ(ring.total_enqueued() - ring.total_dequeued(), model.size())
          << "descriptor conservation violated";
    }
  }
}

TEST(RingProperty, WraparoundPreservesFifoOrder) {
  // Force the head/tail indices around the ring many times with a mix of
  // bursts so the mask arithmetic is exercised at every offset.
  Ring ring(8);
  std::vector<Mbuf> storage(8);
  Rng rng(0x5eed);
  std::deque<Mbuf*> model;
  for (int round = 0; round < 1000; ++round) {
    const auto n_in = static_cast<std::size_t>(rng.next_in(1, 8));
    for (std::size_t i = 0; i < n_in; ++i) {
      Mbuf* m = &storage[rng.next_below(storage.size())];
      if (ring.enqueue(m) != EnqueueResult::kFull) model.push_back(m);
    }
    const auto n_out = static_cast<std::size_t>(rng.next_in(1, 8));
    for (std::size_t i = 0; i < n_out; ++i) {
      Mbuf* got = ring.dequeue();
      if (model.empty()) {
        ASSERT_EQ(got, nullptr);
      } else {
        ASSERT_EQ(got, model.front());
        model.pop_front();
      }
    }
  }
}

TEST(MempoolProperty, RandomAllocFreeNeverLosesOrDuplicatesBuffers) {
  for (const std::uint64_t seed : {3ULL, 0xabcULL}) {
    Rng rng(seed);
    MbufPool pool(64);
    std::set<Mbuf*> borrowed;  // the model: exactly what we hold
    std::uint64_t expected_failures = 0;

    for (int step = 0; step < 50'000; ++step) {
      if (rng.next_below(2) == 0) {  // alloc
        Mbuf* m = pool.alloc();
        if (borrowed.size() == pool.capacity()) {
          EXPECT_EQ(m, nullptr) << "pool over-allocated past capacity";
          ++expected_failures;
        } else {
          ASSERT_NE(m, nullptr);
          // A buffer handed out twice while still borrowed would corrupt
          // two packets at once — the double-free's mirror image.
          const bool fresh = borrowed.insert(m).second;
          ASSERT_TRUE(fresh) << "pool returned a buffer already in use";
        }
      } else if (!borrowed.empty()) {  // free a random borrowed buffer
        auto it = borrowed.begin();
        std::advance(it, static_cast<long>(rng.next_below(borrowed.size())));
        pool.free(*it);
        borrowed.erase(it);
      }
      ASSERT_EQ(pool.in_use(), borrowed.size());
      ASSERT_EQ(pool.alloc_failures(), expected_failures);
    }

    // Drain: everything we borrowed goes back exactly once.
    for (Mbuf* m : borrowed) pool.free(m);
    EXPECT_EQ(pool.in_use(), 0u);
  }
}

TEST(MempoolProperty, ExhaustAndRecoverFullCycle) {
  MbufPool pool(16);
  std::vector<Mbuf*> all;
  for (std::uint32_t i = 0; i < 16; ++i) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    all.push_back(m);
  }
  // All 16 are distinct buffers.
  std::set<Mbuf*> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 16u);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.in_use(), 16u);

  pool.free(all.back());
  all.pop_back();
  Mbuf* again = pool.alloc();
  ASSERT_NE(again, nullptr);
  all.push_back(again);
  for (Mbuf* m : all) pool.free(m);
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace nfv::pktio
