#include "pktio/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace nfv::pktio {
namespace {

Mbuf* fake(std::uintptr_t id) { return reinterpret_cast<Mbuf*>(id << 4); }

TEST(Ring, CapacityRoundsToPowerOfTwo) {
  Ring r(100);
  EXPECT_EQ(r.capacity(), 128u);
  Ring r2(128);
  EXPECT_EQ(r2.capacity(), 128u);
  Ring r3(1);
  EXPECT_EQ(r3.capacity(), 2u);
}

TEST(Ring, FifoOrder) {
  Ring r(8);
  for (std::uintptr_t i = 1; i <= 5; ++i) {
    EXPECT_NE(r.enqueue(fake(i)), EnqueueResult::kFull);
  }
  for (std::uintptr_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(r.dequeue(), fake(i));
  }
  EXPECT_EQ(r.dequeue(), nullptr);
}

TEST(Ring, FullRejectsEnqueue) {
  Ring r(4);  // capacity 4
  for (std::uintptr_t i = 1; i <= 4; ++i) {
    EXPECT_NE(r.enqueue(fake(i)), EnqueueResult::kFull);
  }
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.enqueue(fake(99)), EnqueueResult::kFull);
  EXPECT_EQ(r.size(), 4u);
}

TEST(Ring, WatermarkFeedbackOnEnqueue) {
  Ring r(16, 0.5, 0.25);  // high at 8, low at 4
  EnqueueResult last = EnqueueResult::kOk;
  for (std::uintptr_t i = 1; i <= 7; ++i) last = r.enqueue(fake(i));
  EXPECT_EQ(last, EnqueueResult::kOk);
  last = r.enqueue(fake(8));  // reaches the high mark
  EXPECT_EQ(last, EnqueueResult::kOkOverloaded);
  EXPECT_TRUE(r.above_high_watermark());
}

TEST(Ring, LowWatermarkHysteresis) {
  Ring r(16, 0.5, 0.25);
  for (std::uintptr_t i = 1; i <= 8; ++i) r.enqueue(fake(i));
  EXPECT_TRUE(r.above_high_watermark());
  EXPECT_FALSE(r.below_low_watermark());
  while (r.size() >= 4) r.dequeue();
  EXPECT_TRUE(r.below_low_watermark());
  EXPECT_FALSE(r.above_high_watermark());
}

TEST(Ring, DequeueBurst) {
  Ring r(16);
  for (std::uintptr_t i = 1; i <= 10; ++i) r.enqueue(fake(i));
  Mbuf* out[32];
  EXPECT_EQ(r.dequeue_burst(out, 4), 4u);
  EXPECT_EQ(out[0], fake(1));
  EXPECT_EQ(out[3], fake(4));
  EXPECT_EQ(r.dequeue_burst(out, 32), 6u);
  EXPECT_EQ(out[5], fake(10));
  EXPECT_EQ(r.dequeue_burst(out, 32), 0u);
}

TEST(Ring, EnqueueBurstAcceptsWhatFits) {
  Ring r(8);
  Mbuf* in[6] = {fake(1), fake(2), fake(3), fake(4), fake(5), fake(6)};
  EXPECT_EQ(r.enqueue_burst(in, 6), 6u);
  EXPECT_EQ(r.size(), 6u);
  // Only 2 slots left: the burst is truncated, not rejected.
  Mbuf* more[4] = {fake(7), fake(8), fake(9), fake(10)};
  EXPECT_EQ(r.enqueue_burst(more, 4), 2u);
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.enqueue_burst(more, 4), 0u);
  EXPECT_EQ(r.total_enqueued(), 8u);
  for (std::uintptr_t i = 1; i <= 8; ++i) EXPECT_EQ(r.dequeue(), fake(i));
}

TEST(Ring, EnqueueBurstWrapsAround) {
  Ring r(4);
  Mbuf* first[3] = {fake(1), fake(2), fake(3)};
  ASSERT_EQ(r.enqueue_burst(first, 3), 3u);
  EXPECT_EQ(r.dequeue(), fake(1));
  EXPECT_EQ(r.dequeue(), fake(2));
  // Tail wraps past the end of the storage array.
  Mbuf* second[3] = {fake(4), fake(5), fake(6)};
  ASSERT_EQ(r.enqueue_burst(second, 3), 3u);
  for (std::uintptr_t i = 3; i <= 6; ++i) EXPECT_EQ(r.dequeue(), fake(i));
  EXPECT_TRUE(r.empty());
}

TEST(Ring, WrapAroundKeepsOrder) {
  Ring r(4);
  // Repeatedly push/pop so indices wrap many times.
  std::uintptr_t next_in = 1, next_out = 1;
  for (int step = 0; step < 100; ++step) {
    r.enqueue(fake(next_in++));
    r.enqueue(fake(next_in++));
    EXPECT_EQ(r.dequeue(), fake(next_out++));
    EXPECT_EQ(r.dequeue(), fake(next_out++));
  }
  EXPECT_TRUE(r.empty());
}

TEST(Ring, HeadEnqueueTimeTracksOldest) {
  Ring r(8);
  Mbuf a, b;
  a.enqueue_time = 100;
  b.enqueue_time = 200;
  r.enqueue(&a);
  r.enqueue(&b);
  EXPECT_EQ(r.head_enqueue_time(), 100);
  r.dequeue();
  EXPECT_EQ(r.head_enqueue_time(), 200);
  r.dequeue();
  EXPECT_EQ(r.head_enqueue_time(), 0);
}

TEST(Ring, Counters) {
  Ring r(8);
  for (std::uintptr_t i = 1; i <= 3; ++i) r.enqueue(fake(i));
  r.dequeue();
  EXPECT_EQ(r.total_enqueued(), 3u);
  EXPECT_EQ(r.total_dequeued(), 1u);
}

TEST(Ring, DegenerateWatermarks) {
  Ring r(8, 1.0, 1.0);  // high mark at capacity
  for (std::uintptr_t i = 1; i <= 7; ++i) {
    EXPECT_EQ(r.enqueue(fake(i)), EnqueueResult::kOk);
  }
  EXPECT_EQ(r.enqueue(fake(8)), EnqueueResult::kOkOverloaded);
}

// Property sweep: for any capacity/watermark combination, enqueue feedback
// must flip to kOkOverloaded exactly when size reaches the high mark.
class RingWatermarkSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(RingWatermarkSweep, FeedbackMatchesHighMark) {
  const auto [capacity, high] = GetParam();
  Ring r(capacity, high, high / 2);
  std::uintptr_t i = 1;
  while (!r.full()) {
    const auto result = r.enqueue(fake(i++));
    ASSERT_NE(result, EnqueueResult::kFull);
    const bool over = r.size() >= r.high_watermark();
    ASSERT_EQ(result == EnqueueResult::kOkOverloaded, over)
        << "size=" << r.size() << " mark=" << r.high_watermark();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingWatermarkSweep,
    ::testing::Combine(::testing::Values(4u, 16u, 100u, 1024u),
                       ::testing::Values(0.5, 0.8, 0.95)));

// --- SpscRing (cross-lane mailbox channel of the sharded engine) ---

TEST(SpscRing, CapacityRoundsToPowerOfTwoMinimumTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(200).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> r(8);
  for (int i = 1; i <= 5; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_EQ(r.size_approx(), 5u);
  int v = 0;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(r.try_pop(v));
  EXPECT_EQ(r.size_approx(), 0u);
}

TEST(SpscRing, FullRejectsPushUntilPop) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));
  int v = -1;
  ASSERT_TRUE(r.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(r.try_push(99));
  // Order preserved across the wrap: 1, 2, 3, 99.
  for (const int want : {1, 2, 3, 99}) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, want);
  }
}

TEST(SpscRing, IndicesWrapManyTimesWithoutLoss) {
  SpscRing<std::uint64_t> r(2);
  std::uint64_t next_in = 0, next_out = 0, v = 0;
  for (int step = 0; step < 10'000; ++step) {
    ASSERT_TRUE(r.try_push(next_in++));
    ASSERT_TRUE(r.try_pop(v));
    ASSERT_EQ(v, next_out++);
  }
}

// Two-thread stress: one producer, one consumer, every value delivered
// exactly once and in order. Run under TSan in CI to certify the
// acquire/release pairing that the sharded engine's mailboxes rely on.
TEST(SpscRing, ConcurrentProducerConsumerPreservesSequence) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> r(64);
  std::thread producer([&r] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!r.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t v = 0;
    if (r.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(r.size_approx(), 0u);
}

}  // namespace
}  // namespace nfv::pktio
