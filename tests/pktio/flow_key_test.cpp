#include "pktio/flow_key.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace nfv::pktio {
namespace {

TEST(FlowKey, EqualityIsFieldwise) {
  FlowKey a{0x0a000001, 0x0a000002, 1234, 80, kProtoTcp};
  FlowKey b = a;
  EXPECT_EQ(a, b);
  b.src_port = 1235;
  EXPECT_NE(a, b);
}

TEST(FlowKey, HashEqualForEqualKeys) {
  FlowKey a{1, 2, 3, 4, 5};
  FlowKey b{1, 2, 3, 4, 5};
  EXPECT_EQ(FlowKeyHash{}(a), FlowKeyHash{}(b));
}

TEST(FlowKey, HashDiffersAcrossFields) {
  const FlowKey base{10, 20, 30, 40, 6};
  const auto h0 = FlowKeyHash{}(base);
  FlowKey k = base;
  k.src_ip = 11;
  EXPECT_NE(FlowKeyHash{}(k), h0);
  k = base;
  k.dst_ip = 21;
  EXPECT_NE(FlowKeyHash{}(k), h0);
  k = base;
  k.src_port = 31;
  EXPECT_NE(FlowKeyHash{}(k), h0);
  k = base;
  k.dst_port = 41;
  EXPECT_NE(FlowKeyHash{}(k), h0);
  k = base;
  k.proto = 17;
  EXPECT_NE(FlowKeyHash{}(k), h0);
}

TEST(FlowKey, LowCollisionRateOnSequentialFlows) {
  // Generators allocate flows with sequential IPs/ports; the hash must
  // spread them (FNV-1a does).
  std::unordered_set<std::size_t> hashes;
  int n = 0;
  for (std::uint32_t ip = 0; ip < 100; ++ip) {
    for (std::uint16_t port = 0; port < 100; ++port) {
      hashes.insert(FlowKeyHash{}(FlowKey{ip, 0, port, 80, kProtoUdp}));
      ++n;
    }
  }
  EXPECT_GT(hashes.size(), static_cast<std::size_t>(n * 99) / 100);
}

TEST(FlowKey, UsableInUnorderedSet) {
  std::unordered_set<FlowKey, FlowKeyHash> set;
  set.insert(FlowKey{1, 2, 3, 4, 5});
  set.insert(FlowKey{1, 2, 3, 4, 5});
  set.insert(FlowKey{1, 2, 3, 4, 6});
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlowKey, ProtocolConstants) {
  EXPECT_EQ(kProtoTcp, 6);
  EXPECT_EQ(kProtoUdp, 17);
}

}  // namespace
}  // namespace nfv::pktio
