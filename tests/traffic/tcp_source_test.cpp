#include "traffic/tcp_source.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::traffic {
namespace {

using core::SchedPolicy;
using core::Simulation;

TEST(TcpSource, DestructorCancelsPendingEvent) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 1e6);
  sim.run_for_seconds(0.001);
  {
    TcpSource::Config cfg;
    cfg.key.proto = pktio::kProtoTcp;
    TcpSource doomed(sim.engine(), sim.manager(), sim.pool(),
                     /*flow_id=*/999, cfg);
    doomed.start();  // schedules the first-window event at `now`
    EXPECT_EQ(doomed.packets_sent(), 0u);
  }  // destroyed before the event fires: must cancel, not dangle
  sim.run_for_seconds(0.001);  // engine keeps running cleanly
  EXPECT_GT(sim.manager().wire_ingress(), 0u);
}

TEST(TcpSource, RampsUpOnUncongestedPath) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  auto [flow_id, tcp] = sim.add_tcp_flow(chain);
  sim.run_for_seconds(0.1);
  EXPECT_GT(tcp->cwnd(), 100u);  // grew well past initial 10
  // Everything sent is delivered, modulo packets still in flight inside
  // the platform (at most one window's worth).
  EXPECT_GE(tcp->packets_delivered() + tcp->cwnd(), tcp->packets_sent());
  EXPECT_EQ(tcp->congestion_events(), 0u);
}

TEST(TcpSource, DeliveriesMatchEgressCounters) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  auto [flow_id, tcp] = sim.add_tcp_flow(chain);
  sim.run_for_seconds(0.05);
  EXPECT_EQ(tcp->packets_delivered(),
            sim.manager().flow_counters(flow_id).egress_packets);
}

TEST(TcpSource, BacksOffWhenPathDropsPackets) {
  // A severe bottleneck with backpressure disabled: the chain drops TCP
  // packets at the slow NF's ring, so the window must collapse repeatedly.
  core::PlatformConfig cfg;
  cfg.set_nfvnice(false);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("slow", core_id, nf::CostModel::fixed(30'000));
  const auto chain = sim.add_chain("c", {nf});
  auto [flow_id, tcp] = sim.add_tcp_flow(chain);
  sim.run_for_seconds(0.2);
  EXPECT_GT(tcp->congestion_events(), 3u);
  EXPECT_LT(tcp->cwnd(), 4096u);  // never pinned at max
}

TEST(TcpSource, CwndCapRespected) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  core::TcpOptions opts;
  opts.max_cwnd = 64;
  auto [flow_id, tcp] = sim.add_tcp_flow(chain, opts);
  sim.run_for_seconds(0.2);
  EXPECT_LE(tcp->cwnd(), 64u);
}

TEST(TcpSource, EcnMarkTriggersBackoffWithoutLoss) {
  // Congest an ECN-enabled path just enough to mark but (mostly) not drop:
  // the TCP source must register ecn_backoffs.
  core::PlatformConfig cfg;
  cfg.set_nfvnice(true);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto a = sim.add_nf("a", core_id, nf::CostModel::fixed(100));
  const auto slow = sim.add_nf("slow", core_id, nf::CostModel::fixed(2000));
  const auto chain = sim.add_chain("c", {a, slow});
  auto [flow_id, tcp] = sim.add_tcp_flow(chain);
  sim.add_udp_flow(chain, 1.2e6);  // push the queue into the marking band
  sim.run_for_seconds(0.3);
  EXPECT_GT(tcp->ecn_backoffs() + tcp->congestion_events(), 0u);
}

TEST(TcpSource, StartTimeDelaysFirstWindow) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  core::TcpOptions opts;
  opts.start_seconds = 0.05;
  auto [flow_id, tcp] = sim.add_tcp_flow(chain, opts);
  sim.run_for_seconds(0.04);
  EXPECT_EQ(tcp->packets_sent(), 0u);
  sim.run_for_seconds(0.06);
  EXPECT_GT(tcp->packets_sent(), 0u);
}

TEST(TcpSource, StopTimeHaltsFlow) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(100));
  const auto chain = sim.add_chain("c", {nf});
  core::TcpOptions opts;
  opts.stop_seconds = 0.02;
  auto [flow_id, tcp] = sim.add_tcp_flow(chain, opts);
  sim.run_for_seconds(0.03);
  const auto sent_at_stop = tcp->packets_sent();
  sim.run_for_seconds(0.05);
  EXPECT_EQ(tcp->packets_sent(), sent_at_stop);
}

TEST(TcpSource, NonEcnCapableFlowIsNeverMarked) {
  core::PlatformConfig cfg;
  cfg.set_nfvnice(true);
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto slow = sim.add_nf("slow", core_id, nf::CostModel::fixed(2000));
  const auto chain = sim.add_chain("c", {slow});
  core::TcpOptions opts;
  opts.ecn_capable = false;
  auto [flow_id, tcp] = sim.add_tcp_flow(chain, opts);
  sim.add_udp_flow(chain, 1.2e6);
  sim.run_for_seconds(0.2);
  EXPECT_EQ(sim.manager().flow_counters(flow_id).ecn_marked, 0u);
  EXPECT_EQ(tcp->ecn_backoffs(), 0u);
}

}  // namespace
}  // namespace nfv::traffic
