#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.hpp"

namespace nfv::traffic {
namespace {

TEST(Trace, WriteReadRoundTrip) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 10; ++i) {
    TraceRecord rec;
    rec.time_us = i * 10.5;
    rec.key = pktio::FlowKey{static_cast<std::uint32_t>(100 + i), 200,
                             static_cast<std::uint16_t>(1000 + i), 80,
                             pktio::kProtoUdp};
    rec.size_bytes = static_cast<std::uint16_t>(64 + i);
    records.push_back(rec);
  }
  std::stringstream buffer;
  write_trace(buffer, records);
  const auto parsed = read_trace(buffer);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].time_us, records[i].time_us);
    EXPECT_EQ(parsed[i].key, records[i].key);
    EXPECT_EQ(parsed[i].size_bytes, records[i].size_bytes);
  }
}

TEST(Trace, CommentsAndBlanksSkipped) {
  std::istringstream in("# header\n\n 10.0 1 2 3 4 17 64\n");
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].time_us, 10.0);
}

TEST(Trace, MalformedLineThrows) {
  std::istringstream in("10.0 1 2 3\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(Trace, UnsortedTimestampsRejected) {
  std::istringstream in("10 1 2 3 4 17 64\n5 1 2 3 4 17 64\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

class TraceReplayTest : public ::testing::Test {
 protected:
  TraceReplayTest() {
    core_id_ = sim_.add_core(core::SchedPolicy::kCfsBatch);
    nf_ = sim_.add_nf("nf", core_id_, nf::CostModel::fixed(100));
    chain_ = sim_.add_chain("c", {nf_});
    // Install the rule for the trace's flow, then start the platform.
    // (The installer flow emits its first packet before stop kicks in.)
    flow_ = sim_.add_udp_flow(chain_, 1.0, {.stop_seconds = 1e-9});
    sim_.run_for_seconds(0.001);
    baseline_egress_ = sim_.chain_metrics(chain_).egress_packets;
  }

  std::vector<TraceRecord> make_records(int n, double gap_us) {
    std::vector<TraceRecord> records;
    for (int i = 0; i < n; ++i) {
      TraceRecord rec;
      rec.time_us = i * gap_us;
      rec.key =
          pktio::FlowKey{0x0a000001, 0x0a800001, 10000, 80, pktio::kProtoUdp};
      records.push_back(rec);
    }
    return records;
  }

  core::Simulation sim_;
  std::size_t core_id_ = 0;
  flow::NfId nf_ = 0;
  flow::ChainId chain_ = 0;
  flow::FlowId flow_ = 0;
  std::uint64_t baseline_egress_ = 0;
};

TEST_F(TraceReplayTest, ReplaysAllPacketsAtTraceTiming) {
  TraceSource source(sim_.engine(), sim_.manager(), sim_.pool(), sim_.clock(),
                     make_records(1000, 10.0));  // 10 us apart = 10 ms total
  source.start();
  sim_.run_for_seconds(0.05);
  EXPECT_TRUE(source.finished());
  EXPECT_EQ(source.packets_sent(), 1000u);
  EXPECT_EQ(sim_.chain_metrics(chain_).egress_packets - baseline_egress_,
            1000u);
}

TEST_F(TraceReplayTest, TimeScaleStretchesReplay) {
  TraceSource::Config cfg;
  cfg.time_scale = 4.0;  // 10 ms of trace -> 40 ms of replay
  TraceSource source(sim_.engine(), sim_.manager(), sim_.pool(), sim_.clock(),
                     make_records(1000, 10.0), cfg);
  source.start();
  sim_.run_for_seconds(0.02);
  EXPECT_FALSE(source.finished());
  EXPECT_NEAR(static_cast<double>(source.packets_sent()), 500.0, 30.0);
  sim_.run_for_seconds(0.03);
  EXPECT_TRUE(source.finished());
}

TEST_F(TraceReplayTest, LoopingRepeatsTrace) {
  TraceSource::Config cfg;
  cfg.loop_count = 3;
  TraceSource source(sim_.engine(), sim_.manager(), sim_.pool(), sim_.clock(),
                     make_records(100, 10.0), cfg);
  source.start();
  sim_.run_for_seconds(0.05);
  EXPECT_TRUE(source.finished());
  EXPECT_EQ(source.packets_sent(), 300u);
}

TEST_F(TraceReplayTest, EmptyTraceFinishesImmediately) {
  TraceSource source(sim_.engine(), sim_.manager(), sim_.pool(), sim_.clock(),
                     {});
  source.start();
  EXPECT_TRUE(source.finished());
}

}  // namespace
}  // namespace nfv::traffic
