#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "traffic/udp_source.hpp"

namespace nfv::traffic {
namespace {

// Poisson arrivals through the facade require driving UdpSource directly
// (the facade defaults to jittered CBR).
TEST(PoissonSource, MeanRateConverges) {
  core::Simulation sim;
  const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  // Install the flow rule the source will hit.
  const auto flow = sim.add_udp_flow(chain, 1.0, {.stop_seconds = 1e-9});
  (void)flow;
  sim.run_for_seconds(0.001);  // start the platform

  UdpSource::Config cfg;
  cfg.key = pktio::FlowKey{0x0a000001, 0x0a800001, 10000, 80, pktio::kProtoUdp};
  cfg.rate_pps = 1e6;
  cfg.poisson = true;
  UdpSource source(sim.engine(), sim.manager(), sim.pool(), sim.clock(), cfg);
  source.start();
  sim.run_for_seconds(0.2);
  // 1 Mpps Poisson over 200 ms: 200k ± a few sigma (sqrt(200k) ~ 450).
  EXPECT_NEAR(static_cast<double>(source.packets_sent()), 200'000.0, 3'000.0);
}

TEST(PoissonSource, InterArrivalVarianceExceedsCbr) {
  // Burstiness check: with the same mean rate, Poisson should overflow a
  // short ring more often than smooth CBR. Use a tiny NF ring and compare
  // drops at equal offered load just below service capacity.
  auto drops_with = [](bool poisson) {
    core::Simulation sim;
    const auto core_id = sim.add_core(core::SchedPolicy::kCfsBatch);
    core::NfOptions opts;
    opts.rx_capacity = 8;  // tiny: sensitive to bursts
    const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(2500), opts);
    const auto chain = sim.add_chain("c", {nf});
    sim.add_udp_flow(chain, 1.0, {.stop_seconds = 1e-9});  // rule install
    sim.run_for_seconds(0.001);

    UdpSource::Config cfg;
    cfg.key =
        pktio::FlowKey{0x0a000001, 0x0a800001, 10000, 80, pktio::kProtoUdp};
    cfg.rate_pps = 9e5;  // ~87% of the NF's 1.04 Mpps capacity
    cfg.poisson = poisson;
    cfg.jitter_fraction = poisson ? 0.0 : 0.05;
    UdpSource source(sim.engine(), sim.manager(), sim.pool(), sim.clock(), cfg);
    source.start();
    sim.run_for_seconds(0.2);
    return sim.nf_metrics(nf).rx_full_drops;
  };
  EXPECT_GT(drops_with(true), drops_with(false) * 2 + 10);
}

}  // namespace
}  // namespace nfv::traffic
