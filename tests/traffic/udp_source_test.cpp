#include "traffic/udp_source.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace nfv::traffic {
namespace {

using core::PlatformConfig;
using core::SchedPolicy;
using core::Simulation;

Simulation make_single_nf_sim(core::PlatformConfig cfg = {}) {
  return Simulation(cfg);
}

TEST(UdpSource, DestructorCancelsPendingEvent) {
  Simulation sim = make_single_nf_sim();
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 1e6);
  sim.run_for_seconds(0.001);
  const auto ingress_before = sim.manager().wire_ingress();
  {
    UdpSource::Config cfg;
    cfg.rate_pps = 1e6;
    cfg.burst = 4;
    UdpSource doomed(sim.engine(), sim.manager(), sim.pool(), sim.clock(),
                     cfg);
    doomed.start();  // arms an emit event in the engine's queue
    EXPECT_EQ(doomed.packets_sent(), 0u);
  }  // destroyed with the event still pending: must cancel, not dangle
  sim.run_for_seconds(0.001);
  // Only the simulation's own flow kept emitting (~1k packets per ms); the
  // destroyed source contributed nothing.
  EXPECT_NEAR(
      static_cast<double>(sim.manager().wire_ingress() - ingress_before),
      1'000.0, 100.0);
}

TEST(UdpSource, RateIsHonoured) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  sim.add_udp_flow(chain, 1e6);
  sim.run_for_seconds(0.1);
  // 1 Mpps over 100 ms = ~100k packets offered at the wire.
  EXPECT_NEAR(static_cast<double>(sim.manager().wire_ingress()), 100'000.0,
              1'000.0);
}

TEST(UdpSource, StartStopWindow) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  core::UdpOptions opts;
  opts.start_seconds = 0.02;
  opts.stop_seconds = 0.04;
  sim.add_udp_flow(chain, 1e6, opts);
  sim.run_for_seconds(0.1);
  // Active for 20 ms at 1 Mpps.
  EXPECT_NEAR(static_cast<double>(sim.manager().wire_ingress()), 20'000.0,
              500.0);
}

TEST(UdpSource, PacketSizePropagates) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  core::UdpOptions opts;
  opts.size_bytes = 1024;
  sim.add_udp_flow(chain, 100'000, opts);
  sim.run_for_seconds(0.02);
  const auto cm = sim.chain_metrics(chain);
  ASSERT_GT(cm.egress_packets, 0u);
  EXPECT_EQ(cm.egress_bytes, cm.egress_packets * 1024);
}

TEST(UdpSource, CostClassesRoundRobin) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf =
      sim.add_nf("nf", core_id, nf::CostModel::per_class({100, 1000}));
  const auto chain = sim.add_chain("c", {nf});
  core::UdpOptions opts;
  opts.cost_classes = 2;
  sim.add_udp_flow(chain, 100'000, opts);
  sim.run_for_seconds(0.05);
  const auto m = sim.nf_metrics(nf);
  ASSERT_GT(m.processed, 1000u);
  // Average cost (100+1000)/2 = 550 cycles across processed packets.
  const double avg_cost = static_cast<double>(m.runtime) /
                          static_cast<double>(m.processed);
  EXPECT_NEAR(avg_cost, 550.0, 30.0);
}

TEST(UdpSource, MultipleFlowsShareTheWire) {
  Simulation sim;
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch);
  const auto nf = sim.add_nf("nf", core_id, nf::CostModel::fixed(10));
  const auto chain = sim.add_chain("c", {nf});
  const auto f1 = sim.add_udp_flow(chain, 500'000);
  const auto f2 = sim.add_udp_flow(chain, 500'000);
  sim.run_for_seconds(0.05);
  const auto& fc1 = sim.manager().flow_counters(f1);
  const auto& fc2 = sim.manager().flow_counters(f2);
  EXPECT_GT(fc1.egress_packets, 20'000u);
  EXPECT_NEAR(static_cast<double>(fc1.egress_packets),
              static_cast<double>(fc2.egress_packets), 2000.0);
}

TEST(UdpSource, LineRateConstant) {
  EXPECT_NEAR(kLineRate64B, 14.88e6, 0.01e6);
}

}  // namespace
}  // namespace nfv::traffic
