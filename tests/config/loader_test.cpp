#include "config/loader.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace nfv::config {
namespace {

using core::Simulation;

TEST(ConfigLoader, MinimalTopology) {
  Simulation sim;
  const auto topo = load_string(R"(
    # a one-NF deployment
    core batch
    nf fwd core=0 cost=120
    chain c fwd
    udp c rate=1e5
  )",
                                sim);
  EXPECT_EQ(topo.cores.size(), 1u);
  EXPECT_EQ(topo.nfs.size(), 1u);
  EXPECT_EQ(topo.chains.size(), 1u);
  EXPECT_EQ(topo.flows.size(), 1u);
  sim.run_for_seconds(0.05);
  EXPECT_GT(sim.chain_metrics(topo.chains.at("c")).egress_packets, 4000u);
}

TEST(ConfigLoader, FullFig7Topology) {
  Simulation sim;
  const auto topo = load_string(R"(
    mode nfvnice
    core batch
    nf low core=0 cost=120
    nf med core=0 cost=270
    nf high core=0 cost=550
    chain lmh low med high
    udp lmh rate=6e6 size=64
  )",
                                sim);
  sim.run_for_seconds(0.1);
  const auto cm = sim.chain_metrics(topo.chains.at("lmh"));
  EXPECT_GT(cm.egress_packets, 150'000u);     // ~2.7 Mpps under NFVnice
  EXPECT_GT(cm.entry_throttle_drops, 10'000u);  // backpressure active
}

TEST(ConfigLoader, ModeDirectiveTogglesFeatures) {
  Simulation sim;
  load_string("mode default\n", sim);
  EXPECT_FALSE(sim.manager().config().enable_cgroups);
  EXPECT_FALSE(sim.manager().config().enable_backpressure);
  load_string("mode cgroup\n", sim);
  EXPECT_TRUE(sim.manager().config().enable_cgroups);
  EXPECT_FALSE(sim.manager().config().enable_backpressure);
  load_string("mode backpressure\n", sim);
  EXPECT_TRUE(sim.manager().config().enable_backpressure);
  load_string("mode nfvnice\n", sim);
  EXPECT_TRUE(sim.manager().config().enable_ecn);
}

TEST(ConfigLoader, RrCoreWithQuantum) {
  Simulation sim;
  const auto topo = load_string(R"(
    core rr 1
    nf a core=0 cost=100
    chain c a
  )",
                                sim);
  EXPECT_EQ(topo.cores.size(), 1u);
}

TEST(ConfigLoader, NfOptionsParsed) {
  Simulation sim;
  const auto topo = load_string(R"(
    core batch
    nf vip core=0 cost=500 priority=4.0 batch=16
  )",
                                sim);
  EXPECT_DOUBLE_EQ(sim.nf(topo.nfs.at("vip")).priority(), 4.0);
  EXPECT_EQ(sim.nf(topo.nfs.at("vip")).config().batch_size, 16u);
}

TEST(ConfigLoader, TcpFlowOptions) {
  Simulation sim;
  const auto topo = load_string(R"(
    core batch
    nf a core=0 cost=100
    chain c a
    tcp c size=1500 rtt_us=500 start=0.01
  )",
                                sim);
  EXPECT_EQ(topo.flows.count("tcp0"), 1u);
  sim.run_for_seconds(0.05);
  EXPECT_GT(sim.manager().flow_counters(topo.flows.at("tcp0")).egress_packets,
            100u);
}

TEST(ConfigLoader, CommentsAndBlankLinesIgnored) {
  Simulation sim;
  EXPECT_NO_THROW(load_string("\n  # just a comment\n\ncore batch # tail\n",
                              sim));
}

TEST(ConfigLoader, ErrorsCarryLineNumbers) {
  Simulation sim;
  try {
    load_string("core batch\nbogus directive\n", sim);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(ConfigLoader, UnknownNfInChainFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nchain c ghost\n", sim), ConfigError);
}

TEST(ConfigLoader, UnknownCoreFails) {
  Simulation sim;
  EXPECT_THROW(load_string("nf a core=9 cost=1\n", sim), ConfigError);
}

TEST(ConfigLoader, DuplicateNfFails) {
  Simulation sim;
  EXPECT_THROW(
      load_string("core batch\nnf a core=0 cost=1\nnf a core=0 cost=2\n", sim),
      ConfigError);
}

TEST(ConfigLoader, BadNumberFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nnf a core=0 cost=abc\n", sim),
               ConfigError);
}

TEST(ConfigLoader, MissingCoreOptionFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nnf a cost=100\n", sim), ConfigError);
}

TEST(ConfigLoader, UnknownFlowChainFails) {
  Simulation sim;
  EXPECT_THROW(load_string("udp ghost rate=1\n", sim), ConfigError);
}

TEST(ConfigLoader, FaultDirectivesParsed) {
  Simulation sim;
  const auto topo = load_string(R"(
    mode nfvnice
    core batch
    nf a core=0 cost=120
    nf b core=0 cost=270
    chain ab a b
    udp ab rate=2e6
    fault crash b at=0.02 restart_after=0.01
    fault slow a at=0.05 factor=2 for=0.02
    on_dead ab backpressure
  )",
                                sim);
  // Any fault directive arms the lifecycle subsystem.
  EXPECT_TRUE(sim.manager().config().lifecycle.enabled);
  sim.run_for_seconds(0.1);
  const auto& ls = sim.nf_lifecycle_stats(topo.nfs.at("b"));
  EXPECT_EQ(ls.crashes, 1u);
  EXPECT_EQ(ls.recoveries, 1u);
  EXPECT_EQ(sim.nf_lifecycle(topo.nfs.at("b")), fault::NfLifecycle::kRunning);
}

TEST(ConfigLoader, FaultStallAndBypassParsed) {
  Simulation sim;
  const auto topo = load_string(R"(
    core batch
    nf a core=0 cost=120
    nf b core=0 cost=150
    chain ab a b
    udp ab rate=1e6
    fault stall b at=0.02 restart_after=0.01
    on_dead ab bypass
  )",
                                sim);
  sim.run_for_seconds(0.1);
  EXPECT_EQ(sim.nf_lifecycle_stats(topo.nfs.at("b")).forced_crashes, 1u);
  EXPECT_GT(sim.manager().chain_counters(topo.chains.at("ab")).bypassed_hops,
            0u);
}

TEST(ConfigLoader, NoFaultDirectiveLeavesLifecycleDisabled) {
  Simulation sim;
  load_string("core batch\nnf a core=0 cost=100\nchain c a\n", sim);
  EXPECT_FALSE(sim.manager().config().lifecycle.enabled);
}

TEST(ConfigLoader, FaultUnknownNfFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nfault crash ghost at=0.1\n", sim),
               ConfigError);
}

TEST(ConfigLoader, FaultMissingAtFails) {
  Simulation sim;
  EXPECT_THROW(
      load_string("core batch\nnf a core=0 cost=1\nfault crash a\n", sim),
      ConfigError);
}

TEST(ConfigLoader, FaultSlowWithoutFactorFails) {
  Simulation sim;
  EXPECT_THROW(
      load_string("core batch\nnf a core=0 cost=1\nfault slow a at=0.1\n", sim),
      ConfigError);
}

TEST(ConfigLoader, FaultUnknownKindFails) {
  Simulation sim;
  EXPECT_THROW(
      load_string("core batch\nnf a core=0 cost=1\nfault melt a at=0.1\n", sim),
      ConfigError);
}

TEST(ConfigLoader, FaultUnknownOptionFails) {
  Simulation sim;
  EXPECT_THROW(load_string(
                   "core batch\nnf a core=0 cost=1\nfault crash a at=0.1 x=2\n",
                   sim),
               ConfigError);
}

// Overlap validation happens in FaultPlan; the loader must rewrap the
// FaultError as a ConfigError that carries the offending line.
TEST(ConfigLoader, OverlappingFaultsCarryLineNumbers) {
  Simulation sim;
  try {
    load_string(
        "core batch\n"
        "nf a core=0 cost=1\n"
        "fault crash a at=0.1 restart_after=0.1\n"
        "fault stall a at=0.15\n",
        sim);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos);
  }
}

TEST(ConfigLoader, OnDeadUnknownChainFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\non_dead ghost bypass\n", sim),
               ConfigError);
}

TEST(ConfigLoader, OnDeadUnknownPolicyFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nnf a core=0 cost=1\nchain c a\n"
                           "on_dead c explode\n",
                           sim),
               ConfigError);
}

// -- storage fault domain directives (DESIGN.md §12) -------------------------

TEST(ConfigLoader, IoDirectivesParsed) {
  Simulation sim;
  const auto topo = load_string(R"(
    core batch
    nf a core=0 cost=120
    chain c a
    udp c rate=1e5
    io a mode=async buffer=4096 flush_us=500
    io_timeout a us=100
    io_retry a max=3 backoff_us=10 multiplier=1.5 jitter=0.2
    on_io_fail a shed
  )",
                                sim);
  ASSERT_EQ(topo.ios.count("a"), 1u);
  const auto& cfg = topo.ios.at("a")->config();
  EXPECT_EQ(cfg.mode, io::AsyncIoEngine::Mode::kDoubleBuffered);
  EXPECT_EQ(cfg.buffer_bytes, 4096u);
  EXPECT_EQ(cfg.flush_interval, sim.clock().from_micros(500));
  EXPECT_EQ(cfg.io_timeout, sim.clock().from_micros(100));
  EXPECT_EQ(cfg.max_attempts, 3u);
  EXPECT_EQ(cfg.retry_backoff, sim.clock().from_micros(10));
  EXPECT_DOUBLE_EQ(cfg.backoff_multiplier, 1.5);
  EXPECT_DOUBLE_EQ(cfg.jitter_fraction, 0.2);
  EXPECT_EQ(cfg.on_fail, io::AsyncIoEngine::OnIoFail::kShed);
  EXPECT_TRUE(topo.ios.at("a")->fault_domain_enabled());
}

TEST(ConfigLoader, DeviceFaultDirectiveArmsTheDevice) {
  Simulation sim;
  load_string(R"(
    core batch
    nf a core=0 cost=120
    chain c a
    udp c rate=1e5
    io a mode=sync
    device_fault wedge at=0.01
  )",
              sim);
  sim.run_for_seconds(0.02);
  EXPECT_TRUE(sim.disk().wedged());  // the plan reached the device
}

TEST(ConfigLoader, IoTimeoutWithoutIoLineFails) {
  Simulation sim;
  try {
    load_string("core batch\nnf a core=0 cost=1\nio_timeout a us=100\n", sim);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("no io engine"), std::string::npos);
  }
}

TEST(ConfigLoader, DuplicateIoLineFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nnf a core=0 cost=1\n"
                           "io a mode=async\nio a mode=sync\n",
                           sim),
               ConfigError);
}

TEST(ConfigLoader, IoRetryValidatesRanges) {
  Simulation sim;
  const std::string prelude =
      "core batch\nnf a core=0 cost=1\nio a mode=async\n";
  EXPECT_THROW(load_string(prelude + "io_retry a max=0 backoff_us=10\n", sim),
               ConfigError);
  EXPECT_THROW(load_string(prelude + "io_retry a max=2\n", sim), ConfigError);
  EXPECT_THROW(
      load_string(prelude + "io_retry a max=2 backoff_us=10 jitter=1.0\n", sim),
      ConfigError);
}

TEST(ConfigLoader, OnIoFailUnknownPolicyFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nnf a core=0 cost=1\n"
                           "io a mode=async\non_io_fail a explode\n",
                           sim),
               ConfigError);
}

TEST(ConfigLoader, DeviceFaultValidation) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\ndevice_fault slow at=0.1\n", sim),
               ConfigError);  // slow needs factor=
  EXPECT_THROW(load_string("core batch\ndevice_fault torn at=0.1\n", sim),
               ConfigError);  // torn needs fraction=
  EXPECT_THROW(load_string("core batch\ndevice_fault melt at=0.1\n", sim),
               ConfigError);  // unknown kind
  EXPECT_THROW(load_string("core batch\ndevice_fault wedge for=0.1\n", sim),
               ConfigError);  // missing at=
}

// Device-window overlap validation happens in FaultPlan; the loader must
// rewrap the FaultError with the offending line.
TEST(ConfigLoader, OverlappingDeviceFaultsCarryLineNumbers) {
  Simulation sim;
  try {
    load_string(
        "core batch\n"
        "device_fault wedge at=0.1 for=0.1\n"
        "device_fault error at=0.15 for=0.1\n",
        sim);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos);
  }
}

// -- engine directive (DESIGN.md §15) ---------------------------------------

TEST(ConfigLoader, EngineDirectiveSelectsWheel) {
  ::unsetenv("NFV_ENGINE_BACKEND");
  Simulation sim;
  const auto topo = load_string(R"(
    engine wheel pending=100000
    core batch
    nf fwd core=0 cost=120
    chain c fwd
    udp c rate=1e5
  )",
                                sim);
  EXPECT_EQ(sim.engine_backend(), nfv::sim::EngineBackend::kWheel);
  sim.run_for_seconds(0.05);
  EXPECT_GT(sim.chain_metrics(topo.chains.at("c")).egress_packets, 4000u);
}

TEST(ConfigLoader, EngineDirectiveHeapIsDefault) {
  ::unsetenv("NFV_ENGINE_BACKEND");
  Simulation sim;
  load_string("engine heap\ncore batch\n", sim);
  EXPECT_EQ(sim.engine_backend(), nfv::sim::EngineBackend::kHeap);
}

TEST(ConfigLoader, EngineAfterTopologyFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nengine wheel\n", sim), ConfigError);
}

TEST(ConfigLoader, EngineUnknownBackendFails) {
  Simulation sim;
  EXPECT_THROW(load_string("engine quantum\n", sim), ConfigError);
}

TEST(ConfigLoader, EngineBadPendingFails) {
  Simulation sim;
  EXPECT_THROW(load_string("engine wheel pending=lots\n", sim), ConfigError);
  Simulation sim2;
  EXPECT_THROW(load_string("engine wheel pending=-5\n", sim2), ConfigError);
  Simulation sim3;
  EXPECT_THROW(load_string("engine wheel speed=11\n", sim3), ConfigError);
}

// -- slo directive (DESIGN.md §16) ------------------------------------------

TEST(ConfigLoader, SloDirectiveSetsChainTarget) {
  Simulation sim;
  const auto topo = load_string(R"(
    core batch
    nf fwd core=0 cost=120
    chain c fwd
    slo c target_us=150
    udp c rate=1e5
  )",
                                sim);
  sim.run_for_seconds(0.05);
  const auto report = sim.chain_slo_report(topo.chains.at("c"));
  EXPECT_EQ(report.target, sim.clock().from_micros(150.0));
  EXPECT_GT(report.tail.total_count, 0u);
}

TEST(ConfigLoader, SloZeroTargetClears) {
  Simulation sim;
  const auto topo = load_string(
      "core batch\nnf fwd core=0 cost=120\nchain c fwd\n"
      "slo c target_us=150\nslo c target_us=0\n",
      sim);
  EXPECT_EQ(sim.chain_slo_report(topo.chains.at("c")).target, 0u);
}

TEST(ConfigLoader, SloUnknownChainFails) {
  Simulation sim;
  EXPECT_THROW(load_string("core batch\nslo ghost target_us=10\n", sim),
               ConfigError);
}

TEST(ConfigLoader, SloBadOptionFails) {
  Simulation sim;
  EXPECT_THROW(
      load_string("core batch\nnf f core=0 cost=10\nchain c f\nslo c p99=5\n",
                  sim),
      ConfigError);
  Simulation sim2;
  EXPECT_THROW(
      load_string(
          "core batch\nnf f core=0 cost=10\nchain c f\nslo c target_us=-2\n",
          sim2),
      ConfigError);
  Simulation sim3;
  EXPECT_THROW(
      load_string(
          "core batch\nnf f core=0 cost=10\nchain c f\nslo c target_us=abc\n",
          sim3),
      ConfigError);
}

// -- class directive (DESIGN.md §17) ----------------------------------------

TEST(ConfigLoader, ClassDirectiveRegistersFlowClass) {
  Simulation sim;
  const auto topo = load_string(R"(
    mode nfvnice
    core batch
    nf fwd core=0 cost=120
    chain gold fwd
    chain bulk fwd
    class gold priority=4 utility=10
    class bulk utility=2
  )",
                                sim);
  const auto gr = sim.chain_admission_report(topo.chains.at("gold"));
  ASSERT_TRUE(gr.classed);
  EXPECT_DOUBLE_EQ(gr.priority, 4.0);
  EXPECT_DOUBLE_EQ(gr.utility, 10.0);
  const auto br = sim.chain_admission_report(topo.chains.at("bulk"));
  ASSERT_TRUE(br.classed);
  EXPECT_DOUBLE_EQ(br.priority, 1.0);  // omitted options keep defaults
  EXPECT_DOUBLE_EQ(br.utility, 2.0);
}

TEST(ConfigLoader, ClassUnknownChainFails) {
  Simulation sim;
  try {
    load_string("core batch\nclass ghost priority=1\n", sim);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(ConfigLoader, DuplicateClassCarriesLineNumber) {
  Simulation sim;
  try {
    load_string(
        "core batch\n"
        "nf f core=0 cost=10\n"
        "chain c f\n"
        "class c utility=5\n"
        "class c utility=7\n",
        sim);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(ConfigLoader, ClassValidatesRanges) {
  const std::string prelude = "core batch\nnf f core=0 cost=10\nchain c f\n";
  Simulation sim;
  EXPECT_THROW(load_string(prelude + "class c priority=0\n", sim),
               ConfigError);
  Simulation sim2;
  EXPECT_THROW(load_string(prelude + "class c utility=-3\n", sim2),
               ConfigError);
  Simulation sim3;
  EXPECT_THROW(load_string(prelude + "class c priority=1001\n", sim3),
               ConfigError);
  Simulation sim4;
  EXPECT_THROW(load_string(prelude + "class c utility=nan\n", sim4),
               ConfigError);
}

TEST(ConfigLoader, ClassBadOptionFails) {
  const std::string prelude = "core batch\nnf f core=0 cost=10\nchain c f\n";
  Simulation sim;
  EXPECT_THROW(load_string(prelude + "class c weight=5\n", sim), ConfigError);
  Simulation sim2;
  EXPECT_THROW(load_string(prelude + "class c priority\n", sim2), ConfigError);
  Simulation sim3;
  EXPECT_THROW(load_string(prelude + "class c utility=abc\n", sim3),
               ConfigError);
  Simulation sim4;
  EXPECT_THROW(load_string(prelude + "class\n", sim4), ConfigError);
}

}  // namespace
}  // namespace nfv::config
