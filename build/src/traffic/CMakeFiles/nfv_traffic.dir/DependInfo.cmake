
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/tcp_source.cpp" "src/traffic/CMakeFiles/nfv_traffic.dir/tcp_source.cpp.o" "gcc" "src/traffic/CMakeFiles/nfv_traffic.dir/tcp_source.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/traffic/CMakeFiles/nfv_traffic.dir/trace.cpp.o" "gcc" "src/traffic/CMakeFiles/nfv_traffic.dir/trace.cpp.o.d"
  "/root/repo/src/traffic/udp_source.cpp" "src/traffic/CMakeFiles/nfv_traffic.dir/udp_source.cpp.o" "gcc" "src/traffic/CMakeFiles/nfv_traffic.dir/udp_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nfv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pktio/CMakeFiles/nfv_pktio.dir/DependInfo.cmake"
  "/root/repo/build/src/mgr/CMakeFiles/nfv_mgr.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/nfv_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/nfv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/nfv_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/nfv_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/nfv_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
