file(REMOVE_RECURSE
  "CMakeFiles/nfv_traffic.dir/tcp_source.cpp.o"
  "CMakeFiles/nfv_traffic.dir/tcp_source.cpp.o.d"
  "CMakeFiles/nfv_traffic.dir/trace.cpp.o"
  "CMakeFiles/nfv_traffic.dir/trace.cpp.o.d"
  "CMakeFiles/nfv_traffic.dir/udp_source.cpp.o"
  "CMakeFiles/nfv_traffic.dir/udp_source.cpp.o.d"
  "libnfv_traffic.a"
  "libnfv_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
