# Empty compiler generated dependencies file for nfv_traffic.
# This may be replaced when dependencies are built.
