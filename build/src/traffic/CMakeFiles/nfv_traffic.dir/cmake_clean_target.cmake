file(REMOVE_RECURSE
  "libnfv_traffic.a"
)
