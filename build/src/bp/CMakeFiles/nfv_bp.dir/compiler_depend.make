# Empty compiler generated dependencies file for nfv_bp.
# This may be replaced when dependencies are built.
