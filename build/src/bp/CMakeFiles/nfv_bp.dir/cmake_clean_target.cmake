file(REMOVE_RECURSE
  "libnfv_bp.a"
)
