file(REMOVE_RECURSE
  "CMakeFiles/nfv_bp.dir/backpressure.cpp.o"
  "CMakeFiles/nfv_bp.dir/backpressure.cpp.o.d"
  "CMakeFiles/nfv_bp.dir/ecn.cpp.o"
  "CMakeFiles/nfv_bp.dir/ecn.cpp.o.d"
  "libnfv_bp.a"
  "libnfv_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
