# Empty dependencies file for nfv_pktio.
# This may be replaced when dependencies are built.
