file(REMOVE_RECURSE
  "libnfv_pktio.a"
)
