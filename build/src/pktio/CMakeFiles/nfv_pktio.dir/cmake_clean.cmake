file(REMOVE_RECURSE
  "CMakeFiles/nfv_pktio.dir/mempool.cpp.o"
  "CMakeFiles/nfv_pktio.dir/mempool.cpp.o.d"
  "CMakeFiles/nfv_pktio.dir/ring.cpp.o"
  "CMakeFiles/nfv_pktio.dir/ring.cpp.o.d"
  "libnfv_pktio.a"
  "libnfv_pktio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_pktio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
