file(REMOVE_RECURSE
  "libnfv_common.a"
)
