file(REMOVE_RECURSE
  "CMakeFiles/nfv_common.dir/histogram.cpp.o"
  "CMakeFiles/nfv_common.dir/histogram.cpp.o.d"
  "CMakeFiles/nfv_common.dir/logging.cpp.o"
  "CMakeFiles/nfv_common.dir/logging.cpp.o.d"
  "CMakeFiles/nfv_common.dir/rng.cpp.o"
  "CMakeFiles/nfv_common.dir/rng.cpp.o.d"
  "CMakeFiles/nfv_common.dir/stats.cpp.o"
  "CMakeFiles/nfv_common.dir/stats.cpp.o.d"
  "libnfv_common.a"
  "libnfv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
