# Empty compiler generated dependencies file for nfv_common.
# This may be replaced when dependencies are built.
