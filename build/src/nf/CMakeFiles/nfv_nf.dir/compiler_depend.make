# Empty compiler generated dependencies file for nfv_nf.
# This may be replaced when dependencies are built.
