file(REMOVE_RECURSE
  "CMakeFiles/nfv_nf.dir/cost_model.cpp.o"
  "CMakeFiles/nfv_nf.dir/cost_model.cpp.o.d"
  "CMakeFiles/nfv_nf.dir/nf_task.cpp.o"
  "CMakeFiles/nfv_nf.dir/nf_task.cpp.o.d"
  "libnfv_nf.a"
  "libnfv_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
