file(REMOVE_RECURSE
  "libnfv_nf.a"
)
