
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow_table.cpp" "src/flow/CMakeFiles/nfv_flow.dir/flow_table.cpp.o" "gcc" "src/flow/CMakeFiles/nfv_flow.dir/flow_table.cpp.o.d"
  "/root/repo/src/flow/service_chain.cpp" "src/flow/CMakeFiles/nfv_flow.dir/service_chain.cpp.o" "gcc" "src/flow/CMakeFiles/nfv_flow.dir/service_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pktio/CMakeFiles/nfv_pktio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
