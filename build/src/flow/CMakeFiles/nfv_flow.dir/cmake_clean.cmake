file(REMOVE_RECURSE
  "CMakeFiles/nfv_flow.dir/flow_table.cpp.o"
  "CMakeFiles/nfv_flow.dir/flow_table.cpp.o.d"
  "CMakeFiles/nfv_flow.dir/service_chain.cpp.o"
  "CMakeFiles/nfv_flow.dir/service_chain.cpp.o.d"
  "libnfv_flow.a"
  "libnfv_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
