# Empty compiler generated dependencies file for nfv_flow.
# This may be replaced when dependencies are built.
