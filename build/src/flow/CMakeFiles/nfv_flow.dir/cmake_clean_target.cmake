file(REMOVE_RECURSE
  "libnfv_flow.a"
)
