# Empty compiler generated dependencies file for nfv_io.
# This may be replaced when dependencies are built.
