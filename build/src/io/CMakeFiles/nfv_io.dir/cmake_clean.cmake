file(REMOVE_RECURSE
  "CMakeFiles/nfv_io.dir/async_io.cpp.o"
  "CMakeFiles/nfv_io.dir/async_io.cpp.o.d"
  "CMakeFiles/nfv_io.dir/block_device.cpp.o"
  "CMakeFiles/nfv_io.dir/block_device.cpp.o.d"
  "libnfv_io.a"
  "libnfv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
