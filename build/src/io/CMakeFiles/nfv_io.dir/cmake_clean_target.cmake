file(REMOVE_RECURSE
  "libnfv_io.a"
)
