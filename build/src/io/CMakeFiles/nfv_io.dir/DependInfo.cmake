
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/async_io.cpp" "src/io/CMakeFiles/nfv_io.dir/async_io.cpp.o" "gcc" "src/io/CMakeFiles/nfv_io.dir/async_io.cpp.o.d"
  "/root/repo/src/io/block_device.cpp" "src/io/CMakeFiles/nfv_io.dir/block_device.cpp.o" "gcc" "src/io/CMakeFiles/nfv_io.dir/block_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nfv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
