# Empty dependencies file for nfv_config.
# This may be replaced when dependencies are built.
