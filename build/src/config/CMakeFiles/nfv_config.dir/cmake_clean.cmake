file(REMOVE_RECURSE
  "CMakeFiles/nfv_config.dir/loader.cpp.o"
  "CMakeFiles/nfv_config.dir/loader.cpp.o.d"
  "libnfv_config.a"
  "libnfv_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
