file(REMOVE_RECURSE
  "libnfv_config.a"
)
