# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("pktio")
subdirs("sched")
subdirs("flow")
subdirs("io")
subdirs("nf")
subdirs("bp")
subdirs("mgr")
subdirs("traffic")
subdirs("core")
subdirs("nfs")
subdirs("config")
