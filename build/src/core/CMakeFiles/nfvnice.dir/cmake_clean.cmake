file(REMOVE_RECURSE
  "CMakeFiles/nfvnice.dir/simulation.cpp.o"
  "CMakeFiles/nfvnice.dir/simulation.cpp.o.d"
  "libnfvnice.a"
  "libnfvnice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvnice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
