# Empty dependencies file for nfvnice.
# This may be replaced when dependencies are built.
