file(REMOVE_RECURSE
  "libnfvnice.a"
)
