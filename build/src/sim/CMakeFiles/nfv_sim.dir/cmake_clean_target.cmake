file(REMOVE_RECURSE
  "libnfv_sim.a"
)
