# Empty compiler generated dependencies file for nfv_sim.
# This may be replaced when dependencies are built.
