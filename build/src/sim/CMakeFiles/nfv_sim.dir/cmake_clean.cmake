file(REMOVE_RECURSE
  "CMakeFiles/nfv_sim.dir/engine.cpp.o"
  "CMakeFiles/nfv_sim.dir/engine.cpp.o.d"
  "libnfv_sim.a"
  "libnfv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
