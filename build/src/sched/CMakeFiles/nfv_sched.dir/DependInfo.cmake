
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cfs.cpp" "src/sched/CMakeFiles/nfv_sched.dir/cfs.cpp.o" "gcc" "src/sched/CMakeFiles/nfv_sched.dir/cfs.cpp.o.d"
  "/root/repo/src/sched/cgroup.cpp" "src/sched/CMakeFiles/nfv_sched.dir/cgroup.cpp.o" "gcc" "src/sched/CMakeFiles/nfv_sched.dir/cgroup.cpp.o.d"
  "/root/repo/src/sched/core.cpp" "src/sched/CMakeFiles/nfv_sched.dir/core.cpp.o" "gcc" "src/sched/CMakeFiles/nfv_sched.dir/core.cpp.o.d"
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/nfv_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/nfv_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/rr.cpp" "src/sched/CMakeFiles/nfv_sched.dir/rr.cpp.o" "gcc" "src/sched/CMakeFiles/nfv_sched.dir/rr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nfv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
