# Empty compiler generated dependencies file for nfv_sched.
# This may be replaced when dependencies are built.
