file(REMOVE_RECURSE
  "libnfv_sched.a"
)
