file(REMOVE_RECURSE
  "CMakeFiles/nfv_sched.dir/cfs.cpp.o"
  "CMakeFiles/nfv_sched.dir/cfs.cpp.o.d"
  "CMakeFiles/nfv_sched.dir/cgroup.cpp.o"
  "CMakeFiles/nfv_sched.dir/cgroup.cpp.o.d"
  "CMakeFiles/nfv_sched.dir/core.cpp.o"
  "CMakeFiles/nfv_sched.dir/core.cpp.o.d"
  "CMakeFiles/nfv_sched.dir/fifo.cpp.o"
  "CMakeFiles/nfv_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/nfv_sched.dir/rr.cpp.o"
  "CMakeFiles/nfv_sched.dir/rr.cpp.o.d"
  "libnfv_sched.a"
  "libnfv_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
