# Empty compiler generated dependencies file for nfv_mgr.
# This may be replaced when dependencies are built.
