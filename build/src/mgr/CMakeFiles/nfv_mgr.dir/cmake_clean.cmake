file(REMOVE_RECURSE
  "CMakeFiles/nfv_mgr.dir/manager.cpp.o"
  "CMakeFiles/nfv_mgr.dir/manager.cpp.o.d"
  "libnfv_mgr.a"
  "libnfv_mgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_mgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
