file(REMOVE_RECURSE
  "libnfv_mgr.a"
)
