# CMake generated Testfile for 
# Source directory: /root/repo/src/mgr
# Build directory: /root/repo/build/src/mgr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
