file(REMOVE_RECURSE
  "CMakeFiles/tcp_udp_isolation.dir/tcp_udp_isolation.cpp.o"
  "CMakeFiles/tcp_udp_isolation.dir/tcp_udp_isolation.cpp.o.d"
  "tcp_udp_isolation"
  "tcp_udp_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_udp_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
