# Empty compiler generated dependencies file for tcp_udp_isolation.
# This may be replaced when dependencies are built.
