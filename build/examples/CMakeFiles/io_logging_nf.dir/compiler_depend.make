# Empty compiler generated dependencies file for io_logging_nf.
# This may be replaced when dependencies are built.
