file(REMOVE_RECURSE
  "CMakeFiles/io_logging_nf.dir/io_logging_nf.cpp.o"
  "CMakeFiles/io_logging_nf.dir/io_logging_nf.cpp.o.d"
  "io_logging_nf"
  "io_logging_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_logging_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
