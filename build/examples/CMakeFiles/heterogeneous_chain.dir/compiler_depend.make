# Empty compiler generated dependencies file for heterogeneous_chain.
# This may be replaced when dependencies are built.
