file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_chain.dir/heterogeneous_chain.cpp.o"
  "CMakeFiles/heterogeneous_chain.dir/heterogeneous_chain.cpp.o.d"
  "heterogeneous_chain"
  "heterogeneous_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
