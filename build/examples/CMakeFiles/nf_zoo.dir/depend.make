# Empty dependencies file for nf_zoo.
# This may be replaced when dependencies are built.
