file(REMOVE_RECURSE
  "CMakeFiles/nf_zoo.dir/nf_zoo.cpp.o"
  "CMakeFiles/nf_zoo.dir/nf_zoo.cpp.o.d"
  "nf_zoo"
  "nf_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
