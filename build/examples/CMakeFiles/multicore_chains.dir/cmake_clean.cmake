file(REMOVE_RECURSE
  "CMakeFiles/multicore_chains.dir/multicore_chains.cpp.o"
  "CMakeFiles/multicore_chains.dir/multicore_chains.cpp.o.d"
  "multicore_chains"
  "multicore_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
