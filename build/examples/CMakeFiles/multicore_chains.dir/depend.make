# Empty dependencies file for multicore_chains.
# This may be replaced when dependencies are built.
