# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pktio_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/nf_test[1]_include.cmake")
include("/root/repo/build/tests/bp_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/mgr_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
