# Empty compiler generated dependencies file for pktio_test.
# This may be replaced when dependencies are built.
