file(REMOVE_RECURSE
  "CMakeFiles/pktio_test.dir/pktio/flow_key_test.cpp.o"
  "CMakeFiles/pktio_test.dir/pktio/flow_key_test.cpp.o.d"
  "CMakeFiles/pktio_test.dir/pktio/mempool_test.cpp.o"
  "CMakeFiles/pktio_test.dir/pktio/mempool_test.cpp.o.d"
  "CMakeFiles/pktio_test.dir/pktio/ring_test.cpp.o"
  "CMakeFiles/pktio_test.dir/pktio/ring_test.cpp.o.d"
  "pktio_test"
  "pktio_test.pdb"
  "pktio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pktio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
