file(REMOVE_RECURSE
  "CMakeFiles/nfs_test.dir/nfs/bridge_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/bridge_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/dpi_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/dpi_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/firewall_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/firewall_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/load_balancer_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/load_balancer_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/monitor_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/monitor_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/nat_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/nat_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/nf_zoo_integration_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/nf_zoo_integration_test.cpp.o.d"
  "CMakeFiles/nfs_test.dir/nfs/rate_limiter_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs/rate_limiter_test.cpp.o.d"
  "nfs_test"
  "nfs_test.pdb"
  "nfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
