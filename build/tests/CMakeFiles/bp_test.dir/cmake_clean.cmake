file(REMOVE_RECURSE
  "CMakeFiles/bp_test.dir/bp/backpressure_test.cpp.o"
  "CMakeFiles/bp_test.dir/bp/backpressure_test.cpp.o.d"
  "CMakeFiles/bp_test.dir/bp/ecn_test.cpp.o"
  "CMakeFiles/bp_test.dir/bp/ecn_test.cpp.o.d"
  "bp_test"
  "bp_test.pdb"
  "bp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
