# Empty dependencies file for mgr_test.
# This may be replaced when dependencies are built.
