file(REMOVE_RECURSE
  "CMakeFiles/mgr_test.dir/mgr/latency_test.cpp.o"
  "CMakeFiles/mgr_test.dir/mgr/latency_test.cpp.o.d"
  "CMakeFiles/mgr_test.dir/mgr/manager_test.cpp.o"
  "CMakeFiles/mgr_test.dir/mgr/manager_test.cpp.o.d"
  "CMakeFiles/mgr_test.dir/mgr/wake_coalescing_test.cpp.o"
  "CMakeFiles/mgr_test.dir/mgr/wake_coalescing_test.cpp.o.d"
  "mgr_test"
  "mgr_test.pdb"
  "mgr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
