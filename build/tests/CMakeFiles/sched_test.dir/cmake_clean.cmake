file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/cfs_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/cfs_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/cgroup_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/cgroup_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/core_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/core_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/fifo_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/fifo_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/rr_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/rr_test.cpp.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
