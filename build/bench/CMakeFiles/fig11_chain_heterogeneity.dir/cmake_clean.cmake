file(REMOVE_RECURSE
  "CMakeFiles/fig11_chain_heterogeneity.dir/fig11_chain_heterogeneity.cpp.o"
  "CMakeFiles/fig11_chain_heterogeneity.dir/fig11_chain_heterogeneity.cpp.o.d"
  "fig11_chain_heterogeneity"
  "fig11_chain_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_chain_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
