# Empty dependencies file for fig11_chain_heterogeneity.
# This may be replaced when dependencies are built.
