# Empty dependencies file for fig16_chain_length.
# This may be replaced when dependencies are built.
