file(REMOVE_RECURSE
  "CMakeFiles/fig16_chain_length.dir/fig16_chain_length.cpp.o"
  "CMakeFiles/fig16_chain_length.dir/fig16_chain_length.cpp.o.d"
  "fig16_chain_length"
  "fig16_chain_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_chain_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
