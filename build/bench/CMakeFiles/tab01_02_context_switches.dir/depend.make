# Empty dependencies file for tab01_02_context_switches.
# This may be replaced when dependencies are built.
