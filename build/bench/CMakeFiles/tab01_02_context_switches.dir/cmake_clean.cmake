file(REMOVE_RECURSE
  "CMakeFiles/tab01_02_context_switches.dir/tab01_02_context_switches.cpp.o"
  "CMakeFiles/tab01_02_context_switches.dir/tab01_02_context_switches.cpp.o.d"
  "tab01_02_context_switches"
  "tab01_02_context_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_02_context_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
