# Empty dependencies file for tab06_shared_nf_chains.
# This may be replaced when dependencies are built.
