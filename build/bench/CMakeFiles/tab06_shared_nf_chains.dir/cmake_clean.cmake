file(REMOVE_RECURSE
  "CMakeFiles/tab06_shared_nf_chains.dir/tab06_shared_nf_chains.cpp.o"
  "CMakeFiles/tab06_shared_nf_chains.dir/tab06_shared_nf_chains.cpp.o.d"
  "tab06_shared_nf_chains"
  "tab06_shared_nf_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_shared_nf_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
