file(REMOVE_RECURSE
  "CMakeFiles/ablation_wakeup.dir/ablation_wakeup.cpp.o"
  "CMakeFiles/ablation_wakeup.dir/ablation_wakeup.cpp.o.d"
  "ablation_wakeup"
  "ablation_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
