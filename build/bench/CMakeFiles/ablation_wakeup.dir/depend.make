# Empty dependencies file for ablation_wakeup.
# This may be replaced when dependencies are built.
