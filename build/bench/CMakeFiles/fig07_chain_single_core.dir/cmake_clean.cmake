file(REMOVE_RECURSE
  "CMakeFiles/fig07_chain_single_core.dir/fig07_chain_single_core.cpp.o"
  "CMakeFiles/fig07_chain_single_core.dir/fig07_chain_single_core.cpp.o.d"
  "fig07_chain_single_core"
  "fig07_chain_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_chain_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
