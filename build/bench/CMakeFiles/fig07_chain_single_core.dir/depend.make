# Empty dependencies file for fig07_chain_single_core.
# This may be replaced when dependencies are built.
