file(REMOVE_RECURSE
  "CMakeFiles/fig12_workload_heterogeneity.dir/fig12_workload_heterogeneity.cpp.o"
  "CMakeFiles/fig12_workload_heterogeneity.dir/fig12_workload_heterogeneity.cpp.o.d"
  "fig12_workload_heterogeneity"
  "fig12_workload_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_workload_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
