# Empty dependencies file for fig12_workload_heterogeneity.
# This may be replaced when dependencies are built.
