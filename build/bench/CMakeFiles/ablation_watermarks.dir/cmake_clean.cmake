file(REMOVE_RECURSE
  "CMakeFiles/ablation_watermarks.dir/ablation_watermarks.cpp.o"
  "CMakeFiles/ablation_watermarks.dir/ablation_watermarks.cpp.o.d"
  "ablation_watermarks"
  "ablation_watermarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_watermarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
