# Empty dependencies file for ablation_watermarks.
# This may be replaced when dependencies are built.
