file(REMOVE_RECURSE
  "CMakeFiles/fig15bc_fairness.dir/fig15bc_fairness.cpp.o"
  "CMakeFiles/fig15bc_fairness.dir/fig15bc_fairness.cpp.o.d"
  "fig15bc_fairness"
  "fig15bc_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15bc_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
