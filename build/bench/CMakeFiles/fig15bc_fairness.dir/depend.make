# Empty dependencies file for fig15bc_fairness.
# This may be replaced when dependencies are built.
