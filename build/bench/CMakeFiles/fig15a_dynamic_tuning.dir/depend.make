# Empty dependencies file for fig15a_dynamic_tuning.
# This may be replaced when dependencies are built.
