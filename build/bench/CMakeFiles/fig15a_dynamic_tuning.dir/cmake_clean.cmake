file(REMOVE_RECURSE
  "CMakeFiles/fig15a_dynamic_tuning.dir/fig15a_dynamic_tuning.cpp.o"
  "CMakeFiles/fig15a_dynamic_tuning.dir/fig15a_dynamic_tuning.cpp.o.d"
  "fig15a_dynamic_tuning"
  "fig15a_dynamic_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15a_dynamic_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
