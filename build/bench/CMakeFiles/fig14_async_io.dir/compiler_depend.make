# Empty compiler generated dependencies file for fig14_async_io.
# This may be replaced when dependencies are built.
