file(REMOVE_RECURSE
  "CMakeFiles/fig14_async_io.dir/fig14_async_io.cpp.o"
  "CMakeFiles/fig14_async_io.dir/fig14_async_io.cpp.o.d"
  "fig14_async_io"
  "fig14_async_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_async_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
