# Empty dependencies file for fig10_variable_cost.
# This may be replaced when dependencies are built.
