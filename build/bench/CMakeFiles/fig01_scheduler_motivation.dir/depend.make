# Empty dependencies file for fig01_scheduler_motivation.
# This may be replaced when dependencies are built.
