# Empty dependencies file for ablation_numa.
# This may be replaced when dependencies are built.
