file(REMOVE_RECURSE
  "CMakeFiles/tab05_multicore_chain.dir/tab05_multicore_chain.cpp.o"
  "CMakeFiles/tab05_multicore_chain.dir/tab05_multicore_chain.cpp.o.d"
  "tab05_multicore_chain"
  "tab05_multicore_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_multicore_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
