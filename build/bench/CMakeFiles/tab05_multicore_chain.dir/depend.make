# Empty dependencies file for tab05_multicore_chain.
# This may be replaced when dependencies are built.
