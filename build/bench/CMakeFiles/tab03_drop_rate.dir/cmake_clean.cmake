file(REMOVE_RECURSE
  "CMakeFiles/tab03_drop_rate.dir/tab03_drop_rate.cpp.o"
  "CMakeFiles/tab03_drop_rate.dir/tab03_drop_rate.cpp.o.d"
  "tab03_drop_rate"
  "tab03_drop_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_drop_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
