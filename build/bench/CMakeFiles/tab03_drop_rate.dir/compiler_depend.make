# Empty compiler generated dependencies file for tab03_drop_rate.
# This may be replaced when dependencies are built.
