file(REMOVE_RECURSE
  "CMakeFiles/tab04_sched_latency.dir/tab04_sched_latency.cpp.o"
  "CMakeFiles/tab04_sched_latency.dir/tab04_sched_latency.cpp.o.d"
  "tab04_sched_latency"
  "tab04_sched_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_sched_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
