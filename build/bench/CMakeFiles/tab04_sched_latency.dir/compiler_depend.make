# Empty compiler generated dependencies file for tab04_sched_latency.
# This may be replaced when dependencies are built.
