# Empty compiler generated dependencies file for fig13_tcp_udp_isolation.
# This may be replaced when dependencies are built.
