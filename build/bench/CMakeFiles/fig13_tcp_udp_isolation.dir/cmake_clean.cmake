file(REMOVE_RECURSE
  "CMakeFiles/fig13_tcp_udp_isolation.dir/fig13_tcp_udp_isolation.cpp.o"
  "CMakeFiles/fig13_tcp_udp_isolation.dir/fig13_tcp_udp_isolation.cpp.o.d"
  "fig13_tcp_udp_isolation"
  "fig13_tcp_udp_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tcp_udp_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
