// Figure 12 (§4.3.3): workload heterogeneity.
//
// Three homogeneous NFs (same cost) on one core; Type-k sends k flows of
// equal rate, each traversing all three NFs in a different (deterministic
// pseudo-random) order, so every flow has a different bottleneck NF.
// Expected shape: vanilla schedulers degrade once two or more flows with
// different orders compete; NFVnice holds roughly the same aggregate
// throughput regardless of flow count and ordering.

#include "harness.hpp"

using namespace bench;

namespace {

double run_type(const Mode& mode, const Sched& sched, int flows, double secs) {
  Simulation sim(make_config(mode));
  const auto core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
  std::vector<nfv::flow::NfId> nfs;
  for (int i = 0; i < 3; ++i) {
    nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                             nfv::nf::CostModel::fixed(300)));
  }
  // The six permutations of a 3-NF traversal.
  const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  const double total_rate = 6e6;
  std::vector<nfv::flow::ChainId> chains;
  for (int f = 0; f < flows; ++f) {
    const int* p = perms[f % 6];
    chains.push_back(sim.add_chain(
        "flow" + std::to_string(f), {nfs[p[0]], nfs[p[1]], nfs[p[2]]}));
    sim.add_udp_flow(chains.back(), total_rate / flows);
  }
  sim.run_for_seconds(secs);
  std::uint64_t egress = 0;
  for (const auto chain : chains) {
    egress += sim.chain_metrics(chain).egress_packets;
  }
  return mpps(egress, secs);
}

}  // namespace

int main() {
  std::printf("Figure 12: 1-6 equal-rate flows, random NF order per flow "
              "(3 homogeneous 300-cycle NFs, one core, 6 Mpps total)\n");
  print_title("Aggregate throughput (Mpps)");
  print_row({"Scheduler/Mode", "Type1", "Type2", "Type3", "Type4", "Type5",
             "Type6"});
  const double secs = seconds(0.2);
  ParallelRunner<double> runner;
  for (const Sched& sched : kAllScheds) {
    for (const Mode& mode : kDefaultVsNfvnice) {
      for (int flows = 1; flows <= 6; ++flows) {
        runner.submit([&mode, &sched, flows, secs] {
          return run_type(mode, sched, flows, secs);
        });
      }
    }
  }
  const auto results = runner.run();

  std::size_t idx = 0;
  for (const Sched& sched : kAllScheds) {
    for (const Mode& mode : kDefaultVsNfvnice) {
      std::vector<std::string> cells{std::string(sched.name) + "/" +
                                     mode.name};
      for (int flows = 1; flows <= 6; ++flows) {
        cells.push_back(fmt("%.2f", results[idx++]));
      }
      print_row(cells);
    }
  }
  return 0;
}
