// google-benchmark microbenchmarks of the substrate hot paths.
//
// These are not paper artifacts; they size the simulator itself: ring
// enqueue/dequeue, flow-table lookup, histogram insert/quantile, moving-
// window median, event-engine throughput, and a full end-to-end simulated
// second per wall-second figure.

#include <benchmark/benchmark.h>

#include "common/histogram.hpp"
#include "common/moving_window.hpp"
#include "common/rng.hpp"
#include "core/simulation.hpp"
#include "flow/flow_table.hpp"
#include "pktio/mempool.hpp"
#include "pktio/ring.hpp"
#include "sim/engine.hpp"

namespace {

void BM_RingEnqueueDequeue(benchmark::State& state) {
  nfv::pktio::Ring ring(1024);
  nfv::pktio::Mbuf mbuf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.enqueue(&mbuf));
    benchmark::DoNotOptimize(ring.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingEnqueueDequeue);

void BM_RingBurst(benchmark::State& state) {
  const std::size_t burst = state.range(0);
  nfv::pktio::Ring ring(4096);
  nfv::pktio::Mbuf mbuf;
  std::vector<nfv::pktio::Mbuf*> out(burst);
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) ring.enqueue(&mbuf);
    benchmark::DoNotOptimize(ring.dequeue_burst(out.data(), burst));
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_RingBurst)->Arg(8)->Arg(32)->Arg(128);

void BM_MempoolAllocFree(benchmark::State& state) {
  nfv::pktio::MbufPool pool(4096);
  for (auto _ : state) {
    nfv::pktio::Mbuf* m = pool.alloc();
    benchmark::DoNotOptimize(m);
    pool.free(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MempoolAllocFree);

void BM_FlowTableLookup(benchmark::State& state) {
  const std::uint32_t flows = state.range(0);
  nfv::flow::FlowTable table;
  std::vector<nfv::pktio::FlowKey> keys;
  for (std::uint32_t i = 0; i < flows; ++i) {
    nfv::pktio::FlowKey key{i, 42, static_cast<std::uint16_t>(i), 80, 17};
    table.install(key, 0);
    keys.push_back(key);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(keys[i++ % flows]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(1024)->Arg(65536);

void BM_HistogramRecord(benchmark::State& state) {
  nfv::Histogram hist;
  nfv::Rng rng(1);
  for (auto _ : state) {
    hist.record(rng.next_below(10000) + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramMedian(benchmark::State& state) {
  nfv::Histogram hist;
  nfv::Rng rng(1);
  for (int i = 0; i < 100000; ++i) hist.record(rng.next_below(10000) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.median());
  }
}
BENCHMARK(BM_HistogramMedian);

void BM_MovingWindowMedian(benchmark::State& state) {
  nfv::MovingWindow window(260'000'000);
  nfv::Rng rng(1);
  nfv::Cycles now = 0;
  for (int i = 0; i < 100; ++i) {
    window.record(now, rng.next_below(1000) + 1);
    now += 2'600'000;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.median(now));
  }
}
BENCHMARK(BM_MovingWindowMedian);

void BM_EngineScheduleDispatch(benchmark::State& state) {
  nfv::sim::Engine engine;
  for (auto _ : state) {
    engine.schedule_after(1, [] {});
    engine.run_until(engine.now() + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineScheduleDispatch);

/// Whole-platform speed: simulated milliseconds of the Fig. 7 chain per
/// wall second.
void BM_EndToEndChainMillisecond(benchmark::State& state) {
  nfv::core::PlatformConfig cfg;
  cfg.set_nfvnice(true);
  nfv::core::Simulation sim(cfg);
  const auto core_id = sim.add_core(nfv::core::SchedPolicy::kCfsBatch, 100.0);
  const auto a = sim.add_nf("a", core_id, nfv::nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nfv::nf::CostModel::fixed(270));
  const auto c = sim.add_nf("c", core_id, nfv::nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("lmh", {a, b, c});
  sim.add_udp_flow(chain, 6e6);
  for (auto _ : state) {
    sim.run_for_seconds(0.001);
  }
  state.SetItemsProcessed(state.iterations());  // items = simulated ms
}
BENCHMARK(BM_EndToEndChainMillisecond)->Unit(benchmark::kMillisecond);

/// Same chain with the burst window forced, to size what batched event
/// execution buys (1 = the seed's one-event-per-packet schedule).
void BM_EndToEndBurstWindow(benchmark::State& state) {
  nfv::core::PlatformConfig cfg;
  cfg.set_nfvnice(true);
  cfg.set_burst_window(static_cast<std::uint32_t>(state.range(0)));
  nfv::core::Simulation sim(cfg);
  const auto core_id = sim.add_core(nfv::core::SchedPolicy::kCfsBatch, 100.0);
  const auto a = sim.add_nf("a", core_id, nfv::nf::CostModel::fixed(120));
  const auto b = sim.add_nf("b", core_id, nfv::nf::CostModel::fixed(270));
  const auto c = sim.add_nf("c", core_id, nfv::nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("lmh", {a, b, c});
  sim.add_udp_flow(chain, 6e6);
  for (auto _ : state) {
    sim.run_for_seconds(0.001);
  }
  state.SetItemsProcessed(state.iterations());  // items = simulated ms
}
BENCHMARK(BM_EndToEndBurstWindow)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
