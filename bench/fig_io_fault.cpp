// Goodput under storage faults (beyond the paper; DESIGN.md §12).
//
// The Fig. 14 logging scenario — two 2 Mpps flows through logger(300) ->
// fwd(150), flow-1's packets written to disk — run against a deterministic
// storage fault plan: a 20 ms full wedge, a 15 ms 4x latency spike and a
// 5 ms error window. Two I/O stacks face the same plan:
//
//   * sync      — the baseline: per-packet synchronous writes and no fault
//                 domain. Every outage stalls the logger for its full
//                 length (plus the replayed queue) and throughput collapses
//                 with it.
//   * async+retry — libnf's double-buffered engine with the storage fault
//                 domain armed: 1 ms completion deadlines, 4 attempts with
//                 exponential backoff, on_io_fail=shed. The wedge is
//                 detected within a handful of timeout periods, the engine
//                 degrades to process-without-logging, recovery probes
//                 re-attach the device, and packet goodput barely moves.
//
// Headline for tools/check_bench_baseline.py: io_fault_goodput_ratio —
// aggregate faulted goodput of async+retry over the sync baseline.
// Simulation output, so it is deterministic.

#include "harness.hpp"

#include "fault/fault_plan.hpp"

using namespace bench;

namespace {

struct IoFaultResult {
  double aggregate_mpps = 0.0;
  double flow2_mpps = 0.0;
  std::uint64_t dropped_writes = 0;
  std::uint64_t shed_bytes = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded_entries = 0;
  double degraded_ms = 0.0;
};

IoFaultResult run(bool async_io, bool faulted, double secs) {
  Simulation sim(make_config(kModeNfvnice));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  const auto logger =
      sim.add_nf("logger", core_id, nfv::nf::CostModel::fixed(300));
  const auto fwd = sim.add_nf("fwd", core_id, nfv::nf::CostModel::fixed(150));
  const auto chain1 = sim.add_chain("logged", {logger, fwd});
  const auto chain2 = sim.add_chain("plain", {logger, fwd});

  nfv::io::AsyncIoEngine::Config io_cfg;
  io_cfg.mode = async_io ? nfv::io::AsyncIoEngine::Mode::kDoubleBuffered
                         : nfv::io::AsyncIoEngine::Mode::kSynchronous;
  io_cfg.buffer_bytes = 256 * 1024;
  auto& io_engine = sim.attach_io(logger, io_cfg);
  if (async_io) {
    // Arm the storage fault domain (the sync baseline predates it).
    io_engine.set_timeout(sim.clock().from_micros(1000));
    io_engine.set_retry(4, sim.clock().from_micros(10), 2.0, 0.1);
    io_engine.set_on_fail(nfv::io::AsyncIoEngine::OnIoFail::kShed);
  }

  sim.nf(logger).set_handler([&io_engine, chain1](nfv::pktio::Mbuf& pkt) {
    if (pkt.chain_id == chain1) io_engine.write(pkt.size_bytes);
    return nfv::nf::NfAction::kForward;
  });

  sim.add_udp_flow(chain1, 2e6);
  sim.add_udp_flow(chain2, 2e6);

  if (faulted) {
    nfv::fault::FaultPlan plan;
    auto cyc = [&](double frac) {
      return sim.clock().from_seconds(secs * frac);
    };
    plan.add_device_wedge(cyc(0.20), cyc(0.20));      // 20 ms full wedge
    plan.add_device_slow(cyc(0.47), 4.0, cyc(0.10));  // 10 ms latency spike
    plan.add_device_error(cyc(0.67), cyc(0.03));      // 3 ms error window
    sim.set_fault_plan(std::move(plan));
  }
  sim.run_for_seconds(secs);

  IoFaultResult out;
  out.aggregate_mpps = mpps(sim.chain_metrics(chain1).egress_packets +
                                sim.chain_metrics(chain2).egress_packets,
                            secs);
  out.flow2_mpps = mpps(sim.chain_metrics(chain2).egress_packets, secs);
  out.dropped_writes = io_engine.dropped_writes();
  out.shed_bytes = io_engine.shed_bytes();
  out.retries = io_engine.retries();
  out.timeouts = io_engine.timeouts();
  out.degraded_entries = io_engine.degraded_entries();
  out.degraded_ms =
      sim.clock().to_millis(io_engine.time_in_degraded(sim.engine().now()));
  return out;
}

constexpr const char* kStackNames[] = {"sync", "async+retry"};

}  // namespace

int main(int argc, char** argv) {
  const bool json = json_mode(argc, argv);
  const double secs = seconds(0.1);

  ParallelRunner<IoFaultResult> runner;
  for (const bool async_io : {false, true}) {
    for (const bool faulted : {false, true}) {
      runner.submit(
          [async_io, faulted, secs] { return run(async_io, faulted, secs); });
    }
  }
  const auto results = runner.run();
  const IoFaultResult& sync_faulted = results[1];
  const IoFaultResult& async_faulted = results[3];
  const double ratio = sync_faulted.aggregate_mpps > 0.0
                           ? async_faulted.aggregate_mpps /
                                 sync_faulted.aggregate_mpps
                           : 0.0;

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "fig_io_fault");
    w.key("rows");
    w.begin_array();
    std::size_t idx = 0;
    for (const bool async_io : {false, true}) {
      for (const bool faulted : {false, true}) {
        const IoFaultResult& r = results[idx++];
        w.begin_object();
        w.field("stack", kStackNames[async_io ? 1 : 0]);
        w.field("faulted", static_cast<std::int64_t>(faulted ? 1 : 0));
        w.field("aggregate_mpps", r.aggregate_mpps);
        w.field("flow2_mpps", r.flow2_mpps);
        w.field("dropped_writes", r.dropped_writes);
        w.field("shed_bytes", r.shed_bytes);
        w.field("retries", r.retries);
        w.field("timeouts", r.timeouts);
        w.field("degraded_entries", r.degraded_entries);
        w.field("degraded_ms", r.degraded_ms);
        w.end_object();
      }
    }
    w.end_array();
    w.field("io_fault_goodput_ratio", ratio);
    w.end_object();
    std::printf("%s\n", out.str().c_str());
    return 0;
  }

  std::printf("Storage faults (DESIGN.md §12): the Fig. 14 logging chain "
              "under a wedge (20 ms), a 4x latency spike (10 ms)\n"
              "and an error window (3 ms). async+retry detects the wedge "
              "via 1 ms deadlines and sheds logging;\n"
              "the sync baseline stalls through every outage.\n");
  print_title("Aggregate / flow-2 goodput (Mpps)");
  print_row({"Stack", "faults", "agg Mpps", "f2 Mpps", "dropped wr",
             "retries", "timeouts", "degr ms"});
  std::size_t idx = 0;
  for (const bool async_io : {false, true}) {
    for (const bool faulted : {false, true}) {
      const IoFaultResult& r = results[idx++];
      print_row({kStackNames[async_io ? 1 : 0], faulted ? "yes" : "no",
                 fmt("%.3f", r.aggregate_mpps), fmt("%.3f", r.flow2_mpps),
                 fmt_count(r.dropped_writes), fmt_count(r.retries),
                 fmt_count(r.timeouts), fmt("%.1f", r.degraded_ms)});
    }
  }
  std::printf("\nio_fault_goodput_ratio (async+retry / sync, faulted): "
              "%.2f\n", ratio);
  return 0;
}
