// Figure 14 (§4.3.5): NFs performing storage I/O.
//
// Two flows share NF1 (a packet logger writing every packet to disk) and
// continue to NF2; only flow-1's packets are logged. Baseline: synchronous
// writes (the NF stalls for each disk op). NFVnice: libnf's batched,
// double-buffered async I/O. Expected shape: NFVnice sustains markedly
// higher aggregate throughput at every packet size, and keeps flow-2
// progressing while flow-1's I/O is in flight.

#include "harness.hpp"

using namespace bench;

namespace {

struct IoResult {
  double aggregate_mpps;
  double flow2_mpps;
};

IoResult run(bool async_io, std::uint16_t pkt_size, double secs) {
  Simulation sim(make_config(kModeNfvnice));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  const auto logger =
      sim.add_nf("logger", core_id, nfv::nf::CostModel::fixed(300));
  const auto fwd = sim.add_nf("fwd", core_id, nfv::nf::CostModel::fixed(150));
  const auto chain1 = sim.add_chain("logged", {logger, fwd});
  const auto chain2 = sim.add_chain("plain", {logger, fwd});

  nfv::io::AsyncIoEngine::Config io_cfg;
  io_cfg.mode = async_io ? nfv::io::AsyncIoEngine::Mode::kDoubleBuffered
                         : nfv::io::AsyncIoEngine::Mode::kSynchronous;
  io_cfg.buffer_bytes = 256 * 1024;
  auto& io_engine = sim.attach_io(logger, io_cfg);

  // The logger writes packets of chain-1 (flow-1) to storage.
  sim.nf(logger).set_handler([&io_engine, chain1](nfv::pktio::Mbuf& pkt) {
    if (pkt.chain_id == chain1) io_engine.write(pkt.size_bytes);
    return nfv::nf::NfAction::kForward;
  });

  nfv::core::UdpOptions opts;
  opts.size_bytes = pkt_size;
  const double rate = 2e6;
  const auto f1 = sim.add_udp_flow(chain1, rate, opts);
  const auto f2 = sim.add_udp_flow(chain2, rate, opts);
  (void)f1;
  (void)f2;
  sim.run_for_seconds(secs);

  IoResult out;
  out.aggregate_mpps = mpps(sim.chain_metrics(chain1).egress_packets +
                                sim.chain_metrics(chain2).egress_packets,
                            secs);
  out.flow2_mpps = mpps(sim.chain_metrics(chain2).egress_packets, secs);
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 14: throughput with NF1 logging flow-1's packets to "
              "disk (BATCH scheduler, 2+2 Mpps offered)\n");
  print_title("Aggregate / flow-2 throughput (Mpps)");
  print_row({"Packet size", "sync agg", "sync f2", "async agg", "async f2"});
  const double secs = seconds(0.25);
  const std::uint16_t sizes[] = {64, 128, 256, 512, 1024};
  ParallelRunner<IoResult> runner;
  for (const std::uint16_t size : sizes) {
    runner.submit([size, secs] { return run(false, size, secs); });
    runner.submit([size, secs] { return run(true, size, secs); });
  }
  const auto results = runner.run();

  std::size_t idx = 0;
  for (const std::uint16_t size : sizes) {
    const IoResult& sync_result = results[idx];
    const IoResult& async_result = results[idx + 1];
    idx += 2;
    print_row({fmt("%.0f B", size), fmt("%.2f", sync_result.aggregate_mpps),
               fmt("%.2f", sync_result.flow2_mpps),
               fmt("%.2f", async_result.aggregate_mpps),
               fmt("%.2f", async_result.flow2_mpps)});
  }
  return 0;
}
