// Tables 1 & 2 (§2.2): context-switch behaviour of the stock schedulers.
//
// Same setups as Figure 1; reports voluntary (cswch/s) and involuntary
// (nvcswch/s) context switches per NF, as pidstat would. Expected shape:
// CFS NORMAL shows involuntary switches (wakeup preemption / tick
// rescheds) concentrated on the hog NFs while frequently sleeping NFs rack
// up voluntary switches; BATCH cuts involuntary switches by an order of
// magnitude; RR is almost entirely voluntary (its quantum outlasts any
// queue backlog).

#include "harness.hpp"

using namespace bench;

namespace {

void run_case(const char* title, const std::vector<Cycles>& costs,
              const std::vector<double>& rates_mpps) {
  print_title(title);
  print_row({"Scheduler", "NF1 cs/s", "NF1 nvcs/s", "NF2 cs/s", "NF2 nvcs/s",
             "NF3 cs/s", "NF3 nvcs/s"});
  const double secs = seconds(0.5);
  for (const Sched& sched : {kNormal, kBatch, kRr100}) {
    Simulation sim(make_config(kModeDefault));
    const auto core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
    std::vector<nfv::flow::NfId> nfs;
    for (std::size_t i = 0; i < costs.size(); ++i) {
      nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                               nfv::nf::CostModel::fixed(costs[i])));
      const auto chain =
          sim.add_chain("c" + std::to_string(i), {nfs.back()});
      sim.add_udp_flow(chain, rates_mpps[i] * 1e6);
    }
    sim.run_for_seconds(secs);
    std::vector<std::string> cells{sched.name};
    for (const auto nf : nfs) {
      const auto m = sim.nf_metrics(nf);
      cells.push_back(
          fmt("%.0f", static_cast<double>(m.voluntary_switches) / secs));
      cells.push_back(
          fmt("%.0f", static_cast<double>(m.involuntary_switches) / secs));
    }
    print_row(cells);
  }
}

}  // namespace

int main() {
  std::printf("Tables 1-2: context switches per second (3 NFs on one core, "
              "no NFVnice)\n");
  run_case("Table 1: homogeneous (250 cyc), even load 5/5/5 Mpps",
           {250, 250, 250}, {5, 5, 5});
  run_case("Table 1: homogeneous (250 cyc), uneven load 6/6/3 Mpps",
           {250, 250, 250}, {6, 6, 3});
  run_case("Table 2: heterogeneous (500/250/50 cyc), even load 5/5/5",
           {500, 250, 50}, {5, 5, 5});
  run_case("Table 2: heterogeneous (500/250/50 cyc), uneven load 6/6/3",
           {500, 250, 50}, {6, 6, 3});
  return 0;
}
