// Tables 1 & 2 (§2.2): context-switch behaviour of the stock schedulers.
//
// Same setups as Figure 1; reports voluntary (cswch/s) and involuntary
// (nvcswch/s) context switches per NF, as pidstat would. Expected shape:
// CFS NORMAL shows involuntary switches (wakeup preemption / tick
// rescheds) concentrated on the hog NFs while frequently sleeping NFs rack
// up voluntary switches; BATCH cuts involuntary switches by an order of
// magnitude; RR is almost entirely voluntary (its quantum outlasts any
// queue backlog).

#include "harness.hpp"

using namespace bench;

namespace {

struct Case {
  const char* title;
  std::vector<Cycles> costs;
  std::vector<double> rates_mpps;
};

std::vector<std::string> run_one(const Sched& sched,
                                 const std::vector<Cycles>& costs,
                                 const std::vector<double>& rates_mpps,
                                 double secs) {
  Simulation sim(make_config(kModeDefault));
  const auto core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
  std::vector<nfv::flow::NfId> nfs;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                             nfv::nf::CostModel::fixed(costs[i])));
    const auto chain = sim.add_chain("c" + std::to_string(i), {nfs.back()});
    sim.add_udp_flow(chain, rates_mpps[i] * 1e6);
  }
  sim.run_for_seconds(secs);
  std::vector<std::string> cells{sched.name};
  for (const auto nf : nfs) {
    const auto m = sim.nf_metrics(nf);
    cells.push_back(
        fmt("%.0f", static_cast<double>(m.voluntary_switches) / secs));
    cells.push_back(
        fmt("%.0f", static_cast<double>(m.involuntary_switches) / secs));
  }
  return cells;
}

}  // namespace

int main() {
  std::printf("Tables 1-2: context switches per second (3 NFs on one core, "
              "no NFVnice)\n");
  const Case cases[] = {
      {"Table 1: homogeneous (250 cyc), even load 5/5/5 Mpps",
       {250, 250, 250},
       {5, 5, 5}},
      {"Table 1: homogeneous (250 cyc), uneven load 6/6/3 Mpps",
       {250, 250, 250},
       {6, 6, 3}},
      {"Table 2: heterogeneous (500/250/50 cyc), even load 5/5/5",
       {500, 250, 50},
       {5, 5, 5}},
      {"Table 2: heterogeneous (500/250/50 cyc), uneven load 6/6/3",
       {500, 250, 50},
       {6, 6, 3}},
  };
  const Sched scheds[] = {kNormal, kBatch, kRr100};
  const double secs = seconds(0.5);

  ParallelRunner<std::vector<std::string>> runner;
  for (const Case& c : cases) {
    for (const Sched& sched : scheds) {
      runner.submit([&sched, &c, secs] {
        return run_one(sched, c.costs, c.rates_mpps, secs);
      });
    }
  }
  const auto rows = runner.run();

  std::size_t idx = 0;
  for (const Case& c : cases) {
    print_title(c.title);
    print_row({"Scheduler", "NF1 cs/s", "NF1 nvcs/s", "NF2 cs/s", "NF2 nvcs/s",
               "NF3 cs/s", "NF3 nvcs/s"});
    for (std::size_t s = 0; s < std::size(scheds); ++s) {
      print_row(rows[idx++]);
    }
  }
  return 0;
}
