// Latency-SLO-aware scheduling vs pure rate-cost fairness (DESIGN.md §16).
//
// Two cores, three chains. A latency-sensitive chain lat0(150)->lat1(150)
// crosses both cores (so, sharded, its telemetry exercises the cross-lane
// p99 mirror) at a modest 0.5 Mpps — about 3% of a core. Each core also
// hosts a saturating single-NF hog chain (cost 600, 5 Mpps offered), so
// both cores are oversubscribed. Under the paper's rate-cost proportional
// rule the latency chain's share equals its tiny load fraction — slightly
// *below* its CPU demand once the hog's backlog keeps the core busy — so
// its queue grows to the ring limit and its p99 completion latency sits
// orders of magnitude above the 200 us target. The SLO-feedback controller
// sees the violation and multiplies the chain's share weight (x2 per
// update, capped x64); because CFS is work-conserving the boost costs the
// hogs only the latency chain's actual demand (a few percent of goodput)
// while its p99 collapses to service-plus-scheduling bound.
//
// Reported per scheduler (NORMAL and BATCH), fair vs slo arms:
//   * p99 / p50 chain-completion latency of the latency chain (us)
//   * SLO violation-seconds (violation clock, 1 ms resolution)
//   * latency-chain egress and combined hog goodput (Mpps)
//   * the controller's final boost
//
// Headline keys for tools/check_bench_baseline.py (NORMAL scheduler):
//   slo_violation_ratio  violation-seconds slo/fair   (lower is better, <1)
//   slo_p99_us           p99 of the slo arm           (lower is better)
//   slo_goodput_ratio    hog goodput slo/fair         (higher is better)
//
// The binary self-checks determinism by exit code, like micro_shard: the
// slo arm's report must be byte-identical across a rerun and across
// sim_shards=1 vs 4 (lane decomposition is fixed by the topology; worker
// count only picks parallelism).

#include "harness.hpp"

#include <cstring>

using namespace bench;

namespace {

constexpr double kTargetUs = 200.0;  ///< p99 target for the latency chain.
constexpr double kRunSecs = 1.0;     ///< Per-arm simulated duration.
constexpr Cycles kLatCost = 150;
constexpr Cycles kHogCost = 600;
constexpr double kLatRate = 0.5e6;
constexpr double kHogRate = 5e6;

struct SloResult {
  double p50_us = 0.0;
  double p99_us = 0.0;      ///< Estimator window (last 2048 egresses).
  double run_p99_us = 0.0;  ///< Whole-run histogram p99 (headline: stable
                            ///< under phase shifts of the control loop).
  double violation_s = 0.0;
  double lat_mpps = 0.0;
  double hog_mpps = 0.0;  ///< Both hog chains combined.
  double boost = 1.0;
  std::string report;
};

/// One arm: the NFVnice mode (cgroups+backpressure+ECN) with the SLO
/// controller either off (pure rate-cost fairness; telemetry still runs
/// for the targeted chain) or on. `shards_override` >= 0 forces
/// sim_shards for the determinism self-checks; -1 keeps the CLI/env value.
SloResult run_slo(const Sched& sched, bool slo_on, bool with_report,
                  int shards_override = -1) {
  PlatformConfig cfg = make_config(kModeNfvnice);
  cfg.manager.slo.enabled = slo_on;
  if (shards_override >= 0) {
    cfg.sim_shards = static_cast<std::uint32_t>(shards_override);
  }
  Simulation sim(cfg);
  const auto core0 = sim.add_core(sched.policy, sched.rr_quantum_ms);
  const auto core1 = sim.add_core(sched.policy, sched.rr_quantum_ms);
  const auto lat0 =
      sim.add_nf("lat0", core0, nfv::nf::CostModel::fixed(kLatCost));
  const auto lat1 =
      sim.add_nf("lat1", core1, nfv::nf::CostModel::fixed(kLatCost));
  const auto hog_a =
      sim.add_nf("hogA", core0, nfv::nf::CostModel::fixed(kHogCost));
  const auto hog_b =
      sim.add_nf("hogB", core1, nfv::nf::CostModel::fixed(kHogCost));
  const auto lat_chain = sim.add_chain("latency", {lat0, lat1});
  const auto chain_a = sim.add_chain("hogA", {hog_a});
  const auto chain_b = sim.add_chain("hogB", {hog_b});
  sim.set_chain_slo(lat_chain, kTargetUs);
  sim.add_udp_flow(lat_chain, kLatRate);
  sim.add_udp_flow(chain_a, kHogRate);
  sim.add_udp_flow(chain_b, kHogRate);

  const double secs = seconds(kRunSecs);
  sim.run_for_seconds(secs);

  SloResult out;
  const auto sr = sim.chain_slo_report(lat_chain);
  out.p50_us = sim.clock().to_micros(static_cast<Cycles>(sr.tail.p50));
  out.p99_us = sim.clock().to_micros(static_cast<Cycles>(sr.tail.p99));
  out.run_p99_us = sim.clock().to_micros(
      static_cast<Cycles>(sim.chain_latency_quantile(lat_chain, 0.99)));
  out.violation_s = sim.clock().to_seconds(sr.violation_cycles);
  out.boost = sr.boost;
  out.lat_mpps = mpps(sim.chain_metrics(lat_chain).egress_packets, secs);
  out.hog_mpps = mpps(sim.chain_metrics(chain_a).egress_packets +
                          sim.chain_metrics(chain_b).egress_packets,
                      secs);
  if (with_report) out.report = sim.report_json();
  return out;
}

constexpr Sched kScheds[] = {kNormal, kBatch};
constexpr const char* kArms[] = {"RateCostFair", "SloFeedback"};

/// Byte-identity self-checks on the slo arm (exit code, micro_shard
/// precedent): a rerun and an explicit sim_shards 1-vs-4 pair must each
/// produce identical reports.
int self_check() {
  const auto a = run_slo(kNormal, true, true);
  const auto b = run_slo(kNormal, true, true);
  if (a.report != b.report) {
    std::fprintf(stderr, "FAIL: slo arm report differs across reruns\n");
    return 1;
  }
  const auto s1 = run_slo(kNormal, true, true, 1);
  const auto s4 = run_slo(kNormal, true, true, 4);
  if (s1.report != s4.report) {
    std::fprintf(stderr,
                 "FAIL: slo arm report differs between sim_shards=1 and 4\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  const bool json = json_mode(argc, argv);

  ParallelRunner<SloResult> runner;
  for (const Sched& sched : kScheds) {
    for (int arm = 0; arm < 2; ++arm) {
      runner.submit(
          [&sched, arm, json] { return run_slo(sched, arm == 1, json); });
    }
  }
  const auto results = runner.run();

  // Headlines come from the NORMAL scheduler (results[0] fair,
  // results[1] slo). Violation clocks tick in whole monitor periods, so
  // guard the ratio against a (theoretical) zero fair-arm denominator.
  const SloResult& fair = results[0];
  const SloResult& slo = results[1];
  const double violation_ratio =
      fair.violation_s > 0.0 ? slo.violation_s / fair.violation_s : 1.0;
  const double goodput_ratio =
      fair.hog_mpps > 0.0 ? slo.hog_mpps / fair.hog_mpps : 0.0;

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "fig_slo");
    w.field("target_us", kTargetUs);
    w.key("rows");
    w.begin_array();
    std::size_t idx = 0;
    for (const Sched& sched : kScheds) {
      for (int arm = 0; arm < 2; ++arm) {
        const SloResult& r = results[idx++];
        w.begin_object();
        w.field("arm", kArms[arm]);
        w.field("scheduler", sched.name);
        w.field("p50_us", r.p50_us);
        w.field("p99_us", r.p99_us);
        w.field("run_p99_us", r.run_p99_us);
        w.field("violation_seconds", r.violation_s);
        w.field("lat_mpps", r.lat_mpps);
        w.field("hog_mpps", r.hog_mpps);
        w.field("boost", r.boost);
        if (!r.report.empty()) {
          w.key("report");
          w.raw(r.report);
        }
        w.end_object();
      }
    }
    w.end_array();
    w.field("fair_p99_us", fair.run_p99_us);
    w.field("slo_goodput_ratio", goodput_ratio);
    w.field("slo_violation_ratio", violation_ratio);
    // Headline for tools/check_bench_baseline.py: the slo arm's absolute
    // whole-run p99 on NORMAL (lower is better; the ratio above must stay
    // < 1). Whole-run, not the window snapshot: the end-of-run window is
    // sensitive to the control loop's phase, the run histogram is not.
    w.field("slo_p99_us", slo.run_p99_us);
    w.end_object();
    std::printf("%s\n", out.str().c_str());
    return self_check();
  }

  std::printf(
      "Latency-SLO feedback vs rate-cost fairness: a 2-hop latency chain "
      "(3%% of each core, p99 target %.0f us)\nshares two oversubscribed "
      "cores with saturating hogs. Fair = the paper's rate-cost shares; "
      "Slo = +feedback\nboost of SLO-violating chains (x%.0f per update, "
      "cap x%.0f). %.2fs per arm.\n",
      kTargetUs, 2.0, 64.0, seconds(kRunSecs));
  std::size_t idx = 0;
  for (const Sched& sched : kScheds) {
    print_title(std::string("Scheduler: ") + sched.name);
    print_row({"Arm", "p50 us", "p99 us", "run p99", "viol s", "lat Mpps",
               "hog Mpps", "boost"});
    for (int arm = 0; arm < 2; ++arm) {
      const SloResult& r = results[idx++];
      print_row({kArms[arm], fmt("%.1f", r.p50_us), fmt("%.1f", r.p99_us),
                 fmt("%.1f", r.run_p99_us), fmt("%.3f", r.violation_s),
                 fmt("%.3f", r.lat_mpps), fmt("%.3f", r.hog_mpps),
                 fmt("%.1f", r.boost)});
    }
  }
  std::printf(
      "\nHeadline (NORMAL): whole-run p99 %.1f -> %.1f us, violation "
      "ratio %.3f, hog goodput ratio %.3f\n",
      fair.run_p99_us, slo.run_p99_us, violation_ratio, goodput_ratio);
  return self_check();
}
