// Design-choice ablations beyond the paper's tuning section.
//
// DESIGN.md calls out three estimator/actuation choices worth isolating:
//   1. cgroup write period (paper: 10 ms) — too fast burns monitor cycles
//      and chases noise, too slow lags load shifts;
//   2. processing-cost sampling period (paper: ~1 kHz);
//   3. NF batch size (paper/libnf: 32) — the yield-flag granularity.
// Each is swept on the heterogeneous shared-core fairness workload; the
// figure of merit is throughput plus how close the CPU split lands to the
// rate-cost proportional target (1:3).

#include "harness.hpp"

using namespace bench;

namespace {

struct AblationResult {
  double total_mpps;
  double cpu_ratio;  // NF2(3x cost) : NF1 — target 3.0
  std::uint64_t cgroup_writes;
};

AblationResult run(std::uint32_t share_every, double sample_ms,
                   std::uint32_t batch, double secs) {
  PlatformConfig cfg = make_config(kModeNfvnice);
  cfg.manager.share_updates_every = share_every;
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  nfv::core::NfOptions opts;
  opts.batch_size = batch;
  opts.sample_interval_us = sample_ms * 1000.0;
  const auto nf1 =
      sim.add_nf("nf1", core_id, nfv::nf::CostModel::fixed(400), opts);
  const auto nf2 =
      sim.add_nf("nf2", core_id, nfv::nf::CostModel::fixed(1200), opts);
  const auto c1 = sim.add_chain("c1", {nf1});
  const auto c2 = sim.add_chain("c2", {nf2});
  sim.add_udp_flow(c1, 4e6);
  sim.add_udp_flow(c2, 4e6);
  const double warmup = seconds(0.15);
  sim.run_for_seconds(warmup);
  const auto r1_0 = sim.nf_metrics(nf1).runtime;
  const auto r2_0 = sim.nf_metrics(nf2).runtime;
  const auto e1_0 = sim.chain_metrics(c1).egress_packets;
  const auto e2_0 = sim.chain_metrics(c2).egress_packets;
  sim.run_for_seconds(secs);
  AblationResult out;
  out.total_mpps = mpps(sim.chain_metrics(c1).egress_packets - e1_0 +
                            sim.chain_metrics(c2).egress_packets - e2_0,
                        secs);
  out.cpu_ratio = static_cast<double>(sim.nf_metrics(nf2).runtime - r2_0) /
                  static_cast<double>(sim.nf_metrics(nf1).runtime - r1_0);
  out.cgroup_writes = sim.manager().cgroups().writes();
  return out;
}

}  // namespace

int main() {
  std::printf("Estimator/actuation ablations (two NFs 400/1200 cycles, "
              "4+4 Mpps, one core; CPU-ratio target 3.0)\n");
  const double secs = seconds(0.6);
  const std::uint32_t everies[] = {1u, 5u, 10u, 50u, 100u};
  const double sample_periods[] = {0.1, 0.5, 1.0, 5.0, 20.0};
  const std::uint32_t batches[] = {1u, 8u, 32u, 128u};

  ParallelRunner<AblationResult> runner;
  for (const std::uint32_t every : everies) {
    runner.submit([every, secs] { return run(every, 1.0, 32, secs); });
  }
  for (const double sample_ms : sample_periods) {
    runner.submit([sample_ms, secs] { return run(10, sample_ms, 32, secs); });
  }
  for (const std::uint32_t batch : batches) {
    runner.submit([batch, secs] { return run(10, 1.0, batch, secs); });
  }
  const auto results = runner.run();

  std::size_t idx = 0;
  print_title("cgroup update period (monitor ticks of 1 ms per write)");
  print_row({"Period", "Mpps", "cpu ratio", "cgroup writes"});
  for (const std::uint32_t every : everies) {
    const auto& r = results[idx++];
    print_row({fmt("%.0f ms", every), fmt("%.2f", r.total_mpps),
               fmt("%.2f", r.cpu_ratio), fmt_count(r.cgroup_writes)});
  }

  print_title("cost-sampling period (libnf rdtsc sampling; paper ~1 kHz)");
  print_row({"Sample period", "Mpps", "cpu ratio", ""});
  for (const double sample_ms : sample_periods) {
    const auto& r = results[idx++];
    print_row({fmt("%.1f ms", sample_ms), fmt("%.2f", r.total_mpps),
               fmt("%.2f", r.cpu_ratio), ""});
  }

  print_title("NF batch size (yield-flag granularity)");
  print_row({"Batch", "Mpps", "cpu ratio", ""});
  for (const std::uint32_t batch : batches) {
    const auto& r = results[idx++];
    print_row({fmt("%.0f", batch), fmt("%.2f", r.total_mpps),
               fmt("%.2f", r.cpu_ratio), ""});
  }
  return 0;
}
