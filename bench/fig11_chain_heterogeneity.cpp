// Figure 11 (§4.3.2): all orderings of a heterogeneous 3-NF chain.
//
// Low=120, Med=270, High=550 cycles on one shared core; the bottleneck's
// position moves through the chain. Expected shape: vanilla schedulers
// vary wildly with ordering (RR(100ms) collapses when the bottleneck is
// downstream of a fast producer — the "fast-producer, slow-consumer"
// pathology); NFVnice is consistently at/near the best throughput for
// every ordering and scheduler.

#include "harness.hpp"

using namespace bench;

namespace {
struct Order {
  const char* name;
  std::vector<Cycles> costs;
};
}  // namespace

int main() {
  std::printf("Figure 11: 3-NF chain orderings (one core, 6 Mpps)\n");
  const Order orders[] = {
      {"Low-Med-High", {120, 270, 550}}, {"Low-High-Med", {120, 550, 270}},
      {"Med-Low-High", {270, 120, 550}}, {"Med-High-Low", {270, 550, 120}},
      {"High-Low-Med", {550, 120, 270}}, {"High-Med-Low", {550, 270, 120}},
  };

  // One flat job list over (order x sched x mode), submitted in print order.
  ParallelRunner<ChainResult> runner;
  for (const Order& order : orders) {
    ChainSpec spec;
    spec.costs = order.costs;
    spec.rate_pps = 6e6;
    spec.secs = seconds(0.2);
    for (const Sched& sched : kAllScheds) {
      for (const Mode& mode : kAllModes) {
        runner.submit([&mode, &sched, spec] {
          return run_chain(mode, sched, spec);
        });
      }
    }
  }
  const auto results = runner.run();

  std::size_t idx = 0;
  for (const Order& order : orders) {
    print_title(std::string("Chain ") + order.name + " (Mpps)");
    print_row({"Scheduler", "Default", "CGroup", "OnlyBKPR", "NFVnice"});
    for (const Sched& sched : kAllScheds) {
      std::vector<std::string> cells{sched.name};
      for (std::size_t m = 0; m < std::size(kAllModes); ++m) {
        cells.push_back(fmt("%.2f", results[idx++].egress_mpps));
      }
      print_row(cells);
    }
  }
  return 0;
}
