// Table 4 (§4.2.1): average scheduling latency and runtime per NF.
//
// Same 3-NF chain as Figure 7. Scheduling latency = time from wakeup to
// first execution; runtime = total CPU consumed over the run. Expected
// shape: with NFVnice, runtime is apportioned cost-proportionally (NF1
// least, NF3 most) and the heavier NFs see *lower* scheduling delay, while
// the default NORMAL scheduler splits runtime evenly regardless of cost.

#include "harness.hpp"

using namespace bench;

int main() {
  std::printf("Table 4: scheduling latency (ms) and runtime (ms) per NF "
              "(3-NF chain, one core, 6 Mpps)\n");

  ChainSpec spec;
  spec.costs = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = seconds(0.25);

  const auto rows = run_grid(kAllScheds, kDefaultVsNfvnice, spec);

  std::size_t idx = 0;
  for (const Sched& sched : kAllScheds) {
    print_title(std::string("Scheduler: ") + sched.name);
    print_row({"", "NF1 delay", "NF1 run", "NF2 delay", "NF2 run",
               "NF3 delay", "NF3 run"});
    for (const Mode& mode : kDefaultVsNfvnice) {
      const ChainResult& r = rows[idx++].result;
      print_row({mode.name, fmt("%.3f", r.avg_sched_latency_ms[0]),
                 fmt("%.1f", r.runtime_ms[0]),
                 fmt("%.3f", r.avg_sched_latency_ms[1]),
                 fmt("%.1f", r.runtime_ms[1]),
                 fmt("%.3f", r.avg_sched_latency_ms[2]),
                 fmt("%.1f", r.runtime_ms[2])});
    }
  }
  return 0;
}
