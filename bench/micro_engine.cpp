// Raw event-engine throughput: the substrate under every figure and table.
//
// Every bench run dispatches millions of engine events, so events/sec here
// bounds simulated-seconds/sec everywhere. The scenario mix mirrors what
// the simulation actually puts on the engine: a fig07-style chain run
// carries only ~6 pending events at any instant (traffic source + per-NF
// work events + manager/core timers), so the small-N churn and cancel
// scenarios are the representative ones; the 4k/100k variants are stress
// cases for sweep-scale topologies. Timing is process CPU time (like the
// google-benchmark rates in micro_substrate): the workload is
// single-threaded and seed-deterministic, so CPU time is its cost and is
// immune to host preemption/steal. Each scenario is additionally run three
// times and the fastest repetition reported — min-of-N is the standard
// estimator of the undisturbed cost.

#include <ctime>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "sim/engine.hpp"

namespace {

using nfv::Cycles;
using nfv::sim::Engine;
using nfv::sim::EngineBackend;
using nfv::sim::EventId;

/// Deterministic LCG so every run (and both engine generations) sees the
/// exact same event-time sequence.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

struct ScenarioResult {
  std::string name;
  std::uint64_t events;   ///< events dispatched
  std::uint64_t ops;      ///< schedule + cancel + dispatch operations
  double cpu_seconds;
};

double now_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Steady-state churn: `outstanding` armed timers, each dispatch re-arms
/// one — the shape NfTask work events and traffic sources put on the
/// engine. The scheduled callable is a [this]-capturing lambda, matching
/// how real components arm events. outstanding=8 matches the measured
/// pending count of a real chain run; 4096 models sweep-scale topologies.
struct Churn {
  Engine engine;
  Lcg lcg{0xabcdULL};
  std::uint64_t fired = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t total = 0;

  void arm() {
    ++scheduled;
    engine.schedule_after(1 + static_cast<Cycles>(lcg.next() % 1000),
                          [this] { tick(); });
  }
  void tick() {
    ++fired;
    if (scheduled < total) arm();
  }
};

ScenarioResult run_churn(int outstanding, std::uint64_t total) {
  Churn churn;
  churn.total = total;
  const double t0 = now_seconds();
  for (int i = 0; i < outstanding; ++i) churn.arm();
  churn.engine.run();
  const double elapsed = now_seconds() - t0;
  return {"churn_" + std::to_string(outstanding), churn.fired, churn.fired * 2,
          elapsed};
}

/// The quantum-expiry pattern: a guard timer is scheduled alongside every
/// work event and almost always cancelled before it fires (a task that
/// yields voluntarily first). Small outstanding count, 50% cancel rate.
struct CancelChurn {
  Engine engine;
  Lcg lcg{0xfeedULL};
  std::uint64_t fired = 0;
  std::uint64_t ops = 0;
  std::uint64_t total = 0;
  EventId guard = nfv::sim::kInvalidEventId;

  void tick() {
    ++fired;
    engine.cancel(guard);  // almost always still pending -> O(1) discard
    if (fired < total) {
      const Cycles dt = 1 + static_cast<Cycles>(lcg.next() % 500);
      engine.schedule_after(dt, [this] { tick(); });
      guard = engine.schedule_after(dt + 1000, [] {});
      ops += 3;
    }
  }
};

ScenarioResult run_cancel_churn(std::uint64_t total) {
  CancelChurn churn;
  churn.total = total;
  const double t0 = now_seconds();
  churn.engine.schedule_after(1, [&churn] { churn.tick(); });
  churn.engine.run();
  const double elapsed = now_seconds() - t0;
  return {"cancel_churn", churn.fired, churn.ops, elapsed};
}

/// Bulk load: rounds of (schedule 100k at random times, drain) — a stress
/// case far beyond any current bench topology.
ScenarioResult run_schedule_drain() {
  constexpr int kRounds = 10;
  constexpr int kPerRound = 100'000;
  Engine engine;
  Lcg lcg{0x5eedULL};
  std::uint64_t fired = 0;
  const double t0 = now_seconds();
  for (int round = 0; round < kRounds; ++round) {
    const Cycles base = engine.now();
    for (int i = 0; i < kPerRound; ++i) {
      engine.schedule_at(base + static_cast<Cycles>(lcg.next() % 1'000'000),
                         [&fired] { ++fired; });
    }
    engine.run();
  }
  const double elapsed = now_seconds() - t0;
  return {"drain_100k", fired, fired * 2, elapsed};
}

/// Cancel-heavy bulk: schedule 100k, cancel every other id, drain.
ScenarioResult run_cancel_heavy() {
  constexpr int kRounds = 10;
  constexpr int kPerRound = 100'000;
  Engine engine;
  Lcg lcg{0xc0ffeeULL};
  std::uint64_t fired = 0;
  std::uint64_t ops = 0;
  const double t0 = now_seconds();
  for (int round = 0; round < kRounds; ++round) {
    const Cycles base = engine.now();
    std::vector<EventId> ids;
    ids.reserve(kPerRound);
    for (int i = 0; i < kPerRound; ++i) {
      ids.push_back(
          engine.schedule_at(base + static_cast<Cycles>(lcg.next() % 1'000'000),
                             [&fired] { ++fired; }));
    }
    for (int i = 0; i < kPerRound; i += 2) engine.cancel(ids[i]);
    engine.run();
    ops += kPerRound + kPerRound / 2 + kPerRound / 2;
  }
  const double elapsed = now_seconds() - t0;
  return {"cancel_100k", fired, ops, elapsed};
}

/// Periodic ticks: 512 timers with co-prime-ish periods, one long run —
/// the Manager/Core monitor-tick pattern at scale.
ScenarioResult run_periodic() {
  constexpr int kTimers = 512;
  constexpr Cycles kHorizon = 400'000;
  Engine engine;
  std::uint64_t fired = 0;
  for (int i = 0; i < kTimers; ++i) {
    engine.schedule_periodic(97 + i, [&fired] { ++fired; });
  }
  const double t0 = now_seconds();
  engine.run_until(kHorizon);
  const double elapsed = now_seconds() - t0;
  return {"periodic", fired, fired * 2, elapsed};
}

/// Million-timer steady state (DESIGN.md §15): 500k self-re-arming tickers
/// plus 500k long-dated guard timers that are cancelled and replaced in a
/// churn mix — 1M pending at every instant of the timed region. This is the
/// regime the hierarchical timer wheel exists for: the heap pays
/// O(log 1M) ≈ 10 cache-missing levels per operation, the wheel O(1) list
/// splices. Seeding happens outside the timed region, and the run stops at
/// a fixed horizon (not drain-to-empty) so the measurement never leaves the
/// 1M-pending regime. The workload is identical for both backends: every
/// schedule/cancel consumes the same LCG draws in the same order because
/// dispatch order is backend-invariant.
ScenarioResult run_timer_heavy(EngineBackend backend) {
  constexpr std::size_t kTickers = 500'000;
  constexpr std::size_t kGuards = 500'000;
  constexpr Cycles kHorizon = Cycles{1} << 18;
  struct State {
    Engine engine;
    Lcg lcg{0x1e6f00dULL};
    std::vector<EventId> guards;
    std::uint64_t ticks = 0;
    std::uint64_t ops = 0;
    explicit State(EngineBackend b) : engine(b) {}
    void tick() {
      engine.schedule_after(1 + static_cast<Cycles>(lcg.next() % (1u << 16)),
                            [this] { tick(); });
      ops += 2;  // dispatch + re-arm
      if ((++ticks & 3) == 0) {  // churn: replace one guard every 4th fire
        EventId& g = guards[(ticks >> 2) % guards.size()];
        engine.cancel(g);
        g = engine.schedule_after(
            (Cycles{1} << 16) + static_cast<Cycles>(lcg.next() % (1u << 24)),
            [] {});
        ops += 2;  // cancel + schedule
      }
    }
  };
  State st(backend);
  st.engine.reserve(kTickers + kGuards + 8);
  for (std::size_t i = 0; i < kTickers; ++i) {
    st.engine.schedule_after(1 + static_cast<Cycles>(st.lcg.next() % (1u << 16)),
                             [&st] { st.tick(); });
  }
  st.guards.reserve(kGuards);
  for (std::size_t i = 0; i < kGuards; ++i) {
    st.guards.push_back(st.engine.schedule_after(
        (Cycles{1} << 16) + static_cast<Cycles>(st.lcg.next() % (1u << 24)),
        [] {}));
  }
  const double t0 = now_seconds();
  st.engine.run_until(kHorizon);
  const double elapsed = now_seconds() - t0;
  return {std::string("timer_1m_") + nfv::sim::to_string(backend),
          st.engine.dispatched_events(), st.ops, elapsed};
}

/// Min-of-N CPU time over identical deterministic repetitions.
template <typename Fn>
ScenarioResult best_of(int reps, Fn&& fn) {
  ScenarioResult best = fn();
  for (int i = 1; i < reps; ++i) {
    ScenarioResult r = fn();
    if (r.cpu_seconds < best.cpu_seconds) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") json = true;
  }

  constexpr int kReps = 3;
  const ScenarioResult results[] = {
      best_of(kReps, [] { return run_churn(8, 4'000'000); }),
      best_of(kReps, [] { return run_cancel_churn(2'000'000); }),
      best_of(kReps, [] { return run_churn(4096, 2'000'000); }),
      best_of(kReps, [] { return run_schedule_drain(); }),
      best_of(kReps, [] { return run_cancel_heavy(); }),
      best_of(kReps, [] { return run_periodic(); }),
  };
  // The million-timer scenario runs under both ready-queue backends; it is
  // kept out of the legacy aggregate so `events_per_sec` stays comparable
  // with historical baselines (the heap scenarios above are unchanged).
  const ScenarioResult timer_results[] = {
      best_of(kReps, [] { return run_timer_heavy(EngineBackend::kHeap); }),
      best_of(kReps, [] { return run_timer_heavy(EngineBackend::kWheel); }),
  };
  const double timer_heap_rate =
      static_cast<double>(timer_results[0].events) /
      timer_results[0].cpu_seconds;
  const double timer_wheel_rate =
      static_cast<double>(timer_results[1].events) /
      timer_results[1].cpu_seconds;

  std::uint64_t total_events = 0;
  double total_seconds = 0;
  for (const auto& r : results) {
    total_events += r.events;
    total_seconds += r.cpu_seconds;
  }

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter writer(out);
    writer.begin_object();
    writer.field("bench", "micro_engine");
    writer.key("rows");
    writer.begin_array();
    const auto write_row = [&writer](const ScenarioResult& r) {
      writer.begin_object();
      writer.field("scenario", std::string_view(r.name));
      writer.field("events", r.events);
      writer.field("ops", r.ops);
      writer.field("cpu_seconds", r.cpu_seconds);
      writer.field("events_per_sec",
                   static_cast<double>(r.events) / r.cpu_seconds);
      writer.end_object();
    };
    for (const auto& r : results) write_row(r);
    for (const auto& r : timer_results) write_row(r);
    writer.end_array();
    writer.field("total_events", total_events);
    writer.field("total_cpu_seconds", total_seconds);
    writer.field("events_per_sec",
                 static_cast<double>(total_events) / total_seconds);
    writer.field("timer_events_per_sec_heap", timer_heap_rate);
    writer.field("timer_events_per_sec_wheel", timer_wheel_rate);
    writer.field("timer_wheel_speedup", timer_wheel_rate / timer_heap_rate);
    writer.end_object();
    std::printf("%s\n", out.str().c_str());
    return 0;
  }

  std::printf("Engine microbenchmark: raw event throughput\n\n");
  std::printf("%-18s %12s %12s %14s\n", "scenario", "events", "cpu (s)",
              "events/sec");
  for (const auto& r : results) {
    std::printf("%-18s %12llu %12.3f %14.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.cpu_seconds,
                static_cast<double>(r.events) / r.cpu_seconds);
  }
  std::printf("%-18s %12llu %12.3f %14.0f\n", "TOTAL",
              static_cast<unsigned long long>(total_events), total_seconds,
              static_cast<double>(total_events) / total_seconds);
  std::printf("\nMillion-timer scenario (1M pending, schedule/cancel churn):\n");
  for (const auto& r : timer_results) {
    std::printf("%-18s %12llu %12.3f %14.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.cpu_seconds,
                static_cast<double>(r.events) / r.cpu_seconds);
  }
  std::printf("%-18s %43.2fx\n", "wheel speedup",
              timer_wheel_rate / timer_heap_rate);
  return 0;
}
