// Figure 15a (§4.3.6): dynamic CPU weight adaptation.
//
// Two NFs share a core; initial cost ratio 1:3 (NF1=400, NF2=1200 cycles),
// equal arrival rates. Mid-run NF1's per-packet cost triples to match
// NF2's, then reverts (the paper switches at t=31 s and t=60 s of a 90 s
// run; we compress). Expected shape: the default NORMAL scheduler pins
// both NFs at 50% CPU throughout; NFVnice allocates 25/75 before the step,
// converges to 50/50 during it, and returns to 25/75 after — keeping the
// two flows' throughput equal the whole time.

#include "harness.hpp"

using namespace bench;

namespace {

std::vector<std::vector<std::string>> run_mode(const Mode& mode) {
  Simulation sim(make_config(mode));
  const auto core_id = sim.add_core(SchedPolicy::kCfsNormal, 100.0);
  const auto nf1 = sim.add_nf("NF1", core_id, nfv::nf::CostModel::fixed(400));
  const auto nf2 = sim.add_nf("NF2", core_id, nfv::nf::CostModel::fixed(1200));
  const auto c1 = sim.add_chain("c1", {nf1});
  const auto c2 = sim.add_chain("c2", {nf2});
  sim.add_udp_flow(c1, 4e6);
  sim.add_udp_flow(c2, 4e6);

  std::vector<std::vector<std::string>> rows;
  const double step = seconds(0.25);
  Cycles run1_prev = 0, run2_prev = 0;
  std::uint64_t eg1_prev = 0, eg2_prev = 0;
  for (int i = 1; i <= 12; ++i) {
    if (i == 5) sim.nf(nf1).cost_model().set_scale(3.0);
    if (i == 9) sim.nf(nf1).cost_model().set_scale(1.0);
    sim.run_for_seconds(step);
    const auto m1 = sim.nf_metrics(nf1);
    const auto m2 = sim.nf_metrics(nf2);
    const auto e1 = sim.chain_metrics(c1).egress_packets;
    const auto e2 = sim.chain_metrics(c2).egress_packets;
    const double cpu1 = sim.clock().to_seconds(m1.runtime - run1_prev) / step;
    const double cpu2 = sim.clock().to_seconds(m2.runtime - run2_prev) / step;
    rows.push_back({fmt("%.2f", sim.now_seconds()), fmt("%.0f%%", cpu1 * 100),
                    fmt("%.0f%%", cpu2 * 100),
                    fmt("%.2f", mpps(e1 - eg1_prev, step)),
                    fmt("%.2f", mpps(e2 - eg2_prev, step)),
                    fmt("%.0f", sim.nf(nf1).weight()),
                    fmt("%.0f", sim.nf(nf2).weight())});
    run1_prev = m1.runtime;
    run2_prev = m2.runtime;
    eg1_prev = e1;
    eg2_prev = e2;
  }
  return rows;
}

}  // namespace

int main() {
  std::printf("Figure 15a: dynamic CPU tuning under a step change in NF1's "
              "cost (compressed timeline; paper runs 90 s)\n");
  ParallelRunner<std::vector<std::vector<std::string>>> runner;
  for (const Mode& mode : kDefaultVsNfvnice) {
    runner.submit([&mode] { return run_mode(mode); });
  }
  const auto timelines = runner.run();
  for (std::size_t m = 0; m < timelines.size(); ++m) {
    print_title(std::string("Mode: ") + kDefaultVsNfvnice[m].name +
                "  (NF1 cost x3 during [1s, 2s))");
    print_row({"t (s)", "NF1 cpu%", "NF2 cpu%", "flow1 Mpps", "flow2 Mpps",
               "w1", "w2"});
    for (const auto& row : timelines[m]) print_row(row);
  }
  return 0;
}
