// Figures 15b & 15c (§4.3.6): fairness versus computation-cost diversity.
//
// Diversity level k runs k NFs on one core with cost ratios drawn from the
// paper's 1:2:5:20:40:60 ladder, one equal-rate flow per NF. Expected
// shape (15b): Jain's fairness index of per-flow throughput stays ~1.0
// under NFVnice but degrades toward ~0.6 for the default CFS scheduler as
// diversity grows. (15c): at diversity 6, CFS gives every NF ~16.6% CPU so
// the cheap NF's flow gets ~15x the heavy flow's throughput; NFVnice gives
// the lightweight NF ~1% and the heavyweight ~46%, equalising throughput.

#include "harness.hpp"

#include "common/stats.hpp"

using namespace bench;

namespace {

struct DiversityResult {
  double jain;
  std::vector<double> flow_mpps;
  std::vector<double> cpu_share;
};

DiversityResult run(const Mode& mode, int diversity, double secs) {
  // Cost ladder 1:2:5:20:40:60 scaled to cycles.
  const Cycles ladder[6] = {100, 200, 500, 2000, 4000, 6000};
  Simulation sim(make_config(mode));
  const auto core_id = sim.add_core(SchedPolicy::kCfsNormal, 100.0);
  std::vector<nfv::flow::NfId> nfs;
  std::vector<nfv::flow::ChainId> chains;
  for (int i = 0; i < diversity; ++i) {
    nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                             nfv::nf::CostModel::fixed(ladder[i])));
    chains.push_back(sim.add_chain("c" + std::to_string(i), {nfs.back()}));
    sim.add_udp_flow(chains.back(), 2e6);
  }
  // Warm up past the estimator bootstrap, then measure steady state.
  const double warmup = seconds(0.2);
  sim.run_for_seconds(warmup);
  std::vector<std::uint64_t> eg0;
  std::vector<Cycles> run0;
  for (int i = 0; i < diversity; ++i) {
    eg0.push_back(sim.chain_metrics(chains[i]).egress_packets);
    run0.push_back(sim.nf_metrics(nfs[i]).runtime);
  }
  sim.run_for_seconds(secs);

  DiversityResult out;
  std::vector<double> tput;
  for (int i = 0; i < diversity; ++i) {
    const auto egress = sim.chain_metrics(chains[i]).egress_packets - eg0[i];
    out.flow_mpps.push_back(mpps(egress, secs));
    tput.push_back(static_cast<double>(egress));
    out.cpu_share.push_back(
        sim.clock().to_seconds(sim.nf_metrics(nfs[i]).runtime - run0[i]) /
        secs);
  }
  out.jain = nfv::jain_fairness_index(tput);
  return out;
}

}  // namespace

int main() {
  std::printf("Figures 15b/15c: fairness vs computation diversity "
              "(cost ladder 1:2:5:20:40:60, 2 Mpps per flow, one core)\n");

  print_title("Fig 15b: Jain's fairness index of per-flow throughput");
  print_row({"Diversity", "NORMAL (default)", "NFVnice"});
  const double secs = seconds(1.5);
  ParallelRunner<DiversityResult> runner;
  for (int k = 1; k <= 6; ++k) {
    for (const Mode& mode : kDefaultVsNfvnice) {
      runner.submit([&mode, k, secs] { return run(mode, k, secs); });
    }
  }
  const auto results = runner.run();
  for (int k = 1; k <= 6; ++k) {
    print_row({fmt("%.0f", k), fmt("%.3f", results[2 * (k - 1)].jain),
               fmt("%.3f", results[2 * (k - 1) + 1].jain)});
  }
  const DiversityResult& dflt6 = results[10];
  const DiversityResult& nice6 = results[11];

  print_title("Fig 15c: per-NF CPU share and flow throughput at diversity 6");
  print_row({"NF (cost)", "dflt cpu%", "dflt Mpps", "nfvnice cpu%",
             "nfvnice Mpps"});
  const char* labels[6] = {"NF1 (1x)",  "NF2 (2x)",  "NF3 (5x)",
                           "NF4 (20x)", "NF5 (40x)", "NF6 (60x)"};
  for (int i = 0; i < 6; ++i) {
    print_row({labels[i], fmt("%.1f%%", dflt6.cpu_share[i] * 100),
               fmt("%.3f", dflt6.flow_mpps[i]),
               fmt("%.1f%%", nice6.cpu_share[i] * 100),
               fmt("%.3f", nice6.flow_mpps[i])});
  }
  return 0;
}
