// Cross-chain overload control: the goodput/latency frontier of ingress
// admission gating and PAM-style push-aside under mixed criticality
// (DESIGN.md §17).
//
// Two cores. Core0 hosts a shared classifier NF `gate` (cost 600, so the
// core saturates near 4.3 Mpps) that heads two chains: `gold`
// (gate->gold_nf, high priority, tight 300 us SLO, 0.5 Mpps — a few
// percent of the gate) and `bulk` (gate->bulk_nf, low utility, 8 Mpps —
// the overloader; offered load on the gate is ~2x its capacity). Core1
// hosts the downstream NFs plus a saturating background hog chain, so the
// gold chain's tail latency is squeezed from below even when its packets
// survive the gate.
//
// Four arms, all on the full NFVnice mode (cgroups+backpressure+ECN):
//   Baseline   — hysteresis backpressure only. The gate's ring is shared,
//                so the ~2x overload taxes gold and bulk alike: gold keeps
//                roughly its arrival fraction of gate capacity.
//   Admission  — flow classes registered (gold utility 10, bulk utility
//                2). Pressure at the gate sheds bulk at ingress *before*
//                it costs gate CPU; gold rides through.
//   PushAside  — push-aside enabled. When gold_nf's queue crosses the
//                high watermark it confiscates a bounded share slice from
//                the lower-priority hog on its core; latency drops, the
//                gate bottleneck stays.
//   Combined   — both; best goodput *and* best tail.
//
// Headline keys for tools/check_bench_baseline.py:
//   overload_priority_goodput_ratio  gold goodput combined/baseline
//                                    (higher is better, must stay > 1)
//   overload_gold_p99_ratio          gold whole-run p99 combined/baseline
//                                    (lower is better)
//
// Self-checks by exit code (micro_shard precedent): the combined arm's
// report must be byte-identical across a rerun and across sim_shards=1
// vs 4.

#include "harness.hpp"

#include <cstring>

using namespace bench;

namespace {

constexpr double kRunSecs = 1.0;
constexpr double kTargetUs = 300.0;  ///< gold's p99 target.
constexpr Cycles kGateCost = 600;
constexpr Cycles kGoldCost = 1200;  ///< under-provisioned next to the hog.
constexpr Cycles kBulkCost = 50;
constexpr Cycles kHogCost = 600;
constexpr double kGoldRate = 0.5e6;
constexpr double kBulkRate = 8e6;  ///< gate offered ~2x capacity.
constexpr double kHogRate = 5e6;   ///< saturates core1 on its own.

struct Arm {
  const char* name;
  bool admission;
  bool push_aside;
};

constexpr Arm kArmsSpec[] = {
    {"Baseline", false, false},
    {"Admission", true, false},
    {"PushAside", false, true},
    {"Combined", true, true},
};

struct OverloadResult {
  double gold_mpps = 0.0;
  double bulk_mpps = 0.0;
  double hog_mpps = 0.0;
  double gold_p99_us = 0.0;  ///< Whole-run histogram p99.
  double violation_s = 0.0;
  std::uint64_t gold_discards = 0;  ///< Admission trickle discards (gold).
  std::uint64_t bulk_discards = 0;
  std::uint64_t engagements = 0;  ///< Ladder engage events, all classes.
  std::uint64_t grabs = 0;        ///< Push-aside grabs, all NFs.
  std::string report;
};

OverloadResult run_overload(const Arm& arm, bool with_report,
                            int shards_override = -1) {
  PlatformConfig cfg = make_config(kModeNfvnice);
  cfg.manager.push_aside.enabled = arm.push_aside;
  if (shards_override >= 0) {
    cfg.sim_shards = static_cast<std::uint32_t>(shards_override);
  }
  Simulation sim(cfg);
  const auto core0 = sim.add_core(kNormal.policy, kNormal.rr_quantum_ms);
  const auto core1 = sim.add_core(kNormal.policy, kNormal.rr_quantum_ms);

  // NF priorities are fixed across arms; only the two overload-control
  // mechanisms vary, so the frontier deltas are attributable to them.
  // The latency-sensitive NF keeps a short ring (a deep buffer would just
  // hide its tail); with the hog stretching scheduling intervals the ring
  // latches the high watermark, which is what push-aside keys on.
  nfv::core::NfOptions gold_opts;
  gold_opts.priority = 2.0;
  gold_opts.rx_capacity = 256;
  const auto gate =
      sim.add_nf("gate", core0, nfv::nf::CostModel::fixed(kGateCost));
  const auto gold_nf = sim.add_nf(
      "gold_nf", core1, nfv::nf::CostModel::fixed(kGoldCost), gold_opts);
  const auto bulk_nf =
      sim.add_nf("bulk_nf", core1, nfv::nf::CostModel::fixed(kBulkCost));
  const auto hog_nf =
      sim.add_nf("hog", core1, nfv::nf::CostModel::fixed(kHogCost));

  const auto gold = sim.add_chain("gold", {gate, gold_nf});
  const auto bulk = sim.add_chain("bulk", {gate, bulk_nf});
  const auto hog = sim.add_chain("hog", {hog_nf});

  // Tail telemetry (and the violation clock the admission gate uses as an
  // engage trigger) runs in every arm; the boost controller stays off.
  sim.set_chain_slo(gold, kTargetUs);
  if (arm.admission) {
    sim.set_chain_class(gold, /*priority=*/4.0, /*utility=*/10.0);
    sim.set_chain_class(bulk, /*priority=*/1.0, /*utility=*/2.0);
  }

  sim.add_udp_flow(gold, kGoldRate);
  sim.add_udp_flow(bulk, kBulkRate);
  sim.add_udp_flow(hog, kHogRate);

  const double secs = seconds(kRunSecs);
  sim.run_for_seconds(secs);

  OverloadResult out;
  out.gold_mpps = mpps(sim.chain_metrics(gold).egress_packets, secs);
  out.bulk_mpps = mpps(sim.chain_metrics(bulk).egress_packets, secs);
  out.hog_mpps = mpps(sim.chain_metrics(hog).egress_packets, secs);
  out.gold_p99_us = sim.clock().to_micros(
      static_cast<Cycles>(sim.chain_latency_quantile(gold, 0.99)));
  out.violation_s =
      sim.clock().to_seconds(sim.chain_slo_report(gold).violation_cycles);
  const auto gr = sim.chain_admission_report(gold);
  const auto br = sim.chain_admission_report(bulk);
  out.gold_discards = gr.discards;
  out.bulk_discards = br.discards;
  out.engagements = gr.engagements + br.engagements;
  for (const auto id : {gate, gold_nf, bulk_nf, hog_nf}) {
    out.grabs += sim.manager().push_grabs_of(id);
  }
  if (with_report) out.report = sim.report_json();
  return out;
}

/// Byte-identity self-checks on the combined arm (everything armed at
/// once): a rerun and an explicit sim_shards 1-vs-4 pair must each
/// produce identical reports.
int self_check() {
  const Arm& combined = kArmsSpec[3];
  const auto a = run_overload(combined, true);
  const auto b = run_overload(combined, true);
  if (a.report != b.report) {
    std::fprintf(stderr, "FAIL: combined arm report differs across reruns\n");
    return 1;
  }
  const auto s1 = run_overload(combined, true, 1);
  const auto s4 = run_overload(combined, true, 4);
  if (s1.report != s4.report) {
    std::fprintf(
        stderr,
        "FAIL: combined arm report differs between sim_shards=1 and 4\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  const bool json = json_mode(argc, argv);

  ParallelRunner<OverloadResult> runner;
  for (const Arm& arm : kArmsSpec) {
    runner.submit([&arm, json] { return run_overload(arm, json); });
  }
  const auto results = runner.run();

  const OverloadResult& base = results[0];
  const OverloadResult& comb = results[3];
  const double goodput_ratio =
      base.gold_mpps > 0.0 ? comb.gold_mpps / base.gold_mpps : 0.0;
  const double p99_ratio =
      base.gold_p99_us > 0.0 ? comb.gold_p99_us / base.gold_p99_us : 1.0;

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "fig_overload");
    w.field("target_us", kTargetUs);
    w.key("rows");
    w.begin_array();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const OverloadResult& r = results[i];
      w.begin_object();
      w.field("arm", kArmsSpec[i].name);
      w.field("gold_mpps", r.gold_mpps);
      w.field("bulk_mpps", r.bulk_mpps);
      w.field("hog_mpps", r.hog_mpps);
      w.field("gold_p99_us", r.gold_p99_us);
      w.field("violation_seconds", r.violation_s);
      w.field("gold_discards", r.gold_discards);
      w.field("bulk_discards", r.bulk_discards);
      w.field("engagements", r.engagements);
      w.field("push_grabs", r.grabs);
      if (!r.report.empty()) {
        w.key("report");
        w.raw(r.report);
      }
      w.end_object();
    }
    w.end_array();
    w.field("baseline_gold_mpps", base.gold_mpps);
    w.field("combined_gold_mpps", comb.gold_mpps);
    // Headlines for tools/check_bench_baseline.py: the priority class must
    // retain strictly more goodput under ~2x overload with both controls
    // on than under plain backpressure, and its tail must not regress.
    w.field("overload_priority_goodput_ratio", goodput_ratio);
    w.field("overload_gold_p99_ratio", p99_ratio);
    w.end_object();
    std::printf("%s\n", out.str().c_str());
    return self_check();
  }

  std::printf(
      "Cross-chain overload control: a high-priority chain (%.1f Mpps, p99 "
      "target %.0f us) and a bulk\nchain (%.1f Mpps) share one classifier "
      "NF offered ~2x its capacity; a background hog saturates\nthe "
      "downstream core. Admission sheds the low-utility class at ingress; "
      "PushAside confiscates a\nbounded share slice from lower-priority "
      "core neighbors. %.2fs per arm.\n",
      kGoldRate / 1e6, kTargetUs, kBulkRate / 1e6, seconds(kRunSecs));
  print_title("Goodput/latency frontier (NORMAL)");
  print_row({"Arm", "gold Mpps", "bulk Mpps", "hog Mpps", "p99 us", "viol s",
             "shed", "grabs"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const OverloadResult& r = results[i];
    print_row({kArmsSpec[i].name, fmt("%.3f", r.gold_mpps),
               fmt("%.3f", r.bulk_mpps), fmt("%.3f", r.hog_mpps),
               fmt("%.1f", r.gold_p99_us), fmt("%.3f", r.violation_s),
               fmt_count(r.bulk_discards), fmt_count(r.grabs)});
  }
  std::printf(
      "\nHeadline: gold goodput %.3f -> %.3f Mpps (ratio %.3f), gold p99 "
      "ratio %.3f\n",
      base.gold_mpps, comb.gold_mpps, goodput_ratio, p99_ratio);
  return self_check();
}
