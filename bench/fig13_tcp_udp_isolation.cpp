// Figure 13 (§4.3.4): performance isolation for responsive flows.
//
// One TCP flow traverses NF1(low)->NF2(med) on a shared core. Ten UDP
// flows share NF1/NF2 but continue to NF3 (high cost, own core) — NF3 is
// the UDP bottleneck, capping aggregate UDP goodput. UDP starts partway
// through the run and stops later (the paper: 15 s-40 s of a 55 s run; we
// compress the timeline). Expected shape: without NFVnice the TCP flow
// craters by ~2 orders of magnitude while UDP interferes; with NFVnice's
// per-chain backpressure (+ ECN) the TCP flow keeps most of its goodput
// and UDP holds its bottleneck rate throughout.

#include "harness.hpp"

using namespace bench;

namespace {

std::vector<std::vector<std::string>> run_timeline(const Mode& mode) {
  // Compressed timeline: 0-1 s TCP alone, 1-3 s +UDP, 3-4.5 s TCP alone.
  Simulation sim(make_config(mode));
  const auto shared = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  const auto extra = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  const auto nf1 = sim.add_nf("NF1", shared, nfv::nf::CostModel::fixed(250));
  const auto nf2 = sim.add_nf("NF2", shared, nfv::nf::CostModel::fixed(500));
  const auto nf3 = sim.add_nf("NF3", extra, nfv::nf::CostModel::fixed(30000));
  const auto tcp_chain = sim.add_chain("tcp", {nf1, nf2});
  const auto udp_chain = sim.add_chain("udp", {nf1, nf2, nf3});

  auto [tcp_flow, tcp_src] = sim.add_tcp_flow(tcp_chain);
  std::vector<nfv::flow::FlowId> udp_flows;
  for (int i = 0; i < 10; ++i) {
    nfv::core::UdpOptions opts;
    opts.size_bytes = 512;  // NF3 bottleneck => ~355 Mb/s aggregate UDP
    opts.start_seconds = 1.0 * time_scale();
    opts.stop_seconds = 3.0 * time_scale();
    udp_flows.push_back(sim.add_udp_flow(udp_chain, 5e5, opts));
  }

  std::vector<std::vector<std::string>> rows;
  std::uint64_t tcp_bytes_prev = 0, udp_bytes_prev = 0;
  const double step = seconds(0.25);
  for (int i = 1; i <= 18; ++i) {
    sim.run_for_seconds(step);
    const auto& tc = sim.manager().flow_counters(tcp_flow);
    std::uint64_t udp_bytes = 0;
    for (const auto f : udp_flows) {
      udp_bytes += sim.manager().flow_counters(f).egress_bytes;
    }
    const double tcp_gbps =
        static_cast<double>(tc.egress_bytes - tcp_bytes_prev) * 8 / step / 1e9;
    const double udp_mbps =
        static_cast<double>(udp_bytes - udp_bytes_prev) * 8 / step / 1e6;
    tcp_bytes_prev = tc.egress_bytes;
    udp_bytes_prev = udp_bytes;
    rows.push_back({fmt("%.2f", sim.now_seconds()), fmt("%.3f", tcp_gbps),
                    fmt("%.1f", udp_mbps), fmt("%.0f", tcp_src->cwnd())});
  }
  return rows;
}

}  // namespace

int main() {
  std::printf("Figure 13: TCP/UDP performance isolation (compressed "
              "timeline; paper runs 55 s)\n");
  std::printf("UDP bottleneck: NF3 capacity 2.6e9/30000 = 86.7 Kpps of 512 B "
              "= ~355 Mbps egress (paper: 280 Mbps)\n");
  ParallelRunner<std::vector<std::vector<std::string>>> runner;
  for (const Mode& mode : kDefaultVsNfvnice) {
    runner.submit([&mode] { return run_timeline(mode); });
  }
  const auto timelines = runner.run();
  for (std::size_t m = 0; m < timelines.size(); ++m) {
    print_title(std::string("Mode: ") + kDefaultVsNfvnice[m].name +
                "  (UDP active during [1s, 3s))");
    print_row({"t (s)", "TCP Gbps", "UDP Mbps", "TCP cwnd"});
    for (const auto& row : timelines[m]) print_row(row);
  }
  return 0;
}
