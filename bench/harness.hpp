// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure from the NFVnice
// paper's evaluation (§4): it builds the experiment's topology through the
// public Simulation API, runs each configuration, and prints rows in the
// same shape the paper reports. Durations are simulated seconds; set
// NFV_BENCH_SCALE (e.g. 4) to lengthen every run for tighter statistics.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/simulation.hpp"
#include "obs/json.hpp"

namespace bench {

using nfv::Cycles;
using nfv::core::PlatformConfig;
using nfv::core::SchedPolicy;
using nfv::core::Simulation;

/// The paper's four system configurations (Fig. 7, Fig. 10, ...).
struct Mode {
  const char* name;
  bool cgroups;
  bool backpressure;
  bool ecn;
};

inline constexpr Mode kModeDefault{"Default", false, false, false};
inline constexpr Mode kModeCgroup{"CGroup", true, false, false};
inline constexpr Mode kModeBkpr{"OnlyBKPR", false, true, false};
inline constexpr Mode kModeNfvnice{"NFVnice", true, true, true};
inline constexpr Mode kAllModes[] = {kModeDefault, kModeCgroup, kModeBkpr,
                                     kModeNfvnice};
inline constexpr Mode kDefaultVsNfvnice[] = {kModeDefault, kModeNfvnice};

/// The kernel schedulers the paper evaluates (§4.1).
struct Sched {
  const char* name;
  SchedPolicy policy;
  double rr_quantum_ms;
};

inline constexpr Sched kNormal{"NORMAL", SchedPolicy::kCfsNormal, 100.0};
inline constexpr Sched kBatch{"BATCH", SchedPolicy::kCfsBatch, 100.0};
inline constexpr Sched kRr1{"RR(1ms)", SchedPolicy::kRoundRobin, 1.0};
inline constexpr Sched kRr100{"RR(100ms)", SchedPolicy::kRoundRobin, 100.0};
inline constexpr Sched kAllScheds[] = {kNormal, kBatch, kRr1, kRr100};

/// Worker count for the sharded engine (DESIGN.md §14), stamped into every
/// PlatformConfig make_config() builds. Set by --shards; when it stays 0
/// the NFV_SIM_SHARDS environment variable applies inside Simulation
/// (mirroring how NFV_BENCH_WORKERS drives the experiment pool).
inline std::uint32_t& cli_shards() {
  static std::uint32_t shards = 0;
  return shards;
}

/// Parse `--shards N` / `--shards=N` (flag wins over NFV_SIM_SHARDS).
inline void parse_shards(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    long v = -1;
    if (arg == "--shards" && i + 1 < argc) {
      v = std::atol(argv[i + 1]);
    } else if (arg.rfind("--shards=", 0) == 0) {
      v = std::atol(arg.c_str() + 9);
    }
    if (v > 0) cli_shards() = static_cast<std::uint32_t>(v);
  }
}

/// True when --slo was passed: benches that honour it run with the SLO
/// feedback controller enabled (DESIGN.md §16) on top of the mode's
/// cgroup path. Telemetry for targeted chains is on either way; this flag
/// only turns the share-boost loop on.
inline bool& cli_slo() {
  static bool slo = false;
  return slo;
}

/// Parse `--slo` (alongside --shards / --json in the shared flag set).
inline void parse_slo(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--slo") cli_slo() = true;
  }
}

/// One-stop parsing of the shared bench flags (--shards, --slo).
inline void parse_cli(int argc, char** argv) {
  parse_shards(argc, argv);
  parse_slo(argc, argv);
}

inline PlatformConfig make_config(const Mode& mode) {
  PlatformConfig cfg;
  cfg.manager.enable_cgroups = mode.cgroups;
  cfg.manager.enable_backpressure = mode.backpressure;
  cfg.manager.enable_ecn = mode.ecn;
  cfg.manager.slo.enabled = cli_slo();
  cfg.sim_shards = cli_shards();
  return cfg;
}

/// Scale factor for all simulated durations (NFV_BENCH_SCALE, default 1).
inline double time_scale() {
  static const double scale = [] {
    const char* env = std::getenv("NFV_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

inline double seconds(double base) { return base * time_scale(); }

/// Mpps over a window.
inline double mpps(std::uint64_t packets, double secs) {
  return static_cast<double>(packets) / secs / 1e6;
}

/// One service chain of fixed-cost NFs driven by a single UDP flow — the
/// workhorse setup behind Fig. 7, Tables 3-5, Fig. 10, Fig. 11 and Fig. 16.
struct ChainResult {
  double egress_mpps = 0.0;
  std::uint64_t entry_drops = 0;
  /// Per-NF (in chain order):
  std::vector<double> svc_rate_mpps;     ///< packets processed per second
  std::vector<double> drop_rate_pps;     ///< RX-full drops per second at this NF
  std::vector<double> wasted_by_pps;     ///< this NF's processed pkts later dropped
  std::vector<double> cpu_share;
  std::vector<double> avg_sched_latency_ms;
  std::vector<double> runtime_ms;
  std::vector<std::uint64_t> cswch;
  std::vector<std::uint64_t> nvcswch;
};

struct ChainSpec {
  std::vector<Cycles> costs;
  double rate_pps = 6e6;
  double secs = 0.25;
  bool multicore = false;          ///< each NF on its own core
  /// When non-empty: variable per-packet costs, uniform over these values
  /// (overrides `costs` entries with the same mixed model per NF).
  std::vector<Cycles> variable_choices;
};

/// `report_json` (optional): receives the full Simulation::report_json()
/// document for this run — the machine-readable path benches expose
/// behind --json.
inline ChainResult run_chain(const Mode& mode, const Sched& sched,
                             const ChainSpec& spec,
                             std::string* report_json = nullptr) {
  Simulation sim(make_config(mode));
  std::vector<nfv::flow::NfId> nfs;
  std::size_t core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
  for (std::size_t i = 0; i < spec.costs.size(); ++i) {
    if (spec.multicore && i > 0) {
      core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
    }
    auto cost = spec.variable_choices.empty()
                    ? nfv::nf::CostModel::fixed(spec.costs[i])
                    : nfv::nf::CostModel::uniform_choice(
                          spec.variable_choices, 0x5eed + i);
    nfs.push_back(
        sim.add_nf("NF" + std::to_string(i + 1), core_id, std::move(cost)));
  }
  const auto chain = sim.add_chain("chain", nfs);
  sim.add_udp_flow(chain, spec.rate_pps);
  sim.run_for_seconds(spec.secs);

  ChainResult out;
  const auto cm = sim.chain_metrics(chain);
  out.egress_mpps = static_cast<double>(cm.egress_packets) / spec.secs / 1e6;
  out.entry_drops = cm.entry_throttle_drops;
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    const auto m = sim.nf_metrics(nfs[i]);
    out.svc_rate_mpps.push_back(static_cast<double>(m.processed) / spec.secs /
                                1e6);
    out.drop_rate_pps.push_back(static_cast<double>(m.rx_full_drops) /
                                spec.secs);
    out.wasted_by_pps.push_back(static_cast<double>(m.downstream_drops) /
                                spec.secs);
    out.cpu_share.push_back(sim.nf_cpu_share(nfs[i]));
    out.avg_sched_latency_ms.push_back(m.avg_sched_latency_ms);
    out.runtime_ms.push_back(sim.clock().to_millis(m.runtime));
    out.cswch.push_back(m.voluntary_switches);
    out.nvcswch.push_back(m.involuntary_switches);
  }
  if (report_json != nullptr) *report_json = sim.report_json();
  return out;
}

/// Worker count for ParallelRunner: NFV_BENCH_WORKERS when set (>=1),
/// otherwise the machine's hardware concurrency.
inline std::size_t bench_workers() {
  static const std::size_t n = [] {
    if (const char* env = std::getenv("NFV_BENCH_WORKERS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 0 ? hw : 1);
  }();
  return n;
}

/// The process-lifetime worker pool every default-sized ParallelRunner
/// executes on. A bench with several scenario groups used to spawn and join
/// a fresh pool per run() call; sharing one amortises thread start-up
/// across the whole binary and keeps the workers warm between groups.
inline nfv::common::ThreadPool& shared_pool() {
  static nfv::common::ThreadPool pool(bench_workers());
  return pool;
}

/// Runs independent experiment configurations across a worker pool and
/// hands the results back in submission order.
///
/// Each submitted job builds and runs its own Simulation, so runs share
/// nothing; the determinism contract is that run() returns results ordered
/// by submission index and all printing happens serially afterwards, which
/// makes bench output (human tables and --json alike) byte-identical
/// whatever NFV_BENCH_WORKERS is — parallelism only changes wall-clock.
///
/// Default-constructed runners share one process-wide pool (shared_pool());
/// a runner with an explicit non-default worker count gets a dedicated pool
/// for that run() only. Benches drive runners serially, so the shared
/// pool's idle barrier always refers to this runner's jobs.
template <typename R>
class ParallelRunner {
 public:
  ParallelRunner() : workers_(bench_workers()) {}
  explicit ParallelRunner(std::size_t workers)
      : workers_(workers > 0 ? workers : 1) {}

  /// Queue one experiment; returns its index in run()'s result vector.
  std::size_t submit(std::function<R()> job) {
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
  }

  /// Execute every queued job (at most `workers` at a time) and return the
  /// results in submission order. The runner is reusable afterwards.
  std::vector<R> run() {
    std::vector<R> results(jobs_.size());
    std::unique_ptr<nfv::common::ThreadPool> dedicated;
    nfv::common::ThreadPool* pool;
    if (workers_ == bench_workers()) {
      pool = &shared_pool();
    } else {
      dedicated = std::make_unique<nfv::common::ThreadPool>(workers_);
      pool = dedicated.get();
    }
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      pool->submit([&results, &jobs = jobs_, i] { results[i] = jobs[i](); });
    }
    pool->wait_idle();
    jobs_.clear();
    return results;
  }

 private:
  std::size_t workers_;
  std::vector<std::function<R()>> jobs_;
};

/// One (mode, scheduler) cell of an experiment grid.
struct GridRow {
  const Mode* mode = nullptr;
  const Sched* sched = nullptr;
  ChainResult result;
  std::string report;  ///< Simulation::report_json() when requested
};

/// Runs the (sched × mode) grid behind most tables/figures across the
/// worker pool. Rows come back scheduler-major (the order the tables
/// print: one row block per scheduler, one entry per mode), so printing
/// them in sequence reproduces the serial output exactly.
template <typename SchedRange, typename ModeRange>
std::vector<GridRow> run_grid(const SchedRange& scheds, const ModeRange& modes,
                              const ChainSpec& spec, bool with_report = false) {
  ParallelRunner<GridRow> runner;
  for (const Sched& sched : scheds) {
    for (const Mode& mode : modes) {
      runner.submit([&mode, &sched, spec, with_report] {
        GridRow row;
        row.mode = &mode;
        row.sched = &sched;
        row.result = run_chain(mode, sched, spec,
                               with_report ? &row.report : nullptr);
        return row;
      });
    }
  }
  return runner.run();
}

/// True when the bench binary was invoked with --json: emit one
/// machine-readable JSON document on stdout instead of the human tables.
inline bool json_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

/// Builds the --json document: {"bench":...,"rows":[{...},...]}. Each row
/// is one (mode, scheduler) configuration's ChainResult, optionally with
/// the run's full Simulation report spliced under "report".
class JsonReport {
 public:
  explicit JsonReport(const std::string& bench_name) : writer_(out_) {
    writer_.begin_object();
    writer_.field("bench", std::string_view(bench_name));
    writer_.key("rows");
    writer_.begin_array();
  }

  void add_row(const Mode& mode, const Sched& sched, const ChainResult& r,
               const std::string& report_json = {}) {
    writer_.begin_object();
    writer_.field("mode", mode.name);
    writer_.field("scheduler", sched.name);
    writer_.field("egress_mpps", r.egress_mpps);
    writer_.field("entry_drops", r.entry_drops);
    write_array("svc_rate_mpps", r.svc_rate_mpps);
    write_array("drop_rate_pps", r.drop_rate_pps);
    write_array("wasted_by_pps", r.wasted_by_pps);
    write_array("cpu_share", r.cpu_share);
    if (!report_json.empty()) {
      writer_.key("report");
      writer_.raw(report_json);
    }
    writer_.end_object();
  }

  /// Close the document and print it to stdout. Call exactly once.
  void finish() {
    writer_.end_array();
    writer_.end_object();
    std::printf("%s\n", out_.str().c_str());
  }

 private:
  void write_array(std::string_view key, const std::vector<double>& values) {
    writer_.key(key);
    writer_.begin_array();
    for (const double v : values) writer_.value(v);
    writer_.end_array();
  }

  std::ostringstream out_;
  nfv::obs::JsonWriter writer_;
};

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Simple fixed-width row printing: benches pass pre-formatted cells.
inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", i == 0 ? 22 : width, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string fmt_count(std::uint64_t value) {
  char buf[64];
  if (value >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fM", static_cast<double>(value) / 1e6);
  } else if (value >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(value) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buf;
}

}  // namespace bench
