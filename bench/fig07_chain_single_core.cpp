// Figure 7 (§4.2.1): throughput of a 3-NF service chain on one shared core.
//
// Costs Low/Med/High = 120/270/550 cycles, line-rate-ish 64 B UDP offered
// load, for every kernel scheduler x {Default, CGroup-only, BKPR-only,
// NFVnice}. Expected shape: NFVnice beats Default under every scheduler
// (up to ~2x over RR); CGroup and BKPR each capture part of the gain.

#include "harness.hpp"

using namespace bench;

int main(int argc, char** argv) {
  ChainSpec spec;
  spec.costs = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = seconds(0.25);

  parse_shards(argc, argv);
  const bool json = json_mode(argc, argv);
  const auto rows = run_grid(kAllScheds, kAllModes, spec, json);

  if (json) {
    JsonReport report("fig07_chain_single_core");
    for (const GridRow& row : rows) {
      report.add_row(*row.mode, *row.sched, row.result, row.report);
    }
    report.finish();
    return 0;
  }

  std::printf("Figure 7: 3-NF chain (120/270/550 cycles) on one core, "
              "6 Mpps offered\n");
  print_title("Chain throughput (Mpps)");
  print_row({"Scheduler", "Default", "CGroup", "OnlyBKPR", "NFVnice"});

  std::size_t idx = 0;
  for (const Sched& sched : kAllScheds) {
    std::vector<std::string> cells{sched.name};
    for (std::size_t m = 0; m < std::size(kAllModes); ++m) {
      cells.push_back(fmt("%.2f", rows[idx++].result.egress_mpps));
    }
    print_row(cells);
  }
  std::printf("\n(Theoretical chain max on one core: 2.6e9/(120+270+550) = "
              "2.77 Mpps)\n");
  return 0;
}
