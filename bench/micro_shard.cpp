// Sharded-engine scaling microbench (DESIGN.md §14).
//
// Builds a 4-core topology whose chains all cross lane boundaries — the
// worst case for the conservative-lookahead barrier, since every epoch
// moves packets through the cross-lane mailboxes — and runs the identical
// workload at shards=1 and shards=4. Reported:
//
//   * shard_speedup_4w     — wall-clock(shards=1) / wall-clock(shards=4).
//     Meaningful only when the host has >= 4 usable cores; the JSON carries
//     host_cores so the baseline checker can gate on it.
//   * shard_events_per_sec — engine events dispatched per wall second at
//     shards=4 (the sharded substrate's absolute throughput).
//
// The bench also *asserts* the sharded determinism contract on every run:
// the shards=1 and shards=4 reports must be byte-identical, and a mismatch
// exits non-zero so CI fails even where the speedup gate is skipped.
// Timing is wall-clock (min-of-3), not CPU time: parallel speedup is the
// quantity under test.

#include <ctime>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "core/simulation.hpp"
#include "obs/json.hpp"

namespace {

double wall_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double sim_seconds() {
  if (const char* env = std::getenv("NFV_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return 0.2 * v;
  }
  return 0.2;
}

struct RunResult {
  double wall = 0.0;
  std::uint64_t events = 0;
  std::string report;
};

RunResult run_once(std::uint32_t shards) {
  nfv::core::PlatformConfig cfg;
  cfg.sim_shards = shards;
  nfv::core::Simulation sim(cfg);

  // Two NFs per core; every chain hops across lanes so the mailbox path —
  // not lane-local work — is what scaling has to survive.
  std::vector<std::size_t> cores;
  std::vector<nfv::flow::NfId> front, back;
  for (int i = 0; i < 4; ++i) {
    cores.push_back(sim.add_core(nfv::core::SchedPolicy::kCfsBatch));
    front.push_back(sim.add_nf("f" + std::to_string(i), cores[i],
                               nfv::nf::CostModel::fixed(220)));
    back.push_back(sim.add_nf("b" + std::to_string(i), cores[i],
                              nfv::nf::CostModel::fixed(340)));
  }
  const auto long_chain =
      sim.add_chain("ring", {front[0], front[1], front[2], front[3]});
  const auto pair_a = sim.add_chain("pair_a", {back[1], back[2]});
  const auto pair_b = sim.add_chain("pair_b", {back[3], back[0]});
  sim.add_udp_flow(long_chain, 2.5e6);
  sim.add_udp_flow(pair_a, 2.0e6);
  sim.add_udp_flow(pair_b, 2.0e6);
  sim.add_tcp_flow(long_chain);

  const double secs = sim_seconds();
  const double t0 = wall_seconds();
  sim.run_for_seconds(secs);
  RunResult out;
  out.wall = wall_seconds() - t0;
  out.report = sim.report_json();
  // dispatched_events across all lanes, straight out of the report's meta.
  const std::string key = "\"dispatched_events\":";
  const auto pos = out.report.find(key);
  if (pos != std::string::npos) {
    out.events = std::strtoull(out.report.c_str() + pos + key.size(),
                               nullptr, 10);
  }
  return out;
}

RunResult best_of(int reps, std::uint32_t shards) {
  RunResult best = run_once(shards);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_once(shards);
    if (r.wall < best.wall) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") json = true;
  }

  constexpr int kReps = 3;
  const RunResult r1 = best_of(kReps, 1);
  const RunResult r4 = best_of(kReps, 4);

  const bool identical = r1.report == r4.report;
  const double speedup = r4.wall > 0.0 ? r1.wall / r4.wall : 0.0;
  const double events_per_sec =
      r4.wall > 0.0 ? static_cast<double>(r4.events) / r4.wall : 0.0;
  const unsigned host_cores = std::thread::hardware_concurrency();

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter writer(out);
    writer.begin_object();
    writer.field("bench", "micro_shard");
    writer.field("host_cores", static_cast<std::uint64_t>(host_cores));
    writer.key("rows");
    writer.begin_array();
    for (const auto* r : {&r1, &r4}) {
      writer.begin_object();
      writer.field("shards", static_cast<std::uint64_t>(r == &r1 ? 1 : 4));
      writer.field("wall_seconds", r->wall);
      writer.field("events", r->events);
      writer.field("events_per_sec",
                   r->wall > 0.0
                       ? static_cast<double>(r->events) / r->wall
                       : 0.0);
      writer.end_object();
    }
    writer.end_array();
    writer.field("identical", identical);
    writer.field("shard_speedup_4w", speedup);
    writer.field("shard_events_per_sec", events_per_sec);
    writer.end_object();
    std::printf("%s\n", out.str().c_str());
  } else {
    std::printf("Sharded-engine scaling (4 lanes, cross-lane chains)\n\n");
    std::printf("%-10s %14s %14s %16s\n", "shards", "wall (s)", "events",
                "events/sec");
    for (const auto* r : {&r1, &r4}) {
      std::printf("%-10d %14.3f %14llu %16.0f\n", r == &r1 ? 1 : 4, r->wall,
                  static_cast<unsigned long long>(r->events),
                  r->wall > 0.0 ? static_cast<double>(r->events) / r->wall
                                : 0.0);
    }
    std::printf("\nspeedup(4w): %.2fx on %u host cores; reports %s\n",
                speedup, host_cores,
                identical ? "byte-identical" : "DIFFER");
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: shards=1 and shards=4 reports differ — the sharded "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}
