// Extension study: end-to-end chain latency under overload.
//
// Not a figure in the paper, but a direct consequence of its design worth
// quantifying: selective early discard keeps queues near the watermarks
// instead of full, so the packets that *are* delivered see bounded
// queueing delay. Reports latency quantiles for the Fig. 7 chain across
// load levels, Default vs NFVnice.

#include "harness.hpp"

using namespace bench;

namespace {

struct LatencyRow {
  double p50_us, p99_us, max_us;
  double egress_mpps;
};

LatencyRow run(const Mode& mode, double rate_pps, double secs) {
  Simulation sim(make_config(mode));
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  const auto a = sim.add_nf("low", core_id, nfv::nf::CostModel::fixed(120));
  const auto b = sim.add_nf("med", core_id, nfv::nf::CostModel::fixed(270));
  const auto c = sim.add_nf("high", core_id, nfv::nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("lmh", {a, b, c});
  sim.add_udp_flow(chain, rate_pps);
  sim.run_for_seconds(secs);

  const auto& hist = sim.manager().chain_latency(chain);
  LatencyRow row;
  const auto& clock = sim.clock();
  row.p50_us = clock.to_micros(static_cast<Cycles>(hist.value_at_quantile(0.5)));
  row.p99_us = clock.to_micros(static_cast<Cycles>(hist.value_at_quantile(0.99)));
  row.max_us = clock.to_micros(static_cast<Cycles>(hist.max()));
  row.egress_mpps = mpps(sim.chain_metrics(chain).egress_packets, secs);
  return row;
}

}  // namespace

int main() {
  std::printf("Chain latency under load (Low-Med-High chain, one core, "
              "BATCH)\n");
  print_title("End-to-end latency quantiles (us)");
  print_row({"Offered", "mode", "p50", "p99", "max", "egress Mpps"});
  const double secs = seconds(0.25);
  const double rates[] = {1e6, 2e6, 4e6, 8e6};
  ParallelRunner<LatencyRow> runner;
  for (const double rate : rates) {
    for (const Mode& mode : kDefaultVsNfvnice) {
      runner.submit([&mode, rate, secs] { return run(mode, rate, secs); });
    }
  }
  const auto results = runner.run();
  std::size_t idx = 0;
  for (const double rate : rates) {
    for (const Mode& mode : kDefaultVsNfvnice) {
      const auto& row = results[idx++];
      print_row({fmt("%.0f Mpps", rate / 1e6), mode.name,
                 fmt("%.0f", row.p50_us), fmt("%.0f", row.p99_us),
                 fmt("%.0f", row.max_us), fmt("%.2f", row.egress_mpps)});
    }
  }
  std::printf("\n(Expected: under overload, Default queues sit full — "
              "multi-ms delays; NFVnice bounds them near the watermark "
              "level.)\n");
  return 0;
}
