// Flow-state library microbenchmark: the data-plane lookup path at scale.
//
// One million concurrent flows put the table far beyond the LLC, so this
// bench measures what actually dominates a software dataplane: DRAM-bound
// lookups. Scenarios cover scalar and batched (software-prefetch) FlowMap
// lookups against std::unordered_map on identical key sets — hits and
// misses separately — plus FlowStore install/expire churn throughput and
// the cost of a full expiry sweep over a million-flow chain. Timing is
// process CPU time, min-of-3 repetitions, as in micro_engine; the key sets
// and access orders are seed-deterministic.
//
// The headline figures pinned in BENCH_baseline.json:
//   flowmap_batch_lookups_per_sec    batched hit lookups at 1M flows
//   flowmap_lookup_speedup_vs_unordered
//                                    batched FlowMap vs unordered_map hits
//   flowstore_install_expire_ops_per_sec
//                                    1M installs + 1M expiries churn rate

#include <ctime>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "flow/flow_map.hpp"
#include "flow/flow_store.hpp"
#include "obs/json.hpp"
#include "pktio/flow_key.hpp"

namespace {

using nfv::Cycles;
using nfv::Rng;
using nfv::flow::FlowMap;
using nfv::flow::FlowStore;
using nfv::pktio::FlowKey;
using nfv::pktio::FlowKeyHash;

constexpr std::size_t kFlows = 1'000'000;
constexpr std::size_t kBatch = 256;  ///< Keys per find_batch call.
constexpr int kReps = 3;

double now_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

FlowKey key_of_id(std::uint64_t id) {
  FlowKey k;
  k.src_ip = 0x0a000000u + static_cast<std::uint32_t>(id % 65521);
  k.dst_ip = 0x0a800001u + static_cast<std::uint32_t>((id / 65521) % 251);
  k.src_port = static_cast<std::uint16_t>(1024 + id % 50000);
  k.dst_port = 80;
  k.proto = 17;
  return k;
}

struct Result {
  std::string name;
  std::uint64_t ops = 0;
  double cpu_seconds = 0;
  [[nodiscard]] double per_sec() const {
    return static_cast<double>(ops) / cpu_seconds;
  }
};

template <typename Fn>
Result best_of(int reps, Fn&& fn) {
  Result best = fn();
  for (int i = 1; i < reps; ++i) {
    Result r = fn();
    if (r.cpu_seconds < best.cpu_seconds) best = r;
  }
  return best;
}

/// Shared fixture: both tables filled with the same kFlows keys, plus a
/// shuffled hit order and a disjoint miss key set.
struct Fixture {
  FlowMap<> map{2 * kFlows};  // pow2-rounded to 2^21: load factor ~0.48
  std::unordered_map<FlowKey, std::uint32_t, FlowKeyHash> ref;
  std::vector<FlowKey> hit_keys;
  std::vector<FlowKey> miss_keys;

  Fixture() {
    ref.reserve(kFlows);
    hit_keys.reserve(kFlows);
    miss_keys.reserve(kFlows);
    for (std::size_t i = 0; i < kFlows; ++i) {
      const FlowKey key = key_of_id(i);
      map.insert(key, static_cast<std::uint32_t>(i));
      ref.emplace(key, static_cast<std::uint32_t>(i));
      hit_keys.push_back(key);
      miss_keys.push_back(key_of_id(kFlows + i));
    }
    // Shuffle the access order so lookups stride the whole table (the
    // cache-hostile pattern real 5-tuple arrival order produces).
    Rng rng(0x5caffe);
    for (std::size_t i = kFlows - 1; i > 0; --i) {
      const std::size_t j = rng.next_below(i + 1);
      std::swap(hit_keys[i], hit_keys[j]);
      std::swap(miss_keys[i], miss_keys[j]);
    }
  }
};

std::uint64_t g_sink = 0;  ///< Defeats dead-code elimination.

Result run_flowmap_scalar(const Fixture& fx, const std::vector<FlowKey>& keys,
                          const char* name) {
  const double t0 = now_seconds();
  std::uint64_t sum = 0;
  for (const FlowKey& key : keys) {
    const std::uint32_t* v = fx.map.find(key);
    if (v != nullptr) sum += *v;
  }
  const double elapsed = now_seconds() - t0;
  g_sink += sum;
  return {name, keys.size(), elapsed};
}

Result run_flowmap_batch(const Fixture& fx, const std::vector<FlowKey>& keys,
                         const char* name) {
  std::vector<std::uint32_t*> out(kBatch);
  const double t0 = now_seconds();
  std::uint64_t sum = 0;
  for (std::size_t base = 0; base < keys.size(); base += kBatch) {
    const std::size_t n = std::min(kBatch, keys.size() - base);
    fx.map.find_batch(keys.data() + base, n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] != nullptr) sum += *out[i];
    }
  }
  const double elapsed = now_seconds() - t0;
  g_sink += sum;
  return {name, keys.size(), elapsed};
}

Result run_unordered(const Fixture& fx, const std::vector<FlowKey>& keys,
                     const char* name) {
  const double t0 = now_seconds();
  std::uint64_t sum = 0;
  for (const FlowKey& key : keys) {
    const auto it = fx.ref.find(key);
    if (it != fx.ref.end()) sum += it->second;
  }
  const double elapsed = now_seconds() - t0;
  g_sink += sum;
  return {name, keys.size(), elapsed};
}

/// Churn: install a million flows (fresh tuples), then expire them all —
/// the per-op cost of table state turnover, id reuse included.
Result run_install_expire() {
  FlowStore<> store(FlowStore<>::Config{.max_flows = kFlows,
                                        .idle_timeout = 1,
                                        .evict_lru_when_full = false,
                                        .auto_grow = false});
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < kFlows; ++i) {
    store.install(key_of_id(i), static_cast<Cycles>(i));
  }
  const std::size_t expired =
      store.expire(static_cast<Cycles>(2 * kFlows) + 2);
  const double elapsed = now_seconds() - t0;
  g_sink += expired;
  return {"install_expire_1m", 2 * kFlows, elapsed};
}

/// The O(expired) full sweep alone: one expire() call reclaiming a
/// million-flow chain.
Result run_full_sweep() {
  FlowStore<> store(FlowStore<>::Config{.max_flows = kFlows,
                                        .idle_timeout = 1,
                                        .evict_lru_when_full = false,
                                        .auto_grow = false});
  for (std::size_t i = 0; i < kFlows; ++i) {
    store.install(key_of_id(i), static_cast<Cycles>(i));
  }
  const double t0 = now_seconds();
  const std::size_t expired =
      store.expire(static_cast<Cycles>(2 * kFlows) + 2);
  const double elapsed = now_seconds() - t0;
  g_sink += expired;
  return {"full_sweep_1m", expired, elapsed};
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") json = true;
  }

  Fixture fx;
  const Result results[] = {
      best_of(kReps,
              [&] { return run_flowmap_scalar(fx, fx.hit_keys, "flowmap_hit"); }),
      best_of(kReps,
              [&] { return run_flowmap_batch(fx, fx.hit_keys,
                                             "flowmap_hit_batch"); }),
      best_of(kReps,
              [&] { return run_flowmap_scalar(fx, fx.miss_keys,
                                              "flowmap_miss"); }),
      best_of(kReps,
              [&] { return run_flowmap_batch(fx, fx.miss_keys,
                                             "flowmap_miss_batch"); }),
      best_of(kReps,
              [&] { return run_unordered(fx, fx.hit_keys, "unordered_hit"); }),
      best_of(kReps,
              [&] { return run_unordered(fx, fx.miss_keys,
                                         "unordered_miss"); }),
      best_of(kReps, [] { return run_install_expire(); }),
      best_of(kReps, [] { return run_full_sweep(); }),
  };

  const auto find = [&](std::string_view name) -> const Result& {
    for (const Result& r : results) {
      if (r.name == name) return r;
    }
    std::fprintf(stderr, "missing scenario %s\n", std::string(name).c_str());
    std::abort();
  };
  const double batch_hit_rate = find("flowmap_hit_batch").per_sec();
  const double unordered_hit_rate = find("unordered_hit").per_sec();
  const double speedup = batch_hit_rate / unordered_hit_rate;
  const double churn_rate = find("install_expire_1m").per_sec();

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter writer(out);
    writer.begin_object();
    writer.field("bench", "micro_flowmap");
    writer.field("flows", static_cast<std::uint64_t>(kFlows));
    writer.key("rows");
    writer.begin_array();
    for (const Result& r : results) {
      writer.begin_object();
      writer.field("scenario", std::string_view(r.name));
      writer.field("ops", r.ops);
      writer.field("cpu_seconds", r.cpu_seconds);
      writer.field("per_sec", r.per_sec());
      writer.end_object();
    }
    writer.end_array();
    writer.field("flowmap_batch_lookups_per_sec", batch_hit_rate);
    writer.field("flowmap_lookup_speedup_vs_unordered", speedup);
    writer.field("flowstore_install_expire_ops_per_sec", churn_rate);
    writer.end_object();
    std::printf("%s\n", out.str().c_str());
    return 0;
  }

  std::printf("FlowMap microbenchmark: %zu concurrent flows\n\n",
              static_cast<std::size_t>(kFlows));
  std::printf("%-20s %12s %12s %16s\n", "scenario", "ops", "cpu (s)",
              "ops/sec");
  for (const Result& r : results) {
    std::printf("%-20s %12llu %12.4f %16.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.ops), r.cpu_seconds,
                r.per_sec());
  }
  std::printf("\nbatched hit lookup speedup vs std::unordered_map: %.2fx\n",
              speedup);
  return static_cast<int>(g_sink & 0);  // keep the sink alive
}
