// Table 3 (§4.2.1): packet drop rate per second — wasted work.
//
// Same 3-NF chain as Figure 7. The paper reports packets dropped at NF1
// and NF2 *after processing* (i.e. work those NFs did that died at the
// next queue). Expected shape: default schedulers waste millions of
// packets per second; NFVnice collapses that to ~zero (excess load is shed
// at the chain entry instead).

#include "harness.hpp"

using namespace bench;

int main(int argc, char** argv) {
  ChainSpec spec;
  spec.costs = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = seconds(0.25);

  parse_shards(argc, argv);
  const bool json = json_mode(argc, argv);
  const auto rows = run_grid(kAllScheds, kDefaultVsNfvnice, spec, json);

  if (json) {
    JsonReport report("tab03_drop_rate");
    for (const GridRow& row : rows) {
      report.add_row(*row.mode, *row.sched, row.result, row.report);
    }
    report.finish();
    return 0;
  }

  std::printf("Table 3: wasted-work drop rate per second (3-NF chain, one "
              "core, 6 Mpps)\n");
  std::printf("Rows: packets processed by NFi that were dropped at its "
              "downstream queue.\n");
  print_title("Drops/s (Default vs NFVnice)");
  print_row({"Scheduler", "NF1 dflt", "NF1 nfvnice", "NF2 dflt",
             "NF2 nfvnice", "entry drops"});

  std::size_t idx = 0;
  for (const Sched& sched : kAllScheds) {
    const ChainResult& dflt = rows[idx].result;
    const ChainResult& nice = rows[idx + 1].result;
    idx += 2;
    print_row({sched.name, fmt_count(static_cast<std::uint64_t>(
                               dflt.wasted_by_pps[0])),
               fmt_count(static_cast<std::uint64_t>(nice.wasted_by_pps[0])),
               fmt_count(static_cast<std::uint64_t>(dflt.wasted_by_pps[1])),
               fmt_count(static_cast<std::uint64_t>(nice.wasted_by_pps[1])),
               fmt_count(nice.entry_drops)});
  }
  return 0;
}
