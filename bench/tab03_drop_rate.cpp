// Table 3 (§4.2.1): packet drop rate per second — wasted work.
//
// Same 3-NF chain as Figure 7. The paper reports packets dropped at NF1
// and NF2 *after processing* (i.e. work those NFs did that died at the
// next queue). Expected shape: default schedulers waste millions of
// packets per second; NFVnice collapses that to ~zero (excess load is shed
// at the chain entry instead).

#include "harness.hpp"

using namespace bench;

int main(int argc, char** argv) {
  ChainSpec spec;
  spec.costs = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = seconds(0.25);

  if (json_mode(argc, argv)) {
    JsonReport report("tab03_drop_rate");
    for (const Sched& sched : kAllScheds) {
      for (const Mode* mode : {&kModeDefault, &kModeNfvnice}) {
        std::string sim_report;
        const auto result = run_chain(*mode, sched, spec, &sim_report);
        report.add_row(*mode, sched, result, sim_report);
      }
    }
    report.finish();
    return 0;
  }

  std::printf("Table 3: wasted-work drop rate per second (3-NF chain, one "
              "core, 6 Mpps)\n");
  std::printf("Rows: packets processed by NFi that were dropped at its "
              "downstream queue.\n");
  print_title("Drops/s (Default vs NFVnice)");
  print_row({"Scheduler", "NF1 dflt", "NF1 nfvnice", "NF2 dflt",
             "NF2 nfvnice", "entry drops"});

  for (const Sched& sched : kAllScheds) {
    const auto dflt = run_chain(kModeDefault, sched, spec);
    const auto nice = run_chain(kModeNfvnice, sched, spec);
    print_row({sched.name, fmt_count(static_cast<std::uint64_t>(
                               dflt.wasted_by_pps[0])),
               fmt_count(static_cast<std::uint64_t>(nice.wasted_by_pps[0])),
               fmt_count(static_cast<std::uint64_t>(dflt.wasted_by_pps[1])),
               fmt_count(static_cast<std::uint64_t>(nice.wasted_by_pps[1])),
               fmt_count(nice.entry_drops)});
  }
  return 0;
}
