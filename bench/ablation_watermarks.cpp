// §4.3.8 tuning study: watermark sensitivity.
//
// The paper sweeps HIGH_WATER_MARK with a fixed margin, then the margin
// with HIGH fixed at 80%, on the Low-Med-High chain at line rate, and
// lands on HIGH=80% / margin=20. Expected shape: throughput sags below
// ~70% HIGH (under-utilised queues) and wasted drops rise above ~80-90%
// (insufficient reserve buffering); very small margins flap the throttle
// state and drop more, very large margins cost throughput.

#include "harness.hpp"

using namespace bench;

namespace {

struct WmResult {
  double egress_mpps;
  std::uint64_t wasted;
  std::uint64_t throttle_entries;
};

WmResult run(double high, double low, double secs) {
  PlatformConfig cfg = make_config(kModeNfvnice);
  cfg.high_watermark = high;
  cfg.low_watermark = low;
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsBatch, 100.0);
  const auto a = sim.add_nf("low", core_id, nfv::nf::CostModel::fixed(120));
  const auto b = sim.add_nf("med", core_id, nfv::nf::CostModel::fixed(270));
  const auto c = sim.add_nf("high", core_id, nfv::nf::CostModel::fixed(550));
  const auto chain = sim.add_chain("lmh", {a, b, c});
  sim.add_udp_flow(chain, 6e6);
  sim.run_for_seconds(secs);
  std::uint64_t wasted = 0;
  for (const auto nf : {a, b, c}) {
    wasted += sim.nf_metrics(nf).wasted_drops_here;
  }
  return {mpps(sim.chain_metrics(chain).egress_packets, secs), wasted,
          sim.manager().backpressure()->stats().throttle_entries};
}

}  // namespace

int main() {
  std::printf("Watermark tuning (Low-Med-High chain, one core, 6 Mpps; "
              "per %.2fs run)\n", seconds(0.2));
  const double secs = seconds(0.2);
  const double highs[] = {0.50, 0.60, 0.70, 0.80, 0.90, 0.95};
  const double margins[] = {0.01, 0.05, 0.10, 0.20, 0.30, 0.40};

  ParallelRunner<WmResult> runner;
  for (const double high : highs) {
    runner.submit([high, secs] { return run(high, high - 0.20, secs); });
  }
  for (const double margin : margins) {
    runner.submit([margin, secs] { return run(0.80, 0.80 - margin, secs); });
  }
  const auto results = runner.run();

  std::size_t idx = 0;
  print_title("Sweep HIGH watermark, margin fixed at 20 points");
  print_row({"HIGH", "egress Mpps", "wasted drops", "throttle entries"});
  for (const double high : highs) {
    const auto& r = results[idx++];
    print_row({fmt("%.0f%%", high * 100), fmt("%.2f", r.egress_mpps),
               fmt_count(r.wasted), fmt_count(r.throttle_entries)});
  }

  print_title("Sweep margin, HIGH fixed at 80%");
  print_row({"Margin", "egress Mpps", "wasted drops", "throttle entries"});
  for (const double margin : margins) {
    const auto& r = results[idx++];
    print_row({fmt("%.0f pts", margin * 100), fmt("%.2f", r.egress_mpps),
               fmt_count(r.wasted), fmt_count(r.throttle_entries)});
  }
  std::printf("\n(Paper's tuned choice: HIGH=80%%, margin=20)\n");
  return 0;
}
