// Figure 1 (§2.2): stock Linux schedulers cannot provide rate-cost
// proportional fairness.
//
// Three standalone NFs share one core under NORMAL / BATCH / RR(100ms),
// with no NFVnice control plane at all.
//   Fig. 1a: homogeneous NFs (250 cycles each); even load (5/5/5 Mpps) and
//            uneven load (6/6/3 Mpps).
//   Fig. 1b: heterogeneous NFs (500/250/50 cycles); same two loads.
// Expected shape: with even load and equal costs all schedulers tie; with
// uneven load only RR tracks arrival rates; with heterogeneous costs CFS
// favours the cheap NF (equal CPU != equal output) while RR lets heavy NFs
// hog the core.

#include "harness.hpp"

using namespace bench;

namespace {

void run_case(const char* title, const std::vector<Cycles>& costs,
              const std::vector<double>& rates_mpps) {
  print_title(title);
  print_row({"Scheduler", "NF1 Mpps", "NF2 Mpps", "NF3 Mpps", "NF1 cpu%",
             "NF2 cpu%", "NF3 cpu%"});
  const double secs = seconds(0.25);
  for (const Sched& sched : {kNormal, kBatch, kRr100}) {
    Simulation sim(make_config(kModeDefault));
    const auto core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
    std::vector<nfv::flow::ChainId> chains;
    std::vector<nfv::flow::NfId> nfs;
    for (std::size_t i = 0; i < costs.size(); ++i) {
      nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                               nfv::nf::CostModel::fixed(costs[i])));
      chains.push_back(sim.add_chain("c" + std::to_string(i), {nfs.back()}));
      sim.add_udp_flow(chains.back(), rates_mpps[i] * 1e6);
    }
    sim.run_for_seconds(secs);
    std::vector<std::string> cells{sched.name};
    for (std::size_t i = 0; i < chains.size(); ++i) {
      cells.push_back(
          fmt("%.2f", mpps(sim.chain_metrics(chains[i]).egress_packets, secs)));
    }
    for (std::size_t i = 0; i < nfs.size(); ++i) {
      cells.push_back(fmt("%.0f%%", sim.nf_cpu_share(nfs[i]) * 100.0));
    }
    print_row(cells);
  }
}

}  // namespace

int main() {
  std::printf("Figure 1: scheduler motivation (3 NFs sharing one core, no "
              "NFVnice)\n");
  run_case("Fig 1a: homogeneous costs (250 cyc), even load 5/5/5 Mpps",
           {250, 250, 250}, {5, 5, 5});
  run_case("Fig 1a: homogeneous costs (250 cyc), uneven load 6/6/3 Mpps",
           {250, 250, 250}, {6, 6, 3});
  run_case("Fig 1b: heterogeneous costs (500/250/50 cyc), even load 5/5/5",
           {500, 250, 50}, {5, 5, 5});
  run_case("Fig 1b: heterogeneous costs (500/250/50 cyc), uneven load 6/6/3",
           {500, 250, 50}, {6, 6, 3});
  return 0;
}
