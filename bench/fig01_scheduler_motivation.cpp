// Figure 1 (§2.2): stock Linux schedulers cannot provide rate-cost
// proportional fairness.
//
// Three standalone NFs share one core under NORMAL / BATCH / RR(100ms),
// with no NFVnice control plane at all.
//   Fig. 1a: homogeneous NFs (250 cycles each); even load (5/5/5 Mpps) and
//            uneven load (6/6/3 Mpps).
//   Fig. 1b: heterogeneous NFs (500/250/50 cycles); same two loads.
// Expected shape: with even load and equal costs all schedulers tie; with
// uneven load only RR tracks arrival rates; with heterogeneous costs CFS
// favours the cheap NF (equal CPU != equal output) while RR lets heavy NFs
// hog the core.

#include "harness.hpp"

using namespace bench;

namespace {

struct Case {
  const char* title;
  std::vector<Cycles> costs;
  std::vector<double> rates_mpps;
};

std::vector<std::string> run_one(const Sched& sched,
                                 const std::vector<Cycles>& costs,
                                 const std::vector<double>& rates_mpps,
                                 double secs) {
  Simulation sim(make_config(kModeDefault));
  const auto core_id = sim.add_core(sched.policy, sched.rr_quantum_ms);
  std::vector<nfv::flow::ChainId> chains;
  std::vector<nfv::flow::NfId> nfs;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                             nfv::nf::CostModel::fixed(costs[i])));
    chains.push_back(sim.add_chain("c" + std::to_string(i), {nfs.back()}));
    sim.add_udp_flow(chains.back(), rates_mpps[i] * 1e6);
  }
  sim.run_for_seconds(secs);
  std::vector<std::string> cells{sched.name};
  for (std::size_t i = 0; i < chains.size(); ++i) {
    cells.push_back(
        fmt("%.2f", mpps(sim.chain_metrics(chains[i]).egress_packets, secs)));
  }
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    cells.push_back(fmt("%.0f%%", sim.nf_cpu_share(nfs[i]) * 100.0));
  }
  return cells;
}

}  // namespace

int main() {
  std::printf("Figure 1: scheduler motivation (3 NFs sharing one core, no "
              "NFVnice)\n");
  const Case cases[] = {
      {"Fig 1a: homogeneous costs (250 cyc), even load 5/5/5 Mpps",
       {250, 250, 250},
       {5, 5, 5}},
      {"Fig 1a: homogeneous costs (250 cyc), uneven load 6/6/3 Mpps",
       {250, 250, 250},
       {6, 6, 3}},
      {"Fig 1b: heterogeneous costs (500/250/50 cyc), even load 5/5/5",
       {500, 250, 50},
       {5, 5, 5}},
      {"Fig 1b: heterogeneous costs (500/250/50 cyc), uneven load 6/6/3",
       {500, 250, 50},
       {6, 6, 3}},
  };
  const Sched scheds[] = {kNormal, kBatch, kRr100};
  const double secs = seconds(0.25);

  ParallelRunner<std::vector<std::string>> runner;
  for (const Case& c : cases) {
    for (const Sched& sched : scheds) {
      runner.submit([&sched, &c, secs] {
        return run_one(sched, c.costs, c.rates_mpps, secs);
      });
    }
  }
  const auto rows = runner.run();

  std::size_t idx = 0;
  for (const Case& c : cases) {
    print_title(c.title);
    print_row({"Scheduler", "NF1 Mpps", "NF2 Mpps", "NF3 Mpps", "NF1 cpu%",
               "NF2 cpu%", "NF3 cpu%"});
    for (std::size_t s = 0; s < std::size(scheds); ++s) {
      print_row(rows[idx++]);
    }
  }
  return 0;
}
