// Extension study: wakeup coalescing vs context-switch overhead.
//
// §3.2's activation policy "considers the number of packets pending in
// [an NF's] queue". This sweep quantifies why: waking an NF for every
// packet under SCHED_NORMAL triggers a wakeup-preemption storm (Table 2's
// tens of thousands of involuntary switches); letting packets pool before
// the semaphore post trades a little latency for large switch savings.
// The age threshold bounds the added latency.

#include "harness.hpp"

using namespace bench;

namespace {

struct WakeResult {
  double egress_mpps;
  double switches_per_sec;
  double p50_latency_us;
};

WakeResult run(std::uint32_t min_pending, double secs) {
  PlatformConfig cfg = make_config(kModeNfvnice);
  cfg.manager.wake_min_pending = min_pending;
  cfg.manager.wake_age_threshold = 260'000;  // 100 us bound
  Simulation sim(cfg);
  const auto core_id = sim.add_core(SchedPolicy::kCfsNormal, 100.0);
  // Moderate (non-overload) load: NFs sleep and wake constantly — the
  // regime where wake policy dominates.
  std::vector<nfv::flow::ChainId> chains;
  std::vector<nfv::flow::NfId> nfs;
  const Cycles costs[3] = {500, 250, 50};
  for (int i = 0; i < 3; ++i) {
    nfs.push_back(sim.add_nf("nf" + std::to_string(i), core_id,
                             nfv::nf::CostModel::fixed(costs[i])));
    chains.push_back(sim.add_chain("c" + std::to_string(i), {nfs.back()}));
    sim.add_udp_flow(chains.back(), 1e6);
  }
  sim.run_for_seconds(secs);

  WakeResult out;
  std::uint64_t egress = 0, switches = 0;
  for (const auto chain : chains) egress += sim.chain_metrics(chain).egress_packets;
  for (const auto nf : nfs) {
    const auto m = sim.nf_metrics(nf);
    switches += m.voluntary_switches + m.involuntary_switches;
  }
  out.egress_mpps = mpps(egress, secs);
  out.switches_per_sec = static_cast<double>(switches) / secs;
  out.p50_latency_us = sim.clock().to_micros(static_cast<Cycles>(
      sim.manager().chain_latency(chains[0]).median()));
  return out;
}

}  // namespace

int main() {
  std::printf("Wakeup coalescing sweep (3 NFs 500/250/50 cyc, 1 Mpps each, "
              "NORMAL scheduler, age bound 100 us)\n");
  print_title("Throughput vs context switches vs latency");
  print_row({"min_pending", "egress Mpps", "cswitch/s", "p50 latency us"});
  const double secs = seconds(0.3);
  const std::uint32_t pendings[] = {1u, 4u, 16u, 64u, 256u};
  ParallelRunner<WakeResult> runner;
  for (const std::uint32_t pending : pendings) {
    runner.submit([pending, secs] { return run(pending, secs); });
  }
  const auto results = runner.run();
  std::size_t idx = 0;
  for (const std::uint32_t pending : pendings) {
    const auto& r = results[idx++];
    print_row({fmt("%.0f", pending), fmt("%.2f", r.egress_mpps),
               fmt_count(static_cast<std::uint64_t>(r.switches_per_sec)),
               fmt("%.0f", r.p50_latency_us)});
  }
  return 0;
}
