// Figure 10 (§4.3.1): variable per-packet processing cost.
//
// Same 3-NF single-core chain as Figure 7, but each packet independently
// costs 120, 270 or 550 cycles at each NF (9 total-cost variants across
// the chain). Expected shape: coarse-slice schedulers (BATCH, RR 100 ms)
// degrade badly under Default; CGroup-only helps less than in Fig. 7
// because the cost estimate is noisy; backpressure alone is the most
// resilient; NFVnice tracks the best case under every scheduler.

#include "harness.hpp"

using namespace bench;

int main() {
  std::printf("Figure 10: 3-NF chain with variable per-packet costs "
              "{120,270,550} (one core, 6 Mpps)\n");
  print_title("Chain throughput (Mpps)");
  print_row({"Scheduler", "Default", "CGroup", "OnlyBKPR", "NFVnice"});

  ChainSpec spec;
  spec.costs = {0, 0, 0};  // placeholders; variable_choices drives the cost
  spec.variable_choices = {120, 270, 550};
  spec.rate_pps = 6e6;
  spec.secs = seconds(0.25);

  const auto rows = run_grid(kAllScheds, kAllModes, spec);
  std::size_t idx = 0;
  for (const Sched& sched : kAllScheds) {
    std::vector<std::string> cells{sched.name};
    for (std::size_t m = 0; m < std::size(kAllModes); ++m) {
      cells.push_back(fmt("%.2f", rows[idx++].result.egress_mpps));
    }
    print_row(cells);
  }
  return 0;
}
