// Figures 8-9 and Table 6 (§4.2.2): two chains sharing NF1 and NF4.
//
//   chain-1: NF1(270) -> NF2(120) -> NF4(300)
//   chain-2: NF1(270) -> NF3(4500) -> NF4(300)
// Four cores, one NF per core; line rate split equally between the chains.
// Expected shape: Default lets chain-2 burn NF1's capacity on packets NF3
// will drop, halving chain-1's throughput; NFVnice throttles chain-2 at
// its entry (chain-selective, no head-of-line blocking), roughly doubling
// chain-1 while chain-2 holds its NF3 bottleneck rate (~0.58 Mpps).

#include "harness.hpp"

using namespace bench;

namespace {

struct TwoChainResult {
  double chain1_mpps, chain2_mpps;
  std::vector<double> svc_mpps;   // per NF1..NF4
  std::vector<double> drops_pps;  // per NF
  std::vector<double> cpu;        // per NF
};

TwoChainResult run(const Mode& mode, double secs) {
  Simulation sim(make_config(mode));
  std::vector<nfv::flow::NfId> nfs;
  const Cycles costs[4] = {270, 120, 4500, 300};
  for (int i = 0; i < 4; ++i) {
    const auto core_id = sim.add_core(SchedPolicy::kCfsNormal, 100.0);
    nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1), core_id,
                             nfv::nf::CostModel::fixed(costs[i])));
  }
  const auto chain1 = sim.add_chain("chain1", {nfs[0], nfs[1], nfs[3]});
  const auto chain2 = sim.add_chain("chain2", {nfs[0], nfs[2], nfs[3]});
  sim.add_udp_flow(chain1, 7.44e6);  // half of 64 B line rate each
  sim.add_udp_flow(chain2, 7.44e6);
  sim.run_for_seconds(secs);

  TwoChainResult out;
  out.chain1_mpps = mpps(sim.chain_metrics(chain1).egress_packets, secs);
  out.chain2_mpps = mpps(sim.chain_metrics(chain2).egress_packets, secs);
  for (int i = 0; i < 4; ++i) {
    const auto m = sim.nf_metrics(nfs[i]);
    out.svc_mpps.push_back(static_cast<double>(m.processed) / secs / 1e6);
    out.drops_pps.push_back(static_cast<double>(m.rx_full_drops) / secs);
    out.cpu.push_back(sim.nf_cpu_share(nfs[i]));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Table 6 / Figs 8-9: two chains sharing NF1 & NF4 across 4 "
              "cores, 7.44+7.44 Mpps offered\n");
  const double secs = seconds(0.3);
  ParallelRunner<TwoChainResult> runner;
  runner.submit([secs] { return run(kModeDefault, secs); });
  runner.submit([secs] { return run(kModeNfvnice, secs); });
  const auto results = runner.run();
  const TwoChainResult& dflt = results[0];
  const TwoChainResult& nice = results[1];

  print_title("Per-NF service rate, RX-drop rate, CPU");
  print_row({"", "Default svc", "drops/s", "cpu%", "NFVnice svc", "drops/s",
             "cpu%"});
  const char* names[4] = {"NF1 (270cyc,shared)", "NF2 (120cyc,c1)",
                          "NF3 (4500cyc,c2)", "NF4 (300cyc,shared)"};
  for (int i = 0; i < 4; ++i) {
    print_row({names[i], fmt("%.2fM", dflt.svc_mpps[i]),
               fmt_count(static_cast<std::uint64_t>(dflt.drops_pps[i])),
               fmt("%.0f%%", dflt.cpu[i] * 100.0),
               fmt("%.2fM", nice.svc_mpps[i]),
               fmt_count(static_cast<std::uint64_t>(nice.drops_pps[i])),
               fmt("%.0f%%", nice.cpu[i] * 100.0)});
  }

  print_title("Fig. 9: chain throughput (Mpps)");
  print_row({"", "Default", "NFVnice"});
  print_row({"chain-1 (fast)", fmt("%.2f", dflt.chain1_mpps),
             fmt("%.2f", nice.chain1_mpps)});
  print_row({"chain-2 (bottlenecked)", fmt("%.2f", dflt.chain2_mpps),
             fmt("%.2f", nice.chain2_mpps)});
  return 0;
}
