// Table 5 (§4.2.2): 3-NF chain with each NF pinned to its own core.
//
// Costs 550/2200/4500 cycles, 6 Mpps offered. With dedicated cores the
// scheduler has nothing to arbitrate; the benefit of NFVnice is pure
// backpressure: upstream NFs stop burning their cores on packets the
// 0.578 Mpps bottleneck (NF3) will discard. Expected shape: aggregate
// throughput unchanged (~0.58 Mpps); NF1/NF2 CPU collapses from 100% to a
// small fraction; wasted drops go from millions/s to ~0.

#include "harness.hpp"

using namespace bench;

int main() {
  std::printf("Table 5: chain of 3 NFs (550/2200/4500 cycles) on separate "
              "cores, 6 Mpps offered\n");
  print_title("Per-NF service rate / drop rate / CPU (Default vs NFVnice)");
  print_row({"", "svc Mpps", "drops/s", "cpu%", "svc Mpps", "drops/s",
             "cpu%"});
  print_row({"", "-- Default --", "", "", "-- NFVnice --", "", ""});

  ChainSpec spec;
  spec.costs = {550, 2200, 4500};
  spec.rate_pps = 6e6;
  spec.secs = seconds(0.3);
  spec.multicore = true;

  ParallelRunner<ChainResult> runner;
  runner.submit([&spec] { return run_chain(kModeDefault, kNormal, spec); });
  runner.submit([&spec] { return run_chain(kModeNfvnice, kNormal, spec); });
  const auto results = runner.run();
  const ChainResult& dflt = results[0];
  const ChainResult& nice = results[1];
  for (std::size_t i = 0; i < spec.costs.size(); ++i) {
    print_row({"NF" + std::to_string(i + 1) + " (" +
                   std::to_string(spec.costs[i]) + "cyc)",
               fmt("%.2f", dflt.svc_rate_mpps[i]),
               fmt_count(static_cast<std::uint64_t>(dflt.drop_rate_pps[i])),
               fmt("%.0f%%", dflt.cpu_share[i] * 100.0),
               fmt("%.2f", nice.svc_rate_mpps[i]),
               fmt_count(static_cast<std::uint64_t>(nice.drop_rate_pps[i])),
               fmt("%.0f%%", nice.cpu_share[i] * 100.0)});
  }
  print_row({"Aggregate egress", fmt("%.2f", dflt.egress_mpps), "", "",
             fmt("%.2f", nice.egress_mpps), "", ""});
  std::printf("\n(NF3 bottleneck capacity: 2.6e9/4500 = 0.578 Mpps)\n");
  return 0;
}
