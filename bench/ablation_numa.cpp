// Extension study: NUMA-aware chain placement.
//
// §1: NF scheduling "has to be cognizant of NUMA concerns". A chain whose
// consecutive NFs alternate sockets pays the remote-memory penalty on
// every hop; placing the whole chain on the NIC's socket pays it never.
// Sweeps the per-packet penalty and compares same-socket vs alternating
// placement for a 4-NF chain on 4 dedicated cores.

#include "harness.hpp"

using namespace bench;

namespace {

double run(bool alternate_sockets, Cycles penalty, double secs) {
  PlatformConfig cfg = make_config(kModeNfvnice);
  cfg.numa_penalty = penalty;
  Simulation sim(cfg);
  std::vector<nfv::flow::NfId> nfs;
  for (int i = 0; i < 4; ++i) {
    const int node = alternate_sockets ? i % 2 : 0;
    const auto core_id =
        sim.add_core(SchedPolicy::kCfsBatch, 100.0, node);
    nfs.push_back(sim.add_nf("nf" + std::to_string(i), core_id,
                             nfv::nf::CostModel::fixed(400)));
  }
  const auto chain = sim.add_chain("chain", nfs);
  sim.add_udp_flow(chain, 10e6);  // beyond per-NF capacity: NUMA tax visible
  sim.run_for_seconds(secs);
  return mpps(sim.chain_metrics(chain).egress_packets, secs);
}

}  // namespace

int main() {
  std::printf("NUMA placement sweep (4-NF chain of 400-cycle NFs, one core "
              "each, 10 Mpps offered; bottleneck NF capacity 2.6e9/(400+p))\n");
  print_title("Chain throughput (Mpps): same socket vs alternating sockets");
  print_row({"Penalty (cyc)", "same-socket", "alternating", "loss"});
  const double secs = seconds(0.2);
  const Cycles penalties[] = {0, 150, 300, 600, 1200};
  ParallelRunner<double> runner;
  for (const Cycles penalty : penalties) {
    runner.submit([penalty, secs] { return run(false, penalty, secs); });
    runner.submit([penalty, secs] { return run(true, penalty, secs); });
  }
  const auto results = runner.run();
  std::size_t idx = 0;
  for (const Cycles penalty : penalties) {
    const double local = results[idx];
    const double remote = results[idx + 1];
    idx += 2;
    print_row({fmt("%.0f", static_cast<double>(penalty)), fmt("%.2f", local),
               fmt("%.2f", remote),
               fmt("%.0f%%", (1.0 - remote / local) * 100.0)});
  }
  return 0;
}
