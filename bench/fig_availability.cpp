// Availability under faults (beyond the paper; DESIGN.md §11).
//
// Two chains share one core: a victim chain NF1(600)->NF2(300) and a
// bystander chain NF3(600) whose offered load alone oversubscribes the
// core. NF2 is crashed mid-run and restarted 50 ms later. The experiment
// measures, per scheduler and per mode:
//
//   * goodput retained — total egress rate during the fault window as a
//     fraction of the pre-fault rate. With backpressure the dead NF is
//     pinned Throttle, the victim chain is shed at the entry point and NF1
//     relinquishes the CPU, so the bystander absorbs the freed cycles.
//     Default instead lets NF1 keep burning cycles on packets that die at
//     the dead NF's ring (wasted work, Tables 3/5/6's metric).
//   * recovery time — injection until total system goodput is back to
//     >=95% of its pre-fault rate over a sliding 10 ms window. Under
//     backpressure the fault's blast radius is one chain: the bystander
//     absorbs the freed cycles within a watchdog reaction, so the system
//     recovers long before the NF itself restarts. Default keeps feeding
//     the expensive upstream NF, whose wasted cycles hold the bystander
//     down until the restart completes. Lifecycle downtime (detection ->
//     RUNNING) is reported separately; it is mode-independent by design.
//   * where the losses land — entry discards vs ring-full drops vs
//     in-flight crash drops.
//
// NFVnice should retain strictly more goodput and recover faster than
// Default on every scheduler; the fault_injection integration test pins
// that property.

#include "harness.hpp"

#include "fault/fault_plan.hpp"
#include "fault/lifecycle.hpp"

using namespace bench;

namespace {

constexpr double kFaultAt = 0.2;       ///< Crash instant (scaled seconds).
constexpr double kRestartAfter = 0.05; ///< Detection -> restart delay.
constexpr double kPreWindow = 0.1;     ///< Pre-fault measurement window.
constexpr double kFaultWindow = 0.15;  ///< Outage + recovery window.
constexpr double kTailWindow = 0.15;   ///< Post-recovery steady state.

struct AvailResult {
  double pre_mpps = 0.0;    ///< Total egress rate before the fault.
  double fault_mpps = 0.0;  ///< Total egress rate across the outage window.
  double retained = 0.0;    ///< fault_mpps / pre_mpps.
  double detect_us = 0.0;   ///< Injection -> watchdog detection.
  double recovery_ms = -1.0;  ///< Injection -> total rate back to >=95%.
  double downtime_ms = 0.0;   ///< Lifecycle: detection -> RUNNING.
  double victim_mpps = 0.0;     ///< Whole-run victim-chain egress rate.
  double bystander_mpps = 0.0;  ///< Whole-run bystander egress rate.
  double total_mpps = 0.0;
  std::uint64_t entry_drops = 0;    ///< Victim chain, selective early discard.
  std::uint64_t rx_full_drops = 0;  ///< At the crashed NF's ring.
  std::uint64_t crash_drops = 0;    ///< In-flight burst lost at the crash.
  std::uint64_t wasted = 0;         ///< NF1 work later dropped downstream.
  std::string report;
};

AvailResult run_availability(const Mode& mode, const Sched& sched,
                             bool with_report) {
  Simulation sim(make_config(mode));
  const auto core = sim.add_core(sched.policy, sched.rr_quantum_ms);
  const auto nf1 = sim.add_nf("NF1", core, nfv::nf::CostModel::fixed(600));
  const auto nf2 = sim.add_nf("NF2", core, nfv::nf::CostModel::fixed(300));
  const auto nf3 = sim.add_nf("NF3", core, nfv::nf::CostModel::fixed(600));
  const auto victim = sim.add_chain("victim", {nf1, nf2});
  const auto bystander = sim.add_chain("bystander", {nf3});
  sim.add_udp_flow(victim, 1.4e6);
  sim.add_udp_flow(bystander, 5e6);

  // The odd cycle offset keeps the crash off the watchdog's own tick so the
  // reported detection latency is a representative fraction of one period.
  nfv::fault::FaultPlan plan;
  plan.add_crash(nf2, sim.clock().from_seconds(seconds(kFaultAt)) + 12'347,
                 sim.clock().from_seconds(seconds(kRestartAfter)));
  sim.set_fault_plan(std::move(plan));

  auto total_egress = [&] {
    return sim.chain_metrics(victim).egress_packets +
           sim.chain_metrics(bystander).egress_packets;
  };

  // Warm up, then measure the pre-fault window [kFaultAt - kPreWindow,
  // kFaultAt).
  const double slice = seconds(0.001);
  sim.run_for_seconds(seconds(kFaultAt - kPreWindow));
  const std::uint64_t pre_start = total_egress();
  sim.run_for_seconds(seconds(kPreWindow));
  const std::uint64_t at_fault = total_egress();
  const double pre_rate =
      static_cast<double>(at_fault - pre_start) / seconds(kPreWindow);

  AvailResult out;
  out.pre_mpps = mpps(at_fault - pre_start, seconds(kPreWindow));

  // Step through the outage in 1 ms slices watching for recovery: total
  // system goodput back to >=95% of the pre-fault rate over the trailing
  // 10 ms (a sliding window smooths out BATCH's long timeslices).
  constexpr int kTrail = 10;
  const int slices = static_cast<int>(kFaultWindow / 0.001);
  std::vector<std::uint64_t> egr(slices + 1, at_fault);
  for (int i = 1; i <= slices; ++i) {
    sim.run_for_seconds(slice);
    egr[i] = total_egress();
    const double window_rate =
        static_cast<double>(egr[i] - egr[i < kTrail ? 0 : i - kTrail]) /
        (slice * (i < kTrail ? i : kTrail));
    if (out.recovery_ms < 0.0 && i >= kTrail &&
        window_rate >= 0.95 * pre_rate) {
      out.recovery_ms = (sim.now_seconds() - seconds(kFaultAt)) * 1e3;
    }
  }
  const std::uint64_t after_fault = total_egress();
  out.fault_mpps = mpps(after_fault - at_fault, seconds(kFaultWindow));
  out.retained = out.pre_mpps > 0.0 ? out.fault_mpps / out.pre_mpps : 0.0;

  sim.run_for_seconds(seconds(kTailWindow));

  const auto& ls = sim.nf_lifecycle_stats(nf2);
  out.detect_us = sim.clock().to_millis(ls.last_detect_latency) * 1e3;
  out.downtime_ms = sim.clock().to_millis(ls.downtime_cycles);
  const double elapsed = sim.now_seconds();
  out.victim_mpps =
      mpps(sim.chain_metrics(victim).egress_packets, elapsed);
  out.bystander_mpps =
      mpps(sim.chain_metrics(bystander).egress_packets, elapsed);
  out.total_mpps = out.victim_mpps + out.bystander_mpps;
  out.entry_drops = sim.chain_metrics(victim).entry_throttle_drops;
  out.rx_full_drops = sim.nf_metrics(nf2).rx_full_drops;
  out.crash_drops = sim.nf_metrics(nf2).crash_drops;
  out.wasted = sim.nf_metrics(nf1).downstream_drops;
  if (with_report) out.report = sim.report_json();
  return out;
}

constexpr Sched kScheds[] = {kNormal, kBatch, kRr1};

}  // namespace

int main(int argc, char** argv) {
  parse_shards(argc, argv);
  const bool json = json_mode(argc, argv);

  ParallelRunner<AvailResult> runner;
  for (const Sched& sched : kScheds) {
    for (const Mode& mode : kDefaultVsNfvnice) {
      runner.submit(
          [&mode, &sched, json] { return run_availability(mode, sched, json); });
    }
  }
  const auto results = runner.run();

  if (json) {
    std::ostringstream out;
    nfv::obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "fig_availability");
    double ratio_batch = 0.0;
    w.key("rows");
    w.begin_array();
    std::size_t idx = 0;
    for (const Sched& sched : kScheds) {
      double default_total = 0.0;
      for (const Mode& mode : kDefaultVsNfvnice) {
        const AvailResult& r = results[idx++];
        w.begin_object();
        w.field("mode", mode.name);
        w.field("scheduler", sched.name);
        w.field("pre_mpps", r.pre_mpps);
        w.field("fault_mpps", r.fault_mpps);
        w.field("goodput_retained", r.retained);
        w.field("detect_us", r.detect_us);
        w.field("downtime_ms", r.downtime_ms);
        w.field("recovery_ms", r.recovery_ms);
        w.field("victim_mpps", r.victim_mpps);
        w.field("bystander_mpps", r.bystander_mpps);
        w.field("total_mpps", r.total_mpps);
        w.field("entry_drops", r.entry_drops);
        w.field("rx_full_drops", r.rx_full_drops);
        w.field("crash_drops", r.crash_drops);
        w.field("wasted_by_nf1", r.wasted);
        if (!r.report.empty()) {
          w.key("report");
          w.raw(r.report);
        }
        w.end_object();
        if (mode.backpressure && default_total > 0.0 &&
            std::string(sched.name) == "BATCH") {
          ratio_batch = r.total_mpps / default_total;
        }
        if (!mode.backpressure) default_total = r.total_mpps;
      }
    }
    w.end_array();
    // Headline for tools/check_bench_baseline.py: NFVnice's total goodput
    // under faults relative to Default's, on the BATCH scheduler.
    w.field("availability_goodput_ratio", ratio_batch);
    w.end_object();
    std::printf("%s\n", out.str().c_str());
    return 0;
  }

  std::printf("Availability under faults (beyond the paper): NF2 of "
              "NF1->NF2 crashes at %.2fs, restarts %.0fms later;\n"
              "a saturating single-NF bystander chain shares the core. "
              "Goodput retained = egress rate in the\n"
              "fault window / pre-fault rate; recovery = injection -> total "
              "goodput back to 95%% of pre-fault (10 ms window).\n",
              seconds(kFaultAt), seconds(kRestartAfter) * 1e3);
  std::size_t idx = 0;
  for (const Sched& sched : kScheds) {
    print_title(std::string("Scheduler: ") + sched.name);
    print_row({"Mode", "pre Mpps", "fault Mpps", "retained", "detect us",
               "down ms", "recov ms", "entry drop", "ring drop", "wasted"});
    for (const Mode& mode : kDefaultVsNfvnice) {
      const AvailResult& r = results[idx++];
      print_row({mode.name, fmt("%.3f", r.pre_mpps), fmt("%.3f", r.fault_mpps),
                 fmt("%.3f", r.retained), fmt("%.1f", r.detect_us),
                 fmt("%.1f", r.downtime_ms),
                 r.recovery_ms < 0 ? std::string("n/a")
                                   : fmt("%.1f", r.recovery_ms),
                 fmt_count(r.entry_drops), fmt_count(r.rx_full_drops),
                 fmt_count(r.wasted)});
    }
  }
  return 0;
}
