// Figure 16 (§4.3.7): longer service chains.
//
// Chains of length 1..10, cycling through the Low/Med/High (120/270/550)
// NF types. SC: every NF on one shared core. MC: three cores, NFs placed
// round-robin. Expected shape: NFVnice >= Default everywhere, with the
// biggest single-core gains at lengths 3-6 (shrinking once >7 NFs fight
// for one core) and growing multi-core gains once cores are multiplexed
// (length > 4).

#include "harness.hpp"

using namespace bench;

namespace {

double run_len(const Mode& mode, int length, bool multicore, double secs) {
  Simulation sim(make_config(mode));
  const Cycles ladder[3] = {120, 270, 550};
  // §4.3.7 adds "one of the 3 NFs each time"; a fixed mixed sequence (not
  // a strict 3-cycle) keeps heterogeneous costs co-resident on each core —
  // a strict cycle over 3 round-robin cores would degenerately place
  // same-cost NFs together, hiding the scheduling problem entirely.
  const int kinds[10] = {0, 1, 2, 2, 0, 1, 1, 2, 0, 2};
  std::vector<std::size_t> cores;
  const int ncores = multicore ? 3 : 1;
  for (int i = 0; i < ncores; ++i) {
    cores.push_back(sim.add_core(SchedPolicy::kCfsBatch, 100.0));
  }
  std::vector<nfv::flow::NfId> nfs;
  for (int i = 0; i < length; ++i) {
    nfs.push_back(sim.add_nf("NF" + std::to_string(i + 1),
                             cores[i % cores.size()],
                             nfv::nf::CostModel::fixed(ladder[kinds[i]])));
  }
  const auto chain = sim.add_chain("chain", nfs);
  sim.add_udp_flow(chain, 6e6);
  sim.run_for_seconds(secs);
  return mpps(sim.chain_metrics(chain).egress_packets, secs);
}

}  // namespace

int main() {
  std::printf("Figure 16: chain lengths 1-10 (NF costs mixed from "
              "120/270/550), 6 Mpps offered, BATCH scheduler\n");
  print_title("Chain throughput (Mpps); SC = single core, MC = 3 cores");
  print_row({"Length", "SC Default", "SC NFVnice", "MC Default",
             "MC NFVnice"});
  const double secs = seconds(0.15);
  ParallelRunner<double> runner;
  for (int len = 1; len <= 10; ++len) {
    for (const bool multicore : {false, true}) {
      for (const Mode& mode : kDefaultVsNfvnice) {
        runner.submit([&mode, len, multicore, secs] {
          return run_len(mode, len, multicore, secs);
        });
      }
    }
  }
  const auto results = runner.run();
  std::size_t idx = 0;
  for (int len = 1; len <= 10; ++len) {
    print_row({fmt("%.0f", len), fmt("%.2f", results[idx]),
               fmt("%.2f", results[idx + 1]), fmt("%.2f", results[idx + 2]),
               fmt("%.2f", results[idx + 3])});
    idx += 4;
  }
  return 0;
}
