#!/usr/bin/env python3
"""Check intra-repo markdown links and heading anchors.

Scans every *.md file in the repository for inline links and validates:

  * relative file links point at files that exist in the tree;
  * anchor links (``#section`` or ``FILE.md#section``) resolve to a real
    heading, using GitHub's slugification rules (lowercase, punctuation
    stripped, spaces to hyphens, ``-N`` suffixes for duplicates).

External links (http/https/mailto) are ignored: this checker guards the
repo's internal cross-reference graph (README -> DESIGN.md section
anchors and friends), which goes stale silently whenever a heading is
renamed or a file moves.

Usage: python3 tools/check_markdown_links.py [repo-root]
Exits non-zero listing every broken link.
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_fenced_code(text: str) -> list[str]:
    """Return the file's lines with fenced code blocks blanked out."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, hyphenate."""
    # Inline code and links render as their text before slugification.
    heading = re.sub(r"`([^`]*)`", r"\1", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: pathlib.Path, cache: dict) -> set[str]:
    if path not in cache:
        seen: dict[str, int] = {}
        anchors = set()
        for line in strip_fenced_code(path.read_text(encoding="utf-8")):
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
        cache[path] = anchors
    return cache[path]


def check(root: pathlib.Path) -> tuple[list[str], int]:
    errors = []
    anchor_cache: dict = {}
    md_files = sorted(
        p for p in root.rglob("*.md")
        if not any(part.startswith(".") or part.startswith("build")
                   for part in p.relative_to(root).parts))
    for md in md_files:
        lines = strip_fenced_code(md.read_text(encoding="utf-8"))
        for line_no, line in enumerate(lines, 1):
            # Inline code spans can hold example links; skip them too.
            line = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                where = f"{md.relative_to(root)}:{line_no}"
                path_part, _, anchor = target.partition("#")
                dest = md if not path_part else (md.parent /
                                                 path_part).resolve()
                if path_part and not dest.exists():
                    errors.append(f"{where}: broken link '{target}' "
                                  f"(no such file)")
                    continue
                if anchor and dest.suffix == ".md" and dest.is_file():
                    if anchor not in anchors_of(dest, anchor_cache):
                        errors.append(f"{where}: broken anchor '{target}' "
                                      f"(no heading '#{anchor}')")
    return errors, len(md_files)


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    errors, count = check(root)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken markdown link(s)", file=sys.stderr)
        return 1
    print(f"markdown links OK ({count} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
