#!/usr/bin/env python3
"""Compare the performance benches against the committed baseline.

Runs the serial microbenches plus the availability bench and checks their
headline numbers against BENCH_baseline.json, failing when any metric
regresses by more than the tolerance (default 20%). All metrics are
higher-is-better:

  engine_events_per_sec          micro_engine's aggregate event throughput
                                 (heap backend, the default)
  engine_timer_events_per_sec    micro_engine's million-timer scenario (1M
                                 pending, schedule/cancel churn) on the
                                 timer-wheel backend (DESIGN.md §15)
  engine_timer_wheel_speedup     wheel vs heap on that same scenario.
                                 Gated against an absolute 3.0x floor — a
                                 ratio, so host speed cancels out
  flowmap_batch_lookups_per_sec  micro_flowmap: batched FlowMap hit
                                 lookups/sec at one million flows
  flowmap_lookup_speedup_vs_unordered
                                 micro_flowmap: batched FlowMap hits vs
                                 std::unordered_map on the same keys (the
                                 flow-state library's reason to exist; a
                                 ratio, so host speed cancels out)
  flowstore_install_expire_ops_per_sec
                                 micro_flowmap: FlowStore churn — 1M
                                 installs + 1M expiries
  substrate_sim_ms_per_wall_ms   simulated ms per wall-clock ms of the
                                 fig. 7 chain (micro_substrate's
                                 BM_EndToEndChainMillisecond)
  availability_goodput_ratio     fig_availability: NFVnice's total goodput
                                 under an NF crash relative to Default's
                                 (BATCH scheduler). Simulation output, so
                                 it is deterministic; the tolerance only
                                 has to absorb intentional model changes.
  io_fault_goodput_ratio         fig_io_fault: async+retry's aggregate
                                 goodput under storage faults relative to
                                 the sync baseline's (DESIGN.md §12).
                                 Also deterministic simulation output.
  shard_events_per_sec           micro_shard: event throughput of the
                                 sharded engine at sim_shards=4 on a
                                 4-lane cross-chain topology
  shard_speedup_4w               micro_shard: wall-clock speedup of
                                 sim_shards=4 over sim_shards=1. Gated
                                 against an absolute 3.0x floor, but only
                                 when the machine reports >= 4 hardware
                                 threads — on smaller hosts the row prints
                                 SKIP (the bench still enforces the
                                 byte-identity contract by exit code).

Two fig_slo metrics are lower-is-better (DESIGN.md §16) and checked
against a ceiling of base * (1 + tolerance) instead:

  slo_violation_ratio            fig_slo: SLO-violation-seconds of the
                                 feedback controller relative to rate-cost
                                 fairness (NORMAL scheduler). Additionally
                                 gated against an absolute 1.0 ceiling:
                                 the controller must strictly beat fair
                                 whatever the baseline recorded.
                                 Deterministic simulation output.
  slo_p99_us                     fig_slo: the controller arm's whole-run
                                 p99 chain-completion latency in
                                 microseconds. Deterministic simulation
                                 output.

The overload-control frontier (fig_overload, DESIGN.md §17) adds one of
each kind. Deterministic simulation output:

  overload_priority_goodput_ratio
                                 gold-class goodput with admission +
                                 push-aside relative to plain backpressure
                                 under ~2x overload. Higher is better, and
                                 additionally gated against an absolute
                                 floor: the combined arm must retain
                                 strictly more priority goodput than the
                                 baseline whatever the pinned value.
  overload_gold_p99_ratio        gold-class whole-run p99, combined over
                                 baseline. Lower is better (ceiling).

Regenerate the baseline (e.g. on a hardware change or an accepted perf
shift) with --update. CI machines are noisy, hence the wide tolerance;
the baseline was captured on an idle box, so a genuine 20% regression is
well outside run-to-run jitter of these serial benches.

Usage:
  tools/check_bench_baseline.py --build-dir build-release [--update]
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"


def run_micro_engine(binary: pathlib.Path) -> dict:
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    data = json.loads(out)
    return {
        "engine_events_per_sec": float(data["events_per_sec"]),
        "engine_timer_events_per_sec":
            float(data["timer_events_per_sec_wheel"]),
        "engine_timer_wheel_speedup": float(data["timer_wheel_speedup"]),
    }


def run_fig_availability(binary: pathlib.Path) -> float:
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    return float(json.loads(out)["availability_goodput_ratio"])


def run_fig_io_fault(binary: pathlib.Path) -> float:
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    return float(json.loads(out)["io_fault_goodput_ratio"])


def run_fig_slo(binary: pathlib.Path) -> dict:
    # The bench exits non-zero when the SLO arm's report is not
    # byte-identical across a rerun or across sim_shards=1 vs 4, so
    # check=True doubles as the determinism gate (micro_shard precedent).
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    data = json.loads(out)
    return {
        "slo_violation_ratio": float(data["slo_violation_ratio"]),
        "slo_p99_us": float(data["slo_p99_us"]),
    }


def run_fig_overload(binary: pathlib.Path) -> dict:
    # Exits non-zero when the combined arm's report is not byte-identical
    # across a rerun or across sim_shards=1 vs 4; check=True doubles as
    # the determinism gate (micro_shard precedent).
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    data = json.loads(out)
    return {
        "overload_priority_goodput_ratio":
            float(data["overload_priority_goodput_ratio"]),
        "overload_gold_p99_ratio": float(data["overload_gold_p99_ratio"]),
    }


def run_micro_flowmap(binary: pathlib.Path) -> dict:
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    data = json.loads(out)
    return {
        "flowmap_batch_lookups_per_sec":
            float(data["flowmap_batch_lookups_per_sec"]),
        "flowmap_lookup_speedup_vs_unordered":
            float(data["flowmap_lookup_speedup_vs_unordered"]),
        "flowstore_install_expire_ops_per_sec":
            float(data["flowstore_install_expire_ops_per_sec"]),
    }


def run_micro_shard(binary: pathlib.Path) -> dict:
    # The bench exits non-zero when the shards=1 vs shards=4 reports are
    # not byte-identical, so check=True doubles as the determinism gate.
    out = subprocess.run([str(binary), "--json"], check=True,
                         capture_output=True, text=True).stdout
    data = json.loads(out)
    return {
        "shard_speedup_4w": float(data["shard_speedup_4w"]),
        "shard_events_per_sec": float(data["shard_events_per_sec"]),
        "host_cores": int(data["host_cores"]),
    }


# Parallel speedup cannot materialize without cores to run on: the
# shard_speedup_4w gate is absolute (3x at 4 workers) and applies only on
# hosts with at least this many hardware threads.
SHARD_SPEEDUP_FLOOR = 3.0
SHARD_SPEEDUP_MIN_CORES = 4

# The timer wheel's reason to exist (DESIGN.md §15): the million-timer
# scenario must run at least this many times faster than the heap. A
# single-threaded ratio, so no core-count gate.
TIMER_WHEEL_SPEEDUP_FLOOR = 3.0

# Metrics where smaller is better: checked against a ceiling instead of a
# floor. slo_violation_ratio additionally has an absolute ceiling — the
# feedback controller must produce strictly fewer violation-seconds than
# rate-cost fairness no matter what the baseline recorded.
LOWER_IS_BETTER = {"slo_violation_ratio", "slo_p99_us",
                   "overload_gold_p99_ratio"}
SLO_VIOLATION_RATIO_CEILING = 1.0

# Absolute floor for the overload-control frontier (DESIGN.md §17): with
# admission + push-aside on, the priority class must retain strictly more
# goodput than plain backpressure under ~2x overload, whatever ratio the
# baseline happened to pin.
OVERLOAD_PRIORITY_GOODPUT_FLOOR = 1.02


def run_micro_substrate(binary: pathlib.Path, repetitions: int) -> float:
    out = subprocess.run(
        [
            str(binary),
            "--benchmark_filter=^BM_EndToEndChainMillisecond$",
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
            "--benchmark_format=json",
        ],
        check=True, capture_output=True, text=True).stdout
    for bench in json.loads(out)["benchmarks"]:
        if bench.get("aggregate_name") == "mean":
            # real_time is ms of wall per iteration; one iteration
            # simulates one millisecond.
            return 1.0 / float(bench["real_time"])
    raise RuntimeError("no mean aggregate in micro_substrate output")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", type=pathlib.Path,
                        default=REPO_ROOT / "build-release",
                        help="CMake build dir containing bench/ binaries")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline instead of checking")
    args = parser.parse_args()

    bench_dir = args.build_dir / "bench"
    current = {
        "substrate_sim_ms_per_wall_ms":
            run_micro_substrate(bench_dir / "micro_substrate",
                                args.repetitions),
        "availability_goodput_ratio":
            run_fig_availability(bench_dir / "fig_availability"),
        "io_fault_goodput_ratio":
            run_fig_io_fault(bench_dir / "fig_io_fault"),
    }
    current.update(run_micro_engine(bench_dir / "micro_engine"))
    current.update(run_micro_flowmap(bench_dir / "micro_flowmap"))
    current.update(run_fig_slo(bench_dir / "fig_slo"))
    current.update(run_fig_overload(bench_dir / "fig_overload"))
    shard = run_micro_shard(bench_dir / "micro_shard")
    host_cores = shard.pop("host_cores")
    current.update(shard)

    if args.update:
        args.baseline.write_text(
            json.dumps({"metrics": current}, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        for name, value in sorted(current.items()):
            print(f"  {name}: {value:.4g}")
        return 0

    baseline = json.loads(args.baseline.read_text())["metrics"]
    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"{'SKIP':>10}  {name}: no longer produced by the benches "
                  "(baseline entry is stale; regenerate with --update)")
            continue
        now = current[name]
        if name in LOWER_IS_BETTER:
            ceiling = base * (1.0 + args.tolerance)
            if name == "slo_violation_ratio":
                ceiling = min(ceiling, SLO_VIOLATION_RATIO_CEILING)
            verdict = "OK" if now <= ceiling else "REGRESSION"
            failed |= now > ceiling
            print(f"{verdict:>10}  {name}: {now:.4g} "
                  f"(baseline {base:.4g}, ceiling {ceiling:.4g})")
            continue
        if name == "shard_speedup_4w":
            # Absolute gate, host-core aware: see the docstring.
            if host_cores < SHARD_SPEEDUP_MIN_CORES:
                print(f"{'SKIP':>10}  {name}: {now:.4g} "
                      f"(host has {host_cores} hardware threads, "
                      f"gate needs >= {SHARD_SPEEDUP_MIN_CORES})")
                continue
            floor = SHARD_SPEEDUP_FLOOR * (1.0 - args.tolerance)
        elif name == "engine_timer_wheel_speedup":
            # Absolute gate: the wheel must beat the heap by the floor
            # regardless of what ratio the baseline happened to record.
            floor = TIMER_WHEEL_SPEEDUP_FLOOR * (1.0 - args.tolerance)
        elif name == "overload_priority_goodput_ratio":
            # Relative floor like every higher-is-better metric, but never
            # below the absolute combined-beats-baseline gate.
            floor = max(base * (1.0 - args.tolerance),
                        OVERLOAD_PRIORITY_GOODPUT_FLOOR)
        else:
            floor = base * (1.0 - args.tolerance)
        verdict = "OK" if now >= floor else "REGRESSION"
        failed |= now < floor
        print(f"{verdict:>10}  {name}: {now:.4g} "
              f"(baseline {base:.4g}, floor {floor:.4g})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
