#include "sched/cgroup.hpp"

#include <algorithm>

namespace nfv::sched {

Cycles CGroupController::set_shares(Task& task, std::uint32_t shares) {
  shares = std::clamp(shares, kMinShares, kMaxShares);
  if (task.weight() == shares) {
    ++skipped_;
    return 0;
  }
  task.set_weight(shares);
  ++writes_;
  return write_cost_;
}

}  // namespace nfv::sched
