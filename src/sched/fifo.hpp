// SCHED_FIFO: run-to-completion real-time class.
//
// The sibling of SCHED_RR without a timeslice: a task keeps the CPU until
// it blocks or yields; same-priority tasks never preempt each other. Not
// evaluated in the paper, but the natural worst case for its "malicious
// NFs (those that fail to yield)" argument — a hog under FIFO starves the
// core outright, which NFVnice's relinquish flags cannot fix (the flag is
// only honoured by cooperating libnf loops).
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace nfv::sched {

class FifoScheduler : public Scheduler {
 public:
  FifoScheduler() = default;

  void enqueue(Task* task, bool /*is_wakeup*/) override {
    queue_.push_back(task);
  }
  void remove(Task* task) override;
  Task* pick_next() override;
  [[nodiscard]] Cycles timeslice(const Task* /*task*/) const override {
    return kNoSlice;
  }
  [[nodiscard]] bool should_resched_on_tick(const Task* /*current*/,
                                            Cycles /*ran*/) const override {
    return false;  // run to completion
  }
  [[nodiscard]] Cycles tick_preempt_slack(const Task* /*current*/,
                                          Cycles /*ran*/) const override {
    return kUnboundedSlack;  // ticks never reschedule FIFO
  }
  [[nodiscard]] bool should_preempt_on_wake(const Task* /*woken*/,
                                            const Task* /*current*/,
                                            Cycles /*ran*/) const override {
    return false;  // equal priority: no preemption
  }
  void on_run_end(Task* /*task*/, Cycles /*ran*/) override {}
  [[nodiscard]] std::size_t runnable_count() const override {
    return queue_.size();
  }
  [[nodiscard]] const char* name() const override { return "SCHED_FIFO"; }

 private:
  /// Sentinel "slice" (diagnostic only; ticks never reschedule FIFO).
  static constexpr Cycles kNoSlice = Cycles{1} << 60;
  std::deque<Task*> queue_;
};

}  // namespace nfv::sched
