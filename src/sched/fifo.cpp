#include "sched/fifo.hpp"

#include <algorithm>

namespace nfv::sched {

void FifoScheduler::remove(Task* task) {
  queue_.erase(std::remove(queue_.begin(), queue_.end(), task), queue_.end());
}

Task* FifoScheduler::pick_next() {
  if (queue_.empty()) return nullptr;
  Task* task = queue_.front();
  queue_.pop_front();
  return task;
}

}  // namespace nfv::sched
