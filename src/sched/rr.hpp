// SCHED_RR: fixed-quantum round robin (real-time class).
//
// §2.2: "The Round Robin scheduler simply cycles through processes with a
// 100 msec time quantum, but does not attempt to offer any concept of
// fairness." The paper also evaluates RR with a 1 ms slice (§4). Tasks run
// until they block/yield or the quantum expires, then go to the tail.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace nfv::sched {

class RrScheduler : public Scheduler {
 public:
  explicit RrScheduler(SchedParams params) : params_(params) {}

  void enqueue(Task* task, bool is_wakeup) override;
  void remove(Task* task) override;
  Task* pick_next() override;
  [[nodiscard]] Cycles timeslice(const Task* task) const override;
  [[nodiscard]] bool should_resched_on_tick(const Task* current,
                                            Cycles ran_so_far) const override;
  [[nodiscard]] Cycles tick_preempt_slack(const Task* current,
                                          Cycles ran_so_far) const override;
  [[nodiscard]] bool should_preempt_on_wake(const Task* woken,
                                            const Task* current,
                                            Cycles ran_so_far) const override;
  void on_run_end(Task* task, Cycles ran) override;
  [[nodiscard]] std::size_t runnable_count() const override {
    return queue_.size();
  }
  [[nodiscard]] const char* name() const override { return "SCHED_RR"; }

 private:
  SchedParams params_;
  std::deque<Task*> queue_;
};

}  // namespace nfv::sched
