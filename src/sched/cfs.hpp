// Completely Fair Scheduler (CFS), Normal and Batch variants.
//
// Reimplements the policy logic described in §2.2 of the paper and the
// kernel's sched-design-CFS document: per-task monotonically increasing
// virtual runtime weighted by cgroup shares, a time-ordered runqueue (the
// kernel uses a red-black tree; std::set over (vruntime, id) gives the same
// ordering and complexity), slices carved from a latency period
// proportional to weight, sleeper re-placement on wakeup, and wakeup
// preemption. SCHED_BATCH differs exactly as the kernel's does: wakeup
// preemption is disabled, so batch tasks run out their (longer effective)
// slices with far fewer involuntary context switches — the property
// NFVnice exploits (§3.2 "CPU Scheduler").
#pragma once

#include <set>

#include "sched/scheduler.hpp"

namespace nfv::sched {

class CfsScheduler : public Scheduler {
 public:
  /// `batch` selects SCHED_BATCH semantics (no wakeup preemption).
  CfsScheduler(SchedParams params, bool batch);

  void enqueue(Task* task, bool is_wakeup) override;
  void remove(Task* task) override;
  Task* pick_next() override;
  [[nodiscard]] Cycles timeslice(const Task* task) const override;
  [[nodiscard]] bool should_resched_on_tick(const Task* current,
                                            Cycles ran_so_far) const override;
  [[nodiscard]] Cycles tick_preempt_slack(const Task* current,
                                          Cycles ran_so_far) const override;
  [[nodiscard]] bool should_preempt_on_wake(const Task* woken,
                                            const Task* current,
                                            Cycles ran_so_far) const override;
  void on_run_end(Task* task, Cycles ran) override;
  [[nodiscard]] std::size_t runnable_count() const override {
    return queue_.size();
  }
  [[nodiscard]] const char* name() const override {
    return batch_ ? "SCHED_BATCH" : "SCHED_NORMAL";
  }

  [[nodiscard]] double min_vruntime() const { return min_vruntime_; }

  /// Introspection for tests and invariant checks: is the task queued, and
  /// is the tree ordering self-consistent with the tasks' vruntimes?
  [[nodiscard]] bool contains(const Task* task) const {
    for (const Task* t : queue_) {
      if (t == task) return true;
    }
    return false;
  }
  [[nodiscard]] const Task* leftmost() const {
    return queue_.empty() ? nullptr : *queue_.begin();
  }

 private:
  struct ByVruntime {
    bool operator()(const Task* a, const Task* b) const {
      if (a->vruntime() != b->vruntime()) return a->vruntime() < b->vruntime();
      if (a->id() != b->id()) return a->id() < b->id();
      // Core-assigned ids are unique; the address fallback only matters for
      // unbound tasks (unit tests) and keeps distinct tasks distinct.
      return a < b;
    }
  };

  /// Virtual-time delta for `ran` real cycles at `weight`:
  /// delta_v = ran * kDefaultWeight / weight (kernel calc_delta_fair).
  [[nodiscard]] static double vdelta(Cycles ran, std::uint32_t weight) {
    return static_cast<double>(ran) * static_cast<double>(kDefaultWeight) /
           static_cast<double>(weight);
  }

  void update_min_vruntime();

  /// Sum of queued tasks' weights, computed on demand. NFVnice rewrites
  /// cgroup weights of *queued* tasks every 10 ms; a cached sum would go
  /// stale (enqueue at the old weight, dequeue at the new one) and a
  /// wrapped unsigned drift once inflated a task's slice 30-fold.
  [[nodiscard]] std::uint64_t queued_weight() const {
    std::uint64_t total = 0;
    for (const Task* t : queue_) total += t->weight();
    return total;
  }

  SchedParams params_;
  bool batch_;
  std::set<Task*, ByVruntime> queue_;
  double min_vruntime_ = 0.0;
};

}  // namespace nfv::sched
