// Scheduling-policy interface.
//
// NFVnice deliberately does NOT replace the kernel scheduler; it tunes stock
// policies from user space (§3.2). We therefore implement the three policies
// the paper evaluates behind one interface the Core drives: CFS Normal,
// CFS Batch, and Round-Robin with a configurable quantum.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "sched/task.hpp"

namespace nfv::sched {

/// Sentinel returned by Scheduler::tick_preempt_slack when no future tick
/// can preempt the current task (FIFO, or an otherwise idle runqueue).
inline constexpr Cycles kUnboundedSlack = Cycles{1} << 62;

/// Tunables mirroring the kernel knobs the paper's testbed ran with
/// (Ubuntu lowlatency 3.19 kernel). All values are in cycles; use
/// SchedParams::defaults() to build them from a CpuClock.
struct SchedParams {
  Cycles sched_latency = 0;       ///< CFS targeted preemption latency (6 ms).
  Cycles min_granularity = 0;     ///< CFS minimum slice (0.75 ms).
  Cycles wakeup_granularity = 0;  ///< CFS wakeup preemption granularity (1 ms).
  Cycles rr_quantum = 0;          ///< RR timeslice (paper: 1 ms and 100 ms).

  static SchedParams defaults(const CpuClock& clock) {
    SchedParams p;
    p.sched_latency = clock.from_millis(6.0);
    p.min_granularity = clock.from_millis(0.75);
    // The paper's testbed runs Ubuntu's *lowlatency* kernel, which trades
    // context switches for responsiveness; a tight wakeup granularity is
    // what produces Table 2's tens-of-thousands of involuntary switches
    // under NORMAL while BATCH (no wakeup preemption) stays in the
    // hundreds.
    p.wakeup_granularity = clock.from_millis(0.1);
    p.rr_quantum = clock.from_millis(100.0);
    return p;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Make `task` runnable. `is_wakeup` distinguishes a blocked->runnable
  /// transition (vruntime re-placement applies) from a preempted task being
  /// put back (vruntime already current).
  virtual void enqueue(Task* task, bool is_wakeup) = 0;

  /// Remove a task that is leaving the runnable set without running (rare;
  /// used when tearing an experiment down).
  virtual void remove(Task* task) = 0;

  /// Pop the next task to run; nullptr if none.
  virtual Task* pick_next() = 0;

  /// Ideal timeslice for `task` given current contention (diagnostic; the
  /// Core preempts via should_resched_on_tick, as the kernel's periodic
  /// tick does).
  [[nodiscard]] virtual Cycles timeslice(const Task* task) const = 0;

  /// Periodic-tick preemption check (kernel: task_tick_fair ->
  /// check_preempt_tick / task_tick_rt). `ran_so_far` is CPU time consumed
  /// since this dispatch; `current`'s vruntime is already up to date.
  [[nodiscard]] virtual bool should_resched_on_tick(const Task* current,
                                                    Cycles ran_so_far) const = 0;

  /// Lower bound on how much longer `current` can run before a periodic
  /// tick's should_resched_on_tick could possibly return true, given it has
  /// already run `ran_so_far` cycles. Used by Core::preemption_horizon() to
  /// cap run-to-completion bursts so the next tick-driven preemption still
  /// lands at the exact cycle it would have without batching. Must be
  /// conservative (never larger than the true slack); kUnboundedSlack means
  /// ticks can never reschedule this task. The default is maximally
  /// conservative: no slack, i.e. the very next tick might preempt.
  [[nodiscard]] virtual Cycles tick_preempt_slack(const Task* /*current*/,
                                                  Cycles /*ran_so_far*/) const {
    return 0;
  }

  /// Should `woken` preempt `current`, which has run `ran_so_far` cycles of
  /// its current stint?
  [[nodiscard]] virtual bool should_preempt_on_wake(const Task* woken,
                                                    const Task* current,
                                                    Cycles ran_so_far) const = 0;

  /// Account `ran` cycles of CPU to `task` at the end of a running stint.
  virtual void on_run_end(Task* task, Cycles ran) = 0;

  [[nodiscard]] virtual std::size_t runnable_count() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace nfv::sched
