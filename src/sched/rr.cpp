#include "sched/rr.hpp"

#include <algorithm>

namespace nfv::sched {

void RrScheduler::enqueue(Task* task, bool /*is_wakeup*/) {
  queue_.push_back(task);
}

void RrScheduler::remove(Task* task) {
  queue_.erase(std::remove(queue_.begin(), queue_.end(), task), queue_.end());
}

Task* RrScheduler::pick_next() {
  if (queue_.empty()) return nullptr;
  Task* task = queue_.front();
  queue_.pop_front();
  return task;
}

Cycles RrScheduler::timeslice(const Task* /*task*/) const {
  return params_.rr_quantum;
}

bool RrScheduler::should_resched_on_tick(const Task* /*current*/,
                                         Cycles ran_so_far) const {
  // task_tick_rt(): decrement the slice each tick; requeue when used up
  // (and only if someone else is waiting — the Core checks queue state).
  return ran_so_far >= params_.rr_quantum;
}

Cycles RrScheduler::tick_preempt_slack(const Task* /*current*/,
                                       Cycles ran_so_far) const {
  // Exact for RR: the quantum is the only trigger should_resched_on_tick
  // consults, so the remaining slice is a tight bound.
  return std::max<Cycles>(0, params_.rr_quantum - ran_so_far);
}

bool RrScheduler::should_preempt_on_wake(const Task* /*woken*/,
                                         const Task* /*current*/,
                                         Cycles /*ran_so_far*/) const {
  // Same-priority SCHED_RR tasks never preempt each other on wakeup.
  return false;
}

void RrScheduler::on_run_end(Task* /*task*/, Cycles /*ran*/) {}

}  // namespace nfv::sched
