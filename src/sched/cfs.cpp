#include "sched/cfs.hpp"

#include <algorithm>
#include <cassert>

namespace nfv::sched {

CfsScheduler::CfsScheduler(SchedParams params, bool batch)
    : params_(params), batch_(batch) {}

void CfsScheduler::enqueue(Task* task, bool is_wakeup) {
  if (is_wakeup) {
    // place_entity(): a waking sleeper is placed slightly behind
    // min_vruntime (GENTLE_FAIR_SLEEPERS halves the latency credit) so it
    // gets service soon but cannot monopolise the CPU after a long sleep.
    const double thresh = static_cast<double>(params_.sched_latency) / 2.0;
    task->set_vruntime(std::max(task->vruntime(), min_vruntime_ - thresh));
  }
  const bool inserted = queue_.insert(task).second;
  assert(inserted && "task already queued");
  (void)inserted;
  update_min_vruntime();
}

void CfsScheduler::remove(Task* task) {
  if (queue_.erase(task) > 0) {
    update_min_vruntime();
  }
}

Task* CfsScheduler::pick_next() {
  if (queue_.empty()) return nullptr;
  Task* task = *queue_.begin();
  queue_.erase(queue_.begin());
  return task;
}

Cycles CfsScheduler::timeslice(const Task* task) const {
  // __sched_period(): latency target stretched when more tasks than fit at
  // min_granularity each. The running task is no longer in queue_, so count
  // and weigh it explicitly.
  const std::size_t nr = queue_.size() + 1;
  const Cycles period =
      std::max(params_.sched_latency,
               static_cast<Cycles>(nr) * params_.min_granularity);
  const double total_weight =
      static_cast<double>(queued_weight() + task->weight());
  const auto slice = static_cast<Cycles>(
      static_cast<double>(period) * static_cast<double>(task->weight()) /
      total_weight);
  return std::max(slice, params_.min_granularity);
}

bool CfsScheduler::should_resched_on_tick(const Task* current,
                                          Cycles ran_so_far) const {
  // check_preempt_tick(): the kernel's periodic tick enforces the fair
  // slice. The vruntime-vs-leftmost clause is what lets a frequently
  // sleeping task (low vruntime) displace a CPU hog within one slice even
  // under SCHED_BATCH — without it, batch workloads starve interactive
  // ones for whole latency periods.
  if (queue_.empty()) return false;
  const Cycles ideal = timeslice(current);
  if (ran_so_far >= ideal) return true;
  if (ran_so_far < params_.min_granularity) return false;
  const double delta = current->vruntime() - (*queue_.begin())->vruntime();
  // Kernel quirk preserved: virtual-time delta compared against the
  // wall-clock ideal slice.
  return delta > static_cast<double>(ideal);
}

Cycles CfsScheduler::tick_preempt_slack(const Task* /*current*/,
                                        Cycles ran_so_far) const {
  // Conservative under-estimate of should_resched_on_tick's trigger time.
  // Below min_granularity the tick never reschedules, so that much is
  // always safe. Past it, the vruntime-vs-leftmost clause can fire on any
  // tick (the leftmost task's vruntime is outside our control), so claim
  // no further slack rather than model it.
  if (queue_.empty()) return kUnboundedSlack;
  return std::max<Cycles>(0, params_.min_granularity - ran_so_far);
}

bool CfsScheduler::should_preempt_on_wake(const Task* woken,
                                          const Task* current,
                                          Cycles ran_so_far) const {
  if (batch_) return false;  // SCHED_BATCH: no wakeup preemption.
  if (current == nullptr) return false;
  // check_preempt_wakeup(): preempt when the waking task's vruntime deficit
  // exceeds the wakeup granularity converted to the waker's virtual time.
  const double curr_v =
      current->vruntime() + vdelta(ran_so_far, current->weight());
  const double gran = vdelta(params_.wakeup_granularity, woken->weight());
  return curr_v - woken->vruntime() > gran;
}

void CfsScheduler::on_run_end(Task* task, Cycles ran) {
  task->add_vruntime(vdelta(ran, task->weight()));
}

void CfsScheduler::update_min_vruntime() {
  if (!queue_.empty()) {
    min_vruntime_ = std::max(min_vruntime_, (*queue_.begin())->vruntime());
  }
}

}  // namespace nfv::sched
