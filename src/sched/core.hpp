// A simulated CPU core hosting one scheduling policy and many tasks.
//
// The Core is the meeting point between the event engine and the scheduler
// policy. Preemption is driven the way the kernel drives it: a periodic
// scheduler tick (CONFIG_HZ=1000 on the paper's lowlatency 3.19 kernel, so
// 1 ms) asks the policy whether the running task must be rescheduled
// (check_preempt_tick for CFS, slice decrement for RR), and wakeups run the
// policy's wakeup-preemption test (SCHED_NORMAL only). The Core charges
// context-switch overhead, and keeps the per-task accounting the paper's
// tables report. NF Manager threads (Rx/Tx/Wakeup/Monitor) run on dedicated
// cores in the paper and are therefore modelled as plain event handlers,
// not Tasks; only NFs (and any other contending processes) are scheduled
// here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/observability.hpp"
#include "sched/scheduler.hpp"
#include "sched/task.hpp"
#include "sim/engine.hpp"

namespace nfv::sched {

struct CoreConfig {
  /// Direct cost of a context switch (register save/restore, runqueue
  /// manipulation, TLB/cache disturbance amortised). ~1.5 us on the
  /// paper's Xeon E5-2697v3 => ~3900 cycles at 2.6 GHz.
  Cycles context_switch_cost = 3900;
  /// Scheduler tick period; 1 ms = CONFIG_HZ=1000 (lowlatency kernel).
  Cycles tick_period = 2'600'000;
  /// NUMA node this core belongs to (§1: NF scheduling "has to be
  /// cognizant of NUMA concerns"). The paper's testbed is dual-socket;
  /// packets handed between NFs on different nodes pay a remote-memory
  /// penalty per packet (see PlatformConfig::numa_penalty).
  int numa_node = 0;
};

class Core {
 public:
  Core(sim::Engine& engine, std::unique_ptr<Scheduler> scheduler,
       CoreConfig config = {}, std::string name = "core");
  ~Core();

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Register a task on this core. Tasks start Blocked; call wake() to make
  /// them runnable. The task must outlive the core's use of it.
  void add_task(Task* task);

  /// Semaphore-notify semantics: transition Blocked -> Runnable; no-op if
  /// already runnable or running. May preempt the current task if the
  /// policy's wakeup-preemption test passes.
  void wake(Task* task);

  /// Called by the *currently running* task to give up the CPU.
  /// `will_block` => the task sleeps on its semaphore (Blocked) until the
  /// next wake(); otherwise it stays runnable and is requeued.
  void yield_current(Task* task, bool will_block);

  /// Forcibly take a task off the CPU or runqueue and mark it Blocked —
  /// the kernel's view of a process that died or was killed. Unlike
  /// yield_current this may target any task: Running (preempted, runtime
  /// charged, core handed to the next runnable task), Runnable (removed
  /// from the runqueue) or already Blocked (no-op). The fault subsystem
  /// uses it to model NF crashes (DESIGN.md §11).
  void force_block(Task* task);

  [[nodiscard]] Task* current() const { return current_; }
  [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Cycles spent running tasks (excludes switch overhead); live.
  [[nodiscard]] Cycles busy_cycles() const;
  /// Cycles spent on context-switch overhead.
  [[nodiscard]] Cycles switch_overhead_cycles() const { return switch_overhead_; }
  /// Busy fraction over (window_start, now] given a busy_cycles() snapshot
  /// taken at window_start.
  [[nodiscard]] double utilization(Cycles window_start, Cycles busy_snapshot) const;

  [[nodiscard]] const std::vector<Task*>& tasks() const { return tasks_; }
  [[nodiscard]] int numa_node() const { return config_.numa_node; }

  /// Earliest absolute time at which the running task could be preempted by
  /// the periodic tick, given the runqueue right now. Run-to-completion
  /// bursts use this to size themselves so the next tick-driven preemption
  /// still lands at the exact cycle it would have hit without batching.
  /// Ticks only fire on the tick grid, so the horizon is the first tick at
  /// or after now + the policy's tick_preempt_slack; sched::kUnboundedSlack
  /// when nothing can preempt (empty runqueue, FIFO). Wakeup preemption is
  /// deliberately not folded in: wakeups arrive as events, and the burst
  /// split path (Task::on_preempt) already restores exactness for them.
  [[nodiscard]] Cycles preemption_horizon() const;

  /// Attach the observability context: registers this core's scheduler
  /// counters under the {"core", name} scope and emits sched trace events
  /// (ctx_switch / wakeup / yield / preempt) on trace `lane` whenever a
  /// recorder is attached. Null-safe; may be called before or after tasks
  /// are added.
  void set_observability(obs::Observability* obs, std::uint32_t lane);

 private:
  void schedule_dispatch();
  void start_running(Task* task);
  void on_tick();
  void preempt_current();
  void account_running(bool stint_ends);

  sim::Engine& engine_;
  std::unique_ptr<Scheduler> scheduler_;
  CoreConfig config_;
  std::string name_;

  std::vector<Task*> tasks_;
  std::uint64_t next_task_id_ = 1;

  Task* current_ = nullptr;
  Task* last_ran_ = nullptr;
  Cycles stint_start_ = 0;    ///< Dispatch time of the current stint.
  Cycles next_tick_time_ = 0; ///< When the next periodic tick fires.
  Cycles account_start_ = 0;  ///< Last point runtime/vruntime were charged.
  sim::EventId tick_event_ = sim::kInvalidEventId;
  /// Pending start_running() while the context-switch cost elapses. The
  /// next task is already `current_` during this window (as in the kernel,
  /// where there is no instant at which nobody is curr), so wakeups can
  /// preempt it before it begins work.
  sim::EventId dispatch_event_ = sim::kInvalidEventId;

  Cycles busy_ = 0;
  Cycles switch_overhead_ = 0;

  // Observability (null until set_observability; guarded on every use).
  obs::Observability* obs_ = nullptr;
  std::uint32_t lane_ = 0;
  obs::Counter* ctr_ctx_switches_ = nullptr;
  obs::Counter* ctr_wakeups_ = nullptr;
  obs::Counter* ctr_preemptions_ = nullptr;
  obs::Counter* ctr_yields_ = nullptr;
  obs::Counter* ctr_switch_cycles_ = nullptr;
};

}  // namespace nfv::sched
