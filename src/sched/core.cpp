#include "sched/core.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/logging.hpp"

namespace nfv::sched {

Core::Core(sim::Engine& engine, std::unique_ptr<Scheduler> scheduler,
           CoreConfig config, std::string name)
    : engine_(engine),
      scheduler_(std::move(scheduler)),
      config_(config),
      name_(std::move(name)) {
  assert(scheduler_ != nullptr);
  assert(config_.tick_period > 0);
  next_tick_time_ = engine_.now() + config_.tick_period;
  tick_event_ = engine_.schedule_periodic(config_.tick_period, [this] { on_tick(); });
}

Core::~Core() { engine_.cancel(tick_event_); }

void Core::add_task(Task* task) {
  assert(task != nullptr);
  task->bind(this, next_task_id_++);
  task->set_state(TaskState::kBlocked);
  tasks_.push_back(task);
}

void Core::set_observability(obs::Observability* obs, std::uint32_t lane) {
  obs_ = obs;
  lane_ = lane;
  if (obs == nullptr) return;
  obs::Scope scope = obs->core_scope(name_);
  ctr_ctx_switches_ = scope.counter("sched.context_switches");
  ctr_wakeups_ = scope.counter("sched.wakeups");
  ctr_preemptions_ = scope.counter("sched.preemptions");
  ctr_yields_ = scope.counter("sched.voluntary_yields");
  ctr_switch_cycles_ = scope.counter("sched.switch_overhead_cycles");
  scope.counter_fn("sched.busy_cycles", [this] {
    return static_cast<std::uint64_t>(busy_cycles());
  });
  scope.gauge_fn("sched.runnable_tasks", [this] {
    return static_cast<double>(scheduler_->runnable_count());
  });
}

void Core::wake(Task* task) {
  assert(task->core() == this);
  auto& stats = task->mutable_stats();
  ++stats.wakeups;
  if (task->state() != TaskState::kBlocked) return;  // semaphore already up

  obs::inc(ctr_wakeups_);
  if (auto* trace = obs::trace_of(obs_)) {
    trace->instant(engine_.now(), lane_, "sched", "wakeup",
                   {{"task", task->name()}});
  }
  task->set_state(TaskState::kRunnable);
  task->last_wake_time_ = engine_.now();
  task->woken_since_dispatch_ = true;
  scheduler_->enqueue(task, /*is_wakeup=*/true);

  if (current_ != nullptr) {
    // Bring the runner's vruntime up to date before the preemption test.
    account_running(/*stint_ends=*/false);
    const Cycles ran_so_far = std::max<Cycles>(0, engine_.now() - stint_start_);
    if (scheduler_->should_preempt_on_wake(task, current_, ran_so_far)) {
      preempt_current();
      schedule_dispatch();
    }
  } else {
    schedule_dispatch();
  }
}

void Core::yield_current(Task* task, bool will_block) {
  assert(task == current_ && "only the running task may yield");
  account_running(/*stint_ends=*/true);
  ++task->mutable_stats().voluntary_switches;
  obs::inc(ctr_yields_);
  if (auto* trace = obs::trace_of(obs_)) {
    trace->instant(engine_.now(), lane_, "sched", "yield",
                   {{"task", task->name()}},
                   {{"will_block", will_block ? 1 : 0}});
  }
  current_ = nullptr;
  if (will_block) {
    task->set_state(TaskState::kBlocked);
  } else {
    task->set_state(TaskState::kRunnable);
    scheduler_->enqueue(task, /*is_wakeup=*/false);
  }
  schedule_dispatch();
}

void Core::force_block(Task* task) {
  assert(task->core() == this);
  switch (task->state()) {
    case TaskState::kBlocked:
      return;
    case TaskState::kRunnable:
      scheduler_->remove(task);
      task->set_state(TaskState::kBlocked);
      return;
    case TaskState::kRunning: {
      assert(task == current_);
      if (dispatch_event_ != sim::kInvalidEventId) {
        // Killed mid-switch: it never started, so on_dispatch never fires.
        engine_.cancel(dispatch_event_);
        dispatch_event_ = sim::kInvalidEventId;
      }
      task->on_preempt(engine_.now());
      account_running(/*stint_ends=*/true);
      ++task->mutable_stats().involuntary_switches;
      if (auto* trace = obs::trace_of(obs_)) {
        trace->instant(engine_.now(), lane_, "sched", "force_block",
                       {{"task", task->name()}});
      }
      task->set_state(TaskState::kBlocked);
      current_ = nullptr;
      schedule_dispatch();
      return;
    }
  }
}

Cycles Core::busy_cycles() const {
  Cycles busy = busy_;
  if (current_ != nullptr && engine_.now() > account_start_) {
    busy += engine_.now() - account_start_;
  }
  return busy;
}

double Core::utilization(Cycles window_start, Cycles busy_snapshot) const {
  const Cycles elapsed = engine_.now() - window_start;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_cycles() - busy_snapshot) /
         static_cast<double>(elapsed);
}

void Core::schedule_dispatch() {
  if (current_ != nullptr) return;
  if (scheduler_->runnable_count() == 0) return;
  Task* next = scheduler_->pick_next();
  assert(next != nullptr);
  // Charge the switch cost only when the CPU actually changes instruction
  // streams; resuming the task that ran last is (approximately) free. The
  // task is curr from this instant — a higher-priority wakeup during the
  // switch can still snatch the CPU (cancelling the pending start).
  const Cycles gap =
      (last_ran_ != nullptr && next != last_ran_) ? config_.context_switch_cost
                                                  : 0;
  switch_overhead_ += gap;
  if (gap > 0) {
    obs::inc(ctr_ctx_switches_);
    obs::inc(ctr_switch_cycles_, static_cast<std::uint64_t>(gap));
    if (auto* trace = obs::trace_of(obs_)) {
      trace->instant(engine_.now(), lane_, "sched", "ctx_switch",
                     {{"from", last_ran_->name()}, {"to", next->name()}},
                     {{"cost_cycles", gap}});
    }
  }
  current_ = next;
  next->set_state(TaskState::kRunning);
  stint_start_ = account_start_ = engine_.now() + gap;
  dispatch_event_ =
      engine_.schedule_after(gap, [this, next] { start_running(next); });
}

void Core::start_running(Task* task) {
  dispatch_event_ = sim::kInvalidEventId;
  assert(current_ == task);

  if (task->woken_since_dispatch_) {
    auto& stats = task->mutable_stats();
    stats.sched_latency_total += engine_.now() - task->last_wake_time_;
    ++stats.sched_latency_samples;
    task->woken_since_dispatch_ = false;
  }

  // May synchronously yield (and schedule another dispatch); nothing below
  // this call.
  task->on_dispatch(engine_.now());
}

Cycles Core::preemption_horizon() const {
  if (current_ == nullptr) return sched::kUnboundedSlack;
  if (scheduler_->runnable_count() == 0) {
    // on_tick early-outs with nobody to switch to; an arrival that changes
    // that arrives as an event and goes through the wakeup/split path.
    return sched::kUnboundedSlack;
  }
  const Cycles ran = std::max<Cycles>(0, engine_.now() - stint_start_);
  const Cycles slack = scheduler_->tick_preempt_slack(current_, ran);
  if (slack >= sched::kUnboundedSlack) return sched::kUnboundedSlack;
  // First tick at or after now + slack (ticks only fire on the grid).
  const Cycles target = engine_.now() + slack;
  if (target <= next_tick_time_) return next_tick_time_;
  const Cycles period = config_.tick_period;
  const Cycles periods = (target - next_tick_time_ + period - 1) / period;
  return next_tick_time_ + periods * period;
}

void Core::on_tick() {
  next_tick_time_ = engine_.now() + config_.tick_period;
  if (current_ == nullptr) return;
  account_running(/*stint_ends=*/false);
  const Cycles ran = std::max<Cycles>(0, engine_.now() - stint_start_);
  if (scheduler_->runnable_count() == 0) return;  // nothing to switch to
  if (scheduler_->should_resched_on_tick(current_, ran)) {
    preempt_current();
    schedule_dispatch();
  }
}

void Core::preempt_current() {
  Task* task = current_;
  assert(task != nullptr);
  if (dispatch_event_ != sim::kInvalidEventId) {
    // Preempted mid-switch: it never started, so on_dispatch never fires.
    engine_.cancel(dispatch_event_);
    dispatch_event_ = sim::kInvalidEventId;
  }
  task->on_preempt(engine_.now());
  account_running(/*stint_ends=*/true);
  ++task->mutable_stats().involuntary_switches;
  obs::inc(ctr_preemptions_);
  if (auto* trace = obs::trace_of(obs_)) {
    trace->instant(engine_.now(), lane_, "sched", "preempt",
                   {{"task", task->name()}});
  }
  task->set_state(TaskState::kRunnable);
  scheduler_->enqueue(task, /*is_wakeup=*/false);
  current_ = nullptr;
}

void Core::account_running(bool stint_ends) {
  Task* task = current_;
  assert(task != nullptr);
  const Cycles ran = engine_.now() - account_start_;
  if (ran > 0) {
    busy_ += ran;
    task->mutable_stats().runtime += ran;
    scheduler_->on_run_end(task, ran);
    account_start_ = engine_.now();
  }
  if (stint_ends) last_ran_ = task;
}

}  // namespace nfv::sched
