// cgroup cpu.shares control surface.
//
// NFVnice manipulates scheduling weights exclusively through cgroups — "a
// standard user space primitive provided by the operating system" (§3) — so
// no kernel changes are needed. This controller models the cpu cgroup's
// shares file: a write re-weights the task inside CFS, costs ~5 us of the
// Monitor thread's time (§3.5, §4.3.8), and is skipped when the value is
// unchanged (as NFVnice's manager does to stay off the sysfs path).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "sched/task.hpp"

namespace nfv::sched {

class CGroupController {
 public:
  /// Kernel bounds for cpu.shares.
  static constexpr std::uint32_t kMinShares = 2;
  static constexpr std::uint32_t kMaxShares = 262144;

  explicit CGroupController(Cycles write_cost = 13000 /* 5 us @ 2.6 GHz */)
      : write_cost_(write_cost) {}

  /// Write `shares` to the task's cgroup. Returns the cycles consumed by
  /// the write (0 when skipped because the value did not change); the
  /// caller (Monitor thread) charges that to its own core.
  Cycles set_shares(Task& task, std::uint32_t shares);

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t skipped_writes() const { return skipped_; }
  [[nodiscard]] Cycles total_write_cost() const {
    return static_cast<Cycles>(writes_) * write_cost_;
  }

 private:
  Cycles write_cost_;
  std::uint64_t writes_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace nfv::sched
