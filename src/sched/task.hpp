// Schedulable task abstraction.
//
// Each network function in NFVnice runs in its own process (§3.2); the
// kernel's CPU scheduler picks which runs. A Task is our stand-in for that
// process: it carries the scheduler-visible state (runnable/blocked,
// vruntime, weight from its cgroup's cpu.shares) and the accounting the
// paper reports (voluntary/involuntary context switches for Tables 1-2,
// runtime and scheduling latency for Table 4, CPU utilisation for
// Tables 5-6). Subclasses implement the work model: on_dispatch() starts or
// resumes the process's instruction stream, on_preempt() suspends it.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace nfv::sched {

class Core;

enum class TaskState {
  kBlocked,   ///< Sleeping on its semaphore; invisible to the scheduler.
  kRunnable,  ///< On a run queue waiting for CPU.
  kRunning,   ///< Currently on the CPU.
};

/// Default cgroup cpu.shares / CFS nice-0 weight.
inline constexpr std::uint32_t kDefaultWeight = 1024;

struct TaskStats {
  std::uint64_t voluntary_switches = 0;    ///< Yield/block while runnable work done.
  std::uint64_t involuntary_switches = 0;  ///< Preempted by the scheduler.
  std::uint64_t wakeups = 0;
  Cycles runtime = 0;               ///< Total CPU time consumed.
  Cycles sched_latency_total = 0;   ///< Σ (dispatch time - wake time).
  std::uint64_t sched_latency_samples = 0;

  [[nodiscard]] double avg_sched_latency_cycles() const {
    return sched_latency_samples == 0
               ? 0.0
               : static_cast<double>(sched_latency_total) /
                     static_cast<double>(sched_latency_samples);
  }
};

class Task {
 public:
  Task(std::string name, std::uint32_t weight = kDefaultWeight)
      : name_(std::move(name)), weight_(weight) {}
  virtual ~Task() = default;

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// The core gives this task the CPU at `now`. The task must begin
  /// scheduling its own work-completion events and eventually call
  /// Core::yield_current() (unless preempted first).
  virtual void on_dispatch(Cycles now) = 0;

  /// The core takes the CPU away at `now` (quantum expiry or wakeup
  /// preemption). The task must cancel in-flight work events and remember
  /// partial progress so on_dispatch() can resume mid-packet.
  virtual void on_preempt(Cycles now) = 0;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TaskState state() const { return state_; }
  [[nodiscard]] std::uint32_t weight() const { return weight_; }
  void set_weight(std::uint32_t weight) { weight_ = weight == 0 ? 1 : weight; }

  [[nodiscard]] double vruntime() const { return vruntime_; }
  void set_vruntime(double v) { vruntime_ = v; }
  void add_vruntime(double delta) { vruntime_ += delta; }

  [[nodiscard]] Core* core() const { return core_; }

  [[nodiscard]] const TaskStats& stats() const { return stats_; }
  TaskStats& mutable_stats() { return stats_; }

  /// Unique id assigned when the task is added to a core; breaks vruntime
  /// ties deterministically.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  friend class Core;
  void bind(Core* core, std::uint64_t id) {
    core_ = core;
    id_ = id;
  }
  void set_state(TaskState next) { state_ = next; }

  std::string name_;
  std::uint32_t weight_;
  double vruntime_ = 0.0;
  TaskState state_ = TaskState::kBlocked;
  Core* core_ = nullptr;
  std::uint64_t id_ = 0;
  TaskStats stats_;
  Cycles last_wake_time_ = 0;
  bool woken_since_dispatch_ = false;
};

}  // namespace nfv::sched
