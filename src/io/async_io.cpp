#include "io/async_io.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nfv::io {

const char* to_string(AsyncIoEngine::OnIoFail policy) {
  switch (policy) {
    case AsyncIoEngine::OnIoFail::kBlock:
      return "block";
    case AsyncIoEngine::OnIoFail::kShed:
      return "shed";
    case AsyncIoEngine::OnIoFail::kStuck:
      return "stuck";
  }
  return "?";
}

const char* to_string(AsyncIoEngine::RequestState state) {
  switch (state) {
    case AsyncIoEngine::RequestState::kPending:
      return "pending";
    case AsyncIoEngine::RequestState::kInflight:
      return "inflight";
    case AsyncIoEngine::RequestState::kRetrying:
      return "retrying";
    case AsyncIoEngine::RequestState::kDone:
      return "done";
    case AsyncIoEngine::RequestState::kFailed:
      return "failed";
    case AsyncIoEngine::RequestState::kTimedOut:
      return "timed-out";
  }
  return "?";
}

AsyncIoEngine::AsyncIoEngine(sim::Engine& engine, BlockDevice& device,
                             Config config)
    : engine_(engine),
      device_(device),
      config_(config),
      rng_(config.jitter_seed) {
  if (config_.mode == Mode::kDoubleBuffered && config_.flush_interval > 0) {
    flush_timer_ = engine_.schedule_periodic(config_.flush_interval, [this] {
      // Periodic flush bounds how long staged data waits when traffic is
      // slow; a buffer-full flush may already be in flight, and a degraded
      // engine must not re-submit into a failing device outside the
      // retry/probe machinery.
      if (!flush_in_flight_ && !degraded_ && active_bytes_ > 0) flush_active();
    });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  engine_.cancel(flush_timer_);
  engine_.cancel(probe_event_);
  // Withdraw every in-flight completion, deadline and backoff timer: their
  // callbacks capture `this`, and tearing down a Simulation mid-flush must
  // not fire one into a freed engine (mirrors the source destructors).
  for (const auto& request : requests_) {
    engine_.cancel(request->deadline);
    engine_.cancel(request->retry_timer);
    if (request->dev_req != BlockDevice::kInvalidRequest) {
      device_.cancel(request->dev_req);
    }
  }
}

void AsyncIoEngine::set_observability(obs::Observability* obs,
                                      const std::string& owner_name) {
  if (obs == nullptr) return;
  obs_ = obs;
  owner_name_ = owner_name;
  obs::Scope scope = obs->nf_scope(owner_name);
  scope.counter_fn("io.writes", [this] { return writes_; });
  scope.counter_fn("io.bytes_written", [this] { return bytes_written_; });
  scope.counter_fn("io.flushes", [this] { return flushes_; });
  scope.counter_fn("io.reads", [this] { return reads_; });
  scope.counter_fn("io.block_transitions", [this] { return blocked_count_; });
}

void AsyncIoEngine::register_fault_metrics() {
  if (obs_ == nullptr || fault_metrics_registered_) return;
  fault_metrics_registered_ = true;
  obs::Scope scope = obs_->nf_scope(owner_name_);
  scope.counter_fn("io.retries", [this] { return retries_; });
  scope.counter_fn("io.timeouts", [this] { return timeouts_; });
  scope.counter_fn("io.failures", [this] { return failures_; });
  scope.counter_fn("io.dropped_writes", [this] { return dropped_writes_; });
  scope.counter_fn("io.shed_bytes", [this] { return shed_bytes_; });
  scope.counter_fn("io.degraded_entries", [this] { return degraded_entries_; });
  scope.counter_fn("io.probes", [this] { return probes_; });
  scope.counter_fn("io.time_in_degraded_cycles", [this] {
    return static_cast<std::uint64_t>(time_in_degraded(engine_.now()));
  });
  scope.gauge_fn("io.staged_bytes",
                 [this] { return static_cast<double>(active_bytes_); });
  scope.gauge_fn("io.degraded",
                 [this] { return degraded_ ? 1.0 : 0.0; });
}

void AsyncIoEngine::write(std::uint64_t bytes, Callback done) {
  ++writes_;

  // Degraded kShed/kStuck: the device is gone; drop I/O-bound work at the
  // door and let the NF keep processing (process-without-logging).
  if (degraded_ && config_.on_fail != OnIoFail::kBlock) {
    ++dropped_writes_;
    shed_bytes_ += bytes;
    return;
  }

  if (config_.mode == Mode::kSynchronous) {
    bytes_written_ += bytes;
    ++sync_in_flight_;
    if (!blocked_) {
      blocked_ = true;
      ++blocked_count_;
    }
    Request& request = make_request(Request::Kind::kSyncWrite, bytes);
    request.write_count = 1;
    if (done) request.done_callbacks.push_back(std::move(done));
    issue(request);
    return;
  }

  // Bounded staging: a dead or blocked device cannot grow the staging
  // buffer without limit (DESIGN.md §12). In normal operation the cap is
  // never hit — the active buffer flushes at buffer_bytes.
  if (active_bytes_ + bytes > max_staged()) {
    ++dropped_writes_;
    shed_bytes_ += bytes;
    return;
  }

  bytes_written_ += bytes;
  active_bytes_ += bytes;
  ++staged_write_count_;
  if (done) active_callbacks_.push_back(std::move(done));

  if (active_bytes_ >= config_.buffer_bytes) {
    if (!flush_in_flight_ && !degraded_) {
      flush_active();
    } else if (!blocked_) {
      // Both buffers full: the filling buffer is at capacity and the other
      // is still being written out — libnf suspends the NF (§3.4).
      blocked_ = true;
      ++blocked_count_;
    }
  }
}

void AsyncIoEngine::read(std::uint64_t bytes, Callback done, Callback failed) {
  ++reads_;
  Request& request = make_request(Request::Kind::kRead, bytes);
  request.read_done = std::move(done);
  request.read_failed = std::move(failed);
  issue(request);
}

bool AsyncIoEngine::would_block() const { return blocked_; }

void AsyncIoEngine::flush_active() {
  ++flushes_;
  flush_in_flight_ = true;
  // Swap buffers: the staged data plus its callbacks head to the device,
  // and the NF keeps filling a fresh (empty) buffer.
  Request& request = make_request(Request::Kind::kFlush, active_bytes_);
  request.write_count = staged_write_count_;
  request.done_callbacks = std::move(active_callbacks_);
  active_callbacks_.clear();
  active_bytes_ = 0;
  staged_write_count_ = 0;
  issue(request);
}

void AsyncIoEngine::on_flush_complete() {
  flush_in_flight_ = false;
  if (active_bytes_ >= config_.buffer_bytes && !degraded_) {
    flush_active();  // the other buffer filled while we were writing
  }
  maybe_unblock();
}

bool AsyncIoEngine::blocked_now() const {
  if (degraded_ && config_.on_fail != OnIoFail::kBlock) return false;
  if (config_.mode == Mode::kSynchronous) return sync_in_flight_ > 0;
  return active_bytes_ >= config_.buffer_bytes && flush_in_flight_;
}

void AsyncIoEngine::maybe_unblock() {
  if (blocked_ && !blocked_now()) {
    blocked_ = false;
    if (unblock_cb_) unblock_cb_();
  }
}

// -- request state machine ---------------------------------------------------

AsyncIoEngine::Request& AsyncIoEngine::make_request(Request::Kind kind,
                                                    std::uint64_t bytes) {
  auto request = std::make_unique<Request>();
  request->id = next_request_id_++;
  request->kind = kind;
  request->bytes = bytes;
  requests_.push_back(std::move(request));
  return *requests_.back();
}

AsyncIoEngine::Request* AsyncIoEngine::find_request(std::uint64_t id) {
  for (const auto& request : requests_) {
    if (request->id == id) return request.get();
  }
  return nullptr;
}

void AsyncIoEngine::erase_request(std::uint64_t id) {
  for (auto it = requests_.begin(); it != requests_.end(); ++it) {
    if ((*it)->id == id) {
      requests_.erase(it);
      return;
    }
  }
}

void AsyncIoEngine::issue(Request& request) {
  request.state = RequestState::kInflight;
  ++request.attempts;
  request.dev_req = device_.submit(
      request.bytes, [this, id = request.id](const IoResult& result) {
        on_device_complete(id, result);
      });
  if (config_.io_timeout > 0) {
    request.deadline = engine_.schedule_after(
        config_.io_timeout, [this, id = request.id] { on_deadline(id); });
  }
}

void AsyncIoEngine::on_device_complete(std::uint64_t id,
                                       const IoResult& result) {
  Request* request = find_request(id);
  if (request == nullptr) return;
  engine_.cancel(request->deadline);
  request->deadline = sim::kInvalidEventId;
  request->dev_req = BlockDevice::kInvalidRequest;
  if (result.ok()) {
    succeed(*request);
    return;
  }
  // Error or torn completion: the attempt failed (a torn write is retried
  // in full — the journal-style replay is idempotent).
  request->state = RequestState::kFailed;
  handle_attempt_failure(*request);
}

void AsyncIoEngine::on_deadline(std::uint64_t id) {
  Request* request = find_request(id);
  if (request == nullptr) return;
  request->deadline = sim::kInvalidEventId;
  ++timeouts_;
  trace("io_timeout",
        {{"attempt", static_cast<std::int64_t>(request->attempts)}});
  // Withdraw the hanging device request so a late completion cannot race
  // the retry.
  if (request->dev_req != BlockDevice::kInvalidRequest) {
    device_.cancel(request->dev_req);
    request->dev_req = BlockDevice::kInvalidRequest;
  }
  request->state = RequestState::kTimedOut;
  handle_attempt_failure(*request);
}

void AsyncIoEngine::handle_attempt_failure(Request& request) {
  if (request.kind == Request::Kind::kProbe) {
    // Probes are single-shot: the device is still bad, try again next
    // period.
    erase_request(request.id);
    schedule_probe();
    return;
  }
  if (request.attempts < config_.max_attempts) {
    request.state = RequestState::kRetrying;
    ++retries_;
    const Cycles delay = backoff_delay(request.attempts);
    trace("io_retry",
          {{"attempt", static_cast<std::int64_t>(request.attempts)},
           {"backoff_cycles", static_cast<std::int64_t>(delay)}});
    request.retry_timer =
        engine_.schedule_after(delay, [this, id = request.id] {
          Request* r = find_request(id);
          if (r == nullptr) return;
          r->retry_timer = sim::kInvalidEventId;
          issue(*r);
        });
    return;
  }
  permanent_failure(request);
}

void AsyncIoEngine::permanent_failure(Request& request) {
  ++failures_;
  trace("io_fail",
        {{"attempts", static_cast<std::int64_t>(request.attempts)}});

  if (request.kind == Request::Kind::kRead) {
    Callback failed = std::move(request.read_failed);
    erase_request(request.id);
    if (failed) failed();
    return;
  }

  // A parked request failing again (re-issued by a recovery probe): stay
  // degraded, keep it parked, try again next period.
  if (parked_ == request.id) {
    schedule_probe();
    return;
  }

  if (config_.on_fail == OnIoFail::kBlock) {
    // Park the failed request: its data and callbacks are retained and
    // re-issued by the recovery probes; the NF stays blocked and its
    // growing queues drive the Fig. 4 backpressure/ECN machinery.
    parked_ = request.id;
    enter_degraded();
    return;
  }

  // kShed / kStuck: the data is lost; account it and release the NF (shed)
  // or freeze it for the watchdog (stuck).
  if (request.kind == Request::Kind::kFlush) {
    dropped_writes_ += request.write_count;
    shed_bytes_ += request.bytes;
    erase_request(request.id);
    flush_in_flight_ = false;
  } else {  // kSyncWrite
    dropped_writes_ += request.write_count;
    shed_bytes_ += request.bytes;
    erase_request(request.id);
    --sync_in_flight_;
  }
  enter_degraded();
  maybe_unblock();
}

void AsyncIoEngine::succeed(Request& request) {
  request.state = RequestState::kDone;
  const std::uint64_t id = request.id;
  if (parked_ == id) parked_ = 0;

  switch (request.kind) {
    case Request::Kind::kFlush: {
      std::vector<Callback> callbacks = std::move(request.done_callbacks);
      erase_request(id);
      if (degraded_) exit_degraded();
      for (const auto& cb : callbacks) {
        if (cb) cb();
      }
      on_flush_complete();
      break;
    }
    case Request::Kind::kSyncWrite: {
      std::vector<Callback> callbacks = std::move(request.done_callbacks);
      erase_request(id);
      if (degraded_) exit_degraded();
      for (const auto& cb : callbacks) {
        if (cb) cb();
      }
      --sync_in_flight_;
      maybe_unblock();
      break;
    }
    case Request::Kind::kRead: {
      Callback done = std::move(request.read_done);
      erase_request(id);
      if (done) done();
      break;
    }
    case Request::Kind::kProbe: {
      erase_request(id);
      if (degraded_) exit_degraded();
      break;
    }
  }
}

// -- degraded mode -----------------------------------------------------------

void AsyncIoEngine::shed_staged() {
  dropped_writes_ += staged_write_count_;
  shed_bytes_ += active_bytes_;
  active_bytes_ = 0;
  staged_write_count_ = 0;
  active_callbacks_.clear();
}

void AsyncIoEngine::enter_degraded() {
  if (!degraded_) {
    degraded_ = true;
    ++degraded_entries_;
    degraded_since_ = engine_.now();
    trace("io_degrade", {{"mode", static_cast<std::int64_t>(
                              static_cast<int>(config_.on_fail))}});
    if (degrade_cb_) degrade_cb_(true);
    if (config_.on_fail != OnIoFail::kBlock) {
      // The staged-but-unflushed buffer would never drain; shed it so the
      // staging stays bounded and the shed counters tell the whole story.
      shed_staged();
    }
    if (config_.on_fail == OnIoFail::kStuck && fatal_cb_) fatal_cb_();
  }
  schedule_probe();
}

void AsyncIoEngine::exit_degraded() {
  if (!degraded_) return;
  degraded_ = false;
  time_in_degraded_ += engine_.now() - degraded_since_;
  engine_.cancel(probe_event_);
  probe_event_ = sim::kInvalidEventId;
  trace("io_recover");
  if (degrade_cb_) degrade_cb_(false);
}

Cycles AsyncIoEngine::probe_period() const {
  if (config_.probe_interval > 0) return config_.probe_interval;
  return std::max<Cycles>(
      1, 4 * std::max(config_.io_timeout, config_.retry_backoff));
}

void AsyncIoEngine::schedule_probe() {
  if (probe_event_ != sim::kInvalidEventId) return;
  probe_event_ = engine_.schedule_after(probe_period(), [this] { on_probe(); });
}

void AsyncIoEngine::on_probe() {
  probe_event_ = sim::kInvalidEventId;
  if (!degraded_) return;
  ++probes_;
  trace("io_probe");
  if (parked_ != 0) {
    // Re-issue the parked request itself (fresh retry budget): success is
    // both the recovery signal and the delivery of the parked data.
    Request* request = find_request(parked_);
    if (request != nullptr) {
      request->attempts = 0;
      issue(*request);
      return;
    }
    parked_ = 0;
  }
  // No parked data (shed/stuck): a tiny canary write tests the device.
  Request& request = make_request(Request::Kind::kProbe, 1);
  issue(request);
}

Cycles AsyncIoEngine::backoff_delay(std::uint32_t attempts) {
  double delay = static_cast<double>(config_.retry_backoff);
  for (std::uint32_t i = 1; i < attempts; ++i) {
    delay *= config_.backoff_multiplier;
  }
  if (config_.jitter_fraction > 0.0) {
    // Deterministic jitter from the engine's own RNG: same seed, same
    // backoff sequence, byte-identical faulted runs.
    delay *= 1.0 + config_.jitter_fraction * (2.0 * rng_.next_double() - 1.0);
  }
  return std::max<Cycles>(1, static_cast<Cycles>(delay));
}

void AsyncIoEngine::trace(
    const char* name,
    std::vector<std::pair<std::string, std::int64_t>> num_args) {
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(engine_.now(), obs::kIoLane, "io", name,
                {{"nf", owner_name_}}, std::move(num_args));
  }
}

}  // namespace nfv::io
