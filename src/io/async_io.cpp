#include "io/async_io.hpp"

#include <utility>

namespace nfv::io {

AsyncIoEngine::AsyncIoEngine(sim::Engine& engine, BlockDevice& device,
                             Config config)
    : engine_(engine), device_(device), config_(config) {
  if (config_.mode == Mode::kDoubleBuffered && config_.flush_interval > 0) {
    flush_timer_ = engine_.schedule_periodic(config_.flush_interval, [this] {
      // Periodic flush bounds how long staged data waits when traffic is
      // slow; a buffer-full flush may already be in flight.
      if (!flush_in_flight_ && active_bytes_ > 0) flush_active();
    });
  }
}

AsyncIoEngine::~AsyncIoEngine() { engine_.cancel(flush_timer_); }

void AsyncIoEngine::set_observability(obs::Observability* obs,
                                      const std::string& owner_name) {
  if (obs == nullptr) return;
  obs::Scope scope = obs->nf_scope(owner_name);
  scope.counter_fn("io.writes", [this] { return writes_; });
  scope.counter_fn("io.bytes_written", [this] { return bytes_written_; });
  scope.counter_fn("io.flushes", [this] { return flushes_; });
  scope.counter_fn("io.reads", [this] { return reads_; });
  scope.counter_fn("io.block_transitions", [this] { return blocked_count_; });
}

void AsyncIoEngine::write(std::uint64_t bytes, Callback done) {
  ++writes_;
  bytes_written_ += bytes;

  if (config_.mode == Mode::kSynchronous) {
    ++sync_in_flight_;
    if (!blocked_) {
      blocked_ = true;
      ++blocked_count_;
    }
    device_.submit(bytes, [this, done = std::move(done)] {
      if (done) done();
      --sync_in_flight_;
      maybe_unblock();
    });
    return;
  }

  active_bytes_ += bytes;
  if (done) active_callbacks_.push_back(std::move(done));

  if (active_bytes_ >= config_.buffer_bytes) {
    if (!flush_in_flight_) {
      flush_active();
    } else if (!blocked_) {
      // Both buffers full: the filling buffer is at capacity and the other
      // is still being written out — libnf suspends the NF (§3.4).
      blocked_ = true;
      ++blocked_count_;
    }
  }
}

void AsyncIoEngine::read(std::uint64_t bytes, Callback done) {
  ++reads_;
  device_.submit(bytes, std::move(done));
}

bool AsyncIoEngine::would_block() const { return blocked_; }

void AsyncIoEngine::flush_active() {
  ++flushes_;
  flush_in_flight_ = true;
  // Swap buffers: the staged data plus its callbacks head to the device,
  // and the NF keeps filling a fresh (empty) buffer.
  auto callbacks = std::move(active_callbacks_);
  active_callbacks_.clear();
  const std::uint64_t bytes = active_bytes_;
  active_bytes_ = 0;
  device_.submit(bytes, [this, callbacks = std::move(callbacks)] {
    for (const auto& cb : callbacks) {
      if (cb) cb();
    }
    on_flush_complete();
  });
}

void AsyncIoEngine::on_flush_complete() {
  flush_in_flight_ = false;
  if (active_bytes_ >= config_.buffer_bytes) {
    flush_active();  // the other buffer filled while we were writing
  }
  maybe_unblock();
}

void AsyncIoEngine::maybe_unblock() {
  const bool still_blocked =
      config_.mode == Mode::kSynchronous
          ? sync_in_flight_ > 0
          : (active_bytes_ >= config_.buffer_bytes && flush_in_flight_);
  if (blocked_ && !still_blocked) {
    blocked_ = false;
    if (unblock_cb_) unblock_cb_();
  }
}

}  // namespace nfv::io
