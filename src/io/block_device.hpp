// Simulated block storage device.
//
// Stand-in for the testbed's disk behind Linux async I/O: a single service
// queue with a fixed per-request setup latency plus a bandwidth term.
// Requests are serviced FIFO and completion callbacks fire from the event
// engine, exactly like io completion events delivered to libnf's I/O thread
// context (§3.4).
//
// The device is also the storage fault domain's actuator (DESIGN.md §12):
// it implements fault::DeviceFaultSink, so a FaultPlan's `device` specs can
// open windows during which requests are slow (latency scaled), error out,
// tear (only a fraction of the bytes land) or wedge outright (nothing
// completes — in-flight requests hang too — until the window ends). The
// fault state a request observes is sampled when the device *starts*
// servicing it, which keeps faulted runs byte-deterministic: the same plan
// yields the same completion schedule every run. A wedge discards service
// progress: requests caught by it restart from scratch when the window
// ends, and busy_cycles() counts both attempts (the device really spun).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "fault/injector.hpp"
#include "obs/observability.hpp"
#include "sim/engine.hpp"

namespace nfv::io {

/// How a request ended. Torn completions report the bytes that did land.
enum class IoStatus {
  kOk,     ///< Full completion.
  kError,  ///< Device error: no bytes landed.
  kTorn,   ///< Partial completion: bytes_done < requested.
};

const char* to_string(IoStatus status);

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::uint64_t bytes_done = 0;
  [[nodiscard]] bool ok() const { return status == IoStatus::kOk; }
};

class BlockDevice : public fault::DeviceFaultSink {
 public:
  struct Config {
    /// Per-request setup latency (seek/NVMe submission). Default 20 us.
    Cycles base_latency = 52000;
    /// Sustained throughput in bytes per cycle. Default ~500 MB/s at
    /// 2.6 GHz => ~0.19 B/cycle.
    double bytes_per_cycle = 0.19;
  };

  using Callback = std::function<void(const IoResult&)>;

  /// Handle for cancelling a pending request; 0 is never issued.
  using RequestId = std::uint64_t;
  static constexpr RequestId kInvalidRequest = 0;

  explicit BlockDevice(sim::Engine& engine) : BlockDevice(engine, Config{}) {}
  BlockDevice(sim::Engine& engine, Config config)
      : engine_(engine), config_(config) {}
  ~BlockDevice() override;

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Queue a request of `bytes`; `done` fires with the outcome when the
  /// device completes it. Requests are serviced in submission order, one
  /// at a time. Returns a handle usable with cancel().
  RequestId submit(std::uint64_t bytes, Callback done);

  /// Abandon a pending request: its callback never fires (the caller
  /// initiated the cancellation and needs no notification). Returns true
  /// when the request was still pending, false when already completed or
  /// unknown.
  bool cancel(RequestId id);

  // -- fault::DeviceFaultSink (driven by the FaultInjector) ----------------
  void inject_device_fault(fault::DeviceFaultKind kind, double factor) override;
  void restore_device_fault(fault::DeviceFaultKind kind) override;

  /// Register the device's counters under the global scope and keep `obs`
  /// for fault-window trace events (lane obs::kIoLane). Null-safe;
  /// idempotent. Only called by the platform when the storage fault domain
  /// is active, so fault-free runs keep the seed metrics dump.
  void set_observability(obs::Observability* obs);

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
  /// Device-busy time; the benches use it to report I/O overlap.
  [[nodiscard]] Cycles busy_cycles() const { return busy_; }
  [[nodiscard]] std::uint64_t failed_requests() const { return failed_; }
  [[nodiscard]] std::uint64_t torn_requests() const { return torn_; }
  [[nodiscard]] std::uint64_t cancelled_requests() const { return cancelled_; }
  [[nodiscard]] std::uint64_t inflight_requests() const {
    return queue_.size();
  }
  [[nodiscard]] bool wedged() const { return wedged_; }
  [[nodiscard]] double latency_factor() const { return latency_factor_; }

 private:
  struct Pending {
    RequestId id = kInvalidRequest;
    std::uint64_t bytes = 0;
    Callback done;
    /// kInvalidEventId while held by a wedge (no completion scheduled).
    sim::EventId event = sim::kInvalidEventId;
    // Outcome decided at service start (schedule_service).
    IoStatus status = IoStatus::kOk;
    std::uint64_t bytes_done = 0;
  };

  /// Compute service start/duration from the current fault state and
  /// schedule the completion event. The outcome (ok/error/torn) is decided
  /// here too — the state at service start is what the request observes.
  void schedule_service(Pending& pending);
  void complete(RequestId id);
  void trace_window(const char* name, fault::DeviceFaultKind kind,
                    double factor);

  sim::Engine& engine_;
  Config config_;
  Cycles next_free_ = 0;
  std::deque<Pending> queue_;  ///< Submission order; front completes first.
  RequestId next_id_ = 1;

  // Fault-window state (DeviceFaultSink).
  double latency_factor_ = 1.0;  ///< kSlow; 1.0 = healthy.
  bool error_window_ = false;    ///< kError.
  double torn_fraction_ = -1.0;  ///< kTorn; active when >= 0.
  bool wedged_ = false;          ///< kWedge.

  obs::Observability* obs_ = nullptr;
  bool metrics_registered_ = false;

  std::uint64_t requests_ = 0;
  std::uint64_t bytes_ = 0;
  Cycles busy_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t torn_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace nfv::io
