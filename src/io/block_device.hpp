// Simulated block storage device.
//
// Stand-in for the testbed's disk behind Linux async I/O: a single service
// queue with a fixed per-request setup latency plus a bandwidth term.
// Requests are serviced FIFO and completion callbacks fire from the event
// engine, exactly like io completion events delivered to libnf's I/O thread
// context (§3.4).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"

namespace nfv::io {

class BlockDevice {
 public:
  struct Config {
    /// Per-request setup latency (seek/NVMe submission). Default 20 us.
    Cycles base_latency = 52000;
    /// Sustained throughput in bytes per cycle. Default ~500 MB/s at
    /// 2.6 GHz => ~0.19 B/cycle.
    double bytes_per_cycle = 0.19;
  };

  using Callback = std::function<void()>;

  explicit BlockDevice(sim::Engine& engine) : BlockDevice(engine, Config{}) {}
  BlockDevice(sim::Engine& engine, Config config)
      : engine_(engine), config_(config) {}

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Queue a request of `bytes`; `done` fires when the device completes it.
  /// Requests are serviced in submission order, one at a time.
  void submit(std::uint64_t bytes, Callback done);

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
  /// Device-busy time; the benches use it to report I/O overlap.
  [[nodiscard]] Cycles busy_cycles() const { return busy_; }

 private:
  sim::Engine& engine_;
  Config config_;
  Cycles next_free_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_ = 0;
  Cycles busy_ = 0;
};

}  // namespace nfv::io
