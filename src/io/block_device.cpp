#include "io/block_device.hpp"

#include <algorithm>
#include <utility>

namespace nfv::io {

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kError:
      return "error";
    case IoStatus::kTorn:
      return "torn";
  }
  return "?";
}

BlockDevice::~BlockDevice() {
  // Pending completions capture `this`; never let one outlive the device.
  for (const Pending& pending : queue_) engine_.cancel(pending.event);
}

BlockDevice::RequestId BlockDevice::submit(std::uint64_t bytes,
                                           Callback done) {
  ++requests_;
  bytes_ += bytes;
  Pending pending;
  pending.id = next_id_++;
  pending.bytes = bytes;
  pending.done = std::move(done);
  queue_.push_back(std::move(pending));
  // A wedged device accepts submissions (the host-side queue is not the
  // device) but services nothing until the window ends.
  if (!wedged_) schedule_service(queue_.back());
  return queue_.back().id;
}

bool BlockDevice::cancel(RequestId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) continue;
    engine_.cancel(it->event);
    queue_.erase(it);
    ++cancelled_;
    return true;
  }
  return false;
}

void BlockDevice::schedule_service(Pending& pending) {
  const Cycles start = std::max(engine_.now(), next_free_);
  // Exact integer path when healthy so the fault-free completion schedule
  // is bit-identical to the pre-fault-domain device.
  const Cycles setup =
      latency_factor_ == 1.0
          ? config_.base_latency
          : static_cast<Cycles>(static_cast<double>(config_.base_latency) *
                                latency_factor_);
  const auto duration =
      setup + static_cast<Cycles>(static_cast<double>(pending.bytes) /
                                  config_.bytes_per_cycle);
  next_free_ = start + duration;
  busy_ += duration;
  // The fault state at service start is what the request observes.
  if (error_window_) {
    pending.status = IoStatus::kError;
    pending.bytes_done = 0;
  } else if (torn_fraction_ >= 0.0) {
    pending.status = IoStatus::kTorn;
    pending.bytes_done = static_cast<std::uint64_t>(
        static_cast<double>(pending.bytes) * torn_fraction_);
  } else {
    pending.status = IoStatus::kOk;
    pending.bytes_done = pending.bytes;
  }
  pending.event = engine_.schedule_at(
      next_free_, [this, id = pending.id] { complete(id); });
}

void BlockDevice::complete(RequestId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) continue;
    Pending pending = std::move(*it);
    queue_.erase(it);
    if (pending.status == IoStatus::kError) ++failed_;
    if (pending.status == IoStatus::kTorn) ++torn_;
    IoResult result;
    result.status = pending.status;
    result.bytes_done = pending.bytes_done;
    if (pending.done) pending.done(result);
    return;
  }
}

void BlockDevice::inject_device_fault(fault::DeviceFaultKind kind,
                                      double factor) {
  switch (kind) {
    case fault::DeviceFaultKind::kSlow:
      latency_factor_ = factor;
      break;
    case fault::DeviceFaultKind::kError:
      error_window_ = true;
      break;
    case fault::DeviceFaultKind::kTorn:
      torn_fraction_ = factor;
      break;
    case fault::DeviceFaultKind::kWedge:
      wedged_ = true;
      // In-flight requests hang too: their completions are withdrawn and
      // they restart from scratch when the window ends. The planned
      // schedule is abandoned, so servicing resumes from "now" at restore.
      for (Pending& pending : queue_) {
        engine_.cancel(pending.event);
        pending.event = sim::kInvalidEventId;
      }
      next_free_ = engine_.now();
      break;
  }
  trace_window("device_fault_begin", kind, factor);
}

void BlockDevice::restore_device_fault(fault::DeviceFaultKind kind) {
  switch (kind) {
    case fault::DeviceFaultKind::kSlow:
      latency_factor_ = 1.0;
      break;
    case fault::DeviceFaultKind::kError:
      error_window_ = false;
      break;
    case fault::DeviceFaultKind::kTorn:
      torn_fraction_ = -1.0;
      break;
    case fault::DeviceFaultKind::kWedge:
      wedged_ = false;
      // Re-service everything held by the wedge, in submission order.
      for (Pending& pending : queue_) {
        if (pending.event == sim::kInvalidEventId) schedule_service(pending);
      }
      break;
  }
  trace_window("device_fault_end", kind, 0.0);
}

void BlockDevice::set_observability(obs::Observability* obs) {
  if (obs == nullptr) return;
  obs_ = obs;
  if (metrics_registered_) return;
  metrics_registered_ = true;
  obs::Scope scope = obs->global_scope();
  scope.counter_fn("disk.requests", [this] { return requests_; });
  scope.counter_fn("disk.bytes", [this] { return bytes_; });
  scope.counter_fn("disk.failed_requests", [this] { return failed_; });
  scope.counter_fn("disk.torn_requests", [this] { return torn_; });
  scope.counter_fn("disk.cancelled_requests", [this] { return cancelled_; });
  scope.gauge_fn("disk.inflight_requests",
                 [this] { return static_cast<double>(queue_.size()); });
}

void BlockDevice::trace_window(const char* name, fault::DeviceFaultKind kind,
                               double factor) {
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(engine_.now(), obs::kIoLane, "io", name,
                {{"kind", fault::to_string(kind)}},
                {{"factor_x1000", static_cast<std::int64_t>(factor * 1000.0)}});
  }
}

}  // namespace nfv::io
