#include "io/block_device.hpp"

#include <algorithm>

namespace nfv::io {

void BlockDevice::submit(std::uint64_t bytes, Callback done) {
  const Cycles start = std::max(engine_.now(), next_free_);
  const auto duration =
      config_.base_latency +
      static_cast<Cycles>(static_cast<double>(bytes) / config_.bytes_per_cycle);
  next_free_ = start + duration;
  ++requests_;
  bytes_ += bytes;
  busy_ += duration;
  engine_.schedule_at(next_free_, std::move(done));
}

}  // namespace nfv::io
