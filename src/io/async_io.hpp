// libnf's storage I/O engine: batched, double-buffered, asynchronous.
//
// §3.4: "Using batched asynchronous I/O with double buffering, libnf
// enables the NF implementation to put the processing of one or more
// packets on hold, while continuing processing of other packets unhindered.
// ... Double buffering enables libnf to service one set of I/O requests
// asynchronously while the other buffer is filled up by the NF. When both
// buffers are full, libnf suspends the execution of the NF and yields the
// CPU." The size of the batches and the flush interval are tunable by the
// NF implementation.
//
// The kSynchronous mode is the baseline Fig. 14 compares against: every
// write stalls the NF until the device completes it (no overlap).
//
// Storage fault domain (DESIGN.md §12): every device request is tracked by
// an explicit state machine — pending -> inflight -> retrying -> done /
// failed / timed-out — instead of a fire-and-forget callback. A request
// that misses its completion deadline (Config::io_timeout) or completes
// with an error/torn status is retried with exponential backoff and
// deterministic jitter (the engine's own RNG, never wall clock) up to
// Config::max_attempts. When the budget is exhausted the engine enters a
// degraded mode chosen by Config::on_fail:
//   kBlock — stay blocked until a recovery probe gets through; RX queues
//            grow and drive the Fig. 4 backpressure/ECN machinery normally.
//   kShed  — drop staged writes and keep processing packets (process-
//            without-logging); bounded by max_staged_bytes either way.
//   kStuck — report a fatal stall via the fatal callback: the NF freezes
//            and the PR 4 watchdog + DeadNfPolicy take over.
// All fault knobs default off (io_timeout = 0 schedules no deadline
// events), so a fault-free run's event schedule is byte-identical to the
// engine before the fault domain existed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include <string>

#include "common/rng.hpp"
#include "io/block_device.hpp"
#include "obs/observability.hpp"
#include "sim/engine.hpp"

namespace nfv::io {

class AsyncIoEngine {
 public:
  enum class Mode {
    kSynchronous,     ///< Baseline: block the NF for every write.
    kDoubleBuffered,  ///< NFVnice libnf: overlap compute with flushes.
  };

  /// Degraded-mode policy once a request exhausts its retry budget.
  enum class OnIoFail {
    kBlock,  ///< Stay blocked; queues grow and backpressure engages.
    kShed,   ///< Drop I/O-bound work, keep processing (no logging).
    kStuck,  ///< Freeze the NF: the watchdog force-kills and restarts it.
  };

  /// Request lifecycle (DESIGN.md §12). Exposed for tests/diagnostics.
  enum class RequestState {
    kPending,   ///< Created, not yet submitted to the device.
    kInflight,  ///< Submitted; completion or deadline pending.
    kRetrying,  ///< Failed attempt; backoff timer armed.
    kDone,      ///< Completed successfully.
    kFailed,    ///< Retry budget exhausted (parked when on_fail = kBlock).
    kTimedOut,  ///< Deadline fired on the final attempt.
  };

  struct Config {
    Mode mode = Mode::kDoubleBuffered;
    std::uint64_t buffer_bytes = 64 * 1024;  ///< Batch (buffer) capacity.
    Cycles flush_interval = 0;  ///< 0 = flush only when a buffer fills.

    // -- storage fault domain. Defaults keep the event schedule identical
    //    to the pre-fault-domain engine: no deadline, retry or probe
    //    events are created unless a request actually fails.
    /// Per-request completion deadline; 0 disables deadlines entirely
    /// (device errors still trigger retries, but a wedged device then
    /// hangs the request forever — configure a timeout to detect wedges).
    Cycles io_timeout = 0;
    std::uint32_t max_attempts = 4;  ///< 1 initial try + up to 3 retries.
    Cycles retry_backoff = 26'000;   ///< First retry delay (10 us).
    double backoff_multiplier = 2.0;
    /// Backoff jitter: each delay is scaled by a deterministic factor in
    /// [1 - j, 1 + j] drawn from the engine's own RNG (never wall clock).
    double jitter_fraction = 0.1;
    std::uint64_t jitter_seed = 0x10c0ffeeULL;
    /// Staging cap for write(): bytes beyond it are dropped (counted as
    /// dropped writes), so a dead device cannot grow buffers without
    /// limit. 0 = 4x buffer_bytes.
    std::uint64_t max_staged_bytes = 0;
    OnIoFail on_fail = OnIoFail::kBlock;
    /// Degraded-mode recovery probe period; 0 = 4x max(io_timeout,
    /// retry_backoff).
    Cycles probe_interval = 0;
  };

  using Callback = std::function<void()>;

  AsyncIoEngine(sim::Engine& engine, BlockDevice& device, Config config);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  /// libnf_write_data(): stage `bytes` for writing. `done` (optional) fires
  /// when the data reaches the device. After calling, the NF must check
  /// would_block() before processing further packets. In degraded kShed /
  /// kStuck mode (or past the staging cap) the write is dropped and `done`
  /// never fires.
  void write(std::uint64_t bytes, Callback done = {});

  /// libnf_read_data(): asynchronous read; `done` fires with the data
  /// "available" after the device round trip. Reads never block the NF —
  /// flow context rides in the callback, per the API in Fig. 6. `failed`
  /// (optional) fires instead when the read exhausts its retry budget, so
  /// callers observe errors rather than hanging.
  void read(std::uint64_t bytes, Callback done, Callback failed = {});

  /// True when the NF must yield: both buffers full (double-buffered) or a
  /// synchronous request is in flight. Degraded kShed/kStuck never blocks.
  [[nodiscard]] bool would_block() const;

  /// Invoked (from the I/O completion context) when would_block()
  /// transitions back to false — the manager uses it to wake the NF.
  void set_unblock_callback(Callback cb) { unblock_cb_ = std::move(cb); }

  /// Invoked once on entering degraded mode with policy kStuck; the NF
  /// wires it to stall() so the watchdog takes over.
  void set_fatal_callback(Callback cb) { fatal_cb_ = std::move(cb); }

  /// Invoked on every degraded-mode entry (true) and exit (false).
  void set_degrade_callback(std::function<void(bool)> cb) {
    degrade_cb_ = std::move(cb);
  }

  /// Project the engine's counters into the registry under the owning
  /// NF's scope ({"nf", owner_name}); sampled probes only. Null-safe.
  void set_observability(obs::Observability* obs,
                         const std::string& owner_name);

  /// Register the fault-domain counters (retries, timeouts, dropped
  /// writes, time-in-degraded, ...) under the same scope. Separate from
  /// set_observability and called by the platform only when the fault
  /// domain is active, so fault-free runs keep the seed metrics dump.
  /// Idempotent; requires set_observability first.
  void register_fault_metrics();

  /// True when a fault-domain knob is configured (the platform then
  /// registers the fault metrics even without device faults in the plan).
  [[nodiscard]] bool fault_domain_enabled() const {
    return config_.io_timeout > 0;
  }

  // -- config knobs mutable after construction (the config loader applies
  //    io_timeout / io_retry / on_io_fail directives to an attached
  //    engine). Affect requests issued from now on.
  void set_timeout(Cycles timeout) { config_.io_timeout = timeout; }
  void set_retry(std::uint32_t max_attempts, Cycles backoff,
                 double multiplier, double jitter) {
    config_.max_attempts = max_attempts;
    config_.retry_backoff = backoff;
    config_.backoff_multiplier = multiplier;
    config_.jitter_fraction = jitter;
  }
  void set_on_fail(OnIoFail policy) { config_.on_fail = policy; }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t block_transitions() const { return blocked_count_; }

  // -- fault-domain observers ----------------------------------------------
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] std::uint64_t dropped_writes() const { return dropped_writes_; }
  [[nodiscard]] std::uint64_t shed_bytes() const { return shed_bytes_; }
  [[nodiscard]] std::uint64_t degraded_entries() const {
    return degraded_entries_;
  }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }
  /// Cycles spent degraded so far, including the open span at `now`.
  [[nodiscard]] Cycles time_in_degraded(Cycles now) const {
    return time_in_degraded_ + (degraded_ ? now - degraded_since_ : 0);
  }
  /// Bytes currently staged for writing (bounded by max_staged_bytes).
  [[nodiscard]] std::uint64_t staged_bytes() const { return active_bytes_; }
  [[nodiscard]] std::size_t live_requests() const { return requests_.size(); }

 private:
  struct Request {
    enum class Kind { kFlush, kSyncWrite, kRead, kProbe };
    std::uint64_t id = 0;
    Kind kind = Kind::kFlush;
    RequestState state = RequestState::kPending;
    std::uint64_t bytes = 0;
    /// Staged write()s carried by this request (flush: the whole batch).
    std::uint64_t write_count = 0;
    std::uint32_t attempts = 0;
    BlockDevice::RequestId dev_req = BlockDevice::kInvalidRequest;
    sim::EventId deadline = sim::kInvalidEventId;
    sim::EventId retry_timer = sim::kInvalidEventId;
    std::vector<Callback> done_callbacks;  ///< Flush: staged write dones.
    Callback read_done;
    Callback read_failed;
  };

  void flush_active();
  void on_flush_complete();
  void maybe_unblock();
  [[nodiscard]] bool blocked_now() const;
  [[nodiscard]] std::uint64_t max_staged() const {
    return config_.max_staged_bytes > 0 ? config_.max_staged_bytes
                                        : 4 * config_.buffer_bytes;
  }
  [[nodiscard]] Cycles probe_period() const;

  Request& make_request(Request::Kind kind, std::uint64_t bytes);
  Request* find_request(std::uint64_t id);
  void erase_request(std::uint64_t id);
  void issue(Request& request);
  void on_device_complete(std::uint64_t id, const IoResult& result);
  void on_deadline(std::uint64_t id);
  void succeed(Request& request);
  void handle_attempt_failure(Request& request);
  void permanent_failure(Request& request);
  void shed_staged();
  void enter_degraded();
  void exit_degraded();
  void schedule_probe();
  void on_probe();
  [[nodiscard]] Cycles backoff_delay(std::uint32_t attempts);
  void trace(const char* name,
             std::vector<std::pair<std::string, std::int64_t>> num_args = {});

  sim::Engine& engine_;
  BlockDevice& device_;
  Config config_;
  nfv::Rng rng_;

  std::uint64_t active_bytes_ = 0;
  std::uint64_t staged_write_count_ = 0;
  std::vector<Callback> active_callbacks_;
  bool flush_in_flight_ = false;
  std::uint64_t sync_in_flight_ = 0;
  bool blocked_ = false;

  Callback unblock_cb_;
  Callback fatal_cb_;
  std::function<void(bool)> degrade_cb_;
  sim::EventId flush_timer_ = sim::kInvalidEventId;
  sim::EventId probe_event_ = sim::kInvalidEventId;

  std::vector<std::unique_ptr<Request>> requests_;
  std::uint64_t next_request_id_ = 1;
  /// Id of the permanently-failed request parked for re-issue by recovery
  /// probes (on_fail = kBlock); 0 = none.
  std::uint64_t parked_ = 0;

  bool degraded_ = false;
  Cycles degraded_since_ = 0;
  Cycles time_in_degraded_ = 0;

  obs::Observability* obs_ = nullptr;
  std::string owner_name_;
  bool fault_metrics_registered_ = false;

  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t blocked_count_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t dropped_writes_ = 0;
  std::uint64_t shed_bytes_ = 0;
  std::uint64_t degraded_entries_ = 0;
  std::uint64_t probes_ = 0;
};

const char* to_string(AsyncIoEngine::OnIoFail policy);
const char* to_string(AsyncIoEngine::RequestState state);

}  // namespace nfv::io
