// libnf's storage I/O engine: batched, double-buffered, asynchronous.
//
// §3.4: "Using batched asynchronous I/O with double buffering, libnf
// enables the NF implementation to put the processing of one or more
// packets on hold, while continuing processing of other packets unhindered.
// ... Double buffering enables libnf to service one set of I/O requests
// asynchronously while the other buffer is filled up by the NF. When both
// buffers are full, libnf suspends the execution of the NF and yields the
// CPU." The size of the batches and the flush interval are tunable by the
// NF implementation.
//
// The kSynchronous mode is the baseline Fig. 14 compares against: every
// write stalls the NF until the device completes it (no overlap).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include <string>

#include "io/block_device.hpp"
#include "obs/observability.hpp"
#include "sim/engine.hpp"

namespace nfv::io {

class AsyncIoEngine {
 public:
  enum class Mode {
    kSynchronous,     ///< Baseline: block the NF for every write.
    kDoubleBuffered,  ///< NFVnice libnf: overlap compute with flushes.
  };

  struct Config {
    Mode mode = Mode::kDoubleBuffered;
    std::uint64_t buffer_bytes = 64 * 1024;  ///< Batch (buffer) capacity.
    Cycles flush_interval = 0;  ///< 0 = flush only when a buffer fills.
  };

  using Callback = std::function<void()>;

  AsyncIoEngine(sim::Engine& engine, BlockDevice& device, Config config);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  /// libnf_write_data(): stage `bytes` for writing. `done` (optional) fires
  /// when the data reaches the device. After calling, the NF must check
  /// would_block() before processing further packets.
  void write(std::uint64_t bytes, Callback done = {});

  /// libnf_read_data(): asynchronous read; `done` fires with the data
  /// "available" after the device round trip. Reads never block the NF —
  /// flow context rides in the callback, per the API in Fig. 6.
  void read(std::uint64_t bytes, Callback done);

  /// True when the NF must yield: both buffers full (double-buffered) or a
  /// synchronous request is in flight.
  [[nodiscard]] bool would_block() const;

  /// Invoked (from the I/O completion context) when would_block()
  /// transitions back to false — the manager uses it to wake the NF.
  void set_unblock_callback(Callback cb) { unblock_cb_ = std::move(cb); }

  /// Project the engine's counters into the registry under the owning
  /// NF's scope ({"nf", owner_name}); sampled probes only. Null-safe.
  void set_observability(obs::Observability* obs,
                         const std::string& owner_name);

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t block_transitions() const { return blocked_count_; }

 private:
  void flush_active();
  void on_flush_complete();
  void maybe_unblock();

  sim::Engine& engine_;
  BlockDevice& device_;
  Config config_;

  std::uint64_t active_bytes_ = 0;
  std::vector<Callback> active_callbacks_;
  bool flush_in_flight_ = false;
  std::uint64_t sync_in_flight_ = 0;
  bool blocked_ = false;

  Callback unblock_cb_;
  sim::EventId flush_timer_ = sim::kInvalidEventId;

  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t blocked_count_ = 0;
};

}  // namespace nfv::io
