// Service chain definitions.
//
// A service chain is an ordered list of NFs a packet traverses (§1, RFC
// 7665). Chains are configured at startup from configuration (or an SDN
// controller, §3.1); NFVnice's backpressure is *chain-selective*: an
// overloaded NF throttles exactly the chains that pass through it (Fig. 5),
// and chains may be defined at flow granularity to minimise head-of-line
// blocking (§3.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfv::flow {

using NfId = std::uint32_t;
using ChainId = std::uint32_t;

inline constexpr ChainId kInvalidChain = 0xffffffffu;

struct ServiceChain {
  ChainId id = kInvalidChain;
  std::string name;
  std::vector<NfId> hops;  ///< NF ids in traversal order.

  [[nodiscard]] std::size_t length() const { return hops.size(); }
};

/// Registry of all configured chains, with reverse indices the backpressure
/// subsystem needs: which chains pass through a given NF, and at what
/// position.
class ChainRegistry {
 public:
  /// Register a chain; returns its id. `hops` must be non-empty.
  ChainId add(std::string name, std::vector<NfId> hops);

  [[nodiscard]] const ServiceChain& get(ChainId id) const {
    return chains_.at(id);
  }
  [[nodiscard]] std::size_t size() const { return chains_.size(); }

  /// All chains that include `nf` (any position).
  [[nodiscard]] const std::vector<ChainId>& chains_through(NfId nf) const;

  /// Position of `nf` within `chain` (first occurrence), or -1.
  [[nodiscard]] int position_of(ChainId chain, NfId nf) const;

  /// NFs strictly upstream of `nf` in `chain` (positions before it).
  [[nodiscard]] std::vector<NfId> upstream_of(ChainId chain, NfId nf) const;

 private:
  std::vector<ServiceChain> chains_;
  std::vector<std::vector<ChainId>> through_;  // indexed by NfId
  static const std::vector<ChainId> kEmpty;
};

}  // namespace nfv::flow
