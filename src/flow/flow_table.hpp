// Exact-match flow table: 5-tuple -> (flow id, service chain).
//
// The NF Manager's Rx threads "do a lookup in the Flow Table to direct the
// packet to the appropriate NF" (§3.1). Rules are installed by the Flow
// Rule Installer (our benches install them directly); each rule assigns the
// flow a dense id used for per-flow statistics and ECN bookkeeping.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flow/service_chain.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::flow {

using FlowId = std::uint32_t;

struct FlowEntry {
  FlowId flow_id = 0;
  ChainId chain = kInvalidChain;
  pktio::FlowKey key;
};

class FlowTable {
 public:
  /// Install a rule mapping `key` to `chain`. Returns the dense flow id
  /// (re-installing an existing key updates the chain, keeping the id).
  FlowId install(const pktio::FlowKey& key, ChainId chain);

  /// Lookup; nullptr on miss (the manager drops unmatched packets).
  [[nodiscard]] const FlowEntry* lookup(const pktio::FlowKey& key) const;

  [[nodiscard]] const FlowEntry& entry(FlowId id) const { return entries_.at(id); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<pktio::FlowKey, FlowId, pktio::FlowKeyHash> map_;
  std::vector<FlowEntry> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace nfv::flow
