// Exact-match flow table: 5-tuple -> (flow id, service chain).
//
// The NF Manager's Rx threads "do a lookup in the Flow Table to direct the
// packet to the appropriate NF" (§3.1). Rules are installed by the Flow
// Rule Installer (our benches install them directly); each rule assigns the
// flow a dense id used for per-flow statistics and ECN bookkeeping.
//
// Backed by the flow-state library (FlowStore: open-addressing FlowMap +
// IndexPool + Expirator) instead of std::unordered_map, so the data-plane
// lookup is one probe over flat slots and — when an idle timeout is
// configured — flows age out of the table in O(expired) sweeps, their dense
// ids returning to the pool for reuse. The default configuration (grow on
// demand, no expiry) reproduces the historical behaviour exactly: ids are
// handed out 0,1,2,... and never reclaimed.
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"
#include "flow/flow_store.hpp"
#include "flow/service_chain.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::flow {

using FlowId = std::uint32_t;

struct FlowEntry {
  FlowId flow_id = 0;
  ChainId chain = kInvalidChain;
  pktio::FlowKey key;
};

class FlowTable {
 public:
  struct Config {
    /// Initial arena size; the table doubles itself when full.
    std::uint32_t initial_capacity = 1024;
    /// Cycles without a matching packet after which the periodic sweep
    /// reclaims a flow (its dense id is reused). 0 = flows never expire —
    /// the historical behaviour, and the default.
    Cycles idle_timeout = 0;
    /// Expiry sweep cadence (only used when idle_timeout > 0).
    Cycles scan_period = 2'600'000;  ///< 1 ms at 2.6 GHz.
  };

  using ExpiryListener = std::function<void(const FlowEntry&)>;

  FlowTable() : FlowTable(Config{}) {}
  explicit FlowTable(Config config);

  /// Install a rule mapping `key` to `chain`. Returns the dense flow id
  /// (re-installing an existing key updates the chain, keeping the id).
  /// `now` stamps the flow's expiry slot when timeouts are on.
  FlowId install(const pktio::FlowKey& key, ChainId chain, Cycles now = 0);

  /// Lookup; nullptr on miss (the manager drops unmatched packets).
  [[nodiscard]] const FlowEntry* lookup(const pktio::FlowKey& key) const;

  /// Data-plane lookup: additionally refreshes the flow's last-touch time
  /// so active flows stay ahead of the expiry sweep.
  [[nodiscard]] const FlowEntry* lookup(const pktio::FlowKey& key, Cycles now);

  /// Reclaim flows idle past the timeout as of `now`; returns the number
  /// expired. The expiry listener (if any) sees each entry before its id
  /// is freed. No-op when idle_timeout is 0.
  std::size_t expire(Cycles now);

  /// Fires once per expired flow, before the id returns to the pool.
  void set_expiry_listener(ExpiryListener listener) {
    expiry_listener_ = std::move(listener);
  }

  [[nodiscard]] const FlowEntry& entry(FlowId id) const {
    return store_.state(id);
  }
  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] double load_factor() const { return store_.load_factor(); }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t installs() const { return store_.installs(); }
  [[nodiscard]] std::uint64_t expirations() const {
    return store_.expirations();
  }

  [[nodiscard]] bool expiry_enabled() const { return config_.idle_timeout > 0; }
  [[nodiscard]] Cycles idle_timeout() const { return config_.idle_timeout; }
  [[nodiscard]] Cycles scan_period() const { return config_.scan_period; }

  /// The underlying store (invariant checks in tests).
  [[nodiscard]] const FlowStore<pktio::FlowKey, FlowEntry>& store() const {
    return store_;
  }

 private:
  Config config_;
  FlowStore<pktio::FlowKey, FlowEntry> store_;
  ExpiryListener expiry_listener_;
  // Lookup accounting only: installs don't count as table traffic (the
  // historical counter semantics, pinned by flow_table_test).
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace nfv::flow
