// FlowStore: the map / index-pool / expirator composite every stateful
// per-flow code path sits on (the vigor map + vector + double-chain idiom).
//
//   FlowMap     key -> dense index          (open addressing, flat slots)
//   IndexPool   allocates the dense index   (free list, double-free checks)
//   Expirator   orders indices by last touch (intrusive LRU chain)
//   keys_/states_  per-index arenas          (the "vectors")
//
// All four structures are sized at construction; install/lookup/expire
// allocate nothing in steady state. When the arena is exhausted the store
// either evicts the least-recently-touched flow (middlebox tables: NAT port
// exhaustion, monitor caches) or — for the platform flow table, which must
// keep growing like the unordered_map it replaced — doubles the arena and
// rebuilds the map, preserving every live index and the chain order.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/time.hpp"
#include "flow/expirator.hpp"
#include "flow/flow_map.hpp"
#include "flow/index_pool.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::flow {

/// Which path an install() took — the per-packet cost classes of a real
/// stateful NF (hit refreshes state, a miss allocates, an eviction tears
/// down one flow to admit another).
enum class StorePath : std::uint8_t { kHit, kNew, kEvicted, kFull };

template <typename Key = pktio::FlowKey, typename State = std::uint32_t,
          typename Hash = FlowKeyFastHash>
class FlowStore {
 public:
  static constexpr std::uint32_t kNoIndex = IndexPool::kNoIndex;

  struct Config {
    std::uint32_t max_flows = 1024;
    /// Idle time after which expire() reclaims a flow; 0 = never.
    Cycles idle_timeout = 0;
    /// Full table: evict the least-recently-touched flow (true) or fail
    /// the install with kFull (false). Ignored when auto_grow is set.
    bool evict_lru_when_full = true;
    /// Full table: double max_flows and rebuild instead of evicting.
    bool auto_grow = false;
    /// Explicit FlowMap capacity (power of two > max_flows); 0 derives
    /// one that keeps the map's load factor at or below ~0.85.
    std::uint32_t map_capacity = 0;
  };

  struct InstallResult {
    std::uint32_t index = kNoIndex;
    StorePath path = StorePath::kFull;
  };

  using EvictListener = std::function<void(std::uint32_t, const Key&, State&)>;

  explicit FlowStore(Config config)
      : config_(config),
        map_(config.map_capacity != 0 ? config.map_capacity
                                      : derive_map_capacity(config.max_flows)),
        pool_(config.max_flows),
        chain_(config.max_flows),
        keys_(config.max_flows),
        states_(config.max_flows) {
    assert(map_.capacity() > config_.max_flows &&
           "map capacity must exceed the index arena");
  }

  /// Get-or-create the flow for `key`, touching its expiry slot. The path
  /// says whether this was a hit, a fresh install, or an install that had
  /// to evict the oldest flow; kFull only when eviction/growth are off.
  InstallResult install(const Key& key, Cycles now) {
    if (std::uint32_t* idx = map_.find(key)) {
      chain_.touch(*idx, now);
      ++hits_;
      return {*idx, StorePath::kHit};
    }
    ++misses_;
    StorePath path = StorePath::kNew;
    if (pool_.available() == 0) {
      if (config_.auto_grow) {
        grow();
      } else if (config_.evict_lru_when_full && chain_.size() > 0) {
        evict_oldest();
        path = StorePath::kEvicted;
      } else {
        return {kNoIndex, StorePath::kFull};
      }
    }
    const std::uint32_t idx = pool_.alloc();
    assert(idx != kNoIndex);
    keys_[idx] = key;
    states_[idx] = State{};
    const bool inserted = map_.insert(key, idx);
    assert(inserted && "map sized above the arena can never fill");
    (void)inserted;
    chain_.push_back(idx, now);
    ++installs_;
    return {idx, path};
  }

  /// Index of `key`, refreshing its expiry slot; kNoIndex on miss.
  std::uint32_t lookup(const Key& key, Cycles now) {
    if (std::uint32_t* idx = map_.find(key)) {
      chain_.touch(*idx, now);
      ++hits_;
      return *idx;
    }
    ++misses_;
    return kNoIndex;
  }

  /// Side-effect-free probe: no touch, no hit/miss accounting.
  [[nodiscard]] std::uint32_t peek(const Key& key) const {
    const std::uint32_t* idx = map_.find(key);
    return idx != nullptr ? *idx : kNoIndex;
  }

  /// Remove a flow by key; false when absent.
  bool erase(const Key& key) {
    std::uint32_t* idx = map_.find(key);
    if (idx == nullptr) return false;
    const std::uint32_t victim = *idx;
    map_.erase(key);
    chain_.remove(victim);
    pool_.free(victim);
    return true;
  }

  /// Reclaim flows idle for longer than idle_timeout as of `now`, oldest
  /// first; `fn(index, key, state)` runs for each while its arena slots
  /// are still intact. No-op (returns 0) when idle_timeout is 0.
  template <typename Fn>
  std::size_t expire(Cycles now, Fn&& fn) {
    if (config_.idle_timeout <= 0) return 0;
    const Cycles deadline = now - config_.idle_timeout;
    return chain_.expire_before(deadline, [&](std::uint32_t idx) {
      map_.erase(keys_[idx]);
      fn(idx, keys_[idx], states_[idx]);
      pool_.free(idx);
      ++expirations_;
    });
  }
  std::size_t expire(Cycles now) {
    return expire(now, [](std::uint32_t, const Key&, State&) {});
  }

  [[nodiscard]] State& state(std::uint32_t idx) {
    assert(pool_.is_allocated(idx));
    return states_[idx];
  }
  [[nodiscard]] const State& state(std::uint32_t idx) const {
    assert(pool_.is_allocated(idx));
    return states_[idx];
  }
  [[nodiscard]] const Key& key_of(std::uint32_t idx) const {
    assert(pool_.is_allocated(idx));
    return keys_[idx];
  }

  /// Visit every live flow in oldest-to-newest touch order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t idx = chain_.oldest(); idx != Expirator::kNil;
         idx = chain_.next_newer(idx)) {
      fn(idx, keys_[idx], states_[idx]);
    }
  }

  void set_evict_listener(EvictListener listener) {
    evict_listener_ = std::move(listener);
  }

  /// Flush every flow (e.g. a rule change invalidating a verdict cache).
  void clear() {
    map_.clear();
    chain_.clear();
    pool_.clear();
  }

  [[nodiscard]] std::size_t size() const { return chain_.size(); }
  [[nodiscard]] std::uint32_t max_flows() const { return pool_.capacity(); }
  [[nodiscard]] double load_factor() const { return map_.load_factor(); }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t installs() const { return installs_; }
  [[nodiscard]] std::uint64_t expirations() const { return expirations_; }
  [[nodiscard]] std::uint64_t lru_evictions() const { return lru_evictions_; }

  // Introspection for the property/invariant harness.
  [[nodiscard]] const IndexPool& pool() const { return pool_; }
  [[nodiscard]] const Expirator& expirator() const { return chain_; }
  [[nodiscard]] const FlowMap<Key, std::uint32_t, Hash>& map() const {
    return map_;
  }

 private:
  static std::uint32_t derive_map_capacity(std::uint32_t max_flows) {
    // Smallest power of two keeping occupancy <= ~0.85 when the arena is
    // full (and always at least one slot above it).
    std::uint32_t cap = 8;
    while (cap <= max_flows ||
           static_cast<double>(max_flows) > 0.85 * static_cast<double>(cap)) {
      cap <<= 1;
    }
    return cap;
  }

  void evict_oldest() {
    const std::uint32_t idx = chain_.oldest();
    assert(idx != Expirator::kNil);
    chain_.remove(idx);
    map_.erase(keys_[idx]);
    if (evict_listener_) evict_listener_(idx, keys_[idx], states_[idx]);
    pool_.free(idx);
    ++lru_evictions_;
  }

  void grow() {
    const std::uint32_t new_max = pool_.capacity() * 2;
    pool_.grow(new_max);
    chain_.grow(new_max);
    keys_.resize(new_max);
    states_.resize(new_max);
    FlowMap<Key, std::uint32_t, Hash> bigger(derive_map_capacity(new_max));
    for (std::uint32_t idx = chain_.oldest(); idx != Expirator::kNil;
         idx = chain_.next_newer(idx)) {
      bigger.insert(keys_[idx], idx);
    }
    map_ = std::move(bigger);
  }

  Config config_;
  FlowMap<Key, std::uint32_t, Hash> map_;
  IndexPool pool_;
  Expirator chain_;
  std::vector<Key> keys_;
  std::vector<State> states_;
  EvictListener evict_listener_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t installs_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t lru_evictions_ = 0;
};

}  // namespace nfv::flow
