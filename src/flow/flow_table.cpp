#include "flow/flow_table.hpp"

namespace nfv::flow {

namespace {

FlowStore<pktio::FlowKey, FlowEntry>::Config store_config(
    const FlowTable::Config& cfg) {
  FlowStore<pktio::FlowKey, FlowEntry>::Config sc;
  sc.max_flows = cfg.initial_capacity;
  sc.idle_timeout = cfg.idle_timeout;
  // The platform table must accept every rule the installer pushes: grow
  // on demand, never evict a live rule to make room.
  sc.auto_grow = true;
  sc.evict_lru_when_full = false;
  return sc;
}

}  // namespace

FlowTable::FlowTable(Config config)
    : config_(config), store_(store_config(config)) {}

FlowId FlowTable::install(const pktio::FlowKey& key, ChainId chain,
                          Cycles now) {
  const auto result = store_.install(key, now);
  FlowEntry& entry = store_.state(result.index);
  if (result.path == StorePath::kHit) {
    entry.chain = chain;
    return entry.flow_id;
  }
  entry.flow_id = result.index;
  entry.chain = chain;
  entry.key = key;
  return result.index;
}

const FlowEntry* FlowTable::lookup(const pktio::FlowKey& key) const {
  const std::uint32_t idx = store_.peek(key);
  if (idx == FlowStore<pktio::FlowKey, FlowEntry>::kNoIndex) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &store_.state(idx);
}

const FlowEntry* FlowTable::lookup(const pktio::FlowKey& key, Cycles now) {
  const std::uint32_t idx = store_.lookup(key, now);
  if (idx == FlowStore<pktio::FlowKey, FlowEntry>::kNoIndex) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &store_.state(idx);
}

std::size_t FlowTable::expire(Cycles now) {
  return store_.expire(now, [this](std::uint32_t, const pktio::FlowKey&,
                                   FlowEntry& entry) {
    if (expiry_listener_) expiry_listener_(entry);
  });
}

}  // namespace nfv::flow
