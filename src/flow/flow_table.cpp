#include "flow/flow_table.hpp"

namespace nfv::flow {

FlowId FlowTable::install(const pktio::FlowKey& key, ChainId chain) {
  if (auto it = map_.find(key); it != map_.end()) {
    entries_[it->second].chain = chain;
    return it->second;
  }
  const auto id = static_cast<FlowId>(entries_.size());
  entries_.push_back(FlowEntry{id, chain, key});
  map_.emplace(key, id);
  return id;
}

const FlowEntry* FlowTable::lookup(const pktio::FlowKey& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &entries_[it->second];
}

}  // namespace nfv::flow
