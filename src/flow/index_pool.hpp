// Free-list index allocator for arena-backed flow state.
//
// Per-flow state lives in dense arrays ("vectors" in the vigor idiom); the
// IndexPool hands out array slots in O(1) with zero allocation in steady
// state. Fresh indices come out in ascending order (so a NAT handing out
// port_base + index allocates ports sequentially, like the real NAPT box),
// and freed indices are recycled most-recently-freed first. The pool keeps
// a per-slot allocated bit so a double free — the classic flow-expiry bug —
// trips an assert in debug builds instead of silently handing the same slot
// to two flows; the property harness cross-checks the bit directly.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace nfv::flow {

class IndexPool {
 public:
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  explicit IndexPool(std::uint32_t capacity) { grow(capacity); }

  /// Take a free index; kNoIndex when exhausted.
  std::uint32_t alloc() {
    if (free_head_ == kNoIndex) return kNoIndex;
    const std::uint32_t idx = free_head_;
    free_head_ = next_free_[idx];
    assert(!allocated_[idx] && "free list handed out a live index");
    allocated_[idx] = 1;
    ++allocated_count_;
    return idx;
  }

  /// Return `idx` to the pool. Freeing an index that is not currently
  /// allocated is a double free; debug builds assert, release builds
  /// ignore it (the slot stays consistent either way).
  void free(std::uint32_t idx) {
    assert(idx < capacity());
    assert(allocated_[idx] && "double free of pool index");
    if (!allocated_[idx]) return;
    allocated_[idx] = 0;
    next_free_[idx] = free_head_;
    free_head_ = idx;
    --allocated_count_;
  }

  [[nodiscard]] bool is_allocated(std::uint32_t idx) const {
    return idx < capacity() && allocated_[idx] != 0;
  }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(next_free_.size());
  }
  [[nodiscard]] std::uint32_t allocated() const { return allocated_count_; }
  [[nodiscard]] std::uint32_t available() const {
    return capacity() - allocated_count_;
  }

  /// Extend the pool: indices [old_capacity, new_capacity) join the free
  /// list, ascending before any previously freed slots. Live indices are
  /// untouched, so growth never invalidates a flow.
  void grow(std::uint32_t new_capacity) {
    const std::uint32_t old = capacity();
    if (new_capacity <= old) return;
    next_free_.resize(new_capacity);
    allocated_.resize(new_capacity, 0);
    for (std::uint32_t i = old; i + 1 < new_capacity; ++i) next_free_[i] = i + 1;
    next_free_[new_capacity - 1] = free_head_;
    free_head_ = old;
  }

  /// Release everything (bulk reset, e.g. a flow cache flush).
  void clear() {
    const std::uint32_t cap = capacity();
    for (std::uint32_t i = 0; i < cap; ++i) {
      next_free_[i] = i + 1 < cap ? i + 1 : kNoIndex;
      allocated_[i] = 0;
    }
    free_head_ = cap > 0 ? 0 : kNoIndex;
    allocated_count_ = 0;
  }

 private:
  std::vector<std::uint32_t> next_free_;  ///< Next free index, per slot.
  std::vector<std::uint8_t> allocated_;   ///< Live bit, per slot.
  std::uint32_t free_head_ = kNoIndex;
  std::uint32_t allocated_count_ = 0;
};

}  // namespace nfv::flow
