// Open-addressing exact-match map: the flow table's hot lookup path.
//
// Power-of-two capacity, linear probing, keys and values inline in one flat
// slot array (one cache line candidate per probe — a node-based
// std::unordered_map pays a bucket-head load plus a node chase per lookup).
// Deletion uses backward shifting rather than tombstones, so steady-state
// churn never degrades probe lengths and the map allocates exactly once, at
// construction. Capacity is fixed; the owner (FlowStore) bounds the load
// factor by sizing the map above its index arena and grows by rebuilding.
//
// find_batch() software-pipelines lookups: hashes are computed ahead and
// the home slots prefetched kPrefetchDistance keys early, so a miss to DRAM
// overlaps the previous lookups instead of stalling each one — the standard
// dataplane trick behind multi-million-lookup/sec flow tables at sizes far
// beyond the LLC.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pktio/flow_key.hpp"

namespace nfv::flow {

/// Multiplicative mixer over the packed 5-tuple. FNV-1a (FlowKeyHash)
/// walks the tuple a byte at a time — 13 dependent multiplies; this packs
/// the tuple into two words and applies a splitmix-style finalizer, which
/// probes equally well under linear probing at a fraction of the cost.
struct FlowKeyFastHash {
  std::uint64_t operator()(const pktio::FlowKey& key) const {
    const std::uint64_t a =
        (static_cast<std::uint64_t>(key.src_ip) << 32) | key.dst_ip;
    const std::uint64_t b = (static_cast<std::uint64_t>(key.src_port) << 24) |
                            (static_cast<std::uint64_t>(key.dst_port) << 8) |
                            key.proto;
    std::uint64_t h = (a ^ 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
    h ^= (b + 0x9e3779b97f4a7c15ULL) * 0x94d049bb133111ebULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return h;
  }
};

template <typename Key = pktio::FlowKey, typename Value = std::uint32_t,
          typename Hash = FlowKeyFastHash>
class FlowMap {
 public:
  /// Rounded up to a power of two, minimum 8. The map refuses inserts at
  /// capacity - 1 occupancy: linear probing needs one empty slot so every
  /// unsuccessful probe terminates.
  explicit FlowMap(std::size_t min_capacity) {
    std::size_t cap = 8;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Pointer to the value for `key`; nullptr when absent. Stable until the
  /// next erase() or clear().
  [[nodiscard]] Value* find(const Key& key) {
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] const Value* find(const Key& key) const {
    return const_cast<FlowMap*>(this)->find(key);
  }

  /// Batched lookup with software prefetch: out[i] receives the value
  /// pointer for keys[i] (nullptr on miss). Probe results are identical to
  /// n scalar find() calls; only the memory-level parallelism differs.
  /// Two-phase per block: hash and prefetch every home slot first, then
  /// resolve the probes — a block's worth of DRAM misses overlap instead
  /// of the handful the out-of-order window can keep in flight.
  void find_batch(const Key* keys, std::size_t n, Value** out) const {
    constexpr std::size_t kBlock = 32;
    std::size_t homes[kBlock];
    for (std::size_t base = 0; base < n; base += kBlock) {
      const std::size_t m = n - base < kBlock ? n - base : kBlock;
      for (std::size_t i = 0; i < m; ++i) {
        homes[i] = home(keys[base + i]);
        __builtin_prefetch(&slots_[homes[i]], /*rw=*/0, /*locality=*/1);
      }
      for (std::size_t i = 0; i < m; ++i) {
        out[base + i] = find_from(homes[i], keys[base + i]);
      }
    }
  }

  /// Hint the cache about `key`'s home slot ahead of a find().
  void prefetch(const Key& key) const {
    __builtin_prefetch(&slots_[home(key)], /*rw=*/0, /*locality=*/1);
  }

  /// Insert a key that must not be present. False when the map is at its
  /// occupancy limit (capacity - 1); the caller grows or evicts.
  bool insert(const Key& key, const Value& value) {
    if (size_ + 1 >= slots_.size()) return false;
    std::size_t i = home(key);
    while (slots_[i].used) {
      assert(!(slots_[i].key == key) && "insert of a key already present");
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = value;
    slots_[i].used = 1;
    ++size_;
    return true;
  }

  /// Remove `key`, backward-shifting the probe chain so no tombstone is
  /// left behind. False when absent.
  bool erase(const Key& key) {
    std::size_t i = home(key);
    while (true) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    // Walk the cluster after i; any entry whose home position lies outside
    // the cyclic interval (i, j] may legally move into the vacated slot
    // (its probe would have passed through i). Repeat from the new hole.
    std::size_t j = i;
    while (true) {
      slots_[i].used = 0;
      while (true) {
        j = (j + 1) & mask_;
        if (!slots_[j].used) {
          --size_;
          return true;
        }
        const std::size_t h = home(slots_[j].key);
        if (((j - h) & mask_) >= ((j - i) & mask_)) break;
      }
      slots_[i].key = slots_[j].key;
      slots_[i].value = slots_[j].value;
      slots_[i].used = 1;
      i = j;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(slots_.size());
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used) fn(slot.key, slot.value);
    }
  }

  void clear() {
    for (Slot& slot : slots_) slot.used = 0;
    size_ = 0;
  }

 private:
  /// Key, value and occupancy byte share the slot so a probe touches one
  /// cache line, not a slot array plus a side bitmap.
  struct Slot {
    Key key{};
    Value value{};
    std::uint8_t used = 0;
  };

  [[nodiscard]] std::size_t home(const Key& key) const {
    return static_cast<std::size_t>(Hash{}(key)) & mask_;
  }

  /// find() resuming from an already-computed home slot (batched path).
  [[nodiscard]] Value* find_from(std::size_t i, const Key& key) const {
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        return const_cast<Value*>(&slots_[i].value);
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nfv::flow
