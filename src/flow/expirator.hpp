// Time-ordered expiry chain over pool indices (vigor's double-chain).
//
// An intrusive doubly-linked list threaded through two dense arrays keeps
// flows ordered by last touch: install appends, a hit moves the flow to the
// tail, and the sweep pops from the head while entries are older than the
// deadline — O(expired), never O(table). Because links are arrays indexed
// by the pool index, the chain allocates nothing after construction and a
// stale link (expiring a freed index, touching an unlinked one) is caught
// by asserts rather than corrupting the list.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace nfv::flow {

class Expirator {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  explicit Expirator(std::uint32_t capacity) { grow(capacity); }

  /// Link `idx` as the most recently touched entry.
  void push_back(std::uint32_t idx, Cycles now) {
    assert(idx < capacity());
    assert(!linked_[idx] && "index already on the chain");
    linked_[idx] = 1;
    last_touch_[idx] = now;
    prev_[idx] = tail_;
    next_[idx] = kNil;
    if (tail_ != kNil) {
      next_[tail_] = idx;
    } else {
      head_ = idx;
    }
    tail_ = idx;
    ++size_;
  }

  /// Refresh `idx`: record the touch time and move it to the tail.
  void touch(std::uint32_t idx, Cycles now) {
    assert(idx < capacity());
    assert(linked_[idx] && "touching an index that is not on the chain");
    last_touch_[idx] = now;
    if (tail_ == idx) return;  // already newest
    unlink(idx);
    prev_[idx] = tail_;
    next_[idx] = kNil;
    next_[tail_] = idx;
    tail_ = idx;
  }

  /// Unlink `idx` (eviction or explicit erase).
  void remove(std::uint32_t idx) {
    assert(idx < capacity());
    assert(linked_[idx] && "removing an index that is not on the chain");
    unlink(idx);
    linked_[idx] = 0;
    --size_;
  }

  /// Pop entries from the oldest end while their last touch is strictly
  /// before `deadline`; `fn(idx)` runs after the entry left the chain, so
  /// it may free the index immediately. Returns the number expired.
  template <typename Fn>
  std::size_t expire_before(Cycles deadline, Fn&& fn) {
    std::size_t expired = 0;
    while (head_ != kNil && last_touch_[head_] < deadline) {
      const std::uint32_t idx = head_;
      remove(idx);
      ++expired;
      fn(idx);
    }
    return expired;
  }

  [[nodiscard]] bool linked(std::uint32_t idx) const {
    return idx < capacity() && linked_[idx] != 0;
  }
  [[nodiscard]] Cycles last_touch(std::uint32_t idx) const {
    assert(linked(idx));
    return last_touch_[idx];
  }
  [[nodiscard]] std::uint32_t oldest() const { return head_; }
  [[nodiscard]] std::uint32_t newest() const { return tail_; }
  /// Next entry in oldest-to-newest order (chain iteration for rebuilds
  /// and invariant checks); kNil at the end.
  [[nodiscard]] std::uint32_t next_newer(std::uint32_t idx) const {
    assert(linked(idx));
    return next_[idx];
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(next_.size());
  }

  /// Extend the link arrays; existing chain order is untouched.
  void grow(std::uint32_t new_capacity) {
    if (new_capacity <= capacity()) return;
    next_.resize(new_capacity, kNil);
    prev_.resize(new_capacity, kNil);
    last_touch_.resize(new_capacity, 0);
    linked_.resize(new_capacity, 0);
  }

  void clear() {
    while (head_ != kNil) remove(head_);
  }

 private:
  void unlink(std::uint32_t idx) {
    const std::uint32_t p = prev_[idx];
    const std::uint32_t n = next_[idx];
    if (p != kNil) next_[p] = n; else head_ = n;
    if (n != kNil) prev_[n] = p; else tail_ = p;
  }

  std::vector<std::uint32_t> next_;  ///< Toward newer entries.
  std::vector<std::uint32_t> prev_;  ///< Toward older entries.
  std::vector<Cycles> last_touch_;
  std::vector<std::uint8_t> linked_;
  std::uint32_t head_ = kNil;  ///< Oldest.
  std::uint32_t tail_ = kNil;  ///< Newest.
  std::size_t size_ = 0;
};

}  // namespace nfv::flow
