#include "flow/service_chain.hpp"

#include <algorithm>
#include <cassert>

namespace nfv::flow {

const std::vector<ChainId> ChainRegistry::kEmpty{};

ChainId ChainRegistry::add(std::string name, std::vector<NfId> hops) {
  assert(!hops.empty() && "a service chain needs at least one NF");
  const auto id = static_cast<ChainId>(chains_.size());
  for (NfId nf : hops) {
    if (nf >= through_.size()) through_.resize(nf + 1);
    auto& list = through_[nf];
    if (std::find(list.begin(), list.end(), id) == list.end()) {
      list.push_back(id);
    }
  }
  chains_.push_back(ServiceChain{id, std::move(name), std::move(hops)});
  return id;
}

const std::vector<ChainId>& ChainRegistry::chains_through(NfId nf) const {
  if (nf >= through_.size()) return kEmpty;
  return through_[nf];
}

int ChainRegistry::position_of(ChainId chain, NfId nf) const {
  const auto& hops = chains_.at(chain).hops;
  const auto it = std::find(hops.begin(), hops.end(), nf);
  return it == hops.end() ? -1 : static_cast<int>(it - hops.begin());
}

std::vector<NfId> ChainRegistry::upstream_of(ChainId chain, NfId nf) const {
  std::vector<NfId> result;
  for (NfId hop : chains_.at(chain).hops) {
    if (hop == nf) break;
    result.push_back(hop);
  }
  return result;
}

}  // namespace nfv::flow
