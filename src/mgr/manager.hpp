// The NF Manager (§3.1, Fig. 2).
//
// In OpenNetVM/NFVnice the manager's Rx, Tx, Wakeup and Monitor threads run
// on dedicated cores and ferry packet descriptors between the NIC and NF
// rings over shared memory. Here each thread is an event-driven actor:
//
//  * Rx path   — ingress(): flow-table lookup, chain-entry admission
//                (selective early discard for throttled chains), enqueue to
//                the first NF with ECN marking and watermark feedback.
//  * Tx path   — per-NF drain events: move processed packets to the next NF
//                in the chain (zero-copy descriptor hand-off) or out the
//                wire; detect overload from the enqueue return value (§3.5).
//  * Wakeup    — periodic scan that advances the backpressure state machine,
//                sets/clears relinquish flags, and posts semaphores of NFs
//                with pending work (§3.2 "Activating NFs", §3.5).
//  * Monitor   — 1 ms load estimation (load = λ·s with s the median sampled
//                service time) and 10 ms cgroup cpu.shares updates
//                implementing Shares_i = Priority_i · load(i)/TotalLoad(m).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bp/admission.hpp"
#include "bp/backpressure.hpp"
#include "bp/ecn.hpp"
#include "common/histogram.hpp"
#include "fault/injector.hpp"
#include "fault/lifecycle.hpp"
#include "flow/flow_table.hpp"
#include "flow/service_chain.hpp"
#include "mgr/shard_link.hpp"
#include "nf/nf_task.hpp"
#include "obs/latency_estimator.hpp"
#include "obs/observability.hpp"
#include "pktio/flow_key.hpp"
#include "pktio/mempool.hpp"
#include "sched/cgroup.hpp"
#include "sched/core.hpp"
#include "sim/engine.hpp"

namespace nfv::mgr {

struct ManagerConfig {
  // Feature toggles (the paper's "CGroup", "BKPR" and full-NFVnice bars).
  bool enable_cgroups = true;
  bool enable_backpressure = true;
  bool enable_ecn = true;

  /// Wake an NF directly from the enqueue path (netmap/ClickOS-style,
  /// §3.2's comparison). NFVnice instead lets the Wakeup thread post the
  /// semaphores (§3.1: "the Wakeup subsystem brings the NF process into
  /// the runnable state"), which naturally coalesces wakeups to the scan
  /// period — per-packet zero-latency wakes would hammer SCHED_NORMAL
  /// with a wakeup-preemption storm no real semaphore could sustain.
  bool wake_on_arrival = false;

  /// Latency for a Tx thread to notice and move a processed packet
  /// (manager runs on its own cores; ~100 ns).
  Cycles tx_drain_latency = 260;
  std::uint32_t tx_burst = 32;

  /// Wakeup-thread scan period. The paper dedicates a spinning core to the
  /// Wakeup thread, so its effective cadence is microseconds; 10 us keeps
  /// the detect->throttle loop tight while still giving the hysteresis the
  /// Tx/Wakeup separation provides (§3.5).
  Cycles wakeup_period = 26'000;

  /// Wakeup coalescing (§3.2: the activation policy "considers the number
  /// of packets pending in its queue"). The Wakeup thread posts a blocked
  /// NF's semaphore only once it has at least `wake_min_pending` packets
  /// queued — unless the head packet has already waited
  /// `wake_age_threshold` cycles (bounds added latency; 0 disables the
  /// age escape). Defaults preserve wake-on-any-pending behaviour.
  std::uint32_t wake_min_pending = 1;
  Cycles wake_age_threshold = 0;
  Cycles monitor_period = 2'600'000;   ///< 1 ms load estimation (§3.5).
  std::uint32_t share_updates_every = 10;  ///< cgroup writes every 10 ms.
  /// Scale factor from load fraction to cpu.shares.
  double share_scale = 10240.0;
  /// Floor on any loaded NF's shares (~0.5% of scale). §2.1: rate-cost
  /// proportional fairness "ensures that all competing NFs get a minimal
  /// CPU share necessary to progress" — and it is what lets a starved NF
  /// keep producing the service-time samples the estimator feeds on. Kept
  /// small so it does not distort the proportional allocation.
  std::uint32_t min_shares = 50;

  /// Latency-SLO controller (DESIGN.md §16). The telemetry half — a
  /// per-chain fixed-window tail estimator fed at egress — is always on;
  /// the controller half reads each SLO chain's p99 slack once per share
  /// update and multiplies the shares of the NFs on violating chains,
  /// layered on the rate-cost-proportional weights (so with every boost
  /// at 1.0 the allocation is exactly the paper's). Requires
  /// enable_cgroups: boosts act through the same cpu.shares writes.
  struct SloConfig {
    /// Run the feedback controller. Telemetry and violation accounting
    /// only need a chain target; they ignore this flag (so a rate-cost
    /// fair run can still report its SLO violations for comparison).
    bool enabled = false;
    std::uint32_t window = 2048;     ///< samples per chain estimator
    /// Evidence floor: no boost/decay decision until the chain's window
    /// holds this many egress samples.
    std::uint32_t min_samples = 64;
    double boost_step = 2.0;         ///< multiplicative boost per update
    double decay = 0.5;              ///< boost decay per recovered update
    double max_boost = 64.0;         ///< cap on any chain's boost
    /// A violating chain starts decaying only once p99 < headroom*target
    /// (hysteresis against boost/decay flapping at the target edge).
    double headroom = 0.8;
    /// Decay damping: a boosted chain must stay under headroom*target for
    /// this many *consecutive* share updates before each decay step.
    /// Without it the controller limit-cycles under persistent contention
    /// — the window recovers within one update of a boost, the boost
    /// decays straight back to 1.0, and the chain starves again.
    std::uint32_t decay_after = 3;
    /// Earliest-slack-first width: at most this many chains — the ones
    /// with the most negative slack, ties broken by chain id — are
    /// boosted per share update; the rest wait their turn.
    std::uint32_t max_boosts_per_update = 2;
    /// Applied at start() to every chain without an explicit target
    /// (microseconds; 0 = chains have no SLO unless set individually).
    double default_target_us = 0.0;
  };
  SloConfig slo;

  /// PAM-style push-aside (DESIGN.md §17): when an NF's RX queue sits over
  /// the backpressure high watermark and a *lower-priority* NF shares its
  /// core, the Manager temporarily confiscates a share slice from the
  /// neighbor instead of letting the overload propagate upstream —
  /// multiplicative grab, additive give-back, and a floor so the victim
  /// never fully starves. The per-victim scale composes with the SLO boost
  /// inside update_shares() (both multiply the rate-cost weight), and like
  /// the boost it settles to exactly 1.0, so disabled runs are
  /// byte-identical (literal-1.0 discipline).
  struct PushAsideConfig {
    bool enabled = false;
    /// Victim weight is divided by this per grab (multiplicative grab).
    double grab_factor = 2.0;
    /// Victim weight is restored by this per clear update (additive
    /// give-back) until it settles back to exactly 1.0.
    double giveback_step = 0.25;
    /// Confiscation floor: the victim's scale never drops below this, so
    /// it keeps earning service-time samples and can recover instantly.
    double victim_floor = 0.125;
    /// A grab is held at least this many share updates before give-back
    /// may begin (anti-limit-cycling, same lesson as SloConfig::decay_after).
    std::uint32_t min_hold_updates = 2;
  };
  PushAsideConfig push_aside;

  /// Ingress admission gate tuning (DESIGN.md §17). The gate itself is
  /// armed by registering flow classes (set_chain_class / the `class`
  /// config directive); without classes no admission code runs.
  bp::AdmissionConfig admission;

  bp::BpConfig backpressure;
  bp::EcnMarker::Config ecn;
  /// Fault & lifecycle subsystem (DESIGN.md §11). Disabled by default: no
  /// watchdog events are scheduled, so unfaulted runs replay exactly.
  fault::LifecycleConfig lifecycle;
  Cycles cgroup_write_cost = 13'000;  ///< ~5 us sysfs write (§3.5).
  /// NUMA node whose memory the NIC DMAs packets into.
  int nic_numa_node = 0;
};

/// Counters the evaluation tables are built from.
struct NfManagerCounters {
  /// Packets destined for this NF, whether or not they were admitted —
  /// including entry-throttle discards for a chain head and RX-full drops.
  /// This is the λ_i in load(i) = λ_i·s_i: using the *offered* rate rather
  /// than the admitted rate keeps the share computation from entering a
  /// drop-more→weigh-less→drop-more spiral under backpressure.
  std::uint64_t offered = 0;
  std::uint64_t rx_enqueued = 0;    ///< Successfully placed on the RX ring.
  std::uint64_t rx_full_drops = 0;  ///< Dropped: RX ring full.
  /// Of rx_full_drops, packets that had already been processed by at least
  /// one upstream NF — the paper's "wasted work" (Tables 3/5/6).
  std::uint64_t wasted_drops_here = 0;
  /// Packets processed by THIS NF that were later dropped at its immediate
  /// downstream queue (how Table 3 attributes wasted work to NF1/NF2).
  std::uint64_t downstream_drops = 0;
};

struct ChainCounters {
  std::uint64_t entry_admitted = 0;
  std::uint64_t entry_throttle_drops = 0;  ///< Selective early discard.
  /// Shed by the admission gate at ingress (DESIGN.md §17) — a distinct
  /// conservation sink, separate from both the entry-throttle discard and
  /// mgr.unmatched_drops: wire_ingress == entry_admitted +
  /// entry_throttle_drops + admission_discards (+ unmatched).
  std::uint64_t admission_discards = 0;
  std::uint64_t egress_packets = 0;
  std::uint64_t egress_bytes = 0;
  /// Dead hops routed around under DeadNfPolicy::kBypass (hop-skips, not
  /// packets: a packet skipping two dead NFs counts twice).
  std::uint64_t bypassed_hops = 0;
};

/// Per-chain end-to-end latency (wire arrival -> wire egress), recorded in
/// cycles in a log-bucketed histogram. Queriable at any quantile; the
/// latency bench contrasts Default vs NFVnice tail latency under overload.
class ChainLatency {
 public:
  ChainLatency() : histogram_(1ULL << 40, 8) {}
  void record(Cycles latency) {
    histogram_.record(static_cast<std::uint64_t>(latency));
  }
  [[nodiscard]] const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
};

struct FlowCounters {
  std::uint64_t egress_packets = 0;
  std::uint64_t egress_bytes = 0;
  std::uint64_t ecn_marked = 0;
};

/// Per-chain SLO state (DESIGN.md §16). Lives on every lane replica; the
/// violation clock only advances on the lane owning the chain's last hop
/// (where the estimator records), so summing violation_cycles across lanes
/// never double-counts. `boost` is maintained wherever the chain has local
/// NFs, from the same (possibly mirrored) p99 sequence on every lane.
struct ChainSloState {
  Cycles target = 0;           ///< p99 target in cycles; 0 = no SLO
  double boost = 1.0;          ///< current share multiplier (>= 1.0)
  bool violating = false;      ///< p99 over target at the last evaluation
  Cycles violation_cycles = 0; ///< total time spent in violation
  Cycles last_p99 = 0;         ///< latest evaluated p99 (local or mirrored)
  /// Consecutive share updates spent under headroom*target (resets on any
  /// violation); gates decay, see SloConfig::decay_after.
  std::uint32_t clear_streak = 0;
};

class Manager : public fault::FaultSink {
 public:
  using EgressSink = std::function<void(const pktio::Mbuf&)>;

  /// `obs` (optional) is the platform observability context: the manager
  /// registers its per-NF/per-chain counters there, forwards it to libnf
  /// and the backpressure manager, and emits mgr trace events (drops, ECN
  /// marks, cpu.shares writes) when a recorder is attached.
  Manager(sim::Engine& engine, pktio::MbufPool& pool, flow::FlowTable& flows,
          flow::ChainRegistry& chains, ManagerConfig config = {},
          obs::Observability* obs = nullptr);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Register an NF running on `core`. Returns its NfId (the id space the
  /// chain registry uses). Wires libnf's callbacks to this manager.
  flow::NfId register_nf(nf::NfTask* task, sched::Core* core);

  // -- sharded simulation (DESIGN.md §14) -----------------------------------
  // In a sharded Simulation every lane runs its own Manager replica over
  // the *global* NfId space: NFs on this lane are registered with their
  // task, NFs on other lanes as remote placeholders (task == nullptr). All
  // scan loops skip placeholders; the packet path forwards to them through
  // the shard link.

  /// Wire this replica to the lane runtime. `lane` is this manager's lane
  /// id, `latency` the modelled cross-lane transit time every message is
  /// stamped with (it bounds the lanes' conservative lookahead).
  void set_shard_link(ShardLink* link, std::uint32_t lane, Cycles latency);

  /// Register a local NF under an externally assigned (global) id.
  void register_nf_at(flow::NfId id, nf::NfTask* task, sched::Core* core);

  /// Register a placeholder for an NF owned by lane `owner_lane`. `name`
  /// feeds backpressure observability (mirrored states are queriable).
  void register_remote_nf(flow::NfId id, std::string name,
                          std::uint32_t owner_lane);

  /// Does this lane's replica own (run) the NF?
  [[nodiscard]] bool owns_nf(flow::NfId id) const {
    return id < records_.size() && records_[id].task != nullptr;
  }

  /// Deliver a cross-lane message. Called from an engine event the lane
  /// runtime scheduled at msg.when while draining this lane's mailboxes.
  void apply_shard_msg(const ShardMsg& msg);

  /// Arm the Wakeup and Monitor threads. Call after all NFs and chains are
  /// registered and before traffic starts.
  void start();

  /// Flip the control-plane features at runtime (they are consulted on
  /// every packet). Used by config files and A/B experiments.
  void set_features(bool cgroups, bool backpressure, bool ecn) {
    config_.enable_cgroups = cgroups;
    config_.enable_backpressure = backpressure;
    config_.enable_ecn = ecn;
  }
  [[nodiscard]] const ManagerConfig& config() const { return config_; }

  /// Rx-thread entry: a packet arrived from the wire. Takes ownership of
  /// `pkt` (frees it on drop). `key` drives the flow-table lookup.
  void ingress(pktio::Mbuf* pkt, const pktio::FlowKey& key);

  /// Same, with an explicit wire-arrival timestamp (<= now). Batched
  /// traffic sources deliver several packets from one timer callback; the
  /// per-packet arrival time keeps latency accounting, ECN and watermark
  /// feedback stamped at the exact instants an unbatched source would have
  /// produced.
  void ingress(pktio::Mbuf* pkt, const pktio::FlowKey& key, Cycles arrival);

  /// Per-flow egress hook (TCP sources use it to observe deliveries and
  /// ECN marks). The packet is freed after the sink returns.
  void set_egress_sink(flow::FlowId flow, EgressSink sink);

  // -- accessors ------------------------------------------------------------
  [[nodiscard]] nf::NfTask& nf(flow::NfId id) { return *records_[id].task; }
  [[nodiscard]] const NfManagerCounters& nf_counters(flow::NfId id) const {
    return records_[id].counters;
  }
  [[nodiscard]] const ChainCounters& chain_counters(flow::ChainId id) const;
  /// End-to-end latency histogram for a chain (empty until first egress).
  [[nodiscard]] const Histogram& chain_latency(flow::ChainId id) const;
  /// Fixed-window tail estimator for a chain (DESIGN.md §16); empty until
  /// the first egress on this replica (sharded: the last hop's lane).
  [[nodiscard]] const obs::LatencyEstimator& chain_tail(flow::ChainId id) const;

  // -- latency SLOs (DESIGN.md §16) -----------------------------------------
  /// Set a chain's p99 latency target in cycles (0 clears it). Telemetry
  /// and violation accounting follow the target; share boosts additionally
  /// need config().slo.enabled. Callable before or after start().
  void set_slo_target(flow::ChainId chain, Cycles target);
  [[nodiscard]] const ChainSloState& chain_slo(flow::ChainId id) const;

  // -- overload control (DESIGN.md §17) --------------------------------------
  /// Register a chain's flow class and arm the ingress admission gate for
  /// it. Lazily creates the controller: runs that never call this pay one
  /// null test per ingress packet and nothing else. Call before start().
  void set_chain_class(flow::ChainId chain, bp::ClassSpec spec);
  /// The admission controller; nullptr until a class is registered.
  [[nodiscard]] const bp::AdmissionController* admission() const {
    return adm_.get();
  }
  /// Push-aside trajectory of an NF: current share scale (1.0 = untouched,
  /// < 1.0 = a neighbor is borrowing its slice) and grab/give-back totals.
  [[nodiscard]] double push_scale_of(flow::NfId id) const {
    return records_[id].push_scale;
  }
  [[nodiscard]] std::uint64_t push_grabs_of(flow::NfId id) const {
    return records_[id].push_grabs;
  }
  [[nodiscard]] std::uint64_t push_givebacks_of(flow::NfId id) const {
    return records_[id].push_givebacks;
  }
  [[nodiscard]] const FlowCounters& flow_counters(flow::FlowId id) const;
  [[nodiscard]] bp::BackpressureManager* backpressure() { return bp_.get(); }
  [[nodiscard]] bp::EcnMarker* ecn() { return ecn_.get(); }
  [[nodiscard]] const sched::CGroupController& cgroups() const { return cgroup_; }
  [[nodiscard]] std::size_t nf_count() const { return records_.size(); }
  [[nodiscard]] sched::Core* core_of(flow::NfId id) { return records_[id].core; }
  /// Most recent load(i) estimate (dimensionless CPU demand fraction).
  [[nodiscard]] double nf_load(flow::NfId id) const { return records_[id].last_load; }
  [[nodiscard]] std::uint64_t wire_ingress() const { return wire_ingress_; }

  // -- fault & lifecycle (DESIGN.md §11) ------------------------------------
  /// Arm the watchdog at start(). Implied by installing a fault plan via
  /// the Simulation facade; call before start().
  void enable_lifecycle();
  /// Chain policy applied while an NF on the chain is down. Callable any
  /// time; unset chains use LifecycleConfig::default_dead_policy.
  void set_dead_policy(flow::ChainId chain, fault::DeadNfPolicy policy);
  [[nodiscard]] fault::DeadNfPolicy dead_policy(flow::ChainId chain) const;
  [[nodiscard]] fault::NfLifecycle nf_lifecycle(flow::NfId id) const {
    return records_[id].life;
  }
  [[nodiscard]] const fault::NfLifecycleStats& nf_lifecycle_stats(
      flow::NfId id) const {
    return records_[id].lstats;
  }

  // fault::FaultSink — the injector's actuation points. Injection is the
  // data-plane fact (the process dies *now*); the watchdog discovers it on
  // its next scan and drives the lifecycle from there.
  void inject_crash(flow::NfId nf, Cycles restart_after) override;
  void inject_stall(flow::NfId nf, Cycles restart_after) override;
  void inject_degrade(flow::NfId nf, double factor) override;
  void restore_degrade(flow::NfId nf) override;

 private:
  struct NfRecord {
    nf::NfTask* task = nullptr;  ///< nullptr = remote NF (another lane's).
    sched::Core* core = nullptr;
    std::string name;            ///< config name (local) or mirrored name.
    std::uint32_t owner_lane = 0;  ///< Lane running the NF when remote.
    /// Mirrored liveness of a remote NF (kNfDeath/kNfRevive broadcasts);
    /// lets skip_dead_hops route around dead hops on other lanes.
    bool remote_dead = false;
    NfManagerCounters counters;
    bool drain_scheduled = false;
    std::uint64_t offered_at_last_tick = 0;
    double load_accum = 0.0;
    double last_load = 0.0;
    /// Offered packets seen since the last share update (drives the
    /// "no estimate yet" bootstrap rule in update_shares()).
    double offered_accum = 0.0;
    bool has_estimate = false;
    /// Last non-zero service-time estimate (cycles). An NF starved past
    /// the sampling window would otherwise flap to "unknown" and destabilise
    /// every other NF's weight through the shared denominator.
    double last_service = 0.0;
    // Observability instruments (null until an obs context is attached).
    obs::Counter* ecn_marks = nullptr;
    obs::Counter* shares_writes = nullptr;
    obs::Gauge* cpu_shares = nullptr;

    // -- lifecycle (DESIGN.md §11) ----------------------------------------
    fault::NfLifecycle life = fault::NfLifecycle::kRunning;
    fault::NfLifecycleStats lstats;
    Cycles crashed_at = 0;     ///< Injection instant of the pending death.
    Cycles down_since = 0;     ///< Detection instant (downtime starts here).
    Cycles restart_at = 0;     ///< When the DEAD -> RESTARTING edge fires.
    Cycles warm_until = 0;     ///< When WARMING completes.
    bool restart_pending = false;
    /// Detection -> restart delay for the in-flight fault
    /// (fault::kDefaultRestart = LifecycleConfig::default_restart_delay).
    Cycles pending_restart_delay = fault::kDefaultRestart;
    // Watchdog stuck detection: progress snapshots from the last scan.
    std::uint64_t wd_last_processed = 0;
    Cycles wd_last_runtime = 0;
    std::uint32_t stuck_count = 0;
    // Degrade fault: cost-model scale to restore when the window closes.
    double pre_degrade_scale = 1.0;
    bool degraded = false;

    // -- PAM push-aside (DESIGN.md §17) -------------------------------------
    /// Share multiplier while a higher-priority core neighbor borrows this
    /// NF's slice; in [victim_floor, 1.0], settles to exactly 1.0.
    double push_scale = 1.0;
    /// Share updates the current grab must still be held before give-back.
    std::uint32_t push_hold = 0;
    /// Queue pressure seen at any monitor tick since the last share
    /// update — sampling only at the 10 ms update would miss a ring that
    /// oscillates across the watermark between updates.
    bool push_pressure = false;
    std::uint64_t push_grabs = 0;
    std::uint64_t push_givebacks = 0;
  };

  void enqueue_to_nf(flow::NfId nf_id, pktio::Mbuf* pkt, Cycles when);
  /// First hop of `chain`, from the start()-built cache. The registry walk
  /// (`chains_.get(id).hops.front()`: bounds-checked at(), two pointer
  /// chases) used to run once per throttled-ingress packet, per ECN mark
  /// and per egress; the flat array is one load.
  [[nodiscard]] flow::NfId chain_head(flow::ChainId chain) const {
    return chain < chain_heads_.size() ? chain_heads_[chain]
                                       : chains_.get(chain).hops.front();
  }
  /// Grow records_ to cover `id` (sparse global-id registration).
  void ensure_record(flow::NfId id);
  /// Stamp msg.when = now + shard latency and post to `dst`'s mailbox.
  void post_remote(std::uint32_t dst, ShardMsg msg);
  /// Post to every lane but ours (bp / lifecycle control mirrors).
  void broadcast_remote(const ShardMsg& msg);
  void schedule_drain(flow::NfId nf_id);
  void drain_tx(flow::NfId nf_id);
  void egress(pktio::Mbuf* pkt);
  void wakeup_scan();
  void monitor_tick();
  void update_shares();
  void drop(pktio::Mbuf* pkt);

  // -- latency SLOs (DESIGN.md §16) -----------------------------------------
  /// Monitor-tick half: on the lane owning each SLO chain's last hop,
  /// re-rank the window, advance the violation clock, emit trace edges and
  /// (sharded, controller on) broadcast the p99 mirror.
  void slo_observe(Cycles now);
  /// Share-update half: earliest-slack-first boost of violating chains,
  /// decay of recovered ones. Only called when config_.slo.enabled.
  void slo_control(Cycles now);
  /// Share multiplier for an NF: max boost over the SLO chains through it.
  [[nodiscard]] double slo_boost_of(flow::NfId id) const;
  [[nodiscard]] bool slo_active() const {
    return !slo_chains_.empty();
  }

  // -- overload control (DESIGN.md §17) --------------------------------------
  /// Monitor-tick half of the admission gate: feed the shed ladders the
  /// first-hop queue occupancies and SLO-violating flags of every classed
  /// chain headed on this lane. Only called when adm_ exists.
  void admission_evaluate(Cycles now);
  /// Share-update half of push-aside: advance every local core's
  /// grab/give-back state machine. Only called when push_aside.enabled.
  void push_aside_control(Cycles now);

  // -- lifecycle internals (DESIGN.md §11) ----------------------------------
  /// Periodic heartbeat scan: detects dead/stuck NFs, fires due restarts,
  /// completes warm-ups. Only scheduled when lifecycle.enabled.
  void watchdog_scan();
  /// RUNNING -> DEAD: release shares, apply the dead-NF policy, arm restart.
  /// `forced` = the watchdog killed a stuck NF (vs an injected crash).
  void on_nf_death(flow::NfId id, Cycles now, bool forced);
  /// DEAD -> RESTARTING: cold-state reload through the NF's async-io layer
  /// (§3.4 double-buffered path) or a fixed fallback latency without one.
  void begin_restart(flow::NfId id, Cycles now);
  /// RESTARTING -> WARMING: revive the task, restore weight, drop the
  /// dead-NF backpressure latch (ordinary hysteresis takes over).
  void finish_restart(flow::NfId id);
  /// WARMING -> RUNNING: record downtime and resume share allocation.
  void complete_recovery(flow::NfId id, Cycles now);
  /// kBypass routing: advance `pkt` past consecutive dead hops, counting
  /// each skip. Fast exit when nothing on the chain is down.
  void skip_dead_hops(pktio::Mbuf* pkt, flow::ChainId chain);
  [[nodiscard]] bool all_policies_backpressure(flow::NfId nf) const;
  void trace_lifecycle(flow::NfId id, const char* from, const char* to,
                       Cycles now);

  sim::Engine& engine_;
  pktio::MbufPool& pool_;
  flow::FlowTable& flows_;
  flow::ChainRegistry& chains_;
  ManagerConfig config_;

  std::vector<NfRecord> records_;
  std::vector<ChainCounters> chain_counters_;
  std::vector<ChainLatency> chain_latency_;
  /// Per-chain tail estimators (fed at egress) and SLO state. Sized with
  /// chain_counters_ at start(); lazily grown for out-of-registry ids.
  std::vector<obs::LatencyEstimator> chain_tail_;
  std::vector<ChainSloState> chain_slo_;
  /// Chains with a target, ascending — the slice the SLO paths scan.
  std::vector<flow::ChainId> slo_chains_;
  std::vector<FlowCounters> flow_counters_;
  std::vector<EgressSink> egress_sinks_;
  /// chain id -> first hop, frozen at start(). Hot paths that only need the
  /// chain head (entry-throttle accounting, ECN/egress flow-home routing)
  /// read this instead of walking the registry per packet.
  std::vector<flow::NfId> chain_heads_;
  /// chain id -> last hop, frozen at start(). The SLO paths use it to pick
  /// each chain's estimator-owning lane (egress happens on this hop's lane).
  std::vector<flow::NfId> chain_tails_hop_;

  std::unique_ptr<bp::BackpressureManager> bp_;
  std::unique_ptr<bp::EcnMarker> ecn_;
  /// Ingress admission gate (DESIGN.md §17); created lazily by the first
  /// set_chain_class, so legacy runs pay one null test per packet.
  std::unique_ptr<bp::AdmissionController> adm_;
  /// Scratch inputs for admission_evaluate (reused to avoid allocation).
  std::vector<bp::AdmissionInput> adm_inputs_;
  sched::CGroupController cgroup_;

  std::uint64_t wire_ingress_ = 0;
  std::uint32_t monitor_ticks_ = 0;
  bool started_ = false;

  /// Dead-NF refcount per chain: gates every lifecycle branch on the packet
  /// path, so unfaulted runs (and runs where everything recovered) pay one
  /// integer compare and nothing else.
  std::vector<std::uint32_t> dead_on_chain_;
  /// Per-chain DeadNfPolicy override; chains beyond the vector (or never
  /// set) use config_.lifecycle.default_dead_policy.
  std::vector<fault::DeadNfPolicy> chain_policy_;

  obs::Observability* obs_ = nullptr;
  obs::Counter* ctr_unmatched_drops_ = nullptr;
  obs::Counter* ctr_wakeup_scans_ = nullptr;
  obs::Counter* ctr_monitor_ticks_ = nullptr;

  // -- sharded simulation (null / zero in single-lane runs) -----------------
  ShardLink* shard_link_ = nullptr;
  std::uint32_t lane_id_ = 0;
  Cycles shard_latency_ = 0;
  std::uint64_t shard_tx_msgs_ = 0;
  std::uint64_t shard_rx_msgs_ = 0;
  /// Cross-lane packets dropped because the destination pool was exhausted
  /// (the sharded analogue of an rx mempool alloc failure).
  std::uint64_t shard_alloc_drops_ = 0;
};

}  // namespace nfv::mgr
