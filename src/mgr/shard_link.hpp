// Cross-lane messages for the sharded simulation (DESIGN.md §14).
//
// When a Simulation is sharded, each event lane runs its own Manager
// replica; everything chatty (rx/tx rings, wakeups, monitoring, cgroup
// accounting) stays lane-local, and only the traffic that would cross a
// core boundary on a real host crosses a lane boundary here. This header
// defines that traffic: a small tagged-union message plus the posting
// interface the lane runtime implements over per-(src,dst) SPSC rings.
//
// Every message carries its delivery time, stamped send_time +
// cross_lane_latency by the sender. The lane runtime drains mailboxes at
// epoch barriers and schedules each message as an ordinary engine event at
// msg.when on the destination lane; because the epoch length never exceeds
// the latency, msg.when is always at or beyond the next epoch's start and a
// drain can never schedule into a lane's past. Determinism: mailboxes are
// drained in fixed source-lane order and each mailbox preserves FIFO, so
// the destination engine's sequence numbers — and with them all
// same-timestamp tie-breaks — are reproducible at any worker count.
#pragma once

#include <cstdint>

#include "bp/backpressure.hpp"
#include "common/time.hpp"
#include "flow/flow_table.hpp"
#include "flow/service_chain.hpp"
#include "pktio/mbuf.hpp"

namespace nfv::mgr {

struct ShardMsg {
  enum class Kind : std::uint8_t {
    /// Packet handoff: the next hop of pkt's chain lives on another lane.
    /// The Mbuf travels by value — the sender frees its descriptor into its
    /// own pool, the receiver allocates from its pool and copies the fields
    /// in (keeping the receiver-pool index). `nf` is the destination NF.
    kPacket,
    /// Chain egress happened on a lane that is not the flow's home lane
    /// (the lane of the chain's first hop, which owns the flow-table entry
    /// and the per-flow counters). Routes the per-flow accounting and the
    /// egress sink callback home; `pkt` carries the departed packet by
    /// value for the sink (e.g. TCP ack clocking), `pkt.flow_id` names the
    /// flow in the home lane's numbering.
    kFlowEgress,
    /// An ECN mark was applied to `pkt.flow_id`'s packet on a non-home
    /// lane; bump the home lane's per-flow ecn_marked counter. (The mark
    /// itself travels inside the packet.)
    kEcnMark,
    /// Backpressure state transition on the NF's owning lane; mirrors into
    /// the destination lane's BackpressureManager via apply_remote_state.
    kBpState,
    /// Lifecycle broadcast: `nf` died / came back. Updates the remote
    /// lanes' dead_on_chain bookkeeping and remote-dead flags only — the
    /// matching Throttle pin/unpin arrives separately as kBpState.
    kNfDeath,
    kNfRevive,
    /// An rx-full drop on this lane was caused by `nf` (the upstream hop)
    /// on another lane; bump its downstream_drops counter at home.
    kDownstreamDrop,
    /// Tail-latency mirror (DESIGN.md §16): the lane owning a chain's last
    /// hop — where egress happens and the chain's LatencyEstimator lives —
    /// broadcasts the chain's current p99 every monitor tick while the SLO
    /// controller is enabled, so replicas whose NFs sit mid-chain can run
    /// the same boost decisions. `nf` carries the ChainId (the id spaces
    /// are both dense uint32 indices), `tail_p99` the p99 in cycles.
    kChainTail,
    /// Overload-control mirror (DESIGN.md §17): the lane owning a chain's
    /// last hop broadcasts the chain's SLO-violating flag whenever it
    /// flips, but only while the chain has an admission class — the
    /// chain's home lane, where the ingress gate runs, uses the violation
    /// clock as an engage trigger. `nf` carries the ChainId, `tail_p99`
    /// the flag (0/1). Zero messages when admission is unused, so legacy
    /// sharded runs stay byte-identical.
    kChainOverload,
  };

  Kind kind = Kind::kPacket;
  bp::ThrottleState bp_state = bp::ThrottleState::kClear;  ///< kBpState
  flow::NfId nf = 0;      ///< destination or subject NF (kind-dependent)
  Cycles when = 0;        ///< delivery time on the destination lane
  std::uint64_t tail_p99 = 0;  ///< kChainTail: chain p99 in cycles
  pktio::Mbuf pkt{};      ///< kPacket / kFlowEgress payload (by value)
};

/// Posting interface the lane runtime (core/shard_runtime) implements.
class ShardLink {
 public:
  virtual ~ShardLink() = default;

  /// Post `msg` from lane `src` to lane `dst`'s mailbox. Called from the
  /// source lane's worker thread during its epoch; the destination drains
  /// it at the next barrier.
  virtual void post(std::uint32_t src, std::uint32_t dst,
                    const ShardMsg& msg) = 0;

  [[nodiscard]] virtual std::uint32_t lane_count() const = 0;
};

}  // namespace nfv::mgr
