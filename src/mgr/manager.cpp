#include "mgr/manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "common/logging.hpp"

namespace nfv::mgr {

namespace {
const ChainCounters kZeroChain{};
const FlowCounters kZeroFlow{};
}  // namespace

Manager::Manager(sim::Engine& engine, pktio::MbufPool& pool,
                 flow::FlowTable& flows, flow::ChainRegistry& chains,
                 ManagerConfig config, obs::Observability* obs)
    : engine_(engine),
      pool_(pool),
      flows_(flows),
      chains_(chains),
      config_(config),
      cgroup_(config.cgroup_write_cost),
      obs_(obs) {
  if (obs_ != nullptr) {
    obs::Scope scope = obs_->global_scope();
    ctr_unmatched_drops_ = scope.counter("mgr.unmatched_drops");
    ctr_wakeup_scans_ = scope.counter("mgr.wakeup_scans");
    ctr_monitor_ticks_ = scope.counter("mgr.monitor_ticks");
    scope.counter_fn("mgr.wire_ingress", [this] { return wire_ingress_; });
    scope.counter_fn("mgr.cgroup_writes", [this] { return cgroup_.writes(); });
    scope.counter_fn("mgr.cgroup_skipped_writes",
                     [this] { return cgroup_.skipped_writes(); });
  }
}

flow::NfId Manager::register_nf(nf::NfTask* task, sched::Core* core) {
  assert(!started_ && "register NFs before start()");
  const auto id = static_cast<flow::NfId>(records_.size());
  records_.push_back(NfRecord{task, core, {}, false, 0, 0.0, 0.0});
  core->add_task(task);
  task->set_tx_notify([this, id](nf::NfTask&) { schedule_drain(id); });
  task->set_packet_release([this](pktio::Mbuf* pkt) { pool_.free(pkt); });
  if (obs_ != nullptr) {
    task->set_observability(obs_);
    obs::Scope scope = obs_->nf_scope(task->config().name);
    // records_ grows by push_back, so probes capture the stable id, never a
    // reference into the vector (it would dangle on reallocation).
    scope.counter_fn("mgr.offered",
                     [this, id] { return records_[id].counters.offered; });
    scope.counter_fn("mgr.rx_enqueued",
                     [this, id] { return records_[id].counters.rx_enqueued; });
    scope.counter_fn("mgr.rx_full_drops", [this, id] {
      return records_[id].counters.rx_full_drops;
    });
    scope.counter_fn("mgr.wasted_drops_here", [this, id] {
      return records_[id].counters.wasted_drops_here;
    });
    scope.counter_fn("mgr.downstream_drops", [this, id] {
      return records_[id].counters.downstream_drops;
    });
    scope.gauge_fn("mgr.load",
                   [this, id] { return records_[id].last_load; });
    NfRecord& rec = records_[id];
    rec.ecn_marks = scope.counter("mgr.ecn_marks");
    rec.shares_writes = scope.counter("mgr.shares_writes");
    rec.cpu_shares = scope.gauge("mgr.cpu_shares");
  }
  return id;
}

void Manager::start() {
  assert(!started_);
  started_ = true;
  chain_counters_.assign(std::max<std::size_t>(chains_.size(), 1), {});
  bp_ = std::make_unique<bp::BackpressureManager>(chains_, records_.size(),
                                                  config_.backpressure);
  ecn_ = std::make_unique<bp::EcnMarker>(records_.size(), config_.ecn);
  if (obs_ != nullptr) {
    std::vector<std::string> nf_names;
    nf_names.reserve(records_.size());
    for (const auto& rec : records_) nf_names.push_back(rec.task->config().name);
    bp_->set_observability(obs_, std::move(nf_names));
    for (flow::ChainId id = 0; id < chains_.size(); ++id) {
      obs::Scope scope = obs_->chain_scope(std::to_string(id));
      // chain_counters(id) bounds-checks, so probes survive the lazy
      // resize ingress() performs for out-of-registry chain ids.
      scope.counter_fn("chain.entry_admitted", [this, id] {
        return chain_counters(id).entry_admitted;
      });
      scope.counter_fn("chain.entry_throttle_drops", [this, id] {
        return chain_counters(id).entry_throttle_drops;
      });
      scope.counter_fn("chain.egress_packets", [this, id] {
        return chain_counters(id).egress_packets;
      });
      scope.counter_fn("chain.egress_bytes",
                       [this, id] { return chain_counters(id).egress_bytes; });
      scope.gauge_fn("chain.latency_p99_cycles", [this, id] {
        return static_cast<double>(chain_latency(id).value_at_quantile(0.99));
      });
    }
  }
  engine_.schedule_periodic(config_.wakeup_period, [this] { wakeup_scan(); });
  engine_.schedule_periodic(config_.monitor_period, [this] { monitor_tick(); });
}

void Manager::ingress(pktio::Mbuf* pkt, const pktio::FlowKey& key) {
  ingress(pkt, key, engine_.now());
}

void Manager::ingress(pktio::Mbuf* pkt, const pktio::FlowKey& key,
                      Cycles arrival) {
  assert(started_ && "call start() before sending traffic");
  assert(arrival <= engine_.now() && "arrival timestamps cannot be future");
  ++wire_ingress_;
  const flow::FlowEntry* entry = flows_.lookup(key);
  if (entry == nullptr) {
    obs::inc(ctr_unmatched_drops_);
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(arrival, obs::kManagerLane, "mgr", "drop",
                  {{"reason", "unmatched"}});
    }
    drop(pkt);  // unmatched traffic is not steered anywhere
    return;
  }
  pkt->flow_id = entry->flow_id;
  pkt->chain_id = entry->chain;
  pkt->chain_pos = 0;
  pkt->arrival_time = arrival;
  pkt->key = key;
  pkt->numa_node = static_cast<std::int8_t>(config_.nic_numa_node);

  if (pkt->chain_id >= chain_counters_.size()) {
    chain_counters_.resize(pkt->chain_id + 1);
  }
  auto& cc = chain_counters_[pkt->chain_id];

  // Selective early discard: shed throttled chains where they first enter
  // the system, before any CPU is spent on them (Fig. 5). The chain head
  // still counts the packet as offered load for rate estimation.
  if (config_.enable_backpressure && bp_->chain_throttled(pkt->chain_id)) {
    ++records_[chains_.get(pkt->chain_id).hops.front()].counters.offered;
    ++cc.entry_throttle_drops;
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(arrival, obs::kManagerLane, "mgr", "drop",
                  {{"reason", "entry_throttle"}},
                  {{"chain", static_cast<std::int64_t>(pkt->chain_id)}});
    }
    drop(pkt);
    return;
  }
  ++cc.entry_admitted;
  enqueue_to_nf(chains_.get(pkt->chain_id).hops.front(), pkt, arrival);
}

void Manager::enqueue_to_nf(flow::NfId nf_id, pktio::Mbuf* pkt, Cycles when) {
  NfRecord& rec = records_[nf_id];
  nf::NfTask& task = *rec.task;
  ++rec.counters.offered;

  if (config_.enable_ecn) {
    auto& fc = flow_counters_;
    if (ecn_->on_enqueue(nf_id, task.rx_ring(), *pkt)) {
      if (pkt->flow_id >= fc.size()) fc.resize(pkt->flow_id + 1);
      ++fc[pkt->flow_id].ecn_marked;
      obs::inc(rec.ecn_marks);
      if (auto* tr = obs::trace_of(obs_)) {
        tr->instant(when, obs::kManagerLane, "mgr", "ecn_mark",
                    {{"nf", task.config().name}},
                    {{"flow", static_cast<std::int64_t>(pkt->flow_id)},
                     {"qlen", static_cast<std::int64_t>(task.rx_ring().size())}});
      }
    }
  }

  pkt->enqueue_time = when;
  const pktio::EnqueueResult result = task.rx_ring().enqueue(pkt);
  if (result == pktio::EnqueueResult::kFull) {
    ++rec.counters.rx_full_drops;
    if (pkt->chain_pos > 0) {
      ++rec.counters.wasted_drops_here;
      // Attribute the wasted work to the NF that processed it last.
      const auto& hops = chains_.get(pkt->chain_id).hops;
      ++records_[hops[pkt->chain_pos - 1]].counters.downstream_drops;
    }
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(when, obs::kManagerLane, "mgr", "drop",
                  {{"reason", "rx_full"}, {"nf", task.config().name}},
                  {{"chain_pos", static_cast<std::int64_t>(pkt->chain_pos)}});
    }
    drop(pkt);
    return;
  }

  ++rec.counters.rx_enqueued;
  task.note_arrival();
  if (result == pktio::EnqueueResult::kOkOverloaded) {
    task.set_overload_flag(true);
    if (config_.enable_backpressure) {
      bp_->on_enqueue_feedback(nf_id, result, when);
    }
  }
  if (config_.wake_on_arrival && !task.yield_flag()) {
    rec.core->wake(&task);
  }
}

void Manager::schedule_drain(flow::NfId nf_id) {
  NfRecord& rec = records_[nf_id];
  if (rec.drain_scheduled) return;
  rec.drain_scheduled = true;
  engine_.schedule_after(config_.tx_drain_latency,
                         [this, nf_id] { drain_tx(nf_id); });
}

void Manager::drain_tx(flow::NfId nf_id) {
  NfRecord& rec = records_[nf_id];
  rec.drain_scheduled = false;

  pktio::Mbuf* burst[256];
  pktio::Mbuf* done[256];
  std::size_t done_n = 0;
  const std::size_t max_burst =
      std::min<std::size_t>(config_.tx_burst, std::size(burst));
  const bool was_full = rec.task->tx_ring().full();
  const std::size_t n = rec.task->tx_ring().dequeue_burst(burst, max_burst);
  for (std::size_t i = 0; i < n; ++i) {
    pktio::Mbuf* pkt = burst[i];
    const auto& hops = chains_.get(pkt->chain_id).hops;
    ++pkt->chain_pos;
    if (pkt->chain_pos >= hops.size()) {
      egress(pkt);
      done[done_n++] = pkt;  // freed in one burst below
    } else {
      enqueue_to_nf(hops[pkt->chain_pos], pkt, engine_.now());
    }
  }
  if (done_n > 0) pool_.free_burst(done, done_n);

  if (!rec.task->tx_ring().empty()) schedule_drain(nf_id);
  // Freed TX space may unblock a locally backpressured NF.
  if (was_full && n > 0 && rec.task->has_runnable_work()) {
    rec.core->wake(rec.task);
  }
}

void Manager::egress(pktio::Mbuf* pkt) {
  auto& cc = chain_counters_[pkt->chain_id];
  ++cc.egress_packets;
  cc.egress_bytes += pkt->size_bytes;
  if (pkt->chain_id >= chain_latency_.size()) {
    chain_latency_.resize(pkt->chain_id + 1);
  }
  chain_latency_[pkt->chain_id].record(engine_.now() - pkt->arrival_time);

  if (pkt->flow_id >= flow_counters_.size()) {
    flow_counters_.resize(pkt->flow_id + 1);
  }
  auto& fc = flow_counters_[pkt->flow_id];
  ++fc.egress_packets;
  fc.egress_bytes += pkt->size_bytes;

  if (pkt->flow_id < egress_sinks_.size() && egress_sinks_[pkt->flow_id]) {
    egress_sinks_[pkt->flow_id](*pkt);
  }
  // Ownership note: the caller (drain_tx) frees egressed packets in one
  // free_burst after the whole TX burst is dispatched.
}

void Manager::drop(pktio::Mbuf* pkt) { pool_.free(pkt); }

void Manager::set_egress_sink(flow::FlowId flow, EgressSink sink) {
  if (flow >= egress_sinks_.size()) egress_sinks_.resize(flow + 1);
  egress_sinks_[flow] = std::move(sink);
}

const ChainCounters& Manager::chain_counters(flow::ChainId id) const {
  return id < chain_counters_.size() ? chain_counters_[id] : kZeroChain;
}

const Histogram& Manager::chain_latency(flow::ChainId id) const {
  static const ChainLatency kEmptyLatency{};
  return id < chain_latency_.size() ? chain_latency_[id].histogram()
                                    : kEmptyLatency.histogram();
}

const FlowCounters& Manager::flow_counters(flow::FlowId id) const {
  return id < flow_counters_.size() ? flow_counters_[id] : kZeroFlow;
}

void Manager::wakeup_scan() {
  const Cycles now = engine_.now();
  obs::inc(ctr_wakeup_scans_);
  // Pass 1: advance every NF's backpressure state machine.
  for (flow::NfId id = 0; id < records_.size(); ++id) {
    nf::NfTask& task = *records_[id].task;
    bp_->evaluate(id, task.rx_ring(), now);
    if (task.rx_ring().below_low_watermark()) task.set_overload_flag(false);
  }
  // Pass 2: classify — apply backpressure (relinquish flags) or wake (§3.5).
  for (flow::NfId id = 0; id < records_.size(); ++id) {
    nf::NfTask& task = *records_[id].task;
    const bool pause =
        config_.enable_backpressure && bp_->should_pause_upstream(id);
    task.set_yield_flag(pause);
    if (pause || task.state() != sched::TaskState::kBlocked ||
        !task.has_runnable_work()) {
      continue;
    }
    // Coalescing: defer the wake until enough packets have pooled, but
    // never hold a packet past the age threshold.
    if (config_.wake_min_pending > 1 &&
        task.rx_ring().size() < config_.wake_min_pending) {
      const bool aged =
          config_.wake_age_threshold > 0 && !task.rx_ring().empty() &&
          now - task.rx_ring().head_enqueue_time() > config_.wake_age_threshold;
      if (!aged) continue;
    }
    records_[id].core->wake(&task);
  }
}

void Manager::monitor_tick() {
  const Cycles now = engine_.now();
  obs::inc(ctr_monitor_ticks_);
  for (auto& rec : records_) {
    const std::uint64_t offered = rec.counters.offered;
    const auto delta = static_cast<double>(offered - rec.offered_at_last_tick);
    rec.offered_at_last_tick = offered;
    const double lambda =
        delta / static_cast<double>(config_.monitor_period);  // pkts/cycle
    auto service =
        static_cast<double>(rec.task->estimated_service_time(now));
    if (service > 0.0) {
      rec.last_service = service;
    } else {
      service = rec.last_service;  // hold the last estimate through gaps
    }
    rec.has_estimate = service > 0.0;
    rec.last_load = lambda * service;  // load(i) = λ_i · s_i  (§3.2)
    rec.load_accum += rec.last_load;
    rec.offered_accum += delta;
  }
  if (++monitor_ticks_ % config_.share_updates_every == 0) {
    if (config_.enable_cgroups) update_shares();
    for (auto& rec : records_) {
      rec.load_accum = 0.0;
      rec.offered_accum = 0.0;
    }
  }
}

void Manager::update_shares() {
  // Shares_i = Priority_i · load(i) / TotalLoad(m), per shared core m.
  // Loads are averaged over the ticks since the last update to smooth the
  // 1 ms estimates before touching the (costly) cgroup filesystem.
  std::vector<sched::Core*> seen;
  for (auto& rec : records_) {
    if (std::find(seen.begin(), seen.end(), rec.core) != seen.end()) continue;
    seen.push_back(rec.core);
    double total = 0.0;
    for (auto& other : records_) {
      if (other.core == rec.core) {
        total += other.task->priority() * other.load_accum;
      }
    }
    if (total <= 0.0) continue;
    for (auto& other : records_) {
      if (other.core != rec.core) continue;
      // Bootstrap rule: an NF with offered traffic but no service-time
      // estimate yet (warm-up samples still being discarded) keeps its
      // current weight — writing a near-zero share would starve it before
      // the estimator ever sees a sample.
      if (!other.has_estimate && other.offered_accum > 0.0) continue;
      const double frac = other.task->priority() * other.load_accum / total;
      const auto shares = static_cast<std::uint32_t>(std::max(
          static_cast<double>(config_.min_shares),
          std::round(frac * config_.share_scale)));
      const Cycles cost = cgroup_.set_shares(*other.task, shares);
      if (cost > 0) {  // an actual sysfs write, not a skipped no-change
        obs::inc(other.shares_writes);
        obs::set(other.cpu_shares, static_cast<double>(shares));
        if (auto* tr = obs::trace_of(obs_)) {
          tr->counter(engine_.now(), obs::kManagerLane, "mgr", "cpu_shares",
                      other.task->config().name,
                      static_cast<std::int64_t>(shares));
        }
      }
    }
  }
}

}  // namespace nfv::mgr
