#include "mgr/manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "common/logging.hpp"

namespace nfv::mgr {

namespace {
const ChainCounters kZeroChain{};
const FlowCounters kZeroFlow{};
}  // namespace

Manager::Manager(sim::Engine& engine, pktio::MbufPool& pool,
                 flow::FlowTable& flows, flow::ChainRegistry& chains,
                 ManagerConfig config, obs::Observability* obs)
    : engine_(engine),
      pool_(pool),
      flows_(flows),
      chains_(chains),
      config_(config),
      cgroup_(config.cgroup_write_cost),
      obs_(obs) {
  if (obs_ != nullptr) {
    obs::Scope scope = obs_->global_scope();
    ctr_unmatched_drops_ = scope.counter("mgr.unmatched_drops");
    ctr_wakeup_scans_ = scope.counter("mgr.wakeup_scans");
    ctr_monitor_ticks_ = scope.counter("mgr.monitor_ticks");
    scope.counter_fn("mgr.wire_ingress", [this] { return wire_ingress_; });
    scope.counter_fn("mgr.cgroup_writes", [this] { return cgroup_.writes(); });
    scope.counter_fn("mgr.cgroup_skipped_writes",
                     [this] { return cgroup_.skipped_writes(); });
  }
}

flow::NfId Manager::register_nf(nf::NfTask* task, sched::Core* core) {
  const auto id = static_cast<flow::NfId>(records_.size());
  register_nf_at(id, task, core);
  return id;
}

void Manager::ensure_record(flow::NfId id) {
  if (id >= records_.size()) records_.resize(id + 1);
}

void Manager::register_remote_nf(flow::NfId id, std::string name,
                                 std::uint32_t owner_lane) {
  assert(!started_ && "register NFs before start()");
  ensure_record(id);
  NfRecord& rec = records_[id];
  assert(rec.task == nullptr && rec.name.empty() && "id registered twice");
  rec.name = std::move(name);
  rec.owner_lane = owner_lane;
}

void Manager::register_nf_at(flow::NfId id, nf::NfTask* task,
                             sched::Core* core) {
  assert(!started_ && "register NFs before start()");
  ensure_record(id);
  assert(records_[id].task == nullptr && records_[id].name.empty() &&
         "id registered twice");
  records_[id].task = task;
  records_[id].core = core;
  records_[id].name = task->config().name;
  core->add_task(task);
  task->set_tx_notify([this, id](nf::NfTask&) { schedule_drain(id); });
  task->set_packet_release([this](pktio::Mbuf* pkt) { pool_.free(pkt); });
  if (obs_ != nullptr) {
    task->set_observability(obs_);
    obs::Scope scope = obs_->nf_scope(task->config().name);
    // records_ grows by push_back, so probes capture the stable id, never a
    // reference into the vector (it would dangle on reallocation).
    scope.counter_fn("mgr.offered",
                     [this, id] { return records_[id].counters.offered; });
    scope.counter_fn("mgr.rx_enqueued",
                     [this, id] { return records_[id].counters.rx_enqueued; });
    scope.counter_fn("mgr.rx_full_drops", [this, id] {
      return records_[id].counters.rx_full_drops;
    });
    scope.counter_fn("mgr.wasted_drops_here", [this, id] {
      return records_[id].counters.wasted_drops_here;
    });
    scope.counter_fn("mgr.downstream_drops", [this, id] {
      return records_[id].counters.downstream_drops;
    });
    scope.gauge_fn("mgr.load",
                   [this, id] { return records_[id].last_load; });
    scope.counter_fn("life.crashes",
                     [this, id] { return records_[id].lstats.crashes; });
    scope.counter_fn("life.forced_crashes", [this, id] {
      return records_[id].lstats.forced_crashes;
    });
    scope.counter_fn("life.restarts",
                     [this, id] { return records_[id].lstats.restarts; });
    scope.counter_fn("life.recoveries",
                     [this, id] { return records_[id].lstats.recoveries; });
    scope.counter_fn("life.downtime_cycles", [this, id] {
      return static_cast<std::uint64_t>(records_[id].lstats.downtime_cycles);
    });
    NfRecord& rec = records_[id];
    rec.ecn_marks = scope.counter("mgr.ecn_marks");
    rec.shares_writes = scope.counter("mgr.shares_writes");
    rec.cpu_shares = scope.gauge("mgr.cpu_shares");
  }
}

void Manager::set_shard_link(ShardLink* link, std::uint32_t lane,
                             Cycles latency) {
  assert(!started_ && "wire the shard link before start()");
  shard_link_ = link;
  lane_id_ = lane;
  shard_latency_ = latency;
  if (obs_ != nullptr) {
    obs::Scope scope = obs_->global_scope();
    scope.counter_fn("mgr.shard_tx_msgs", [this] { return shard_tx_msgs_; });
    scope.counter_fn("mgr.shard_rx_msgs", [this] { return shard_rx_msgs_; });
    scope.counter_fn("mgr.shard_alloc_drops",
                     [this] { return shard_alloc_drops_; });
  }
}

void Manager::post_remote(std::uint32_t dst, ShardMsg msg) {
  assert(shard_link_ != nullptr && dst != lane_id_);
  msg.when = engine_.now() + shard_latency_;
  ++shard_tx_msgs_;
  shard_link_->post(lane_id_, dst, msg);
}

void Manager::broadcast_remote(const ShardMsg& msg) {
  if (shard_link_ == nullptr) return;
  for (std::uint32_t dst = 0; dst < shard_link_->lane_count(); ++dst) {
    if (dst != lane_id_) post_remote(dst, msg);
  }
}

void Manager::apply_shard_msg(const ShardMsg& msg) {
  ++shard_rx_msgs_;
  switch (msg.kind) {
    case ShardMsg::Kind::kPacket: {
      pktio::Mbuf* pkt = pool_.alloc();
      if (pkt == nullptr) {
        // Destination pool exhausted: the sharded analogue of an rx mempool
        // alloc failure. Dropped here, counted, never silently lost.
        ++shard_alloc_drops_;
        return;
      }
      const auto pool_index = pkt->pool_index;
      *pkt = msg.pkt;
      pkt->pool_index = pool_index;  // descriptor identity stays local
      enqueue_to_nf(msg.nf, pkt, engine_.now());
      break;
    }
    case ShardMsg::Kind::kFlowEgress: {
      const flow::FlowId flow = msg.pkt.flow_id;
      if (flow >= flow_counters_.size()) flow_counters_.resize(flow + 1);
      auto& fc = flow_counters_[flow];
      ++fc.egress_packets;
      fc.egress_bytes += msg.pkt.size_bytes;
      if (flow < egress_sinks_.size() && egress_sinks_[flow]) {
        egress_sinks_[flow](msg.pkt);
      }
      break;
    }
    case ShardMsg::Kind::kEcnMark: {
      const flow::FlowId flow = msg.pkt.flow_id;
      if (flow >= flow_counters_.size()) flow_counters_.resize(flow + 1);
      ++flow_counters_[flow].ecn_marked;
      break;
    }
    case ShardMsg::Kind::kBpState:
      if (bp_) bp_->apply_remote_state(msg.nf, msg.bp_state);
      break;
    case ShardMsg::Kind::kNfDeath: {
      NfRecord& rec = records_[msg.nf];
      assert(rec.task == nullptr && "death broadcast for a local NF");
      rec.remote_dead = true;
      for (flow::ChainId chain : chains_.chains_through(msg.nf)) {
        if (chain >= dead_on_chain_.size()) {
          dead_on_chain_.resize(chain + 1, 0);
        }
        ++dead_on_chain_[chain];
      }
      // No bp_ update here: the owning lane's Throttle pin (when the chain
      // policies want one) arrives as its own kBpState mirror — touching
      // refcounts from both messages would double-count.
      break;
    }
    case ShardMsg::Kind::kNfRevive: {
      NfRecord& rec = records_[msg.nf];
      rec.remote_dead = false;
      for (flow::ChainId chain : chains_.chains_through(msg.nf)) {
        if (chain < dead_on_chain_.size() && dead_on_chain_[chain] > 0) {
          --dead_on_chain_[chain];
        }
      }
      break;
    }
    case ShardMsg::Kind::kDownstreamDrop:
      ++records_[msg.nf].counters.downstream_drops;
      break;
    case ShardMsg::Kind::kChainTail: {
      // p99 mirror from the chain's estimator-owning lane (`nf` carries the
      // ChainId). Only last_p99 is mirrored: the violation clock advances
      // on the owning lane alone, and each replica derives its own boost
      // from the shared p99 sequence at the shared update cadence.
      const auto chain = static_cast<flow::ChainId>(msg.nf);
      if (chain >= chain_slo_.size()) chain_slo_.resize(chain + 1);
      chain_slo_[chain].last_p99 = static_cast<Cycles>(msg.tail_p99);
      break;
    }
    case ShardMsg::Kind::kChainOverload: {
      // SLO-violating mirror from the chain's tail-owning lane (DESIGN.md
      // §17). Only the violating flag is mirrored — the admission gate on
      // the chain's home lane reads it as an engage trigger; violation
      // *time* keeps accruing on the owner alone.
      const auto chain = static_cast<flow::ChainId>(msg.nf);
      if (chain >= chain_slo_.size()) chain_slo_.resize(chain + 1);
      chain_slo_[chain].violating = msg.tail_p99 != 0;
      break;
    }
  }
}

void Manager::start() {
  assert(!started_);
  started_ = true;
  chain_counters_.assign(std::max<std::size_t>(chains_.size(), 1), {});
  // Pre-size the per-chain/per-flow bookkeeping and freeze the chain-head
  // cache now, so the per-packet paths below never grow a vector or walk
  // the chain registry mid-burst (the lazy resizes remain only as a safety
  // net for out-of-registry ids).
  chain_latency_.resize(chain_counters_.size());
  chain_tail_.resize(chain_counters_.size(),
                     obs::LatencyEstimator(config_.slo.window));
  if (chain_slo_.size() < chain_counters_.size()) {
    chain_slo_.resize(chain_counters_.size());
  }
  flow_counters_.reserve(flows_.size() + 64);
  chain_heads_.resize(chains_.size());
  chain_tails_hop_.resize(chains_.size());
  for (flow::ChainId id = 0; id < chains_.size(); ++id) {
    const auto& hops = chains_.get(id).hops;
    chain_heads_[id] =
        hops.empty() ? static_cast<flow::NfId>(-1) : hops.front();
    chain_tails_hop_[id] =
        hops.empty() ? static_cast<flow::NfId>(-1) : hops.back();
  }
  // Blanket SLO (DESIGN.md §16): chains without an explicit target inherit
  // the config default. Cycles conversion at the manager's own clock rate
  // happens in the facade; here the default is already in microseconds of
  // the 2.6 GHz reference clock.
  if (config_.slo.default_target_us > 0.0) {
    const auto target = static_cast<Cycles>(
        config_.slo.default_target_us * kDefaultCpuHz * 1e-6);
    for (flow::ChainId id = 0; id < chains_.size(); ++id) {
      if (chain_slo_[id].target == 0) set_slo_target(id, target);
    }
  }
  bp_ = std::make_unique<bp::BackpressureManager>(chains_, records_.size(),
                                                  config_.backpressure);
  ecn_ = std::make_unique<bp::EcnMarker>(records_.size(), config_.ecn);
  if (shard_link_ != nullptr) {
    // Every real transition of a local NF is mirrored to the other lanes so
    // their chain_throttled()/should_pause_upstream() views stay coherent.
    bp_->set_state_listener(
        [this](flow::NfId nf, bp::ThrottleState to, Cycles) {
          ShardMsg msg;
          msg.kind = ShardMsg::Kind::kBpState;
          msg.nf = nf;
          msg.bp_state = to;
          broadcast_remote(msg);
        });
  }
  if (obs_ != nullptr) {
    std::vector<std::string> nf_names;
    nf_names.reserve(records_.size());
    for (const auto& rec : records_) nf_names.push_back(rec.name);
    bp_->set_observability(obs_, std::move(nf_names));
    for (flow::ChainId id = 0; id < chains_.size(); ++id) {
      obs::Scope scope = obs_->chain_scope(std::to_string(id));
      // chain_counters(id) bounds-checks, so probes survive the lazy
      // resize ingress() performs for out-of-registry chain ids.
      scope.counter_fn("chain.entry_admitted", [this, id] {
        return chain_counters(id).entry_admitted;
      });
      scope.counter_fn("chain.entry_throttle_drops", [this, id] {
        return chain_counters(id).entry_throttle_drops;
      });
      scope.counter_fn("chain.egress_packets", [this, id] {
        return chain_counters(id).egress_packets;
      });
      scope.counter_fn("chain.egress_bytes",
                       [this, id] { return chain_counters(id).egress_bytes; });
      scope.gauge_fn("chain.latency_p99_cycles", [this, id] {
        return static_cast<double>(chain_latency(id).value_at_quantile(0.99));
      });
      // Tail-estimator probes (DESIGN.md §16). Sampled at dump time only;
      // a chain's egress lands on one lane, so every other lane's replica
      // reports 0 and the merged (summed) gauge equals the owner's value.
      scope.gauge_fn("chain.tail_p50_cycles", [this, id] {
        return static_cast<double>(chain_tail(id).quantile(0.50));
      });
      scope.gauge_fn("chain.tail_p95_cycles", [this, id] {
        return static_cast<double>(chain_tail(id).quantile(0.95));
      });
      scope.gauge_fn("chain.tail_p99_cycles", [this, id] {
        return static_cast<double>(chain_tail(id).quantile(0.99));
      });
      scope.counter_fn("chain.tail_samples",
                       [this, id] { return chain_tail(id).total_count(); });
      scope.counter_fn("chain.slo_violation_cycles", [this, id] {
        return static_cast<std::uint64_t>(chain_slo(id).violation_cycles);
      });
    }
    // Overload-control instruments (DESIGN.md §17) register only when the
    // feature is armed, so legacy runs keep their metrics layout (and so
    // their reports) byte-identical.
    if (adm_ != nullptr) {
      std::vector<std::string> chain_names;
      chain_names.reserve(chains_.size());
      for (flow::ChainId id = 0; id < chains_.size(); ++id) {
        chain_names.push_back(chains_.get(id).name);
      }
      adm_->set_observability(obs_, chain_names);
      obs::Scope scope = obs_->global_scope();
      scope.counter_fn("mgr.admission_discards",
                       [this] { return adm_->total_discards(); });
    }
    if (config_.push_aside.enabled) {
      for (flow::NfId id = 0; id < records_.size(); ++id) {
        if (records_[id].task == nullptr) continue;
        obs::Scope scope = obs_->nf_scope(records_[id].name);
        scope.counter_fn("pam.grabs",
                         [this, id] { return records_[id].push_grabs; });
        scope.counter_fn("pam.givebacks",
                         [this, id] { return records_[id].push_givebacks; });
        scope.gauge_fn("pam.push_scale",
                       [this, id] { return records_[id].push_scale; });
      }
    }
  }
  engine_.schedule_periodic(config_.wakeup_period, [this] { wakeup_scan(); });
  engine_.schedule_periodic(config_.monitor_period, [this] { monitor_tick(); });
  // The watchdog heartbeat exists only when the fault subsystem is enabled:
  // an unfaulted run schedules no extra events and replays byte-for-byte.
  if (config_.lifecycle.enabled) {
    dead_on_chain_.assign(std::max<std::size_t>(chains_.size(), 1), 0);
    engine_.schedule_periodic(config_.lifecycle.watchdog_period,
                              [this] { watchdog_scan(); });
  }
}

void Manager::ingress(pktio::Mbuf* pkt, const pktio::FlowKey& key) {
  ingress(pkt, key, engine_.now());
}

void Manager::ingress(pktio::Mbuf* pkt, const pktio::FlowKey& key,
                      Cycles arrival) {
  assert(started_ && "call start() before sending traffic");
  assert(arrival <= engine_.now() && "arrival timestamps cannot be future");
  ++wire_ingress_;
  // Touching lookup: refreshes the flow's last-touch time so active flows
  // stay ahead of the table's expiry sweep (idle ones age out).
  const flow::FlowEntry* entry = flows_.lookup(key, arrival);
  if (entry == nullptr) {
    obs::inc(ctr_unmatched_drops_);
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(arrival, obs::kManagerLane, "mgr", "drop",
                  {{"reason", "unmatched"}});
    }
    drop(pkt);  // unmatched traffic is not steered anywhere
    return;
  }
  pkt->flow_id = entry->flow_id;
  pkt->chain_id = entry->chain;
  pkt->chain_pos = 0;
  pkt->arrival_time = arrival;
  pkt->key = key;
  pkt->numa_node = static_cast<std::int8_t>(config_.nic_numa_node);

  if (pkt->chain_id >= chain_counters_.size()) {
    chain_counters_.resize(pkt->chain_id + 1);
  }
  auto& cc = chain_counters_[pkt->chain_id];

  // Selective early discard: shed throttled chains where they first enter
  // the system, before any CPU is spent on them (Fig. 5). The chain head
  // still counts the packet as offered load for rate estimation.
  if (config_.enable_backpressure && bp_->chain_throttled(pkt->chain_id)) {
    ++records_[chain_head(pkt->chain_id)].counters.offered;
    ++cc.entry_throttle_drops;
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(arrival, obs::kManagerLane, "mgr", "drop",
                  {{"reason", "entry_throttle"}},
                  {{"chain", static_cast<std::int64_t>(pkt->chain_id)}});
    }
    drop(pkt);
    return;
  }
  // Admission gate (DESIGN.md §17): a shed flow class spends a trickle
  // token or is discarded at the wire — before any chain CPU, into its own
  // conservation sink. Like the entry-throttle discard above, the chain
  // head still counts the packet as offered load so λ stays honest.
  if (adm_ != nullptr && !adm_->admit(pkt->chain_id, arrival)) {
    ++records_[chain_head(pkt->chain_id)].counters.offered;
    ++cc.admission_discards;
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(arrival, obs::kAdmissionLane, "adm", "drop",
                  {{"reason", "admission"}},
                  {{"chain", static_cast<std::int64_t>(pkt->chain_id)}});
    }
    drop(pkt);
    return;
  }
  ++cc.entry_admitted;
  const auto& hops = chains_.get(pkt->chain_id).hops;
  // Dead-NF bypass (DESIGN.md §11): the chain head itself may be down.
  if (pkt->chain_id < dead_on_chain_.size() &&
      dead_on_chain_[pkt->chain_id] > 0 &&
      dead_policy(pkt->chain_id) == fault::DeadNfPolicy::kBypass) {
    skip_dead_hops(pkt, pkt->chain_id);
    if (pkt->chain_pos >= hops.size()) {  // every hop on the chain is dead
      egress(pkt);
      pool_.free(pkt);
      return;
    }
  }
  enqueue_to_nf(hops[pkt->chain_pos], pkt, arrival);
}

void Manager::enqueue_to_nf(flow::NfId nf_id, pktio::Mbuf* pkt, Cycles when) {
  NfRecord& rec = records_[nf_id];
  if (rec.task == nullptr) {
    // Next hop lives on another lane: hand the packet off by value. The
    // descriptor returns to this lane's pool; the owning lane re-allocates
    // from its own and counts the packet as offered on delivery.
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kPacket;
    msg.nf = nf_id;
    msg.pkt = *pkt;
    post_remote(rec.owner_lane, msg);
    pool_.free(pkt);
    return;
  }
  nf::NfTask& task = *rec.task;
  ++rec.counters.offered;

  if (config_.enable_ecn) {
    auto& fc = flow_counters_;
    if (ecn_->on_enqueue(nf_id, task.rx_ring(), *pkt)) {
      // Per-flow accounting lives on the flow's home lane (the lane of the
      // chain's first hop, which owns the flow-table entry and so the
      // meaning of pkt->flow_id). Mid-chain lanes route the count home.
      const flow::NfId head = chain_head(pkt->chain_id);
      if (records_[head].task != nullptr) {
        if (pkt->flow_id >= fc.size()) fc.resize(pkt->flow_id + 1);
        ++fc[pkt->flow_id].ecn_marked;
      } else {
        ShardMsg msg;
        msg.kind = ShardMsg::Kind::kEcnMark;
        msg.pkt = *pkt;
        post_remote(records_[head].owner_lane, msg);
      }
      obs::inc(rec.ecn_marks);
      if (auto* tr = obs::trace_of(obs_)) {
        tr->instant(when, obs::kManagerLane, "mgr", "ecn_mark",
                    {{"nf", task.config().name}},
                    {{"flow", static_cast<std::int64_t>(pkt->flow_id)},
                     {"qlen", static_cast<std::int64_t>(task.rx_ring().size())}});
      }
    }
  }

  pkt->enqueue_time = when;
  const pktio::EnqueueResult result = task.rx_ring().enqueue(pkt);
  if (result == pktio::EnqueueResult::kFull) {
    ++rec.counters.rx_full_drops;
    if (pkt->chain_pos > 0) {
      ++rec.counters.wasted_drops_here;
      // Attribute the wasted work to the NF that processed it last.
      const auto& hops = chains_.get(pkt->chain_id).hops;
      NfRecord& prev = records_[hops[pkt->chain_pos - 1]];
      if (prev.task != nullptr) {
        ++prev.counters.downstream_drops;
      } else {
        ShardMsg msg;
        msg.kind = ShardMsg::Kind::kDownstreamDrop;
        msg.nf = hops[pkt->chain_pos - 1];
        post_remote(prev.owner_lane, msg);
      }
    }
    if (auto* tr = obs::trace_of(obs_)) {
      tr->instant(when, obs::kManagerLane, "mgr", "drop",
                  {{"reason", "rx_full"}, {"nf", task.config().name}},
                  {{"chain_pos", static_cast<std::int64_t>(pkt->chain_pos)}});
    }
    drop(pkt);
    return;
  }

  ++rec.counters.rx_enqueued;
  task.note_arrival();
  if (result == pktio::EnqueueResult::kOkOverloaded) {
    task.set_overload_flag(true);
    if (config_.enable_backpressure) {
      bp_->on_enqueue_feedback(nf_id, result, when);
    }
  }
  if (config_.wake_on_arrival && !task.yield_flag()) {
    rec.core->wake(&task);
  }
}

void Manager::schedule_drain(flow::NfId nf_id) {
  NfRecord& rec = records_[nf_id];
  if (rec.drain_scheduled) return;
  rec.drain_scheduled = true;
  engine_.schedule_after(config_.tx_drain_latency,
                         [this, nf_id] { drain_tx(nf_id); });
}

void Manager::drain_tx(flow::NfId nf_id) {
  NfRecord& rec = records_[nf_id];
  rec.drain_scheduled = false;

  pktio::Mbuf* burst[256];
  pktio::Mbuf* done[256];
  std::size_t done_n = 0;
  const std::size_t max_burst =
      std::min<std::size_t>(config_.tx_burst, std::size(burst));
  const bool was_full = rec.task->tx_ring().full();
  const std::size_t n = rec.task->tx_ring().dequeue_burst(burst, max_burst);
  for (std::size_t i = 0; i < n; ++i) {
    pktio::Mbuf* pkt = burst[i];
    const auto& hops = chains_.get(pkt->chain_id).hops;
    ++pkt->chain_pos;
    if (pkt->chain_id < dead_on_chain_.size() &&
        dead_on_chain_[pkt->chain_id] > 0 &&
        dead_policy(pkt->chain_id) == fault::DeadNfPolicy::kBypass) {
      skip_dead_hops(pkt, pkt->chain_id);
    }
    if (pkt->chain_pos >= hops.size()) {
      egress(pkt);
      done[done_n++] = pkt;  // freed in one burst below
    } else {
      enqueue_to_nf(hops[pkt->chain_pos], pkt, engine_.now());
    }
  }
  if (done_n > 0) pool_.free_burst(done, done_n);

  if (!rec.task->tx_ring().empty()) schedule_drain(nf_id);
  // Freed TX space may unblock a locally backpressured NF.
  if (was_full && n > 0 && rec.task->has_runnable_work()) {
    rec.core->wake(rec.task);
  }
}

void Manager::egress(pktio::Mbuf* pkt) {
  auto& cc = chain_counters_[pkt->chain_id];
  ++cc.egress_packets;
  cc.egress_bytes += pkt->size_bytes;
  if (pkt->chain_id >= chain_latency_.size()) {
    chain_latency_.resize(pkt->chain_id + 1);
  }
  const Cycles latency = engine_.now() - pkt->arrival_time;
  chain_latency_[pkt->chain_id].record(latency);
  // Tail telemetry (DESIGN.md §16): same wire-arrival -> wire-egress span,
  // into the chain's fixed-window estimator. O(1), allocation-free.
  if (pkt->chain_id >= chain_tail_.size()) {
    chain_tail_.resize(pkt->chain_id + 1,
                       obs::LatencyEstimator(config_.slo.window));
  }
  chain_tail_[pkt->chain_id].record(static_cast<std::uint64_t>(latency));

  // Per-flow counters and the egress sink live on the flow's home lane;
  // when the chain's last hop is elsewhere, route the event home (the
  // packet travels by value so e.g. a TCP sink still sees its fields).
  const flow::NfId head = chain_head(pkt->chain_id);
  if (records_[head].task == nullptr) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kFlowEgress;
    msg.pkt = *pkt;
    post_remote(records_[head].owner_lane, msg);
    return;
  }

  if (pkt->flow_id >= flow_counters_.size()) {
    flow_counters_.resize(pkt->flow_id + 1);
  }
  auto& fc = flow_counters_[pkt->flow_id];
  ++fc.egress_packets;
  fc.egress_bytes += pkt->size_bytes;

  if (pkt->flow_id < egress_sinks_.size() && egress_sinks_[pkt->flow_id]) {
    egress_sinks_[pkt->flow_id](*pkt);
  }
  // Ownership note: the caller (drain_tx) frees egressed packets in one
  // free_burst after the whole TX burst is dispatched.
}

void Manager::drop(pktio::Mbuf* pkt) { pool_.free(pkt); }

void Manager::set_egress_sink(flow::FlowId flow, EgressSink sink) {
  if (flow >= egress_sinks_.size()) egress_sinks_.resize(flow + 1);
  egress_sinks_[flow] = std::move(sink);
}

const ChainCounters& Manager::chain_counters(flow::ChainId id) const {
  return id < chain_counters_.size() ? chain_counters_[id] : kZeroChain;
}

const Histogram& Manager::chain_latency(flow::ChainId id) const {
  static const ChainLatency kEmptyLatency{};
  return id < chain_latency_.size() ? chain_latency_[id].histogram()
                                    : kEmptyLatency.histogram();
}

const obs::LatencyEstimator& Manager::chain_tail(flow::ChainId id) const {
  static const obs::LatencyEstimator kEmptyTail{1};
  return id < chain_tail_.size() ? chain_tail_[id] : kEmptyTail;
}

const ChainSloState& Manager::chain_slo(flow::ChainId id) const {
  static const ChainSloState kNoSlo{};
  return id < chain_slo_.size() ? chain_slo_[id] : kNoSlo;
}

void Manager::set_slo_target(flow::ChainId chain, Cycles target) {
  if (chain >= chain_slo_.size()) chain_slo_.resize(chain + 1);
  chain_slo_[chain].target = target;
  const auto it =
      std::find(slo_chains_.begin(), slo_chains_.end(), chain);
  if (target > 0 && it == slo_chains_.end()) {
    slo_chains_.insert(
        std::upper_bound(slo_chains_.begin(), slo_chains_.end(), chain),
        chain);
  } else if (target == 0 && it != slo_chains_.end()) {
    slo_chains_.erase(it);
  }
}

const FlowCounters& Manager::flow_counters(flow::FlowId id) const {
  return id < flow_counters_.size() ? flow_counters_[id] : kZeroFlow;
}

void Manager::wakeup_scan() {
  const Cycles now = engine_.now();
  obs::inc(ctr_wakeup_scans_);
  // Pass 1: advance every local NF's backpressure state machine (remote
  // NFs' states arrive as kBpState mirrors from their owning lanes).
  for (flow::NfId id = 0; id < records_.size(); ++id) {
    if (records_[id].task == nullptr) continue;
    nf::NfTask& task = *records_[id].task;
    bp_->evaluate(id, task.rx_ring(), now);
    if (task.rx_ring().below_low_watermark()) task.set_overload_flag(false);
  }
  // Pass 2: classify — apply backpressure (relinquish flags) or wake (§3.5).
  for (flow::NfId id = 0; id < records_.size(); ++id) {
    if (records_[id].task == nullptr) continue;
    nf::NfTask& task = *records_[id].task;
    const bool pause =
        config_.enable_backpressure && bp_->should_pause_upstream(id);
    task.set_yield_flag(pause);
    if (pause || task.state() != sched::TaskState::kBlocked ||
        !task.has_runnable_work()) {
      continue;
    }
    // Coalescing: defer the wake until enough packets have pooled, but
    // never hold a packet past the age threshold.
    if (config_.wake_min_pending > 1 &&
        task.rx_ring().size() < config_.wake_min_pending) {
      const bool aged =
          config_.wake_age_threshold > 0 && !task.rx_ring().empty() &&
          now - task.rx_ring().head_enqueue_time() > config_.wake_age_threshold;
      if (!aged) continue;
    }
    records_[id].core->wake(&task);
  }
}

void Manager::monitor_tick() {
  const Cycles now = engine_.now();
  obs::inc(ctr_monitor_ticks_);
  for (auto& rec : records_) {
    if (rec.task == nullptr) continue;  // remote NF: its lane estimates it
    if (rec.life == fault::NfLifecycle::kDead ||
        rec.life == fault::NfLifecycle::kRestarting) {
      // A down NF consumes no CPU: zero its estimate but keep the offered
      // window contiguous so λ is correct on the first post-recovery tick.
      rec.last_load = 0.0;
      rec.offered_at_last_tick = rec.counters.offered;
      continue;
    }
    const std::uint64_t offered = rec.counters.offered;
    const auto delta = static_cast<double>(offered - rec.offered_at_last_tick);
    rec.offered_at_last_tick = offered;
    const double lambda =
        delta / static_cast<double>(config_.monitor_period);  // pkts/cycle
    auto service =
        static_cast<double>(rec.task->estimated_service_time(now));
    if (service > 0.0) {
      rec.last_service = service;
    } else {
      service = rec.last_service;  // hold the last estimate through gaps
    }
    rec.has_estimate = service > 0.0;
    rec.last_load = lambda * service;  // load(i) = λ_i · s_i  (§3.2)
    rec.load_accum += rec.last_load;
    rec.offered_accum += delta;
  }
  // Tail telemetry rides the monitor cadence (DESIGN.md §16): re-rank each
  // SLO chain's window, advance its violation clock, mirror p99 to the
  // other lanes. Chains without targets cost nothing here.
  if (slo_active()) slo_observe(now);
  // Overload control rides the same cadences (DESIGN.md §17): the
  // admission shed ladders advance with the telemetry every tick, the
  // push-aside grab/give-back machine with the share updates.
  if (adm_ != nullptr) admission_evaluate(now);
  if (config_.push_aside.enabled) {
    // Sticky pressure sampling: a short ring can cross the high watermark
    // and drain again between share updates, so push-aside would never
    // see it at the 10 ms instants alone. Latch pressure every monitor
    // tick; push_aside_control consumes and clears the flags.
    for (flow::NfId id = 0; id < records_.size(); ++id) {
      NfRecord& rec = records_[id];
      if (rec.task == nullptr || rec.push_pressure) continue;
      rec.push_pressure =
          rec.task->rx_ring().above_high_watermark() ||
          (bp_ != nullptr && bp_->state(id) != bp::ThrottleState::kClear);
    }
  }
  if (++monitor_ticks_ % config_.share_updates_every == 0) {
    if (config_.slo.enabled && slo_active()) slo_control(now);
    if (config_.push_aside.enabled) push_aside_control(now);
    if (config_.enable_cgroups) update_shares();
    for (auto& rec : records_) {
      rec.load_accum = 0.0;
      rec.offered_accum = 0.0;
    }
  }
}

void Manager::slo_observe(Cycles now) {
  auto* tr = obs::trace_of(obs_);
  for (flow::ChainId chain : slo_chains_) {
    ChainSloState& st = chain_slo_[chain];
    // The estimator fills where the chain's last hop runs; every other
    // replica holds the mirrored p99 and skips the bookkeeping below (so
    // violation time is never double-counted across lanes).
    const flow::NfId tail_hop = chain < chain_tails_hop_.size()
                                    ? chain_tails_hop_[chain]
                                    : static_cast<flow::NfId>(-1);
    if (tail_hop >= records_.size() || records_[tail_hop].task == nullptr) {
      continue;
    }
    const obs::LatencyEstimator& est = chain_tail(chain);
    if (est.size() < config_.slo.min_samples) continue;
    st.last_p99 = static_cast<Cycles>(est.quantile(0.99));
    const bool violating = st.last_p99 > st.target;
    if (violating) st.violation_cycles += config_.monitor_period;
    if (violating != st.violating) {
      st.violating = violating;
      if (tr != nullptr) {
        tr->instant(
            now, obs::kSloLane, "slo",
            violating ? "violation_begin" : "violation_end",
            {{"chain", chains_.get(chain).name}},
            {{"p99_cycles", static_cast<std::int64_t>(st.last_p99)},
             {"target_cycles", static_cast<std::int64_t>(st.target)}});
      }
      // Admission engage trigger (DESIGN.md §17): the gate runs on the
      // chain's *home* lane but the violation clock lives here, on the
      // tail's lane — mirror the flip. Gated on the chain having a class,
      // so runs without admission post zero extra messages.
      if (shard_link_ != nullptr && adm_ != nullptr && adm_->has_class(chain)) {
        ShardMsg msg;
        msg.kind = ShardMsg::Kind::kChainOverload;
        msg.nf = static_cast<flow::NfId>(chain);
        msg.tail_p99 = violating ? 1 : 0;
        broadcast_remote(msg);
      }
    }
    if (tr != nullptr) {
      tr->counter(now, obs::kSloLane, "slo", "chain_p99",
                  chains_.get(chain).name,
                  static_cast<std::int64_t>(st.last_p99));
    }
    // The mirror exists for remote replicas' boost decisions; rate-cost
    // fair runs (controller off) keep their message sequence unchanged.
    if (shard_link_ != nullptr && config_.slo.enabled) {
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kChainTail;
      msg.nf = static_cast<flow::NfId>(chain);
      msg.tail_p99 = static_cast<std::uint64_t>(st.last_p99);
      broadcast_remote(msg);
    }
  }
}

void Manager::slo_control(Cycles now) {
  auto* tr = obs::trace_of(obs_);
  // Earliest-slack-first: rank violating chains by slack = target - p99
  // (most negative, i.e. worst, first; ties by chain id) and boost at most
  // max_boosts_per_update of them this round. Chains comfortably inside
  // their target (p99 < headroom*target) decay back toward exactly 1.0,
  // at which point the allocation is again pure rate-cost fairness.
  std::vector<std::pair<double, flow::ChainId>> violating;
  for (flow::ChainId chain : slo_chains_) {
    ChainSloState& st = chain_slo_[chain];
    if (st.last_p99 == 0) continue;  // no evidence yet (local or mirrored)
    const double slack = static_cast<double>(st.target) -
                         static_cast<double>(st.last_p99);
    if (slack < 0.0) {
      st.clear_streak = 0;
      violating.emplace_back(slack, chain);
    } else if (static_cast<double>(st.last_p99) <
               config_.slo.headroom * static_cast<double>(st.target)) {
      // Recovered update: decay only after decay_after consecutive clear
      // updates, so one quiet window under persistent contention doesn't
      // throw the working boost away (see SloConfig::decay_after).
      if (st.boost > 1.0 && ++st.clear_streak >= config_.slo.decay_after) {
        st.clear_streak = 0;
        st.boost = st.boost * config_.slo.decay;
        if (st.boost < 1.0 + 1e-9) st.boost = 1.0;  // settle exactly
        if (tr != nullptr) {
          tr->counter(now, obs::kSloLane, "slo", "chain_boost",
                      chains_.get(chain).name,
                      static_cast<std::int64_t>(st.boost * 1000.0));
        }
      }
    }
  }
  std::sort(violating.begin(), violating.end());
  const std::size_t limit = std::min<std::size_t>(
      violating.size(), config_.slo.max_boosts_per_update);
  for (std::size_t i = 0; i < limit; ++i) {
    ChainSloState& st = chain_slo_[violating[i].second];
    const double before = st.boost;
    st.boost = std::min(config_.slo.max_boost,
                        st.boost * config_.slo.boost_step);
    if (st.boost != before && tr != nullptr) {
      tr->counter(now, obs::kSloLane, "slo", "chain_boost",
                  chains_.get(violating[i].second).name,
                  static_cast<std::int64_t>(st.boost * 1000.0));
    }
  }
}

double Manager::slo_boost_of(flow::NfId id) const {
  double boost = 1.0;
  for (flow::ChainId chain : chains_.chains_through(id)) {
    if (chain < chain_slo_.size()) {
      boost = std::max(boost, chain_slo_[chain].boost);
    }
  }
  return boost;
}

// ---------------------------------------------------------------------------
// Overload control: ingress admission + PAM push-aside (DESIGN.md §17)
// ---------------------------------------------------------------------------

void Manager::set_chain_class(flow::ChainId chain, bp::ClassSpec spec) {
  assert(!started_ && "register flow classes before start()");
  if (adm_ == nullptr) {
    adm_ = std::make_unique<bp::AdmissionController>(config_.admission);
  }
  adm_->set_class(chain, spec);
}

void Manager::admission_evaluate(Cycles now) {
  // The gate lives where ingress happens — each classed chain's home (head)
  // lane. Replicas holding the chain's head as a remote placeholder skip
  // it: their ladders stay idle and the merged adm.* counters equal the
  // home lane's, keeping reports identical at any worker count.
  adm_inputs_.clear();
  for (flow::ChainId chain = 0; chain < chains_.size(); ++chain) {
    if (!adm_->has_class(chain)) continue;
    const flow::NfId head = chain_head(chain);
    if (head >= records_.size() || records_[head].task == nullptr) continue;
    const pktio::Ring& rx = records_[head].task->rx_ring();
    bp::AdmissionInput in;
    in.chain = chain;
    in.group = head;
    in.occupancy =
        rx.capacity() > 0
            ? static_cast<double>(rx.size()) / static_cast<double>(rx.capacity())
            : 0.0;
    // Locally observed for tail-local chains, kChainOverload-mirrored for
    // chains whose last hop runs on another lane.
    in.violating = chain < chain_slo_.size() && chain_slo_[chain].violating;
    adm_inputs_.push_back(in);
  }
  if (!adm_inputs_.empty()) adm_->evaluate(now, adm_inputs_);
}

void Manager::push_aside_control(Cycles now) {
  // PAM-style cycle borrowing: an NF whose RX queue sits over the high
  // watermark confiscates a share slice from each *lower-priority* NF on
  // its core — multiplicative grab with a floor, additive give-back once
  // the pressure clears, and a minimum hold so a queue flickering at the
  // watermark cannot flap the weights. Everything here is core-local, so
  // no shard mirroring is needed: each lane runs the machine for its own
  // cores and remote replicas report the neutral 1.0.
  auto* tr = obs::trace_of(obs_);
  const auto& cfg = config_.push_aside;
  // "Overloaded" means queue pressure at any monitor tick since the last
  // share update (the sticky flag monitor_tick latches from the ring level
  // and the backpressure hysteresis state), so a ring oscillating across
  // the watermark between updates still registers.
  const auto overloaded = [](flow::NfId, const NfRecord& rec) {
    return rec.push_pressure || rec.task->rx_ring().above_high_watermark();
  };
  for (flow::NfId vid = 0; vid < records_.size(); ++vid) {
    NfRecord& victim = records_[vid];
    if (victim.task == nullptr) continue;
    if (victim.life != fault::NfLifecycle::kRunning) continue;
    // An overloaded NF is never a victim itself, whatever its priority —
    // two overloaded neighbors must not grab from each other.
    const bool self_overloaded = overloaded(vid, victim);
    bool pressed = false;
    if (!self_overloaded) {
      for (flow::NfId aid = 0; aid < records_.size() && !pressed; ++aid) {
        if (aid == vid) continue;
        const NfRecord& a = records_[aid];
        if (a.task == nullptr || a.core != victim.core) continue;
        if (a.life != fault::NfLifecycle::kRunning) continue;
        if (a.task->priority() <= victim.task->priority()) continue;
        pressed = overloaded(aid, a);
      }
    }
    if (pressed) {
      victim.push_hold = cfg.min_hold_updates;
      if (victim.push_scale > cfg.victim_floor) {
        victim.push_scale =
            std::max(cfg.victim_floor, victim.push_scale / cfg.grab_factor);
        ++victim.push_grabs;
        if (tr != nullptr) {
          tr->instant(now, obs::kAdmissionLane, "pam", "grab",
                      {{"victim", victim.name}},
                      {{"scale_x1000", static_cast<std::int64_t>(
                                           victim.push_scale * 1000.0)}});
        }
      }
    } else if (victim.push_scale < 1.0) {
      if (victim.push_hold > 0) {
        --victim.push_hold;
        continue;
      }
      // min() settles the scale to exactly 1.0, restoring the bit-exact
      // rate-cost allocation once the borrow is fully repaid.
      victim.push_scale = std::min(1.0, victim.push_scale + cfg.giveback_step);
      ++victim.push_givebacks;
      if (tr != nullptr) {
        tr->instant(now, obs::kAdmissionLane, "pam", "give_back",
                    {{"victim", victim.name}},
                    {{"scale_x1000", static_cast<std::int64_t>(
                                         victim.push_scale * 1000.0)}});
      }
    }
  }
  // Fresh pressure window for the next update period.
  for (auto& rec : records_) rec.push_pressure = false;
}

void Manager::update_shares() {
  // Shares_i = Priority_i · Boost_i · load(i) / TotalLoad(m), per shared
  // core m. With every boost at 1.0 — controller disabled, or all SLO
  // chains inside target — this is exactly the paper's rate-cost
  // proportional rule, and the multiplications by 1.0 leave the floating
  // point arithmetic (hence the written shares) bit-identical to a build
  // without the SLO path. Loads are averaged over the ticks since the
  // last update to smooth the 1 ms estimates before touching the (costly)
  // cgroup filesystem.
  const bool boosting = config_.slo.enabled && slo_active();
  // Push-aside composes as a second multiplier on the same weight: a
  // victim's confiscated slice (push_scale < 1) shrinks its numerator and
  // the shared denominator, handing the freed share to its core peers.
  // Disabled it contributes literal 1.0, like the boost term.
  const bool pushing = config_.push_aside.enabled;
  std::vector<sched::Core*> seen;
  for (auto& rec : records_) {
    if (rec.task == nullptr) continue;  // remote NF: no core on this lane
    if (std::find(seen.begin(), seen.end(), rec.core) != seen.end()) continue;
    seen.push_back(rec.core);
    double total = 0.0;
    for (flow::NfId oid = 0; oid < records_.size(); ++oid) {
      auto& other = records_[oid];
      if (other.core == rec.core) {
        const double w = boosting ? slo_boost_of(oid) : 1.0;
        const double g = pushing ? other.push_scale : 1.0;
        total += other.task->priority() * w * g * other.load_accum;
      }
    }
    if (total <= 0.0) continue;
    for (flow::NfId oid = 0; oid < records_.size(); ++oid) {
      auto& other = records_[oid];
      if (other.core != rec.core) continue;
      // A down NF keeps the released kMinShares written at death; writing
      // the min_shares floor here would hand it CPU weight it cannot use.
      if (other.life == fault::NfLifecycle::kDead ||
          other.life == fault::NfLifecycle::kRestarting) {
        continue;
      }
      // Bootstrap rule: an NF with offered traffic but no service-time
      // estimate yet (warm-up samples still being discarded) keeps its
      // current weight — writing a near-zero share would starve it before
      // the estimator ever sees a sample.
      if (!other.has_estimate && other.offered_accum > 0.0) continue;
      const double w = boosting ? slo_boost_of(oid) : 1.0;
      const double g = pushing ? other.push_scale : 1.0;
      const double frac =
          other.task->priority() * w * g * other.load_accum / total;
      const auto shares = static_cast<std::uint32_t>(std::max(
          static_cast<double>(config_.min_shares),
          std::round(frac * config_.share_scale)));
      const Cycles cost = cgroup_.set_shares(*other.task, shares);
      if (cost > 0) {  // an actual sysfs write, not a skipped no-change
        obs::inc(other.shares_writes);
        obs::set(other.cpu_shares, static_cast<double>(shares));
        if (auto* tr = obs::trace_of(obs_)) {
          tr->counter(engine_.now(), obs::kManagerLane, "mgr", "cpu_shares",
                      other.task->config().name,
                      static_cast<std::int64_t>(shares));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault & lifecycle subsystem (DESIGN.md §11)
// ---------------------------------------------------------------------------

void Manager::enable_lifecycle() {
  assert(!started_ && "enable the lifecycle before start()");
  config_.lifecycle.enabled = true;
}

void Manager::set_dead_policy(flow::ChainId chain, fault::DeadNfPolicy policy) {
  if (chain >= chain_policy_.size()) {
    chain_policy_.resize(chain + 1, config_.lifecycle.default_dead_policy);
  }
  chain_policy_[chain] = policy;
}

fault::DeadNfPolicy Manager::dead_policy(flow::ChainId chain) const {
  return chain < chain_policy_.size() ? chain_policy_[chain]
                                      : config_.lifecycle.default_dead_policy;
}

bool Manager::all_policies_backpressure(flow::NfId nf) const {
  for (flow::ChainId chain : chains_.chains_through(nf)) {
    if (dead_policy(chain) != fault::DeadNfPolicy::kBackpressure) return false;
  }
  return true;
}

void Manager::trace_lifecycle(flow::NfId id, const char* from, const char* to,
                              Cycles now) {
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(now, obs::kLifecycleLane, "life", "nf_lifecycle",
                {{"nf", records_[id].task->config().name},
                 {"from", from},
                 {"to", to}});
  }
}

void Manager::inject_crash(flow::NfId nf, Cycles restart_after) {
  assert(config_.lifecycle.enabled && "install a fault plan before start()");
  NfRecord& rec = records_[nf];
  if (rec.task->dead()) return;  // already down: nothing left to kill
  rec.crashed_at = engine_.now();
  rec.pending_restart_delay = restart_after;
  rec.task->crash();  // data-plane fact; the watchdog discovers it next scan
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(engine_.now(), obs::kLifecycleLane, "life", "inject_crash",
                {{"nf", rec.task->config().name}});
  }
}

void Manager::inject_stall(flow::NfId nf, Cycles restart_after) {
  assert(config_.lifecycle.enabled && "install a fault plan before start()");
  NfRecord& rec = records_[nf];
  if (rec.task->dead() || rec.task->stalled()) return;
  rec.crashed_at = engine_.now();
  rec.pending_restart_delay = restart_after;
  rec.task->stall();
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(engine_.now(), obs::kLifecycleLane, "life", "inject_stall",
                {{"nf", rec.task->config().name}});
  }
  // A wedged process is spinning, not sleeping: if it was blocked, make it
  // runnable so it takes (and squats on) the CPU like a real straggler.
  if (rec.task->state() == sched::TaskState::kBlocked) {
    rec.core->wake(rec.task);
  }
}

void Manager::inject_degrade(flow::NfId nf, double factor) {
  assert(config_.lifecycle.enabled && "install a fault plan before start()");
  NfRecord& rec = records_[nf];
  if (!rec.degraded) {
    rec.pre_degrade_scale = rec.task->cost_model().scale();
    rec.degraded = true;
  }
  rec.task->cost_model().set_scale(rec.pre_degrade_scale * factor);
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(engine_.now(), obs::kLifecycleLane, "life", "inject_degrade",
                {{"nf", rec.task->config().name}},
                {{"factor_x1000",
                  static_cast<std::int64_t>(factor * 1000.0)}});
  }
}

void Manager::restore_degrade(flow::NfId nf) {
  NfRecord& rec = records_[nf];
  if (!rec.degraded) return;
  rec.task->cost_model().set_scale(rec.pre_degrade_scale);
  rec.degraded = false;
  if (auto* tr = obs::trace_of(obs_)) {
    tr->instant(engine_.now(), obs::kLifecycleLane, "life", "restore_degrade",
                {{"nf", rec.task->config().name}});
  }
}

void Manager::watchdog_scan() {
  const Cycles now = engine_.now();
  for (flow::NfId id = 0; id < records_.size(); ++id) {
    NfRecord& rec = records_[id];
    if (rec.task == nullptr) continue;  // remote NF: its lane watches it
    nf::NfTask& task = *rec.task;
    switch (rec.life) {
      case fault::NfLifecycle::kRunning: {
        if (task.dead()) {  // crash injected since the last scan
          on_nf_death(id, now, /*forced=*/false);
          break;
        }
        // Heartbeat: "progress" is the processed-packet counter advancing.
        // An NF is a suspect when it makes none despite either holding the
        // CPU (a spinning straggler) or having work and getting CPU time (a
        // wedged consumer). A starved-but-healthy NF — work pending, no CPU
        // granted — is never a suspect, so share starvation cannot be
        // misdiagnosed as death.
        const std::uint64_t processed = task.counters().processed;
        const Cycles runtime = task.stats().runtime;
        const bool progressed = processed != rec.wd_last_processed;
        const bool on_cpu = task.state() == sched::TaskState::kRunning;
        const bool pending =
            task.in_flight_packets() > 0 || !task.rx_ring().empty();
        const bool runtime_advanced = runtime != rec.wd_last_runtime;
        rec.wd_last_processed = processed;
        rec.wd_last_runtime = runtime;
        const bool suspect =
            !progressed && (on_cpu || (pending && runtime_advanced));
        if (!suspect) {
          rec.stuck_count = 0;
          break;
        }
        if (++rec.stuck_count >= config_.lifecycle.stuck_scans) {
          task.crash();  // watchdog kill: SIGKILL the straggler
          on_nf_death(id, now, /*forced=*/true);
        }
        break;
      }
      case fault::NfLifecycle::kDead:
        if (rec.restart_pending && now >= rec.restart_at) {
          begin_restart(id, now);
        }
        break;
      case fault::NfLifecycle::kRestarting:
        break;  // waiting on the async cold-state reload
      case fault::NfLifecycle::kWarming:
        if (task.dead()) {  // re-crashed before warm-up completed
          on_nf_death(id, now, /*forced=*/false);
          break;
        }
        if (now >= rec.warm_until) complete_recovery(id, now);
        break;
    }
  }
}

void Manager::on_nf_death(flow::NfId id, Cycles now, bool forced) {
  NfRecord& rec = records_[id];
  const char* from = fault::to_string(rec.life);
  if (rec.life == fault::NfLifecycle::kWarming) {
    // Re-crash before full recovery: fold the first outage's downtime in
    // now, since complete_recovery() will only see the second one.
    rec.lstats.downtime_cycles += now - rec.down_since;
  }
  rec.life = fault::NfLifecycle::kDead;
  rec.down_since = now;
  ++rec.lstats.crashes;
  if (forced) ++rec.lstats.forced_crashes;
  rec.lstats.last_detect_latency = now - rec.crashed_at;
  rec.stuck_count = 0;

  // Release the dead process's CPU weight (its cgroup is torn down; CFS
  // redistributes to the survivors on the same core immediately).
  if (config_.enable_cgroups) {
    cgroup_.set_shares(*rec.task, sched::CGroupController::kMinShares);
    obs::set(rec.cpu_shares,
             static_cast<double>(sched::CGroupController::kMinShares));
  }
  rec.last_load = 0.0;
  rec.load_accum = 0.0;
  rec.has_estimate = false;
  // A dead NF holds no borrowed-from slice: clear any push-aside grab so
  // the fresh process starts at the neutral weight (its replacement's
  // shares are re-derived from scratch anyway).
  rec.push_scale = 1.0;
  rec.push_hold = 0;

  for (flow::ChainId chain : chains_.chains_through(id)) {
    if (chain >= dead_on_chain_.size()) dead_on_chain_.resize(chain + 1, 0);
    ++dead_on_chain_[chain];
  }
  // Dead-NF backpressure composition: pin the NF at Throttle so its chains
  // shed at the entry point, exactly like a queue stuck over the high
  // watermark. Only when every chain through it wants that policy — a
  // bypass/buffer chain must keep flowing.
  if (config_.enable_backpressure && all_policies_backpressure(id)) {
    bp_->force_dead(id, now);
  }

  const Cycles delay = rec.pending_restart_delay >= 0
                           ? rec.pending_restart_delay
                           : config_.lifecycle.default_restart_delay;
  rec.restart_at = now + delay;
  rec.restart_pending = true;
  rec.pending_restart_delay = fault::kDefaultRestart;
  trace_lifecycle(id, from, "DEAD", now);
  if (shard_link_ != nullptr) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kNfDeath;
    msg.nf = id;
    broadcast_remote(msg);
  }
}

void Manager::begin_restart(flow::NfId id, Cycles now) {
  NfRecord& rec = records_[id];
  rec.restart_pending = false;
  rec.life = fault::NfLifecycle::kRestarting;
  ++rec.lstats.restarts;
  trace_lifecycle(id, "DEAD", "RESTARTING", now);
  // Cold-state reload rides the NF's §3.4 double-buffered async-I/O path
  // when it has one (state lives behind the same device its handlers use);
  // stateless NFs pay a fixed spawn+mmap latency instead.
  if (auto* io = rec.task->io()) {
    // A failing device must not wedge the restart: if the reload read
    // exhausts its retry budget, fall back to the stateless spawn latency
    // (operationally: restore from the warm peer instead of local disk).
    io->read(
        config_.lifecycle.reload_bytes, [this, id] { finish_restart(id); },
        [this, id] {
          engine_.schedule_after(config_.lifecycle.reload_latency,
                                 [this, id] { finish_restart(id); });
        });
  } else {
    engine_.schedule_after(config_.lifecycle.reload_latency,
                           [this, id] { finish_restart(id); });
  }
}

void Manager::finish_restart(flow::NfId id) {
  NfRecord& rec = records_[id];
  if (rec.life != fault::NfLifecycle::kRestarting) return;
  const Cycles now = engine_.now();
  rec.life = fault::NfLifecycle::kWarming;
  rec.warm_until = now + config_.lifecycle.warm_duration;
  rec.task->revive(now);
  // The fresh process starts at the cgroup default weight; the monitor
  // re-derives its proportional share once the estimator warms up.
  if (config_.enable_cgroups) {
    cgroup_.set_shares(*rec.task, sched::kDefaultWeight);
    obs::set(rec.cpu_shares, static_cast<double>(sched::kDefaultWeight));
  }
  // Drop the dead-NF latch only: the state stays Throttle until the normal
  // Fig. 4 hysteresis clears it below the low watermark — entry discard
  // keeps protecting the revived NF while it digests its backlog.
  if (config_.enable_backpressure) bp_->clear_dead(id, now);
  for (flow::ChainId chain : chains_.chains_through(id)) {
    if (chain < dead_on_chain_.size() && dead_on_chain_[chain] > 0) {
      --dead_on_chain_[chain];
    }
  }
  rec.load_accum = 0.0;
  rec.offered_accum = 0.0;
  rec.has_estimate = false;
  rec.wd_last_processed = rec.task->counters().processed;
  rec.wd_last_runtime = rec.task->stats().runtime;
  rec.stuck_count = 0;
  trace_lifecycle(id, "RESTARTING", "WARMING", now);
  if (shard_link_ != nullptr) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kNfRevive;
    msg.nf = id;
    broadcast_remote(msg);
  }
  // Its RX ring survived the outage in manager-owned shared memory; if a
  // backlog is waiting, put the revived process straight to work.
  if (rec.task->has_runnable_work()) rec.core->wake(rec.task);
}

void Manager::complete_recovery(flow::NfId id, Cycles now) {
  NfRecord& rec = records_[id];
  rec.life = fault::NfLifecycle::kRunning;
  ++rec.lstats.recoveries;
  rec.lstats.downtime_cycles += now - rec.down_since;
  trace_lifecycle(id, "WARMING", "RUNNING", now);
}

void Manager::skip_dead_hops(pktio::Mbuf* pkt, flow::ChainId chain) {
  const auto& hops = chains_.get(chain).hops;
  auto& cc = chain_counters_[chain];
  while (pkt->chain_pos < hops.size()) {
    const NfRecord& hop = records_[hops[pkt->chain_pos]];
    const bool dead = hop.task != nullptr ? hop.task->dead() : hop.remote_dead;
    if (!dead) break;
    ++cc.bypassed_hops;
    ++pkt->chain_pos;
  }
}

}  // namespace nfv::mgr
