#include "core/shard_runtime.hpp"

#include <algorithm>
#include <cassert>

namespace nfv::core {

Lane::Lane(std::uint32_t lane_id, const mgr::ManagerConfig& mgr_cfg,
           const flow::FlowTable::Config& flow_cfg,
           std::uint32_t mempool_capacity, flow::ChainRegistry& chains,
           mgr::ShardLink& link, Cycles latency, sim::EngineBackend backend,
           std::size_t pending_hint)
    : id(lane_id), ev(lane_id, backend), pool(mempool_capacity),
      flows(flow_cfg) {
  ev.engine().reserve(pending_hint);
  manager = std::make_unique<mgr::Manager>(ev.engine(), pool, flows, chains,
                                           mgr_cfg, &obs);
  manager->set_shard_link(&link, lane_id, latency);
  // The lane-local twins of the platform probes the legacy constructor
  // registers (simulation.cpp): same keys, so the merged report sums them
  // across lanes into the familiar series.
  obs.metrics().counter_fn("sim.dispatched_events", {}, [this] {
    return ev.engine().dispatched_events();
  });
  obs.metrics().gauge_fn("sim.mbufs_in_use", {}, [this] {
    return static_cast<double>(pool.in_use());
  });
  obs.metrics().counter_fn("flow.hits", {}, [this] { return flows.hits(); });
  obs.metrics().counter_fn("flow.misses", {},
                           [this] { return flows.misses(); });
  obs.metrics().counter_fn("flow.installs", {},
                           [this] { return flows.installs(); });
  obs.metrics().counter_fn("flow.expirations", {},
                           [this] { return flows.expirations(); });
  obs.metrics().gauge_fn("flow.table_size", {}, [this] {
    return static_cast<double>(flows.size());
  });
  obs.metrics().gauge_fn("flow.load_factor", {},
                         [this] { return flows.load_factor(); });
}

ShardRuntime::ShardRuntime(std::uint32_t shards, Cycles latency,
                           const mgr::ManagerConfig& mgr_cfg,
                           const flow::FlowTable::Config& flow_cfg,
                           std::uint32_t mempool_capacity,
                           flow::ChainRegistry& chains,
                           sim::EngineBackend backend,
                           std::size_t pending_hint)
    : shards_(shards),
      latency_(latency),
      backend_(backend),
      pending_hint_(pending_hint),
      mgr_cfg_(mgr_cfg),
      flow_cfg_(flow_cfg),
      mempool_capacity_(mempool_capacity),
      chains_(chains) {
  assert(shards_ >= 1 && "sharded mode needs at least one worker");
  assert(latency_ > 0 && "cross-lane latency bounds the lookahead");
}

ShardRuntime::~ShardRuntime() = default;

Lane& ShardRuntime::add_lane() {
  assert(!exec_ && "topology is frozen once the simulation has run");
  const auto id = static_cast<std::uint32_t>(lanes_.size());
  lanes_.push_back(std::make_unique<Lane>(id, mgr_cfg_, flow_cfg_,
                                          mempool_capacity_, chains_, *this,
                                          latency_, backend_, pending_hint_));
  return *lanes_.back();
}

void ShardRuntime::set_engine_backend(sim::EngineBackend backend) {
  backend_ = backend;
  for (auto& lane : lanes_) lane->ev.engine().set_backend(backend);
}

void ShardRuntime::set_pending_hint(std::size_t hint) {
  pending_hint_ = hint;
  for (auto& lane : lanes_) lane->ev.engine().reserve(hint);
}

std::uint64_t ShardRuntime::dispatched_events() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->ev.engine().dispatched_events();
  return total;
}

void ShardRuntime::post(std::uint32_t src, std::uint32_t dst,
                        const mgr::ShardMsg& msg) {
  assert(!boxes_.empty() && "posting before the first run");
  Mailbox& box = *boxes_[src * lanes_.size() + dst];
  // Once anything spilled, keep spilling: the drain empties the ring first,
  // so mixing the two after a spill would reorder the FIFO.
  if (!box.spill.empty() || !box.ring.try_push(msg)) box.spill.push_back(msg);
}

void ShardRuntime::run_until(Cycles target) {
  if (lanes_.empty()) {
    now_ = std::max(now_, target);
    return;
  }
  if (!exec_) {
    const std::size_t n = lanes_.size();
    exec_ = std::make_unique<sim::ShardExecutor>(
        n, std::min<std::size_t>(shards_, n));
    boxes_.resize(n * n);
    for (auto& box : boxes_) box = std::make_unique<Mailbox>();
  }
  while (now_ < target) {
    const Cycles horizon = std::min<Cycles>(now_ + latency_, target);
    exec_->run_phase(
        [&](std::size_t i) { lanes_[i]->ev.run_epoch(horizon); });
    exec_->run_phase([this](std::size_t i) { drain_lane(i); });
    now_ = horizon;
  }
}

void ShardRuntime::drain_lane(std::size_t dst) {
  Lane& lane = *lanes_[dst];
  const std::size_t n = lanes_.size();
  for (std::size_t src = 0; src < n; ++src) {
    if (src == dst) continue;
    Mailbox& box = *boxes_[src * n + dst];
    mgr::ShardMsg msg;
    while (box.ring.try_pop(msg)) deliver(lane, msg);
    if (!box.spill.empty()) {
      for (const mgr::ShardMsg& spilled : box.spill) deliver(lane, spilled);
      box.spill.clear();
    }
  }
}

void ShardRuntime::deliver(Lane& lane, const mgr::ShardMsg& msg) {
  // Park the message in the lane's pending list and schedule its delivery
  // as an ordinary engine event; the {manager, list, iterator} capture fits
  // SmallCallback's inline storage, so the hot path does not allocate.
  auto& pending = lane.pending;
  const auto it = pending.insert(pending.end(), msg);
  mgr::Manager* manager = lane.manager.get();
  auto* list = &pending;
  lane.ev.engine().schedule_at(it->when, [manager, list, it] {
    manager->apply_shard_msg(*it);
    list->erase(it);
  });
}

}  // namespace nfv::core
