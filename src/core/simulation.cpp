#include "core/simulation.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "sched/cfs.hpp"
#include "sched/fifo.hpp"
#include "sched/rr.hpp"

namespace nfv::core {

const char* to_string(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kCfsNormal:
      return "NORMAL";
    case SchedPolicy::kCfsBatch:
      return "BATCH";
    case SchedPolicy::kRoundRobin:
      return "RR";
    case SchedPolicy::kFifo:
      return "FIFO";
  }
  return "?";
}

NfMetrics NfMetrics::operator-(const NfMetrics& rhs) const {
  NfMetrics d = *this;
  d.arrivals -= rhs.arrivals;
  d.processed -= rhs.processed;
  d.forwarded -= rhs.forwarded;
  d.rx_full_drops -= rhs.rx_full_drops;
  d.wasted_drops_here -= rhs.wasted_drops_here;
  d.downstream_drops -= rhs.downstream_drops;
  d.voluntary_switches -= rhs.voluntary_switches;
  d.involuntary_switches -= rhs.involuntary_switches;
  d.crash_drops -= rhs.crash_drops;
  d.runtime -= rhs.runtime;
  return d;
}

ChainMetrics ChainMetrics::operator-(const ChainMetrics& rhs) const {
  ChainMetrics d = *this;
  d.entry_admitted -= rhs.entry_admitted;
  d.entry_throttle_drops -= rhs.entry_throttle_drops;
  d.egress_packets -= rhs.egress_packets;
  d.egress_bytes -= rhs.egress_bytes;
  return d;
}

Simulation::Simulation(PlatformConfig config)
    : config_(config), clock_(config.cpu_hz), flows_(config.flow_table) {
  pool_ = std::make_unique<pktio::MbufPool>(config_.mempool_capacity);
  manager_ = std::make_unique<mgr::Manager>(engine_, *pool_, flows_, chains_,
                                            config_.manager, &obs_);
  obs_.metrics().counter_fn("sim.dispatched_events", {},
                            [this] { return engine_.dispatched_events(); });
  obs_.metrics().gauge_fn("sim.mbufs_in_use", {}, [this] {
    return static_cast<double>(pool_->in_use());
  });
  // Flow-table instruments (DESIGN.md §13): sampled probes, so the lookup
  // path pays nothing for them.
  obs_.metrics().counter_fn("flow.hits", {}, [this] { return flows_.hits(); });
  obs_.metrics().counter_fn("flow.misses", {},
                            [this] { return flows_.misses(); });
  obs_.metrics().counter_fn("flow.installs", {},
                            [this] { return flows_.installs(); });
  obs_.metrics().counter_fn("flow.expirations", {},
                            [this] { return flows_.expirations(); });
  obs_.metrics().gauge_fn("flow.table_size", {}, [this] {
    return static_cast<double>(flows_.size());
  });
  obs_.metrics().gauge_fn("flow.load_factor", {},
                          [this] { return flows_.load_factor(); });
}

Simulation::~Simulation() = default;

std::size_t Simulation::add_core(SchedPolicy policy, double rr_quantum_ms,
                                 int numa_node) {
  sched::SchedParams params = sched::SchedParams::defaults(clock_);
  params.rr_quantum = clock_.from_millis(rr_quantum_ms);

  std::unique_ptr<sched::Scheduler> scheduler;
  switch (policy) {
    case SchedPolicy::kCfsNormal:
      scheduler = std::make_unique<sched::CfsScheduler>(params, /*batch=*/false);
      break;
    case SchedPolicy::kCfsBatch:
      scheduler = std::make_unique<sched::CfsScheduler>(params, /*batch=*/true);
      break;
    case SchedPolicy::kRoundRobin:
      scheduler = std::make_unique<sched::RrScheduler>(params);
      break;
    case SchedPolicy::kFifo:
      scheduler = std::make_unique<sched::FifoScheduler>();
      break;
  }
  const std::size_t index = cores_.size();
  sched::CoreConfig core_cfg = config_.core;
  core_cfg.numa_node = numa_node;
  cores_.push_back(std::make_unique<sched::Core>(
      engine_, std::move(scheduler), core_cfg,
      "core" + std::to_string(index)));
  cores_.back()->set_observability(&obs_, static_cast<std::uint32_t>(index));
  return index;
}

flow::NfId Simulation::add_nf(std::string name, std::size_t core_index,
                              nf::CostModel cost, NfOptions options) {
  assert(core_index < cores_.size());
  nf::NfTask::Config cfg;
  cfg.name = std::move(name);
  cfg.cost = cost;
  cfg.rx_capacity = options.rx_capacity ? options.rx_capacity : config_.rx_capacity;
  cfg.tx_capacity = options.tx_capacity ? options.tx_capacity : config_.tx_capacity;
  cfg.batch_size = options.batch_size;
  cfg.burst_window =
      options.burst_window ? options.burst_window : config_.nf_burst_window;
  cfg.high_watermark = config_.high_watermark;
  cfg.low_watermark = config_.low_watermark;
  cfg.sample_interval = clock_.from_micros(options.sample_interval_us);
  cfg.numa_penalty = config_.numa_penalty;
  cfg.sample_window = clock_.from_millis(100.0);
  cfg.priority = options.priority;

  nfs_.push_back(std::make_unique<nf::NfTask>(engine_, cfg));
  const flow::NfId id =
      manager_->register_nf(nfs_.back().get(), cores_[core_index].get());
  assert(id + 1 == nfs_.size());
  return id;
}

flow::ChainId Simulation::add_chain(std::string name,
                                    std::vector<flow::NfId> hops) {
  assert(!started_ && "define chains before traffic starts");
  return chains_.add(std::move(name), std::move(hops));
}

io::AsyncIoEngine& Simulation::attach_io(flow::NfId nf_id,
                                         io::AsyncIoEngine::Config io_config) {
  io_engines_.push_back(
      std::make_unique<io::AsyncIoEngine>(engine_, disk(), io_config));
  nfs_[nf_id]->attach_io(io_engines_.back().get());
  io_engines_.back()->set_observability(&obs_, nfs_[nf_id]->config().name);
  return *io_engines_.back();
}

void Simulation::set_fault_plan(fault::FaultPlan plan) {
  assert(!started_ && "install the fault plan before the first run");
  assert(!injector_ && "only one fault plan per simulation");
  manager_->enable_lifecycle();
  injector_ = std::make_unique<fault::FaultInjector>(engine_, std::move(plan));
}

io::BlockDevice& Simulation::disk() {
  if (!disk_) disk_ = std::make_unique<io::BlockDevice>(engine_);
  return *disk_;
}

pktio::FlowKey Simulation::next_flow_key(std::uint8_t proto) {
  pktio::FlowKey key;
  key.src_ip = 0x0a000000u + next_ip_++;
  key.dst_ip = 0x0a800001u;
  key.src_port = 10000;
  key.dst_port = 80;
  key.proto = proto;
  return key;
}

flow::FlowId Simulation::add_udp_flow(flow::ChainId chain, double rate_pps,
                                      UdpOptions options) {
  const pktio::FlowKey key = next_flow_key(pktio::kProtoUdp);
  const flow::FlowId flow_id = flows_.install(key, chain);

  traffic::UdpSource::Config cfg;
  cfg.key = key;
  cfg.rate_pps = rate_pps;
  cfg.size_bytes = options.size_bytes;
  cfg.start_time = clock_.from_seconds(options.start_seconds);
  cfg.stop_time = options.stop_seconds < 0
                      ? Cycles{-1}
                      : clock_.from_seconds(options.stop_seconds);
  cfg.cost_classes = options.cost_classes;
  cfg.jitter_fraction = options.jitter_fraction;
  cfg.poisson = options.poisson;
  cfg.seed = options.seed;
  cfg.burst = options.burst ? options.burst : config_.source_burst;

  udp_sources_.push_back(std::make_unique<traffic::UdpSource>(
      engine_, *manager_, *pool_, clock_, cfg));
  if (started_) udp_sources_.back()->start();
  return flow_id;
}

std::pair<flow::FlowId, traffic::TcpSource*> Simulation::add_tcp_flow(
    flow::ChainId chain, TcpOptions options) {
  const pktio::FlowKey key = next_flow_key(pktio::kProtoTcp);
  const flow::FlowId flow_id = flows_.install(key, chain);

  traffic::TcpSource::Config cfg;
  cfg.key = key;
  cfg.size_bytes = options.size_bytes;
  cfg.rtt = clock_.from_seconds(options.rtt_seconds);
  cfg.ecn_capable = options.ecn_capable;
  cfg.max_cwnd = options.max_cwnd;
  cfg.start_time = clock_.from_seconds(options.start_seconds);
  cfg.stop_time = options.stop_seconds < 0
                      ? Cycles{-1}
                      : clock_.from_seconds(options.stop_seconds);
  cfg.burst = options.burst ? options.burst : config_.source_burst;

  tcp_sources_.push_back(std::make_unique<traffic::TcpSource>(
      engine_, *manager_, *pool_, flow_id, cfg));
  if (started_) tcp_sources_.back()->start();
  return {flow_id, tcp_sources_.back().get()};
}

traffic::ChurnSource& Simulation::add_churn_workload(flow::ChainId chain,
                                                     double rate_pps,
                                                     ChurnOptions options) {
  traffic::ChurnSource::Config cfg;
  cfg.chain = chain;
  cfg.rate_pps = rate_pps;
  cfg.concurrent_flows = options.concurrent_flows;
  cfg.size_bytes = options.size_bytes;
  cfg.start_time = clock_.from_seconds(options.start_seconds);
  cfg.stop_time = options.stop_seconds < 0
                      ? Cycles{-1}
                      : clock_.from_seconds(options.stop_seconds);
  cfg.pareto_alpha = options.pareto_alpha;
  cfg.pareto_min_packets = options.pareto_min_packets;
  cfg.seed = options.seed;
  cfg.burst = options.burst ? options.burst : config_.source_burst;
  // Keep generated 5-tuples clear of next_flow_key()'s 10.0.0.0/9 space.
  cfg.src_ip_base = 0x0b000000u + (static_cast<std::uint32_t>(
                                       churn_sources_.size())
                                   << 20);

  churn_sources_.push_back(std::make_unique<traffic::ChurnSource>(
      engine_, *manager_, *pool_, flows_, clock_, cfg));
  if (started_) churn_sources_.back()->start();
  return *churn_sources_.back();
}

void Simulation::ensure_started() {
  if (started_) return;
  started_ = true;
  manager_->start();
  // Flow-expiry sweep (flow-state library, DESIGN.md §13): scheduled only
  // when a timeout is configured, so default simulations dispatch exactly
  // the seed event sequence.
  if (flows_.expiry_enabled()) {
    engine_.schedule_periodic(flows_.scan_period(),
                              [this] { flows_.expire(engine_.now()); });
  }
  // Storage fault domain (DESIGN.md §12): activate its observability only
  // when it is actually in use — device faults in the plan, or an engine
  // with a completion deadline configured — so fault-free reports keep the
  // seed metrics layout byte-for-byte.
  const bool device_faults =
      injector_ && injector_->plan().has_device_faults();
  bool io_fault_domain = device_faults;
  for (const auto& io : io_engines_) {
    if (io->fault_domain_enabled()) io_fault_domain = true;
  }
  if (io_fault_domain) {
    disk().set_observability(&obs_);
    for (auto& io : io_engines_) io->register_fault_metrics();
  }
  if (injector_) injector_->arm(*manager_, device_faults ? &disk() : nullptr);
  for (auto& src : udp_sources_) src->start();
  for (auto& src : tcp_sources_) src->start();
  for (auto& src : churn_sources_) src->start();
}

void Simulation::run_for_seconds(double seconds) {
  ensure_started();
  engine_.run_until(engine_.now() + clock_.from_seconds(seconds));
}

double Simulation::now_seconds() const { return clock_.to_seconds(engine_.now()); }

NfMetrics Simulation::nf_metrics(flow::NfId id) const {
  const nf::NfTask& task = *nfs_[id];
  const auto& mc = manager_->nf_counters(id);
  NfMetrics m;
  m.name = task.name();
  m.arrivals = task.counters().arrivals;
  m.processed = task.counters().processed;
  m.forwarded = task.counters().forwarded;
  m.rx_full_drops = mc.rx_full_drops;
  m.wasted_drops_here = mc.wasted_drops_here;
  m.downstream_drops = mc.downstream_drops;
  m.voluntary_switches = task.stats().voluntary_switches;
  m.involuntary_switches = task.stats().involuntary_switches;
  m.crash_drops = task.counters().crash_drops;
  m.runtime = task.stats().runtime;
  m.avg_sched_latency_ms =
      clock_.to_millis(static_cast<Cycles>(task.stats().avg_sched_latency_cycles()));
  m.rx_queue_len = task.rx_ring().size();
  return m;
}

ChainMetrics Simulation::chain_metrics(flow::ChainId id) const {
  const auto& cc = manager_->chain_counters(id);
  ChainMetrics m;
  m.entry_admitted = cc.entry_admitted;
  m.entry_throttle_drops = cc.entry_throttle_drops;
  m.egress_packets = cc.egress_packets;
  m.egress_bytes = cc.egress_bytes;
  return m;
}

double Simulation::nf_cpu_share(flow::NfId id) const {
  const Cycles now = engine_.now();
  if (now == 0) return 0.0;
  return static_cast<double>(nfs_[id]->stats().runtime) /
         static_cast<double>(now);
}

void Simulation::attach_trace(obs::TraceRecorder& recorder) {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    recorder.set_lane_name(static_cast<std::uint32_t>(i), cores_[i]->name());
  }
  recorder.set_lane_name(obs::kManagerLane, "nf-manager");
  recorder.set_lane_name(obs::kBackpressureLane, "backpressure");
  recorder.set_lane_name(obs::kLifecycleLane, "lifecycle");
  recorder.set_lane_name(obs::kIoLane, "storage-io");
  obs_.attach_trace(&recorder);
}

void Simulation::report_json(std::ostream& out) const {
  const double elapsed = now_seconds();
  obs::JsonWriter w(out);
  w.begin_object();

  w.key("meta");
  w.begin_object();
  w.field("elapsed_seconds", elapsed);
  w.field("cpu_hz", config_.cpu_hz);
  w.field("now_cycles", static_cast<std::int64_t>(engine_.now()));
  w.field("dispatched_events", engine_.dispatched_events());
  w.field("wire_ingress", manager_->wire_ingress());
  w.end_object();

  w.key("nfs");
  w.begin_array();
  for (flow::NfId id = 0; id < nfs_.size(); ++id) {
    const NfMetrics m = nf_metrics(id);
    const auto& mc = manager_->nf_counters(id);
    w.begin_object();
    w.field("name", std::string_view(m.name));
    w.field("core", std::string_view(manager_->core_of(id)->name()));
    w.field("offered", mc.offered);
    w.field("arrivals", m.arrivals);
    w.field("processed", m.processed);
    w.field("forwarded", m.forwarded);
    w.field("rx_full_drops", m.rx_full_drops);
    w.field("wasted_drops_here", m.wasted_drops_here);
    w.field("downstream_drops", m.downstream_drops);
    w.field("voluntary_switches", m.voluntary_switches);
    w.field("involuntary_switches", m.involuntary_switches);
    w.field("crash_drops", m.crash_drops);
    w.field("runtime_cycles", static_cast<std::int64_t>(m.runtime));
    w.field("cpu_share", nf_cpu_share(id));
    w.field("avg_sched_latency_ms", m.avg_sched_latency_ms);
    w.field("rx_queue_len", m.rx_queue_len);
    if (manager_->config().lifecycle.enabled) {
      const auto& ls = manager_->nf_lifecycle_stats(id);
      w.key("lifecycle");
      w.begin_object();
      w.field("state",
              std::string_view(fault::to_string(manager_->nf_lifecycle(id))));
      w.field("crashes", ls.crashes);
      w.field("forced_crashes", ls.forced_crashes);
      w.field("restarts", ls.restarts);
      w.field("recoveries", ls.recoveries);
      w.field("downtime_cycles", static_cast<std::int64_t>(ls.downtime_cycles));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.key("chains");
  w.begin_array();
  for (flow::ChainId id = 0; id < chains_.size(); ++id) {
    const ChainMetrics m = chain_metrics(id);
    const Histogram& lat = manager_->chain_latency(id);
    w.begin_object();
    w.field("name", std::string_view(chains_.get(id).name));
    w.field("entry_admitted", m.entry_admitted);
    w.field("entry_throttle_drops", m.entry_throttle_drops);
    w.field("egress_packets", m.egress_packets);
    w.field("egress_bytes", m.egress_bytes);
    w.field("throughput_mpps",
            elapsed > 0
                ? static_cast<double>(m.egress_packets) / elapsed / 1e6
                : 0.0);
    w.key("latency_cycles");
    w.begin_object();
    w.field("p50", lat.value_at_quantile(0.5));
    w.field("p99", lat.value_at_quantile(0.99));
    w.field("max", lat.max());
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("cores");
  w.begin_array();
  for (const auto& core : cores_) {
    w.begin_object();
    w.field("name", std::string_view(core->name()));
    w.field("numa_node", static_cast<std::int64_t>(core->numa_node()));
    w.field("busy_cycles", static_cast<std::int64_t>(core->busy_cycles()));
    w.field("switch_overhead_cycles",
            static_cast<std::int64_t>(core->switch_overhead_cycles()));
    w.field("utilization",
            engine_.now() > 0 ? static_cast<double>(core->busy_cycles()) /
                                    static_cast<double>(engine_.now())
                              : 0.0);
    w.end_object();
  }
  w.end_array();

  // Full registry dump: every instrument any component registered.
  {
    std::ostringstream metrics;
    obs_.metrics().write_json(metrics);
    w.key("metrics");
    w.raw(metrics.str());
  }

  w.end_object();
  out << '\n';
}

std::string Simulation::report_json() const {
  std::ostringstream out;
  report_json(out);
  return out.str();
}

void Simulation::print_report(std::ostream& out) const {
  const double elapsed = now_seconds();
  out << "=== NFVnice simulation report (t=" << std::fixed
      << std::setprecision(3) << elapsed << "s) ===\n";
  out << std::left << std::setw(14) << "NF" << std::right << std::setw(12)
      << "arrivals" << std::setw(12) << "processed" << std::setw(12)
      << "drops@rx" << std::setw(10) << "cpu%" << std::setw(10) << "cswch"
      << std::setw(10) << "nvcswch" << '\n';
  for (flow::NfId id = 0; id < nfs_.size(); ++id) {
    const NfMetrics m = nf_metrics(id);
    out << std::left << std::setw(14) << m.name << std::right << std::setw(12)
        << m.arrivals << std::setw(12) << m.processed << std::setw(12)
        << m.rx_full_drops << std::setw(9) << std::setprecision(1)
        << nf_cpu_share(id) * 100.0 << "%" << std::setw(10)
        << m.voluntary_switches << std::setw(10) << m.involuntary_switches
        << '\n';
  }
  for (flow::ChainId id = 0; id < chains_.size(); ++id) {
    const ChainMetrics m = chain_metrics(id);
    out << "chain '" << chains_.get(id).name << "': egress "
        << m.egress_packets << " pkts ("
        << std::setprecision(3)
        << (elapsed > 0 ? static_cast<double>(m.egress_packets) / elapsed / 1e6
                        : 0.0)
        << " Mpps), entry drops " << m.entry_throttle_drops << '\n';
  }
}

}  // namespace nfv::core
