#include "core/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/shard_runtime.hpp"
#include "obs/json.hpp"
#include "sched/cfs.hpp"
#include "sched/fifo.hpp"
#include "sched/rr.hpp"

namespace nfv::core {

const char* to_string(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kCfsNormal:
      return "NORMAL";
    case SchedPolicy::kCfsBatch:
      return "BATCH";
    case SchedPolicy::kRoundRobin:
      return "RR";
    case SchedPolicy::kFifo:
      return "FIFO";
  }
  return "?";
}

NfMetrics NfMetrics::operator-(const NfMetrics& rhs) const {
  NfMetrics d = *this;
  d.arrivals -= rhs.arrivals;
  d.processed -= rhs.processed;
  d.forwarded -= rhs.forwarded;
  d.rx_full_drops -= rhs.rx_full_drops;
  d.wasted_drops_here -= rhs.wasted_drops_here;
  d.downstream_drops -= rhs.downstream_drops;
  d.voluntary_switches -= rhs.voluntary_switches;
  d.involuntary_switches -= rhs.involuntary_switches;
  d.crash_drops -= rhs.crash_drops;
  d.runtime -= rhs.runtime;
  return d;
}

ChainMetrics ChainMetrics::operator-(const ChainMetrics& rhs) const {
  ChainMetrics d = *this;
  d.entry_admitted -= rhs.entry_admitted;
  d.entry_throttle_drops -= rhs.entry_throttle_drops;
  d.admission_discards -= rhs.admission_discards;
  d.egress_packets -= rhs.egress_packets;
  d.egress_bytes -= rhs.egress_bytes;
  return d;
}

namespace {

/// Lazy per-lane block device, mirroring Simulation::disk().
io::BlockDevice& lane_disk(Lane& lane) {
  if (!lane.disk) lane.disk = std::make_unique<io::BlockDevice>(lane.ev.engine());
  return *lane.disk;
}

}  // namespace

Simulation::Simulation(PlatformConfig config)
    : config_(config), clock_(config.cpu_hz), flows_(config.flow_table) {
  // Sharded engine opt-in (DESIGN.md §14): an explicit config wins; when it
  // is left at 0 the NFV_SIM_SHARDS environment variable applies, so every
  // existing binary can be resharded without a rebuild.
  if (config_.sim_shards == 0) {
    if (const char* env = std::getenv("NFV_SIM_SHARDS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) config_.sim_shards = static_cast<std::uint32_t>(v);
    }
  }
  // Ready-queue backend opt-in (DESIGN.md §15): same contract as the shards
  // knob — an explicit config wins, otherwise NFV_ENGINE_BACKEND applies.
  // Either way the event *order* is identical; this only picks the queue's
  // data structure.
  if (config_.engine_backend == sim::EngineBackend::kHeap) {
    sim::EngineBackend env_backend;
    if (sim::parse_engine_backend(std::getenv("NFV_ENGINE_BACKEND"),
                                  env_backend)) {
      config_.engine_backend = env_backend;
    }
  }
  // The admission trickle bucket is specified in packets per second; give
  // it this platform's clock so the cycle conversion is right (no-op for
  // runs that never register a flow class).
  config_.manager.admission.cpu_hz = config_.cpu_hz;
  if (config_.sim_shards > 0) {
    // Every lane builds its own pool/manager/flow table as cores are added;
    // the legacy singletons (and their root-registry probes) stay unbuilt
    // so the legacy path remains byte-exact.
    shard_ = std::make_unique<ShardRuntime>(
        config_.sim_shards, config_.cross_lane_latency, config_.manager,
        config_.flow_table, config_.mempool_capacity, chains_,
        config_.engine_backend, config_.pending_events_hint);
    return;
  }
  engine_.set_backend(config_.engine_backend);
  engine_.reserve(config_.pending_events_hint);
  pool_ = std::make_unique<pktio::MbufPool>(config_.mempool_capacity);
  manager_ = std::make_unique<mgr::Manager>(engine_, *pool_, flows_, chains_,
                                            config_.manager, &obs_);
  obs_.metrics().counter_fn("sim.dispatched_events", {},
                            [this] { return engine_.dispatched_events(); });
  obs_.metrics().gauge_fn("sim.mbufs_in_use", {}, [this] {
    return static_cast<double>(pool_->in_use());
  });
  // Flow-table instruments (DESIGN.md §13): sampled probes, so the lookup
  // path pays nothing for them.
  obs_.metrics().counter_fn("flow.hits", {}, [this] { return flows_.hits(); });
  obs_.metrics().counter_fn("flow.misses", {},
                            [this] { return flows_.misses(); });
  obs_.metrics().counter_fn("flow.installs", {},
                            [this] { return flows_.installs(); });
  obs_.metrics().counter_fn("flow.expirations", {},
                            [this] { return flows_.expirations(); });
  obs_.metrics().gauge_fn("flow.table_size", {}, [this] {
    return static_cast<double>(flows_.size());
  });
  obs_.metrics().gauge_fn("flow.load_factor", {},
                          [this] { return flows_.load_factor(); });
}

Simulation::~Simulation() = default;

void Simulation::set_engine_backend(sim::EngineBackend backend) {
  assert(!started_ && "the backend is frozen once the simulation has run");
  config_.engine_backend = backend;
  if (shard_) {
    shard_->set_engine_backend(backend);
  } else {
    engine_.set_backend(backend);
    engine_.reserve(config_.pending_events_hint);
  }
}

void Simulation::reserve_pending_events(std::size_t hint) {
  config_.pending_events_hint = hint;
  if (shard_) {
    shard_->set_pending_hint(hint);
  } else {
    engine_.reserve(hint);
  }
}

std::size_t Simulation::add_core(SchedPolicy policy, double rr_quantum_ms,
                                 int numa_node) {
  sched::SchedParams params = sched::SchedParams::defaults(clock_);
  params.rr_quantum = clock_.from_millis(rr_quantum_ms);

  std::unique_ptr<sched::Scheduler> scheduler;
  switch (policy) {
    case SchedPolicy::kCfsNormal:
      scheduler = std::make_unique<sched::CfsScheduler>(params, /*batch=*/false);
      break;
    case SchedPolicy::kCfsBatch:
      scheduler = std::make_unique<sched::CfsScheduler>(params, /*batch=*/true);
      break;
    case SchedPolicy::kRoundRobin:
      scheduler = std::make_unique<sched::RrScheduler>(params);
      break;
    case SchedPolicy::kFifo:
      scheduler = std::make_unique<sched::FifoScheduler>();
      break;
  }
  const std::size_t index = cores_.size();
  sched::CoreConfig core_cfg = config_.core;
  core_cfg.numa_node = numa_node;
  if (shard_) {
    // One lane per core. NFs registered before this lane existed become
    // remote placeholders on it.
    Lane& lane = shard_->add_lane();
    for (flow::NfId id = 0; id < nfs_.size(); ++id) {
      lane.manager->register_remote_nf(id, nfs_[id]->config().name,
                                       nf_lane_[id]);
    }
    if (user_trace_) {
      obs::TraceRecorder::Config tc;
      tc.max_events = user_trace_->config().max_events;
      tc.cpu_hz = config_.cpu_hz;
      lane.trace = std::make_unique<obs::TraceRecorder>(tc);
      lane.obs.attach_trace(lane.trace.get());
    }
  }
  sim::Engine& engine = shard_ ? shard_->lane(index).ev.engine() : engine_;
  obs::Observability& obs = shard_ ? shard_->lane(index).obs : obs_;
  cores_.push_back(std::make_unique<sched::Core>(
      engine, std::move(scheduler), core_cfg,
      "core" + std::to_string(index)));
  cores_.back()->set_observability(&obs, static_cast<std::uint32_t>(index));
  return index;
}

flow::NfId Simulation::add_nf(std::string name, std::size_t core_index,
                              nf::CostModel cost, NfOptions options) {
  assert(core_index < cores_.size());
  nf::NfTask::Config cfg;
  cfg.name = std::move(name);
  cfg.cost = cost;
  cfg.rx_capacity = options.rx_capacity ? options.rx_capacity : config_.rx_capacity;
  cfg.tx_capacity = options.tx_capacity ? options.tx_capacity : config_.tx_capacity;
  cfg.batch_size = options.batch_size;
  cfg.burst_window =
      options.burst_window ? options.burst_window : config_.nf_burst_window;
  cfg.high_watermark = config_.high_watermark;
  cfg.low_watermark = config_.low_watermark;
  cfg.sample_interval = clock_.from_micros(options.sample_interval_us);
  cfg.numa_penalty = config_.numa_penalty;
  cfg.sample_window = clock_.from_millis(100.0);
  cfg.priority = options.priority;

  sim::Engine& engine =
      shard_ ? shard_->lane(core_index).ev.engine() : engine_;
  nfs_.push_back(std::make_unique<nf::NfTask>(engine, cfg));
  nf::NfTask* task = nfs_.back().get();
  const auto id = static_cast<flow::NfId>(nfs_.size() - 1);
  nf_lane_.push_back(static_cast<std::uint32_t>(core_index));
  if (shard_) {
    // Register under the same global id everywhere: local on the owning
    // lane, a named placeholder on every other lane.
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      if (l == core_index) {
        shard_->lane(l).manager->register_nf_at(id, task,
                                                cores_[core_index].get());
      } else {
        shard_->lane(l).manager->register_remote_nf(
            id, task->config().name,
            static_cast<std::uint32_t>(core_index));
      }
    }
  } else {
    const flow::NfId got =
        manager_->register_nf(task, cores_[core_index].get());
    (void)got;
    assert(got == id);
  }
  return id;
}

flow::ChainId Simulation::add_chain(std::string name,
                                    std::vector<flow::NfId> hops) {
  assert(!started_ && "define chains before traffic starts");
  return chains_.add(std::move(name), std::move(hops));
}

io::AsyncIoEngine& Simulation::attach_io(flow::NfId nf_id,
                                         io::AsyncIoEngine::Config io_config) {
  const std::uint32_t lane_id = shard_ ? nf_lane_[nf_id] : 0;
  sim::Engine& engine = shard_ ? shard_->lane(lane_id).ev.engine() : engine_;
  io::BlockDevice& device =
      shard_ ? lane_disk(shard_->lane(lane_id)) : disk();
  obs::Observability& obs = shard_ ? shard_->lane(lane_id).obs : obs_;
  io_engines_.push_back(
      std::make_unique<io::AsyncIoEngine>(engine, device, io_config));
  io_lane_.push_back(lane_id);
  nfs_[nf_id]->attach_io(io_engines_.back().get());
  io_engines_.back()->set_observability(&obs, nfs_[nf_id]->config().name);
  return *io_engines_.back();
}

void Simulation::set_fault_plan(fault::FaultPlan plan) {
  assert(!started_ && "install the fault plan before the first run");
  if (shard_) {
    assert(!fault_plan_ && "only one fault plan per simulation");
    lifecycle_requested_ = true;
    fault_plan_ = std::make_unique<fault::FaultPlan>(std::move(plan));
    return;
  }
  assert(!injector_ && "only one fault plan per simulation");
  manager_->enable_lifecycle();
  injector_ = std::make_unique<fault::FaultInjector>(engine_, std::move(plan));
}

void Simulation::set_dead_policy(flow::ChainId chain,
                                 fault::DeadNfPolicy policy) {
  if (shard_) {
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      shard_->lane(l).manager->set_dead_policy(chain, policy);
    }
    return;
  }
  manager_->set_dead_policy(chain, policy);
}

Simulation::ChainSloReport Simulation::chain_slo_report(
    flow::ChainId chain) const {
  ChainSloReport out;
  std::vector<std::uint64_t> samples;
  std::uint64_t total = 0;
  const auto fold = [&](const mgr::Manager& m) {
    m.chain_tail(chain).append_samples(samples);
    total += m.chain_tail(chain).total_count();
    const mgr::ChainSloState& st = m.chain_slo(chain);
    out.target = std::max(out.target, st.target);
    out.violation_cycles += st.violation_cycles;
    out.boost = std::max(out.boost, st.boost);
  };
  if (shard_) {
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      fold(*shard_->lane(l).manager);
    }
  } else {
    fold(*manager_);
  }
  out.tail = obs::LatencyEstimator::snapshot_of(std::move(samples), total);
  return out;
}

std::uint64_t Simulation::chain_latency_quantile(flow::ChainId chain,
                                                 double q) const {
  if (shard_) {
    Histogram merged(1ULL << 40, 8);
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      merged.merge(shard_->lane(l).manager->chain_latency(chain));
    }
    return merged.value_at_quantile(q);
  }
  return manager_->chain_latency(chain).value_at_quantile(q);
}

void Simulation::set_chain_slo(flow::ChainId chain, double target_us) {
  const auto target = static_cast<Cycles>(clock_.from_micros(target_us));
  if (shard_) {
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      shard_->lane(l).manager->set_slo_target(chain, target);
    }
    return;
  }
  manager_->set_slo_target(chain, target);
}

void Simulation::set_chain_class(flow::ChainId chain, double priority,
                                 double utility) {
  assert(!started_ && "register flow classes before traffic starts");
  bp::ClassSpec spec;
  spec.priority = priority;
  spec.utility = utility;
  // Every lane learns the class: the home lane runs the gate, the tail
  // lane needs has_class() to decide whether to broadcast kChainOverload.
  if (shard_) {
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      shard_->lane(l).manager->set_chain_class(chain, spec);
    }
    return;
  }
  manager_->set_chain_class(chain, spec);
}

Simulation::ChainAdmissionReport Simulation::chain_admission_report(
    flow::ChainId chain) const {
  ChainAdmissionReport out;
  const auto fold = [&](const mgr::Manager& m) {
    const bp::AdmissionController* adm = m.admission();
    if (adm == nullptr || !adm->has_class(chain)) return;
    out.classed = true;
    const bp::ClassSpec* spec = adm->class_of(chain);
    out.priority = spec->priority;
    out.utility = spec->utility;
    out.engaged = out.engaged || adm->engaged(chain);
    const bp::AdmissionClassStats& st = adm->stats(chain);
    out.engagements += st.engagements;
    out.releases += st.releases;
    out.discards += st.discards;
    out.trickle_admits += st.trickle_admits;
  };
  if (shard_) {
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      fold(*shard_->lane(l).manager);
    }
  } else {
    fold(*manager_);
  }
  return out;
}

fault::NfLifecycle Simulation::nf_lifecycle(flow::NfId id) const {
  return mgr_of(id).nf_lifecycle(id);
}

const fault::NfLifecycleStats& Simulation::nf_lifecycle_stats(
    flow::NfId id) const {
  return mgr_of(id).nf_lifecycle_stats(id);
}

mgr::Manager& Simulation::manager() {
  if (shard_) return *shard_->lane(0).manager;
  return *manager_;
}

pktio::MbufPool& Simulation::pool() {
  if (shard_) return shard_->lane(0).pool;
  return *pool_;
}

io::BlockDevice& Simulation::disk() {
  if (shard_) return lane_disk(shard_->lane(0));
  if (!disk_) disk_ = std::make_unique<io::BlockDevice>(engine_);
  return *disk_;
}

Cycles Simulation::now_cycles() const {
  return shard_ ? shard_->now() : engine_.now();
}

mgr::Manager& Simulation::mgr_of(flow::NfId id) const {
  if (shard_) return *shard_->lane(nf_lane_[id]).manager;
  return *manager_;
}

Lane* Simulation::home_lane_ptr(flow::ChainId chain) {
  if (!shard_) return nullptr;
  const auto& hops = chains_.get(chain).hops;
  assert(!hops.empty() && "a chain needs at least one hop");
  return &shard_->lane(nf_lane_[hops.front()]);
}

pktio::FlowKey Simulation::next_flow_key(std::uint8_t proto) {
  pktio::FlowKey key;
  key.src_ip = 0x0a000000u + next_ip_++;
  key.dst_ip = 0x0a800001u;
  key.src_port = 10000;
  key.dst_port = 80;
  key.proto = proto;
  return key;
}

flow::FlowId Simulation::add_udp_flow(flow::ChainId chain, double rate_pps,
                                      UdpOptions options) {
  const pktio::FlowKey key = next_flow_key(pktio::kProtoUdp);
  // Sharded: the flow lives on its chain's home lane — the first hop's
  // lane, where the source injects and the flow table is consulted.
  Lane* home = home_lane_ptr(chain);
  const flow::FlowId flow_id =
      (home ? home->flows : flows_).install(key, chain);

  traffic::UdpSource::Config cfg;
  cfg.key = key;
  cfg.rate_pps = rate_pps;
  cfg.size_bytes = options.size_bytes;
  cfg.start_time = clock_.from_seconds(options.start_seconds);
  cfg.stop_time = options.stop_seconds < 0
                      ? Cycles{-1}
                      : clock_.from_seconds(options.stop_seconds);
  cfg.cost_classes = options.cost_classes;
  cfg.jitter_fraction = options.jitter_fraction;
  cfg.poisson = options.poisson;
  cfg.seed = options.seed;
  cfg.burst = options.burst ? options.burst : config_.source_burst;

  udp_sources_.push_back(std::make_unique<traffic::UdpSource>(
      home ? home->ev.engine() : engine_, home ? *home->manager : *manager_,
      home ? home->pool : *pool_, clock_, cfg));
  if (started_) udp_sources_.back()->start();
  return flow_id;
}

std::pair<flow::FlowId, traffic::TcpSource*> Simulation::add_tcp_flow(
    flow::ChainId chain, TcpOptions options) {
  const pktio::FlowKey key = next_flow_key(pktio::kProtoTcp);
  Lane* home = home_lane_ptr(chain);
  const flow::FlowId flow_id =
      (home ? home->flows : flows_).install(key, chain);

  traffic::TcpSource::Config cfg;
  cfg.key = key;
  cfg.size_bytes = options.size_bytes;
  cfg.rtt = clock_.from_seconds(options.rtt_seconds);
  cfg.ecn_capable = options.ecn_capable;
  cfg.max_cwnd = options.max_cwnd;
  cfg.start_time = clock_.from_seconds(options.start_seconds);
  cfg.stop_time = options.stop_seconds < 0
                      ? Cycles{-1}
                      : clock_.from_seconds(options.stop_seconds);
  cfg.burst = options.burst ? options.burst : config_.source_burst;

  tcp_sources_.push_back(std::make_unique<traffic::TcpSource>(
      home ? home->ev.engine() : engine_, home ? *home->manager : *manager_,
      home ? home->pool : *pool_, flow_id, cfg));
  if (started_) tcp_sources_.back()->start();
  return {flow_id, tcp_sources_.back().get()};
}

traffic::ChurnSource& Simulation::add_churn_workload(flow::ChainId chain,
                                                     double rate_pps,
                                                     ChurnOptions options) {
  traffic::ChurnSource::Config cfg;
  cfg.chain = chain;
  cfg.rate_pps = rate_pps;
  cfg.concurrent_flows = options.concurrent_flows;
  cfg.size_bytes = options.size_bytes;
  cfg.start_time = clock_.from_seconds(options.start_seconds);
  cfg.stop_time = options.stop_seconds < 0
                      ? Cycles{-1}
                      : clock_.from_seconds(options.stop_seconds);
  cfg.pareto_alpha = options.pareto_alpha;
  cfg.pareto_min_packets = options.pareto_min_packets;
  cfg.seed = options.seed;
  cfg.burst = options.burst ? options.burst : config_.source_burst;
  // Keep generated 5-tuples clear of next_flow_key()'s 10.0.0.0/9 space.
  cfg.src_ip_base = 0x0b000000u + (static_cast<std::uint32_t>(
                                       churn_sources_.size())
                                   << 20);

  Lane* home = home_lane_ptr(chain);
  churn_sources_.push_back(std::make_unique<traffic::ChurnSource>(
      home ? home->ev.engine() : engine_, home ? *home->manager : *manager_,
      home ? home->pool : *pool_, home ? home->flows : flows_, clock_, cfg));
  if (started_) churn_sources_.back()->start();
  return *churn_sources_.back();
}

fault::FaultPlan Simulation::lane_fault_plan(std::size_t lane_id) const {
  fault::FaultPlan lp;
  if (!fault_plan_) return lp;
  // NF faults go to the owning lane; device faults to every lane that has
  // an io engine (each lane owns its own block-device replica, mirroring
  // how every lane owns its own mbuf pool).
  const bool lane_has_io =
      std::find(io_lane_.begin(), io_lane_.end(),
                static_cast<std::uint32_t>(lane_id)) != io_lane_.end();
  for (const fault::FaultSpec& s : fault_plan_->specs()) {
    switch (s.kind) {
      case fault::FaultKind::kCrash:
        if (nf_lane_[s.nf] == lane_id) lp.add_crash(s.nf, s.at, s.restart_after);
        break;
      case fault::FaultKind::kStall:
        if (nf_lane_[s.nf] == lane_id) lp.add_stall(s.nf, s.at, s.restart_after);
        break;
      case fault::FaultKind::kDegrade:
        if (nf_lane_[s.nf] == lane_id) {
          lp.add_degrade(s.nf, s.at, s.factor, s.duration);
        }
        break;
      case fault::FaultKind::kDevice:
        if (!lane_has_io) break;
        switch (s.device) {
          case fault::DeviceFaultKind::kSlow:
            lp.add_device_slow(s.at, s.factor, s.duration);
            break;
          case fault::DeviceFaultKind::kError:
            lp.add_device_error(s.at, s.duration);
            break;
          case fault::DeviceFaultKind::kTorn:
            lp.add_device_torn(s.at, s.factor, s.duration);
            break;
          case fault::DeviceFaultKind::kWedge:
            lp.add_device_wedge(s.at, s.duration);
            break;
        }
        break;
    }
  }
  return lp;
}

void Simulation::start_sharded() {
  for (std::size_t l = 0; l < shard_->size(); ++l) {
    Lane& lane = shard_->lane(l);
    // Lifecycle must be armed on *every* replica: remote-death broadcasts
    // and dead-hop routing consult it wherever the packet happens to be.
    if (lifecycle_requested_) lane.manager->enable_lifecycle();
    lane.manager->start();
    if (lane.flows.expiry_enabled()) {
      flow::FlowTable* flows = &lane.flows;
      sim::Engine* engine = &lane.ev.engine();
      engine->schedule_periodic(flows->scan_period(), [flows, engine] {
        flows->expire(engine->now());
      });
    }
    fault::FaultPlan plan = lane_fault_plan(l);
    const bool device_faults = plan.has_device_faults();
    bool io_fault_domain = device_faults;
    for (std::size_t k = 0; k < io_engines_.size(); ++k) {
      if (io_lane_[k] == l && io_engines_[k]->fault_domain_enabled()) {
        io_fault_domain = true;
      }
    }
    if (io_fault_domain) {
      lane_disk(lane).set_observability(&lane.obs);
      for (std::size_t k = 0; k < io_engines_.size(); ++k) {
        if (io_lane_[k] == l) io_engines_[k]->register_fault_metrics();
      }
    }
    if (!plan.empty()) {
      lane.injector = std::make_unique<fault::FaultInjector>(lane.ev.engine(),
                                                             std::move(plan));
      lane.injector->arm(*lane.manager,
                         device_faults ? &lane_disk(lane) : nullptr);
    }
  }
}

void Simulation::ensure_started() {
  if (started_) return;
  started_ = true;
  if (shard_) {
    start_sharded();
    for (auto& src : udp_sources_) src->start();
    for (auto& src : tcp_sources_) src->start();
    for (auto& src : churn_sources_) src->start();
    return;
  }
  manager_->start();
  // Flow-expiry sweep (flow-state library, DESIGN.md §13): scheduled only
  // when a timeout is configured, so default simulations dispatch exactly
  // the seed event sequence.
  if (flows_.expiry_enabled()) {
    engine_.schedule_periodic(flows_.scan_period(),
                              [this] { flows_.expire(engine_.now()); });
  }
  // Storage fault domain (DESIGN.md §12): activate its observability only
  // when it is actually in use — device faults in the plan, or an engine
  // with a completion deadline configured — so fault-free reports keep the
  // seed metrics layout byte-for-byte.
  const bool device_faults =
      injector_ && injector_->plan().has_device_faults();
  bool io_fault_domain = device_faults;
  for (const auto& io : io_engines_) {
    if (io->fault_domain_enabled()) io_fault_domain = true;
  }
  if (io_fault_domain) {
    disk().set_observability(&obs_);
    for (auto& io : io_engines_) io->register_fault_metrics();
  }
  if (injector_) injector_->arm(*manager_, device_faults ? &disk() : nullptr);
  for (auto& src : udp_sources_) src->start();
  for (auto& src : tcp_sources_) src->start();
  for (auto& src : churn_sources_) src->start();
}

void Simulation::run_for_seconds(double seconds) {
  ensure_started();
  if (shard_) {
    shard_->run_until(shard_->now() + clock_.from_seconds(seconds));
    if (user_trace_) merge_lane_traces();
    return;
  }
  engine_.run_until(engine_.now() + clock_.from_seconds(seconds));
}

double Simulation::now_seconds() const {
  return clock_.to_seconds(now_cycles());
}

NfMetrics Simulation::nf_metrics(flow::NfId id) const {
  const nf::NfTask& task = *nfs_[id];
  const auto& mc = mgr_of(id).nf_counters(id);
  NfMetrics m;
  m.name = task.name();
  m.arrivals = task.counters().arrivals;
  m.processed = task.counters().processed;
  m.forwarded = task.counters().forwarded;
  m.rx_full_drops = mc.rx_full_drops;
  m.wasted_drops_here = mc.wasted_drops_here;
  m.downstream_drops = mc.downstream_drops;
  m.voluntary_switches = task.stats().voluntary_switches;
  m.involuntary_switches = task.stats().involuntary_switches;
  m.crash_drops = task.counters().crash_drops;
  m.runtime = task.stats().runtime;
  m.avg_sched_latency_ms =
      clock_.to_millis(static_cast<Cycles>(task.stats().avg_sched_latency_cycles()));
  m.rx_queue_len = task.rx_ring().size();
  return m;
}

ChainMetrics Simulation::chain_metrics(flow::ChainId id) const {
  ChainMetrics m;
  if (shard_) {
    // Admission counts on the home lane, egress wherever the last hop ran;
    // the chain total is the sum over replicas.
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      const auto& cc = shard_->lane(l).manager->chain_counters(id);
      m.entry_admitted += cc.entry_admitted;
      m.entry_throttle_drops += cc.entry_throttle_drops;
      m.admission_discards += cc.admission_discards;
      m.egress_packets += cc.egress_packets;
      m.egress_bytes += cc.egress_bytes;
    }
    return m;
  }
  const auto& cc = manager_->chain_counters(id);
  m.entry_admitted = cc.entry_admitted;
  m.entry_throttle_drops = cc.entry_throttle_drops;
  m.admission_discards = cc.admission_discards;
  m.egress_packets = cc.egress_packets;
  m.egress_bytes = cc.egress_bytes;
  return m;
}

double Simulation::nf_cpu_share(flow::NfId id) const {
  const Cycles now = now_cycles();
  if (now == 0) return 0.0;
  return static_cast<double>(nfs_[id]->stats().runtime) /
         static_cast<double>(now);
}

void Simulation::attach_trace(obs::TraceRecorder& recorder) {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    recorder.set_lane_name(static_cast<std::uint32_t>(i), cores_[i]->name());
  }
  recorder.set_lane_name(obs::kManagerLane, "nf-manager");
  recorder.set_lane_name(obs::kBackpressureLane, "backpressure");
  recorder.set_lane_name(obs::kLifecycleLane, "lifecycle");
  recorder.set_lane_name(obs::kIoLane, "storage-io");
  recorder.set_lane_name(obs::kSloLane, "slo-controller");
  recorder.set_lane_name(obs::kAdmissionLane, "admission");
  if (shard_) {
    // Each lane records into a private buffer (worker threads must not
    // share a recorder); after every run the buffers are merged into the
    // user's recorder in (timestamp, lane, sequence) order — a total order
    // independent of the worker count.
    user_trace_ = &recorder;
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      Lane& lane = shard_->lane(l);
      if (lane.trace) continue;
      obs::TraceRecorder::Config tc;
      tc.max_events = recorder.config().max_events;
      tc.cpu_hz = config_.cpu_hz;
      lane.trace = std::make_unique<obs::TraceRecorder>(tc);
      lane.obs.attach_trace(lane.trace.get());
    }
    return;
  }
  obs_.attach_trace(&recorder);
}

void Simulation::merge_lane_traces() {
  struct Item {
    const obs::TraceEvent* ev;
    std::size_t lane;
    std::size_t idx;
  };
  std::vector<Item> items;
  for (std::size_t l = 0; l < shard_->size(); ++l) {
    Lane& lane = shard_->lane(l);
    if (!lane.trace) continue;
    const auto& events = lane.trace->events();
    for (std::size_t i = lane.trace_consumed; i < events.size(); ++i) {
      items.push_back({&events[i], l, i});
    }
    lane.trace_consumed = events.size();
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.ev->ts != b.ev->ts) return a.ev->ts < b.ev->ts;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.idx < b.idx;
  });
  for (const Item& item : items) user_trace_->record(*item.ev);
}

void Simulation::report_json(std::ostream& out) const {
  const double elapsed = now_seconds();
  obs::JsonWriter w(out);
  w.begin_object();

  std::uint64_t wire_ingress = 0;
  if (shard_) {
    for (std::size_t l = 0; l < shard_->size(); ++l) {
      wire_ingress += shard_->lane(l).manager->wire_ingress();
    }
  } else {
    wire_ingress = manager_->wire_ingress();
  }

  w.key("meta");
  w.begin_object();
  w.field("elapsed_seconds", elapsed);
  w.field("cpu_hz", config_.cpu_hz);
  w.field("now_cycles", static_cast<std::int64_t>(now_cycles()));
  w.field("dispatched_events", shard_ ? shard_->dispatched_events()
                                      : engine_.dispatched_events());
  w.field("wire_ingress", wire_ingress);
  w.end_object();

  w.key("nfs");
  w.begin_array();
  for (flow::NfId id = 0; id < nfs_.size(); ++id) {
    const NfMetrics m = nf_metrics(id);
    const mgr::Manager& mgr = mgr_of(id);
    const auto& mc = mgr.nf_counters(id);
    w.begin_object();
    w.field("name", std::string_view(m.name));
    w.field("core", std::string_view(cores_[nf_lane_[id]]->name()));
    w.field("offered", mc.offered);
    w.field("arrivals", m.arrivals);
    w.field("processed", m.processed);
    w.field("forwarded", m.forwarded);
    w.field("rx_full_drops", m.rx_full_drops);
    w.field("wasted_drops_here", m.wasted_drops_here);
    w.field("downstream_drops", m.downstream_drops);
    w.field("voluntary_switches", m.voluntary_switches);
    w.field("involuntary_switches", m.involuntary_switches);
    w.field("crash_drops", m.crash_drops);
    w.field("runtime_cycles", static_cast<std::int64_t>(m.runtime));
    w.field("cpu_share", nf_cpu_share(id));
    w.field("avg_sched_latency_ms", m.avg_sched_latency_ms);
    w.field("rx_queue_len", m.rx_queue_len);
    if (mgr.config().lifecycle.enabled) {
      const auto& ls = mgr.nf_lifecycle_stats(id);
      w.key("lifecycle");
      w.begin_object();
      w.field("state",
              std::string_view(fault::to_string(mgr.nf_lifecycle(id))));
      w.field("crashes", ls.crashes);
      w.field("forced_crashes", ls.forced_crashes);
      w.field("restarts", ls.restarts);
      w.field("recoveries", ls.recoveries);
      w.field("downtime_cycles", static_cast<std::int64_t>(ls.downtime_cycles));
      w.end_object();
    }
    // PAM push-aside trajectory (DESIGN.md §17); the block appears only
    // when the controller is armed, keeping legacy reports byte-identical.
    if (mgr.config().push_aside.enabled) {
      w.key("pam");
      w.begin_object();
      w.field("push_scale", mgr.push_scale_of(id));
      w.field("grabs", mgr.push_grabs_of(id));
      w.field("givebacks", mgr.push_givebacks_of(id));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.key("chains");
  w.begin_array();
  for (flow::ChainId id = 0; id < chains_.size(); ++id) {
    const ChainMetrics m = chain_metrics(id);
    // Sharded: egress (and hence latency recording) happens on the last
    // hop's lane; merge the per-lane histograms. Same bucketing as
    // mgr::ChainLatency, so quantiles come out of the merged buckets
    // exactly as a single-registry run would produce them.
    Histogram merged_lat(1ULL << 40, 8);
    const Histogram* lat = nullptr;
    if (shard_) {
      for (std::size_t l = 0; l < shard_->size(); ++l) {
        merged_lat.merge(shard_->lane(l).manager->chain_latency(id));
      }
      lat = &merged_lat;
    } else {
      lat = &manager_->chain_latency(id);
    }
    w.begin_object();
    w.field("name", std::string_view(chains_.get(id).name));
    w.field("entry_admitted", m.entry_admitted);
    w.field("entry_throttle_drops", m.entry_throttle_drops);
    w.field("egress_packets", m.egress_packets);
    w.field("egress_bytes", m.egress_bytes);
    w.field("throughput_mpps",
            elapsed > 0
                ? static_cast<double>(m.egress_packets) / elapsed / 1e6
                : 0.0);
    w.key("latency_cycles");
    w.begin_object();
    w.field("p50", lat->value_at_quantile(0.5));
    w.field("p99", lat->value_at_quantile(0.99));
    w.field("max", lat->max());
    w.end_object();
    // Exact tail quantiles from the chain's sliding window (DESIGN.md §16).
    // Sharded: the window fills on the last hop's lane only; concatenating
    // the per-lane windows in lane order therefore reproduces the owner's
    // sample multiset exactly, and quantiles are order-independent, so the
    // merged snapshot equals a single-lane run's.
    {
      const ChainSloReport sr = chain_slo_report(id);
      w.key("tail_latency_cycles");
      w.begin_object();
      w.field("p50", static_cast<std::int64_t>(sr.tail.p50));
      w.field("p95", static_cast<std::int64_t>(sr.tail.p95));
      w.field("p99", static_cast<std::int64_t>(sr.tail.p99));
      w.field("max", static_cast<std::int64_t>(sr.tail.max));
      w.field("window_samples", static_cast<std::int64_t>(sr.tail.samples));
      w.field("total_samples",
              static_cast<std::int64_t>(sr.tail.total_count));
      w.end_object();
      if (sr.target > 0) {
        w.key("slo");
        w.begin_object();
        w.field("target_cycles", static_cast<std::int64_t>(sr.target));
        w.field("p99_over_target", static_cast<double>(sr.tail.p99) /
                                       static_cast<double>(sr.target));
        w.field("violation_seconds", clock_.to_seconds(sr.violation_cycles));
        w.field("boost", sr.boost);
        w.end_object();
      }
    }
    // Overload control (DESIGN.md §17): emitted only for classed chains,
    // so legacy reports stay byte-identical.
    {
      const ChainAdmissionReport ar = chain_admission_report(id);
      if (ar.classed) {
        w.key("admission");
        w.begin_object();
        w.field("priority", ar.priority);
        w.field("utility", ar.utility);
        w.field("engaged", ar.engaged);
        w.field("engagements", ar.engagements);
        w.field("releases", ar.releases);
        w.field("admission_discards", m.admission_discards);
        w.field("trickle_admits", ar.trickle_admits);
        w.end_object();
      }
    }
    w.end_object();
  }
  w.end_array();

  w.key("cores");
  w.begin_array();
  for (const auto& core : cores_) {
    w.begin_object();
    w.field("name", std::string_view(core->name()));
    w.field("numa_node", static_cast<std::int64_t>(core->numa_node()));
    w.field("busy_cycles", static_cast<std::int64_t>(core->busy_cycles()));
    w.field("switch_overhead_cycles",
            static_cast<std::int64_t>(core->switch_overhead_cycles()));
    const Cycles now = now_cycles();
    w.field("utilization",
            now > 0 ? static_cast<double>(core->busy_cycles()) /
                          static_cast<double>(now)
                    : 0.0);
    w.end_object();
  }
  w.end_array();

  // Full registry dump: every instrument any component registered. Sharded
  // runs merge the per-lane registries (counters sum, histograms merge)
  // into the same key space the legacy dump uses.
  {
    std::ostringstream metrics;
    if (shard_) {
      std::vector<const obs::MetricsRegistry*> parts;
      parts.push_back(&obs_.metrics());
      for (std::size_t l = 0; l < shard_->size(); ++l) {
        parts.push_back(&shard_->lane(l).obs.metrics());
      }
      obs::MetricsRegistry::write_json_merged(parts, metrics);
    } else {
      obs_.metrics().write_json(metrics);
    }
    w.key("metrics");
    w.raw(metrics.str());
  }

  w.end_object();
  out << '\n';
}

std::string Simulation::report_json() const {
  std::ostringstream out;
  report_json(out);
  return out.str();
}

void Simulation::print_report(std::ostream& out) const {
  const double elapsed = now_seconds();
  out << "=== NFVnice simulation report (t=" << std::fixed
      << std::setprecision(3) << elapsed << "s) ===\n";
  out << std::left << std::setw(14) << "NF" << std::right << std::setw(12)
      << "arrivals" << std::setw(12) << "processed" << std::setw(12)
      << "drops@rx" << std::setw(10) << "cpu%" << std::setw(10) << "cswch"
      << std::setw(10) << "nvcswch" << '\n';
  for (flow::NfId id = 0; id < nfs_.size(); ++id) {
    const NfMetrics m = nf_metrics(id);
    out << std::left << std::setw(14) << m.name << std::right << std::setw(12)
        << m.arrivals << std::setw(12) << m.processed << std::setw(12)
        << m.rx_full_drops << std::setw(9) << std::setprecision(1)
        << nf_cpu_share(id) * 100.0 << "%" << std::setw(10)
        << m.voluntary_switches << std::setw(10) << m.involuntary_switches
        << '\n';
  }
  for (flow::ChainId id = 0; id < chains_.size(); ++id) {
    const ChainMetrics m = chain_metrics(id);
    out << "chain '" << chains_.get(id).name << "': egress "
        << m.egress_packets << " pkts ("
        << std::setprecision(3)
        << (elapsed > 0 ? static_cast<double>(m.egress_packets) / elapsed / 1e6
                        : 0.0)
        << " Mpps), entry drops " << m.entry_throttle_drops << '\n';
  }
}

}  // namespace nfv::core
