// Sharded simulation runtime (DESIGN.md §14): per-core event lanes under a
// conservative-lookahead barrier.
//
// A sharded Simulation gives every simulated core its own event *lane* — a
// private engine plus private replicas of everything the packet path
// touches (mbuf pool, flow table, Manager, observability, block device) —
// and advances all lanes in lock-step epochs of length cross_lane_latency.
// Within an epoch lanes run concurrently on worker threads and share
// nothing; the only communication is ShardMsg traffic through per-(src,dst)
// SPSC mailboxes, and because every message is stamped send_time + latency,
// nothing posted during an epoch can be due before the epoch ends. At the
// epoch barrier each destination lane drains its mailboxes in fixed
// source-lane order and schedules the messages as ordinary engine events —
// so the *decomposition* (one lane per core) is fixed by the topology and
// the worker count only decides how many lanes run at once. That is the
// determinism argument in one line: lane event sequences are independent of
// NFV_SIM_SHARDS by construction, hence reports, traces and counters are
// byte-identical at any worker count.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "fault/injector.hpp"
#include "flow/flow_table.hpp"
#include "flow/service_chain.hpp"
#include "io/block_device.hpp"
#include "mgr/manager.hpp"
#include "mgr/shard_link.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "pktio/mempool.hpp"
#include "pktio/ring.hpp"
#include "sim/event_lane.hpp"
#include "sim/shard_barrier.hpp"

namespace nfv::core {

/// One event lane: a simulated core's private slice of the platform. Lane
/// index equals core index; everything in here is touched only by the
/// worker thread driving the lane (or by the main thread between runs).
struct Lane {
  Lane(std::uint32_t lane_id, const mgr::ManagerConfig& mgr_cfg,
       const flow::FlowTable::Config& flow_cfg, std::uint32_t mempool_capacity,
       flow::ChainRegistry& chains, mgr::ShardLink& link, Cycles latency,
       sim::EngineBackend backend, std::size_t pending_hint);

  std::uint32_t id;
  sim::EventLane ev;
  pktio::MbufPool pool;
  flow::FlowTable flows;
  obs::Observability obs;
  std::unique_ptr<mgr::Manager> manager;
  /// Per-lane trace buffer; merged into the user's recorder after each run
  /// (sorted by timestamp, then lane, then intra-lane order).
  std::unique_ptr<obs::TraceRecorder> trace;
  std::size_t trace_consumed = 0;  ///< Events already merged out.
  std::unique_ptr<io::BlockDevice> disk;  ///< Lazy, like Simulation::disk().
  std::unique_ptr<fault::FaultInjector> injector;
  /// In-flight cross-lane messages: drained from the mailboxes into this
  /// list, erased when their delivery event fires. A std::list so delivery
  /// events can hold stable iterators.
  std::list<mgr::ShardMsg> pending;
};

/// Owns the lanes, the mailbox matrix and the worker pool, and implements
/// the epoch loop. Simulation delegates run_for_seconds here when sharded.
class ShardRuntime final : public mgr::ShardLink {
 public:
  /// `shards` is the requested worker count (>= 1); the effective count is
  /// min(shards, lanes) at the first run. `latency` is the modelled
  /// cross-lane transit time and the epoch length (must be > 0).
  ShardRuntime(std::uint32_t shards, Cycles latency,
               const mgr::ManagerConfig& mgr_cfg,
               const flow::FlowTable::Config& flow_cfg,
               std::uint32_t mempool_capacity, flow::ChainRegistry& chains,
               sim::EngineBackend backend = sim::EngineBackend::kHeap,
               std::size_t pending_hint = 0);
  ~ShardRuntime() override;

  /// Create the next lane (index = current count). Topology-build time only.
  Lane& add_lane();

  /// Ready-queue backend for lanes (existing lanes are switched too; only
  /// legal before anything is scheduled on them). Lane event *content* is
  /// backend-independent — this is purely a performance knob.
  void set_engine_backend(sim::EngineBackend backend);
  [[nodiscard]] sim::EngineBackend engine_backend() const { return backend_; }

  /// Pending-events pre-size hint applied to every lane engine, existing
  /// and future (see PlatformConfig::pending_events_hint).
  void set_pending_hint(std::size_t hint);

  [[nodiscard]] Lane& lane(std::size_t i) { return *lanes_[i]; }
  [[nodiscard]] std::size_t size() const { return lanes_.size(); }
  [[nodiscard]] Cycles now() const { return now_; }
  [[nodiscard]] Cycles latency() const { return latency_; }
  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  /// Sum of all lane engines' dispatched-event counts.
  [[nodiscard]] std::uint64_t dispatched_events() const;

  // mgr::ShardLink — called from lane worker threads during an epoch.
  void post(std::uint32_t src, std::uint32_t dst,
            const mgr::ShardMsg& msg) override;
  [[nodiscard]] std::uint32_t lane_count() const override {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// Advance every lane to `target` in lookahead epochs. Two barriers per
  /// epoch: all lanes run, then all lanes drain — a message posted while
  /// lane A runs epoch k must not be converted into an engine event while
  /// lane B is still *running* epoch k, or B's event sequence numbers (and
  /// with them same-timestamp tie-breaks) would depend on worker timing.
  void run_until(Cycles target);

 private:
  /// Per-(src,dst) mailbox: a fixed SPSC ring with an unbounded spill list
  /// behind it, so posting never blocks and never drops. The spill vector
  /// is written by the source worker and cleared by the destination worker
  /// in different phases; the barrier between them is the synchronisation.
  struct Mailbox {
    pktio::SpscRing<mgr::ShardMsg> ring{256};
    std::vector<mgr::ShardMsg> spill;
  };

  void drain_lane(std::size_t dst);
  void deliver(Lane& lane, const mgr::ShardMsg& msg);

  std::uint32_t shards_;
  Cycles latency_;
  sim::EngineBackend backend_;
  std::size_t pending_hint_;
  // Copies of the platform knobs, so lanes added later see the same config
  // the legacy constructor would have captured.
  mgr::ManagerConfig mgr_cfg_;
  flow::FlowTable::Config flow_cfg_;
  std::uint32_t mempool_capacity_;
  flow::ChainRegistry& chains_;

  Cycles now_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;  ///< [src * n + dst].
  // Declared last: its destructor joins the workers before anything the
  // phase callbacks touch is torn down.
  std::unique_ptr<sim::ShardExecutor> exec_;
};

}  // namespace nfv::core
