// Public facade: build an NFVnice deployment and run it.
//
// This is the library's quickstart surface. A Simulation owns the event
// engine, the shared mbuf pool, the simulated cores with their scheduling
// policies, the NF Manager, and the traffic sources. Typical use:
//
//   nfvnice::Simulation sim;                        // defaults: NFVnice on
//   auto core = sim.add_core(SchedPolicy::kCfsBatch);
//   auto nf1 = sim.add_nf("low",  core, CostModel::fixed(120));
//   auto nf2 = sim.add_nf("med",  core, CostModel::fixed(270));
//   auto nf3 = sim.add_nf("high", core, CostModel::fixed(550));
//   auto chain = sim.add_chain("c", {nf1, nf2, nf3});
//   sim.add_udp_flow(chain, /*rate_pps=*/5e6);
//   sim.run_for_seconds(1.0);
//   sim.print_report(std::cout);
//
// The paper's "Default / CGroup / BKPR / NFVnice" configurations map to the
// feature toggles in PlatformConfig::manager.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/lifecycle.hpp"
#include "flow/flow_table.hpp"
#include "flow/service_chain.hpp"
#include "io/async_io.hpp"
#include "io/block_device.hpp"
#include "mgr/manager.hpp"
#include "nf/nf_task.hpp"
#include "obs/observability.hpp"
#include "pktio/mempool.hpp"
#include "sched/core.hpp"
#include "sim/engine.hpp"
#include "traffic/churn_source.hpp"
#include "traffic/tcp_source.hpp"
#include "traffic/udp_source.hpp"

namespace nfv::core {

struct Lane;
class ShardRuntime;

enum class SchedPolicy {
  kCfsNormal,   ///< SCHED_NORMAL (CFS with wakeup preemption).
  kCfsBatch,    ///< SCHED_BATCH (the scheduler NFVnice pairs best with).
  kRoundRobin,  ///< SCHED_RR with a configurable quantum.
  kFifo,        ///< SCHED_FIFO (run to completion; hogs starve the core).
};

const char* to_string(SchedPolicy policy);

struct PlatformConfig {
  double cpu_hz = kDefaultCpuHz;
  sched::CoreConfig core;
  mgr::ManagerConfig manager;
  std::uint32_t mempool_capacity = 1 << 20;
  /// Flow-table sizing and expiry (flow-state library, DESIGN.md §13). The
  /// default — grow on demand, no idle timeout — reproduces the historical
  /// behaviour exactly; setting flow_table.idle_timeout schedules a
  /// periodic expiry sweep that reclaims idle flows' dense ids.
  flow::FlowTable::Config flow_table;

  // Defaults applied to NFs added via add_nf (overridable per NF).
  // 16K descriptors per ring, OpenNetVM's NF_QUEUE_RINGSIZE: deep enough
  // that a weighted NF keeps a backlog across whole scheduler rotations —
  // CFS can only enforce cpu.shares on tasks that stay runnable.
  std::uint32_t rx_capacity = 16384;
  std::uint32_t tx_capacity = 16384;
  /// Per-packet cycles added on a cross-socket buffer hand-off.
  Cycles numa_penalty = 300;
  double high_watermark = 0.80;
  double low_watermark = 0.60;

  /// Packets an NF executes per engine event (run-to-completion burst; see
  /// DESIGN.md §9). Per-packet costs, timestamps and preemption points are
  /// exact at any setting; 1 forces the seed's one-event-per-packet
  /// behaviour (the equivalence suite runs there).
  std::uint32_t nf_burst_window = 32;
  /// Arrivals a traffic source delivers per timer event (exact per-packet
  /// timestamps; 1 = one event per packet).
  std::uint32_t source_burst = 8;

  // -- sharded engine (DESIGN.md §14) ---------------------------------------
  /// 0 = the classic single-threaded engine (the byte-exact legacy path).
  /// N >= 1 = sharded mode: one event lane per core, driven by
  /// min(N, cores) worker threads under a conservative-lookahead barrier.
  /// Sharded results are byte-identical for every N >= 1 (the lane
  /// decomposition is fixed by the topology; N only picks the parallelism)
  /// but differ from the legacy path, which interleaves all cores in one
  /// event queue with no cross-core latency. When left at 0, the
  /// NFV_SIM_SHARDS environment variable (a positive integer) selects
  /// sharded mode — mirroring NFV_BENCH_WORKERS.
  std::uint32_t sim_shards = 0;
  /// Modelled cross-lane transit time: a packet handed to an NF on another
  /// core arrives this many cycles later. It also bounds the lanes'
  /// conservative lookahead (the epoch length), so lower values cost more
  /// barriers per simulated second. Default 10 us at 2.6 GHz — one manager
  /// wakeup period, comparable to a loaded inter-core ring + wakeup hop.
  Cycles cross_lane_latency = 26'000;

  // -- event-engine backend (DESIGN.md §15) ---------------------------------
  /// Ready-queue backend for every engine this simulation owns (the legacy
  /// engine and, when sharded, each lane's). kHeap is the default; kWheel
  /// trades the heap's O(log n) schedule/pop for a hierarchical timer
  /// wheel's O(1) schedule/cancel, which wins at huge pending-timer
  /// populations (per-flow idle expiry, watchdogs, million-flow sweeps).
  /// Dispatch order is byte-identical either way — reports and traces do
  /// not change. When left at kHeap, the NFV_ENGINE_BACKEND environment
  /// variable ("heap" or "wheel") applies — mirroring NFV_SIM_SHARDS.
  sim::EngineBackend engine_backend = sim::EngineBackend::kHeap;
  /// Expected maximum of concurrently pending engine events. When > 0,
  /// every engine pre-sizes its slot pool and ready-queue storage (heap
  /// array or wheel link table) up front, eliminating warm-up reallocation
  /// spikes from benches and latency-sensitive sweeps. Purely a
  /// performance hint; 0 keeps the grow-on-demand behaviour.
  std::size_t pending_events_hint = 0;

  /// Force every per-burst knob to `window` (1 = the seed's fully
  /// per-packet event schedule; used by the equivalence tests).
  void set_burst_window(std::uint32_t window) {
    nf_burst_window = window;
    source_burst = window;
  }

  /// Convenience: turn the whole NFVnice control plane on/off (the paper's
  /// "Default" bar is everything off; cgroups/backpressure can then be
  /// re-enabled individually for the "CGroup"/"BKPR" bars).
  void set_nfvnice(bool enabled) {
    manager.enable_cgroups = enabled;
    manager.enable_backpressure = enabled;
    manager.enable_ecn = enabled;
  }
};

struct NfOptions {
  double priority = 1.0;
  std::uint32_t rx_capacity = 0;  ///< 0 = platform default.
  std::uint32_t tx_capacity = 0;
  std::uint32_t batch_size = 32;
  std::uint32_t burst_window = 0;  ///< 0 = PlatformConfig::nf_burst_window.
  double sample_interval_us = 1000.0;  ///< cost-sampling period (§3.5, 1 kHz).
};

struct UdpOptions {
  std::uint16_t size_bytes = 64;
  double start_seconds = 0.0;
  double stop_seconds = -1.0;
  std::uint8_t cost_classes = 0;
  /// Inter-arrival jitter fraction / Poisson toggle / RNG seed, forwarded
  /// to traffic::UdpSource::Config. The seed makes runs reproducible: two
  /// simulations built identically with the same seeds replay the exact
  /// same event sequence (the determinism suite depends on it).
  double jitter_fraction = 0.1;
  bool poisson = false;
  std::uint64_t seed = 0x9e3779b9ULL;
  std::uint32_t burst = 0;  ///< Arrivals per timer event; 0 = platform default.
};

struct ChurnOptions {
  std::uint32_t concurrent_flows = 1024;
  std::uint16_t size_bytes = 64;
  double start_seconds = 0.0;
  double stop_seconds = -1.0;
  /// Heavy-tailed flow lengths: packets per flow ~ Pareto(min, alpha).
  double pareto_alpha = 2.0;
  double pareto_min_packets = 2.0;
  std::uint64_t seed = 0xC0FFEEULL;
  std::uint32_t burst = 0;  ///< Arrivals per timer event; 0 = platform default.
};

struct TcpOptions {
  std::uint16_t size_bytes = 1500;
  double rtt_seconds = 200e-6;
  double start_seconds = 0.0;
  double stop_seconds = -1.0;
  bool ecn_capable = true;
  std::uint32_t max_cwnd = 4096;
  std::uint32_t burst = 0;  ///< Paced packets per event; 0 = platform default.
};

/// Point-in-time dump of every counter a bench needs; subtract two
/// snapshots to measure a window.
struct NfMetrics {
  std::string name;
  std::uint64_t arrivals = 0;
  std::uint64_t processed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t rx_full_drops = 0;
  std::uint64_t wasted_drops_here = 0;
  std::uint64_t downstream_drops = 0;
  std::uint64_t voluntary_switches = 0;
  std::uint64_t involuntary_switches = 0;
  /// In-flight burst packets lost to a crash (fault model, DESIGN.md §11).
  std::uint64_t crash_drops = 0;
  Cycles runtime = 0;
  double avg_sched_latency_ms = 0.0;
  std::uint64_t rx_queue_len = 0;

  NfMetrics operator-(const NfMetrics& rhs) const;
};

struct ChainMetrics {
  std::uint64_t entry_admitted = 0;
  std::uint64_t entry_throttle_drops = 0;
  /// Shed by the ingress admission gate (DESIGN.md §17); 0 unless the
  /// chain has a flow class. A distinct sink from entry_throttle_drops.
  std::uint64_t admission_discards = 0;
  std::uint64_t egress_packets = 0;
  std::uint64_t egress_bytes = 0;

  ChainMetrics operator-(const ChainMetrics& rhs) const;
};

class Simulation {
 public:
  explicit Simulation(PlatformConfig config = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // -- topology -------------------------------------------------------------
  /// Add a simulated core running `policy`; returns its index.
  /// `numa_node` places the core on a socket; chains hopping between
  /// sockets pay the per-packet remote-memory penalty (§1's NUMA concern).
  std::size_t add_core(SchedPolicy policy, double rr_quantum_ms = 100.0,
                       int numa_node = 0);

  /// Add an NF pinned to `core_index`. Returns the NfId used in chains.
  flow::NfId add_nf(std::string name, std::size_t core_index,
                    nf::CostModel cost, NfOptions options = {});

  flow::ChainId add_chain(std::string name, std::vector<flow::NfId> hops);

  /// Attach an async I/O engine (shared simulated disk) to an NF.
  io::AsyncIoEngine& attach_io(flow::NfId nf,
                               io::AsyncIoEngine::Config io_config);

  // -- faults (DESIGN.md §11) -------------------------------------------------
  /// Install a fault plan: enables the manager's lifecycle watchdog and
  /// arms an injector that fires the plan's crash/stall/degrade events at
  /// their scheduled times. Call before the first run_for_seconds(). A
  /// simulation without a plan schedules no watchdog events at all, so
  /// unfaulted runs replay byte-for-byte against earlier versions.
  void set_fault_plan(fault::FaultPlan plan);

  /// Per-chain policy while an NF on the chain is down (default: the
  /// LifecycleConfig's default_dead_policy, i.e. backpressure). Sharded
  /// simulations apply the policy on every lane (routing decisions happen
  /// wherever the packet is).
  void set_dead_policy(flow::ChainId chain, fault::DeadNfPolicy policy);

  // -- latency SLOs (DESIGN.md §16) -------------------------------------------
  /// Give `chain` a tail-latency target: its p99 chain-completion latency
  /// should stay under `target_us` microseconds. Telemetry (the per-chain
  /// tail estimator and the violation clock) runs for every targeted chain;
  /// the share-boost controller additionally requires
  /// PlatformConfig::manager.slo.enabled (and enable_cgroups to act on the
  /// boosts). 0 removes the target. Sharded simulations apply the target
  /// on every lane, like set_dead_policy.
  void set_chain_slo(flow::ChainId chain, double target_us);

  // -- overload control (DESIGN.md §17) ---------------------------------------
  /// Give `chain` a flow class (`class <chain> priority= utility=`) and arm
  /// the ingress admission gate for it: when the chain's first-hop queue
  /// crosses the engage watermark or its SLO violation clock is running,
  /// the lowest-utility classes sharing that queue are shed first (token-
  /// bucket trickle, engage/release hysteresis, minimum hold). Runs that
  /// never register a class execute no admission code and stay
  /// byte-identical to earlier versions. Sharded simulations register the
  /// class on every lane, like set_chain_slo. Call before the first run.
  void set_chain_class(flow::ChainId chain, double priority, double utility);

  /// Merged per-chain admission summary. `classed` is false (and the rest
  /// zero) for chains without a flow class; counters are summed over lanes
  /// (only the chain's home lane ever increments them), `engaged` is true
  /// if any lane's gate is currently shedding the class.
  struct ChainAdmissionReport {
    bool classed = false;
    bool engaged = false;
    double priority = 1.0;
    double utility = 1.0;
    std::uint64_t engagements = 0;
    std::uint64_t releases = 0;
    std::uint64_t discards = 0;
    std::uint64_t trickle_admits = 0;
  };
  [[nodiscard]] ChainAdmissionReport chain_admission_report(
      flow::ChainId chain) const;

  /// Merged per-chain tail/SLO state: the window snapshot (exact nearest-
  /// rank quantiles), the violation clock, the controller's current boost
  /// and the configured target. Sharded simulations fold the per-lane
  /// replicas — the window lives on the last hop's lane, violation time is
  /// owner-lane-only (summing is exact), boost is the max over lanes.
  struct ChainSloReport {
    Cycles target = 0;
    Cycles violation_cycles = 0;
    double boost = 1.0;
    obs::LatencyEstimator::Snapshot tail;
  };
  [[nodiscard]] ChainSloReport chain_slo_report(flow::ChainId chain) const;

  /// Whole-run chain-completion latency quantile in cycles, from the
  /// log-bucketed per-chain histogram (sharded: per-lane histograms
  /// merged). Complements chain_slo_report().tail, which covers only the
  /// estimator's sliding window of recent egresses.
  [[nodiscard]] std::uint64_t chain_latency_quantile(flow::ChainId chain,
                                                     double q) const;

  [[nodiscard]] fault::NfLifecycle nf_lifecycle(flow::NfId id) const;
  [[nodiscard]] const fault::NfLifecycleStats& nf_lifecycle_stats(
      flow::NfId id) const;

  // -- traffic ---------------------------------------------------------------
  flow::FlowId add_udp_flow(flow::ChainId chain, double rate_pps,
                            UdpOptions options = {});
  std::pair<flow::FlowId, traffic::TcpSource*> add_tcp_flow(
      flow::ChainId chain, TcpOptions options = {});

  /// A churning flow population: `options.concurrent_flows` live flows
  /// sharing `rate_pps`, each a heavy-tailed number of packets long and
  /// replaced by a fresh 5-tuple on completion (rule installed by the
  /// source). Pair with PlatformConfig::flow_table.idle_timeout so retired
  /// flows actually leave the table.
  traffic::ChurnSource& add_churn_workload(flow::ChainId chain,
                                           double rate_pps,
                                           ChurnOptions options = {});

  // -- execution --------------------------------------------------------------
  /// Advance simulated time. The first call starts the manager's periodic
  /// threads and all traffic sources.
  void run_for_seconds(double seconds);
  [[nodiscard]] double now_seconds() const;

  // -- metrics ----------------------------------------------------------------
  [[nodiscard]] NfMetrics nf_metrics(flow::NfId id) const;
  [[nodiscard]] ChainMetrics chain_metrics(flow::ChainId id) const;
  /// CPU utilisation of an NF over the whole run so far (runtime/elapsed).
  [[nodiscard]] double nf_cpu_share(flow::NfId id) const;

  /// The legacy single-engine event queue. Unused (never run) when
  /// sharded() — schedule on a lane's engine instead.
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const CpuClock& clock() const { return clock_; }
  /// Legacy accessor; when sharded() returns lane 0's Manager replica.
  [[nodiscard]] mgr::Manager& manager();
  [[nodiscard]] sched::Core& core(std::size_t index) { return *cores_[index]; }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  [[nodiscard]] nf::NfTask& nf(flow::NfId id) { return *nfs_[id]; }
  [[nodiscard]] std::size_t nf_count() const { return nfs_.size(); }
  /// Legacy accessors; when sharded() they return lane 0's replicas.
  [[nodiscard]] io::BlockDevice& disk();
  [[nodiscard]] pktio::MbufPool& pool();
  /// True when this simulation runs on the sharded engine (DESIGN.md §14).
  [[nodiscard]] bool sharded() const { return shard_ != nullptr; }
  /// The ready-queue backend every engine of this simulation uses.
  [[nodiscard]] sim::EngineBackend engine_backend() const {
    return config_.engine_backend;
  }
  /// Switch the ready-queue backend after construction (the config-loader
  /// path). Only legal before anything has been scheduled — in practice,
  /// before the first core / NF / traffic directive.
  void set_engine_backend(sim::EngineBackend backend);
  /// Apply a pending-events pre-size hint after construction; forwards to
  /// every engine (see PlatformConfig::pending_events_hint).
  void reserve_pending_events(std::size_t hint);
  [[nodiscard]] flow::FlowTable& flow_table() { return flows_; }
  [[nodiscard]] const flow::FlowTable& flow_table() const { return flows_; }
  [[nodiscard]] flow::ChainRegistry& chains() { return chains_; }
  [[nodiscard]] PlatformConfig& config() { return config_; }

  /// Human-readable per-NF / per-chain summary.
  void print_report(std::ostream& out) const;

  // -- observability ----------------------------------------------------------
  /// The platform's metrics registry + trace attachment point. Every
  /// component registered its instruments here at construction.
  [[nodiscard]] obs::Observability& observability() { return obs_; }
  [[nodiscard]] const obs::Observability& observability() const { return obs_; }

  /// Start recording control-plane trace events (context switches, wakeups,
  /// backpressure transitions, cpu.shares writes, ECN marks, drops) into
  /// `recorder`. Also names the recorder's lanes after the topology. The
  /// recorder is not owned and must outlive the simulation's activity;
  /// export with recorder.write_chrome_json(). Call before run_for_seconds
  /// to capture a complete stream.
  void attach_trace(obs::TraceRecorder& recorder);

  /// Machine-readable counterpart of print_report(): one JSON object with
  /// "meta", "nfs", "chains", "cores" sections plus the full metrics
  /// registry dump under "metrics". Byte-deterministic for a given
  /// simulation state — two same-seed runs serialize identically.
  void report_json(std::ostream& out) const;
  [[nodiscard]] std::string report_json() const;

 private:
  void ensure_started();
  void start_sharded();
  pktio::FlowKey next_flow_key(std::uint8_t proto);
  // -- sharded-engine plumbing (DESIGN.md §14; no-ops / trivial in legacy
  //    mode, where shard_ is null).
  [[nodiscard]] Cycles now_cycles() const;
  /// The Manager that owns `id`: the lane replica when sharded, else the
  /// single legacy manager.
  [[nodiscard]] mgr::Manager& mgr_of(flow::NfId id) const;
  /// The lane a chain's traffic enters on (its first hop's lane); null in
  /// legacy mode.
  [[nodiscard]] Lane* home_lane_ptr(flow::ChainId chain);
  /// The slice of the installed fault plan that belongs to one lane.
  [[nodiscard]] fault::FaultPlan lane_fault_plan(std::size_t lane_id) const;
  /// Move new per-lane trace events into the user's recorder, ordered by
  /// (timestamp, lane, intra-lane sequence).
  void merge_lane_traces();

  PlatformConfig config_;
  CpuClock clock_;
  sim::Engine engine_;
  // Owns the lane engines; declared (like engine_) before every component
  // that runs on them, so workers join and engines die last.
  std::unique_ptr<ShardRuntime> shard_;
  std::unique_ptr<pktio::MbufPool> pool_;
  flow::FlowTable flows_;
  flow::ChainRegistry chains_;
  // Declared before the components that register instruments into it.
  obs::Observability obs_;
  std::vector<std::unique_ptr<sched::Core>> cores_;
  std::vector<std::unique_ptr<nf::NfTask>> nfs_;
  std::unique_ptr<mgr::Manager> manager_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<io::BlockDevice> disk_;
  std::vector<std::unique_ptr<io::AsyncIoEngine>> io_engines_;
  std::vector<std::unique_ptr<traffic::UdpSource>> udp_sources_;
  std::vector<std::unique_ptr<traffic::TcpSource>> tcp_sources_;
  std::vector<std::unique_ptr<traffic::ChurnSource>> churn_sources_;
  std::uint32_t next_ip_ = 1;
  bool started_ = false;

  // -- sharded-engine state (empty / unused in legacy mode) -----------------
  std::vector<std::uint32_t> nf_lane_;  ///< Core (= lane) index per NF.
  std::vector<std::uint32_t> io_lane_;  ///< Lane index per io engine.
  /// Fault plan held until start, then split into per-lane plans.
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  bool lifecycle_requested_ = false;
  obs::TraceRecorder* user_trace_ = nullptr;
};

}  // namespace nfv::core

/// Friendly alias so examples read naturally.
namespace nfvnice = nfv::core;
