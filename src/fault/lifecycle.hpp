// NF lifecycle model: states, policies and watchdog tuning.
//
// The NF Manager drives every NF through a small state machine once the
// fault subsystem is enabled (DESIGN.md §11):
//
//   RUNNING ──(watchdog sees task.dead(), <= 1 period)──▶ DEAD
//   RUNNING ──(STUCK: on-CPU, no progress, `stuck_scans` scans)──▶ DEAD
//   DEAD ──(restart delay elapsed)──▶ RESTARTING
//   RESTARTING ──(cold-state reload completes)──▶ WARMING
//   WARMING ──(warm_duration elapsed)──▶ RUNNING
//
// RESTARTING performs the cold-state reload through the NF's async I/O
// engine when one is attached (the §3.4 double-buffered path), otherwise a
// fixed reload latency stands in. While an NF is down, its service chains
// degrade according to a per-chain DeadNfPolicy. All transitions are
// ordinary engine events, so faulted runs stay byte-for-byte deterministic.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace nfv::fault {

enum class NfLifecycle {
  kRunning,     ///< Healthy; the scheduler may run it.
  kDead,        ///< Process gone; awaiting the restart delay.
  kRestarting,  ///< Cold-state reload in flight (async I/O read).
  kWarming,     ///< Revived; caches cold, estimator in warm-up discard.
};

const char* to_string(NfLifecycle state);

/// What happens to a chain's packets while an NF on it is down.
enum class DeadNfPolicy {
  /// Treat the dead NF as an over-watermark queue: pin its Fig. 4 state to
  /// THROTTLE so the chain is shed at the system entry, with the normal
  /// hysteresis on recovery (entry drops continue until the revived NF
  /// drains its backlog below the low watermark). Requires backpressure to
  /// be enabled — under the Default configuration packets instead pile
  /// into the dead NF's ring and die there (the availability bench's A/B).
  kBackpressure,
  /// Route packets around dead hops (detection onward); a chain whose
  /// every hop is dead degrades to a pass-through wire.
  kBypass,
  /// Do nothing: packets queue in the dead NF's ring (rings live in
  /// manager-owned shared memory and survive the process) and wait for the
  /// restart. Only the in-flight burst is lost.
  kBuffer,
};

const char* to_string(DeadNfPolicy policy);

struct LifecycleConfig {
  /// Arm the watchdog. Off by default: an unfaulted simulation schedules no
  /// lifecycle events and replays exactly as before the subsystem existed.
  /// Simulation::set_fault_plan enables it automatically.
  bool enabled = false;
  /// Watchdog scan period; bounds death-detection latency to one period
  /// and stuck detection to (stuck_scans + 1) periods. 100 us at 2.6 GHz.
  Cycles watchdog_period = 260'000;
  /// Consecutive scans an NF must be on-CPU without progress before the
  /// watchdog declares it STUCK and force-crashes it. The product
  /// stuck_scans * watchdog_period must exceed the largest single-packet
  /// service time, or a legitimately slow packet reads as a hang.
  std::uint32_t stuck_scans = 3;
  /// Restart delay applied when the fault plan does not specify one. 1 ms.
  Cycles default_restart_delay = 2'600'000;
  /// Cold-state reload size, read through the NF's async I/O engine.
  std::uint64_t reload_bytes = 256 * 1024;
  /// Reload stand-in latency for NFs without an I/O engine. 0.5 ms.
  Cycles reload_latency = 1'300'000;
  /// WARMING dwell before the NF counts as recovered. 1 ms.
  Cycles warm_duration = 2'600'000;
  /// Chain policy when none was set explicitly.
  DeadNfPolicy default_dead_policy = DeadNfPolicy::kBackpressure;
};

/// Per-NF lifecycle accounting (exported via obs and report_json).
struct NfLifecycleStats {
  std::uint64_t crashes = 0;         ///< Deaths detected (incl. forced).
  std::uint64_t forced_crashes = 0;  ///< Watchdog kills of STUCK NFs.
  std::uint64_t restarts = 0;        ///< Cold reloads begun.
  std::uint64_t recoveries = 0;      ///< WARMING -> RUNNING completions.
  Cycles downtime_cycles = 0;        ///< Total detection -> recovery time.
  Cycles last_detect_latency = 0;    ///< Injection -> detection, last death.
};

}  // namespace nfv::fault
