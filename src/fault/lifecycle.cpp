#include "fault/lifecycle.hpp"

namespace nfv::fault {

const char* to_string(NfLifecycle state) {
  switch (state) {
    case NfLifecycle::kRunning:
      return "RUNNING";
    case NfLifecycle::kDead:
      return "DEAD";
    case NfLifecycle::kRestarting:
      return "RESTARTING";
    case NfLifecycle::kWarming:
      return "WARMING";
  }
  return "?";
}

const char* to_string(DeadNfPolicy policy) {
  switch (policy) {
    case DeadNfPolicy::kBackpressure:
      return "backpressure";
    case DeadNfPolicy::kBypass:
      return "bypass";
    case DeadNfPolicy::kBuffer:
      return "buffer";
  }
  return "?";
}

}  // namespace nfv::fault
