#include "fault/injector.hpp"

#include <algorithm>
#include <cassert>

namespace nfv::fault {

FaultInjector::FaultInjector(sim::Engine& engine, FaultPlan plan)
    : engine_(engine), plan_(std::move(plan)) {}

FaultInjector::~FaultInjector() {
  // Pending injections capture the sink by reference; never let one
  // outlive the injector's arming context.
  for (const sim::EventId id : events_) engine_.cancel(id);
}

void FaultInjector::arm(FaultSink& sink, DeviceFaultSink* device) {
  assert(!armed_ && "a fault plan is armed once");
  assert((device != nullptr || !plan_.has_device_faults()) &&
         "a plan with device faults needs a device sink");
  armed_ = true;
  FaultSink* s = &sink;
  for (const FaultSpec& spec : plan_.specs()) {
    const Cycles at = std::max(spec.at, engine_.now());
    switch (spec.kind) {
      case FaultKind::kCrash:
        events_.push_back(engine_.schedule_at(at, [s, spec] {
          s->inject_crash(spec.nf, spec.restart_after);
        }));
        break;
      case FaultKind::kStall:
        events_.push_back(engine_.schedule_at(at, [s, spec] {
          s->inject_stall(spec.nf, spec.restart_after);
        }));
        break;
      case FaultKind::kDegrade:
        events_.push_back(engine_.schedule_at(
            at, [s, spec] { s->inject_degrade(spec.nf, spec.factor); }));
        if (spec.duration > 0) {
          events_.push_back(engine_.schedule_at(
              at + spec.duration,
              [s, spec] { s->restore_degrade(spec.nf); }));
        }
        break;
      case FaultKind::kDevice:
        events_.push_back(engine_.schedule_at(at, [device, spec] {
          device->inject_device_fault(spec.device, spec.factor);
        }));
        if (spec.duration > 0) {
          events_.push_back(
              engine_.schedule_at(at + spec.duration, [device, spec] {
                device->restore_device_fault(spec.device);
              }));
        }
        break;
    }
  }
}

}  // namespace nfv::fault
