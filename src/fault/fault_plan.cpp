#include "fault/fault_plan.hpp"

#include <limits>

namespace nfv::fault {

namespace {
constexpr Cycles kForever = std::numeric_limits<Cycles>::max();
}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kDevice:
      return "device";
  }
  return "?";
}

const char* to_string(DeviceFaultKind kind) {
  switch (kind) {
    case DeviceFaultKind::kSlow:
      return "slow";
    case DeviceFaultKind::kError:
      return "error";
    case DeviceFaultKind::kTorn:
      return "torn";
    case DeviceFaultKind::kWedge:
      return "wedge";
  }
  return "?";
}

Cycles FaultSpec::window_end() const {
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kStall:
      // The outage nominally lasts until the restart fires; with the
      // default delay (unknown here) or no restart, treat it as open-ended.
      return restart_after >= 0 && at <= kForever - restart_after
                 ? at + restart_after
                 : kForever;
    case FaultKind::kDegrade:
    case FaultKind::kDevice:
      return duration > 0 && at <= kForever - duration ? at + duration
                                                       : kForever;
  }
  return kForever;
}

void FaultPlan::add_crash(flow::NfId nf, Cycles at, Cycles restart_after) {
  FaultSpec spec;
  spec.kind = FaultKind::kCrash;
  spec.nf = nf;
  spec.at = at;
  spec.restart_after = restart_after;
  add(spec);
}

void FaultPlan::add_stall(flow::NfId nf, Cycles at, Cycles restart_after) {
  FaultSpec spec;
  spec.kind = FaultKind::kStall;
  spec.nf = nf;
  spec.at = at;
  spec.restart_after = restart_after;
  add(spec);
}

void FaultPlan::add_degrade(flow::NfId nf, Cycles at, double factor,
                            Cycles duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kDegrade;
  spec.nf = nf;
  spec.at = at;
  spec.factor = factor;
  spec.duration = duration;
  add(spec);
}

void FaultPlan::add_device_slow(Cycles at, double factor, Cycles duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kDevice;
  spec.device = DeviceFaultKind::kSlow;
  spec.at = at;
  spec.factor = factor;
  spec.duration = duration;
  add(spec);
}

void FaultPlan::add_device_error(Cycles at, Cycles duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kDevice;
  spec.device = DeviceFaultKind::kError;
  spec.at = at;
  spec.duration = duration;
  add(spec);
}

void FaultPlan::add_device_torn(Cycles at, double fraction, Cycles duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kDevice;
  spec.device = DeviceFaultKind::kTorn;
  spec.at = at;
  spec.factor = fraction;
  spec.duration = duration;
  add(spec);
}

void FaultPlan::add_device_wedge(Cycles at, Cycles duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kDevice;
  spec.device = DeviceFaultKind::kWedge;
  spec.at = at;
  spec.duration = duration;
  add(spec);
}

bool FaultPlan::has_device_faults() const {
  for (const FaultSpec& spec : specs_) {
    if (spec.kind == FaultKind::kDevice) return true;
  }
  return false;
}

void FaultPlan::add(FaultSpec spec) {
  const std::string what =
      spec.kind == FaultKind::kDevice
          ? std::string("device ") + to_string(spec.device) + " fault"
          : std::string(to_string(spec.kind)) + " fault on nf " +
                std::to_string(spec.nf);
  if (spec.at < 0) {
    throw FaultError(what + ": injection time must be >= 0");
  }
  if ((spec.kind == FaultKind::kCrash || spec.kind == FaultKind::kStall) &&
      spec.restart_after != kDefaultRestart && spec.restart_after <= 0) {
    throw FaultError(what + ": restart_after must be > 0");
  }
  if (spec.kind == FaultKind::kDegrade) {
    if (spec.factor <= 0.0) {
      throw FaultError(what + ": degrade factor must be > 0");
    }
    if (spec.duration < 0) {
      throw FaultError(what + ": degrade duration must be >= 0");
    }
  }
  if (spec.kind == FaultKind::kDevice) {
    if (spec.duration < 0) {
      throw FaultError(what + ": duration must be >= 0");
    }
    if (spec.device == DeviceFaultKind::kSlow && spec.factor <= 0.0) {
      throw FaultError(what + ": latency factor must be > 0");
    }
    if (spec.device == DeviceFaultKind::kTorn &&
        (spec.factor < 0.0 || spec.factor >= 1.0)) {
      throw FaultError(what + ": torn fraction must be in [0, 1)");
    }
  }
  // One NF, one fault at a time: overlapping windows on the same NF would
  // make the lifecycle state machine ambiguous (e.g. a crash landing inside
  // an unresolved stall). The device is its own domain with the same rule —
  // device windows must not overlap each other, but they may overlap NF
  // windows freely. Windows are half-open [at, window_end()).
  const bool on_device = spec.kind == FaultKind::kDevice;
  for (const FaultSpec& other : specs_) {
    if ((other.kind == FaultKind::kDevice) != on_device) continue;
    if (!on_device && other.nf != spec.nf) continue;
    if (spec.at < other.window_end() && other.at < spec.window_end()) {
      throw FaultError(
          what + ": overlaps an earlier " +
          (on_device ? std::string("device ") + to_string(other.device)
                     : std::string(to_string(other.kind))) +
          " fault on the same " + (on_device ? "device" : "NF"));
    }
  }
  specs_.push_back(spec);
}

}  // namespace nfv::fault
