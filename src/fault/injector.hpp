// Arms a FaultPlan on the event engine.
//
// Each FaultSpec becomes one (degrade: up to two) ordinary engine events
// that call into a FaultSink — the NF Manager — at the planned instants.
// Because injection rides the same deterministic event queue as packets
// and scheduler ticks, a faulted run is exactly reproducible: same plan,
// same seed, same bytes.
#pragma once

#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/engine.hpp"

namespace nfv::fault {

/// The actuator the injector drives; implemented by the NF Manager.
class FaultSink {
 public:
  virtual ~FaultSink() = default;
  /// Kill the NF now. `restart_after` is the detection->restart delay
  /// (kDefaultRestart = the sink's configured default).
  virtual void inject_crash(flow::NfId nf, Cycles restart_after) = 0;
  /// Turn the NF into a straggler now (watchdog will kill it).
  virtual void inject_stall(flow::NfId nf, Cycles restart_after) = 0;
  /// Scale the NF's service-time distribution by `factor`.
  virtual void inject_degrade(flow::NfId nf, double factor) = 0;
  /// End a bounded degrade window (restore the original distribution).
  virtual void restore_degrade(flow::NfId nf) = 0;
};

/// The storage-domain actuator (DESIGN.md §12); implemented by the
/// simulated BlockDevice. Lives here, not in src/io, so the fault library
/// stays independent of the I/O library (io links fault, not vice versa).
class DeviceFaultSink {
 public:
  virtual ~DeviceFaultSink() = default;
  /// Start a fault window of `kind`. `factor` carries the latency scale
  /// (kSlow) or the landed-bytes fraction (kTorn); other kinds ignore it.
  virtual void inject_device_fault(DeviceFaultKind kind, double factor) = 0;
  /// End a bounded window of `kind` (restore healthy behaviour).
  virtual void restore_device_fault(DeviceFaultKind kind) = 0;
};

class FaultInjector {
 public:
  FaultInjector(sim::Engine& engine, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every spec on the engine. Call once, before the run; specs
  /// whose instant already passed fire immediately (clamped to now).
  /// `sink` — and `device`, when the plan has device faults — must outlive
  /// the engine's activity. A plan with device specs requires a non-null
  /// `device`.
  void arm(FaultSink& sink, DeviceFaultSink* device = nullptr);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  sim::Engine& engine_;
  FaultPlan plan_;
  std::vector<sim::EventId> events_;
  bool armed_ = false;
};

}  // namespace nfv::fault
